#include "obs/slo.h"

#include <charconv>
#include <cstdio>
#include <ostream>
#include <utility>

#include "common/error.h"

namespace seda::obs {

namespace {

[[noreturn]] void bad_spec(std::string_view spec, const std::string& why)
{
    throw Seda_error("obs: bad --slo '" + std::string(spec) + "': " + why +
                     " (want FAMILY:pPCT<THRESH[us|ms|s]:TARGET, e.g. "
                     "serve_tenant_latency_us:p99<500us:0.999)");
}

double parse_double(std::string_view spec, std::string_view s, const char* what)
{
    double v = 0;
    const auto [end, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
    if (ec != std::errc() || end != s.data() + s.size())
        bad_spec(spec, std::string("cannot parse ") + what + " '" + std::string(s) + "'");
    return v;
}

std::string fmt6(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

std::string json_str(std::string_view s)
{
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

}  // namespace

Slo_spec parse_slo(std::string_view spec)
{
    Slo_spec out;
    out.text = std::string(spec);

    const std::size_t c1 = spec.find(':');
    if (c1 == std::string_view::npos || c1 == 0) bad_spec(spec, "missing family name");
    const std::size_t c2 = spec.find(':', c1 + 1);
    if (c2 == std::string_view::npos) bad_spec(spec, "missing target");
    out.family = std::string(spec.substr(0, c1));

    std::string_view obj = spec.substr(c1 + 1, c2 - c1 - 1);
    if (obj.size() < 4 || obj[0] != 'p') bad_spec(spec, "objective must start with 'p'");
    const std::size_t lt = obj.find('<');
    if (lt == std::string_view::npos) bad_spec(spec, "objective needs 'pPCT<THRESH'");
    out.percentile = parse_double(spec, obj.substr(1, lt - 1), "percentile");
    if (!(out.percentile > 0.0 && out.percentile <= 100.0))
        bad_spec(spec, "percentile must be in (0, 100]");

    std::string_view thresh = obj.substr(lt + 1);
    double unit = 1.0;
    if (thresh.size() > 2 && thresh.substr(thresh.size() - 2) == "us") {
        thresh.remove_suffix(2);
    } else if (thresh.size() > 2 && thresh.substr(thresh.size() - 2) == "ms") {
        unit = 1e3;
        thresh.remove_suffix(2);
    } else if (thresh.size() > 1 && thresh.back() == 's') {
        unit = 1e6;
        thresh.remove_suffix(1);
    }
    out.threshold = parse_double(spec, thresh, "threshold") * unit;
    if (!(out.threshold > 0.0)) bad_spec(spec, "threshold must be positive");

    out.target = parse_double(spec, spec.substr(c2 + 1), "target");
    if (!(out.target > 0.0 && out.target < 1.0))
        bad_spec(spec, "target must be in (0, 1)");
    return out;
}

Slo_tracker::Slo_tracker(std::vector<Slo_spec> specs, std::size_t slow_windows)
    : slow_windows_(slow_windows == 0 ? 1 : slow_windows)
{
    require(!specs.empty(), "obs: Slo_tracker needs at least one objective");
    results_.reserve(specs.size());
    for (auto& s : specs) {
        Slo_result r;
        r.spec = std::move(s);
        results_.push_back(std::move(r));
    }
    recent_.resize(results_.size());
}

void Slo_tracker::observe(const Interval& iv)
{
    for (std::size_t i = 0; i < results_.size(); ++i) {
        Slo_result& r = results_[i];
        const Log_histogram h = iv.family_hist(r.spec.family);
        if (h.count() == 0) continue;
        const double budget = 1.0 - r.spec.target;
        const double good = h.count_le(r.spec.threshold);
        const double bad = static_cast<double>(h.count()) - good;

        ++r.windows;
        r.total += h.count();
        r.good += good;
        const double pct = h.percentile(r.spec.percentile);
        if (pct > r.spec.threshold) ++r.violations;
        if (pct > r.worst_window_pct) r.worst_window_pct = pct;

        r.last_burn = (bad / static_cast<double>(h.count())) / budget;
        if (r.last_burn > r.peak_burn_1w) r.peak_burn_1w = r.last_burn;

        auto& ring = recent_[i];
        ring.push_back({bad, h.count()});
        if (ring.size() > slow_windows_) ring.erase(ring.begin());
        double slow_bad = 0;
        u64 slow_total = 0;
        for (const auto& [b, t] : ring) {
            slow_bad += b;
            slow_total += t;
        }
        const double slow_burn =
            slow_total == 0 ? 0.0 : (slow_bad / static_cast<double>(slow_total)) / budget;
        if (slow_burn > r.peak_burn_slow) r.peak_burn_slow = slow_burn;
    }
}

bool Slo_tracker::all_met() const
{
    for (const auto& r : results_)
        if (!r.met()) return false;
    return true;
}

void Slo_tracker::write_json(std::ostream& os) const
{
    os << "{\n  \"slow_windows\": " << slow_windows_ << ",\n  \"slos\": [";
    for (std::size_t i = 0; i < results_.size(); ++i) {
        const Slo_result& r = results_[i];
        os << (i ? "," : "") << "\n    {\"slo\": " << json_str(r.spec.text)
           << ", \"family\": " << json_str(r.spec.family)
           << ", \"percentile\": " << fmt6(r.spec.percentile)
           << ", \"threshold_us\": " << fmt6(r.spec.threshold)
           << ", \"target\": " << fmt6(r.spec.target) << ",\n     \"windows\": "
           << r.windows << ", \"violations\": " << r.violations
           << ", \"total\": " << r.total << ", \"good\": " << fmt6(r.good)
           << ",\n     \"availability\": " << fmt6(r.availability())
           << ", \"budget_consumed\": " << fmt6(r.budget_consumed())
           << ", \"worst_window_p\": " << fmt6(r.worst_window_pct)
           << ",\n     \"burn\": {\"last\": " << fmt6(r.last_burn)
           << ", \"peak_1w\": " << fmt6(r.peak_burn_1w)
           << ", \"peak_slow\": " << fmt6(r.peak_burn_slow)
           << "}, \"met\": " << (r.met() ? "true" : "false") << "}";
    }
    os << "\n  ],\n  \"all_met\": " << (all_met() ? "true" : "false") << "\n}\n";
}

void Slo_tracker::write_summary(std::ostream& os) const
{
    for (const auto& r : results_) {
        os << "slo " << r.spec.text << ": " << (r.met() ? "met" : "MISSED")
           << " (availability " << fmt6(r.availability()) << ", budget "
           << fmt6(100.0 * r.budget_consumed()) << "% consumed, burn peak 1w "
           << fmt6(r.peak_burn_1w) << " / slow " << fmt6(r.peak_burn_slow) << ", "
           << r.violations << "/" << r.windows << " window(s) over threshold)\n";
    }
}

}  // namespace seda::obs
