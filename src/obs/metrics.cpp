#include "obs/metrics.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/error.h"

namespace seda::obs {

namespace {

enum class Metric_type : unsigned { counter = 0, gauge = 1, histogram = 2 };

struct Counter_cell {
    std::atomic<u64> value{0};
};

struct Gauge_cell {
    std::atomic<i64> value{0};
};

/// One thread's shard of a histogram: fixed atomic bucket array plus the
/// summary fields.  A cell has exactly one writer at a time (its owning
/// thread), so min/max are plain read-modify-writes; the scrape reads
/// everything relaxed and a record racing it simply lands in the next
/// snapshot.
struct Hist_cell {
    std::array<std::atomic<u64>, Log_bucketing::k_bucket_count> counts{};
    std::atomic<u64> sum_ticks{0};
    std::atomic<u64> min_ticks{~u64{0}};
    std::atomic<u64> max_ticks{0};
    // Largest exemplar offered to this shard: value (fixed-point ticks, so
    // relaxed u64 loads stay tear-free) plus the trace id that produced it.
    // Single writer like the rest of the cell.
    std::atomic<u64> exemplar_ticks{0};
    std::atomic<u64> exemplar_trace{0};

    void offer_exemplar(double v, u64 trace_id)
    {
        const u64 t = Log_bucketing::ticks_from(v);
        if (t < exemplar_ticks.load(std::memory_order_relaxed) &&
            exemplar_trace.load(std::memory_order_relaxed) != 0)
            return;
        exemplar_ticks.store(t, std::memory_order_relaxed);
        exemplar_trace.store(trace_id, std::memory_order_relaxed);
    }

    void record(double v)
    {
        // Single writer: plain load+store instead of lock-prefixed RMWs --
        // the scraper only ever reads, so there is nothing to win a race
        // against, and the hot path saves two locked instructions.
        const u64 t = Log_bucketing::ticks_from(v);
        auto& slot = counts[Log_bucketing::index_of(t)];
        slot.store(slot.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
        sum_ticks.store(sum_ticks.load(std::memory_order_relaxed) + t,
                        std::memory_order_relaxed);
        if (t < min_ticks.load(std::memory_order_relaxed))
            min_ticks.store(t, std::memory_order_relaxed);
        if (t > max_ticks.load(std::memory_order_relaxed))
            max_ticks.store(t, std::memory_order_relaxed);
    }

    void reset()
    {
        for (auto& c : counts) c.store(0, std::memory_order_relaxed);
        sum_ticks.store(0, std::memory_order_relaxed);
        min_ticks.store(~u64{0}, std::memory_order_relaxed);
        max_ticks.store(0, std::memory_order_relaxed);
        exemplar_ticks.store(0, std::memory_order_relaxed);
        exemplar_trace.store(0, std::memory_order_relaxed);
    }
};

struct Metric {
    std::string name;  ///< family name, without the label
    std::string label_key, label_value;
    Metric_type type{};
    // Cells are owned here and never freed or moved (unique_ptr keeps each
    // address stable across vector growth).  A thread that exits donates its
    // cell to free_cells -- the VALUES stay live in the owning vector and
    // keep counting toward scrapes; only the slot is reused -- so the cell
    // population is bounded by the peak concurrent thread count.
    std::vector<std::unique_ptr<Counter_cell>> counter_cells;
    std::vector<std::unique_ptr<Gauge_cell>> gauge_cells;
    std::vector<std::unique_ptr<Hist_cell>> hist_cells;
    std::vector<void*> free_cells;
};

/// Per-thread cell pointers, indexed by metric id.  The destructor runs at
/// thread exit and donates the cells back to the (leaky, so still alive)
/// registry.
struct Thread_slots {
    std::vector<void*> cells;
    ~Thread_slots()
    {
        if (!cells.empty()) Metrics_registry::instance().release_cells(cells);
    }
};

thread_local Thread_slots t_slots;

template <typename Cell>
Cell* cell_for(u32 id)
{
    auto& cells = t_slots.cells;
    if (id < cells.size()) {
        if (void* c = cells[id]) return static_cast<Cell*>(c);
    }
    return static_cast<Cell*>(Metrics_registry::instance().acquire_cell(id));
}

}  // namespace

struct Metrics_registry::Impl {
    mutable std::mutex mutex;
    std::vector<Metric> metrics;
    std::unordered_map<std::string, u32> by_name;
};

Metrics_registry& Metrics_registry::instance()
{
    static Metrics_registry* const g = new Metrics_registry();
    return *g;
}

Metrics_registry::Metrics_registry() : impl_(new Impl) {}

#ifdef SEDA_DISABLE_OBS
bool enabled() { return false; }
#else
bool enabled()
{
    static const bool on = [] {
        const char* env = std::getenv("SEDA_OBS");
        bool live = true;
        if (env != nullptr) {
            const std::string_view v(env);
            live = !(v == "0" || v == "off" || v == "OFF" || v == "false");
        }
        // Pre-trigger the tick calibration so the very first measured span
        // doesn't absorb the ~1 ms spin into an enclosing duration.
        if (live) (void)ticks_to_us(0);
        return live;
    }();
    return on;
}
#endif

#if defined(__x86_64__) || defined(_M_X64)
u64 now_ticks() { return __builtin_ia32_rdtsc(); }
#else
u64 now_ticks()
{
    return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now().time_since_epoch())
                                .count());
}
#endif

double ticks_to_us(u64 dt)
{
#if defined(__x86_64__) || defined(_M_X64)
    // One calibration per process: ~1 ms of steady_clock against the TSC.
    // Modern x86-64 has an invariant, socket-synchronized TSC, so one ratio
    // serves every thread; clock-read jitter (~20 ns) is <0.01% of the
    // window.  Thread-safe via the static-local guard.
    static const double us_per_tick = [] {
        const auto c0 = std::chrono::steady_clock::now();
        const u64 t0 = now_ticks();
        while (std::chrono::steady_clock::now() - c0 < std::chrono::milliseconds(1)) {}
        const u64 t1 = now_ticks();
        const auto c1 = std::chrono::steady_clock::now();
        const double us = std::chrono::duration<double, std::micro>(c1 - c0).count();
        return t1 > t0 ? us / static_cast<double>(t1 - t0) : 1e-3;
    }();
    return static_cast<double>(dt) * us_per_tick;
#else
    return static_cast<double>(dt) * 1e-3;  // now_ticks() counts nanoseconds
#endif
}

void Counter::add(u64 delta) const
{
#ifdef SEDA_DISABLE_OBS
    (void)delta;
#else
    if (id_ == k_no_metric) return;
    cell_for<Counter_cell>(id_)->value.fetch_add(delta, std::memory_order_relaxed);
#endif
}

void Gauge::add(i64 delta) const
{
#ifdef SEDA_DISABLE_OBS
    (void)delta;
#else
    if (id_ == k_no_metric) return;
    cell_for<Gauge_cell>(id_)->value.fetch_add(delta, std::memory_order_relaxed);
#endif
}

void Histogram::record(double v) const
{
#ifdef SEDA_DISABLE_OBS
    (void)v;
#else
    if (id_ == k_no_metric) return;
    cell_for<Hist_cell>(id_)->record(v);
#endif
}

void Histogram::record(double v, u64 trace_id) const
{
#ifdef SEDA_DISABLE_OBS
    (void)v;
    (void)trace_id;
#else
    if (id_ == k_no_metric) return;
    Hist_cell* cell = cell_for<Hist_cell>(id_);
    cell->record(v);
    if (trace_id != 0) cell->offer_exemplar(v, trace_id);
#endif
}

namespace {

/// Prometheus-compatible identifier: [a-zA-Z_][a-zA-Z0-9_]*.  Metric names
/// and label KEYS must satisfy this (they are emitted unescaped); label
/// VALUES stay free-form and are escaped at export time.
bool valid_identifier(std::string_view s)
{
    const auto head = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
    };
    if (s.empty() || !head(s[0])) return false;
    for (const char c : s.substr(1))
        if (!head(c) && !(c >= '0' && c <= '9')) return false;
    return true;
}

}  // namespace

u32 Metrics_registry::intern(std::string_view name, unsigned type,
                             std::string_view label_key, std::string_view label_value)
{
    require(valid_identifier(name),
            "obs: malformed metric name '" + std::string(name) +
                "' (want [a-zA-Z_][a-zA-Z0-9_]*)");
    require(label_key.empty() == label_value.empty(),
            "obs: metric label key and value must be set together");
    require(label_key.empty() || valid_identifier(label_key),
            "obs: malformed label key '" + std::string(label_key) +
                "' (want [a-zA-Z_][a-zA-Z0-9_]*)");
    // The interning key distinguishes series; the family name alone is what
    // must stay kind-consistent (a labeled family and an unlabeled metric of
    // the same name are one namespace, like Prometheus's).
    std::string key(name);
    if (!label_key.empty()) {
        key += '{';
        key += label_key;
        key += "=\"";
        key += label_value;
        key += "\"}";
    }
    std::lock_guard lock(impl_->mutex);
    const auto it = impl_->by_name.find(key);
    if (it != impl_->by_name.end()) {
        require(static_cast<unsigned>(impl_->metrics[it->second].type) == type,
                "obs: metric '" + key + "' is already registered with a different kind");
        return it->second;
    }
    for (const Metric& m : impl_->metrics)
        require(m.name != name || static_cast<unsigned>(m.type) == type,
                "obs: metric family '" + std::string(name) +
                    "' is already registered with a different kind");
    const u32 id = static_cast<u32>(impl_->metrics.size());
    Metric m;
    m.name = std::string(name);
    m.label_key = std::string(label_key);
    m.label_value = std::string(label_value);
    m.type = static_cast<Metric_type>(type);
    impl_->metrics.push_back(std::move(m));
    impl_->by_name.emplace(std::move(key), id);
    return id;
}

Counter Metrics_registry::counter(std::string_view name)
{
    if (!enabled()) return Counter{};
    return Counter{intern(name, static_cast<unsigned>(Metric_type::counter), {}, {})};
}

Gauge Metrics_registry::gauge(std::string_view name)
{
    if (!enabled()) return Gauge{};
    return Gauge{intern(name, static_cast<unsigned>(Metric_type::gauge), {}, {})};
}

Histogram Metrics_registry::histogram(std::string_view name)
{
    if (!enabled()) return Histogram{};
    return Histogram{intern(name, static_cast<unsigned>(Metric_type::histogram), {}, {})};
}

Counter Metrics_registry::counter(std::string_view name, std::string_view label_key,
                                  std::string_view label_value)
{
    if (!enabled()) return Counter{};
    return Counter{
        intern(name, static_cast<unsigned>(Metric_type::counter), label_key, label_value)};
}

Gauge Metrics_registry::gauge(std::string_view name, std::string_view label_key,
                              std::string_view label_value)
{
    if (!enabled()) return Gauge{};
    return Gauge{
        intern(name, static_cast<unsigned>(Metric_type::gauge), label_key, label_value)};
}

Histogram Metrics_registry::histogram(std::string_view name, std::string_view label_key,
                                      std::string_view label_value)
{
    if (!enabled()) return Histogram{};
    return Histogram{intern(name, static_cast<unsigned>(Metric_type::histogram),
                            label_key, label_value)};
}

void* Metrics_registry::acquire_cell(u32 id)
{
    std::lock_guard lock(impl_->mutex);
    require(id < impl_->metrics.size(), "obs: unknown metric id");
    Metric& m = impl_->metrics[id];
    void* cell = nullptr;
    if (!m.free_cells.empty()) {
        cell = m.free_cells.back();
        m.free_cells.pop_back();
    } else {
        switch (m.type) {
            case Metric_type::counter:
                cell = m.counter_cells.emplace_back(std::make_unique<Counter_cell>()).get();
                break;
            case Metric_type::gauge:
                cell = m.gauge_cells.emplace_back(std::make_unique<Gauge_cell>()).get();
                break;
            case Metric_type::histogram:
                cell = m.hist_cells.emplace_back(std::make_unique<Hist_cell>()).get();
                break;
        }
    }
    auto& cells = t_slots.cells;
    if (cells.size() < impl_->metrics.size()) cells.resize(impl_->metrics.size(), nullptr);
    cells[id] = cell;
    return cell;
}

void Metrics_registry::release_cells(const std::vector<void*>& cells)
{
    std::lock_guard lock(impl_->mutex);
    for (std::size_t id = 0; id < cells.size() && id < impl_->metrics.size(); ++id)
        if (cells[id] != nullptr) impl_->metrics[id].free_cells.push_back(cells[id]);
}

Snapshot Metrics_registry::scrape() const
{
    Snapshot snap;
    scrape_into(snap);
    return snap;
}

void Metrics_registry::scrape_into(Snapshot& snap) const
{
    // Rows are assigned in place by index: string assignment and
    // Log_histogram::clear() keep their buffers, so a warm snapshot
    // re-scrapes without touching the allocator (the registry only ever
    // grows, so the final shrink-resizes never discard warmed rows).
    std::size_t nc = 0;
    std::size_t ng = 0;
    std::size_t nh = 0;
    std::lock_guard lock(impl_->mutex);
    for (const Metric& m : impl_->metrics) {
        switch (m.type) {
            case Metric_type::counter: {
                if (snap.counters.size() <= nc) snap.counters.emplace_back();
                auto& row = snap.counters[nc++];
                row.name = m.name;
                row.label_key = m.label_key;
                row.label_value = m.label_value;
                u64 total = 0;
                for (const auto& c : m.counter_cells)
                    total += c->value.load(std::memory_order_relaxed);
                row.value = total;
                break;
            }
            case Metric_type::gauge: {
                if (snap.gauges.size() <= ng) snap.gauges.emplace_back();
                auto& row = snap.gauges[ng++];
                row.name = m.name;
                row.label_key = m.label_key;
                row.label_value = m.label_value;
                i64 total = 0;
                for (const auto& c : m.gauge_cells)
                    total += c->value.load(std::memory_order_relaxed);
                row.value = total;
                break;
            }
            case Metric_type::histogram: {
                if (snap.histograms.size() <= nh) snap.histograms.emplace_back();
                auto& row = snap.histograms[nh++];
                row.name = m.name;
                row.label_key = m.label_key;
                row.label_value = m.label_value;
                row.hist.clear();
                row.exemplar_trace_id = 0;
                row.exemplar_value = 0;
                u64 best_ticks = 0;
                for (const auto& c : m.hist_cells) {
                    for (std::size_t i = 0; i < c->counts.size(); ++i) {
                        const u64 n = c->counts[i].load(std::memory_order_relaxed);
                        if (n != 0) row.hist.absorb_bucket(i, n);
                    }
                    row.hist.absorb_summary(c->sum_ticks.load(std::memory_order_relaxed),
                                            c->min_ticks.load(std::memory_order_relaxed),
                                            c->max_ticks.load(std::memory_order_relaxed));
                    const u64 trace = c->exemplar_trace.load(std::memory_order_relaxed);
                    const u64 ticks = c->exemplar_ticks.load(std::memory_order_relaxed);
                    if (trace != 0 && (row.exemplar_trace_id == 0 || ticks > best_ticks)) {
                        best_ticks = ticks;
                        row.exemplar_trace_id = trace;
                        row.exemplar_value =
                            Log_bucketing::value_from_ticks(static_cast<double>(ticks));
                    }
                }
                break;
            }
        }
    }
    snap.counters.resize(nc);
    snap.gauges.resize(ng);
    snap.histograms.resize(nh);
    const auto by_name = [](const auto& a, const auto& b) {
        if (a.name != b.name) return a.name < b.name;
        return a.label_value < b.label_value;
    };
    std::sort(snap.counters.begin(), snap.counters.end(), by_name);
    std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
    std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
}

void Metrics_registry::reset()
{
    std::lock_guard lock(impl_->mutex);
    for (Metric& m : impl_->metrics) {
        for (auto& c : m.counter_cells) c->value.store(0, std::memory_order_relaxed);
        for (auto& c : m.gauge_cells) c->value.store(0, std::memory_order_relaxed);
        for (auto& c : m.hist_cells) c->reset();
    }
}

}  // namespace seda::obs
