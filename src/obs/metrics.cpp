#include "obs/metrics.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/error.h"

namespace seda::obs {

namespace {

enum class Metric_type : unsigned { counter = 0, gauge = 1, histogram = 2 };

struct Counter_cell {
    std::atomic<u64> value{0};
};

struct Gauge_cell {
    std::atomic<i64> value{0};
};

/// One thread's shard of a histogram: fixed atomic bucket array plus the
/// summary fields.  A cell has exactly one writer at a time (its owning
/// thread), so min/max are plain read-modify-writes; the scrape reads
/// everything relaxed and a record racing it simply lands in the next
/// snapshot.
struct Hist_cell {
    std::array<std::atomic<u64>, Log_bucketing::k_bucket_count> counts{};
    std::atomic<u64> sum_ticks{0};
    std::atomic<u64> min_ticks{~u64{0}};
    std::atomic<u64> max_ticks{0};

    void record(double v)
    {
        // Single writer: plain load+store instead of lock-prefixed RMWs --
        // the scraper only ever reads, so there is nothing to win a race
        // against, and the hot path saves two locked instructions.
        const u64 t = Log_bucketing::ticks_from(v);
        auto& slot = counts[Log_bucketing::index_of(t)];
        slot.store(slot.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
        sum_ticks.store(sum_ticks.load(std::memory_order_relaxed) + t,
                        std::memory_order_relaxed);
        if (t < min_ticks.load(std::memory_order_relaxed))
            min_ticks.store(t, std::memory_order_relaxed);
        if (t > max_ticks.load(std::memory_order_relaxed))
            max_ticks.store(t, std::memory_order_relaxed);
    }

    void reset()
    {
        for (auto& c : counts) c.store(0, std::memory_order_relaxed);
        sum_ticks.store(0, std::memory_order_relaxed);
        min_ticks.store(~u64{0}, std::memory_order_relaxed);
        max_ticks.store(0, std::memory_order_relaxed);
    }
};

struct Metric {
    std::string name;
    Metric_type type{};
    // Cells are owned here and never freed or moved (unique_ptr keeps each
    // address stable across vector growth).  A thread that exits donates its
    // cell to free_cells -- the VALUES stay live in the owning vector and
    // keep counting toward scrapes; only the slot is reused -- so the cell
    // population is bounded by the peak concurrent thread count.
    std::vector<std::unique_ptr<Counter_cell>> counter_cells;
    std::vector<std::unique_ptr<Gauge_cell>> gauge_cells;
    std::vector<std::unique_ptr<Hist_cell>> hist_cells;
    std::vector<void*> free_cells;
};

/// Per-thread cell pointers, indexed by metric id.  The destructor runs at
/// thread exit and donates the cells back to the (leaky, so still alive)
/// registry.
struct Thread_slots {
    std::vector<void*> cells;
    ~Thread_slots()
    {
        if (!cells.empty()) Metrics_registry::instance().release_cells(cells);
    }
};

thread_local Thread_slots t_slots;

template <typename Cell>
Cell* cell_for(u32 id)
{
    auto& cells = t_slots.cells;
    if (id < cells.size()) {
        if (void* c = cells[id]) return static_cast<Cell*>(c);
    }
    return static_cast<Cell*>(Metrics_registry::instance().acquire_cell(id));
}

}  // namespace

struct Metrics_registry::Impl {
    mutable std::mutex mutex;
    std::vector<Metric> metrics;
    std::unordered_map<std::string, u32> by_name;
};

Metrics_registry& Metrics_registry::instance()
{
    static Metrics_registry* const g = new Metrics_registry();
    return *g;
}

Metrics_registry::Metrics_registry() : impl_(new Impl) {}

#ifdef SEDA_DISABLE_OBS
bool enabled() { return false; }
#else
bool enabled()
{
    static const bool on = [] {
        const char* env = std::getenv("SEDA_OBS");
        bool live = true;
        if (env != nullptr) {
            const std::string_view v(env);
            live = !(v == "0" || v == "off" || v == "OFF" || v == "false");
        }
        // Pre-trigger the tick calibration so the very first measured span
        // doesn't absorb the ~1 ms spin into an enclosing duration.
        if (live) (void)ticks_to_us(0);
        return live;
    }();
    return on;
}
#endif

#if defined(__x86_64__) || defined(_M_X64)
u64 now_ticks() { return __builtin_ia32_rdtsc(); }
#else
u64 now_ticks()
{
    return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now().time_since_epoch())
                                .count());
}
#endif

double ticks_to_us(u64 dt)
{
#if defined(__x86_64__) || defined(_M_X64)
    // One calibration per process: ~1 ms of steady_clock against the TSC.
    // Modern x86-64 has an invariant, socket-synchronized TSC, so one ratio
    // serves every thread; clock-read jitter (~20 ns) is <0.01% of the
    // window.  Thread-safe via the static-local guard.
    static const double us_per_tick = [] {
        const auto c0 = std::chrono::steady_clock::now();
        const u64 t0 = now_ticks();
        while (std::chrono::steady_clock::now() - c0 < std::chrono::milliseconds(1)) {}
        const u64 t1 = now_ticks();
        const auto c1 = std::chrono::steady_clock::now();
        const double us = std::chrono::duration<double, std::micro>(c1 - c0).count();
        return t1 > t0 ? us / static_cast<double>(t1 - t0) : 1e-3;
    }();
    return static_cast<double>(dt) * us_per_tick;
#else
    return static_cast<double>(dt) * 1e-3;  // now_ticks() counts nanoseconds
#endif
}

void Counter::add(u64 delta) const
{
#ifdef SEDA_DISABLE_OBS
    (void)delta;
#else
    if (id_ == k_no_metric) return;
    cell_for<Counter_cell>(id_)->value.fetch_add(delta, std::memory_order_relaxed);
#endif
}

void Gauge::add(i64 delta) const
{
#ifdef SEDA_DISABLE_OBS
    (void)delta;
#else
    if (id_ == k_no_metric) return;
    cell_for<Gauge_cell>(id_)->value.fetch_add(delta, std::memory_order_relaxed);
#endif
}

void Histogram::record(double v) const
{
#ifdef SEDA_DISABLE_OBS
    (void)v;
#else
    if (id_ == k_no_metric) return;
    cell_for<Hist_cell>(id_)->record(v);
#endif
}

u32 Metrics_registry::intern(std::string_view name, unsigned type)
{
    require(!name.empty(), "obs: metric name must be non-empty");
    std::lock_guard lock(impl_->mutex);
    const auto it = impl_->by_name.find(std::string(name));
    if (it != impl_->by_name.end()) {
        require(static_cast<unsigned>(impl_->metrics[it->second].type) == type,
                "obs: metric '" + std::string(name) +
                    "' is already registered with a different kind");
        return it->second;
    }
    const u32 id = static_cast<u32>(impl_->metrics.size());
    Metric m;
    m.name = std::string(name);
    m.type = static_cast<Metric_type>(type);
    impl_->metrics.push_back(std::move(m));
    impl_->by_name.emplace(std::string(name), id);
    return id;
}

Counter Metrics_registry::counter(std::string_view name)
{
    if (!enabled()) return Counter{};
    return Counter{intern(name, static_cast<unsigned>(Metric_type::counter))};
}

Gauge Metrics_registry::gauge(std::string_view name)
{
    if (!enabled()) return Gauge{};
    return Gauge{intern(name, static_cast<unsigned>(Metric_type::gauge))};
}

Histogram Metrics_registry::histogram(std::string_view name)
{
    if (!enabled()) return Histogram{};
    return Histogram{intern(name, static_cast<unsigned>(Metric_type::histogram))};
}

void* Metrics_registry::acquire_cell(u32 id)
{
    std::lock_guard lock(impl_->mutex);
    require(id < impl_->metrics.size(), "obs: unknown metric id");
    Metric& m = impl_->metrics[id];
    void* cell = nullptr;
    if (!m.free_cells.empty()) {
        cell = m.free_cells.back();
        m.free_cells.pop_back();
    } else {
        switch (m.type) {
            case Metric_type::counter:
                cell = m.counter_cells.emplace_back(std::make_unique<Counter_cell>()).get();
                break;
            case Metric_type::gauge:
                cell = m.gauge_cells.emplace_back(std::make_unique<Gauge_cell>()).get();
                break;
            case Metric_type::histogram:
                cell = m.hist_cells.emplace_back(std::make_unique<Hist_cell>()).get();
                break;
        }
    }
    auto& cells = t_slots.cells;
    if (cells.size() < impl_->metrics.size()) cells.resize(impl_->metrics.size(), nullptr);
    cells[id] = cell;
    return cell;
}

void Metrics_registry::release_cells(const std::vector<void*>& cells)
{
    std::lock_guard lock(impl_->mutex);
    for (std::size_t id = 0; id < cells.size() && id < impl_->metrics.size(); ++id)
        if (cells[id] != nullptr) impl_->metrics[id].free_cells.push_back(cells[id]);
}

Snapshot Metrics_registry::scrape() const
{
    Snapshot snap;
    std::lock_guard lock(impl_->mutex);
    for (const Metric& m : impl_->metrics) {
        switch (m.type) {
            case Metric_type::counter: {
                u64 total = 0;
                for (const auto& c : m.counter_cells)
                    total += c->value.load(std::memory_order_relaxed);
                snap.counters.push_back({m.name, total});
                break;
            }
            case Metric_type::gauge: {
                i64 total = 0;
                for (const auto& c : m.gauge_cells)
                    total += c->value.load(std::memory_order_relaxed);
                snap.gauges.push_back({m.name, total});
                break;
            }
            case Metric_type::histogram: {
                Log_histogram h;
                for (const auto& c : m.hist_cells) {
                    for (std::size_t i = 0; i < c->counts.size(); ++i) {
                        const u64 n = c->counts[i].load(std::memory_order_relaxed);
                        if (n != 0) h.absorb_bucket(i, n);
                    }
                    h.absorb_summary(c->sum_ticks.load(std::memory_order_relaxed),
                                     c->min_ticks.load(std::memory_order_relaxed),
                                     c->max_ticks.load(std::memory_order_relaxed));
                }
                snap.histograms.push_back({m.name, std::move(h)});
                break;
            }
        }
    }
    const auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
    std::sort(snap.counters.begin(), snap.counters.end(), by_name);
    std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
    std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
    return snap;
}

void Metrics_registry::reset()
{
    std::lock_guard lock(impl_->mutex);
    for (Metric& m : impl_->metrics) {
        for (auto& c : m.counter_cells) c->value.store(0, std::memory_order_relaxed);
        for (auto& c : m.gauge_cells) c->value.store(0, std::memory_order_relaxed);
        for (auto& c : m.hist_cells) c->reset();
    }
}

}  // namespace seda::obs
