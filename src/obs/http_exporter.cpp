#include "obs/http_exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <charconv>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string_view>
#include <thread>

#include "common/error.h"
#include "obs/export.h"
#include "obs/flight.h"
#include "obs/health.h"
#include "obs/metrics.h"

namespace seda::obs {

namespace {

constexpr const char* k_ct_prom = "text/plain; version=0.0.4; charset=utf-8";
constexpr const char* k_ct_json = "application/json";
constexpr const char* k_ct_text = "text/plain; charset=utf-8";

/// Blocking-read one request's head (through the blank line) with a size
/// cap.  Returns false on EOF/error/oversize before a full head arrived.
bool read_request_head(int fd, std::string& buf, std::size_t max_bytes)
{
    buf.clear();
    char chunk[1024];
    while (buf.find("\r\n\r\n") == std::string::npos) {
        if (buf.size() > max_bytes) return false;
        const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n <= 0) return false;
        buf.append(chunk, static_cast<std::size_t>(n));
    }
    return true;
}

void send_all(int fd, std::string_view data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
        if (n <= 0) return;  // peer went away; nothing to salvage
        off += static_cast<std::size_t>(n);
    }
}

}  // namespace

struct Http_exporter::Impl {
    std::thread thread;
    std::atomic<bool> stop{false};
    Snapshot snap;  ///< serving-thread scrape buffer, reused per request
};

Http_exporter::Http_exporter(Http_exporter_config cfg) : cfg_(cfg), impl_(new Impl) {}

Http_exporter::~Http_exporter()
{
    stop();
    delete impl_;
}

void Http_exporter::start()
{
    require(listen_fd_ < 0 && !running_, "obs: exporter already started");
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    require(fd >= 0, "obs: exporter socket() failed");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback ONLY, by design
    addr.sin_port = htons(cfg_.port);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(fd, 16) != 0) {
        const int err = errno;
        ::close(fd);
        throw Seda_error("obs: exporter cannot listen on 127.0.0.1:" +
                         std::to_string(cfg_.port) + " (" + std::strerror(err) + ")");
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    require(::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0,
            "obs: exporter getsockname() failed");
    port_ = ntohs(bound.sin_port);
    listen_fd_ = fd;
    running_ = true;
    impl_->stop.store(false, std::memory_order_relaxed);
    impl_->thread = std::thread([this] { serve_loop(); });
}

void Http_exporter::stop()
{
    if (!running_) return;
    impl_->stop.store(true, std::memory_order_relaxed);
    if (impl_->thread.joinable()) impl_->thread.join();
    if (listen_fd_ >= 0) ::close(listen_fd_);
    listen_fd_ = -1;
    running_ = false;
}

void Http_exporter::serve_loop()
{
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    while (!impl_->stop.load(std::memory_order_relaxed)) {
        const int ready = ::poll(&pfd, 1, cfg_.poll_interval_ms);
        if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;
        const int conn = ::accept(listen_fd_, nullptr, nullptr);
        if (conn < 0) continue;
        // A stalled peer must not wedge the serial loop: bound both sides.
        timeval tv{};
        tv.tv_sec = 2;
        ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
        ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
        handle_connection(conn);
        ::close(conn);
    }
}

void Http_exporter::handle_connection(int fd)
{
    ++requests_served_;
    const char* status = "200 OK";
    const char* content_type = k_ct_text;
    bool head_only = false;
    body_.clear();

    if (!read_request_head(fd, request_, cfg_.max_request_bytes)) {
        status = "400 Bad Request";
        content_type = k_ct_text;
        body_ = "malformed or oversized request\n";
    } else {
        // "METHOD SP TARGET SP VERSION": split the first line, drop any
        // query string -- the endpoints take no parameters.
        const std::string_view head(request_);
        const std::string_view line = head.substr(0, head.find("\r\n"));
        const std::size_t sp1 = line.find(' ');
        const std::size_t sp2 = sp1 == std::string_view::npos
                                    ? std::string_view::npos
                                    : line.find(' ', sp1 + 1);
        std::string_view method;
        std::string_view target;
        if (sp2 != std::string_view::npos) {
            method = line.substr(0, sp1);
            target = line.substr(sp1 + 1, sp2 - sp1 - 1);
            if (const auto q = target.find('?'); q != std::string_view::npos)
                target = target.substr(0, q);
        }
        head_only = method == "HEAD";
        std::ostringstream oss;
        if (method.empty() || target.empty()) {
            status = "400 Bad Request";
            body_ = "malformed request line\n";
        } else if (method != "GET" && method != "HEAD") {
            status = "405 Method Not Allowed";
            body_ = "only GET and HEAD are supported\n";
        } else if (target == "/metrics") {
            Metrics_registry::instance().scrape_into(impl_->snap);
            write_prometheus(impl_->snap, oss);
            content_type = k_ct_prom;
            body_ = oss.str();
        } else if (target == "/metrics.json") {
            Metrics_registry::instance().scrape_into(impl_->snap);
            write_json(impl_->snap, oss);
            content_type = k_ct_json;
            body_ = oss.str();
        } else if (target == "/healthz") {
            const Health_state state = health_state();
            const bool up =
                state == Health_state::serving || state == Health_state::draining;
            status = up ? "200 OK" : "503 Service Unavailable";
            content_type = k_ct_json;
            oss << "{\"state\": \"" << to_string(state)
                << "\", \"live_servers\": " << health_live_servers()
                << ", \"started_total\": " << health_started_total() << "}\n";
            body_ = oss.str();
        } else if (target == "/flight") {
            Flight_recorder::dump(oss);
            content_type = k_ct_json;
            body_ = oss.str();
        } else if (target == "/") {
            body_ =
                "seda telemetry endpoints:\n"
                "  /metrics       Prometheus text exposition\n"
                "  /metrics.json  JSON metrics snapshot\n"
                "  /healthz       serve lifecycle state\n"
                "  /flight        flight-recorder dump\n";
        } else {
            status = "404 Not Found";
            body_ = "unknown endpoint; GET / lists them\n";
        }
    }

    response_.clear();
    response_ += "HTTP/1.1 ";
    response_ += status;
    response_ += "\r\nContent-Type: ";
    response_ += content_type;
    response_ += "\r\nContent-Length: ";
    response_ += std::to_string(body_.size());
    response_ += "\r\nConnection: close\r\n\r\n";
    if (!head_only) response_ += body_;
    send_all(fd, response_);
}

u16 listen_port_from_env()
{
    const char* env = std::getenv("SEDA_OBS_LISTEN");
    if (env == nullptr || *env == '\0') return 0;
    unsigned port = 0;
    const auto [end, ec] = std::from_chars(env, env + std::strlen(env), port);
    require(ec == std::errc() && *end == '\0' && port >= 1 && port <= 65535,
            std::string("obs: SEDA_OBS_LISTEN expects a port (1-65535), got '") + env +
                "'");
    return static_cast<u16>(port);
}

}  // namespace seda::obs
