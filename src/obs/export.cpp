#include "obs/export.h"

#include <cstdio>
#include <ostream>
#include <string>

#include "common/table.h"

namespace seda::obs {

namespace {

/// Shortest round-trippable double (the CLI's json_double discipline).
std::string fmt_g(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

/// Compact double for le labels and table cells.
std::string fmt_short(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", v);
    return buf;
}

std::string escaped(std::string_view s)
{
    std::string out;
    for (const char c : s) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
    }
    return out;
}

}  // namespace

void write_prometheus(const Snapshot& snap, std::ostream& os)
{
    for (const auto& c : snap.counters) {
        os << "# TYPE seda_" << c.name << " counter\n"
           << "seda_" << c.name << " " << c.value << "\n";
    }
    for (const auto& g : snap.gauges) {
        os << "# TYPE seda_" << g.name << " gauge\n"
           << "seda_" << g.name << " " << g.value << "\n";
    }
    for (const auto& h : snap.histograms) {
        os << "# TYPE seda_" << h.name << " histogram\n";
        const auto& counts = h.hist.bucket_counts();
        u64 cum = 0;
        for (std::size_t i = 0; i < counts.size(); ++i) {
            if (counts[i] == 0) continue;
            cum += counts[i];
            os << "seda_" << h.name << "_bucket{le=\""
               << fmt_short(Log_histogram::bucket_upper(i)) << "\"} " << cum << "\n";
        }
        os << "seda_" << h.name << "_bucket{le=\"+Inf\"} " << h.hist.count() << "\n"
           << "seda_" << h.name << "_sum " << fmt_g(h.hist.sum()) << "\n"
           << "seda_" << h.name << "_count " << h.hist.count() << "\n";
    }
}

void write_json(const Snapshot& snap, std::ostream& os)
{
    os << "{\n  \"counters\": [";
    for (std::size_t i = 0; i < snap.counters.size(); ++i)
        os << (i ? "," : "") << "\n    {\"name\": \"" << escaped(snap.counters[i].name)
           << "\", \"value\": " << snap.counters[i].value << "}";
    os << (snap.counters.empty() ? "" : "\n  ") << "],\n  \"gauges\": [";
    for (std::size_t i = 0; i < snap.gauges.size(); ++i)
        os << (i ? "," : "") << "\n    {\"name\": \"" << escaped(snap.gauges[i].name)
           << "\", \"value\": " << snap.gauges[i].value << "}";
    os << (snap.gauges.empty() ? "" : "\n  ") << "],\n  \"histograms\": [";
    for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
        const auto& h = snap.histograms[i].hist;
        os << (i ? "," : "") << "\n    {\"name\": \"" << escaped(snap.histograms[i].name)
           << "\", \"count\": " << h.count() << ", \"sum\": " << fmt_g(h.sum())
           << ", \"min\": " << fmt_g(h.min()) << ", \"mean\": " << fmt_g(h.mean())
           << ", \"p50\": " << fmt_g(h.percentile(50))
           << ", \"p90\": " << fmt_g(h.percentile(90))
           << ", \"p99\": " << fmt_g(h.percentile(99))
           << ", \"p999\": " << fmt_g(h.percentile(99.9))
           << ", \"max\": " << fmt_g(h.max()) << "}";
    }
    os << (snap.histograms.empty() ? "" : "\n  ") << "]\n}\n";
}

void write_stage_table(const Snapshot& snap, std::ostream& os)
{
    Ascii_table t({"metric", "count", "mean", "p50", "p90", "p99", "p999", "max"});
    for (const auto& h : snap.histograms) {
        if (h.hist.count() == 0) continue;
        t.add_row({h.name, std::to_string(h.hist.count()), fmt_short(h.hist.mean()),
                   fmt_short(h.hist.percentile(50)), fmt_short(h.hist.percentile(90)),
                   fmt_short(h.hist.percentile(99)), fmt_short(h.hist.percentile(99.9)),
                   fmt_short(h.hist.max())});
    }
    if (t.row_count() != 0) t.print(os);
    for (const auto& c : snap.counters) os << c.name << " = " << c.value << "\n";
    for (const auto& g : snap.gauges) os << g.name << " = " << g.value << "\n";
}

const Snapshot::Histogram_row* find_histogram(const Snapshot& snap, std::string_view name)
{
    for (const auto& h : snap.histograms)
        if (h.name == name) return &h;
    return nullptr;
}

}  // namespace seda::obs
