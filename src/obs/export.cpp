#include "obs/export.h"

#include <cstdio>
#include <ostream>
#include <string>

#include "common/table.h"

namespace seda::obs {

namespace {

/// Shortest round-trippable double (the CLI's json_double discipline).
std::string fmt_g(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

/// Compact double for le labels and table cells.
std::string fmt_short(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", v);
    return buf;
}

/// Prometheus label-value escaping (exposition format rules): backslash,
/// double quote, and newline; other bytes pass through verbatim.
std::string escaped(std::string_view s)
{
    std::string out;
    for (const char c : s) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '"')
            out += "\\\"";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

/// JSON string escaping: quotes, backslash, and all control characters
/// (the metrics JSON must stay parseable whatever a label value holds).
std::string json_escaped(std::string_view s)
{
    std::string out;
    for (const char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

/// `{tenant="3"}` (or "" for unlabeled rows): the Prometheus label block
/// appended to a sample name, and the suffix the stage table displays.
template <typename Row>
std::string label_block(const Row& r)
{
    if (r.label_key.empty()) return {};
    // Built by append: GCC 12's -Wrestrict false-positives on the chained
    // operator+ form under LTO-ish inlining (PR105651).
    std::string out = "{";
    out += escaped(r.label_key);
    out += "=\"";
    out += escaped(r.label_value);
    out += "\"}";
    return out;
}

/// Label block with extra `le` pair for histogram bucket samples.
template <typename Row>
std::string bucket_block(const Row& r, const std::string& le)
{
    std::string out = "{";
    if (!r.label_key.empty())
        out += escaped(r.label_key) + "=\"" + escaped(r.label_value) + "\",";
    out += "le=\"" + le + "\"}";
    return out;
}

/// Emits one `# TYPE` header per family (labeled rows of one family are
/// adjacent after the scrape sort, so tracking the previous name suffices).
void type_header(std::ostream& os, std::string& last, const std::string& name,
                 const char* kind)
{
    if (name == last) return;
    os << "# TYPE seda_" << name << " " << kind << "\n";
    last = name;
}

}  // namespace

void write_prometheus(const Snapshot& snap, std::ostream& os)
{
    std::string last;
    for (const auto& c : snap.counters) {
        type_header(os, last, c.name, "counter");
        os << "seda_" << c.name << label_block(c) << " " << c.value << "\n";
    }
    last.clear();
    for (const auto& g : snap.gauges) {
        type_header(os, last, g.name, "gauge");
        os << "seda_" << g.name << label_block(g) << " " << g.value << "\n";
    }
    last.clear();
    for (const auto& h : snap.histograms) {
        type_header(os, last, h.name, "histogram");
        const auto& counts = h.hist.bucket_counts();
        u64 cum = 0;
        for (std::size_t i = 0; i < counts.size(); ++i) {
            if (counts[i] == 0) continue;
            cum += counts[i];
            os << "seda_" << h.name << "_bucket"
               << bucket_block(h, fmt_short(Log_histogram::bucket_upper(i))) << " " << cum
               << "\n";
        }
        os << "seda_" << h.name << "_bucket" << bucket_block(h, "+Inf") << " "
           << h.hist.count();
        // OpenMetrics-style exemplar on the +Inf bucket: the worst sampled
        // observation's trace id, linking the scrape to the request trace.
        if (h.exemplar_trace_id != 0)
            os << " # {trace_id=\"" << h.exemplar_trace_id << "\"} "
               << fmt_g(h.exemplar_value);
        os << "\n"
           << "seda_" << h.name << "_sum" << label_block(h) << " " << fmt_g(h.hist.sum())
           << "\n"
           << "seda_" << h.name << "_count" << label_block(h) << " " << h.hist.count()
           << "\n";
    }
}

namespace {

/// `, "labels": {"tenant": "3"}` for labeled rows, "" otherwise.
template <typename Row>
std::string json_labels(const Row& r)
{
    if (r.label_key.empty()) return {};
    return ", \"labels\": {\"" + json_escaped(r.label_key) + "\": \"" +
           json_escaped(r.label_value) + "\"}";
}

}  // namespace

void write_json(const Snapshot& snap, std::ostream& os)
{
    os << "{\n  \"counters\": [";
    for (std::size_t i = 0; i < snap.counters.size(); ++i)
        os << (i ? "," : "") << "\n    {\"name\": \"" << json_escaped(snap.counters[i].name)
           << "\"" << json_labels(snap.counters[i])
           << ", \"value\": " << snap.counters[i].value << "}";
    os << (snap.counters.empty() ? "" : "\n  ") << "],\n  \"gauges\": [";
    for (std::size_t i = 0; i < snap.gauges.size(); ++i)
        os << (i ? "," : "") << "\n    {\"name\": \"" << json_escaped(snap.gauges[i].name)
           << "\"" << json_labels(snap.gauges[i])
           << ", \"value\": " << snap.gauges[i].value << "}";
    os << (snap.gauges.empty() ? "" : "\n  ") << "],\n  \"histograms\": [";
    for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
        const auto& row = snap.histograms[i];
        const auto& h = row.hist;
        os << (i ? "," : "") << "\n    {\"name\": \"" << json_escaped(row.name) << "\""
           << json_labels(row) << ", \"count\": " << h.count()
           << ", \"sum\": " << fmt_g(h.sum()) << ", \"min\": " << fmt_g(h.min())
           << ", \"mean\": " << fmt_g(h.mean())
           << ", \"p50\": " << fmt_g(h.percentile(50))
           << ", \"p90\": " << fmt_g(h.percentile(90))
           << ", \"p99\": " << fmt_g(h.percentile(99))
           << ", \"p999\": " << fmt_g(h.percentile(99.9))
           << ", \"max\": " << fmt_g(h.max());
        if (row.exemplar_trace_id != 0)
            os << ", \"exemplar\": {\"trace_id\": " << row.exemplar_trace_id
               << ", \"value\": " << fmt_g(row.exemplar_value) << "}";
        os << "}";
    }
    os << (snap.histograms.empty() ? "" : "\n  ") << "]\n}\n";
}

void write_stage_table(const Snapshot& snap, std::ostream& os)
{
    Ascii_table t({"metric", "count", "mean", "p50", "p90", "p99", "p999", "max"});
    for (const auto& h : snap.histograms) {
        if (h.hist.count() == 0) continue;
        t.add_row({h.name + label_block(h), std::to_string(h.hist.count()),
                   fmt_short(h.hist.mean()), fmt_short(h.hist.percentile(50)),
                   fmt_short(h.hist.percentile(90)), fmt_short(h.hist.percentile(99)),
                   fmt_short(h.hist.percentile(99.9)), fmt_short(h.hist.max())});
    }
    if (t.row_count() != 0) t.print(os);
    for (const auto& c : snap.counters)
        os << c.name << label_block(c) << " = " << c.value << "\n";
    for (const auto& g : snap.gauges)
        os << g.name << label_block(g) << " = " << g.value << "\n";
}

const Snapshot::Histogram_row* find_histogram(const Snapshot& snap, std::string_view name)
{
    for (const auto& h : snap.histograms) {
        if (h.label_key.empty() && h.name == name) return &h;
        if (!h.label_key.empty() && h.name + label_block(h) == name) return &h;
    }
    return nullptr;
}

}  // namespace seda::obs
