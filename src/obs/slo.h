// Declarative latency SLOs with error-budget burn tracking.
//
// An objective reads `FAMILY:pPCT<THRESH[us|ms|s]:TARGET`, e.g.
//   serve_tenant_latency_us:p99<500us:0.999
// "at least 99.9% of observations in FAMILY must land at or under 500 us"
// (the pPCT names the percentile reported per window; the budget itself is
// counted sample-exact from the histogram buckets, not from the
// percentile).
//
// Evaluation is windowed over the snapshot differ's intervals
// (obs/snapshot.h): each non-empty window contributes its interval
// histogram, the good count comes from Log_histogram::count_le, and the
// SRE error-budget arithmetic follows:
//     budget          = 1 - target            (allowed bad fraction)
//     window burn     = (bad/total) / budget  (1.0 = consuming exactly on
//                                              schedule; >1 = overspending)
//     budget_consumed = (1 - availability) / budget  over the whole run
// Burn is tracked multi-window: the peak single-window burn (fast signal)
// and the peak burn over a sliding run of `slow_windows` windows (slow
// signal) -- the standard fast+slow alert pair.
//
// Reports go to --slo-out files or stderr, NEVER stdout: SLO numbers are
// timing-bound and must not perturb the byte-identical --json contracts.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/snapshot.h"

namespace seda::obs {

/// One parsed objective.
struct Slo_spec {
    std::string text;          ///< the original spec string, verbatim
    std::string family;        ///< histogram family name (label rows fold)
    double percentile = 99.0;  ///< reported per window (0 < p <= 100)
    double threshold = 0;      ///< in the family's native unit (us for *_us)
    double target = 0.999;     ///< required good fraction (0 < t < 1)
};

/// Parses `FAMILY:pPCT<THRESH[us|ms|s]:TARGET`; throws Seda_error with a
/// pointed message on any malformed piece.
[[nodiscard]] Slo_spec parse_slo(std::string_view spec);

/// Accumulated verdict for one objective.
struct Slo_result {
    Slo_spec spec;
    u64 windows = 0;           ///< non-empty windows observed
    u64 violations = 0;        ///< windows whose pPCT exceeded the threshold
    u64 total = 0;             ///< observations across all windows
    double good = 0;           ///< observations <= threshold (bucket-exact)
    double worst_window_pct = 0;  ///< worst per-window pPCT value seen
    double peak_burn_1w = 0;   ///< fast burn signal
    double peak_burn_slow = 0; ///< slow burn signal (over `slow_windows`)
    double last_burn = 0;      ///< most recent window's burn

    [[nodiscard]] double availability() const
    {
        return total == 0 ? 1.0 : good / static_cast<double>(total);
    }
    /// Fraction of the error budget consumed (>1 = SLO missed).
    [[nodiscard]] double budget_consumed() const
    {
        return (1.0 - availability()) / (1.0 - spec.target);
    }
    [[nodiscard]] bool met() const { return budget_consumed() <= 1.0; }
};

/// Evaluates a set of objectives over snapshot windows.  Feed it from the
/// Snapshot_poller callback; it is not itself thread-safe (all calls on
/// the poller thread, report after stop()).
class Slo_tracker {
public:
    explicit Slo_tracker(std::vector<Slo_spec> specs, std::size_t slow_windows = 12);

    /// Folds one differ interval into every objective.  Windows where an
    /// objective's family recorded nothing are skipped for that objective
    /// (an idle window neither burns nor earns budget).
    void observe(const Interval& iv);

    [[nodiscard]] const std::vector<Slo_result>& results() const { return results_; }
    [[nodiscard]] bool all_met() const;

    /// JSON report (one object, `slos` array + `all_met`), for --slo-out.
    void write_json(std::ostream& os) const;

    /// One-line-per-objective human summary, for stderr.
    void write_summary(std::ostream& os) const;

private:
    std::size_t slow_windows_;
    std::vector<Slo_result> results_;
    /// Per-objective ring of recent (bad, total) window pairs backing the
    /// slow burn signal.
    std::vector<std::vector<std::pair<double, u64>>> recent_;
};

}  // namespace seda::obs
