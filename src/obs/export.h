// Snapshot exporters: Prometheus text exposition, JSON, and the stderr
// per-stage table.  All outputs are timing-bound by construction (they
// render a scrape); they must never be routed to the deterministic stdout
// --json contracts.
#pragma once

#include <iosfwd>
#include <string_view>

#include "obs/metrics.h"

namespace seda::obs {

/// Prometheus text exposition: counters, gauges, and histograms (cumulative
/// `le` buckets -- only non-empty ones plus `+Inf` -- with `_sum`/`_count`).
/// Metric names gain a `seda_` prefix; the unit stays in the name suffix
/// (`_us` stages are microseconds).
void write_prometheus(const Snapshot& snap, std::ostream& os);

/// JSON snapshot: counters/gauges verbatim, histograms as summary rows
/// (count, sum, min, mean, p50/p90/p99/p999, max).
void write_json(const Snapshot& snap, std::ostream& os);

/// Human-readable per-stage percentile table plus the counter/gauge lines.
void write_stage_table(const Snapshot& snap, std::ostream& os);

/// The histogram row named `name`, or nullptr when absent.
[[nodiscard]] const Snapshot::Histogram_row* find_histogram(const Snapshot& snap,
                                                            std::string_view name);

}  // namespace seda::obs
