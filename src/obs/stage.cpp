#include "obs/stage.h"

#include <array>
#include <cstdlib>

#include "obs/trace.h"

namespace seda::obs {

namespace {

struct Stage_names {
    const char* metric;
    const char* trace;
    /// Hot-path stages (per-flush or finer) go through 1-in-N sampling;
    /// coarse stages (per window, per layer, per client run) are few
    /// enough to time every occurrence -- a short run would otherwise
    /// sample none of them.
    bool sampled;
};

constexpr std::array<Stage_names, k_stage_count> k_stage_names{{
    {"serve_admit_wait_us", "serve.admit_wait", false},
    {"serve_window_us", "serve.window", false},
    {"serve_batch_requests", "serve.batch", false},
    {"serve_assembly_us", "serve.assembly", true},
    {"serve_flush_write_us", "serve.flush_write", true},
    {"serve_flush_read_us", "serve.flush_read", true},
    {"serve_complete_us", "serve.complete", true},
    {"mem_stage_writes_us", "mem.stage_writes", true},
    {"crypto_baes_us", "crypto.baes", true},
    {"crypto_bulk_mac_us", "crypto.bulk_mac", true},
    {"mem_locate_us", "mem.locate", true},
    {"crypto_verify_us", "crypto.verify", true},
    {"infer_load_us", "infer.load", false},
    {"infer_input_us", "infer.input", false},
    {"infer_layer_us", "infer.layer", false},
    {"loadgen_client_us", "loadgen.client", false},
    {"attack_probe_us", "attack.probe", false},
    {"serve_req_queue_us", "req.queue", true},
    {"serve_req_window_us", "req.window", true},
    {"serve_req_crypto_us", "req.crypto", true},
    {"serve_req_complete_us", "req.complete", true},
}};

// Deterministic 1-in-N metric sampling.  A timed span costs two rdtsc
// reads plus a histogram record (~60ns on this class of hardware), and the
// batching hot path crosses several span sites per flush -- timing every
// one blows the <=2% serve-path budget.  Every Nth construction per thread
// is timed instead: stage histograms stay populated with unbiased interval
// samples while the other N-1 sites cost one branch and one increment.  Trace
// recordings are exempt (an explicit opt-in wants every span).
unsigned resolve_sample_stride()
{
    const char* env = std::getenv("SEDA_OBS_SAMPLE");
    if (env == nullptr || *env == '\0') return 32;
    const long v = std::strtol(env, nullptr, 10);
    return v >= 1 ? static_cast<unsigned>(v) : 1;
}

#ifndef SEDA_DISABLE_OBS

thread_local unsigned t_sample_tick = 0;

bool metric_sample()
{
    return ++t_sample_tick % stage_sample_stride() == 0;
}

#endif  // SEDA_DISABLE_OBS

}  // namespace

#ifndef SEDA_DISABLE_OBS

namespace detail {

/// Reads the arming word, resolving it on first use (the trace bit is kept
/// current by the recorder via fetch_or/fetch_and; resolution recomputes
/// both bits from their sources of truth, so a concurrent first use is
/// benign).  Resolving also triggers enabled()'s tick calibration.
u8 arm_state()
{
    u8 arm = g_span_arm.load(std::memory_order_relaxed);
    if (arm & k_arm_unresolved) {
        arm = static_cast<u8>((enabled() ? k_arm_metrics : 0) |
                              (Trace_recorder::active() ? k_arm_trace : 0));
        g_span_arm.store(arm, std::memory_order_relaxed);
    }
    return arm;
}

}  // namespace detail

#endif  // SEDA_DISABLE_OBS

unsigned stage_sample_stride()
{
    static const unsigned stride = resolve_sample_stride();
    return stride;
}

const char* stage_metric_name(Stage s)
{
    return k_stage_names[static_cast<std::size_t>(s)].metric;
}

const char* stage_trace_name(Stage s)
{
    return k_stage_names[static_cast<std::size_t>(s)].trace;
}

Histogram stage_histogram(Stage s)
{
    // One registration pass, then handle copies forever (thread-safe via
    // the static-local guard; handles are unarmed when observability is
    // off, which the registry decides at registration time).
    static const std::array<Histogram, k_stage_count> handles = [] {
        std::array<Histogram, k_stage_count> h;
        for (std::size_t i = 0; i < k_stage_count; ++i)
            h[i] = Metrics_registry::instance().histogram(k_stage_names[i].metric);
        return h;
    }();
    return handles[static_cast<std::size_t>(s)];
}

#ifndef SEDA_DISABLE_OBS

namespace detail {
std::atomic<u8> g_span_arm{k_arm_unresolved};
}  // namespace detail

void Stage_span::arm(std::string_view detail)
{
    const u8 a = seda::obs::detail::arm_state();
    const bool trace = (a & seda::obs::detail::k_arm_trace) != 0;
    const bool metric =
        (a & seda::obs::detail::k_arm_metrics) != 0 &&
        (trace || !k_stage_names[static_cast<std::size_t>(stage_)].sampled ||
         metric_sample());
    if (!metric && !trace) return;
    flags_ = static_cast<u8>((metric ? 1 : 0) | (trace ? 2 : 0));
    if (trace && !detail.empty()) detail_ = detail;
    t0_ = now_ticks();
}

void Stage_span::finish()
{
    const u64 t1 = now_ticks();
    if (flags_ & 1) stage_histogram(stage_).record(ticks_to_us(t1 - t0_));
    if (flags_ & 2) Trace_recorder::emit(stage_, detail_, t0_, t1);
}

void Phase_timer::arm()
{
    const u8 a = detail::arm_state();
    const bool trace = (a & detail::k_arm_trace) != 0;
    const bool metric = (a & detail::k_arm_metrics) != 0 && (trace || metric_sample());
    if (!metric && !trace) return;
    flags_ = static_cast<u8>((metric ? 1 : 0) | (trace ? 2 : 0));
    last_ = now_ticks();
}

void Phase_timer::record_lap(Stage s)
{
    const u64 t = now_ticks();
    if (flags_ & 1) stage_histogram(s).record(ticks_to_us(t - last_));
    if (flags_ & 2) Trace_recorder::emit(s, {}, last_, t);
    last_ = t;
}

#endif  // SEDA_DISABLE_OBS

}  // namespace seda::obs
