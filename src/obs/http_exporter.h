// Embedded HTTP scrape endpoint: the live telemetry plane's pull surface.
//
// A deliberately tiny dependency-free HTTP/1.1 server -- one background
// thread, a poll loop, serial connection handling, `Connection: close` on
// every response -- sized for a scraper hitting it a few times a second,
// not for serving traffic.  SECURITY: binds 127.0.0.1 ONLY (never
// INADDR_ANY) and is opt-in via seda_cli --listen / SEDA_OBS_LISTEN; the
// telemetry plane must not become a remote attack surface of the very
// system whose integrity the SeDA pipeline defends.
//
// Endpoints (GET/HEAD):
//   /metrics       Prometheus text exposition (obs::write_prometheus)
//   /metrics.json  JSON snapshot (obs::write_json)
//   /healthz       serve lifecycle state (obs/health.h): 200 while
//                  serving/draining, 503 while idle/stopped
//   /flight        non-consuming flight-recorder dump (obs/flight.h)
//   /              plain-text index of the above
//
// Determinism contract: everything served here is timing-bound telemetry
// flowing over a socket -- never stdout -- so the byte-identical --json
// contracts are untouched by an enabled exporter (CI proves it).  The
// exporter itself works even under SEDA_OBS=0 / SEDA_DISABLE_OBS (scrapes
// are just empty; /healthz still answers), matching the health plane's
// "liveness is not telemetry" rule.
#pragma once

#include <string>

#include "common/types.h"

namespace seda::obs {

struct Http_exporter_config {
    u16 port = 0;                         ///< 0 = ephemeral (see Http_exporter::port())
    std::size_t max_request_bytes = 8192; ///< oversize requests get 400 and a close
    int poll_interval_ms = 50;            ///< stop-flag latency of the accept loop
};

class Http_exporter {
public:
    explicit Http_exporter(Http_exporter_config cfg = {});
    ~Http_exporter();  ///< stop()s if still running

    Http_exporter(const Http_exporter&) = delete;
    Http_exporter& operator=(const Http_exporter&) = delete;

    /// Binds 127.0.0.1:port, starts listening, and spawns the serving
    /// thread.  Throws Seda_error if the port cannot be bound.  Must be
    /// called at most once.
    void start();

    /// Stops the serving thread and closes the socket.  Terminal and
    /// idempotent; in-flight responses finish first.
    void stop();

    /// The bound port (resolves an ephemeral request; valid after start()).
    [[nodiscard]] u16 port() const { return port_; }

    [[nodiscard]] bool running() const { return running_; }

    /// Requests served so far (any status; the serving thread owns it --
    /// read it after stop() for an exact count).
    [[nodiscard]] u64 requests_served() const { return requests_served_; }

private:
    void serve_loop();
    void handle_connection(int fd);

    Http_exporter_config cfg_;
    int listen_fd_ = -1;
    u16 port_ = 0;
    bool running_ = false;
    u64 requests_served_ = 0;
    // Reused across requests so a steady scrape stays off the allocator
    // once warm (the same discipline as Metrics_registry::scrape_into).
    std::string request_;
    std::string body_;
    std::string response_;
    struct Impl;
    Impl* impl_;
};

/// The port requested by the SEDA_OBS_LISTEN environment variable, or 0
/// when unset/empty.  Malformed values throw Seda_error.
[[nodiscard]] u16 listen_port_from_env();

}  // namespace seda::obs
