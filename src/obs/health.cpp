#include "obs/health.h"

#include <atomic>

namespace seda::obs {

namespace {

// Relaxed is enough: the state is advisory (a scrape racing a transition
// reads either side), and every counter is independently monotone-balanced.
std::atomic<u64> g_started_total{0};
std::atomic<u64> g_stopped_total{0};
std::atomic<u64> g_draining{0};

}  // namespace

const char* to_string(Health_state s)
{
    switch (s) {
        case Health_state::idle: return "idle";
        case Health_state::serving: return "serving";
        case Health_state::draining: return "draining";
        case Health_state::stopped: return "stopped";
    }
    return "?";
}

void health_server_started() { g_started_total.fetch_add(1, std::memory_order_relaxed); }
void health_server_stopped() { g_stopped_total.fetch_add(1, std::memory_order_relaxed); }
void health_drain_begin() { g_draining.fetch_add(1, std::memory_order_relaxed); }
void health_drain_end() { g_draining.fetch_sub(1, std::memory_order_relaxed); }

Health_state health_state()
{
    const u64 started = g_started_total.load(std::memory_order_relaxed);
    const u64 stopped = g_stopped_total.load(std::memory_order_relaxed);
    if (started == 0) return Health_state::idle;
    if (stopped >= started) return Health_state::stopped;
    if (g_draining.load(std::memory_order_relaxed) != 0) return Health_state::draining;
    return Health_state::serving;
}

u64 health_live_servers()
{
    const u64 started = g_started_total.load(std::memory_order_relaxed);
    const u64 stopped = g_stopped_total.load(std::memory_order_relaxed);
    return started > stopped ? started - stopped : 0;
}

u64 health_started_total() { return g_started_total.load(std::memory_order_relaxed); }

void health_reset_for_test()
{
    g_started_total.store(0, std::memory_order_relaxed);
    g_stopped_total.store(0, std::memory_order_relaxed);
    g_draining.store(0, std::memory_order_relaxed);
}

}  // namespace seda::obs
