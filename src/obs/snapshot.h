// Periodic snapshot differ: turns the registry's cumulative counters and
// histograms into per-interval rates and interval-delta distributions --
// the engine behind seda_cli --watch and the SLO window evaluator
// (obs/slo.h).
//
// The registry only accumulates; an interval is the subtraction of two
// scrapes.  Counter rows subtract to deltas (and divide by the wall
// interval for per-second rates); histogram rows subtract bucket-wise
// (Log_histogram::delta_since), so interval percentiles are exact to one
// bucket width -- the p99-of-the-last-second a dashboard actually wants,
// not the run-cumulative p99 that freezes as history accumulates.
//
// Everything here is timing-bound by construction and renders only to
// stderr or to callbacks; nothing may feed the stdout --json contracts.
#pragma once

#include <chrono>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace seda::obs {

/// One counter series' movement over an interval.
struct Counter_rate {
    std::string name;
    std::string label_key, label_value;
    u64 delta = 0;
    double per_second = 0;
};

/// One histogram series' interval-delta distribution.
struct Hist_delta {
    std::string name;
    std::string label_key, label_value;
    Log_histogram hist;
};

/// The difference between two cumulative snapshots, `seconds` apart.
struct Interval {
    double seconds = 0;
    std::vector<Counter_rate> counters;
    std::vector<Hist_delta> histograms;

    /// Sum of deltas across every series of counter family `name`
    /// (labeled families fold their per-label rows).
    [[nodiscard]] u64 family_delta(std::string_view name) const;

    /// Merged interval histogram across every series of family `name`
    /// (count()==0 when the family is absent or idle).
    [[nodiscard]] Log_histogram family_hist(std::string_view name) const;
};

/// Computes `cur - prev` into `out`, reusing its buffers (rows are
/// assigned in place; the differ allocates nothing once warm).  Series
/// present only in `cur` (registered mid-run) diff against zero.  Both
/// snapshots must come from scrape()/scrape_into (sorted rows).
void diff_snapshots(const Snapshot& prev, const Snapshot& cur, double seconds,
                    Interval& out);

/// What the --watch line tracks; defaults fit the serve path, cmd_infer
/// overrides the families for the replay path.
struct Watch_config {
    std::chrono::milliseconds interval{1000};
    std::string rate_counter = "serve_requests_total";       ///< req/s source
    std::string latency_family = "serve_tenant_latency_us";  ///< p50/p99/p999 source
    /// Per-tenant error numerator families (summed per label value) and the
    /// denominator families for the same label.
    std::vector<std::string> tenant_error_families = {
        "serve_tenant_mac_mismatch_total", "serve_tenant_replay_total",
        "serve_tenant_rejected_total"};
    std::vector<std::string> tenant_total_families = {"serve_tenant_writes_total",
                                                      "serve_tenant_reads_total"};
};

/// One stderr live-table line for an interval: req/s, interval latency
/// percentiles, and per-tenant error rates (only tenants with errors).
[[nodiscard]] std::string render_watch_line(const Interval& iv, const Watch_config& cfg);

/// Background periodic scraper: every `interval` it scrapes, diffs against
/// the previous scrape, and hands the Interval to the callback (always on
/// the poller thread).  stop() emits one final partial interval first, so
/// the tail of a run is never dropped.  Snapshots ping-pong between two
/// reused buffers (scrape_into), keeping the steady-state loop
/// allocation-free.
class Snapshot_poller {
public:
    using Callback = std::function<void(const Interval&)>;

    Snapshot_poller(std::chrono::milliseconds interval, Callback cb);
    ~Snapshot_poller();  ///< stop()s if still running

    Snapshot_poller(const Snapshot_poller&) = delete;
    Snapshot_poller& operator=(const Snapshot_poller&) = delete;

    /// Takes the baseline scrape and spawns the poller thread.
    void start();

    /// Final flush interval, then joins.  Idempotent.
    void stop();

private:
    void loop();

    struct Impl;
    Impl* impl_;
};

}  // namespace seda::obs
