// Process-wide server health lifecycle, backing the /healthz endpoint.
//
// serve::Server reports its transitions here (start/drain/stop); the HTTP
// exporter reads the folded state.  Deliberately NOT gated on
// obs::enabled(): health is an operational liveness signal, not telemetry,
// so /healthz keeps answering under SEDA_OBS=0 and SEDA_DISABLE_OBS.  The
// counters are process-wide like every registry metric -- multiple live
// Servers fold into one state (serving while any serves, draining while
// any drains).
#pragma once

#include "common/types.h"

namespace seda::obs {

enum class Health_state : u8 {
    idle,      ///< no server has started yet
    serving,   ///< at least one server is live
    draining,  ///< at least one live server is inside drain()
    stopped    ///< servers existed and all have stopped
};

[[nodiscard]] const char* to_string(Health_state s);

/// Lifecycle hooks, called by serve::Server.  Cheap (relaxed atomics) and
/// safe from any thread; paired calls must balance.
void health_server_started();
void health_server_stopped();
void health_drain_begin();
void health_drain_end();

/// The folded process state (see Health_state).
[[nodiscard]] Health_state health_state();

/// Servers currently live (started and not yet stopped).
[[nodiscard]] u64 health_live_servers();

/// Servers ever started (monotonic; distinguishes idle from stopped).
[[nodiscard]] u64 health_started_total();

/// Resets the lifecycle counters (tests only; never call with live servers).
void health_reset_for_test();

}  // namespace seda::obs
