#include "obs/request_trace.h"

#ifndef SEDA_DISABLE_OBS

#include <atomic>

#include "obs/trace.h"

namespace seda::obs::detail {

namespace {

/// Process-wide trace id allocator; 0 is reserved for "untraced".
std::atomic<u64> g_next_trace_id{1};

/// 1-in-N sampling tick for the metrics-only arming state, independent of
/// the Stage_span tick so request sampling doesn't skew span sampling.
thread_local unsigned t_req_tick = 0;

}  // namespace

void request_begin_slow(Trace_context& ctx)
{
    const u8 arm = arm_state();
    if (arm == 0) return;
    // A recording captures every request; metrics alone sample 1-in-N (the
    // four phase records per request are as costly as a timed span).
    if ((arm & k_arm_trace) == 0 && ++t_req_tick % stage_sample_stride() != 0) return;
    ctx.trace_id = g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
    ctx.t_submit = now_ticks();
}

void request_finish_slow(Trace_context& ctx)
{
    const u64 t_done = now_ticks();
    // Monotonic repair: a request rejected before pickup or flushed on no
    // path leaves zero stamps; collapse the missing phase onto the previous
    // boundary so the decomposition still sums to the end-to-end latency.
    const u64 ts = ctx.t_submit;
    const u64 tp = ctx.t_pickup >= ts ? ctx.t_pickup : ts;
    const u64 tf0 = ctx.t_flush0 >= tp ? ctx.t_flush0 : tp;
    const u64 tf1 = ctx.t_flush1 >= tf0 ? ctx.t_flush1 : tf0;
    const u64 te = t_done >= tf1 ? t_done : tf1;

    const u8 arm = arm_state();
    if ((arm & k_arm_metrics) != 0) {
        const u64 id = ctx.trace_id;
        stage_histogram(Stage::req_queue).record(ticks_to_us(tp - ts), id);
        stage_histogram(Stage::req_window).record(ticks_to_us(tf0 - tp), id);
        stage_histogram(Stage::req_crypto).record(ticks_to_us(tf1 - tf0), id);
        stage_histogram(Stage::req_complete).record(ticks_to_us(te - tf1), id);
    }
    if (Trace_recorder::active()) {
        Trace_recorder::emit(Stage::req_queue, {}, ts, tp);
        Trace_recorder::emit(Stage::req_window, {}, tp, tf0);
        Trace_recorder::emit(Stage::req_crypto, {}, tf0, tf1);
        Trace_recorder::emit(Stage::req_complete, {}, tf1, te);
        Trace_recorder::emit_flow('s', ctx.trace_id, ts);
        Trace_recorder::emit_flow('t', ctx.trace_id, tf0);
        Trace_recorder::emit_flow('f', ctx.trace_id, te);
    }
    ctx.trace_id = 0;  // a stray double-finish becomes a no-op
}

}  // namespace seda::obs::detail

#endif  // SEDA_DISABLE_OBS
