// Named pipeline stages and the RAII span timers that feed them.
//
// Each stage owns one registry histogram (stage_metric_name) and one
// chrome://tracing event name (stage_trace_name).  A Stage_span times a
// scope; a Phase_timer times consecutive phases of one function sharing the
// boundary clock reads.  Both check their arming flags before touching the
// clock, so with observability disabled (SEDA_OBS=0) a span site costs one
// predictable branch, and with SEDA_DISABLE_OBS it compiles to nothing.
//
// Metric recording on hot-path stages (per-flush or finer) samples every
// Nth span construction per thread (stage_sample_stride, SEDA_OBS_SAMPLE,
// default 32): the clock reads and histogram records are the dominant cost
// on the serve hot path, and unbiased 1-in-N interval samples keep the
// histograms faithful at ~1/N the price.  Coarse stages (per window, per
// layer, per client run) are timed on every occurrence, and an active
// trace recording times every span regardless.
#pragma once

#include <atomic>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace seda::obs {

/// The instrumented pipeline stages (docs/OBSERVABILITY.md catalogs where
/// each is measured).
enum class Stage : u8 {
    // serve: front end and batching scheduler
    admit_wait,      ///< submit() -> scheduler pickup, per request
    window,          ///< one Admission_queue::pop_batch coalescing window
    batch_requests,  ///< requests per dispatched window (a count, not a time)
    assembly,        ///< Batch_scheduler per-tenant bucketing
    flush_write,     ///< one coalesced write batch through the session
    flush_read,      ///< one coalesced read batch through the session
    complete,        ///< completion fan-out (latency records, promise fulfil)
    // core: secure-memory bulk phases (cover the sharded session's bulk
    // calls too -- a session-level span would just repeat flush_write/read)
    stage_writes,  ///< validate + VN bump + slot staging
    baes,          ///< base-OTP batch + per-slot B-AES
    bulk_mac,      ///< bulk positional HMAC (write MACs / read expected MACs)
    locate,        ///< read-side validate + locate + VN fetch
    verify,        ///< read-side MAC compare + decrypt
    // infer: trace replay
    infer_load,   ///< weight load + activation prefill staging
    infer_input,  ///< per-inference fresh-input staging
    infer_layer,  ///< one layer's trace replay
    // loadgen
    client,  ///< one closed-loop client's whole run
    // attack campaign
    attack_probe,  ///< one prober's whole fault sequence against its tenant
    // serve: per-request critical-path decomposition (recorded by the
    // request trace, not by Stage_span sites -- see obs/request_trace.h)
    req_queue,     ///< submit -> scheduler pickup for one traced request
    req_window,    ///< pickup -> its flush begins (coalescing window share)
    req_crypto,    ///< inside the session flush (bulk crypto share)
    req_complete,  ///< flush end -> completion fan-out done
    count_
};

inline constexpr std::size_t k_stage_count = static_cast<std::size_t>(Stage::count_);

[[nodiscard]] const char* stage_metric_name(Stage s);
[[nodiscard]] const char* stage_trace_name(Stage s);

/// Cached process-wide registry handle for a stage's histogram (unarmed
/// when observability is off).
[[nodiscard]] Histogram stage_histogram(Stage s);

/// The 1-in-N metric sampling stride for Stage_span / Phase_timer
/// (SEDA_OBS_SAMPLE, default 32; trace recordings capture every span).
[[nodiscard]] unsigned stage_sample_stride();

#ifdef SEDA_DISABLE_OBS

class Stage_span {
public:
    explicit Stage_span(Stage) {}
    Stage_span(Stage, std::string_view) {}
    Stage_span(const Stage_span&) = delete;
    Stage_span& operator=(const Stage_span&) = delete;
};

class Phase_timer {
public:
    void lap(Stage) {}
};

#else

namespace detail {

/// Process-wide span arming word: bit 0 = metrics runtime-enabled, bit 1 =
/// trace recording active, bit 7 = not resolved yet (first span resolves it
/// from SEDA_OBS / the trace recorder).  The constructors test it with one
/// inline relaxed load so a fully disarmed site costs a load and a
/// predictable branch -- no out-of-line call.
inline constexpr u8 k_arm_metrics = 1;
inline constexpr u8 k_arm_trace = 2;
inline constexpr u8 k_arm_unresolved = 0x80;
extern std::atomic<u8> g_span_arm;

/// Reads the arming word, resolving it from SEDA_OBS / the trace recorder
/// on first use.  Shared by the span timers and the request tracer.
[[nodiscard]] u8 arm_state();

}  // namespace detail

/// Times a scope into its stage's histogram and (when a trace recording is
/// active) emits a chrome://tracing span.  `detail` is appended to the
/// trace event name ("infer.layer:conv1"); it is only copied when tracing.
class Stage_span {
public:
    explicit Stage_span(Stage s) : Stage_span(s, {}) {}
    Stage_span(Stage s, std::string_view detail) : stage_(s)
    {
        if (detail::g_span_arm.load(std::memory_order_relaxed) != 0) arm(detail);
    }
    ~Stage_span()
    {
        if (flags_ != 0) finish();
    }
    Stage_span(const Stage_span&) = delete;
    Stage_span& operator=(const Stage_span&) = delete;

private:
    void arm(std::string_view detail);
    void finish();

    u64 t0_ = 0;
    Stage stage_;
    u8 flags_ = 0;  ///< bit 0: record histogram, bit 1: emit trace span
    std::string detail_;
};

/// Times consecutive phases of one function: each lap() records the
/// interval since the previous mark into the named stage, so N adjacent
/// phases cost N+1 clock reads instead of 2N.
class Phase_timer {
public:
    Phase_timer()
    {
        if (detail::g_span_arm.load(std::memory_order_relaxed) != 0) arm();
    }
    void lap(Stage s)
    {
        if (flags_ != 0) record_lap(s);
    }

private:
    void arm();
    void record_lap(Stage s);

    u64 last_ = 0;
    u8 flags_ = 0;
};

#endif  // SEDA_DISABLE_OBS

}  // namespace seda::obs
