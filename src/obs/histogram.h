// Log-scale fixed-bucket histogram for latency-class metrics.
//
// HdrHistogram-style bucketing: a recorded value is scaled into fixed-point
// "ticks" (2^10 per unit, so microsecond metrics resolve to ~1 ns), small
// tick counts get exact single-tick buckets, and every later octave splits
// into 2^5 linear sub-buckets.  Worst-case relative bucket width is 1/32
// (~3.1%), so p50/p99/p999 read back exact to that resolution from a FIXED
// number of buckets -- memory stays bounded no matter how many samples are
// recorded, and two histograms merge by adding bucket counts (the property
// Serve_stats needs to accumulate per-dispatch deltas, and the registry
// needs to fold per-thread shards on scrape).
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/types.h"

namespace seda::obs {

/// The value -> bucket mapping, shared by Log_histogram and the registry's
/// atomic per-thread shard cells (obs/metrics.cpp) so shard counts fold
/// straight into a Log_histogram on scrape.
struct Log_bucketing {
    static constexpr unsigned k_tick_bits = 10;  ///< fixed point: 1024 ticks per unit
    static constexpr unsigned k_sub_bits = 5;    ///< 32 linear sub-buckets per octave
    static constexpr unsigned k_max_exp = 47;    ///< ticks clamp below 2^48 (~2^38 units)
    static constexpr u64 k_max_ticks = (u64{1} << (k_max_exp + 1)) - 1;
    static constexpr std::size_t k_sub_count = std::size_t{1} << k_sub_bits;
    static constexpr std::size_t k_bucket_count =
        ((k_max_exp - k_sub_bits + 1) << k_sub_bits) + k_sub_count;

    /// Fixed-point ticks for a value (negative values clamp to 0, huge ones
    /// to the top bucket -- a histogram must never throw from a hot path).
    [[nodiscard]] static u64 ticks_from(double v)
    {
        if (!(v > 0.0)) return 0;
        const double t = std::round(v * static_cast<double>(u64{1} << k_tick_bits));
        if (t >= static_cast<double>(k_max_ticks)) return k_max_ticks;
        return static_cast<u64>(t);
    }

    [[nodiscard]] static constexpr double value_from_ticks(double ticks)
    {
        return ticks / static_cast<double>(u64{1} << k_tick_bits);
    }

    [[nodiscard]] static constexpr std::size_t index_of(u64 ticks)
    {
        if (ticks < k_sub_count) return static_cast<std::size_t>(ticks);
        const unsigned e = static_cast<unsigned>(std::bit_width(ticks)) - 1;
        return ((e - k_sub_bits + 1) << k_sub_bits) +
               static_cast<std::size_t>((ticks >> (e - k_sub_bits)) & (k_sub_count - 1));
    }

    /// Inclusive lower tick of bucket `i`.
    [[nodiscard]] static constexpr u64 lower_ticks(std::size_t i)
    {
        if (i < k_sub_count) return i;
        const unsigned e = static_cast<unsigned>(i >> k_sub_bits) + k_sub_bits - 1;
        return (u64{1} << e) + (static_cast<u64>(i & (k_sub_count - 1)) << (e - k_sub_bits));
    }

    /// Tick width of bucket `i` (its exclusive upper edge is lower + width).
    [[nodiscard]] static constexpr u64 width_ticks(std::size_t i)
    {
        if (i < k_sub_count) return 1;
        const unsigned e = static_cast<unsigned>(i >> k_sub_bits) + k_sub_bits - 1;
        return u64{1} << (e - k_sub_bits);
    }
};

static_assert(Log_bucketing::index_of(Log_bucketing::k_max_ticks) + 1 ==
              Log_bucketing::k_bucket_count);
static_assert(Log_bucketing::lower_ticks(Log_bucketing::k_sub_count) ==
              Log_bucketing::k_sub_count);

/// The plain (single-writer) histogram.  Unit-agnostic: record whatever the
/// metric's natural unit is (the name carries it, e.g. `latency_us`).
class Log_histogram {
public:
    void record(double v)
    {
        const u64 t = Log_bucketing::ticks_from(v);
        const std::size_t i = Log_bucketing::index_of(t);
        if (counts_.size() <= i) counts_.resize(i + 1, 0);
        ++counts_[i];
        ++count_;
        sum_ticks_ += t;
        min_ticks_ = std::min(min_ticks_, t);
        max_ticks_ = std::max(max_ticks_, t);
    }

    /// Forgets every sample but keeps the bucket vector's capacity, so a
    /// reused snapshot row (Metrics_registry::scrape_into) re-fills without
    /// reallocating.
    void clear()
    {
        std::fill(counts_.begin(), counts_.end(), u64{0});
        count_ = 0;
        sum_ticks_ = 0;
        min_ticks_ = ~u64{0};
        max_ticks_ = 0;
    }

    /// The interval histogram `this - earlier`, where `earlier` is a prior
    /// cumulative snapshot of the same series (bucket counts subtract; the
    /// registry only ever adds, so the difference is itself a valid sample
    /// set).  min/max are not recoverable from cumulative summaries, so the
    /// delta's extremes are reconstructed from its own outermost non-empty
    /// buckets -- exact to one bucket width, same bound as percentile().
    /// Writes into `out` (cleared first) to keep the periodic differ
    /// allocation-free once buffers are warm.
    void delta_since(const Log_histogram& earlier, Log_histogram& out) const
    {
        out.clear();
        if (out.counts_.size() < counts_.size()) out.counts_.resize(counts_.size(), 0);
        for (std::size_t i = 0; i < counts_.size(); ++i) {
            const u64 prev = i < earlier.counts_.size() ? earlier.counts_[i] : 0;
            const u64 d = counts_[i] >= prev ? counts_[i] - prev : 0;
            out.counts_[i] = d;
            if (d == 0) continue;
            out.count_ += d;
            const u64 lower = Log_bucketing::lower_ticks(i);
            if (out.min_ticks_ == ~u64{0}) out.min_ticks_ = lower;
            out.max_ticks_ = lower + Log_bucketing::width_ticks(i) - 1;
        }
        out.sum_ticks_ = sum_ticks_ >= earlier.sum_ticks_ ? sum_ticks_ - earlier.sum_ticks_ : 0;
    }

    [[nodiscard]] Log_histogram delta_since(const Log_histogram& earlier) const
    {
        Log_histogram out;
        delta_since(earlier, out);
        return out;
    }

    /// Estimated number of samples <= `v`: whole buckets below, plus a
    /// linear fraction of the bucket containing `v` (the SLO good-count
    /// primitive; exact to one bucket width like percentile()).
    [[nodiscard]] double count_le(double v) const
    {
        if (count_ == 0) return 0.0;
        const u64 t = Log_bucketing::ticks_from(v);
        if (t >= max_ticks_) return static_cast<double>(count_);
        if (t < min_ticks_) return 0.0;
        const std::size_t vi = Log_bucketing::index_of(t);
        double good = 0.0;
        for (std::size_t i = 0; i < counts_.size() && i <= vi; ++i) {
            if (counts_[i] == 0) continue;
            if (i < vi) {
                good += static_cast<double>(counts_[i]);
                continue;
            }
            const u64 lower = Log_bucketing::lower_ticks(i);
            const u64 width = Log_bucketing::width_ticks(i);
            const double frac =
                static_cast<double>(t - lower + 1) / static_cast<double>(width);
            good += static_cast<double>(counts_[i]) * std::min(frac, 1.0);
        }
        return std::min(good, static_cast<double>(count_));
    }

    /// Adds another histogram's samples (bucket counts add; used both by
    /// Serve_stats::merge and by tests cross-checking shard merges).
    void merge(const Log_histogram& o)
    {
        if (o.count_ == 0) return;
        if (counts_.size() < o.counts_.size()) counts_.resize(o.counts_.size(), 0);
        for (std::size_t i = 0; i < o.counts_.size(); ++i) counts_[i] += o.counts_[i];
        count_ += o.count_;
        sum_ticks_ += o.sum_ticks_;
        min_ticks_ = std::min(min_ticks_, o.min_ticks_);
        max_ticks_ = std::max(max_ticks_, o.max_ticks_);
    }

    [[nodiscard]] u64 count() const { return count_; }
    [[nodiscard]] double sum() const
    {
        return Log_bucketing::value_from_ticks(static_cast<double>(sum_ticks_));
    }
    [[nodiscard]] double mean() const
    {
        return count_ == 0 ? 0.0 : sum() / static_cast<double>(count_);
    }
    [[nodiscard]] double min() const
    {
        return count_ == 0 ? 0.0
                           : Log_bucketing::value_from_ticks(static_cast<double>(min_ticks_));
    }
    [[nodiscard]] double max() const
    {
        return count_ == 0 ? 0.0
                           : Log_bucketing::value_from_ticks(static_cast<double>(max_ticks_));
    }

    /// The `pct`-th percentile (0..100; 0 for empty).  Rank is nearest-rank
    /// over the bucket counts; the position inside the owning bucket is then
    /// linearly interpolated (and clamped to the recorded min/max, which
    /// makes single-value and extreme-tail reads exact).  Error vs the true
    /// sample percentile is therefore at most one bucket width --
    /// `resolution_at` that value.
    [[nodiscard]] double percentile(double pct) const
    {
        if (count_ == 0) return 0.0;
        pct = std::clamp(pct, 0.0, 100.0);
        u64 rank = static_cast<u64>(std::ceil(pct / 100.0 * static_cast<double>(count_)));
        rank = std::clamp<u64>(rank, 1, count_);
        u64 cum = 0;
        for (std::size_t i = 0; i < counts_.size(); ++i) {
            const u64 n = counts_[i];
            if (n == 0) continue;
            if (cum + n >= rank) {
                const double lower = static_cast<double>(Log_bucketing::lower_ticks(i));
                const double width = static_cast<double>(Log_bucketing::width_ticks(i));
                const double frac =
                    static_cast<double>(rank - cum) / static_cast<double>(n);
                const double t = std::clamp(lower + width * frac,
                                            static_cast<double>(min_ticks_),
                                            static_cast<double>(max_ticks_));
                return Log_bucketing::value_from_ticks(t);
            }
            cum += n;
        }
        return max();
    }

    /// Bucket width (in value units) at `v`: the bound on percentile error
    /// around that value.
    [[nodiscard]] static double resolution_at(double v)
    {
        const std::size_t i = Log_bucketing::index_of(Log_bucketing::ticks_from(v));
        return Log_bucketing::value_from_ticks(
            static_cast<double>(Log_bucketing::width_ticks(i)));
    }

    /// Raw bucket counts (trimmed: indexes past the last touched bucket are
    /// implicitly zero).  Exporters pair entry `i` with
    /// `Log_bucketing::lower_ticks/width_ticks(i)`.
    [[nodiscard]] const std::vector<u64>& bucket_counts() const { return counts_; }

    /// Exclusive upper edge of bucket `i` in value units (export helper).
    [[nodiscard]] static double bucket_upper(std::size_t i)
    {
        return Log_bucketing::value_from_ticks(static_cast<double>(
            Log_bucketing::lower_ticks(i) + Log_bucketing::width_ticks(i)));
    }

    // Shard-merge entries used by the registry scrape: fold one pre-bucketed
    // per-thread cell in (bucket counts first, then the summary fields; the
    // sample count is derived from the buckets so rank walks stay
    // self-consistent even if a concurrent record is mid-flight).
    void absorb_bucket(std::size_t i, u64 n)
    {
        if (n == 0) return;
        if (counts_.size() <= i) counts_.resize(i + 1, 0);
        counts_[i] += n;
        count_ += n;
    }
    void absorb_summary(u64 sum_ticks, u64 min_ticks, u64 max_ticks)
    {
        sum_ticks_ += sum_ticks;
        min_ticks_ = std::min(min_ticks_, min_ticks);
        max_ticks_ = std::max(max_ticks_, max_ticks);
    }

private:
    std::vector<u64> counts_;  ///< grown lazily up to the highest touched bucket
    u64 count_ = 0;
    u64 sum_ticks_ = 0;
    u64 min_ticks_ = ~u64{0};
    u64 max_ticks_ = 0;
};

}  // namespace seda::obs
