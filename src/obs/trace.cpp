#include "obs/trace.h"

#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace seda::obs {

#ifdef SEDA_DISABLE_OBS

void Trace_recorder::start() {}
bool Trace_recorder::active() { return false; }
void Trace_recorder::write_json(std::ostream& os)
{
    os << "{\"traceEvents\": []}\n";
}
u64 Trace_recorder::dropped() { return 0; }
void Trace_recorder::emit(Stage, std::string_view, u64, u64) {}
void Trace_recorder::emit_flow(char, u64, u64) {}

#else

namespace {

struct Trace_event {
    Stage stage;
    std::string detail;
    u64 t0, t1;
    char phase = 0;  ///< 0 = complete ("X") span; 's'/'t'/'f' = flow event
    u64 flow_id = 0;
};

struct Trace_buffer {
    std::mutex mutex;  ///< emit vs write_json drain (uncontended in steady state)
    u32 tid = 0;
    std::vector<Trace_event> events;
    u64 dropped = 0;
};

std::atomic<bool> g_active{false};
std::atomic<u64> g_origin{0};  ///< ticks at start(); the ts origin

std::mutex g_mutex;  ///< guards the buffer list

/// All buffers ever created, leaky so events from exited threads survive
/// until the drain and thread_local pointers never dangle.
std::vector<std::unique_ptr<Trace_buffer>>& buffers()
{
    static auto* const v = new std::vector<std::unique_ptr<Trace_buffer>>();
    return *v;
}

thread_local Trace_buffer* t_buffer = nullptr;

Trace_buffer& local_buffer()
{
    if (t_buffer == nullptr) {
        std::lock_guard lock(g_mutex);
        auto& all = buffers();
        all.push_back(std::make_unique<Trace_buffer>());
        all.back()->tid = static_cast<u32>(all.size());
        t_buffer = all.back().get();
    }
    return *t_buffer;
}

void append_escaped(std::string& out, std::string_view s)
{
    for (const char c : s) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
    }
}

std::string fmt_us(double us)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", us);
    return buf;
}

}  // namespace

void Trace_recorder::start()
{
    (void)ticks_to_us(0);  // calibrate before anything is measured
    g_origin.store(now_ticks(), std::memory_order_relaxed);
    g_active.store(true, std::memory_order_release);
    detail::g_span_arm.fetch_or(detail::k_arm_trace, std::memory_order_relaxed);
}

bool Trace_recorder::active() { return g_active.load(std::memory_order_acquire); }

void Trace_recorder::emit(Stage s, std::string_view detail, u64 t0, u64 t1)
{
    if (!active()) return;
    Trace_buffer& b = local_buffer();
    std::lock_guard lock(b.mutex);
    if (b.events.size() >= k_max_events_per_thread) {
        ++b.dropped;
        return;
    }
    b.events.push_back({s, std::string(detail), t0, t1, 0, 0});
}

void Trace_recorder::emit_flow(char phase, u64 id, u64 t)
{
    if (!active()) return;
    Trace_buffer& b = local_buffer();
    std::lock_guard lock(b.mutex);
    if (b.events.size() >= k_max_events_per_thread) {
        ++b.dropped;
        return;
    }
    b.events.push_back({Stage::count_, {}, t, t, phase, id});
}

u64 Trace_recorder::dropped()
{
    std::lock_guard lock(g_mutex);
    u64 total = 0;
    for (auto& b : buffers()) {
        std::lock_guard block(b->mutex);
        total += b->dropped;
    }
    return total;
}

void Trace_recorder::write_json(std::ostream& os)
{
    g_active.store(false, std::memory_order_release);
    detail::g_span_arm.fetch_and(static_cast<u8>(~detail::k_arm_trace),
                                 std::memory_order_relaxed);
    std::lock_guard lock(g_mutex);
    const u64 origin = g_origin.load(std::memory_order_relaxed);
    os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
    bool first = true;
    for (auto& b : buffers()) {
        std::lock_guard block(b->mutex);
        for (const Trace_event& e : b->events) {
            const u64 rel0 = e.t0 >= origin ? e.t0 - origin : 0;
            if (e.phase != 0) {
                // Flow event: name/cat/id tie the three phases together.
                os << (first ? "\n" : ",\n")
                   << "{\"name\": \"req\", \"cat\": \"req\", \"ph\": \"" << e.phase
                   << "\", \"id\": " << e.flow_id << ", \"pid\": 1, \"tid\": " << b->tid
                   << ", \"ts\": " << fmt_us(ticks_to_us(rel0))
                   << (e.phase == 'f' ? ", \"bp\": \"e\"}" : "}");
                first = false;
                continue;
            }
            std::string name = stage_trace_name(e.stage);
            if (!e.detail.empty()) {
                name += ':';
                append_escaped(name, e.detail);
            }
            const u64 dur = e.t1 >= e.t0 ? e.t1 - e.t0 : 0;
            os << (first ? "\n" : ",\n") << "{\"name\": \"" << name
               << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": " << b->tid
               << ", \"ts\": " << fmt_us(ticks_to_us(rel0))
               << ", \"dur\": " << fmt_us(ticks_to_us(dur)) << "}";
            first = false;
        }
        b->events.clear();
    }
    os << "\n]}\n";
}

#endif  // SEDA_DISABLE_OBS

}  // namespace seda::obs
