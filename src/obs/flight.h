// Flight recorder: an always-on per-thread ring of recent pipeline events
// (flush batches, coalescing windows, fallback dispatches, fault
// injections, detections) kept cheap enough to leave running in production
// -- one event per FLUSH, not per request, appended under an uncontended
// per-thread mutex into a fixed ring that overwrites its oldest entry.
//
// When a detection fires (MAC mismatch / replay on the serve or infer
// paths) the recorder appends a `detect` event and, if an auto-dump path is
// armed (seda_cli --flight-out), immediately writes the whole ring to that
// file: the forensic record of the bus-level activity surrounding the
// detection, per tenant.  dump_flight() can also be called on demand.
//
// Dumps are non-consuming and deterministic for a quiesced process: events
// are merged across threads and ordered by (ticks, thread, seq).  Gated on
// obs::enabled(); with SEDA_DISABLE_OBS everything compiles to a no-op.
// Output goes only to named files / streams, never stdout.
#pragma once

#include <iosfwd>
#include <string>

#include "common/types.h"

namespace seda::obs {

enum class Flight_kind : u8 {
    window,       ///< one scheduler coalescing window (n = requests)
    flush_write,  ///< one bulk write batch through a session (n = units)
    flush_read,   ///< one bulk read batch through a session (n = units)
    fallback,     ///< one per-request fallback dispatch after a bulk reject
    inject,       ///< a campaign fault armed against DRAM (n = fault kind)
    detect,       ///< a verification failure (status carries the outcome)
    infer_detect  ///< a unit failure observed by the inference replay layer
};

[[nodiscard]] const char* to_string(Flight_kind k);

/// Tenant tag for events with no tenant attribution.
inline constexpr u32 k_flight_no_tenant = 0xFFFFFFFFu;

class Flight_recorder {
public:
    /// Events retained per thread before the ring overwrites its oldest.
    static constexpr std::size_t k_ring_capacity = 1024;

    /// Appends one event to this thread's ring (no-op unless obs live).
    static void record(Flight_kind k, u32 tenant, u64 addr, u64 n, u64 bytes);

    /// Appends a detection event (with its exact attribution coordinates
    /// and Verify_status code) and fires the armed auto-dump, if any.
    static void detect(Flight_kind k, u32 tenant, u64 addr, u32 layer, u32 fmap, u32 blk,
                       u8 status);

    /// Arms (or, with "", disarms) the automatic dump-on-detection path.
    static void arm_auto_dump(std::string path);

    /// Detection events recorded so far (monotonic, survives dumps).
    static u64 detections();

    /// Writes every ring as one JSON object; returns the event count.
    /// Non-consuming: dumping twice with no traffic in between yields
    /// byte-identical output.
    static u64 dump(std::ostream& os);

    /// dump() to a file; returns false if the file cannot be opened.
    static bool dump_flight(const std::string& path);

    /// Clears every ring and the detection count (tests/benches only).
    static void reset();
};

}  // namespace seda::obs
