// chrome://tracing span capture for the instrumented pipeline stages.
//
// When a recording is active every Stage_span/Phase_timer additionally
// appends a "complete" (ph:"X") event to a per-thread buffer; write_json()
// drains every buffer into one chrome://tracing JSON object loadable by
// chrome://tracing or Perfetto.  Buffers are capped per thread (overflow is
// counted, not silently dropped into the void) so a runaway run stays
// bounded.  Tracing is independent of the metrics switch: `--trace-out`
// works even under SEDA_OBS=0.
#pragma once

#include <iosfwd>
#include <string_view>

#include "common/types.h"
#include "obs/stage.h"

namespace seda::obs {

class Trace_recorder {
public:
    /// Events per thread before overflow counting kicks in.
    static constexpr std::size_t k_max_events_per_thread = std::size_t{1} << 16;

    /// Arms capture process-wide (idempotent).  With SEDA_DISABLE_OBS this
    /// is a no-op and active() stays false.
    static void start();

    [[nodiscard]] static bool active();

    /// Disarms capture, drains every thread's buffer (in first-event order
    /// per thread), and writes one chrome://tracing JSON object.  May be
    /// followed by another start(); events are consumed.
    static void write_json(std::ostream& os);

    /// Events discarded because a thread hit its buffer cap.
    [[nodiscard]] static u64 dropped();

    /// Appends one span (called from Stage_span/Phase_timer destructors;
    /// cheap no-op when no recording is active).
    static void emit(Stage s, std::string_view detail, u64 t0_ticks, u64 t1_ticks);

    /// Appends one flow event (ph "s" start / "t" step / "f" finish).  The
    /// three phases of one flow share `id`; chrome://tracing draws an arrow
    /// through the slices enclosing each phase's timestamp.  The request
    /// tracer links admit -> flush -> complete this way.
    static void emit_flow(char phase, u64 id, u64 t_ticks);
};

}  // namespace seda::obs
