#include "obs/snapshot.h"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>
#include <utility>

#include "common/error.h"

namespace seda::obs {

namespace {

/// Scrape-sort order shared with Metrics_registry::scrape_into.
template <typename A, typename B>
bool key_less(const A& a, const B& b)
{
    if (a.name != b.name) return a.name < b.name;
    return a.label_value < b.label_value;
}

template <typename A, typename B>
bool key_equal(const A& a, const B& b)
{
    return a.name == b.name && a.label_value == b.label_value;
}

}  // namespace

void diff_snapshots(const Snapshot& prev, const Snapshot& cur, double seconds,
                    Interval& out)
{
    out.seconds = seconds;

    // Two-pointer walks over the sorted row vectors: a series present only
    // in `cur` (registered mid-interval) diffs against zero; a series only
    // in `prev` cannot happen (the registry never forgets a metric).
    std::size_t n = 0;
    std::size_t p = 0;
    for (const auto& c : cur.counters) {
        while (p < prev.counters.size() && key_less(prev.counters[p], c)) ++p;
        u64 before = 0;
        if (p < prev.counters.size() && key_equal(prev.counters[p], c))
            before = prev.counters[p].value;
        if (out.counters.size() <= n) out.counters.emplace_back();
        Counter_rate& row = out.counters[n++];
        row.name = c.name;
        row.label_key = c.label_key;
        row.label_value = c.label_value;
        row.delta = c.value >= before ? c.value - before : 0;
        row.per_second =
            seconds > 0 ? static_cast<double>(row.delta) / seconds : 0.0;
    }
    out.counters.resize(n);

    static const Log_histogram k_empty;
    n = 0;
    p = 0;
    for (const auto& h : cur.histograms) {
        while (p < prev.histograms.size() && key_less(prev.histograms[p], h)) ++p;
        const Log_histogram* before = &k_empty;
        if (p < prev.histograms.size() && key_equal(prev.histograms[p], h))
            before = &prev.histograms[p].hist;
        if (out.histograms.size() <= n) out.histograms.emplace_back();
        Hist_delta& row = out.histograms[n++];
        row.name = h.name;
        row.label_key = h.label_key;
        row.label_value = h.label_value;
        h.hist.delta_since(*before, row.hist);
    }
    out.histograms.resize(n);
}

u64 Interval::family_delta(std::string_view name) const
{
    u64 total = 0;
    for (const auto& c : counters)
        if (c.name == name) total += c.delta;
    return total;
}

Log_histogram Interval::family_hist(std::string_view name) const
{
    Log_histogram merged;
    for (const auto& h : histograms)
        if (h.name == name) merged.merge(h.hist);
    return merged;
}

namespace {

std::string fmt1(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f", v);
    return buf;
}

}  // namespace

std::string render_watch_line(const Interval& iv, const Watch_config& cfg)
{
    std::string line = "watch: ";
    const u64 reqs = iv.family_delta(cfg.rate_counter);
    line += fmt1(iv.seconds > 0 ? static_cast<double>(reqs) / iv.seconds : 0.0);
    line += " req/s";

    const Log_histogram lat = iv.family_hist(cfg.latency_family);
    if (lat.count() != 0) {
        line += " | lat us p50/p99/p999 ";
        line += fmt1(lat.percentile(50));
        line += "/";
        line += fmt1(lat.percentile(99));
        line += "/";
        line += fmt1(lat.percentile(99.9));
        line += " (n=";
        line += std::to_string(lat.count());
        line += ")";
    } else {
        line += " | lat -";
    }

    // Per-tenant error rates: fold the numerator/denominator families by
    // label value; only tenants with interval errors make the line.
    const auto in = [](const std::vector<std::string>& fams, const std::string& name) {
        return std::find(fams.begin(), fams.end(), name) != fams.end();
    };
    std::vector<std::pair<std::string, std::pair<u64, u64>>> tenants;  // label -> (err, total)
    for (const auto& c : iv.counters) {
        if (c.label_key.empty()) continue;
        const bool err = in(cfg.tenant_error_families, c.name);
        const bool tot = in(cfg.tenant_total_families, c.name);
        if (!err && !tot) continue;
        auto it = std::find_if(tenants.begin(), tenants.end(),
                               [&](const auto& t) { return t.first == c.label_value; });
        if (it == tenants.end()) {
            tenants.push_back({c.label_value, {0, 0}});
            it = tenants.end() - 1;
        }
        if (err) it->second.first += c.delta;
        if (tot) it->second.second += c.delta;
    }
    bool any = false;
    for (const auto& [label, counts] : tenants) {
        const auto [errs, total] = counts;
        if (errs == 0) continue;
        line += any ? " " : " | errs ";
        any = true;
        const u64 denom = std::max<u64>(total, errs);
        line += "t";
        line += label;
        line += ":";
        line += fmt1(100.0 * static_cast<double>(errs) / static_cast<double>(denom));
        line += "%";
    }
    return line;
}

struct Snapshot_poller::Impl {
    std::chrono::milliseconds interval{1000};
    Callback cb;
    std::thread thread;
    std::mutex mutex;
    std::condition_variable cv;
    bool stop_requested = false;
    bool started = false;
    Snapshot snaps[2];  ///< ping-pong scrape buffers
    Interval iv;        ///< reused diff buffer
};

Snapshot_poller::Snapshot_poller(std::chrono::milliseconds interval, Callback cb)
    : impl_(new Impl)
{
    require(interval.count() > 0, "obs: poller interval must be positive");
    require(static_cast<bool>(cb), "obs: poller needs a callback");
    impl_->interval = interval;
    impl_->cb = std::move(cb);
}

Snapshot_poller::~Snapshot_poller()
{
    stop();
    delete impl_;
}

void Snapshot_poller::start()
{
    require(!impl_->started, "obs: poller already started");
    impl_->started = true;
    // Baseline scrape on the caller's thread: traffic between start() and
    // the first tick lands in the first interval, not nowhere.
    Metrics_registry::instance().scrape_into(impl_->snaps[0]);
    impl_->thread = std::thread([this] { loop(); });
}

void Snapshot_poller::stop()
{
    if (!impl_->thread.joinable()) return;
    {
        std::lock_guard lock(impl_->mutex);
        impl_->stop_requested = true;
    }
    impl_->cv.notify_all();
    impl_->thread.join();
}

void Snapshot_poller::loop()
{
    auto& reg = Metrics_registry::instance();
    int cur = 0;
    auto last = std::chrono::steady_clock::now();
    for (;;) {
        bool stopping;
        {
            std::unique_lock lock(impl_->mutex);
            stopping = impl_->cv.wait_for(lock, impl_->interval,
                                          [&] { return impl_->stop_requested; });
        }
        const int next = cur ^ 1;
        reg.scrape_into(impl_->snaps[next]);
        const auto now = std::chrono::steady_clock::now();
        diff_snapshots(impl_->snaps[cur], impl_->snaps[next],
                       std::chrono::duration<double>(now - last).count(), impl_->iv);
        last = now;
        cur = next;
        // The stop-path flush included: the run's tail interval still
        // reaches the callback before the thread exits.
        impl_->cb(impl_->iv);
        if (stopping) return;
    }
}

}  // namespace seda::obs
