// Request-scoped tracing: a tiny Trace_context rides on serve::Request and
// is stamped as the request crosses the pipeline (submit -> scheduler
// pickup -> session flush -> completion).  At completion the stamps resolve
// into the request's critical-path decomposition:
//
//   req.queue     submit -> pickup        (admission queue wait)
//   req.window    pickup -> flush begin   (coalescing window share)
//   req.crypto    flush begin -> end      (bulk crypto / fallback memory op)
//   req.complete  flush end -> done      (completion fan-out)
//
// The four phases land in the serve_req_*_us stage histograms carrying the
// trace id as an exemplar, and -- when a trace recording is active -- as
// chrome://tracing "X" spans plus an s/t/f flow chain (id = trace id)
// linking admit to flush to completion across threads.
//
// Arming matches Stage_span: with a recording active every request is
// traced; with only metrics live, 1-in-N requests are sampled
// (SEDA_OBS_SAMPLE); fully disarmed, submit costs one relaxed load and a
// branch and every other site tests a member against zero.  Works on both
// the bulk flush path and the per-request fallback path (both call the
// flush/finish hooks).  Nothing here touches stdout.
#pragma once

#include "common/types.h"
#include "obs/stage.h"

namespace seda::obs {

/// Per-request trace state, value-carried on serve::Request.  trace_id == 0
/// means "not sampled": every stamp short-circuits on it.
struct Trace_context {
    u64 trace_id = 0;
    u64 t_submit = 0;
    u64 t_pickup = 0;
    u64 t_flush0 = 0;  ///< session flush (or fallback op) began
    u64 t_flush1 = 0;  ///< session flush (or fallback op) ended
};

#ifdef SEDA_DISABLE_OBS

inline void trace_request_begin(Trace_context&) {}
inline void trace_request_pickup(Trace_context&, u64) {}
inline void trace_request_flush(Trace_context&, u64, u64) {}
inline void trace_request_finish(Trace_context&) {}

#else

namespace detail {
void request_begin_slow(Trace_context& ctx);
void request_finish_slow(Trace_context& ctx);
}  // namespace detail

/// Samples and stamps t_submit (Server::submit, client thread).
inline void trace_request_begin(Trace_context& ctx)
{
    if (detail::g_span_arm.load(std::memory_order_relaxed) != 0)
        detail::request_begin_slow(ctx);
}

/// Stamps scheduler pickup (caller amortizes the now_ticks() read over the
/// popped batch).
inline void trace_request_pickup(Trace_context& ctx, u64 now)
{
    if (ctx.trace_id != 0) ctx.t_pickup = now;
}

/// Stamps the flush window that carried this request (bulk or fallback).
inline void trace_request_flush(Trace_context& ctx, u64 t0, u64 t1)
{
    if (ctx.trace_id != 0) {
        ctx.t_flush0 = t0;
        ctx.t_flush1 = t1;
    }
}

/// Resolves the decomposition into histograms/trace events (completion or
/// rejection; scheduler thread).  Idempotence is the caller's job -- each
/// request finishes exactly once.
inline void trace_request_finish(Trace_context& ctx)
{
    if (ctx.trace_id != 0) detail::request_finish_slow(ctx);
}

#endif  // SEDA_DISABLE_OBS

}  // namespace seda::obs
