#include "obs/flight.h"

#include <ostream>

#include "obs/metrics.h"

#ifndef SEDA_DISABLE_OBS
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#include "core/verify_status.h"
#endif

namespace seda::obs {

const char* to_string(Flight_kind k)
{
    switch (k) {
        case Flight_kind::window: return "window";
        case Flight_kind::flush_write: return "flush_write";
        case Flight_kind::flush_read: return "flush_read";
        case Flight_kind::fallback: return "fallback";
        case Flight_kind::inject: return "inject";
        case Flight_kind::detect: return "detect";
        case Flight_kind::infer_detect: return "infer_detect";
    }
    return "?";
}

#ifdef SEDA_DISABLE_OBS

void Flight_recorder::record(Flight_kind, u32, u64, u64, u64) {}
void Flight_recorder::detect(Flight_kind, u32, u64, u32, u32, u32, u8) {}
void Flight_recorder::arm_auto_dump(std::string) {}
u64 Flight_recorder::detections() { return 0; }
u64 Flight_recorder::dump(std::ostream& os)
{
    os << "{\"events\": 0, \"detections\": 0, \"overwritten\": 0, \"flight\": []}\n";
    return 0;
}
bool Flight_recorder::dump_flight(const std::string&) { return false; }
void Flight_recorder::reset() {}

#else

namespace {

struct Flight_event {
    u64 ticks = 0;
    u64 seq = 0;  ///< per-ring append ordinal (ties broken deterministically)
    u64 addr = 0;
    u64 n = 0;
    u64 bytes = 0;
    u32 tenant = k_flight_no_tenant;
    u32 layer = 0, fmap = 0, blk = 0;
    Flight_kind kind{};
    u8 status = 0;
};

/// One thread's ring.  The mutex is uncontended except against a dump.
struct Flight_ring {
    std::mutex mutex;
    u32 tid = 0;
    u64 appended = 0;  ///< total events ever appended (head = appended % cap)
    std::vector<Flight_event> events;  ///< sized k_ring_capacity on first use

    void append(const Flight_event& e)
    {
        std::lock_guard lock(mutex);
        if (events.empty()) events.resize(Flight_recorder::k_ring_capacity);
        Flight_event& slot = events[appended % Flight_recorder::k_ring_capacity];
        slot = e;
        slot.seq = appended++;
    }
};

std::mutex g_mutex;  ///< guards the ring list

/// Leaky list of every ring ever created (events from exited threads stay
/// dumpable; thread_local pointers never dangle) -- the trace-buffer shape.
std::vector<std::unique_ptr<Flight_ring>>& rings()
{
    static auto* const v = new std::vector<std::unique_ptr<Flight_ring>>();
    return *v;
}

thread_local Flight_ring* t_ring = nullptr;

Flight_ring& local_ring()
{
    if (t_ring == nullptr) {
        std::lock_guard lock(g_mutex);
        auto& all = rings();
        all.push_back(std::make_unique<Flight_ring>());
        all.back()->tid = static_cast<u32>(all.size());
        t_ring = all.back().get();
    }
    return *t_ring;
}

std::atomic<u64> g_detections{0};

std::mutex g_auto_mutex;  ///< serializes auto-dumps and guards the path

std::string& auto_dump_path()
{
    static auto* const p = new std::string();
    return *p;
}

std::string fmt_us(double us)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", us);
    return buf;
}

void render(std::ostream& os, const Flight_event& e, u32 tid, u64 origin)
{
    os << "{\"t_us\": " << fmt_us(ticks_to_us(e.ticks - origin)) << ", \"thread\": " << tid
       << ", \"seq\": " << e.seq << ", \"kind\": \"" << to_string(e.kind) << "\"";
    if (e.tenant != k_flight_no_tenant) os << ", \"tenant\": " << e.tenant;
    os << ", \"addr\": " << e.addr;
    if (e.kind == Flight_kind::detect || e.kind == Flight_kind::infer_detect) {
        os << ", \"layer\": " << e.layer << ", \"fmap\": " << e.fmap
           << ", \"blk\": " << e.blk << ", \"status\": \""
           << core::to_string(static_cast<core::Verify_status>(e.status)) << "\"";
    } else {
        os << ", \"n\": " << e.n << ", \"bytes\": " << e.bytes;
    }
    os << "}";
}

}  // namespace

void Flight_recorder::record(Flight_kind k, u32 tenant, u64 addr, u64 n, u64 bytes)
{
    if (!enabled()) return;
    Flight_event e;
    e.ticks = now_ticks();
    e.addr = addr;
    e.n = n;
    e.bytes = bytes;
    e.tenant = tenant;
    e.kind = k;
    local_ring().append(e);
}

void Flight_recorder::detect(Flight_kind k, u32 tenant, u64 addr, u32 layer, u32 fmap,
                             u32 blk, u8 status)
{
    if (!enabled()) return;
    Flight_event e;
    e.ticks = now_ticks();
    e.addr = addr;
    e.tenant = tenant;
    e.layer = layer;
    e.fmap = fmap;
    e.blk = blk;
    e.kind = k;
    e.status = status;
    local_ring().append(e);
    g_detections.fetch_add(1, std::memory_order_relaxed);

    std::lock_guard lock(g_auto_mutex);
    const std::string& path = auto_dump_path();
    if (path.empty()) return;
    std::ofstream os(path, std::ios::trunc);
    if (!os) return;
    const u64 n_events = dump(os);
    std::fprintf(stderr, "flight recorder: detection -> dumped %llu events to %s\n",
                 static_cast<unsigned long long>(n_events), path.c_str());
}

void Flight_recorder::arm_auto_dump(std::string path)
{
    std::lock_guard lock(g_auto_mutex);
    auto_dump_path() = std::move(path);
}

u64 Flight_recorder::detections() { return g_detections.load(std::memory_order_relaxed); }

u64 Flight_recorder::dump(std::ostream& os)
{
    // Gather under the list lock, then merge-sort by (ticks, thread, seq):
    // ticks are one invariant-TSC domain, so the order is the bus order up
    // to tie-breaks, and a quiesced process dumps byte-identically.
    std::vector<std::pair<u32, Flight_event>> all;
    u64 overwritten = 0;
    {
        std::lock_guard lock(g_mutex);
        for (auto& r : rings()) {
            std::lock_guard rlock(r->mutex);
            const u64 kept = std::min<u64>(r->appended, k_ring_capacity);
            overwritten += r->appended - kept;
            for (u64 i = r->appended - kept; i < r->appended; ++i)
                all.emplace_back(r->tid, r->events[i % k_ring_capacity]);
        }
    }
    std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
        if (a.second.ticks != b.second.ticks) return a.second.ticks < b.second.ticks;
        if (a.first != b.first) return a.first < b.first;
        return a.second.seq < b.second.seq;
    });
    u64 origin = ~u64{0};
    for (const auto& [tid, e] : all) origin = std::min(origin, e.ticks);
    if (all.empty()) origin = 0;

    os << "{\"events\": " << all.size() << ", \"detections\": " << detections()
       << ", \"overwritten\": " << overwritten << ", \"flight\": [";
    for (std::size_t i = 0; i < all.size(); ++i) {
        os << (i ? ",\n " : "\n ");
        render(os, all[i].second, all[i].first, origin);
    }
    os << (all.empty() ? "" : "\n") << "]}\n";
    return all.size();
}

bool Flight_recorder::dump_flight(const std::string& path)
{
    std::ofstream os(path, std::ios::trunc);
    if (!os) return false;
    dump(os);
    return true;
}

void Flight_recorder::reset()
{
    std::lock_guard lock(g_mutex);
    for (auto& r : rings()) {
        std::lock_guard rlock(r->mutex);
        r->appended = 0;
    }
    g_detections.store(0, std::memory_order_relaxed);
}

#endif  // SEDA_DISABLE_OBS

}  // namespace seda::obs
