// Process-wide metrics registry: named counters, gauges, and log-scale
// latency histograms with lock-free per-thread shards.
//
// Hot-path contract: a handle (Counter/Gauge/Histogram) holds only a metric
// id.  Recording does one thread-local slot lookup plus relaxed atomic
// updates on this thread's private cell -- no locks, no allocation after
// the first touch.  The registry mutex is taken only on registration, on a
// thread's first touch of a metric, at thread exit (cells are donated back
// to a free list for the next thread, so memory is bounded by the PEAK
// concurrent thread count), and on scrape (which folds every cell).
//
// Determinism rules (load-bearing, see docs/OBSERVABILITY.md): everything
// in here is timing-bound.  Nothing recorded through this registry may feed
// the deterministic stdout --json contracts -- exports go to stderr or to
// explicit files, and CI byte-diffs the JSON with observability on, off
// (SEDA_OBS=0) and compiled out (SEDA_DISABLE_OBS).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "obs/histogram.h"

namespace seda::obs {

#ifdef SEDA_DISABLE_OBS
inline constexpr bool k_compiled_in = false;
#else
inline constexpr bool k_compiled_in = true;
#endif

/// Whether the runtime hot paths are live: compiled in AND not switched off
/// by SEDA_OBS=0|off|false (resolved once per process, like the crypto
/// backends' env overrides).  When false every handle is unarmed and every
/// record is a no-op.
[[nodiscard]] bool enabled();

/// Raw monotonic timestamp for span timing: the TSC on x86-64 (a few ns per
/// read -- cheap enough to sit inside the serve dispatch loop), a
/// steady_clock read elsewhere.
[[nodiscard]] u64 now_ticks();

/// Microseconds spanned by `dt` raw ticks.  The tick rate is calibrated
/// against steady_clock once per process (~1 ms spin on first use; both
/// enabled() and Trace_recorder::start() pre-trigger it so no measured span
/// absorbs the stall).
[[nodiscard]] double ticks_to_us(u64 dt);

inline constexpr u32 k_no_metric = 0xFFFFFFFFu;

/// Monotonically increasing count (exported as a Prometheus counter).
class Counter {
public:
    Counter() = default;
    void add(u64 delta = 1) const;
    [[nodiscard]] bool armed() const { return id_ != k_no_metric; }

private:
    friend class Metrics_registry;
    explicit Counter(u32 id) : id_(id) {}
    u32 id_ = k_no_metric;
};

/// Up/down instantaneous value (scraped as the sum over every shard, so
/// inc-on-one-thread / dec-on-another nets out correctly).
class Gauge {
public:
    Gauge() = default;
    void add(i64 delta) const;
    [[nodiscard]] bool armed() const { return id_ != k_no_metric; }

private:
    friend class Metrics_registry;
    explicit Gauge(u32 id) : id_(id) {}
    u32 id_ = k_no_metric;
};

/// Log-bucketed value distribution (Log_histogram semantics, sharded).
class Histogram {
public:
    Histogram() = default;
    void record(double v) const;
    /// Records `v` and, when `trace_id` is non-zero, offers it as this
    /// shard's exemplar: the scrape surfaces the largest exemplar value per
    /// histogram with its trace id, linking the worst sampled observation
    /// back to its request trace.
    void record(double v, u64 trace_id) const;
    [[nodiscard]] bool armed() const { return id_ != k_no_metric; }

private:
    friend class Metrics_registry;
    explicit Histogram(u32 id) : id_(id) {}
    u32 id_ = k_no_metric;
};

/// One scrape: every metric's shards merged, rows sorted by (name, label)
/// so two scrapes of a quiesced process are identical -- CI and tests rely
/// on it.  `label_key`/`label_value` are empty for unlabeled series; rows
/// of one family (same name, different label values) are adjacent.
struct Snapshot {
    struct Counter_row {
        std::string name;
        std::string label_key, label_value;
        u64 value = 0;
    };
    struct Gauge_row {
        std::string name;
        std::string label_key, label_value;
        i64 value = 0;
    };
    struct Histogram_row {
        std::string name;
        std::string label_key, label_value;
        Log_histogram hist;
        u64 exemplar_trace_id = 0;  ///< 0 = no exemplar captured
        double exemplar_value = 0;
    };
    std::vector<Counter_row> counters;
    std::vector<Gauge_row> gauges;
    std::vector<Histogram_row> histograms;
};

class Metrics_registry {
public:
    /// The process-wide registry.  Leaky singleton: threads may still record
    /// (and donate cells at exit) while statics are being destroyed.
    static Metrics_registry& instance();

    Metrics_registry(const Metrics_registry&) = delete;
    Metrics_registry& operator=(const Metrics_registry&) = delete;

    /// Registers (or re-opens) a named metric.  Re-registering the same
    /// name with the same kind returns a handle onto the same metric;
    /// re-registering it as a different kind throws.  When !enabled() the
    /// returned handle is unarmed and nothing is registered.
    Counter counter(std::string_view name);
    Gauge gauge(std::string_view name);
    Histogram histogram(std::string_view name);

    /// Labeled-series variants: one (key, value) label pair, giving
    /// per-tenant scoping ("serve_tenant_ok_total", "tenant", "3").  Each
    /// distinct (name, value) pair is its own series; a family's rows share
    /// the name and sort adjacently in the scrape.  A family name must not
    /// collide with a differently-kinded metric, labeled or not.
    Counter counter(std::string_view name, std::string_view label_key,
                    std::string_view label_value);
    Gauge gauge(std::string_view name, std::string_view label_key,
                std::string_view label_value);
    Histogram histogram(std::string_view name, std::string_view label_key,
                        std::string_view label_value);

    /// Merges every per-thread shard into one snapshot.  Concurrent-safe;
    /// a record racing the scrape lands in this snapshot or the next.
    [[nodiscard]] Snapshot scrape() const;

    /// scrape() into a caller-owned snapshot, reusing its row vectors,
    /// strings, and histogram bucket buffers: after the first call on a
    /// stable registry, re-scraping allocates nothing -- the contract the
    /// periodic snapshot differ (obs/snapshot.h) and the HTTP exporter's
    /// per-request scrape rely on to stay off the allocator.
    void scrape_into(Snapshot& snap) const;

    /// Zeroes every cell in place (metric names stay registered).  Only
    /// meaningful when recorders are quiesced; for tests and benches.
    void reset();

    // Internal (backing the handle hot paths and thread-exit cleanup).
    void* acquire_cell(u32 id);
    void release_cells(const std::vector<void*>& cells);

private:
    Metrics_registry();
    u32 intern(std::string_view name, unsigned type, std::string_view label_key,
               std::string_view label_value);

    struct Impl;
    Impl* impl_;
};

}  // namespace seda::obs
