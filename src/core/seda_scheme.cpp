#include "core/seda_scheme.h"

#include <algorithm>

#include "accel/memory_map.h"

namespace seda::core {

using accel::Access_range;
using accel::Memory_map;
using accel::Tensor_kind;
using protect::Layer_protect_result;

namespace {

constexpr Bytes k_mac_slot = 8;

/// Collects the ranges of one tensor kind from a layer trace.
std::vector<Access_range> ranges_of(const accel::Layer_sim& layer, Tensor_kind kind)
{
    std::vector<Access_range> out;
    for (const auto& r : layer.trace)
        if (r.tensor == kind) out.push_back(r);
    return out;
}

/// Geometry-derived extra candidates for the optBlk search: tile strides and
/// row sizes of the plans touching the region.
void add_geometry_candidates(Optblk_params& params, const accel::Layer_sim& layer)
{
    const auto& p = layer.plan;
    if (p.ofmap_row_bytes > 0) {
        params.extra_candidates.push_back(p.ofmap_row_bytes);
        params.extra_candidates.push_back(static_cast<Bytes>(p.t_oh) * p.ofmap_row_bytes);
    }
    if (p.ifmap_row_bytes > 0) {
        params.extra_candidates.push_back(p.ifmap_row_bytes);
        const int stride_rows =
            layer.layer && layer.layer->is_compute() &&
                    layer.layer->kind != accel::Layer_kind::matmul
                ? p.t_oh * layer.layer->stride
                : p.t_oh;
        params.extra_candidates.push_back(static_cast<Bytes>(stride_rows) *
                                          p.ifmap_row_bytes);
    }
}

}  // namespace

Seda_scheme::Seda_scheme(Seda_config cfg)
    : cfg_(std::move(cfg)), stored_mac_cache_(8 * 1024, 8)
{
}

void Seda_scheme::begin_model(const accel::Model_sim& sim)
{
    // One entry per layer plus a virtual trailing entry whose "ifmap epoch"
    // is the last layer's ofmap (nobody consumes it inside the model, but
    // its write pattern still needs an aligned unit).
    choices_.assign(sim.layers.size() + 1, {});
    stored_mac_cache_.clear();
    rechecks_ = 0;
    resident_layer_mac_line_ = ~0ULL;
    layer_mac_line_dirty_ = false;

    for (std::size_t i = 0; i < sim.layers.size(); ++i) {
        const auto& layer = sim.layers[i];
        Layer_choice& choice = choices_[i];

        // --- weight region --------------------------------------------------
        const auto w_ranges = ranges_of(layer, Tensor_kind::weight);
        if (!w_ranges.empty()) {
            choice.weight_macs_stored =
                layer.layer->kind == accel::Layer_kind::embedding;
            Optblk_params wp = cfg_.search;
            if (layer.layer->weight_bytes() > 0 &&
                layer.layer->gemm_n_dim() > 0) {
                wp.extra_candidates.push_back(layer.layer->weight_bytes() /
                                              std::max<u64>(1, layer.layer->gemm_n_dim()));
            }
            choice.weight = cfg_.forced_unit
                                ? Optblk_choice{*cfg_.forced_unit,
                                                projected_amplification(w_ranges,
                                                                        *cfg_.forced_unit),
                                                0, 0.0}
                                : search_optblk(w_ranges, layer.layer->weight_bytes(), wp);
        }

        // --- ifmap epoch: this layer's reads + the producer's writes --------
        auto epoch_ranges = ranges_of(layer, Tensor_kind::ifmap);
        Optblk_params ap = cfg_.search;
        add_geometry_candidates(ap, layer);
        if (i > 0) {
            const auto produced = ranges_of(sim.layers[i - 1], Tensor_kind::ofmap);
            epoch_ranges.insert(epoch_ranges.end(), produced.begin(), produced.end());
            add_geometry_candidates(ap, sim.layers[i - 1]);
        }
        if (!epoch_ranges.empty()) {
            choice.ifmap =
                cfg_.forced_unit
                    ? Optblk_choice{*cfg_.forced_unit,
                                    projected_amplification(epoch_ranges, *cfg_.forced_unit),
                                    0, 0.0}
                    : search_optblk(epoch_ranges, layer.layer->ifmap_bytes(), ap);
        }
    }

    // Virtual epoch for the final ofmap.
    const auto& last = sim.layers.back();
    const auto final_ranges = ranges_of(last, Tensor_kind::ofmap);
    if (!final_ranges.empty()) {
        Optblk_params fp = cfg_.search;
        add_geometry_candidates(fp, last);
        choices_.back().ifmap =
            cfg_.forced_unit
                ? Optblk_choice{*cfg_.forced_unit,
                                projected_amplification(final_ranges, *cfg_.forced_unit),
                                0, 0.0}
                : search_optblk(final_ranges, last.layer->ofmap_bytes(), fp);
    }
}

void Seda_scheme::protect_range_folded(const Access_range& r, Bytes unit,
                                       Layer_protect_result& out)
{
    const Addr lo = align_down(r.first_block(), unit);
    const Addr hi = align_up(r.end_block(), unit);
    for (Addr u = lo; u < hi; u += unit) {
        const bool already = !ledger_.insert(u).second;
        if (already) {
            // Halo / refetch: re-verified against the retained-window MAC
            // (retain_window) or skipped (dedup_only); never folded twice.
            if (cfg_.reread == Reread_policy::retain_window) {
                ++out.verify_events;
                ++rechecks_;
            }
        } else {
            ++out.verify_events;
        }
        // Blocks of the unit: requested ones are data; any block pulled in
        // only to complete the unit's MAC is amplification (an RMW fetch on
        // the write path).  The optBlk search drives this to zero for
        // aligned units.
        protect::append_unit_requests(out.timed_stream, u, unit, r.first_block(),
                                      r.end_block(), r.is_write);
    }
}

void Seda_scheme::protect_range_stored_macs(const Access_range& r, Bytes unit,
                                            Layer_protect_result& out)
{
    const Addr lo = align_down(r.first_block(), unit);
    const Addr hi = align_up(r.end_block(), unit);
    for (Addr u = lo; u < hi; u += unit) {
        protect::append_unit_requests(out.timed_stream, u, unit, r.first_block(),
                                      r.end_block(), r.is_write);
        ++out.verify_events;
        if (cfg_.colocate_gather_macs) continue;  // MAC rides in the same burst
        // Separate-region optBlk MAC, filtered by the on-chip MAC cache.
        const Addr slot = Memory_map::k_mac_base + (u / unit) * k_mac_slot;
        const auto acc = stored_mac_cache_.access(slot, r.is_write);
        if (!acc.hit) {
            dram::Request fill;
            fill.addr = align_down(slot, k_block_bytes);
            fill.is_write = false;
            fill.tag = dram::Traffic_tag::mac;
            out.timed_stream.push_back(fill);
            if (!r.is_write) ++out.mac_demand_misses;
        }
        if (acc.writeback) {
            dram::Request wb;
            wb.addr = acc.writeback_addr;
            wb.is_write = true;
            wb.tag = dram::Traffic_tag::mac;
            out.timed_stream.push_back(wb);
        }
    }
}

Layer_protect_result Seda_scheme::transform_layer(const accel::Layer_sim& layer)
{
    Layer_protect_result out;
    out.timed_stream.reserve(
        static_cast<std::size_t>((layer.read_bytes + layer.write_bytes) / k_block_bytes));
    ledger_.clear();

    require(layer.layer_id < choices_.size(),
            "Seda_scheme: transform_layer before begin_model");
    const Layer_choice& choice = choices_[layer.layer_id];

    for (const auto& r : layer.trace) {
        switch (r.tensor) {
            case Tensor_kind::weight:
                if (choice.weight_macs_stored)
                    protect_range_stored_macs(r, choice.weight.unit_bytes, out);
                else
                    protect_range_folded(r, choice.weight.unit_bytes, out);
                break;
            case Tensor_kind::ifmap:
                protect_range_folded(r, choice.ifmap.unit_bytes, out);
                break;
            case Tensor_kind::ofmap: {
                // The ofmap is the *next* epoch's region; its unit is the
                // consumer's choice (the virtual trailing entry for the
                // final layer).
                const Bytes unit = choices_[layer.layer_id + 1].ifmap.unit_bytes;
                protect_range_folded(r, std::max<Bytes>(unit, k_block_bytes), out);
                break;
            }
        }
    }

    if (cfg_.layer_macs_offchip) {
        // Layer MACs are 8 B each, eight to a line; the engine keeps the
        // current line on-chip, so only a line *change* costs a read, and
        // the dirty line publishes when it is replaced (or at end_model).
        const Addr line = Memory_map::k_layer_mac_base +
                          align_down(static_cast<Addr>(layer.layer_id) * 8, k_block_bytes);
        if (line != resident_layer_mac_line_) {
            if (layer_mac_line_dirty_) {
                dram::Request wb;
                wb.addr = resident_layer_mac_line_;
                wb.is_write = true;
                wb.tag = dram::Traffic_tag::layer_mac;
                out.timed_stream.push_back(wb);
            }
            dram::Request rd;
            rd.addr = line;
            rd.is_write = false;
            rd.tag = dram::Traffic_tag::layer_mac;
            out.timed_stream.push_back(rd);
            resident_layer_mac_line_ = line;
        }
        layer_mac_line_dirty_ = true;  // this layer's MAC was folded into it
    }

    out.fixed_cycles = static_cast<Cycles>(cfg_.layer_check_drain_cycles);
    return out;
}

Layer_protect_result Seda_scheme::end_model()
{
    Layer_protect_result out;
    if (cfg_.layer_macs_offchip && layer_mac_line_dirty_) {
        dram::Request wb;
        wb.addr = resident_layer_mac_line_;
        wb.is_write = true;
        wb.tag = dram::Traffic_tag::layer_mac;
        out.timed_stream.push_back(wb);
        layer_mac_line_dirty_ = false;
    }
    stored_mac_cache_.flush_dirty([&](Addr line) {
        dram::Request wb;
        wb.addr = line;
        wb.is_write = true;
        wb.tag = dram::Traffic_tag::mac;
        out.timed_stream.push_back(wb);
    });
    // Model-MAC comparison for the weights happens on-chip: one fold compare,
    // a single pipeline drain, no traffic.
    out.fixed_cycles = static_cast<Cycles>(cfg_.layer_check_drain_cycles);
    return out;
}

}  // namespace seda::core
