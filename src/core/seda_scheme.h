// The SeDA protection engine: bandwidth-aware encryption plus multi-level
// integrity verification (Sec. III).
//
// Confidentiality: B-AES (crypto/baes.h) -- one AES engine whose base OTP is
// fanned out with keyExpansion round keys, so pad throughput always matches
// the link and costs XOR lanes, not engines (Fig. 4).
//
// Integrity: three MAC levels (Fig. 3(b), Table I):
//   * optBlk MAC  - computed on the fly over `optBlk`-sized units as data
//                   streams; granularity chosen per region by the
//                   SecureLoop-style search (core/optblk_search.h) so units
//                   align with both the producer's and the consumer's tiling
//                   (zero amplification) .  For gather-access regions
//                   (embedding tables), where a layer-level fold can never
//                   cover the partial read set, optBlk MACs are *stored*
//                   off-chip and fetched through a MAC cache instead.
//   * layer MAC   - XOR-fold of a region epoch's optBlk MACs; one line of
//                   off-chip traffic per layer in the paper's fairness
//                   setting (on-chip storage removes even that).
//   * model MAC   - a single on-chip MAC covering all weights; no traffic,
//                   verified at the end of inference.
//
// Halo re-reads: an optBlk read again within a layer is *not* folded twice
// (XOR would cancel).  With Reread_policy::retain_window the engine keeps
// the overlap-window optBlk MACs in on-chip SRAM and checks re-reads against
// them (full integrity); dedup_only skips the re-check and trusts the first
// fold, a strictly weaker guarantee kept for the ablation study.
#pragma once

#include <optional>
#include <unordered_set>
#include <vector>

#include "core/optblk_search.h"
#include "protect/metadata_cache.h"
#include "protect/scheme.h"

namespace seda::core {

enum class Reread_policy { retain_window, dedup_only };

struct Seda_config {
    Reread_policy reread = Reread_policy::retain_window;
    /// Paper Sec. IV-A: "To ensure fairness, SeDA stores layer MACs
    /// off-chip."  Disable to model the pure on-chip variant.
    bool layer_macs_offchip = true;
    /// Ablation override: force one optBlk size instead of searching.
    std::optional<Bytes> forced_unit;
    /// Gather regions (embedding tables): true colocates each optBlk MAC
    /// with its row inside the same burst, SEAL-style [6], so a gather costs
    /// no extra traffic and no dependent fetch; false stores MACs in a
    /// separate region behind a MAC cache (the ablation baseline).
    bool colocate_gather_macs = true;
    Optblk_params search;
    /// Pipeline drain while the layer's XOR-fold is compared (Table I:
    /// layer-level checks incur a "slight delay"); the hash engine drains
    /// in a few tens of cycles at 16 B/cycle.
    double layer_check_drain_cycles = 32.0;
};

class Seda_scheme final : public protect::Protection_scheme {
public:
    explicit Seda_scheme(Seda_config cfg = {});

    [[nodiscard]] std::string name() const override { return "seda"; }
    void begin_model(const accel::Model_sim& sim) override;
    [[nodiscard]] protect::Layer_protect_result transform_layer(
        const accel::Layer_sim& layer) override;
    [[nodiscard]] protect::Layer_protect_result end_model() override;

    /// Per-layer granularity decisions, for Table I and the ablation bench.
    struct Layer_choice {
        Optblk_choice ifmap;   ///< unit protecting the layer's ifmap epoch
        Optblk_choice weight;  ///< unit protecting the layer's weights
        bool weight_macs_stored = false;  ///< gather path (embedding tables)
    };
    [[nodiscard]] const std::vector<Layer_choice>& choices() const { return choices_; }
    [[nodiscard]] const Seda_config& config() const { return cfg_; }

private:
    void protect_range_folded(const accel::Access_range& r, Bytes unit,
                              protect::Layer_protect_result& out);
    void protect_range_stored_macs(const accel::Access_range& r, Bytes unit,
                                   protect::Layer_protect_result& out);

    Seda_config cfg_;
    std::vector<Layer_choice> choices_;
    protect::Metadata_cache stored_mac_cache_;  ///< gather-path MAC filter
    std::unordered_set<u64> ledger_;            ///< folded units, current layer
    u64 rechecks_ = 0;                          ///< halo re-verifications (stats)
    Addr resident_layer_mac_line_ = ~0ULL;      ///< on-chip layer-MAC line
    bool layer_mac_line_dirty_ = false;
};

}  // namespace seda::core
