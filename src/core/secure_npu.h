// End-to-end secure-NPU pipeline: accelerator trace -> protection-scheme
// rewrite -> DRAM pricing -> per-layer max(compute, memory, crypto) timing.
//
// Memory time for a layer =
//     DRAM makespan of the demand stream (NPU cycles)
//   + beta * prefetch bytes / link rate        (VN/tree, discounted)
//   + MAC demand misses * unhidden stall cycles
//   + scheme fixed cycles (layer-check drains)
// and the layer executes in max(compute, memory, crypto) with double
// buffering overlapping the three engines.  Traffic counts *all* bytes,
// prefetched or not (Fig. 5 reports traffic; Fig. 6 reports time).
#pragma once

#include <string>
#include <vector>

#include "accel/accel_sim.h"
#include "crypto/engine_model.h"
#include "dram/dram_sim.h"
#include "protect/scheme.h"

namespace seda::core {

struct Layer_run_stats {
    std::string layer_name;
    Cycles compute_cycles = 0;
    Cycles mem_cycles = 0;
    Cycles crypto_cycles = 0;
    Cycles layer_cycles = 0;
    Bytes traffic_bytes = 0;
    u64 verify_events = 0;
    u64 mac_misses = 0;
};

struct Run_stats {
    std::string scheme_name;
    std::string model_name;
    std::string npu_name;
    Cycles total_cycles = 0;
    Bytes traffic_bytes = 0;                       ///< demand + prefetch
    Bytes bytes_by_tag[static_cast<int>(dram::Traffic_tag::count)] = {};
    Bytes prefetch_bytes = 0;                      ///< VN + tree (also in traffic)
    u64 verify_events = 0;
    u64 mac_misses = 0;
    double dram_row_hit_rate = 0.0;
    std::vector<Layer_run_stats> layers;

    [[nodiscard]] double seconds(double freq_ghz) const
    {
        return static_cast<double>(total_cycles) / (freq_ghz * 1e9);
    }
};

/// Runs one (model, NPU, scheme) combination.  The scheme object is reused
/// across runs; begin_model resets its state.
[[nodiscard]] Run_stats run_protected(const accel::Model_sim& sim,
                                      protect::Protection_scheme& scheme,
                                      const protect::Perf_params& params = {});

}  // namespace seda::core
