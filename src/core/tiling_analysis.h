// Intra-layer / inter-layer tiling analysis (Fig. 3(b)).
//
// Quantifies the two effects SeDA's software half exploits:
//   * intra-layer overlap: halo rows re-fetched between adjacent row tiles
//     cause redundant decryption + integrity work in unit-MAC schemes;
//   * inter-layer patterns: the producer writes its ofmap under one tiling,
//     the consumer reads the same region under another; authentication
//     blocks that straddle either pattern's boundaries force amplified
//     fetches on one side.
#pragma once

#include "accel/accel_sim.h"

namespace seda::core {

struct Overlap_summary {
    Bytes ifmap_read_bytes = 0;     ///< total ifmap bytes fetched (incl. halo)
    Bytes halo_refetch_bytes = 0;   ///< bytes fetched more than once
    Bytes weight_refetch_bytes = 0; ///< weight bytes beyond one full pass
    double halo_fraction = 0.0;     ///< halo / total ifmap reads
};

/// Intra-layer overlap metrics for one simulated layer.
[[nodiscard]] Overlap_summary analyze_overlap(const accel::Layer_sim& layer);

struct Alignment_info {
    Bytes producer_stride_bytes = 0;  ///< byte period of producer write tiles
    Bytes consumer_stride_bytes = 0;  ///< byte period of consumer read tiles
};

/// Producer/consumer geometry for the activation region between layer i
/// (producer of its ofmap) and layer i+1 (consumer as ifmap).
[[nodiscard]] Alignment_info analyze_alignment(const accel::Layer_sim& producer,
                                               const accel::Layer_sim& consumer);

/// True when an authentication block of `unit_bytes` never straddles either
/// pattern's tile boundaries (zero inter-layer amplification).
[[nodiscard]] bool unit_aligned(const Alignment_info& info, Bytes unit_bytes);

}  // namespace seda::core
