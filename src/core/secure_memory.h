// Functional model of SeDA's protected off-chip memory.
//
// Unlike the trace-level simulators (which price traffic and time), this
// class *runs the real crypto* on real bytes: writes encrypt with B-AES,
// bump the on-chip version number and store a positional MAC; reads decrypt
// and verify.  The untrusted side of the threat model is explicit: the
// attacker interface mutates, swaps, or rolls back stored units exactly the
// way a bus/memory adversary would (Sec. II-D), and the tests assert which
// attacks each configuration catches:
//
//   tampering      - caught by the MAC (any configuration)
//   re-permutation - caught by the positional MAC binding PA/layer/blk
//   replay         - caught only with freshness on (on-chip VNs); with VNs
//                    stored in the untrusted memory itself, rollback wins,
//                    which is precisely why MGX/TNPU/SeDA keep them on-chip.
//
// Tile transfers go through the batch interface (write_units / read_units):
// one call per tile amortizes the MAC-engine setup, the B-AES pad scratch
// and the unit-map insertions across every unit the tile touches, streams
// every unit MAC through the bulk HMAC pipeline
// (crypto::Hmac_engine::positional_macs), and is bit-for-bit identical to
// issuing the same units one write()/read() at a time
// (tests/core/secure_memory_batch_test.cpp holds both properties).
#pragma once

#include <atomic>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "core/verify_status.h"
#include "crypto/baes.h"
#include "crypto/mac.h"
#include "dram/dram_tap.h"

namespace seda::core {

struct Secure_mem_config {
    Bytes unit_bytes = 64;  ///< protection-unit size (one MAC per unit)
    /// true: VNs live on-chip (replay-protected).  false: the VN is
    /// stored next to the unit in untrusted memory -- rollback becomes
    /// invisible (the vulnerable strawman).
    bool onchip_vns = true;
};

class Secure_memory {
public:
    using Config = Secure_mem_config;

    /// A unit as the attacker sees it: ciphertext + stored metadata.
    struct Stored_unit {
        std::vector<u8> ciphertext;
        u64 mac = 0;
        u64 stored_vn = 0;  ///< only meaningful when !onchip_vns
    };

    /// One unit of a batch write: unit-aligned address, unit-sized payload.
    struct Unit_write {
        Addr addr = 0;
        std::span<const u8> plaintext;
        u32 layer_id = 0;
        u32 fmap_idx = 0;
        u32 blk_idx = 0;
    };

    /// One unit of a batch read: unit-aligned address, unit-sized out buffer.
    struct Unit_read {
        Addr addr = 0;
        std::span<u8> out;
        u32 layer_id = 0;
        u32 fmap_idx = 0;
        u32 blk_idx = 0;
    };

    Secure_memory(std::span<const u8> enc_key, std::span<const u8> mac_key,
                  Config cfg = Config());

    /// Encrypts and stores one unit-aligned, unit-sized write.  The version
    /// number increments per write (Eq. 1); position fields bind the MAC
    /// (Alg. 2 defense).
    void write(Addr addr, std::span<const u8> plaintext, u32 layer_id, u32 fmap_idx,
               u32 blk_idx);

    /// Reads, decrypts and verifies one unit.  `out` must be unit-sized.
    [[nodiscard]] Verify_status read(Addr addr, std::span<u8> out, u32 layer_id,
                                     u32 fmap_idx, u32 blk_idx);

    /// Batch write: one tile transfer's worth of units in a single call.
    /// Equivalent to write() per entry, in order, with the per-unit setup
    /// amortized across the batch.
    void write_units(std::span<const Unit_write> batch);

    /// Batch read: verifies and decrypts every entry, returning one status
    /// per unit (tamper/replay detection still fires per unit inside the
    /// batch).  Equivalent to read() per entry, in order.
    [[nodiscard]] std::vector<Verify_status> read_units(std::span<const Unit_read> batch);

    // ---- sharded-batch building blocks (runtime::Secure_session) ---------
    //
    // A batch write splits into a cheap serial phase that touches the maps
    // (VN bump + slot insertion, preserving write() ordering semantics) and
    // an expensive crypto phase over disjoint slots that is safe to fan out
    // across workers.  Reads need no staging: verify-and-decrypt is const
    // once engines are supplied by the caller.

    /// Destination of one staged batch entry.  `src == nullptr` marks an
    /// entry superseded by a later write to the same address in the same
    /// batch (its VN bump already happened; only the final payload is
    /// encrypted, exactly as serial ordering would leave it).
    struct Write_slot {
        const Unit_write* src = nullptr;
        Stored_unit* unit = nullptr;
        u64 vn = 0;
    };

    /// Serial phase of a sharded batch write: validates every entry, bumps
    /// per-unit VNs and inserts/locates destination slots.  Callers must
    /// run encrypt_slot() on every non-superseded slot before the memory is
    /// read again.
    [[nodiscard]] std::vector<Write_slot> stage_writes(std::span<const Unit_write> batch);

    /// Reusable scratch for the bulk crypto paths (encrypt_slots /
    /// read_units_with): the B-AES pad buffer plus the staging vectors the
    /// bulk HMAC pipeline consumes.  One instance belongs to exactly one
    /// thread at a time; runtime::Secure_session keeps one per worker and
    /// reuses it across batches, so the steady-state serving path stops
    /// allocating per call.
    struct Bulk_scratch {
        std::vector<crypto::Block16> pads;     ///< B-AES pad fan-out
        std::vector<crypto::Mac_request> reqs; ///< bulk-MAC inputs
        std::vector<u64> macs;                 ///< bulk-MAC outputs
        std::vector<Stored_unit*> targets;     ///< write side: MAC destinations
        std::vector<crypto::Baes_engine::Otp_request> otp_reqs;  ///< base-OTP batch inputs
        std::vector<crypto::Block16> otps;     ///< batched base OTPs (otps_many)
        struct Located {
            const Stored_unit* unit = nullptr;
            u64 vn = 0;
        };
        std::vector<Located> located;          ///< read side: found units + VNs
    };

    /// Parallel-safe phase: encrypts and MACs one staged slot.  `baes` and
    /// `hmac` may be per-worker engines, as long as they are keyed with this
    /// memory's keys; slots are disjoint so concurrent calls never alias.
    static void encrypt_slot(const Write_slot& slot, const crypto::Baes_engine& baes,
                             const crypto::Hmac_engine& hmac,
                             std::vector<crypto::Block16>& pad_scratch);

    /// Bulk form of encrypt_slot over a contiguous run of staged slots:
    /// B-AES encrypts every non-superseded slot, then all their MACs stream
    /// through the HMAC engine's multi-buffer pipeline in one call.
    /// Bit-identical to encrypt_slot per slot; shards of one staging may
    /// run concurrently on distinct engine pairs (Secure_session does).
    static void encrypt_slots(std::span<const Write_slot> slots,
                              const crypto::Baes_engine& baes,
                              const crypto::Hmac_engine& hmac,
                              std::vector<crypto::Block16>& pad_scratch);

    /// encrypt_slots with fully reusable scratch (pads + MAC staging); the
    /// allocation-free steady state of the sharded/serving write path.
    static void encrypt_slots(std::span<const Write_slot> slots,
                              const crypto::Baes_engine& baes,
                              const crypto::Hmac_engine& hmac, Bulk_scratch& scratch);

    /// Verify-and-decrypt one unit against caller-supplied engines.  Const
    /// and map-read-only, so disjoint-output calls may run concurrently
    /// (no concurrent writer allowed).
    [[nodiscard]] Verify_status read_with(const Unit_read& r,
                                          const crypto::Baes_engine& baes,
                                          const crypto::Hmac_engine& hmac,
                                          std::vector<crypto::Block16>& pad_scratch) const;

    /// Bulk form of read_with: validates and locates every entry up front
    /// (a bad entry throws before any output byte is written), computes all
    /// expected MACs through the bulk HMAC pipeline, then compares and
    /// decrypts per unit into `out_status` (same size as `batch`).  Same
    /// statuses and plaintext as read_with per entry; disjoint-output calls
    /// may run concurrently (no concurrent writer allowed).
    void read_units_with(std::span<const Unit_read> batch,
                         const crypto::Baes_engine& baes,
                         const crypto::Hmac_engine& hmac,
                         std::vector<crypto::Block16>& pad_scratch,
                         std::span<Verify_status> out_status) const;

    /// read_units_with with fully reusable scratch (pads + MAC staging); the
    /// allocation-free steady state of the sharded/serving read path.
    void read_units_with(std::span<const Unit_read> batch,
                         const crypto::Baes_engine& baes,
                         const crypto::Hmac_engine& hmac, Bulk_scratch& scratch,
                         std::span<Verify_status> out_status) const;

    /// XOR-fold of all stored unit MACs: the layer/model MAC the verifier
    /// compares after streaming a region (Fig. 3(b)).
    [[nodiscard]] u64 fold_all_macs() const;

    [[nodiscard]] const Config& config() const { return cfg_; }
    [[nodiscard]] std::size_t unit_count() const { return units_.size(); }

    // ---- attacker interface (untrusted memory / bus adversary) ----------

    /// Flips bits inside a stored unit's ciphertext.
    void tamper(Addr addr, std::size_t byte_offset, u8 xor_mask);

    /// Swaps two stored units wholesale (ciphertext + metadata), the RePA
    /// move at memory level.
    void swap_units(Addr a, Addr b);

    /// Copies the current stored state of a unit (attacker snapshot).
    [[nodiscard]] Stored_unit snapshot(Addr addr) const;

    /// Restores a previously snapshotted unit (replay / rollback attack).
    void rollback(Addr addr, const Stored_unit& old);

    /// Flips bits of a stored unit's MAC word (integrity-metadata fault).
    void corrupt_mac(Addr addr, u64 xor_mask);

    // ---- bus-adversary tap (dram/dram_tap.h) ----------------------------

    /// Installs (nullptr clears) the adversary tap.  Safe while traffic
    /// runs: the pointer is atomic and pull_dram_tap() only fires on the
    /// thread that owns the memory for the current flush.
    void set_dram_tap(dram::Dram_tap* tap) { tap_.store(tap, std::memory_order_release); }

    /// Gives an installed tap its injection window.  Called by the bulk
    /// entry points (runtime::Secure_session) and the serving layer's
    /// per-request fallback at the head of each flush, before any unit is
    /// staged or verified; near-free when no tap is installed.
    void pull_dram_tap()
    {
        if (dram::Dram_tap* tap = tap_.load(std::memory_order_acquire)) tap->pull();
    }

private:
    [[nodiscard]] static crypto::Mac_context context_for(Addr addr, u64 vn, u32 layer_id,
                                                         u32 fmap_idx, u32 blk_idx);
    [[nodiscard]] Write_slot stage_one(const Unit_write& w);
    void write_one(const Unit_write& w, std::vector<crypto::Block16>& pad_scratch);
    [[nodiscard]] Verify_status read_one(const Unit_read& r,
                                         std::vector<crypto::Block16>& pad_scratch) const;

    Config cfg_;
    crypto::Baes_engine baes_;
    crypto::Hmac_engine hmac_;  ///< precomputed-key MAC engine
    // Hash maps, not ordered maps: the serving hot path does two address
    // lookups per unit, and nothing observable depends on iteration order
    // (fold_all_macs is an order-free XOR; node references stay stable
    // across rehash, which stage_writes's Write_slot pointers rely on).
    std::unordered_map<Addr, Stored_unit> units_;  ///< the untrusted array
    std::unordered_map<Addr, u64> onchip_vns_;     ///< trusted on-chip VN table
    std::atomic<dram::Dram_tap*> tap_{nullptr};    ///< bus-adversary seam
};

}  // namespace seda::core
