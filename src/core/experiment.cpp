#include "core/experiment.h"

#include <array>

#include "common/error.h"
#include "models/zoo.h"
#include "protect/layer_mac_scheme.h"
#include "protect/unit_scheme.h"

namespace seda::core {

std::unique_ptr<protect::Protection_scheme> make_scheme(const std::string& id,
                                                        const Seda_config& seda_cfg)
{
    if (id == "baseline") return std::make_unique<protect::Baseline_scheme>();
    if (id == "sgx-64")
        return std::make_unique<protect::Unit_mac_scheme>(protect::make_sgx_scheme(64));
    if (id == "sgx-512")
        return std::make_unique<protect::Unit_mac_scheme>(protect::make_sgx_scheme(512));
    if (id == "mgx-64")
        return std::make_unique<protect::Unit_mac_scheme>(protect::make_mgx_scheme(64));
    if (id == "mgx-512")
        return std::make_unique<protect::Unit_mac_scheme>(protect::make_mgx_scheme(512));
    if (id == "tnpu-64")
        return std::make_unique<protect::Unit_mac_scheme>(protect::make_tnpu_scheme(64));
    if (id == "tnpu-512")
        return std::make_unique<protect::Unit_mac_scheme>(protect::make_tnpu_scheme(512));
    if (id == "securator")
        return std::make_unique<protect::Layer_mac_scheme>(64);
    if (id == "seda") return std::make_unique<Seda_scheme>(seda_cfg);
    throw Seda_error("make_scheme: unknown scheme id '" + id + "'");
}

std::span<const std::string_view> paper_schemes()
{
    static constexpr std::array<std::string_view, 5> k_ids = {
        "sgx-64", "mgx-64", "sgx-512", "mgx-512", "seda"};
    return k_ids;
}

double Scheme_series::avg_norm_traffic() const
{
    double s = 0.0;
    for (const auto& p : points) s += p.norm_traffic;
    return points.empty() ? 0.0 : s / static_cast<double>(points.size());
}

double Scheme_series::avg_norm_perf() const
{
    double s = 0.0;
    for (const auto& p : points) s += p.norm_perf;
    return points.empty() ? 0.0 : s / static_cast<double>(points.size());
}

std::vector<std::string_view> suite_models(std::span<const std::string_view> models)
{
    std::vector<std::string_view> model_names(models.begin(), models.end());
    if (model_names.empty())
        for (const auto& e : models::all_models()) model_names.push_back(e.short_name);
    return model_names;
}

Suite_column make_suite_column(std::string_view model, const accel::Npu_config& npu,
                               const protect::Perf_params& params)
{
    Suite_column column{accel::simulate_model(models::model_by_name(model), npu), {}};
    protect::Baseline_scheme base;
    column.baseline = run_protected(column.sim, base, params);
    return column;
}

Workload_point run_suite_cell(const Suite_column& column, std::string_view model,
                              const std::string& scheme_id,
                              const protect::Perf_params& params, const Seda_config& seda_cfg)
{
    Workload_point pt;
    pt.model = std::string(model);
    pt.baseline = column.baseline;
    auto scheme = make_scheme(scheme_id, seda_cfg);
    pt.stats = run_protected(column.sim, *scheme, params);
    pt.norm_traffic = static_cast<double>(pt.stats.traffic_bytes) /
                      static_cast<double>(pt.baseline.traffic_bytes);
    pt.norm_perf = static_cast<double>(pt.baseline.total_cycles) /
                   static_cast<double>(pt.stats.total_cycles);
    return pt;
}

Suite_result run_suite(const accel::Npu_config& npu,
                       std::span<const std::string_view> scheme_ids,
                       std::span<const std::string_view> models,
                       const protect::Perf_params& params, const Seda_config& seda_cfg)
{
    Suite_result result;
    result.npu_name = npu.name;

    const auto model_names = suite_models(models);

    // Simulate each model once; traces are scheme-independent.
    std::vector<Suite_column> columns;
    columns.reserve(model_names.size());
    for (const auto& name : model_names)
        columns.push_back(make_suite_column(name, npu, params));

    for (const auto& id : scheme_ids) {
        Scheme_series series;
        series.scheme = std::string(id);
        for (std::size_t m = 0; m < columns.size(); ++m)
            series.points.push_back(
                run_suite_cell(columns[m], model_names[m], series.scheme, params, seda_cfg));
        result.series.push_back(std::move(series));
    }
    return result;
}

}  // namespace seda::core
