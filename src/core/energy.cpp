#include "core/energy.h"

namespace seda::core {

Energy_breakdown estimate_energy(const Run_stats& run, const accel::Model_sim& sim,
                                 const Energy_params& params)
{
    Energy_breakdown e;
    const double bytes = static_cast<double>(run.traffic_bytes);
    e.dram_uj = bytes * params.dram_pj_per_byte * 1e-6;

    double macs = 0.0;
    for (const auto& l : sim.layers) macs += static_cast<double>(l.layer->macs());
    e.compute_uj = macs * params.mac_pj * 1e-6;

    // Everything crossing the untrusted boundary is encrypted/decrypted
    // once; unprotected baselines (0 verify events, no crypto engines) pay
    // nothing.
    const bool protects = run.verify_events > 0;
    if (protects) {
        e.crypto_uj = bytes * params.aes_pj_per_byte * 1e-6;
        // Hash volume: every moved byte is authenticated at least once;
        // event counts above one-per-unit indicate re-verification (halo
        // re-checks, redundant folds) on top.
        const double base_hash = bytes;
        e.hash_uj = base_hash * params.hash_pj_per_byte * 1e-6;
    }
    return e;
}

}  // namespace seda::core
