#include "core/provision.h"

#include "common/bitutil.h"
#include "common/error.h"

namespace seda::core {

namespace {

constexpr Bytes k_unit = 64;  // weight authentication block

crypto::Mac_context weight_context(Addr pa, u64 vn, u32 layer_id, u32 blk_idx)
{
    crypto::Mac_context ctx;
    ctx.pa = pa;
    ctx.vn = vn;
    ctx.layer_id = layer_id;
    ctx.fmap_idx = 0;  // weights: single "feature map"
    ctx.blk_idx = blk_idx;
    return ctx;
}

}  // namespace

Bytes image_bytes(const accel::Model_desc& model)
{
    Bytes total = 0;
    for (const auto& l : model.layers) total += align_up(l.weight_bytes(), k_block_bytes);
    return total;
}

Model_image provision_model(const accel::Model_desc& model, std::span<const u8> weights,
                            std::span<const u8> enc_key, std::span<const u8> mac_key)
{
    require(weights.size() == image_bytes(model),
            "provision_model: weights must be the padded concatenation "
            "(use image_bytes() to size it)");

    const accel::Memory_map map(model);
    const crypto::Baes_engine baes(enc_key);
    const crypto::Hmac_engine hmac(mac_key);
    std::vector<crypto::Block16> pad_scratch;

    Model_image image;
    image.ciphertext.assign(weights.begin(), weights.end());
    crypto::Xor_mac_accumulator model_fold;

    Bytes cursor = 0;
    for (std::size_t i = 0; i < model.layers.size(); ++i) {
        const Bytes padded = align_up(model.layers[i].weight_bytes(), k_block_bytes);
        Model_image::Layer_span span;
        span.base = map.weight_addr[i];
        span.bytes = padded;
        span.unit_bytes = k_unit;
        span.layer_id = static_cast<u32>(i);

        crypto::Xor_mac_accumulator layer_fold;
        for (Bytes off = 0; off < padded; off += k_unit) {
            const Bytes n = std::min(k_unit, padded - off);
            const Addr pa = span.base + off;
            std::span<u8> unit(image.ciphertext.data() + cursor + off, n);
            baes.crypt_with(unit, pa, image.provision_vn, pad_scratch);
            const u64 mac = hmac.positional_mac(
                unit, weight_context(pa, image.provision_vn, span.layer_id,
                                     static_cast<u32>(off / k_unit)));
            layer_fold.fold(mac);
            model_fold.fold(mac);
        }
        image.layer_macs.push_back(layer_fold.value());
        image.layers.push_back(span);
        cursor += padded;
    }
    image.model_mac = model_fold.value();
    return image;
}

bool verify_image(const Model_image& image, std::span<const u8> mac_key)
{
    const crypto::Hmac_engine hmac(mac_key);
    crypto::Xor_mac_accumulator model_fold;
    Bytes cursor = 0;
    for (std::size_t i = 0; i < image.layers.size(); ++i) {
        const auto& span = image.layers[i];
        crypto::Xor_mac_accumulator layer_fold;
        for (Bytes off = 0; off < span.bytes; off += span.unit_bytes) {
            const Bytes n = std::min(span.unit_bytes, span.bytes - off);
            const std::span<const u8> unit(image.ciphertext.data() + cursor + off, n);
            const u64 mac = hmac.positional_mac(
                unit, weight_context(span.base + off, image.provision_vn, span.layer_id,
                                     static_cast<u32>(off / span.unit_bytes)));
            layer_fold.fold(mac);
            model_fold.fold(mac);
        }
        if (layer_fold.value() != image.layer_macs[i]) return false;
        cursor += span.bytes;
    }
    return model_fold.value() == image.model_mac;
}

std::vector<u8> decrypt_layer(const Model_image& image, u32 layer_id,
                              std::span<const u8> enc_key)
{
    const crypto::Baes_engine baes(enc_key);
    Bytes cursor = 0;
    for (const auto& span : image.layers) {
        if (span.layer_id != layer_id) {
            cursor += span.bytes;
            continue;
        }
        std::vector<u8> plain(image.ciphertext.begin() + static_cast<std::ptrdiff_t>(cursor),
                              image.ciphertext.begin() +
                                  static_cast<std::ptrdiff_t>(cursor + span.bytes));
        for (Bytes off = 0; off < span.bytes; off += span.unit_bytes) {
            const Bytes n = std::min(span.unit_bytes, span.bytes - off);
            baes.crypt(std::span<u8>(plain.data() + off, n), span.base + off,
                       image.provision_vn);
        }
        return plain;
    }
    throw Seda_error("decrypt_layer: unknown layer id");
}

}  // namespace seda::core
