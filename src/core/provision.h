// Secure model provisioning: the software half of SeDA's deployment story.
//
// Before inference, the model owner encrypts the weights per authentication
// block, MACs each block positionally, and folds everything into the single
// on-chip **model MAC** (Fig. 3(b), Table I last row).  The accelerator
// later streams the image from untrusted memory, re-computes block MACs on
// the fly and compares the fold -- one 8-byte register decides whether any
// bit of any layer was tampered with, at zero metadata traffic.
#pragma once

#include <span>
#include <vector>

#include "accel/layer.h"
#include "accel/memory_map.h"
#include "common/types.h"
#include "crypto/baes.h"
#include "crypto/mac.h"

namespace seda::core {

/// The deployable encrypted-model artifact.
struct Model_image {
    struct Layer_span {
        Addr base = 0;          ///< weight region address (accel/memory_map.h)
        Bytes bytes = 0;        ///< padded weight bytes
        Bytes unit_bytes = 64;  ///< authentication-block size used
        u32 layer_id = 0;
    };

    std::vector<u8> ciphertext;       ///< all layers' weights, encrypted
    std::vector<Layer_span> layers;
    std::vector<u64> layer_macs;      ///< per-layer XOR-folds (layer MAC level)
    u64 model_mac = 0;                ///< fold of every block MAC (model level)
    u64 provision_vn = 1;             ///< weights are written once at this VN
};

/// Encrypts + authenticates `weights` (the concatenated per-layer tensors,
/// padded to 64 B per layer like Memory_map does) into a deployable image.
[[nodiscard]] Model_image provision_model(const accel::Model_desc& model,
                                          std::span<const u8> weights,
                                          std::span<const u8> enc_key,
                                          std::span<const u8> mac_key);

/// Streams the image like the accelerator would: recomputes every block MAC
/// over the ciphertext, folds, and compares both the per-layer MACs and the
/// model MAC.  Returns false on any mismatch (tampered image).
[[nodiscard]] bool verify_image(const Model_image& image, std::span<const u8> mac_key);

/// Decrypts one layer's weights out of a verified image.
[[nodiscard]] std::vector<u8> decrypt_layer(const Model_image& image, u32 layer_id,
                                            std::span<const u8> enc_key);

/// Total bytes a model's padded weight image occupies.
[[nodiscard]] Bytes image_bytes(const accel::Model_desc& model);

}  // namespace seda::core
