#include "core/secure_memory.h"

#include "common/bitutil.h"
#include "common/error.h"

namespace seda::core {

Secure_memory::Secure_memory(std::span<const u8> enc_key, std::span<const u8> mac_key,
                             Config cfg)
    : cfg_(cfg), baes_(enc_key), mac_key_(mac_key.begin(), mac_key.end())
{
    require(cfg_.unit_bytes >= k_aes_block_bytes && cfg_.unit_bytes % k_aes_block_bytes == 0,
            "Secure_memory: unit must be a multiple of 16 bytes");
}

crypto::Mac_context Secure_memory::context_for(Addr addr, u64 vn, u32 layer_id,
                                               u32 fmap_idx, u32 blk_idx) const
{
    crypto::Mac_context ctx;
    ctx.pa = addr;
    ctx.vn = vn;
    ctx.layer_id = layer_id;
    ctx.fmap_idx = fmap_idx;
    ctx.blk_idx = blk_idx;
    return ctx;
}

void Secure_memory::write(Addr addr, std::span<const u8> plaintext, u32 layer_id,
                          u32 fmap_idx, u32 blk_idx)
{
    require(addr % cfg_.unit_bytes == 0, "Secure_memory::write: unaligned address");
    require(plaintext.size() == cfg_.unit_bytes,
            "Secure_memory::write: plaintext must be one unit");

    const u64 vn = ++onchip_vns_[addr];  // increment on every write (Eq. 1)

    Stored_unit unit;
    unit.ciphertext.assign(plaintext.begin(), plaintext.end());
    baes_.crypt(unit.ciphertext, addr, vn);
    unit.mac = crypto::positional_block_mac(
        mac_key_, unit.ciphertext, context_for(addr, vn, layer_id, fmap_idx, blk_idx));
    unit.stored_vn = vn;  // only consulted when VNs are kept off-chip
    units_[addr] = std::move(unit);
}

Verify_status Secure_memory::read(Addr addr, std::span<u8> out, u32 layer_id,
                                  u32 fmap_idx, u32 blk_idx)
{
    require(out.size() == cfg_.unit_bytes, "Secure_memory::read: out must be one unit");
    const auto it = units_.find(addr);
    require(it != units_.end(), "Secure_memory::read: unit never written");
    const Stored_unit& unit = it->second;

    // Freshness source: the trusted on-chip table, or (vulnerably) whatever
    // the untrusted memory claims.
    const u64 vn = cfg_.onchip_vns ? onchip_vns_.at(addr) : unit.stored_vn;

    const u64 expected = crypto::positional_block_mac(
        mac_key_, unit.ciphertext, context_for(addr, vn, layer_id, fmap_idx, blk_idx));
    if (expected != unit.mac) {
        // With on-chip VNs a stale-but-self-consistent unit fails exactly
        // here: its MAC was minted under an older VN.
        if (cfg_.onchip_vns && unit.stored_vn != vn) return Verify_status::replay_detected;
        return Verify_status::mac_mismatch;
    }

    std::copy(unit.ciphertext.begin(), unit.ciphertext.end(), out.begin());
    baes_.crypt(out, addr, vn);
    return Verify_status::ok;
}

u64 Secure_memory::fold_all_macs() const
{
    crypto::Xor_mac_accumulator acc;
    for (const auto& [addr, unit] : units_) {
        (void)addr;
        acc.fold(unit.mac);
    }
    return acc.value();
}

void Secure_memory::tamper(Addr addr, std::size_t byte_offset, u8 xor_mask)
{
    auto it = units_.find(addr);
    require(it != units_.end(), "Secure_memory::tamper: unit never written");
    require(byte_offset < it->second.ciphertext.size(),
            "Secure_memory::tamper: offset outside unit");
    it->second.ciphertext[byte_offset] =
        static_cast<u8>(it->second.ciphertext[byte_offset] ^ xor_mask);
}

void Secure_memory::swap_units(Addr a, Addr b)
{
    require(units_.count(a) == 1 && units_.count(b) == 1,
            "Secure_memory::swap_units: both units must exist");
    std::swap(units_.at(a), units_.at(b));
}

Secure_memory::Stored_unit Secure_memory::snapshot(Addr addr) const
{
    const auto it = units_.find(addr);
    require(it != units_.end(), "Secure_memory::snapshot: unit never written");
    return it->second;
}

void Secure_memory::rollback(Addr addr, const Stored_unit& old)
{
    require(units_.count(addr) == 1, "Secure_memory::rollback: unit never written");
    units_.at(addr) = old;
}

}  // namespace seda::core
