#include "core/secure_memory.h"

#include <algorithm>
#include <unordered_map>

#include "common/bitutil.h"
#include "common/error.h"
#include "obs/stage.h"

namespace seda::core {

Secure_memory::Secure_memory(std::span<const u8> enc_key, std::span<const u8> mac_key,
                             Config cfg)
    : cfg_(cfg), baes_(enc_key), hmac_(mac_key)
{
    require(cfg_.unit_bytes >= k_aes_block_bytes && cfg_.unit_bytes % k_aes_block_bytes == 0,
            "Secure_memory: unit must be a multiple of 16 bytes");
}

crypto::Mac_context Secure_memory::context_for(Addr addr, u64 vn, u32 layer_id,
                                               u32 fmap_idx, u32 blk_idx)
{
    crypto::Mac_context ctx;
    ctx.pa = addr;
    ctx.vn = vn;
    ctx.layer_id = layer_id;
    ctx.fmap_idx = fmap_idx;
    ctx.blk_idx = blk_idx;
    return ctx;
}

Secure_memory::Write_slot Secure_memory::stage_one(const Unit_write& w)
{
    require(w.addr % cfg_.unit_bytes == 0, "Secure_memory::write: unaligned address");
    require(w.plaintext.size() == cfg_.unit_bytes,
            "Secure_memory::write: plaintext must be one unit");

    const u64 vn = ++onchip_vns_[w.addr];  // increment on every write (Eq. 1)
    Stored_unit& unit = units_[w.addr];
    unit.stored_vn = vn;  // only consulted when VNs are kept off-chip
    return {&w, &unit, vn};
}

void Secure_memory::encrypt_slot(const Write_slot& slot, const crypto::Baes_engine& baes,
                                 const crypto::Hmac_engine& hmac,
                                 std::vector<crypto::Block16>& pad_scratch)
{
    const Unit_write& w = *slot.src;
    Stored_unit& unit = *slot.unit;
    unit.ciphertext.assign(w.plaintext.begin(), w.plaintext.end());
    baes.crypt_with(unit.ciphertext, w.addr, slot.vn, pad_scratch);
    unit.mac = hmac.positional_mac(
        unit.ciphertext, context_for(w.addr, slot.vn, w.layer_id, w.fmap_idx, w.blk_idx));
}

std::vector<Secure_memory::Write_slot> Secure_memory::stage_writes(
    std::span<const Unit_write> batch)
{
    obs::Stage_span span(obs::Stage::stage_writes);
    // Validate everything up front: a bad entry must throw before any VN is
    // bumped or slot inserted, so a rejected batch leaves no half-staged
    // (never-encrypted) units behind.
    for (const Unit_write& w : batch) {
        require(w.addr % cfg_.unit_bytes == 0, "Secure_memory::write: unaligned address");
        require(w.plaintext.size() == cfg_.unit_bytes,
                "Secure_memory::write: plaintext must be one unit");
    }

    std::vector<Write_slot> slots;
    slots.reserve(batch.size());
    if (batch.size() <= 64) {
        // Small batches (the serving layer's coalescing windows, and every
        // single write): a backward scan for the duplicate beats building a
        // node-allocating hash map.  Scanning backward, the first entry
        // with the same unit is the most recent -- and therefore live --
        // one.
        for (const Unit_write& w : batch) {
            Write_slot slot = stage_one(w);
            for (auto it = slots.rbegin(); it != slots.rend(); ++it) {
                if (it->unit == slot.unit) {
                    it->src = nullptr;
                    break;
                }
            }
            slots.push_back(slot);
        }
        return slots;
    }

    std::unordered_map<const Stored_unit*, std::size_t> last_slot_for;
    for (const Unit_write& w : batch) {
        Write_slot slot = stage_one(w);
        // A repeated address inside the batch supersedes the earlier entry:
        // serial ordering leaves only the last payload (under the last VN)
        // in storage, so only that slot gets encrypted.
        const auto [it, inserted] = last_slot_for.try_emplace(slot.unit, slots.size());
        if (!inserted) {
            slots[it->second].src = nullptr;
            it->second = slots.size();
        }
        slots.push_back(slot);
    }
    return slots;
}

void Secure_memory::encrypt_slots(std::span<const Write_slot> slots,
                                  const crypto::Baes_engine& baes,
                                  const crypto::Hmac_engine& hmac,
                                  std::vector<crypto::Block16>& pad_scratch)
{
    // Adapter for callers that only carry pad scratch: borrow it into a
    // local Bulk_scratch so the reusable-pad behaviour is preserved.
    Bulk_scratch scratch;
    scratch.pads.swap(pad_scratch);
    encrypt_slots(slots, baes, hmac, scratch);
    scratch.pads.swap(pad_scratch);
}

void Secure_memory::encrypt_slots(std::span<const Write_slot> slots,
                                  const crypto::Baes_engine& baes,
                                  const crypto::Hmac_engine& hmac, Bulk_scratch& scratch)
{
    // Lap boundaries reuse one clock read, so phase attribution adds no
    // extra reads over a single whole-call span.
    obs::Phase_timer phases;
    // Phase 0: every live slot's base OTP in one bulk AES call (the whole
    // flush streams through the cipher's interleaved backend at once).
    auto& otp_reqs = scratch.otp_reqs;
    otp_reqs.clear();
    otp_reqs.reserve(slots.size());
    for (const Write_slot& slot : slots) {
        if (slot.src == nullptr) continue;  // superseded in-batch
        otp_reqs.push_back({slot.src->addr, slot.vn});
    }
    scratch.otps.resize(otp_reqs.size());
    baes.otps_many(otp_reqs, scratch.otps);

    // Phase 1: B-AES every live slot (pad fan-out + XOR lanes only -- the
    // AES work happened in phase 0), gathering the MAC inputs.
    auto& reqs = scratch.reqs;
    auto& targets = scratch.targets;
    reqs.clear();
    targets.clear();
    reqs.reserve(slots.size());
    targets.reserve(slots.size());
    std::size_t live = 0;
    for (const Write_slot& slot : slots) {
        if (slot.src == nullptr) continue;  // superseded in-batch
        const Unit_write& w = *slot.src;
        Stored_unit& unit = *slot.unit;
        unit.ciphertext.assign(w.plaintext.begin(), w.plaintext.end());
        baes.crypt_with_base(unit.ciphertext, w.addr, slot.vn, scratch.otps[live++],
                             scratch.pads);
        reqs.push_back({unit.ciphertext,
                        context_for(w.addr, slot.vn, w.layer_id, w.fmap_idx, w.blk_idx)});
        targets.push_back(&unit);
    }
    phases.lap(obs::Stage::baes);

    // Phase 2: one bulk-HMAC call MACs the whole run.
    scratch.macs.resize(reqs.size());
    hmac.positional_macs(reqs, scratch.macs);
    for (std::size_t i = 0; i < targets.size(); ++i) targets[i]->mac = scratch.macs[i];
    phases.lap(obs::Stage::bulk_mac);
}

void Secure_memory::write_one(const Unit_write& w, std::vector<crypto::Block16>& pad_scratch)
{
    encrypt_slot(stage_one(w), baes_, hmac_, pad_scratch);
}

Verify_status Secure_memory::read_with(const Unit_read& r, const crypto::Baes_engine& baes,
                                       const crypto::Hmac_engine& hmac,
                                       std::vector<crypto::Block16>& pad_scratch) const
{
    require(r.out.size() == cfg_.unit_bytes, "Secure_memory::read: out must be one unit");
    const auto it = units_.find(r.addr);
    require(it != units_.end(), "Secure_memory::read: unit never written");
    const Stored_unit& unit = it->second;

    // Freshness source: the trusted on-chip table, or (vulnerably) whatever
    // the untrusted memory claims.
    const u64 vn = cfg_.onchip_vns ? onchip_vns_.at(r.addr) : unit.stored_vn;

    const u64 expected = hmac.positional_mac(
        unit.ciphertext, context_for(r.addr, vn, r.layer_id, r.fmap_idx, r.blk_idx));
    if (expected != unit.mac) {
        // With on-chip VNs a stale-but-self-consistent unit fails exactly
        // here: its MAC was minted under an older VN.
        if (cfg_.onchip_vns && unit.stored_vn != vn) return Verify_status::replay_detected;
        return Verify_status::mac_mismatch;
    }

    std::copy(unit.ciphertext.begin(), unit.ciphertext.end(), r.out.begin());
    baes.crypt_with(r.out, r.addr, vn, pad_scratch);
    return Verify_status::ok;
}

void Secure_memory::read_units_with(std::span<const Unit_read> batch,
                                    const crypto::Baes_engine& baes,
                                    const crypto::Hmac_engine& hmac,
                                    std::vector<crypto::Block16>& pad_scratch,
                                    std::span<Verify_status> out_status) const
{
    Bulk_scratch scratch;
    scratch.pads.swap(pad_scratch);
    read_units_with(batch, baes, hmac, scratch, out_status);
    scratch.pads.swap(pad_scratch);
}

void Secure_memory::read_units_with(std::span<const Unit_read> batch,
                                    const crypto::Baes_engine& baes,
                                    const crypto::Hmac_engine& hmac, Bulk_scratch& scratch,
                                    std::span<Verify_status> out_status) const
{
    require(batch.size() == out_status.size(),
            "Secure_memory::read_units: status span must match batch");
    obs::Phase_timer phases;

    // Phase 1: validate and locate every entry before any output is
    // touched, gathering the expected-MAC inputs (mirrors stage_writes's
    // all-or-nothing validation on the write side).
    auto& located = scratch.located;
    auto& reqs = scratch.reqs;
    located.assign(batch.size(), {});
    reqs.resize(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const Unit_read& r = batch[i];
        require(r.out.size() == cfg_.unit_bytes, "Secure_memory::read: out must be one unit");
        const auto it = units_.find(r.addr);
        require(it != units_.end(), "Secure_memory::read: unit never written");
        const Stored_unit& unit = it->second;
        const u64 vn = cfg_.onchip_vns ? onchip_vns_.at(r.addr) : unit.stored_vn;
        located[i] = {&unit, vn};
        reqs[i] = {unit.ciphertext,
                   context_for(r.addr, vn, r.layer_id, r.fmap_idx, r.blk_idx)};
    }
    phases.lap(obs::Stage::locate);

    // Phase 2: every expected MAC through the bulk HMAC pipeline at once.
    auto& expected = scratch.macs;
    expected.resize(batch.size());
    hmac.positional_macs(reqs, expected);
    phases.lap(obs::Stage::bulk_mac);

    // Phase 3: compare and decrypt per unit -- detection still fires per
    // unit inside the batch.
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const Unit_read& r = batch[i];
        const Stored_unit& unit = *located[i].unit;
        if (expected[i] != unit.mac) {
            out_status[i] = cfg_.onchip_vns && unit.stored_vn != located[i].vn
                                ? Verify_status::replay_detected
                                : Verify_status::mac_mismatch;
            continue;
        }
        std::copy(unit.ciphertext.begin(), unit.ciphertext.end(), r.out.begin());
        baes.crypt_with(r.out, r.addr, located[i].vn, scratch.pads);
        out_status[i] = Verify_status::ok;
    }
    phases.lap(obs::Stage::verify);
}

Verify_status Secure_memory::read_one(const Unit_read& r,
                                      std::vector<crypto::Block16>& pad_scratch) const
{
    return read_with(r, baes_, hmac_, pad_scratch);
}

void Secure_memory::write(Addr addr, std::span<const u8> plaintext, u32 layer_id,
                          u32 fmap_idx, u32 blk_idx)
{
    std::vector<crypto::Block16> pads;
    write_one({addr, plaintext, layer_id, fmap_idx, blk_idx}, pads);
}

Verify_status Secure_memory::read(Addr addr, std::span<u8> out, u32 layer_id,
                                  u32 fmap_idx, u32 blk_idx)
{
    std::vector<crypto::Block16> pads;
    return read_one({addr, out, layer_id, fmap_idx, blk_idx}, pads);
}

void Secure_memory::write_units(std::span<const Unit_write> batch)
{
    std::vector<crypto::Block16> pads;  // shared pad scratch for the tile
    encrypt_slots(stage_writes(batch), baes_, hmac_, pads);
}

std::vector<Verify_status> Secure_memory::read_units(std::span<const Unit_read> batch)
{
    std::vector<Verify_status> statuses(batch.size());
    std::vector<crypto::Block16> pads;
    read_units_with(batch, baes_, hmac_, pads, statuses);
    return statuses;
}

u64 Secure_memory::fold_all_macs() const
{
    crypto::Xor_mac_accumulator acc;
    for (const auto& [addr, unit] : units_) {
        (void)addr;
        acc.fold(unit.mac);
    }
    return acc.value();
}

void Secure_memory::tamper(Addr addr, std::size_t byte_offset, u8 xor_mask)
{
    auto it = units_.find(addr);
    require(it != units_.end(), "Secure_memory::tamper: unit never written");
    require(byte_offset < it->second.ciphertext.size(),
            "Secure_memory::tamper: offset outside unit");
    it->second.ciphertext[byte_offset] =
        static_cast<u8>(it->second.ciphertext[byte_offset] ^ xor_mask);
}

void Secure_memory::swap_units(Addr a, Addr b)
{
    require(units_.count(a) == 1 && units_.count(b) == 1,
            "Secure_memory::swap_units: both units must exist");
    std::swap(units_.at(a), units_.at(b));
}

Secure_memory::Stored_unit Secure_memory::snapshot(Addr addr) const
{
    const auto it = units_.find(addr);
    require(it != units_.end(), "Secure_memory::snapshot: unit never written");
    return it->second;
}

void Secure_memory::rollback(Addr addr, const Stored_unit& old)
{
    require(units_.count(addr) == 1, "Secure_memory::rollback: unit never written");
    units_.at(addr) = old;
}

void Secure_memory::corrupt_mac(Addr addr, u64 xor_mask)
{
    require(xor_mask != 0, "Secure_memory::corrupt_mac: mask must flip at least one bit");
    auto it = units_.find(addr);
    require(it != units_.end(), "Secure_memory::corrupt_mac: unit never written");
    it->second.mac ^= xor_mask;
}

}  // namespace seda::core
