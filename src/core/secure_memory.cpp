#include "core/secure_memory.h"

#include <algorithm>

#include "common/bitutil.h"
#include "common/error.h"

namespace seda::core {

Secure_memory::Secure_memory(std::span<const u8> enc_key, std::span<const u8> mac_key,
                             Config cfg)
    : cfg_(cfg), baes_(enc_key), hmac_(mac_key)
{
    require(cfg_.unit_bytes >= k_aes_block_bytes && cfg_.unit_bytes % k_aes_block_bytes == 0,
            "Secure_memory: unit must be a multiple of 16 bytes");
}

crypto::Mac_context Secure_memory::context_for(Addr addr, u64 vn, u32 layer_id,
                                               u32 fmap_idx, u32 blk_idx) const
{
    crypto::Mac_context ctx;
    ctx.pa = addr;
    ctx.vn = vn;
    ctx.layer_id = layer_id;
    ctx.fmap_idx = fmap_idx;
    ctx.blk_idx = blk_idx;
    return ctx;
}

void Secure_memory::write_one(const Unit_write& w, std::vector<crypto::Block16>& pad_scratch)
{
    require(w.addr % cfg_.unit_bytes == 0, "Secure_memory::write: unaligned address");
    require(w.plaintext.size() == cfg_.unit_bytes,
            "Secure_memory::write: plaintext must be one unit");

    const u64 vn = ++onchip_vns_[w.addr];  // increment on every write (Eq. 1)

    Stored_unit unit;
    unit.ciphertext.assign(w.plaintext.begin(), w.plaintext.end());
    baes_.crypt_with(unit.ciphertext, w.addr, vn, pad_scratch);
    unit.mac = hmac_.positional_mac(
        unit.ciphertext, context_for(w.addr, vn, w.layer_id, w.fmap_idx, w.blk_idx));
    unit.stored_vn = vn;  // only consulted when VNs are kept off-chip
    units_[w.addr] = std::move(unit);
}

Verify_status Secure_memory::read_one(const Unit_read& r,
                                      std::vector<crypto::Block16>& pad_scratch)
{
    require(r.out.size() == cfg_.unit_bytes, "Secure_memory::read: out must be one unit");
    const auto it = units_.find(r.addr);
    require(it != units_.end(), "Secure_memory::read: unit never written");
    const Stored_unit& unit = it->second;

    // Freshness source: the trusted on-chip table, or (vulnerably) whatever
    // the untrusted memory claims.
    const u64 vn = cfg_.onchip_vns ? onchip_vns_.at(r.addr) : unit.stored_vn;

    const u64 expected = hmac_.positional_mac(
        unit.ciphertext, context_for(r.addr, vn, r.layer_id, r.fmap_idx, r.blk_idx));
    if (expected != unit.mac) {
        // With on-chip VNs a stale-but-self-consistent unit fails exactly
        // here: its MAC was minted under an older VN.
        if (cfg_.onchip_vns && unit.stored_vn != vn) return Verify_status::replay_detected;
        return Verify_status::mac_mismatch;
    }

    std::copy(unit.ciphertext.begin(), unit.ciphertext.end(), r.out.begin());
    baes_.crypt_with(r.out, r.addr, vn, pad_scratch);
    return Verify_status::ok;
}

void Secure_memory::write(Addr addr, std::span<const u8> plaintext, u32 layer_id,
                          u32 fmap_idx, u32 blk_idx)
{
    std::vector<crypto::Block16> pads;
    write_one({addr, plaintext, layer_id, fmap_idx, blk_idx}, pads);
}

Verify_status Secure_memory::read(Addr addr, std::span<u8> out, u32 layer_id,
                                  u32 fmap_idx, u32 blk_idx)
{
    std::vector<crypto::Block16> pads;
    return read_one({addr, out, layer_id, fmap_idx, blk_idx}, pads);
}

void Secure_memory::write_units(std::span<const Unit_write> batch)
{
    std::vector<crypto::Block16> pads;  // shared pad scratch for the tile
    for (const Unit_write& w : batch) write_one(w, pads);
}

std::vector<Verify_status> Secure_memory::read_units(std::span<const Unit_read> batch)
{
    std::vector<Verify_status> statuses;
    statuses.reserve(batch.size());
    std::vector<crypto::Block16> pads;
    for (const Unit_read& r : batch) statuses.push_back(read_one(r, pads));
    return statuses;
}

u64 Secure_memory::fold_all_macs() const
{
    crypto::Xor_mac_accumulator acc;
    for (const auto& [addr, unit] : units_) {
        (void)addr;
        acc.fold(unit.mac);
    }
    return acc.value();
}

void Secure_memory::tamper(Addr addr, std::size_t byte_offset, u8 xor_mask)
{
    auto it = units_.find(addr);
    require(it != units_.end(), "Secure_memory::tamper: unit never written");
    require(byte_offset < it->second.ciphertext.size(),
            "Secure_memory::tamper: offset outside unit");
    it->second.ciphertext[byte_offset] =
        static_cast<u8>(it->second.ciphertext[byte_offset] ^ xor_mask);
}

void Secure_memory::swap_units(Addr a, Addr b)
{
    require(units_.count(a) == 1 && units_.count(b) == 1,
            "Secure_memory::swap_units: both units must exist");
    std::swap(units_.at(a), units_.at(b));
}

Secure_memory::Stored_unit Secure_memory::snapshot(Addr addr) const
{
    const auto it = units_.find(addr);
    require(it != units_.end(), "Secure_memory::snapshot: unit never written");
    return it->second;
}

void Secure_memory::rollback(Addr addr, const Stored_unit& old)
{
    require(units_.count(addr) == 1, "Secure_memory::rollback: unit never written");
    units_.at(addr) = old;
}

}  // namespace seda::core
