// Authentication-block (optBlk) scheduling search, after SecureLoop [10].
//
// Given the actual access ranges that will touch a protected region (the
// producer's writes plus the consumer's reads, under their own tilings),
// the search scores candidate block sizes by
//
//   cost(g) = w_ampl * amplification_bytes(g) + w_ledger * unit_count(g)
//
// Amplification is the real quantity SeDA must avoid: an optBlk straddling
// a tile edge forces fetching bytes outside the tile just to recompute its
// MAC.  The ledger term models the on-chip bookkeeping (fold bitmap and
// retained-window MACs) that grows with the number of units, pushing the
// choice toward the *coarsest aligned* granularity -- which is exactly the
// paper's "optimal block" between too-fine (metadata-heavy) and too-coarse
// (overlap-hostile) extremes.
#pragma once

#include <span>
#include <vector>

#include "accel/trace.h"

namespace seda::core {

struct Optblk_params {
    Bytes min_unit = 64;
    Bytes max_unit = 4096;
    double amplification_weight = 1.0;
    double ledger_weight = 0.0625;  ///< cost-per-unit, byte-equivalents

    /// Extra candidate sizes (beyond powers of two) derived from the access
    /// geometry, e.g. the tile-row byte size; filled by the caller.
    std::vector<Bytes> extra_candidates;
};

struct Optblk_choice {
    Bytes unit_bytes = 64;
    Bytes amplification_bytes = 0;  ///< projected for the scored trace
    u64 unit_count = 0;             ///< distinct units the region spans
    double cost = 0.0;
};

/// Projected amplification of protecting `ranges` at `unit_bytes`.
[[nodiscard]] Bytes projected_amplification(std::span<const accel::Access_range> ranges,
                                            Bytes unit_bytes);

/// Scores all candidates over the region's access ranges and returns the
/// cheapest.  `region_span_bytes` bounds the unit count (ledger size).
[[nodiscard]] Optblk_choice search_optblk(std::span<const accel::Access_range> ranges,
                                          Bytes region_span_bytes,
                                          const Optblk_params& params = {});

}  // namespace seda::core
