// Experiment harness shared by the bench binaries: scheme factory, the
// five-scheme comparison suite of Figs. 5/6, and normalization helpers.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/secure_npu.h"
#include "core/seda_scheme.h"

namespace seda::core {

/// Scheme ids used across benches: "baseline", "sgx-64", "sgx-512",
/// "mgx-64", "mgx-512", "seda", plus "securator" (the tiling-oblivious
/// layer-MAC foil used by the ablation study).
[[nodiscard]] std::unique_ptr<protect::Protection_scheme> make_scheme(
    const std::string& id, const Seda_config& seda_cfg = {});

/// The paper's five protection schemes, in Fig. 5/6 legend order.
[[nodiscard]] std::span<const std::string_view> paper_schemes();

struct Workload_point {
    std::string model;
    double norm_traffic = 1.0;  ///< scheme traffic / baseline traffic
    double norm_perf = 1.0;     ///< baseline cycles / scheme cycles
    Run_stats stats;
    Run_stats baseline;
};

struct Scheme_series {
    std::string scheme;
    std::vector<Workload_point> points;

    [[nodiscard]] double avg_norm_traffic() const;
    [[nodiscard]] double avg_norm_perf() const;
};

struct Suite_result {
    std::string npu_name;
    std::vector<Scheme_series> series;
};

/// Runs every (scheme, model) combination on one NPU.  `models` uses zoo
/// short or full names; empty means all 13 paper workloads.
[[nodiscard]] Suite_result run_suite(const accel::Npu_config& npu,
                                     std::span<const std::string_view> scheme_ids,
                                     std::span<const std::string_view> models = {},
                                     const protect::Perf_params& params = {},
                                     const Seda_config& seda_cfg = {});

// ---- suite building blocks ------------------------------------------------
//
// run_suite decomposes into independent pieces so drivers with different
// execution orders (the serial loop above, runtime::run_suite_parallel) share
// one definition of what a suite cell computes -- which is what makes their
// results bit-identical by construction.

/// Resolves a suite's model list: empty means all 13 paper workloads, in the
/// zoo's plotting order.
[[nodiscard]] std::vector<std::string_view> suite_models(
    std::span<const std::string_view> models);

/// The scheme-independent part of one suite column: the accelerator trace
/// and the baseline (unprotected) run it is normalized against.
struct Suite_column {
    accel::Model_sim sim;
    Run_stats baseline;
};

/// Simulates one model once for the whole suite.
[[nodiscard]] Suite_column make_suite_column(std::string_view model,
                                             const accel::Npu_config& npu,
                                             const protect::Perf_params& params = {});

/// One (scheme, model) cell: constructs its own scheme instance via
/// make_scheme, so cells are independent of each other and safe to run
/// concurrently on shared-nothing workers.
[[nodiscard]] Workload_point run_suite_cell(const Suite_column& column,
                                            std::string_view model,
                                            const std::string& scheme_id,
                                            const protect::Perf_params& params = {},
                                            const Seda_config& seda_cfg = {});

}  // namespace seda::core
