#include "core/optblk_search.h"

#include <algorithm>

#include "common/bitutil.h"
#include "common/error.h"

namespace seda::core {

Bytes projected_amplification(std::span<const accel::Access_range> ranges, Bytes unit_bytes)
{
    Bytes ampl = 0;
    for (const auto& r : ranges) {
        if (r.length == 0) continue;
        const Addr lo = align_down(r.first_block(), unit_bytes);
        const Addr hi = align_up(r.end_block(), unit_bytes);
        ampl += (hi - lo) - (r.end_block() - r.first_block());
    }
    return ampl;
}

Optblk_choice search_optblk(std::span<const accel::Access_range> ranges,
                            Bytes region_span_bytes, const Optblk_params& params)
{
    require(params.min_unit >= k_block_bytes && is_pow2(params.min_unit),
            "search_optblk: min unit must be a power of two >= 64");
    require(params.max_unit >= params.min_unit, "search_optblk: bad unit bounds");

    std::vector<Bytes> candidates;
    for (Bytes g = params.min_unit; g <= params.max_unit; g *= 2) candidates.push_back(g);
    for (Bytes g : params.extra_candidates) {
        // Geometry-derived candidates are block-aligned and deduplicated.
        const Bytes aligned = align_down(std::max(g, params.min_unit), k_block_bytes);
        if (aligned >= params.min_unit && aligned <= params.max_unit)
            candidates.push_back(aligned);
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()), candidates.end());

    // Lexicographic selection: amplification is real off-chip traffic and
    // redundant decrypt/verify work (the thing SeDA exists to avoid), so
    // candidates are ranked by amplification first, and only then by the
    // weighted cost (which the ledger term drives toward coarse units).
    // A 64 B candidate always achieves zero amplification on block-aligned
    // traces, so the minimum-amplification tier is never empty.
    Optblk_choice best;
    bool first = true;
    for (Bytes g : candidates) {
        Optblk_choice c;
        c.unit_bytes = g;
        c.amplification_bytes = projected_amplification(ranges, g);
        c.unit_count = ceil_div(std::max<Bytes>(region_span_bytes, g), g);
        c.cost = params.amplification_weight * static_cast<double>(c.amplification_bytes) +
                 params.ledger_weight * static_cast<double>(c.unit_count);
        const bool better =
            first || c.amplification_bytes < best.amplification_bytes ||
            (c.amplification_bytes == best.amplification_bytes && c.cost < best.cost);
        if (better) {
            best = c;
            first = false;
        }
    }
    return best;
}

}  // namespace seda::core
