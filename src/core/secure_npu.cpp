#include "core/secure_npu.h"

#include <algorithm>
#include <cmath>

namespace seda::core {

namespace {

/// Prices one protected layer result and folds it into the run stats.
Layer_run_stats price_phase(const protect::Layer_protect_result& res, Cycles compute_cycles,
                            const accel::Npu_config& npu, const dram::Dram_config& dcfg,
                            dram::Dram_sim& dsim, int crypto_engines,
                            const protect::Perf_params& pp)
{
    Layer_run_stats ls;
    ls.compute_cycles = compute_cycles;

    const Cycles ctrl_cycles = dsim.process_stream(res.timed_stream);
    double mem = npu.ctrl_to_npu_cycles(static_cast<double>(ctrl_cycles), dcfg);
    mem += pp.vn_prefetch_discount * static_cast<double>(res.prefetch_bytes) /
           npu.link_bytes_per_npu_cycle();
    mem += static_cast<double>(res.mac_demand_misses) * pp.stall_cycles_per_mac_miss;
    mem += static_cast<double>(res.fixed_cycles);
    ls.mem_cycles = static_cast<Cycles>(std::llround(mem));

    if (crypto_engines > 0) {
        const double crypto_rate = crypto::crypto_bytes_per_cycle(crypto_engines);
        ls.crypto_cycles = static_cast<Cycles>(std::llround(
            static_cast<double>(res.total_traffic_bytes()) / crypto_rate));
    }

    ls.layer_cycles = std::max({ls.compute_cycles, ls.mem_cycles, ls.crypto_cycles});
    ls.traffic_bytes = res.total_traffic_bytes();
    ls.verify_events = res.verify_events;
    ls.mac_misses = res.mac_demand_misses;
    return ls;
}

}  // namespace

Run_stats run_protected(const accel::Model_sim& sim, protect::Protection_scheme& scheme,
                        const protect::Perf_params& pp)
{
    const accel::Npu_config& npu = sim.npu;
    const dram::Dram_config dcfg = npu.dram_config();
    dram::Dram_sim dsim(dcfg);
    const int crypto_engines = scheme.crypto_engine_equivalents(npu);

    Run_stats run;
    run.scheme_name = scheme.name();
    run.model_name = sim.model ? sim.model->name : "?";
    run.npu_name = npu.name;
    run.layers.reserve(sim.layers.size() + 1);

    scheme.begin_model(sim);
    for (const auto& layer : sim.layers) {
        const auto res = scheme.transform_layer(layer);
        Layer_run_stats ls =
            price_phase(res, layer.compute.cycles, npu, dcfg, dsim, crypto_engines, pp);
        ls.layer_name = layer.layer->name;
        run.prefetch_bytes += res.prefetch_bytes;
        run.layers.push_back(ls);
    }
    {
        const auto res = scheme.end_model();
        Layer_run_stats ls = price_phase(res, 0, npu, dcfg, dsim, crypto_engines, pp);
        ls.layer_name = "(end-of-model)";
        run.prefetch_bytes += res.prefetch_bytes;
        run.layers.push_back(ls);
    }

    for (const auto& ls : run.layers) {
        run.total_cycles += ls.layer_cycles;
        run.traffic_bytes += ls.traffic_bytes;
        run.verify_events += ls.verify_events;
        run.mac_misses += ls.mac_misses;
    }
    const auto& ds = dsim.stats();
    for (int t = 0; t < static_cast<int>(dram::Traffic_tag::count); ++t)
        run.bytes_by_tag[t] = ds.bytes_by_tag[t];
    // Prefetch traffic never enters the DRAM stream; attribute it to the VN tag.
    run.bytes_by_tag[static_cast<int>(dram::Traffic_tag::vn)] += run.prefetch_bytes;
    run.dram_row_hit_rate = ds.row_hit_rate();
    return run;
}

}  // namespace seda::core
