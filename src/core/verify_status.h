// Verify_status: the per-unit outcome of protected-memory verification.
//
// Split out of secure_memory.h so the accounting layers that only name the
// enum (serve::Serve_stats failure records, infer::Infer_stats failure
// logs, the attack campaign's ledger) need not pull in the crypto engines.
#pragma once

namespace seda::core {

enum class Verify_status { ok, mac_mismatch, replay_detected };

[[nodiscard]] constexpr const char* to_string(Verify_status s)
{
    switch (s) {
        case Verify_status::ok: return "ok";
        case Verify_status::mac_mismatch: return "mac_mismatch";
        case Verify_status::replay_detected: return "replay_detected";
    }
    return "?";
}

}  // namespace seda::core
