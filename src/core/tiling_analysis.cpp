#include "core/tiling_analysis.h"

#include <map>

namespace seda::core {

Overlap_summary analyze_overlap(const accel::Layer_sim& layer)
{
    Overlap_summary s;
    // Count per-block touch multiplicity over the layer's read trace.
    std::map<Addr, int> touches;
    Bytes weight_read = 0;
    for (const auto& r : layer.trace) {
        if (r.is_write) continue;
        if (r.tensor == accel::Tensor_kind::ifmap) {
            accel::for_each_block(r, [&](Addr a) { ++touches[a]; });
        } else if (r.tensor == accel::Tensor_kind::weight) {
            weight_read += r.block_count() * k_block_bytes;
        }
    }
    for (const auto& [addr, n] : touches) {
        (void)addr;
        s.ifmap_read_bytes += static_cast<Bytes>(n) * k_block_bytes;
        if (n > 1) s.halo_refetch_bytes += static_cast<Bytes>(n - 1) * k_block_bytes;
    }
    const Bytes weight_once =
        layer.layer ? align_up(layer.layer->weight_bytes(), k_block_bytes) : 0;
    s.weight_refetch_bytes = weight_read > weight_once ? weight_read - weight_once : 0;
    s.halo_fraction = s.ifmap_read_bytes == 0
                          ? 0.0
                          : static_cast<double>(s.halo_refetch_bytes) /
                                static_cast<double>(s.ifmap_read_bytes);
    return s;
}

Alignment_info analyze_alignment(const accel::Layer_sim& producer,
                                 const accel::Layer_sim& consumer)
{
    Alignment_info info;
    // The producer writes row tiles of t_oh ofmap rows; the consumer reads
    // slabs starting every t_oh*stride of *its* ifmap rows -- both are
    // multiples of one producer ofmap row in bytes.
    info.producer_stride_bytes =
        static_cast<Bytes>(producer.plan.t_oh) * producer.plan.ofmap_row_bytes;
    const int consumer_stride =
        consumer.layer && consumer.layer->is_compute() && consumer.layer->kind !=
                accel::Layer_kind::matmul
            ? consumer.plan.t_oh * consumer.layer->stride
            : consumer.plan.t_oh;
    info.consumer_stride_bytes =
        static_cast<Bytes>(consumer_stride) * consumer.plan.ifmap_row_bytes;
    return info;
}

bool unit_aligned(const Alignment_info& info, Bytes unit_bytes)
{
    if (unit_bytes == 0) return false;
    const bool p_ok =
        info.producer_stride_bytes == 0 || info.producer_stride_bytes % unit_bytes == 0;
    const bool c_ok =
        info.consumer_stride_bytes == 0 || info.consumer_stride_bytes % unit_bytes == 0;
    return p_ok && c_ok;
}

}  // namespace seda::core
