// First-order energy model (extension beyond the paper's evaluation).
//
// Security schemes trade off-chip traffic against on-chip crypto work; the
// energy view makes that trade explicit: every extra metadata byte costs
// ~20x more energy off-chip than the hash that could have replaced it.
// Constants are first-order 28 nm figures (DRAM access ~20 pJ/B, 8-bit MAC
// ~0.3 pJ, AES/hash datapaths ~2 pJ/B); the scheme *comparison* -- not the
// absolute joules -- is the deliverable, mirroring how the paper treats
// area/power in Fig. 4.
#pragma once

#include "accel/accel_sim.h"
#include "core/secure_npu.h"

namespace seda::core {

struct Energy_params {
    double dram_pj_per_byte = 20.0;  ///< off-chip access energy
    double mac_pj = 0.3;             ///< one 8-bit multiply-accumulate
    double aes_pj_per_byte = 2.0;    ///< encryption/decryption datapath
    double hash_pj_per_byte = 1.6;   ///< MAC/hash engine datapath
};

struct Energy_breakdown {
    double dram_uj = 0.0;    ///< all off-chip transfers (data + metadata)
    double compute_uj = 0.0; ///< systolic-array MACs
    double crypto_uj = 0.0;  ///< en/decryption of off-chip traffic
    double hash_uj = 0.0;    ///< integrity hashing (incl. re-verification)

    [[nodiscard]] double total_uj() const
    {
        return dram_uj + compute_uj + crypto_uj + hash_uj;
    }
};

/// Estimates the energy of one protected run.  `verified_bytes` (hashing
/// volume) is derived from the run's verify events and traffic: schemes that
/// re-verify halo units hash more than the bytes they move.
[[nodiscard]] Energy_breakdown estimate_energy(const Run_stats& run,
                                               const accel::Model_sim& sim,
                                               const Energy_params& params = {});

}  // namespace seda::core
