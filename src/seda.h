// SeDA: Secure and Efficient DNN Accelerators with Hardware/Software Synergy
// (DAC 2025) -- umbrella header for the whole library.
//
// Layered public API (include just the layer you need):
//
//   crypto    - AES/CTR/B-AES, SHA-256, HMAC, positional & XOR MACs,
//               SECA / RePA attack models, 28 nm engine cost model
//   dram      - open-page DDR timing model with FR-FCFS scheduling
//   accel     - layers, NPU configs, systolic cycle model, tiler, traces,
//               SCALE-Sim-style reports
//   models    - the 13 evaluation workloads
//   protect   - protection-scheme interface, metadata caches, integrity
//               tree, SGX-/MGX-style baselines
//   core      - the SeDA scheme (optBlk search + multi-level MACs), the
//               secure-NPU pricing pipeline, functional secure memory,
//               model provisioning, and the experiment harness
//   runtime   - thread pool / task queue, the concurrent suite driver, and
//               sharded multi-worker secure-memory sessions
//   serve     - the multi-tenant serving layer: request front end, bounded
//               admission queue, per-tenant keys/memory, batching
//               scheduler, and the closed-loop load generator
//   infer     - the secure inference engine: model traces bound onto
//               protected units, trace replay through a session or the
//               server, per-layer verification accounting
//   attack    - the adversary-under-load campaign driver: seeded fault
//               plans injected through the Dram_tap seam against a live
//               server, with exact detection attribution
//   obs       - stage-level observability: sharded metrics registry,
//               log-bucketed latency histograms, pipeline span timers,
//               Prometheus/JSON scrape and chrome://tracing export
//
// Typical entry points: accel::simulate_model, core::make_scheme,
// core::run_protected, core::run_suite, core::Secure_memory,
// core::provision_model, runtime::run_suite_parallel,
// runtime::Secure_session, serve::Server, serve::run_loadgen,
// infer::run_infer, attack::run_campaign.
#pragma once

#include "accel/accel_sim.h"
#include "attack/campaign.h"
#include "attack/fault_injector.h"
#include "attack/fault_plan.h"
#include "accel/report.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/experiment.h"
#include "core/optblk_search.h"
#include "core/provision.h"
#include "core/secure_memory.h"
#include "core/secure_npu.h"
#include "core/seda_scheme.h"
#include "core/tiling_analysis.h"
#include "crypto/attacks.h"
#include "crypto/baes.h"
#include "crypto/engine_model.h"
#include "crypto/kdf.h"
#include "crypto/mac.h"
#include "dram/dram_sim.h"
#include "dram/dram_tap.h"
#include "infer/inference_engine.h"
#include "infer/model_binding.h"
#include "infer/run_infer.h"
#include "infer/trace_player.h"
#include "infer/unit_sink.h"
#include "models/zoo.h"
#include "obs/export.h"
#include "obs/flight.h"
#include "obs/health.h"
#include "obs/histogram.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/snapshot.h"
#include "obs/stage.h"
#include "obs/trace.h"
#include "protect/scheme.h"
#include "protect/unit_scheme.h"
#include "runtime/parallel_suite.h"
#include "runtime/secure_session.h"
#include "runtime/thread_pool.h"
#include "serve/loadgen.h"
#include "serve/server.h"
