#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace seda {

Ascii_table::Ascii_table(std::vector<std::string> header) : header_(std::move(header))
{
    require(!header_.empty(), "Ascii_table: header must not be empty");
}

void Ascii_table::add_row(std::vector<std::string> row)
{
    require(row.size() == header_.size(),
            "Ascii_table: row width does not match header width");
    rows_.push_back(std::move(row));
}

void Ascii_table::print(std::ostream& os) const
{
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto print_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
            if (c + 1 != row.size()) os << "  ";
        }
        os << '\n';
    };

    print_row(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c + 1 != width.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_) print_row(row);
}

void Ascii_table::print_csv(std::ostream& os) const
{
    auto print_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 != row.size()) os << ',';
        }
        os << '\n';
    };
    print_row(header_);
    for (const auto& row : rows_) print_row(row);
}

std::string fmt_f(double v, int digits)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(digits) << v;
    return ss.str();
}

std::string fmt_pct(double fraction, int digits)
{
    return fmt_f(100.0 * fraction, digits) + "%";
}

std::string fmt_bytes(unsigned long long bytes)
{
    constexpr unsigned long long kib = 1024, mib = kib * 1024, gib = mib * 1024;
    std::ostringstream ss;
    if (bytes >= gib)
        ss << fmt_f(static_cast<double>(bytes) / static_cast<double>(gib)) << " GiB";
    else if (bytes >= mib)
        ss << fmt_f(static_cast<double>(bytes) / static_cast<double>(mib)) << " MiB";
    else if (bytes >= kib)
        ss << fmt_f(static_cast<double>(bytes) / static_cast<double>(kib)) << " KiB";
    else
        ss << bytes << " B";
    return ss.str();
}

}  // namespace seda
