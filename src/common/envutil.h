// Environment-variable backend selection shared by the pluggable crypto
// layers (SEDA_AES_BACKEND, SEDA_SHA_BACKEND).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <utility>

namespace seda {

/// Resolves a backend-name environment variable: the kind whose name
/// matches the variable's value, or `fallback` when the variable is unset.
/// An unknown value also falls back, with a warning on stderr -- a typo
/// would otherwise silently re-run the default backend and defeat a
/// cross-validation sweep.  Callers wrap this in std::call_once so the
/// resolution (and the warning) happen exactly once per process.
template <typename Kind>
[[nodiscard]] Kind resolve_backend_env(
    const char* env_var, std::span<const std::pair<std::string_view, Kind>> names,
    Kind fallback)
{
    const char* env = std::getenv(env_var);
    if (env == nullptr) return fallback;
    const std::string_view value(env);

    std::string known;    // "scalar|ttable", for the warning
    std::string def = "?";  // fallback's name
    for (const auto& [name, kind] : names) {
        if (value == name) return kind;
        if (!known.empty()) known += '|';
        known += name;
        if (kind == fallback) def = name;
    }
    std::fprintf(stderr, "seda: %s=\"%s\" is not a backend (%s); using %s\n", env_var,
                 env, known.c_str(), def.c_str());
    return fallback;
}

/// The once-per-process resolution discipline both crypto resolvers share:
/// resolves the env var exactly once (flipping it mid-run would silently mix
/// backends across cached instances, and concurrent first-use from pool
/// workers must neither race the resolution nor double-print a warning --
/// the TSan CI job watches this), then degrades a resolved-but-unavailable
/// kind (a hardware backend forced on a CPU without the feature) to
/// `software_fallback` with a warning.  `preferred` is what an unset
/// variable resolves to and must itself be available.  One static state per
/// Kind instantiation, so the AES and SHA resolvers don't interfere.
template <typename Kind>
[[nodiscard]] Kind resolve_backend_env_once(
    const char* env_var, std::span<const std::pair<std::string_view, Kind>> names,
    Kind preferred, bool (*available)(Kind), Kind software_fallback)
{
    static std::once_flag resolved;
    static Kind kind{};
    std::call_once(resolved, [&] {
        kind = resolve_backend_env<Kind>(env_var, names, preferred);
        if (!available(kind)) {
            std::string_view name = "?", fb = "?";
            for (const auto& [n, k] : names) {
                if (k == kind) name = n;
                if (k == software_fallback) fb = n;
            }
            std::fprintf(stderr,
                         "seda: %s=%.*s is not available on this CPU; using %.*s\n",
                         env_var, static_cast<int>(name.size()), name.data(),
                         static_cast<int>(fb.size()), fb.data());
            kind = software_fallback;
        }
    });
    return kind;
}

}  // namespace seda
