// Environment-variable backend selection shared by the pluggable crypto
// layers (SEDA_AES_BACKEND, SEDA_SHA_BACKEND).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <string_view>
#include <utility>

namespace seda {

/// Resolves a backend-name environment variable: the kind whose name
/// matches the variable's value, or `fallback` when the variable is unset.
/// An unknown value also falls back, with a warning on stderr -- a typo
/// would otherwise silently re-run the default backend and defeat a
/// cross-validation sweep.  Callers wrap this in std::call_once so the
/// resolution (and the warning) happen exactly once per process.
template <typename Kind>
[[nodiscard]] Kind resolve_backend_env(
    const char* env_var, std::span<const std::pair<std::string_view, Kind>> names,
    Kind fallback)
{
    const char* env = std::getenv(env_var);
    if (env == nullptr) return fallback;
    const std::string_view value(env);

    std::string known;    // "scalar|ttable", for the warning
    std::string def = "?";  // fallback's name
    for (const auto& [name, kind] : names) {
        if (value == name) return kind;
        if (!known.empty()) known += '|';
        known += name;
        if (kind == fallback) def = name;
    }
    std::fprintf(stderr, "seda: %s=\"%s\" is not a backend (%s); using %s\n", env_var,
                 env, known.c_str(), def.c_str());
    return fallback;
}

}  // namespace seda
