// Minimal ASCII table / CSV emitters for the benchmark harness.
//
// Every bench binary reproduces one table or figure of the paper; the
// formatter keeps their output uniform and machine-parsable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace seda {

/// Collects rows of strings and prints them with aligned columns.
class Ascii_table {
public:
    explicit Ascii_table(std::vector<std::string> header);

    /// Adds a data row; it must have exactly as many cells as the header.
    void add_row(std::vector<std::string> row);

    /// Renders with column alignment and a header separator.
    void print(std::ostream& os) const;

    /// Renders the same content as CSV (no alignment padding).
    void print_csv(std::ostream& os) const;

    [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimal places.
[[nodiscard]] std::string fmt_f(double v, int digits = 2);

/// Formats a ratio as a percentage string, e.g. 0.1226 -> "12.26%".
[[nodiscard]] std::string fmt_pct(double fraction, int digits = 2);

/// Formats a byte count with an IEC suffix (KiB/MiB/GiB) for readability.
[[nodiscard]] std::string fmt_bytes(unsigned long long bytes);

}  // namespace seda
