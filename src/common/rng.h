// Deterministic pseudo-random generation for tests, workload synthesis and
// attack experiments.
//
// We deliberately avoid std::rand() and default-seeded std::mt19937 so every
// experiment in the paper-reproduction harness is bit-reproducible across
// runs and platforms.  SplitMix64 seeds a xoshiro256** core.
#pragma once

#include <array>
#include <limits>

#include "common/types.h"

namespace seda {

/// SplitMix64: used to expand a single seed into a full xoshiro state.
[[nodiscard]] constexpr u64 splitmix64(u64& state)
{
    state += 0x9E3779B97F4A7C15ULL;
    u64 z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

/// xoshiro256** deterministic PRNG (Blackman & Vigna).
class Rng {
public:
    explicit constexpr Rng(u64 seed = 0x5EDA5EDA5EDA5EDAULL)
    {
        u64 sm = seed;
        for (auto& s : state_) s = splitmix64(sm);
    }

    [[nodiscard]] constexpr u64 next_u64()
    {
        const u64 result = rotl(state_[1] * 5, 7) * 9;
        const u64 t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform in [0, bound).  bound must be > 0.
    [[nodiscard]] constexpr u64 next_below(u64 bound)
    {
        // Rejection sampling to avoid modulo bias.
        const u64 threshold = (std::numeric_limits<u64>::max() - bound + 1) % bound;
        for (;;) {
            const u64 r = next_u64();
            if (r >= threshold) return r % bound;
        }
    }

    [[nodiscard]] constexpr u8 next_byte() { return static_cast<u8>(next_u64() & 0xFF); }

    /// Uniform double in [0, 1).
    [[nodiscard]] constexpr double next_unit()
    {
        return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
    }

private:
    [[nodiscard]] static constexpr u64 rotl(u64 x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<u64, 4> state_{};
};

}  // namespace seda
