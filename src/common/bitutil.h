// Small integer helpers: ceiling division, alignment, power-of-two tests.
#pragma once

#include <bit>
#include <cassert>
#include <type_traits>

#include "common/types.h"

namespace seda {

/// Ceiling division for non-negative integers: ceil(a / b), b > 0.
template <typename T>
[[nodiscard]] constexpr T ceil_div(T a, T b)
{
    static_assert(std::is_integral_v<T>);
    assert(b > 0);
    return static_cast<T>((a + b - 1) / b);
}

/// Rounds `v` up to the next multiple of `align` (align > 0).
template <typename T>
[[nodiscard]] constexpr T align_up(T v, T align)
{
    return ceil_div(v, align) * align;
}

/// Rounds `v` down to the previous multiple of `align` (align > 0).
template <typename T>
[[nodiscard]] constexpr T align_down(T v, T align)
{
    assert(align > 0);
    return static_cast<T>((v / align) * align);
}

[[nodiscard]] constexpr bool is_pow2(u64 v) { return v != 0 && (v & (v - 1)) == 0; }

/// floor(log2(v)) for v > 0.
[[nodiscard]] constexpr u32 log2_floor(u64 v)
{
    assert(v > 0);
    return static_cast<u32>(63 - std::countl_zero(v));
}

/// Smallest power of two >= v (v >= 1).
[[nodiscard]] constexpr u64 next_pow2(u64 v)
{
    assert(v >= 1);
    return std::bit_ceil(v);
}

[[nodiscard]] constexpr u32 rotl32(u32 x, int s) { return std::rotl(x, s); }
[[nodiscard]] constexpr u32 rotr32(u32 x, int s) { return std::rotr(x, s); }

}  // namespace seda
