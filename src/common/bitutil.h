// Small integer helpers: ceiling division, alignment, power-of-two tests,
// and the big-endian load/store primitives shared by the crypto substrate
// (AES counter blocks, SHA-256 message schedule, MAC field serialization).
#pragma once

#include <bit>
#include <cassert>
#include <cstring>
#include <type_traits>

#include "common/types.h"

namespace seda {

/// Big-endian 32-bit load: p[0] is the most significant byte.
[[nodiscard]] constexpr u32 load_be32(const u8* p)
{
    return (static_cast<u32>(p[0]) << 24) | (static_cast<u32>(p[1]) << 16) |
           (static_cast<u32>(p[2]) << 8) | static_cast<u32>(p[3]);
}

/// Big-endian 64-bit load: p[0] is the most significant byte.
[[nodiscard]] constexpr u64 load_be64(const u8* p)
{
    return (static_cast<u64>(load_be32(p)) << 32) | load_be32(p + 4);
}

/// Big-endian 32-bit store into p[0..3].
constexpr void store_be32(u8* p, u32 v)
{
    p[0] = static_cast<u8>(v >> 24);
    p[1] = static_cast<u8>(v >> 16);
    p[2] = static_cast<u8>(v >> 8);
    p[3] = static_cast<u8>(v);
}

/// Big-endian 64-bit store into p[0..7].
constexpr void store_be64(u8* p, u64 v)
{
    store_be32(p, static_cast<u32>(v >> 32));
    store_be32(p + 4, static_cast<u32>(v));
}

/// XORs 16 bytes of `src` into `dst` in two u64 lanes -- the pad-application
/// primitive of the CTR/B-AES hot paths.  memcpy keeps the loads and stores
/// alignment- and aliasing-safe; compilers fold it to two moves.
inline void xor_16_bytes(u8* dst, const u8* src)
{
    u64 a = 0, b = 0, xa = 0, xb = 0;
    std::memcpy(&a, dst, 8);
    std::memcpy(&b, dst + 8, 8);
    std::memcpy(&xa, src, 8);
    std::memcpy(&xb, src + 8, 8);
    a ^= xa;
    b ^= xb;
    std::memcpy(dst, &a, 8);
    std::memcpy(dst + 8, &b, 8);
}

/// Ceiling division for non-negative integers: ceil(a / b), b > 0.
template <typename T>
[[nodiscard]] constexpr T ceil_div(T a, T b)
{
    static_assert(std::is_integral_v<T>);
    assert(b > 0);
    return static_cast<T>((a + b - 1) / b);
}

/// Rounds `v` up to the next multiple of `align` (align > 0).
template <typename T>
[[nodiscard]] constexpr T align_up(T v, T align)
{
    return ceil_div(v, align) * align;
}

/// Rounds `v` down to the previous multiple of `align` (align > 0).
template <typename T>
[[nodiscard]] constexpr T align_down(T v, T align)
{
    assert(align > 0);
    return static_cast<T>((v / align) * align);
}

[[nodiscard]] constexpr bool is_pow2(u64 v) { return v != 0 && (v & (v - 1)) == 0; }

/// floor(log2(v)) for v > 0.
[[nodiscard]] constexpr u32 log2_floor(u64 v)
{
    assert(v > 0);
    return static_cast<u32>(63 - std::countl_zero(v));
}

/// Smallest power of two >= v (v >= 1).
[[nodiscard]] constexpr u64 next_pow2(u64 v)
{
    assert(v >= 1);
    return std::bit_ceil(v);
}

[[nodiscard]] constexpr u32 rotl32(u32 x, int s) { return std::rotl(x, s); }
[[nodiscard]] constexpr u32 rotr32(u32 x, int s) { return std::rotr(x, s); }

/// FNV-1a 64-bit hash of a byte range: the cheap, deterministic payload
/// digest the serving-layer stats XOR-fold (not a MAC -- integrity claims
/// stay with crypto/mac.h).
[[nodiscard]] constexpr u64 fnv1a64(const u8* data, std::size_t len)
{
    u64 h = 0xCBF29CE484222325ULL;
    for (std::size_t i = 0; i < len; ++i) {
        h ^= data[i];
        h *= 0x100000001B3ULL;
    }
    return h;
}

}  // namespace seda
