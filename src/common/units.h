// Size and rate unit helpers.
#pragma once

#include "common/types.h"

namespace seda {

inline constexpr Bytes operator""_KiB(unsigned long long v) { return v * 1024ULL; }
inline constexpr Bytes operator""_MiB(unsigned long long v) { return v * 1024ULL * 1024ULL; }
inline constexpr Bytes operator""_GiB(unsigned long long v)
{
    return v * 1024ULL * 1024ULL * 1024ULL;
}

/// Decimal gigabytes-per-second, the unit NPU datasheets quote bandwidth in.
[[nodiscard]] constexpr double gb_per_s(double v) { return v * 1e9; }

/// Converts a byte volume and a clock frequency into the cycle count needed
/// at a given sustained bytes/second rate.
[[nodiscard]] constexpr double bytes_to_seconds(Bytes bytes, double bytes_per_second)
{
    return static_cast<double>(bytes) / bytes_per_second;
}

}  // namespace seda
