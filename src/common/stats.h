// Lightweight statistics helpers shared by the simulators and benches.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <span>
#include <vector>

#include "common/types.h"

namespace seda {

/// Running summary of a stream of doubles (count / mean / min / max).
class Running_stats {
public:
    void add(double v)
    {
        ++n_;
        sum_ += v;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }

    [[nodiscard]] u64 count() const { return n_; }
    [[nodiscard]] double sum() const { return sum_; }
    [[nodiscard]] double mean() const { return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_); }
    [[nodiscard]] double min() const { return n_ == 0 ? 0.0 : min_; }
    [[nodiscard]] double max() const { return n_ == 0 ? 0.0 : max_; }

private:
    u64 n_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/// Arithmetic mean of a span (0 for empty).
[[nodiscard]] inline double mean_of(std::span<const double> xs)
{
    if (xs.empty()) return 0.0;
    double s = 0.0;
    for (double x : xs) s += x;
    return s / static_cast<double>(xs.size());
}

/// Geometric mean of a span of positive values (0 for empty).
[[nodiscard]] inline double geomean_of(std::span<const double> xs)
{
    if (xs.empty()) return 0.0;
    double log_sum = 0.0;
    for (double x : xs) {
        assert(x > 0.0);
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

/// Relative overhead of `value` vs `base` in percent: 100*(value/base - 1).
[[nodiscard]] inline double overhead_pct(double value, double base)
{
    assert(base > 0.0);
    return 100.0 * (value / base - 1.0);
}

/// The `pct`-th percentile (0..100) of an ALREADY SORTED ascending sample,
/// nearest-rank method (0 for empty).  Sorted-input form so one sort serves
/// the whole p50/p95/p99 row.
[[nodiscard]] inline double percentile_sorted(std::span<const double> sorted, double pct)
{
    if (sorted.empty()) return 0.0;
    assert(std::is_sorted(sorted.begin(), sorted.end()));
    assert(pct >= 0.0 && pct <= 100.0);
    const auto n = static_cast<double>(sorted.size());
    const auto rank = static_cast<std::size_t>(std::ceil(pct / 100.0 * n));
    return sorted[rank == 0 ? 0 : rank - 1];
}

/// Percentile of an unsorted sample (copies and sorts; 0 for empty).
[[nodiscard]] inline double percentile_of(std::span<const double> xs, double pct)
{
    std::vector<double> sorted(xs.begin(), xs.end());
    std::sort(sorted.begin(), sorted.end());
    return percentile_sorted(sorted, pct);
}

/// Linearly interpolated percentile (numpy's default): pos = pct/100*(n-1),
/// blending the two straddling samples.  Nearest-rank overstates the tail of
/// small samples -- p99 of 100 uniform samples lands on the literal maximum,
/// where interpolation reads 99% of the way to it -- so human-readable rows
/// use this form; tests that assert on exact sample members keep
/// percentile_sorted.
[[nodiscard]] inline double percentile_interp_sorted(std::span<const double> sorted,
                                                     double pct)
{
    if (sorted.empty()) return 0.0;
    assert(std::is_sorted(sorted.begin(), sorted.end()));
    assert(pct >= 0.0 && pct <= 100.0);
    const double pos = pct / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    if (lo + 1 >= sorted.size()) return sorted.back();
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] + (sorted[lo + 1] - sorted[lo]) * frac;
}

/// Interpolated percentile of an unsorted sample (copies and sorts).
[[nodiscard]] inline double percentile_interp_of(std::span<const double> xs, double pct)
{
    std::vector<double> sorted(xs.begin(), xs.end());
    std::sort(sorted.begin(), sorted.end());
    return percentile_interp_sorted(sorted, pct);
}

}  // namespace seda
