// Fundamental scalar types and strong aliases used across the SeDA code base.
//
// The simulators deal in three quantities that are easy to confuse: byte
// addresses, byte counts, and clock cycles.  All three are 64-bit unsigned;
// the aliases below document intent at interfaces.
#pragma once

#include <cstddef>
#include <cstdint>

namespace seda {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i64 = std::int64_t;

/// A physical byte address in the accelerator's off-chip memory space.
using Addr = std::uint64_t;

/// A count of bytes (sizes, traffic totals).
using Bytes = std::uint64_t;

/// A count of clock cycles of whichever clock domain the context names.
using Cycles = std::uint64_t;

/// The off-chip burst / cacheline granularity used throughout the traces.
inline constexpr Bytes k_block_bytes = 64;

/// AES operates on 16-byte blocks; several modules need the constant.
inline constexpr Bytes k_aes_block_bytes = 16;

}  // namespace seda
