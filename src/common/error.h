// Error type used for configuration and usage errors across the library.
//
// Following the Core Guidelines (E.2) configuration errors throw; internal
// invariants use assert().  Integrity-verification *failures* are not errors:
// they are modelled results and are reported through return values so that
// the attack/defense experiments can observe them.
#pragma once

#include <stdexcept>
#include <string>

namespace seda {

class Seda_error : public std::runtime_error {
public:
    explicit Seda_error(const std::string& what) : std::runtime_error(what) {}
};

/// Throws Seda_error when `cond` is false.  Used to validate user-supplied
/// configuration at module boundaries.
inline void require(bool cond, const std::string& what)
{
    if (!cond) throw Seda_error(what);
}

}  // namespace seda
