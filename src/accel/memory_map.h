// Off-chip address-space layout for a model run.
//
// Weights are packed once at provisioning; activations ping-pong between two
// regions so layer i reads the buffer layer i-1 wrote.  Security metadata
// regions (MACs, VNs, integrity-tree levels, layer MACs) live in the upper
// half of the 16 GB protected space (Sec. IV-A) so metadata traffic lands in
// distinct DRAM rows from data traffic, as it would in a real system.
#pragma once

#include <vector>

#include "accel/layer.h"
#include "common/bitutil.h"

namespace seda::accel {

struct Memory_map {
    static constexpr Addr k_weight_base = 0x0000'0000ULL;
    static constexpr Addr k_act_base[2] = {0x8000'0000ULL, 0xA000'0000ULL};
    // Metadata regions sized for the worst case (8 B of MAC / VN per 64 B
    // data block over the 4 GB data window): MAC and VN arrays get 512 MiB
    // windows each; tree levels and layer MACs follow.
    static constexpr Addr k_mac_base = 0x1'0000'0000ULL;
    static constexpr Addr k_vn_base = 0x1'8000'0000ULL;
    static constexpr Addr k_tree_base = 0x2'0000'0000ULL;
    static constexpr Addr k_layer_mac_base = 0x2'4000'0000ULL;
    static constexpr Bytes k_protected_bytes = 16ULL * 1024 * 1024 * 1024;

    /// Per-layer weight region start (block aligned).
    std::vector<Addr> weight_addr;

    explicit Memory_map(const Model_desc& model)
    {
        Addr cursor = k_weight_base;
        weight_addr.reserve(model.layers.size());
        for (const auto& l : model.layers) {
            weight_addr.push_back(cursor);
            cursor += align_up(l.weight_bytes(), k_block_bytes);
        }
    }

    /// Activation region the given layer reads (its producer's output).
    [[nodiscard]] static Addr ifmap_addr(std::size_t layer_idx)
    {
        return k_act_base[layer_idx % 2];
    }

    /// Activation region the given layer writes.
    [[nodiscard]] static Addr ofmap_addr(std::size_t layer_idx)
    {
        return k_act_base[(layer_idx + 1) % 2];
    }
};

}  // namespace seda::accel
