#include "accel/accel_sim.h"

#include <algorithm>

#include "common/rng.h"

namespace seda::accel {
namespace {

void account(Layer_sim& sim, const Access_range& r)
{
    const Bytes b = r.block_count() * k_block_bytes;
    if (r.is_write)
        sim.write_bytes += b;
    else
        sim.read_bytes += b;
    sim.trace.push_back(r);
}

/// n-outer order for non-resident matmul weights: each weight tile streams
/// once, the ifmap is re-read per weight tile, and the output is written
/// tile-major (one contiguous stripe per weight tile).
void emit_n_outer_matmul(Layer_sim& sim, const Layer_desc& layer)
{
    const Tiling_plan& p = sim.plan;
    const u64 n = layer.gemm_n_dim();
    const Bytes per_out_channel = layer.weight_bytes() / n;
    const u64 m = static_cast<u64>(layer.ofmap_rows());

    u32 tile = 0;
    Addr out_cursor = sim.ofmap_base;
    for (int nt = 0; nt < p.n_tiles; ++nt) {
        const u64 ch0 = static_cast<u64>(nt) * static_cast<u64>(p.t_n);
        const u64 chs = std::min<u64>(static_cast<u64>(p.t_n), n - ch0);

        Access_range w;
        w.begin = sim.weight_base + ch0 * per_out_channel;
        w.length = chs * per_out_channel;
        w.is_write = false;
        w.tensor = Tensor_kind::weight;
        w.tile_idx = tile;
        account(sim, w);

        Access_range in;
        in.begin = sim.ifmap_base;
        in.length = layer.ifmap_bytes();
        in.is_write = false;
        in.tensor = Tensor_kind::ifmap;
        in.tile_idx = tile;
        account(sim, in);

        Access_range out;
        out.begin = out_cursor;
        out.length = m * chs * k_elem_bytes;
        out.is_write = true;
        out.tensor = Tensor_kind::ofmap;
        out.tile_idx = tile;
        account(sim, out);
        out_cursor += align_up(out.length, k_block_bytes);
        ++tile;
    }
}

/// Weight tiles, ifmap slabs (with halo) and ofmap stripes for one layer.
void emit_tiled_layer(Layer_sim& sim, const Layer_desc& layer)
{
    const Tiling_plan& p = sim.plan;
    const bool spatial = layer.kind != Layer_kind::matmul;
    const int stride = spatial ? layer.stride : 1;
    const int oh = layer.ofmap_rows();
    const int ih = layer.ifmap_rows();
    const u64 n = std::max<u64>(1, layer.gemm_n_dim());
    const Bytes per_out_channel = n > 0 ? layer.weight_bytes() / n : 0;

    u32 tile = 0;
    for (int mt = 0; mt < p.m_tiles; ++mt) {
        const int orow0 = mt * p.t_oh;
        const int orows = std::min(p.t_oh, oh - orow0);

        // Ifmap slab (includes halo rows shared with the previous tile).
        const int irow0 = orow0 * stride;
        const int irows = std::min(ih - irow0, (orows - 1) * stride +
                                                   (spatial ? layer.filt_h : 1));
        if (irows > 0 && p.ifmap_row_bytes > 0) {
            Access_range r;
            r.begin = sim.ifmap_base + static_cast<Addr>(irow0) * p.ifmap_row_bytes;
            r.length = static_cast<Bytes>(irows) * p.ifmap_row_bytes;
            r.is_write = false;
            r.tensor = Tensor_kind::ifmap;
            r.tile_idx = tile;
            account(sim, r);
        }

        // Weight tiles: streamed again for every row tile unless resident.
        if (layer.weight_bytes() > 0 && (mt == 0 || !p.weights_resident)) {
            for (int nt = 0; nt < p.n_tiles; ++nt) {
                const u64 ch0 = static_cast<u64>(nt) * static_cast<u64>(p.t_n);
                const u64 chs = std::min<u64>(static_cast<u64>(p.t_n), n - ch0);
                Access_range r;
                r.begin = sim.weight_base + ch0 * per_out_channel;
                r.length = chs * per_out_channel;
                r.is_write = false;
                r.tensor = Tensor_kind::weight;
                r.tile_idx = tile;
                account(sim, r);
            }
        }

        // Partial-sum spill for K-split layers: each extra K tile round-trips
        // the ofmap stripe at accumulator precision.
        if (p.k_tiles > 1) {
            const Bytes stripe = static_cast<Bytes>(orows) * p.ofmap_row_bytes *
                                 (k_psum_bytes / k_elem_bytes);
            for (int kt = 1; kt < p.k_tiles; ++kt) {
                Access_range w;
                w.begin = sim.ofmap_base + static_cast<Addr>(orow0) * p.ofmap_row_bytes;
                w.length = stripe;
                w.is_write = true;
                w.tensor = Tensor_kind::ofmap;
                w.tile_idx = tile;
                account(sim, w);
                Access_range rd = w;
                rd.is_write = false;
                account(sim, rd);
            }
        }

        // Ofmap stripe, written once per row tile (all channels buffered
        // across the n-loop).
        if (p.ofmap_row_bytes > 0 && orows > 0) {
            Access_range r;
            r.begin = sim.ofmap_base + static_cast<Addr>(orow0) * p.ofmap_row_bytes;
            r.length = static_cast<Bytes>(orows) * p.ofmap_row_bytes;
            r.is_write = true;
            r.tensor = Tensor_kind::ofmap;
            r.tile_idx = tile;
            account(sim, r);
        }
        ++tile;
    }
}

/// Embedding gather: index reads, pseudo-random row gathers, output writes.
void emit_embedding_layer(Layer_sim& sim, const Layer_desc& layer)
{
    Rng rng(0x5EDAULL ^ (static_cast<u64>(sim.layer_id) << 32));
    const Bytes row = static_cast<Bytes>(layer.emb_dim) * k_elem_bytes;

    // Index vector (produced upstream, read from the activation region).
    Access_range idx;
    idx.begin = sim.ifmap_base;
    idx.length = layer.ifmap_bytes();
    idx.is_write = false;
    idx.tensor = Tensor_kind::ifmap;
    account(sim, idx);

    for (int i = 0; i < layer.emb_lookups; ++i) {
        const u64 which = rng.next_below(static_cast<u64>(layer.emb_rows));
        Access_range r;
        r.begin = sim.weight_base + which * row;
        r.length = row;
        r.is_write = false;
        r.tensor = Tensor_kind::weight;
        r.tile_idx = static_cast<u32>(i);
        account(sim, r);
    }

    Access_range out;
    out.begin = sim.ofmap_base;
    out.length = layer.ofmap_bytes();
    out.is_write = true;
    out.tensor = Tensor_kind::ofmap;
    account(sim, out);
}

}  // namespace

Model_sim simulate_model(Model_desc model, const Npu_config& npu)
{
    npu.validate();
    require(!model.layers.empty(), "simulate_model: model has no layers");

    auto owned = std::make_shared<const Model_desc>(std::move(model));
    Model_sim out{owned, npu, Memory_map(*owned), {}};
    out.layers.reserve(owned->layers.size());

    for (std::size_t i = 0; i < owned->layers.size(); ++i) {
        const Layer_desc& layer = owned->layers[i];
        layer.validate();

        Layer_sim sim;
        sim.layer = &layer;
        sim.layer_id = static_cast<u32>(i);
        sim.weight_base = out.map.weight_addr[i];
        sim.ifmap_base = Memory_map::ifmap_addr(i);
        sim.ofmap_base = Memory_map::ofmap_addr(i);
        sim.compute = systolic_compute(layer, npu);

        if (layer.kind == Layer_kind::embedding) {
            emit_embedding_layer(sim, layer);
        } else {
            sim.plan = plan_tiling(layer, npu);
            if (sim.plan.n_outer)
                emit_n_outer_matmul(sim, layer);
            else
                emit_tiled_layer(sim, layer);
        }
        out.layers.push_back(std::move(sim));
    }
    return out;
}

}  // namespace seda::accel
