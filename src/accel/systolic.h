// Analytic cycle model of the systolic array (SCALE-Sim [17], [18] style).
//
// For each GEMM fold mapped onto the R x C array:
//   weight stationary:  preload R rows of weights, stream the M-row operand,
//                       drain the C-wide results:  M + 2R + C - 2 cycles;
//                       folds = ceil(K/R) * ceil(N/C).
//   output stationary:  accumulate K partials in place:  K + 2R + C - 2;
//                       folds = ceil(M/R) * ceil(N/C).
// Pool and embedding layers bypass the array (vector unit / DMA).
#pragma once

#include "accel/layer.h"
#include "accel/npu_config.h"

namespace seda::accel {

struct Compute_result {
    Cycles cycles = 0;
    u64 folds = 0;
    double utilization = 0.0;  ///< MACs / (cycles * R * C)
};

[[nodiscard]] Compute_result systolic_compute(const Layer_desc& layer, const Npu_config& npu);

}  // namespace seda::accel
