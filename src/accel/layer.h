// DNN layer descriptors and their derived GEMM geometry.
//
// The simulator follows SCALE-Sim's convention: every compute layer is
// lowered onto the systolic array as a GEMM
//     M = output pixels,  K = reduction length,  N = output channels,
// with convolutions contributing K = filt_h * filt_w * c_in and depthwise
// convolutions mapping channels across array columns (K = filt_h * filt_w,
// N = c_in).  Feature maps are stored NHWC with 1-byte elements (Table II),
// so one "ifmap row" (all channels of one spatial row) is contiguous -- the
// unit the tiler and the authentication-block search both reason about.
#pragma once

#include <string>
#include <vector>

#include "common/bitutil.h"
#include "common/error.h"
#include "common/types.h"

namespace seda::accel {

enum class Layer_kind {
    conv,       ///< standard convolution
    dwconv,     ///< depthwise convolution (c_out == c_in, one filter/channel)
    matmul,     ///< explicit GEMM (FC layers use M == 1, transformers M > 1)
    pool,       ///< pooling: memory traffic only, vector-unit compute
    embedding,  ///< table gather: memory traffic only (DLRM / NCF)
};

/// Bytes per tensor element (Table II: 1-byte precision on both NPUs).
inline constexpr Bytes k_elem_bytes = 1;
/// Partial sums spilled during K-splits are kept at accumulator width.
inline constexpr Bytes k_psum_bytes = 4;

struct Layer_desc {
    std::string name;
    Layer_kind kind = Layer_kind::conv;

    // Convolution / pooling geometry (ifmap dims already include padding,
    // as in SCALE-Sim topology files; convolutions are "valid").
    int ifmap_h = 0;
    int ifmap_w = 0;
    int c_in = 0;
    int filt_h = 0;
    int filt_w = 0;
    int c_out = 0;
    int stride = 1;

    // Explicit GEMM geometry (kind == matmul).
    int gemm_m = 0;
    int gemm_k = 0;
    int gemm_n = 0;

    // Embedding geometry (kind == embedding).
    int emb_rows = 0;     ///< rows in the table
    int emb_dim = 0;      ///< bytes per row (1-byte elements)
    int emb_lookups = 0;  ///< gathers performed

    // ---- constructors for the model zoo -------------------------------

    static Layer_desc make_conv(std::string name, int ih, int iw, int cin, int fh, int fw,
                                int cout, int stride);
    static Layer_desc make_dwconv(std::string name, int ih, int iw, int c, int fh, int fw,
                                  int stride);
    static Layer_desc make_fc(std::string name, int in_features, int out_features);
    static Layer_desc make_matmul(std::string name, int m, int k, int n);
    static Layer_desc make_pool(std::string name, int ih, int iw, int c, int window,
                                int stride);
    static Layer_desc make_embedding(std::string name, int rows, int dim, int lookups);

    // ---- derived geometry ----------------------------------------------

    [[nodiscard]] int ofmap_h() const;
    [[nodiscard]] int ofmap_w() const;
    [[nodiscard]] int out_channels() const;

    /// GEMM dims the layer lowers to (0s for pool/embedding).
    [[nodiscard]] u64 gemm_m_dim() const;
    [[nodiscard]] u64 gemm_k_dim() const;
    [[nodiscard]] u64 gemm_n_dim() const;

    [[nodiscard]] Bytes ifmap_bytes() const;
    [[nodiscard]] Bytes weight_bytes() const;
    [[nodiscard]] Bytes ofmap_bytes() const;

    /// Multiply-accumulates performed (0 for pool/embedding).
    [[nodiscard]] u64 macs() const { return gemm_m_dim() * gemm_k_dim() * gemm_n_dim(); }

    /// One NHWC ifmap row: ifmap_w * c_in bytes (K for matmul rows).
    [[nodiscard]] Bytes ifmap_row_bytes() const;
    /// One NHWC ofmap row: ofmap_w * c_out bytes (N for matmul rows).
    [[nodiscard]] Bytes ofmap_row_bytes() const;
    /// Spatial ifmap rows (M for matmul).
    [[nodiscard]] int ifmap_rows() const;
    /// Spatial ofmap rows (M for matmul).
    [[nodiscard]] int ofmap_rows() const;

    /// Validates the descriptor, throwing Seda_error on inconsistency.
    void validate() const;

    [[nodiscard]] bool is_compute() const
    {
        return kind == Layer_kind::conv || kind == Layer_kind::dwconv ||
               kind == Layer_kind::matmul;
    }
};

/// A whole network: an ordered list of layers.  Layer i+1 consumes layer i's
/// ofmap as its ifmap (the model zoo keeps shapes consistent).
struct Model_desc {
    std::string name;
    std::vector<Layer_desc> layers;

    [[nodiscard]] Bytes total_weight_bytes() const;
    [[nodiscard]] u64 total_macs() const;
};

}  // namespace seda::accel
