#include "accel/layer.h"

namespace seda::accel {

Layer_desc Layer_desc::make_conv(std::string name, int ih, int iw, int cin, int fh, int fw,
                                 int cout, int stride)
{
    Layer_desc l;
    l.name = std::move(name);
    l.kind = Layer_kind::conv;
    l.ifmap_h = ih;
    l.ifmap_w = iw;
    l.c_in = cin;
    l.filt_h = fh;
    l.filt_w = fw;
    l.c_out = cout;
    l.stride = stride;
    l.validate();
    return l;
}

Layer_desc Layer_desc::make_dwconv(std::string name, int ih, int iw, int c, int fh, int fw,
                                   int stride)
{
    Layer_desc l;
    l.name = std::move(name);
    l.kind = Layer_kind::dwconv;
    l.ifmap_h = ih;
    l.ifmap_w = iw;
    l.c_in = c;
    l.filt_h = fh;
    l.filt_w = fw;
    l.c_out = c;
    l.stride = stride;
    l.validate();
    return l;
}

Layer_desc Layer_desc::make_fc(std::string name, int in_features, int out_features)
{
    return make_matmul(std::move(name), 1, in_features, out_features);
}

Layer_desc Layer_desc::make_matmul(std::string name, int m, int k, int n)
{
    Layer_desc l;
    l.name = std::move(name);
    l.kind = Layer_kind::matmul;
    l.gemm_m = m;
    l.gemm_k = k;
    l.gemm_n = n;
    l.validate();
    return l;
}

Layer_desc Layer_desc::make_pool(std::string name, int ih, int iw, int c, int window,
                                 int stride)
{
    Layer_desc l;
    l.name = std::move(name);
    l.kind = Layer_kind::pool;
    l.ifmap_h = ih;
    l.ifmap_w = iw;
    l.c_in = c;
    l.c_out = c;
    l.filt_h = window;
    l.filt_w = window;
    l.stride = stride;
    l.validate();
    return l;
}

Layer_desc Layer_desc::make_embedding(std::string name, int rows, int dim, int lookups)
{
    Layer_desc l;
    l.name = std::move(name);
    l.kind = Layer_kind::embedding;
    l.emb_rows = rows;
    l.emb_dim = dim;
    l.emb_lookups = lookups;
    l.validate();
    return l;
}

int Layer_desc::ofmap_h() const
{
    switch (kind) {
        case Layer_kind::matmul: return gemm_m;
        case Layer_kind::embedding: return emb_lookups;
        default: return (ifmap_h - filt_h) / stride + 1;
    }
}

int Layer_desc::ofmap_w() const
{
    switch (kind) {
        case Layer_kind::matmul: return 1;
        case Layer_kind::embedding: return 1;
        default: return (ifmap_w - filt_w) / stride + 1;
    }
}

int Layer_desc::out_channels() const
{
    switch (kind) {
        case Layer_kind::matmul: return gemm_n;
        case Layer_kind::embedding: return emb_dim;
        default: return c_out;
    }
}

u64 Layer_desc::gemm_m_dim() const
{
    switch (kind) {
        case Layer_kind::conv:
        case Layer_kind::dwconv:
            return static_cast<u64>(ofmap_h()) * static_cast<u64>(ofmap_w());
        case Layer_kind::matmul: return static_cast<u64>(gemm_m);
        default: return 0;
    }
}

u64 Layer_desc::gemm_k_dim() const
{
    switch (kind) {
        case Layer_kind::conv:
            return static_cast<u64>(filt_h) * static_cast<u64>(filt_w) * static_cast<u64>(c_in);
        case Layer_kind::dwconv:
            return static_cast<u64>(filt_h) * static_cast<u64>(filt_w);
        case Layer_kind::matmul: return static_cast<u64>(gemm_k);
        default: return 0;
    }
}

u64 Layer_desc::gemm_n_dim() const
{
    switch (kind) {
        case Layer_kind::conv: return static_cast<u64>(c_out);
        case Layer_kind::dwconv: return static_cast<u64>(c_in);
        case Layer_kind::matmul: return static_cast<u64>(gemm_n);
        default: return 0;
    }
}

Bytes Layer_desc::ifmap_bytes() const
{
    switch (kind) {
        case Layer_kind::matmul:
            return static_cast<Bytes>(gemm_m) * static_cast<Bytes>(gemm_k) * k_elem_bytes;
        case Layer_kind::embedding:
            // The gathered indices; 4 bytes each.
            return static_cast<Bytes>(emb_lookups) * 4;
        default:
            return static_cast<Bytes>(ifmap_h) * static_cast<Bytes>(ifmap_w) *
                   static_cast<Bytes>(c_in) * k_elem_bytes;
    }
}

Bytes Layer_desc::weight_bytes() const
{
    switch (kind) {
        case Layer_kind::conv:
            return static_cast<Bytes>(filt_h) * static_cast<Bytes>(filt_w) *
                   static_cast<Bytes>(c_in) * static_cast<Bytes>(c_out) * k_elem_bytes;
        case Layer_kind::dwconv:
            return static_cast<Bytes>(filt_h) * static_cast<Bytes>(filt_w) *
                   static_cast<Bytes>(c_in) * k_elem_bytes;
        case Layer_kind::matmul:
            return static_cast<Bytes>(gemm_k) * static_cast<Bytes>(gemm_n) * k_elem_bytes;
        case Layer_kind::embedding:
            return static_cast<Bytes>(emb_rows) * static_cast<Bytes>(emb_dim) * k_elem_bytes;
        default: return 0;  // pooling has no parameters
    }
}

Bytes Layer_desc::ofmap_bytes() const
{
    switch (kind) {
        case Layer_kind::embedding:
            return static_cast<Bytes>(emb_lookups) * static_cast<Bytes>(emb_dim) * k_elem_bytes;
        default:
            return static_cast<Bytes>(ofmap_h()) * static_cast<Bytes>(ofmap_w()) *
                   static_cast<Bytes>(out_channels()) * k_elem_bytes;
    }
}

Bytes Layer_desc::ifmap_row_bytes() const
{
    switch (kind) {
        case Layer_kind::matmul: return static_cast<Bytes>(gemm_k) * k_elem_bytes;
        case Layer_kind::embedding: return static_cast<Bytes>(emb_dim) * k_elem_bytes;
        default:
            return static_cast<Bytes>(ifmap_w) * static_cast<Bytes>(c_in) * k_elem_bytes;
    }
}

Bytes Layer_desc::ofmap_row_bytes() const
{
    switch (kind) {
        case Layer_kind::matmul: return static_cast<Bytes>(gemm_n) * k_elem_bytes;
        case Layer_kind::embedding: return static_cast<Bytes>(emb_dim) * k_elem_bytes;
        default:
            return static_cast<Bytes>(ofmap_w()) * static_cast<Bytes>(out_channels()) *
                   k_elem_bytes;
    }
}

int Layer_desc::ifmap_rows() const
{
    switch (kind) {
        case Layer_kind::matmul: return gemm_m;
        case Layer_kind::embedding: return emb_lookups;
        default: return ifmap_h;
    }
}

int Layer_desc::ofmap_rows() const
{
    switch (kind) {
        case Layer_kind::matmul: return gemm_m;
        case Layer_kind::embedding: return emb_lookups;
        default: return ofmap_h();
    }
}

void Layer_desc::validate() const
{
    require(!name.empty(), "Layer_desc: name must not be empty");
    switch (kind) {
        case Layer_kind::conv:
        case Layer_kind::dwconv:
        case Layer_kind::pool:
            require(ifmap_h > 0 && ifmap_w > 0 && c_in > 0, name + ": bad ifmap dims");
            require(filt_h > 0 && filt_w > 0, name + ": bad filter dims");
            require(stride > 0, name + ": bad stride");
            require(ifmap_h >= filt_h && ifmap_w >= filt_w,
                    name + ": filter larger than (padded) ifmap");
            require((ifmap_h - filt_h) % stride == 0 && (ifmap_w - filt_w) % stride == 0,
                    name + ": ifmap dims not compatible with stride (adjust padding)");
            if (kind != Layer_kind::pool)
                require(c_out > 0, name + ": bad output channels");
            if (kind == Layer_kind::dwconv)
                require(c_out == c_in, name + ": depthwise requires c_out == c_in");
            break;
        case Layer_kind::matmul:
            require(gemm_m > 0 && gemm_k > 0 && gemm_n > 0, name + ": bad GEMM dims");
            break;
        case Layer_kind::embedding:
            require(emb_rows > 0 && emb_dim > 0 && emb_lookups > 0,
                    name + ": bad embedding dims");
            break;
    }
}

Bytes Model_desc::total_weight_bytes() const
{
    Bytes t = 0;
    for (const auto& l : layers) t += l.weight_bytes();
    return t;
}

u64 Model_desc::total_macs() const
{
    u64 t = 0;
    for (const auto& l : layers) t += l.macs();
    return t;
}

}  // namespace seda::accel
