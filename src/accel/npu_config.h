// NPU configurations (paper Table II) and clock-domain conversion helpers.
#pragma once

#include <string>

#include "common/error.h"
#include "common/types.h"
#include "common/units.h"
#include "dram/dram_config.h"

namespace seda::accel {

enum class Dataflow { weight_stationary, output_stationary };

struct Npu_config {
    std::string name;
    int array_rows = 0;
    int array_cols = 0;
    double freq_ghz = 1.0;
    Bytes sram_bytes = 0;        ///< total on-chip SRAM for ifmap/wgt/ofmap
    double dram_bw_gbps = 0.0;   ///< aggregate off-chip bandwidth (decimal GB/s)
    int dram_channels = 4;
    Dataflow dataflow = Dataflow::weight_stationary;

    /// SRAM is split evenly across the three operands, each double-buffered,
    /// so the tiler sees one-sixth of the total per working tile.
    [[nodiscard]] Bytes ifmap_buf_bytes() const { return sram_bytes / 6; }
    [[nodiscard]] Bytes weight_buf_bytes() const { return sram_bytes / 6; }
    [[nodiscard]] Bytes ofmap_buf_bytes() const { return sram_bytes / 6; }

    /// Peak DRAM bytes per *NPU* cycle given the configured link bandwidth.
    [[nodiscard]] double link_bytes_per_npu_cycle() const
    {
        return gb_per_s(dram_bw_gbps) / (freq_ghz * 1e9);
    }

    /// Memory-controller clock (Hz) at which the DDR model's peak equals the
    /// configured aggregate bandwidth: channels move burst_bytes per t_bl.
    [[nodiscard]] double controller_hz(const dram::Dram_config& d) const
    {
        const double peak_bytes_per_ctrl_cycle =
            d.channels * d.peak_bytes_per_cycle_per_channel();
        return gb_per_s(dram_bw_gbps) / peak_bytes_per_ctrl_cycle;
    }

    /// Converts memory-controller cycles into NPU cycles.
    [[nodiscard]] double ctrl_to_npu_cycles(double ctrl_cycles,
                                            const dram::Dram_config& d) const
    {
        return ctrl_cycles * (freq_ghz * 1e9) / controller_hz(d);
    }

    void validate() const
    {
        require(array_rows > 0 && array_cols > 0, "Npu_config: bad array dims");
        require(freq_ghz > 0, "Npu_config: bad frequency");
        require(sram_bytes >= 6, "Npu_config: SRAM too small");
        require(dram_bw_gbps > 0, "Npu_config: bad bandwidth");
        require(dram_channels > 0, "Npu_config: bad channel count");
    }

    /// Server NPU modeled after Google TPU v1 (Table II).
    [[nodiscard]] static Npu_config server()
    {
        Npu_config c;
        c.name = "server-tpu-v1";
        c.array_rows = 256;
        c.array_cols = 256;
        c.freq_ghz = 1.0;
        c.sram_bytes = 24_MiB;
        c.dram_bw_gbps = 20.0;
        c.dram_channels = 4;
        return c;
    }

    /// Edge NPU modeled after Samsung Exynos 990 (Table II).
    [[nodiscard]] static Npu_config edge()
    {
        Npu_config c;
        c.name = "edge-exynos-990";
        c.array_rows = 32;
        c.array_cols = 32;
        c.freq_ghz = 2.75;
        c.sram_bytes = 480 * 1024;
        c.dram_bw_gbps = 10.0;
        c.dram_channels = 4;
        return c;
    }

    /// DDR device description matching this NPU's channel count.
    [[nodiscard]] dram::Dram_config dram_config() const
    {
        dram::Dram_config d;
        d.channels = dram_channels;
        return d;
    }
};

}  // namespace seda::accel
