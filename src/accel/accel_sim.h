// The cycle-level DNN accelerator simulator (SCALE-Sim-class substrate).
//
// For every layer it produces (a) the systolic-array compute cycles and
// (b) the ordered DRAM access trace: weight tiles, ifmap slabs including
// halo re-reads, and ofmap stripes, laid out by accel/memory_map.h.  The
// protection schemes then rewrite the trace, and dram::Dram_sim prices it.
#pragma once

#include <memory>
#include <vector>

#include "accel/layer.h"
#include "accel/memory_map.h"
#include "accel/npu_config.h"
#include "accel/systolic.h"
#include "accel/tiler.h"
#include "accel/trace.h"

namespace seda::accel {

struct Layer_sim {
    const Layer_desc* layer = nullptr;
    u32 layer_id = 0;
    Compute_result compute;
    Tiling_plan plan;
    Layer_trace trace;           ///< data accesses only (no security metadata)
    Addr ifmap_base = 0;
    Addr ofmap_base = 0;
    Addr weight_base = 0;
    Bytes read_bytes = 0;        ///< block-granular DRAM read volume
    Bytes write_bytes = 0;       ///< block-granular DRAM write volume
};

struct Model_sim {
    /// The simulated model, owned on the heap so Layer_sim::layer pointers
    /// stay valid across copies/moves of this struct.
    std::shared_ptr<const Model_desc> model;
    Npu_config npu;
    Memory_map map;
    std::vector<Layer_sim> layers;

    [[nodiscard]] Cycles total_compute_cycles() const
    {
        Cycles t = 0;
        for (const auto& l : layers) t += l.compute.cycles;
        return t;
    }
    [[nodiscard]] Bytes total_traffic_bytes() const
    {
        Bytes t = 0;
        for (const auto& l : layers) t += l.read_bytes + l.write_bytes;
        return t;
    }
};

/// Runs the trace-generation phase of the simulator for a whole model.
/// The model is taken by value and owned by the returned Model_sim.
[[nodiscard]] Model_sim simulate_model(Model_desc model, const Npu_config& npu);

}  // namespace seda::accel
