// Tile-shape selection under the SRAM double-buffering budget.
//
// Layers execute as row-major output tiles: the m-loop walks output-row
// tiles, the inner n-loop walks output-channel (weight) tiles.  An ofmap row
// stripe stays in the output buffer across the n-loop and is written once.
// Consecutive row tiles of a convolution share (filt_h - stride) ifmap rows
// -- the intra-layer tiling overlap of Fig. 3(b); those halo rows are
// re-fetched from DRAM, which is exactly the redundancy SeDA's optBlk search
// must cope with (re-decryption and re-verification of overlap blocks).
#pragma once

#include "accel/layer.h"
#include "accel/npu_config.h"

namespace seda::accel {

struct Tiling_plan {
    int t_oh = 0;              ///< output rows per row tile
    int m_tiles = 1;           ///< number of row tiles
    int t_n = 0;               ///< output channels per weight tile
    int n_tiles = 1;           ///< number of weight tiles
    int k_tiles = 1;           ///< K splits (partial-sum spill); 1 normally
    bool weights_resident = false;  ///< whole weight tensor fits on-chip
    /// Loop order: false = row tiles outer (weights re-streamed per row
    /// tile when not resident); true = weight tiles outer (ifmap re-read
    /// per weight tile, output stored tile-major).  The tiler picks
    /// whichever re-fetches fewer bytes; only matmuls ever choose n-outer.
    bool n_outer = false;
    int ifmap_tile_rows = 0;   ///< ifmap rows an interior row tile consumes
    int halo_rows = 0;         ///< ifmap rows shared with the next row tile
    Bytes ifmap_row_bytes = 0;
    Bytes ofmap_row_bytes = 0;

    /// DRAM bytes the halo re-reads add on top of reading the ifmap once.
    [[nodiscard]] Bytes halo_refetch_bytes() const
    {
        if (m_tiles <= 1 || halo_rows <= 0) return 0;
        return static_cast<Bytes>(m_tiles - 1) * static_cast<Bytes>(halo_rows) *
               ifmap_row_bytes;
    }
};

/// Chooses the tiling for a compute or pool layer on the given NPU.
/// Embedding layers do not tile (gather-dominated); callers skip them.
[[nodiscard]] Tiling_plan plan_tiling(const Layer_desc& layer, const Npu_config& npu);

}  // namespace seda::accel
