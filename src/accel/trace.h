// Compressed DRAM access traces.
//
// The accelerator touches memory in long contiguous stripes (NHWC row
// ranges, packed weight tiles), so traces are stored as byte ranges rather
// than per-block entries; the protection schemes and the DRAM model expand
// them to 64 B blocks on the fly.  Halo re-reads appear naturally as ranges
// that overlap ranges of earlier tiles.
#pragma once

#include <vector>

#include "common/bitutil.h"
#include "common/types.h"

namespace seda::accel {

enum class Tensor_kind : u8 { weight = 0, ifmap = 1, ofmap = 2 };

struct Access_range {
    Addr begin = 0;       ///< first byte
    Bytes length = 0;     ///< bytes touched (need not be block aligned)
    bool is_write = false;
    Tensor_kind tensor = Tensor_kind::ifmap;
    u32 tile_idx = 0;     ///< which tile of the layer issued this range

    [[nodiscard]] Addr first_block() const { return align_down(begin, k_block_bytes); }
    [[nodiscard]] Addr end_block() const { return align_up(begin + length, k_block_bytes); }
    [[nodiscard]] u64 block_count() const
    {
        return (end_block() - first_block()) / k_block_bytes;
    }
};

using Layer_trace = std::vector<Access_range>;

/// Calls fn(block_addr) for every 64 B block a range covers.
template <typename Fn>
void for_each_block(const Access_range& r, Fn&& fn)
{
    for (Addr a = r.first_block(); a < r.end_block(); a += k_block_bytes) fn(a);
}

/// Total block-granular bytes a trace moves (the DRAM-visible volume).
[[nodiscard]] inline Bytes trace_block_bytes(const Layer_trace& t)
{
    Bytes b = 0;
    for (const auto& r : t) b += r.block_count() * k_block_bytes;
    return b;
}

}  // namespace seda::accel
