#include "accel/report.h"

#include <ostream>
#include <sstream>

#include "common/table.h"

namespace seda::accel {

namespace {

const char* kind_name(Layer_kind k)
{
    switch (k) {
        case Layer_kind::conv: return "conv";
        case Layer_kind::dwconv: return "dwconv";
        case Layer_kind::matmul: return "matmul";
        case Layer_kind::pool: return "pool";
        case Layer_kind::embedding: return "embedding";
    }
    return "?";
}

}  // namespace

void write_compute_report(const Model_sim& sim, std::ostream& os)
{
    Ascii_table t({"layer", "kind", "M", "K", "N", "folds", "compute_cycles",
                   "utilization"});
    for (const auto& l : sim.layers) {
        t.add_row({l.layer->name, kind_name(l.layer->kind),
                   std::to_string(l.layer->gemm_m_dim()),
                   std::to_string(l.layer->gemm_k_dim()),
                   std::to_string(l.layer->gemm_n_dim()),
                   std::to_string(l.compute.folds), std::to_string(l.compute.cycles),
                   fmt_f(l.compute.utilization, 4)});
    }
    t.print_csv(os);
}

void write_memory_report(const Model_sim& sim, std::ostream& os)
{
    Ascii_table t({"layer", "ifmap_bytes", "weight_bytes", "ofmap_bytes",
                   "dram_read_bytes", "dram_write_bytes", "halo_refetch_bytes",
                   "weight_refetch_x"});
    for (const auto& l : sim.layers) {
        const Bytes weight = l.layer->weight_bytes();
        Bytes weight_read = 0;
        for (const auto& r : l.trace)
            if (!r.is_write && r.tensor == Tensor_kind::weight) weight_read += r.length;
        const double refetch =
            weight == 0 ? 0.0
                        : static_cast<double>(weight_read) / static_cast<double>(weight);
        t.add_row({l.layer->name, std::to_string(l.layer->ifmap_bytes()),
                   std::to_string(weight), std::to_string(l.layer->ofmap_bytes()),
                   std::to_string(l.read_bytes), std::to_string(l.write_bytes),
                   std::to_string(l.plan.halo_refetch_bytes()), fmt_f(refetch, 2)});
    }
    t.print_csv(os);
}

std::string reports_to_string(const Model_sim& sim)
{
    std::ostringstream ss;
    ss << "# compute report: " << (sim.model ? sim.model->name : "?") << " on "
       << sim.npu.name << "\n";
    write_compute_report(sim, ss);
    ss << "# memory report\n";
    write_memory_report(sim, ss);
    return ss.str();
}

}  // namespace seda::accel
