#include "accel/tiler.h"

#include <algorithm>

namespace seda::accel {

Tiling_plan plan_tiling(const Layer_desc& layer, const Npu_config& npu)
{
    require(layer.kind != Layer_kind::embedding, "plan_tiling: embedding layers do not tile");
    npu.validate();

    Tiling_plan p;
    p.ifmap_row_bytes = layer.ifmap_row_bytes();
    p.ofmap_row_bytes = layer.ofmap_row_bytes();

    const bool spatial = layer.kind != Layer_kind::matmul;
    const int fh = spatial ? layer.filt_h : 1;
    const int stride = spatial ? layer.stride : 1;
    const int oh = layer.ofmap_rows();
    p.halo_rows = std::max(0, fh - stride);

    // --- output-row tile height ------------------------------------------
    // Largest t_oh whose ifmap slab and full-channel ofmap stripe both fit
    // their (double-buffered) SRAM halves.
    const auto ifmap_rows_for = [&](int t_oh) { return (t_oh - 1) * stride + fh; };
    int t_oh = 1;
    for (int cand = oh; cand >= 1; --cand) {
        const Bytes ifmap_need =
            static_cast<Bytes>(ifmap_rows_for(cand)) * p.ifmap_row_bytes;
        const Bytes ofmap_need = static_cast<Bytes>(cand) * p.ofmap_row_bytes;
        if (ifmap_need <= npu.ifmap_buf_bytes() && ofmap_need <= npu.ofmap_buf_bytes()) {
            t_oh = cand;
            break;
        }
    }
    // Even a single output row can exceed the buffer on tiny edge NPUs; the
    // datapath then streams the slab, which costs the same DRAM traffic, so
    // t_oh = 1 remains a valid (worst-case) plan.
    p.t_oh = t_oh;
    p.m_tiles = static_cast<int>(ceil_div(static_cast<u64>(oh), static_cast<u64>(t_oh)));
    p.ifmap_tile_rows = std::min(layer.ifmap_rows(), ifmap_rows_for(t_oh));

    // --- weight tile width -------------------------------------------------
    const u64 n = layer.gemm_n_dim();
    const Bytes per_out_channel =
        n > 0 ? layer.weight_bytes() / n : layer.weight_bytes();
    if (layer.weight_bytes() == 0) {  // pooling: no weights
        p.t_n = static_cast<int>(n == 0 ? 1 : n);
        p.n_tiles = 1;
        p.weights_resident = true;
    } else if (per_out_channel > npu.weight_buf_bytes()) {
        // One output channel's weights exceed the buffer: split K and spill
        // partial sums (only pathological FC layers reach this).
        p.t_n = 1;
        p.n_tiles = static_cast<int>(n);
        p.k_tiles = static_cast<int>(
            ceil_div(per_out_channel, npu.weight_buf_bytes()));
        p.weights_resident = false;
    } else {
        const u64 fit = npu.weight_buf_bytes() / per_out_channel;
        p.t_n = static_cast<int>(std::min<u64>(n, std::max<u64>(1, fit)));
        p.n_tiles = static_cast<int>(ceil_div(n, static_cast<u64>(p.t_n)));
        p.weights_resident = layer.weight_bytes() <= npu.weight_buf_bytes();
    }

    // --- loop order ---------------------------------------------------------
    // m-outer re-streams non-resident weights once per row tile; n-outer
    // re-reads the ifmap once per weight tile.  Matmuls with huge weight
    // tensors (vocabulary projections, big FC stacks) strongly prefer
    // n-outer; convolutions keep the halo-friendly m-outer order.
    if (layer.kind == Layer_kind::matmul && !p.weights_resident && p.m_tiles > 1) {
        const Bytes m_outer_refetch =
            layer.weight_bytes() * static_cast<Bytes>(p.m_tiles - 1);
        const Bytes n_outer_refetch =
            layer.ifmap_bytes() * static_cast<Bytes>(p.n_tiles - 1);
        p.n_outer = n_outer_refetch < m_outer_refetch;
    }
    return p;
}

}  // namespace seda::accel
