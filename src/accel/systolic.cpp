#include "accel/systolic.h"

namespace seda::accel {

Compute_result systolic_compute(const Layer_desc& layer, const Npu_config& npu)
{
    Compute_result r;
    const u64 rows = static_cast<u64>(npu.array_rows);
    const u64 cols = static_cast<u64>(npu.array_cols);

    if (!layer.is_compute()) {
        // Pool / embedding run on the vector unit / DMA engine: one output
        // element per lane per cycle across the array's column width.
        const u64 elems = layer.ofmap_bytes() / k_elem_bytes;
        r.cycles = ceil_div(elems, cols);
        r.folds = 0;
        r.utilization = 0.0;
        return r;
    }

    const u64 m = layer.gemm_m_dim();
    const u64 k = layer.gemm_k_dim();
    const u64 n = layer.gemm_n_dim();

    u64 folds = 0;
    u64 per_fold = 0;
    if (npu.dataflow == Dataflow::weight_stationary) {
        folds = ceil_div(k, rows) * ceil_div(n, cols);
        per_fold = m + 2 * rows + cols - 2;
    } else {
        folds = ceil_div(m, rows) * ceil_div(n, cols);
        per_fold = k + 2 * rows + cols - 2;
    }

    r.folds = folds;
    r.cycles = folds * per_fold;
    r.utilization = static_cast<double>(layer.macs()) /
                    (static_cast<double>(r.cycles) * static_cast<double>(rows) *
                     static_cast<double>(cols));
    return r;
}

}  // namespace seda::accel
