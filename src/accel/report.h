// SCALE-Sim-style per-layer reports (compute + memory), CSV-formatted.
//
// SCALE-Sim users consume two artifacts per run: a compute report (cycles,
// utilization, folds per layer) and a bandwidth/traffic report (per-tensor
// DRAM volumes).  The same views, generated from a Model_sim, make this
// simulator's results comparable to the original tool's output files.
#pragma once

#include <iosfwd>
#include <string>

#include "accel/accel_sim.h"

namespace seda::accel {

/// layer, kind, M, K, N, folds, compute_cycles, utilization
void write_compute_report(const Model_sim& sim, std::ostream& os);

/// layer, ifmap/weight/ofmap logical bytes, DRAM read/write bytes,
/// halo-refetch bytes, weight-refetch factor
void write_memory_report(const Model_sim& sim, std::ostream& os);

/// Both reports as one string (convenience for examples/tools).
[[nodiscard]] std::string reports_to_string(const Model_sim& sim);

}  // namespace seda::accel
