#include "infer/inference_engine.h"

#include "common/error.h"
#include "common/rng.h"
#include "obs/stage.h"

namespace seda::infer {

Inference_engine::Inference_engine(const Model_binding& binding, Engine_config cfg)
    : binding_(binding), cfg_(cfg), player_(binding, cfg.max_batch_units)
{
    const auto& layers = binding_.sim().layers;
    stats_.layers.resize(layers.size());
    for (std::size_t i = 0; i < layers.size(); ++i)
        stats_.layers[i].name = layers[i].layer->name;
}

void Inference_engine::fill_payload(Addr addr, std::span<u8> out) const
{
    // Deterministic per (seed, epoch, unit): collision-free enough for the
    // mirror check, reproducible at any worker count or replay path.
    u64 state = cfg_.seed ^ (epoch_ * 0x9E3779B97F4A7C15ULL) ^ addr;
    u64 word = 0;
    for (std::size_t i = 0; i < out.size(); ++i) {
        if (i % 8 == 0) word = splitmix64(state);
        out[i] = static_cast<u8>(word >> ((i % 8) * 8));
    }
}

void Inference_engine::load(Unit_sink& sink)
{
    require(!loaded_, "Inference_engine: load() may only be called once");
    obs::Stage_span span(obs::Stage::infer_load);
    const auto fresh = [this](Addr a, std::span<u8> out) { fill_payload(a, out); };
    player_.stage_units(binding_.weight_load_units(), sink, mirror_, fresh, stats_.load);
    player_.stage_units(binding_.act_prefill_units(), sink, mirror_, fresh, stats_.load);
    loaded_ = true;
}

void Inference_engine::infer(Unit_sink& sink)
{
    require(loaded_, "Inference_engine: infer() requires load()");
    const auto fresh = [this](Addr a, std::span<u8> out) { fill_payload(a, out); };

    // Fresh model input over layer 0's ifmap units -- the per-inference
    // write phase (and the VN bumps that make replay detection meaningful).
    ++epoch_;
    require(!stats_.layers.empty(), "Inference_engine: model has no layers");
    {
        obs::Stage_span span(obs::Stage::infer_input);
        player_.stage_units(binding_.input_units(), sink, mirror_, fresh,
                            stats_.layers.front().ifmap);
    }

    const auto& layers = binding_.sim().layers;
    for (std::size_t i = 0; i < layers.size(); ++i) {
        ++epoch_;  // ofmap/spill payloads of this layer differ per pass
        player_.play_layer(layers[i], sink, mirror_, fresh, stats_.layers[i]);
    }
    ++stats_.inferences;
}

}  // namespace seda::infer
