// Model_binding: a DNN model's off-chip footprint bound onto protected
// units of one tenant's Secure_memory.
//
// The accelerator simulator (accel/accel_sim.h) lays a model out with
// accel::Memory_map -- per-layer weight regions from address 0, two
// ping-pong activation regions -- and emits per-layer compressed access
// traces over that layout.  This class is the join point between that
// address space and the secure data path: every 64 B trace block becomes
// one protection unit, and the MAC context each unit binds (Alg. 2's
// layer/fmap/blk fields) is a PURE FUNCTION OF THE ADDRESS, so the
// producer of a block (layer i's ofmap write-back, or the weight loader)
// and every later consumer (layer i+1's ifmap reads, halo re-reads,
// weight re-streams) agree on the context without any side channel.
//
// Binding convention (documented because tests and the engine both rely
// on it):
//   weight unit k of layer L  ->  layer_id = L,              fmap_idx = 0
//   activation unit k, region r -> layer_id = 0x8000'0000|r, fmap_idx = 1
//   blk_idx = k (the unit's index within its region) in both cases.
//
// The binding also precomputes the three touched-unit working sets the
// engine's lifecycle needs -- DLRM-class models make this mandatory: their
// embedding tables span hundreds of MB of which a trace gathers only a few
// thousand rows, so "load the weights" must mean the union of weight
// blocks the traces actually read, not the whole region.
#pragma once

#include <span>
#include <vector>

#include "accel/accel_sim.h"
#include "common/types.h"

namespace seda::infer {

class Model_binding {
public:
    /// One protection unit = one 64 B trace block (k_block_bytes).
    static constexpr Bytes k_unit_bytes = k_block_bytes;

    /// Runs trace generation for (model, npu) and indexes the result.
    Model_binding(accel::Model_desc model, const accel::Npu_config& npu);
    /// Indexes an already-simulated model (shares the trace with callers).
    explicit Model_binding(accel::Model_sim sim);

    [[nodiscard]] const accel::Model_sim& sim() const { return sim_; }

    enum class Region : u8 { weight, act0, act1 };

    /// The MAC context fields a protected op on `unit_addr` binds.
    struct Unit_context {
        u32 layer_id = 0;
        u32 fmap_idx = 0;
        u32 blk_idx = 0;
    };

    /// Which region a unit-aligned address lives in; throws Seda_error for
    /// an address outside every bound region (a trace/layout bug).
    [[nodiscard]] Region classify(Addr unit_addr) const;

    /// The address-derived context (see the binding convention above).
    [[nodiscard]] Unit_context context(Addr unit_addr) const;

    /// Sorted, unique weight-region units any layer trace reads: the
    /// model-load working set ("weights written once at model load").
    [[nodiscard]] std::span<const Addr> weight_load_units() const
    {
        return weight_load_units_;
    }

    /// Sorted, unique activation-region units any layer trace reads.
    /// Pre-filling these at load guarantees no replayed read ever hits a
    /// never-written unit (padded ifmap rows and graph seams are host
    /// DMA-filled in a real system).
    [[nodiscard]] std::span<const Addr> act_prefill_units() const
    {
        return act_prefill_units_;
    }

    /// Sorted, unique units layer 0 reads as its ifmap: the model INPUT,
    /// rewritten with fresh payload before every inference.
    [[nodiscard]] std::span<const Addr> input_units() const { return input_units_; }

private:
    void index();

    accel::Model_sim sim_;
    Addr weight_region_end_ = 0;        ///< block-aligned end of the last weight region
    std::vector<Addr> weight_load_units_;
    std::vector<Addr> act_prefill_units_;
    std::vector<Addr> input_units_;
};

}  // namespace seda::infer
