// Trace_player: expands a layer's compressed DRAM trace into protected-unit
// batches and replays them through a Unit_sink in trace order.
//
// The accelerator touches memory in long contiguous stripes; the secure
// data path works in 64 B protection units.  The player is the adapter:
//
//   * ranges expand with the same arithmetic as accel::for_each_block
//     (tests/infer/ holds the equivalence on ragged, misaligned and
//     overlapping ranges), preserving trace order INCLUDING duplicates --
//     a halo re-read shows up as the same unit twice in one read batch,
//     and a psum spill as write/read flips over one stripe;
//   * consecutive same-direction ranges coalesce into one bulk dispatch;
//     a direction flip flushes (read-your-writes: the write batch holding
//     a unit completes before any read of it is issued), as does the
//     max_batch_units cap;
//   * every dispatched unit is accounted per tensor kind: status counts,
//     ok bytes, a payload XOR-fold, and mirror mismatches (the player
//     keeps the caller's write mirror current, last-write-wins, exactly
//     like stage_writes's supersede rule).
//
// Determinism: batches, counters and folds are a pure function of the
// trace and the payload function -- independent of the sink's worker
// count (the session and server transports are both bit-identical to
// serial I/O), which is what lets CI byte-diff `seda_cli infer --json`
// across --jobs values.
//
// Thread-safety: one player belongs to one engine/thread; the staging
// scratch is reused across layers (cleared, not freed).
#pragma once

#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "accel/accel_sim.h"
#include "core/secure_memory.h"
#include "infer/infer_stats.h"
#include "infer/model_binding.h"
#include "infer/unit_sink.h"

namespace seda::infer {

class Trace_player {
public:
    /// Default dispatch cap: bounds the staging scratch at 4096 units
    /// (256 KiB of payload) while keeping bulk calls deep enough to feed
    /// the multi-buffer crypto pipelines.
    static constexpr std::size_t k_default_max_batch_units = 4096;

    /// The engine's record of the last plaintext written per unit.
    using Mirror = std::unordered_map<Addr, std::vector<u8>>;

    /// Fills a fresh write payload for the unit at `addr`.
    using Payload_fn = std::function<void(Addr, std::span<u8>)>;

    explicit Trace_player(const Model_binding& binding,
                          std::size_t max_batch_units = k_default_max_batch_units);

    /// Replays one layer's trace through `sink`, accumulating into `stats`
    /// and keeping `mirror` current.  `fresh_payload` provides the bytes of
    /// every trace write (the "computed" ofmap / spilled psums).
    void play_layer(const accel::Layer_sim& layer, Unit_sink& sink, Mirror& mirror,
                    const Payload_fn& fresh_payload, Layer_infer_stats& stats);

    /// Batched protected writes of an explicit unit list (model load /
    /// input staging), accounted into `counters` and mirrored.
    void stage_units(std::span<const Addr> addrs, Unit_sink& sink, Mirror& mirror,
                     const Payload_fn& fresh_payload, Unit_counters& counters);

    /// Appends every unit `r` covers, in trace order -- the protection-unit
    /// view of accel::for_each_block, exposed for the equivalence tests.
    static void expand_range(const accel::Access_range& r, std::vector<Addr>& out);

private:
    void flush(Unit_sink& sink, Mirror& mirror, const Payload_fn& fresh_payload,
               Layer_infer_stats& stats);
    void dispatch_writes(Unit_sink& sink, Mirror& mirror, const Payload_fn& fresh_payload,
                         std::span<Unit_counters* const> per_unit);
    void dispatch_reads(Unit_sink& sink, const Mirror& mirror,
                        std::span<Unit_counters* const> per_unit);
    void note_failure(std::size_t i);  ///< flight-recorder detect for reads_[i]

    const Model_binding& binding_;
    std::size_t max_batch_units_;

    // Pending same-direction batch (cleared per flush, capacity kept).
    bool pending_is_write_ = false;
    std::vector<Addr> addrs_;
    std::vector<accel::Tensor_kind> kinds_;  ///< parallel to addrs_

    // Dispatch scratch.
    std::vector<Unit_counters*> counter_refs_;
    std::vector<u8> payload_buf_;
    std::vector<core::Secure_memory::Unit_write> writes_;
    std::vector<core::Secure_memory::Unit_read> reads_;
    std::vector<core::Verify_status> statuses_;
};

}  // namespace seda::infer
