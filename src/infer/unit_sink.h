// Unit_sink: where the inference engine's protected-unit batches go.
//
// The replay logic (Trace_player) is identical whether traffic runs
// straight into a tenant's sharded runtime::Secure_session or through the
// serve::Server front end as individual requests; only the transport
// differs.  Both transports promise SERIAL SEMANTICS for one producer:
// operations complete as if executed in submission order (the session path
// is literally ordered; the server path preserves per-producer FIFO
// through the admission queue and Batch_scheduler flushes on same-address
// write/read conflicts), which is exactly what trace replay needs for
// read-your-writes across ofmap write-backs and psum spills.
//
// Statuses are results, not errors (serve/request.h discipline): tampered
// or replayed units land in the per-unit Verify_status array and the
// replay keeps going -- that is what per-layer verification accounting
// counts.  Usage errors (misaligned address, wrong payload size, a read of
// a never-written unit) throw.
#pragma once

#include <future>
#include <span>
#include <vector>

#include "core/secure_memory.h"
#include "runtime/secure_session.h"
#include "serve/server.h"

namespace seda::infer {

class Unit_sink {
public:
    virtual ~Unit_sink() = default;

    /// Protected batch write in submission order.  Writes cannot fail
    /// verification; usage errors throw.
    virtual void write_units(std::span<const core::Secure_memory::Unit_write> batch) = 0;

    /// Protected batch read; one status per unit, `out` buffers filled for
    /// ok units only.  `statuses.size()` must equal `batch.size()`.
    virtual void read_units(std::span<const core::Secure_memory::Unit_read> batch,
                            std::span<core::Verify_status> statuses) = 0;
};

/// Direct transport: bulk calls into one tenant's sharded session (the
/// bench path, and the fast path for single-tenant replay).
class Session_sink final : public Unit_sink {
public:
    explicit Session_sink(runtime::Secure_session& session) : session_(session) {}

    void write_units(std::span<const core::Secure_memory::Unit_write> batch) override;
    void read_units(std::span<const core::Secure_memory::Unit_read> batch,
                    std::span<core::Verify_status> statuses) override;

private:
    runtime::Secure_session& session_;
};

/// Serving transport: every unit becomes one serve::Request submitted to
/// the multi-tenant front end, so DNN trace traffic exercises the
/// admission queue, the conflict-aware Batch_scheduler (halo re-reads and
/// psum write/read flips land in its pending windows), and the per-tenant
/// bulk crypto behind it.  One Server_sink is one producer: its submission
/// order is the trace order.
class Server_sink final : public Unit_sink {
public:
    Server_sink(serve::Server& server, u32 tenant_id)
        : server_(server), tenant_(tenant_id)
    {
    }

    void write_units(std::span<const core::Secure_memory::Unit_write> batch) override;
    void read_units(std::span<const core::Secure_memory::Unit_read> batch,
                    std::span<core::Verify_status> statuses) override;

private:
    serve::Server& server_;
    u32 tenant_;
    u64 seq_ = 0;  ///< per-producer sequence numbers for tracing
    std::vector<std::future<serve::Response>> futures_;  ///< reused per batch
};

}  // namespace seda::infer
