// Multi-tenant secure-inference driver: the closed loop behind
// `seda_cli infer` and the determinism contract CI byte-diffs.
//
// One run builds the model binding once, then gives every tenant its own
// engine (own seed, own mirror) over its own protected memory and replays
// `inferences` passes per tenant concurrently -- either straight into
// per-tenant Secure_sessions sharing one crypto pool (Replay_path::session,
// the throughput path) or through a serve::Server front end as request
// traffic (Replay_path::serve, the full-stack path).
//
// Determinism contract (what `--json` prints): per-tenant and merged
// Infer_stats are pure functions of (model, npu, seed, tenants,
// inferences) -- identical at any --jobs value AND across the two replay
// paths, because both transports are bit-identical to serial I/O and each
// tenant's stream is independent.  Wall-clock throughput is measured and
// reported separately (stderr), never part of the deterministic set.
#pragma once

#include <vector>

#include "accel/layer.h"
#include "accel/npu_config.h"
#include "infer/infer_stats.h"

namespace seda::infer {

enum class Replay_path : u8 { session, serve };

[[nodiscard]] constexpr const char* to_string(Replay_path p)
{
    switch (p) {
        case Replay_path::session: return "session";
        case Replay_path::serve: return "serve";
    }
    return "?";
}

struct Infer_config {
    std::size_t tenants = 1;
    std::size_t inferences = 1;     ///< per tenant (`--requests` on the CLI)
    std::size_t jobs = 1;           ///< crypto workers (0 = hardware)
    Replay_path path = Replay_path::serve;
    u64 seed = 0x5EDA;
    std::size_t max_batch_units = 4096;
    // serve-path knobs (Server_config passthrough).
    std::size_t queue_capacity = 1024;
    std::size_t max_batch = 256;
    std::size_t max_wait_us = 0;
};

struct Infer_result {
    std::vector<Infer_stats> per_tenant;  ///< indexed by tenant id
    Infer_stats merged;                   ///< layer-aligned sum over tenants
    u64 verification_failures = 0;        ///< mac_mismatch + replay over everything
    u64 data_mismatches = 0;              ///< ok reads that differed from the mirror
    double wall_seconds = 0.0;            ///< load + all inferences (timing-bound)

    /// Plaintext bytes moved through the protected path (load included).
    [[nodiscard]] Bytes protected_bytes() const
    {
        return merged.totals().bytes + merged.load.bytes;
    }

    [[nodiscard]] double mb_per_second() const
    {
        return wall_seconds > 0.0
                   ? static_cast<double>(protected_bytes()) / 1e6 / wall_seconds
                   : 0.0;
    }
};

/// Per-tenant engine seed: an injective SplitMix64 mix of (seed, tenant),
/// so no two tenants' payload streams collide.
[[nodiscard]] u64 tenant_seed(u64 seed, u32 tenant);

/// Runs the full loop: binding, per-tenant engines on their own threads,
/// load + `inferences` passes each, merge in tenant order.
[[nodiscard]] Infer_result run_infer(const accel::Model_desc& model,
                                     const accel::Npu_config& npu,
                                     const Infer_config& cfg);

}  // namespace seda::infer
