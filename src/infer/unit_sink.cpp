#include "infer/unit_sink.h"

#include <algorithm>
#include <utility>

#include "common/error.h"

namespace seda::infer {

void Session_sink::write_units(std::span<const core::Secure_memory::Unit_write> batch)
{
    session_.write_units(batch);
}

void Session_sink::read_units(std::span<const core::Secure_memory::Unit_read> batch,
                              std::span<core::Verify_status> statuses)
{
    require(statuses.size() == batch.size(),
            "Session_sink: status span must match batch");
    const auto result = session_.read_units(batch);
    std::copy(result.begin(), result.end(), statuses.begin());
}

void Server_sink::write_units(std::span<const core::Secure_memory::Unit_write> batch)
{
    futures_.clear();
    futures_.reserve(batch.size());
    for (const auto& w : batch) {
        serve::Request req;
        req.tenant_id = tenant_;
        req.seq = seq_++;
        req.op = serve::Op::write;
        req.addr = w.addr;
        req.payload.assign(w.plaintext.begin(), w.plaintext.end());
        req.layer_id = w.layer_id;
        req.fmap_idx = w.fmap_idx;
        req.blk_idx = w.blk_idx;
        futures_.push_back(server_.submit(std::move(req)));
    }
    // A write completes with ok or delivers its usage error here; either
    // way nothing is left in flight when the call returns.
    for (auto& f : futures_) {
        const serve::Response resp = f.get();
        require(resp.status == core::Verify_status::ok,
                "Server_sink: protected write failed verification");
    }
}

void Server_sink::read_units(std::span<const core::Secure_memory::Unit_read> batch,
                             std::span<core::Verify_status> statuses)
{
    require(statuses.size() == batch.size(), "Server_sink: status span must match batch");
    futures_.clear();
    futures_.reserve(batch.size());
    for (const auto& r : batch) {
        serve::Request req;
        req.tenant_id = tenant_;
        req.seq = seq_++;
        req.op = serve::Op::read;
        req.addr = r.addr;
        req.layer_id = r.layer_id;
        req.fmap_idx = r.fmap_idx;
        req.blk_idx = r.blk_idx;
        futures_.push_back(server_.submit(std::move(req)));
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
        serve::Response resp = futures_[i].get();
        statuses[i] = resp.status;
        if (resp.status != core::Verify_status::ok) continue;
        require(resp.payload.size() == batch[i].out.size(),
                "Server_sink: response payload is not one unit");
        std::copy(resp.payload.begin(), resp.payload.end(), batch[i].out.begin());
    }
}

}  // namespace seda::infer
