// Inference_engine: the load/infer/verify lifecycle of one model on one
// tenant's protected memory.
//
// Lifecycle (mirrors how a secure accelerator deployment actually moves
// data, Sec. IV-A's serving shape):
//
//   load(sink)   - once: writes the weight working set (every weight unit
//                  the traces read -- DLRM's multi-hundred-MB tables load
//                  only their gathered rows) and pre-fills the activation
//                  units any layer reads, so padded rows and graph seams
//                  never surface as never-written units.
//   infer(sink)  - per request: stages fresh model input over layer 0's
//                  ifmap units, then replays every layer's trace in order
//                  -- weight re-streams, ifmap slabs with halo re-reads,
//                  psum spills, ofmap write-backs -- as protected traffic.
//   stats()      - per-layer, per-tensor-kind verification accounting
//                  (infer_stats.h); failures() aggregates the acceptance
//                  gate "zero verification failures".
//
// Every payload written is a deterministic function of (seed, epoch,
// address), and the engine mirrors its own writes, so each ok read is also
// checked byte-for-byte against what the protected path must return --
// the same end-to-end discipline as serve's closed-loop loadgen.
//
// One engine is one logical tenant and is single-threaded; concurrency
// comes from running engines for different tenants on different threads
// (run_infer.h) over a shared crypto pool.
#pragma once

#include <span>

#include "common/types.h"
#include "infer/infer_stats.h"
#include "infer/model_binding.h"
#include "infer/trace_player.h"
#include "infer/unit_sink.h"

namespace seda::infer {

struct Engine_config {
    u64 seed = 0x5EDA;                   ///< payload-stream seed (per tenant)
    std::size_t max_batch_units = 4096;  ///< Trace_player dispatch cap
};

class Inference_engine {
public:
    /// `binding` is shared, immutable trace/layout state; it must outlive
    /// the engine (all tenants of one model share one binding).
    explicit Inference_engine(const Model_binding& binding, Engine_config cfg = {});

    /// Writes the weight working set and the activation pre-fill through
    /// `sink`.  Must be called exactly once, before infer().
    void load(Unit_sink& sink);

    /// One inference: stage input, replay every layer.  Requires load().
    void infer(Unit_sink& sink);

    [[nodiscard]] bool loaded() const { return loaded_; }
    [[nodiscard]] const Infer_stats& stats() const { return stats_; }
    [[nodiscard]] const Model_binding& binding() const { return binding_; }

private:
    void fill_payload(Addr addr, std::span<u8> out) const;

    const Model_binding& binding_;
    Engine_config cfg_;
    Trace_player player_;
    Trace_player::Mirror mirror_;
    Infer_stats stats_;
    u64 epoch_ = 0;  ///< bumped per phase so every write's payload is fresh
    bool loaded_ = false;
};

}  // namespace seda::infer
