// Verification accounting for the secure inference engine.
//
// Counters follow the serve::Serve_stats discipline: everything here is
// DETERMINISTIC -- a pure function of (model, NPU, seed, inference count)
// -- independent of worker count, coalescing, or which path (direct
// Secure_session batches vs. the Server front end) carried the traffic.
// `seda_cli infer --json` prints exactly these, so CI can byte-diff the
// output across --jobs values and across replay paths.  Wall-clock
// throughput is measured separately and never enters this struct.
//
// The split is per layer AND per tensor kind: SeDA's whole argument is
// that weight, ifmap and ofmap streams have different protection costs
// (weights verify once per reuse epoch, halos re-verify, ofmaps write
// back), so the accounting has to keep them apart to be checkable against
// the trace geometry.
#pragma once

#include <string>
#include <vector>

#include "accel/trace.h"
#include "common/types.h"
#include "core/verify_status.h"

namespace seda::infer {

/// One failed verification of a protected unit.  The owning Unit_counters
/// supplies the (layer, tensor kind) attribution; the record pins down
/// which unit failed and how -- what the attack campaign's ledger matches
/// against its injected plan.
struct Unit_failure {
    Addr addr = 0;
    core::Verify_status status = core::Verify_status::ok;

    [[nodiscard]] bool operator==(const Unit_failure&) const = default;
};

/// Counters for one stream of protected-unit operations.
struct Unit_counters {
    u64 writes = 0;
    u64 reads = 0;
    u64 ok = 0;
    u64 mac_mismatch = 0;
    u64 replay_detected = 0;
    u64 bytes = 0;          ///< plaintext bytes moved by ok operations
    u64 payload_fold = 0;   ///< XOR of fnv1a64(payload) over ok reads
    u64 data_mismatches = 0;///< ok reads whose payload != the write mirror
    /// Every non-ok verification in trace order (deterministic: the trace
    /// fixes the unit sequence regardless of sharding or replay path).
    std::vector<Unit_failure> failure_log;

    Unit_counters& operator+=(const Unit_counters& o)
    {
        writes += o.writes;
        reads += o.reads;
        ok += o.ok;
        mac_mismatch += o.mac_mismatch;
        replay_detected += o.replay_detected;
        bytes += o.bytes;
        payload_fold ^= o.payload_fold;
        data_mismatches += o.data_mismatches;
        failure_log.insert(failure_log.end(), o.failure_log.begin(), o.failure_log.end());
        return *this;
    }

    /// Operations that did not verify (the acceptance gate counts these).
    [[nodiscard]] u64 failures() const { return mac_mismatch + replay_detected; }

    [[nodiscard]] bool operator==(const Unit_counters&) const = default;
};

/// One layer's replay accounting, split by tensor kind.
struct Layer_infer_stats {
    std::string name;
    Unit_counters weight;
    Unit_counters ifmap;
    Unit_counters ofmap;

    [[nodiscard]] Unit_counters& by_kind(accel::Tensor_kind k)
    {
        switch (k) {
            case accel::Tensor_kind::weight: return weight;
            case accel::Tensor_kind::ifmap: return ifmap;
            case accel::Tensor_kind::ofmap: return ofmap;
        }
        return ifmap;  // unreachable; keeps -Wreturn-type quiet
    }

    [[nodiscard]] Unit_counters total() const
    {
        Unit_counters t;
        t += weight;
        t += ifmap;
        t += ofmap;
        return t;
    }

    Layer_infer_stats& operator+=(const Layer_infer_stats& o)
    {
        weight += o.weight;
        ifmap += o.ifmap;
        ofmap += o.ofmap;
        return *this;
    }

    [[nodiscard]] bool operator==(const Layer_infer_stats&) const = default;
};

/// Whole-engine view: model-load traffic plus per-layer replay counters.
struct Infer_stats {
    /// Model-load writes (weight working set + activation pre-fill), done
    /// once per engine, NOT part of any inference's replay.
    Unit_counters load;
    std::vector<Layer_infer_stats> layers;
    u64 inferences = 0;

    /// Sum of every layer's counters (load excluded).
    [[nodiscard]] Unit_counters totals() const
    {
        Unit_counters t;
        for (const Layer_infer_stats& l : layers) t += l.total();
        return t;
    }

    /// Folds another engine's stats in (same model: layer lists align).
    void merge(const Infer_stats& o)
    {
        if (layers.size() < o.layers.size()) layers.resize(o.layers.size());
        for (std::size_t i = 0; i < o.layers.size(); ++i) {
            if (layers[i].name.empty()) layers[i].name = o.layers[i].name;
            layers[i] += o.layers[i];
        }
        load += o.load;
        inferences += o.inferences;
    }

    [[nodiscard]] bool operator==(const Infer_stats&) const = default;
};

}  // namespace seda::infer
