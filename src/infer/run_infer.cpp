#include "infer/run_infer.h"

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "infer/inference_engine.h"
#include "infer/model_binding.h"
#include "infer/unit_sink.h"
#include "runtime/thread_pool.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "serve/tenant.h"

namespace seda::infer {

namespace {

void run_tenant(Inference_engine& engine, Unit_sink& sink, std::size_t inferences)
{
    engine.load(sink);
    // Live per-inference counter: gives the --watch differ and the scrape
    // endpoint a rate signal while the replay is still running.
    static const obs::Counter live_inferences = obs::enabled()
        ? obs::Metrics_registry::instance().counter("infer_inferences_total")
        : obs::Counter{};
    for (std::size_t i = 0; i < inferences; ++i) {
        engine.infer(sink);
        live_inferences.add(1);
    }
}

}  // namespace

u64 tenant_seed(u64 seed, u32 tenant)
{
    u64 state = seed ^ (static_cast<u64>(tenant) + 0x1F2E3D4C) * 0x9E3779B97F4A7C15ULL;
    return splitmix64(state);
}

Infer_result run_infer(const accel::Model_desc& model, const accel::Npu_config& npu,
                       const Infer_config& cfg)
{
    require(cfg.tenants >= 1 && cfg.inferences >= 1,
            "run_infer: tenants and inferences must be >= 1");

    const Model_binding binding(model, npu);

    std::vector<std::unique_ptr<Inference_engine>> engines;
    engines.reserve(cfg.tenants);
    for (std::size_t t = 0; t < cfg.tenants; ++t)
        engines.push_back(std::make_unique<Inference_engine>(
            binding,
            Engine_config{tenant_seed(cfg.seed, static_cast<u32>(t)),
                          cfg.max_batch_units}));

    core::Secure_mem_config mem;
    mem.unit_bytes = Model_binding::k_unit_bytes;

    const auto t0 = std::chrono::steady_clock::now();
    if (cfg.path == Replay_path::serve) {
        serve::Server_config server_cfg;
        server_cfg.tenants = cfg.tenants;
        server_cfg.workers = cfg.jobs;
        server_cfg.queue_capacity = cfg.queue_capacity;
        server_cfg.max_batch = cfg.max_batch;
        server_cfg.max_wait_us = cfg.max_wait_us;
        server_cfg.mem = mem;
        serve::Server server(serve::demo_master_key(cfg.seed, 0x1FE2),
                             serve::demo_master_key(cfg.seed, 0x3AC5), server_cfg);
        server.start();

        std::vector<std::thread> threads;
        threads.reserve(cfg.tenants);
        for (std::size_t t = 0; t < cfg.tenants; ++t)
            threads.emplace_back([&, t] {
                Server_sink sink(server, static_cast<u32>(t));
                run_tenant(*engines[t], sink, cfg.inferences);
            });
        for (auto& th : threads) th.join();
        server.drain();
        server.stop();
    } else {
        // Direct path: per-tenant sessions (derived keys, own memory) over
        // one shared crypto pool; tenant threads dispatch concurrently,
        // which the shared-pool session contract allows.
        runtime::Thread_pool pool(cfg.jobs);
        serve::Tenant_table tenants;
        const auto enc = serve::demo_master_key(cfg.seed, 0x1FE2);
        const auto mac = serve::demo_master_key(cfg.seed, 0x3AC5);
        for (std::size_t t = 0; t < cfg.tenants; ++t) tenants.add(enc, mac, mem, pool);

        std::vector<std::thread> threads;
        threads.reserve(cfg.tenants);
        for (std::size_t t = 0; t < cfg.tenants; ++t)
            threads.emplace_back([&, t] {
                Session_sink sink(tenants.find(static_cast<u32>(t))->session());
                run_tenant(*engines[t], sink, cfg.inferences);
            });
        for (auto& th : threads) th.join();
    }
    const auto t1 = std::chrono::steady_clock::now();

    Infer_result result;
    result.per_tenant.reserve(cfg.tenants);
    for (const auto& engine : engines) {
        result.per_tenant.push_back(engine->stats());
        result.merged.merge(engine->stats());
    }
    // Per-tenant scrape rows (one shot per run; counters accumulate across
    // runs in one process like every registry metric).
    if (obs::enabled()) {
        auto& reg = obs::Metrics_registry::instance();
        for (std::size_t t = 0; t < result.per_tenant.size(); ++t) {
            const Unit_counters tc = result.per_tenant[t].totals();
            const std::string id = std::to_string(t);
            reg.counter("infer_tenant_reads_total", "tenant", id).add(tc.reads);
            reg.counter("infer_tenant_writes_total", "tenant", id).add(tc.writes);
            reg.counter("infer_tenant_ok_total", "tenant", id).add(tc.ok);
            reg.counter("infer_tenant_failures_total", "tenant", id).add(tc.failures());
            reg.counter("infer_tenant_bytes_total", "tenant", id).add(tc.bytes);
        }
    }
    const Unit_counters totals = result.merged.totals();
    result.verification_failures = totals.failures() + result.merged.load.failures();
    result.data_mismatches = totals.data_mismatches + result.merged.load.data_mismatches;
    result.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
    return result;
}

}  // namespace seda::infer
