#include "infer/trace_player.h"

#include <algorithm>

#include "common/bitutil.h"
#include "common/error.h"
#include "obs/flight.h"
#include "obs/stage.h"

namespace seda::infer {

namespace {
constexpr Bytes k_unit = Model_binding::k_unit_bytes;
}

Trace_player::Trace_player(const Model_binding& binding, std::size_t max_batch_units)
    : binding_(binding), max_batch_units_(max_batch_units)
{
    require(max_batch_units_ >= 1, "Trace_player: max_batch_units must be >= 1");
}

void Trace_player::expand_range(const accel::Access_range& r, std::vector<Addr>& out)
{
    accel::for_each_block(r, [&](Addr a) { out.push_back(a); });
}

void Trace_player::play_layer(const accel::Layer_sim& layer, Unit_sink& sink,
                              Mirror& mirror, const Payload_fn& fresh_payload,
                              Layer_infer_stats& stats)
{
    // Synthetic traces (tests) may carry no layer descriptor.
    obs::Stage_span span(obs::Stage::infer_layer,
                         layer.layer != nullptr ? std::string_view(layer.layer->name)
                                                : std::string_view{});
    addrs_.clear();
    kinds_.clear();
    for (const accel::Access_range& r : layer.trace) {
        if (!addrs_.empty() && r.is_write != pending_is_write_)
            flush(sink, mirror, fresh_payload, stats);
        pending_is_write_ = r.is_write;
        accel::for_each_block(r, [&](Addr a) {
            addrs_.push_back(a);
            kinds_.push_back(r.tensor);
            if (addrs_.size() >= max_batch_units_)
                flush(sink, mirror, fresh_payload, stats);
        });
    }
    flush(sink, mirror, fresh_payload, stats);
}

void Trace_player::stage_units(std::span<const Addr> addrs, Unit_sink& sink,
                               Mirror& mirror, const Payload_fn& fresh_payload,
                               Unit_counters& counters)
{
    for (std::size_t begin = 0; begin < addrs.size(); begin += max_batch_units_) {
        const auto chunk =
            addrs.subspan(begin, std::min(max_batch_units_, addrs.size() - begin));
        addrs_.assign(chunk.begin(), chunk.end());
        counter_refs_.assign(addrs_.size(), &counters);
        dispatch_writes(sink, mirror, fresh_payload, counter_refs_);
        addrs_.clear();
    }
    kinds_.clear();
}

void Trace_player::flush(Unit_sink& sink, Mirror& mirror, const Payload_fn& fresh_payload,
                         Layer_infer_stats& stats)
{
    if (addrs_.empty()) return;
    counter_refs_.clear();
    counter_refs_.reserve(addrs_.size());
    for (const accel::Tensor_kind k : kinds_) counter_refs_.push_back(&stats.by_kind(k));
    if (pending_is_write_)
        dispatch_writes(sink, mirror, fresh_payload, counter_refs_);
    else
        dispatch_reads(sink, mirror, counter_refs_);
    addrs_.clear();
    kinds_.clear();
}

void Trace_player::dispatch_writes(Unit_sink& sink, Mirror& mirror,
                                   const Payload_fn& fresh_payload,
                                   std::span<Unit_counters* const> per_unit)
{
    const std::size_t n = addrs_.size();
    payload_buf_.resize(n * k_unit);
    writes_.clear();
    writes_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::span<u8> payload(payload_buf_.data() + i * k_unit, k_unit);
        fresh_payload(addrs_[i], payload);
        const auto ctx = binding_.context(addrs_[i]);
        writes_.push_back({addrs_[i], payload, ctx.layer_id, ctx.fmap_idx, ctx.blk_idx});
    }
    sink.write_units(writes_);
    // Serial semantics: a duplicate address in one batch leaves the LAST
    // payload live (stage_writes's supersede rule); walking in order gives
    // the mirror the same final state.
    for (std::size_t i = 0; i < n; ++i) {
        const std::span<const u8> payload(payload_buf_.data() + i * k_unit, k_unit);
        mirror[addrs_[i]].assign(payload.begin(), payload.end());
        Unit_counters& c = *per_unit[i];
        ++c.writes;
        ++c.ok;
        c.bytes += k_unit;
    }
}

void Trace_player::dispatch_reads(Unit_sink& sink, const Mirror& mirror,
                                  std::span<Unit_counters* const> per_unit)
{
    const std::size_t n = addrs_.size();
    payload_buf_.resize(n * k_unit);
    reads_.clear();
    reads_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::span<u8> out(payload_buf_.data() + i * k_unit, k_unit);
        const auto ctx = binding_.context(addrs_[i]);
        reads_.push_back({addrs_[i], out, ctx.layer_id, ctx.fmap_idx, ctx.blk_idx});
    }
    statuses_.resize(n);
    sink.read_units(reads_, statuses_);
    for (std::size_t i = 0; i < n; ++i) {
        Unit_counters& c = *per_unit[i];
        ++c.reads;
        switch (statuses_[i]) {
            case core::Verify_status::ok: {
                const std::span<const u8> payload(payload_buf_.data() + i * k_unit,
                                                  k_unit);
                ++c.ok;
                c.bytes += k_unit;
                c.payload_fold ^= fnv1a64(payload.data(), payload.size());
                const auto it = mirror.find(addrs_[i]);
                if (it == mirror.end() ||
                    !std::equal(payload.begin(), payload.end(), it->second.begin(),
                                it->second.end()))
                    ++c.data_mismatches;
                break;
            }
            case core::Verify_status::mac_mismatch:
                ++c.mac_mismatch;
                c.failure_log.push_back({addrs_[i], statuses_[i]});
                note_failure(i);
                break;
            case core::Verify_status::replay_detected:
                ++c.replay_detected;
                c.failure_log.push_back({addrs_[i], statuses_[i]});
                note_failure(i);
                break;
        }
    }
}

void Trace_player::note_failure(std::size_t i)
{
    // Forensic record of the detection as the replay layer saw it (the
    // serve path additionally records a tenant-attributed `detect` from the
    // scheduler; this one fires on the session path too).
    const auto& r = reads_[i];
    obs::Flight_recorder::detect(obs::Flight_kind::infer_detect, obs::k_flight_no_tenant,
                                 r.addr, r.layer_id, r.fmap_idx, r.blk_idx,
                                 static_cast<u8>(statuses_[i]));
}

}  // namespace seda::infer
