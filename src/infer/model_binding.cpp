#include "infer/model_binding.h"

#include <algorithm>
#include <utility>

#include "common/error.h"

namespace seda::infer {

namespace {

using accel::Memory_map;

/// Extent of one activation region (the ping-pong bases are this far apart).
constexpr Bytes k_act_region_span = Memory_map::k_act_base[1] - Memory_map::k_act_base[0];

}  // namespace

Model_binding::Model_binding(accel::Model_desc model, const accel::Npu_config& npu)
    : sim_(accel::simulate_model(std::move(model), npu))
{
    index();
}

Model_binding::Model_binding(accel::Model_sim sim) : sim_(std::move(sim)) { index(); }

Model_binding::Region Model_binding::classify(Addr unit_addr) const
{
    require(unit_addr % k_unit_bytes == 0, "Model_binding: address is not unit-aligned");
    if (unit_addr < weight_region_end_) return Region::weight;
    for (int r = 0; r < 2; ++r) {
        const Addr base = Memory_map::k_act_base[r];
        if (unit_addr >= base && unit_addr < base + k_act_region_span)
            return r == 0 ? Region::act0 : Region::act1;
    }
    throw Seda_error("Model_binding: address outside every bound region");
}

Model_binding::Unit_context Model_binding::context(Addr unit_addr) const
{
    const Region region = classify(unit_addr);
    if (region == Region::weight) {
        // Owning layer: the last weight region starting at or before the
        // address.  weight_addr is sorted (regions are packed in order).
        const auto& starts = sim_.map.weight_addr;
        const auto it = std::upper_bound(starts.begin(), starts.end(), unit_addr);
        const auto layer = static_cast<u32>(std::distance(starts.begin(), it) - 1);
        const Addr base = starts[layer];
        return {layer, 0, static_cast<u32>((unit_addr - base) / k_unit_bytes)};
    }
    const int r = region == Region::act0 ? 0 : 1;
    const Addr base = Memory_map::k_act_base[r];
    return {0x8000'0000u | static_cast<u32>(r), 1,
            static_cast<u32>((unit_addr - base) / k_unit_bytes)};
}

void Model_binding::index()
{
    // End of the packed weight area: last region start + its aligned size.
    const auto& model = *sim_.model;
    weight_region_end_ = 0;
    if (!model.layers.empty()) {
        weight_region_end_ = sim_.map.weight_addr.back() +
                             align_up(model.layers.back().weight_bytes(), k_unit_bytes);
    }

    for (const accel::Layer_sim& layer : sim_.layers) {
        for (const accel::Access_range& r : layer.trace) {
            if (r.is_write) continue;
            auto& set = r.tensor == accel::Tensor_kind::weight ? weight_load_units_
                                                               : act_prefill_units_;
            accel::for_each_block(r, [&](Addr a) { set.push_back(a); });
            if (layer.layer_id == 0 && r.tensor == accel::Tensor_kind::ifmap)
                accel::for_each_block(r, [&](Addr a) { input_units_.push_back(a); });
        }
    }
    for (auto* set : {&weight_load_units_, &act_prefill_units_, &input_units_}) {
        std::sort(set->begin(), set->end());
        set->erase(std::unique(set->begin(), set->end()), set->end());
    }
    // The convention only works if every read lands in a bound region;
    // classify() throws on a layout bug, so probe the set extremes now.
    for (const auto* set : {&weight_load_units_, &act_prefill_units_}) {
        if (set->empty()) continue;
        (void)classify(set->front());
        (void)classify(set->back());
    }
}

}  // namespace seda::infer
