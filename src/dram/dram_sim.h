// Open-page, per-bank-timing DDR model in the spirit of Ramulator2 [19].
//
// The protection schemes are differentiated by *where* their extra traffic
// lands (scattered metadata lines vs sequential amplification) as much as by
// how many bytes they move, so the model tracks per-bank open rows, pays
// activate/precharge latency on row misses, and serializes bursts on each
// channel's data bus.  Requests are processed in arrival order per channel
// (FCFS issue; banks overlap naturally through their ready times).
//
// Granularity: one request = one 64 B burst, matching the trace format the
// accelerator simulator emits.
#pragma once

#include <span>
#include <vector>

#include "dram/address_map.h"
#include "dram/dram_config.h"

namespace seda::dram {

/// Traffic classification tags used for stats breakdown (set by the
/// protection schemes; the timing model itself is tag-agnostic).
enum class Traffic_tag : u8 {
    data = 0,
    mac,
    vn,
    tree,
    layer_mac,
    amplification,
    count  // sentinel
};

struct Request {
    Addr addr = 0;
    bool is_write = false;
    Traffic_tag tag = Traffic_tag::data;
};

struct Dram_stats {
    u64 reads = 0;
    u64 writes = 0;
    u64 row_hits = 0;
    u64 row_misses = 0;
    Bytes bytes_by_tag[static_cast<int>(Traffic_tag::count)] = {};

    [[nodiscard]] Bytes total_bytes() const
    {
        Bytes t = 0;
        for (Bytes b : bytes_by_tag) t += b;
        return t;
    }
    [[nodiscard]] double row_hit_rate() const
    {
        const u64 n = row_hits + row_misses;
        return n == 0 ? 0.0 : static_cast<double>(row_hits) / static_cast<double>(n);
    }
};

class Dram_sim {
public:
    explicit Dram_sim(const Dram_config& cfg);

    /// Feeds a batch of back-to-back requests (a bandwidth-bound phase) and
    /// returns its makespan in memory-controller cycles.  Bank/row state
    /// persists across calls, mirroring a continuously running device.
    Cycles process_stream(std::span<const Request> requests);

    /// Clears timing state and statistics.
    void reset();

    [[nodiscard]] const Dram_stats& stats() const { return stats_; }
    [[nodiscard]] const Dram_config& config() const { return cfg_; }

    /// Current absolute device time (completion of everything seen so far).
    [[nodiscard]] Cycles now() const { return now_; }

private:
    struct Bank_state {
        bool row_open = false;
        u64 open_row = 0;
        Cycles act_done = 0;         ///< when the open row finished activating
        Cycles last_completion = 0;  ///< end of the bank's last data burst
        bool last_was_write = false; ///< write recovery gates the next precharge
    };
    struct Channel_state {
        Cycles bus_next = 0;  ///< earliest cycle the data bus takes another burst
        Cycles refresh_due = 0;  ///< next all-bank refresh deadline
        std::vector<Bank_state> banks;
    };

    Dram_config cfg_;
    Address_map map_;
    std::vector<Channel_state> channels_;
    Dram_stats stats_;
    Cycles now_ = 0;
};

}  // namespace seda::dram
