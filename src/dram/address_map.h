// Physical-address decomposition into channel / bank / row.
//
// Block-interleaved channel mapping (consecutive 64 B blocks round-robin
// across channels) followed by bank/row split, the usual layout for
// bandwidth-bound streaming accelerators.
#pragma once

#include "common/bitutil.h"
#include "dram/dram_config.h"

namespace seda::dram {

struct Decoded_addr {
    int channel = 0;
    int bank = 0;
    u64 row = 0;
};

class Address_map {
public:
    explicit Address_map(const Dram_config& cfg)
        : channels_(static_cast<u64>(cfg.channels)),
          banks_(static_cast<u64>(cfg.banks_per_channel)),
          blocks_per_row_(cfg.row_bytes / cfg.burst_bytes),
          burst_(cfg.burst_bytes)
    {
    }

    [[nodiscard]] Decoded_addr decode(Addr a) const
    {
        const u64 block = a / burst_;
        Decoded_addr d;
        d.channel = static_cast<int>(block % channels_);
        const u64 in_channel = block / channels_;
        const u64 row_block = in_channel / blocks_per_row_;
        d.bank = static_cast<int>(row_block % banks_);
        d.row = row_block / banks_;
        return d;
    }

private:
    u64 channels_;
    u64 banks_;
    u64 blocks_per_row_;
    u64 burst_;
};

}  // namespace seda::dram
