// Dram_tap: the bus-adversary seam on the protected backing store.
//
// A physical attacker sits BETWEEN the accelerator and the DRAM array: it
// can mutate stored ciphertext and metadata while the bus is otherwise
// quiet, but it cannot pause the chip mid-verification.  The seam models
// exactly that window: core::Secure_memory owns an optional tap pointer and
// the protected data path *pulls* it at the head of every bulk flush
// (runtime::Secure_session::write_units / read_units and the serving
// layer's per-request fallback) -- i.e. between scheduler flushes, on the
// one thread that owns the memory at that moment.  Implementations (the
// attack campaign's Fault_injector) run their queued mutations inside the
// pull, so fault injection is serialized against ALL legitimate traffic
// while the clean path pays one atomic load and a branch.
#pragma once

namespace seda::dram {

class Dram_tap {
public:
    virtual ~Dram_tap() = default;

    /// Invoked by the protected data path between flushes, on the thread
    /// that currently owns the memory.  Implementations may mutate stored
    /// units (tamper / splice / rollback) but must not call back into the
    /// session's batch interface.
    virtual void pull() = 0;
};

}  // namespace seda::dram
