#include "dram/dram_sim.h"

#include <algorithm>

namespace seda::dram {

Dram_sim::Dram_sim(const Dram_config& cfg) : cfg_(cfg), map_(cfg)
{
    cfg_.validate();
    channels_.resize(static_cast<std::size_t>(cfg_.channels));
    for (auto& ch : channels_) {
        ch.banks.resize(static_cast<std::size_t>(cfg_.banks_per_channel));
        ch.refresh_due = cfg_.t_refi;
    }
}

void Dram_sim::reset()
{
    for (auto& ch : channels_) {
        ch.bus_next = 0;
        ch.refresh_due = cfg_.t_refi;
        for (auto& b : ch.banks) b = Bank_state{};
    }
    stats_ = Dram_stats{};
    now_ = 0;
}

Cycles Dram_sim::process_stream(std::span<const Request> requests)
{
    const Cycles start = now_;
    Cycles end = start;

    // Split the stream per channel (channels have independent buses and
    // command schedulers), preserving arrival order within each.
    std::vector<std::vector<std::size_t>> per_channel(channels_.size());
    std::vector<Decoded_addr> decoded(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
        decoded[i] = map_.decode(requests[i].addr);
        per_channel[static_cast<std::size_t>(decoded[i].channel)].push_back(i);
    }

    const std::size_t window = static_cast<std::size_t>(cfg_.scheduler_window);
    for (std::size_t c = 0; c < channels_.size(); ++c) {
        auto& ch = channels_[c];
        auto& queue = per_channel[c];
        std::vector<bool> done(queue.size(), false);
        std::size_t head = 0;

        while (head < queue.size()) {
            // FR-FCFS: serve the oldest row-hitting request inside the
            // lookahead window, else the oldest request.
            std::size_t pick = head;
            for (std::size_t j = head; j < std::min(queue.size(), head + window); ++j) {
                if (done[j]) continue;
                const auto& dj = decoded[queue[j]];
                const auto& bj = ch.banks[static_cast<std::size_t>(dj.bank)];
                if (bj.row_open && bj.open_row == dj.row) {
                    pick = j;
                    break;
                }
                if (pick == head && done[head]) pick = j;
            }
            while (done[pick]) ++pick;  // fall back to oldest unserved

            const Request& r = requests[queue[pick]];
            const Decoded_addr& d = decoded[queue[pick]];
            auto& bank = ch.banks[static_cast<std::size_t>(d.bank)];
            done[pick] = true;
            while (head < queue.size() && done[head]) ++head;

            // All-bank refresh: the channel stalls for t_rfc and every open
            // row closes (rows must re-activate afterwards).
            if (cfg_.refresh_enabled && ch.bus_next >= ch.refresh_due) {
                ch.bus_next += cfg_.t_rfc;
                for (auto& b : ch.banks) {
                    b.row_open = false;
                    b.act_done = std::max(b.act_done, ch.bus_next);
                }
                ch.refresh_due += cfg_.t_refi;
            }

        // Row hits ride the open row: successive CAS commands pipeline, so
        // the burst is gated by the channel bus alone.  A row switch must
        // wait for the bank's outstanding data (plus write recovery), then
        // pays precharge + activate; that activation overlaps transfers on
        // other banks, which is what keeps streaming at line rate across
        // row boundaries.
        if (!(bank.row_open && bank.open_row == d.row)) {
            Cycles pre_start = std::max(start, bank.last_completion);
            if (bank.last_was_write) pre_start += cfg_.t_wr;
            const Cycles act_latency =
                bank.row_open ? cfg_.t_rp + cfg_.t_rcd : cfg_.t_rcd;
            bank.act_done = pre_start + act_latency;
            bank.row_open = true;
            bank.open_row = d.row;
            ++stats_.row_misses;
        } else {
            ++stats_.row_hits;
        }

            const Cycles earliest_data = std::max(start, bank.act_done) + cfg_.t_cl;
            const Cycles data_start = std::max(earliest_data, ch.bus_next);
            const Cycles completion = data_start + cfg_.t_bl;
            ch.bus_next = completion;
            bank.last_completion = completion;
            bank.last_was_write = r.is_write;

            if (r.is_write) {
                ++stats_.writes;
            } else {
                ++stats_.reads;
            }
            stats_.bytes_by_tag[static_cast<int>(r.tag)] += cfg_.burst_bytes;
            end = std::max(end, completion);
        }
    }

    now_ = end;
    return end - start;
}

}  // namespace seda::dram
