// Configuration of the DDR off-chip memory model.
//
// The paper attaches four 64-bit DDR channels to both NPUs (Sec. IV-A) and
// caps aggregate bandwidth at 20 GB/s (server) / 10 GB/s (edge).  We expose
// the same knobs: channel count, per-channel data rate (derived from the
// aggregate bandwidth), bank count, row size and the core timing parameters
// of an open-page DDR device.
#pragma once

#include "common/bitutil.h"
#include "common/error.h"
#include "common/types.h"

namespace seda::dram {

struct Dram_config {
    int channels = 4;          ///< independent 64-bit channels
    int banks_per_channel = 16;
    Bytes row_bytes = 2048;    ///< DRAM page (row buffer) per bank
    Bytes burst_bytes = 64;    ///< one access transfers a 64 B burst

    // Timing in memory-controller clock cycles (command clock).
    Cycles t_rcd = 14;  ///< ACT -> column command
    Cycles t_rp = 14;   ///< PRE -> ACT
    Cycles t_cl = 14;   ///< column command -> first data
    Cycles t_bl = 4;    ///< data-bus beats per 64 B burst on a 64-bit channel
    Cycles t_wr = 12;   ///< write recovery before precharge

    /// FR-FCFS lookahead: the controller may serve a row-hitting request up
    /// to this many entries ahead of the oldest one, batching row hits when
    /// data and metadata streams collide in a bank.
    int scheduler_window = 64;

    // All-bank refresh: every t_refi controller cycles the channel stalls
    // for t_rfc and every row buffer closes.  Defaults approximate DDR4
    // (7.8 us tREFI / ~350 ns tRFC) at the ~300 MHz controller clock the
    // server NPU's 20 GB/s maps to.  Set refresh_enabled = false for
    // idealized studies.
    bool refresh_enabled = true;
    Cycles t_refi = 2400;
    Cycles t_rfc = 110;

    /// Peak bytes per controller cycle per channel.  The controller clock is
    /// chosen so that channels * peak matches the configured aggregate
    /// bandwidth at the NPU clock (accel/npu_config.h does that mapping).
    [[nodiscard]] double peak_bytes_per_cycle_per_channel() const
    {
        return static_cast<double>(burst_bytes) / static_cast<double>(t_bl);
    }

    void validate() const
    {
        require(channels > 0, "Dram_config: channels must be positive");
        require(banks_per_channel > 0 && is_pow2(static_cast<u64>(banks_per_channel)),
                "Dram_config: banks per channel must be a positive power of two");
        require(row_bytes >= burst_bytes && is_pow2(row_bytes),
                "Dram_config: row size must be a power of two >= burst size");
        require(burst_bytes == k_block_bytes,
                "Dram_config: model assumes 64 B bursts (trace granularity)");
        require(t_bl > 0, "Dram_config: burst length must be positive");
        require(scheduler_window >= 1, "Dram_config: scheduler window must be >= 1");
        if (refresh_enabled)
            require(t_refi > t_rfc, "Dram_config: tREFI must exceed tRFC");
    }
};

}  // namespace seda::dram
