#include "protect/layer_mac_scheme.h"

#include "accel/memory_map.h"

namespace seda::protect {

Layer_mac_scheme::Layer_mac_scheme(Bytes unit_bytes)
    : name_("securator-" + std::to_string(unit_bytes) + "b"), unit_bytes_(unit_bytes)
{
    require(unit_bytes_ >= k_block_bytes && is_pow2(unit_bytes_),
            "Layer_mac_scheme: unit size must be a power of two >= 64 B");
}

void Layer_mac_scheme::begin_model(const accel::Model_sim&)
{
    fold_count_.clear();
    redundant_folds_ = 0;
    unverifiable_units_ = 0;
}

Layer_protect_result Layer_mac_scheme::transform_layer(const accel::Layer_sim& layer)
{
    Layer_protect_result out;
    out.timed_stream.reserve(
        static_cast<std::size_t>((layer.read_bytes + layer.write_bytes) / k_block_bytes));
    fold_count_.clear();
    u64 layer_redundant = 0;

    for (const auto& r : layer.trace) {
        const Addr lo = align_down(r.first_block(), unit_bytes_);
        const Addr hi = align_up(r.end_block(), unit_bytes_);
        for (Addr u = lo; u < hi; u += unit_bytes_) {
            const int folds = ++fold_count_[u];
            ++out.verify_events;
            if (folds > 1) {
                // Halo re-read: the unit's MAC enters the XOR fold again
                // and would cancel; the tiling-oblivious engine re-verifies
                // and re-folds to compensate -- pure redundant crypto work.
                ++layer_redundant;
                ++out.verify_events;
            }
            // Embedding-style partial coverage: a unit only touched by a
            // producer (or only partially by the consumer) cannot be
            // checked against the layer fold.
            if (r.tensor == accel::Tensor_kind::weight &&
                layer.layer->kind == accel::Layer_kind::embedding)
                ++unverifiable_units_;

            append_unit_requests(out.timed_stream, u, unit_bytes_, r.first_block(),
                                 r.end_block(), r.is_write);
        }
    }

    // One off-chip layer MAC per layer (Securator keeps them off-chip).
    dram::Request rd;
    rd.addr = accel::Memory_map::k_layer_mac_base +
              align_down(static_cast<Addr>(layer.layer_id) * 8, k_block_bytes);
    rd.is_write = false;
    rd.tag = dram::Traffic_tag::layer_mac;
    out.timed_stream.push_back(rd);
    dram::Request wr = rd;
    wr.is_write = true;
    out.timed_stream.push_back(wr);

    // Deferred layer check drains the hash pipeline; redundant folds extend
    // it (two extra hash passes per re-read unit at 16 B/cycle).
    out.fixed_cycles = 32 + (layer_redundant * unit_bytes_) / 16;
    redundant_folds_ += layer_redundant;
    return out;
}

Layer_protect_result Layer_mac_scheme::end_model() { return {}; }

}  // namespace seda::protect
