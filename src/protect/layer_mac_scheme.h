// Securator-style layer-level integrity [11]: the paper's direct foil.
//
// Like SeDA, this scheme folds per-block MACs into one layer MAC on the fly
// (near-zero metadata traffic).  Unlike SeDA it is *tiling-oblivious*
// (Sec. III-C, Challenge 1):
//
//   * intra-layer: halo re-reads re-enter the fold.  XOR cancels pairs, so
//     the engine must compensate -- modelled as a redundant decrypt+verify
//     event per re-read unit plus a compensation fold (extra crypto work,
//     Table III "DNN tiling pattern: no").
//   * inter-layer: the fixed block size ignores the producer/consumer
//     patterns; units straddling either tiling force amplified fetches, and
//     any region the consumer does not fully revisit leaves the layer fold
//     unverifiable -- a *false-negative risk* this model counts explicitly
//     (the paper: "may result in false negatives").
//
// Comparing this scheme against SeDA isolates the value of the optBlk
// search: same multi-level idea, none of the tiling awareness.
#pragma once

#include <unordered_map>

#include "protect/scheme.h"

namespace seda::protect {

class Layer_mac_scheme final : public Protection_scheme {
public:
    /// `unit_bytes`: the fixed authentication-block size (Securator uses a
    /// fixed fine granularity; 64 B is the bus-friendly equivalent here).
    explicit Layer_mac_scheme(Bytes unit_bytes = 64);

    [[nodiscard]] std::string name() const override { return name_; }
    void begin_model(const accel::Model_sim& sim) override;
    [[nodiscard]] Layer_protect_result transform_layer(const accel::Layer_sim& layer) override;
    [[nodiscard]] Layer_protect_result end_model() override;

    /// Units folded more than once across the model (redundant crypto work
    /// a tiling-aware scheme would have avoided).
    [[nodiscard]] u64 redundant_folds() const { return redundant_folds_; }

    /// Units whose producer-epoch fold could not be matched by the consumer
    /// pass (partial coverage): integrity verification for them silently
    /// degrades -- the false-negative exposure the paper warns about.
    [[nodiscard]] u64 unverifiable_units() const { return unverifiable_units_; }

private:
    std::string name_;
    Bytes unit_bytes_;
    std::unordered_map<u64, int> fold_count_;  ///< per-unit folds, current layer
    u64 redundant_folds_ = 0;
    u64 unverifiable_units_ = 0;
};

}  // namespace seda::protect
