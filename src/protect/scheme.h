// Memory-protection scheme interface: rewrites the accelerator's data trace
// into the full off-chip request stream (data + security metadata), and
// reports the quantities the performance model prices:
//
//  * timed_stream    - demand-path requests (data, read amplification, MAC
//                      lines) that the DRAM simulator prices cycle by cycle.
//  * prefetch_bytes  - VN / integrity-tree traffic; AES-CTR pad generation
//                      lets the engine fetch counters ahead of data, so the
//                      bytes count fully as traffic but only a calibrated
//                      fraction of their transfer time hits the critical
//                      path (protect/calibration.h).
//  * mac_demand_misses - dependent metadata fetches that stall verification.
//  * verify_events   - integrity checks performed (unit granularity).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "accel/accel_sim.h"
#include "common/types.h"
#include "dram/dram_sim.h"
#include "protect/calibration.h"

namespace seda::protect {

struct Layer_protect_result {
    std::vector<dram::Request> timed_stream;
    Bytes prefetch_bytes = 0;
    u64 mac_demand_misses = 0;
    u64 verify_events = 0;
    Cycles fixed_cycles = 0;

    [[nodiscard]] Bytes timed_bytes() const
    {
        return static_cast<Bytes>(timed_stream.size()) * k_block_bytes;
    }
    [[nodiscard]] Bytes total_traffic_bytes() const { return timed_bytes() + prefetch_bytes; }
};

class Protection_scheme {
public:
    virtual ~Protection_scheme() = default;

    [[nodiscard]] virtual std::string name() const = 0;

    /// Called once before the first layer of a model run.
    virtual void begin_model(const accel::Model_sim& sim) { (void)sim; }

    /// Rewrites one layer's data trace into the protected request stream.
    [[nodiscard]] virtual Layer_protect_result transform_layer(const accel::Layer_sim& layer) = 0;

    /// Called after the last layer; emits end-of-run work (dirty metadata
    /// flushes, final model-MAC checks).
    [[nodiscard]] virtual Layer_protect_result end_model() { return {}; }

    /// AES engine-equivalents this scheme provisions (0 = no encryption).
    /// All protected schemes are provisioned to match link bandwidth by
    /// default -- the hardware *cost* of doing so differs (Fig. 4) and the
    /// ablation bench exercises under-provisioning.
    [[nodiscard]] virtual int crypto_engine_equivalents(const accel::Npu_config& npu) const;
};

// ---------------------------------------------------------------- utils ----

/// Appends every 64 B block of `r` to `out` with the given tag, marking
/// blocks outside [r.begin, r.begin+r.length) as amplification (they are
/// fetched only to complete protection units).
void emit_blocks(std::vector<dram::Request>& out, const accel::Access_range& r,
                 bool is_write, dram::Traffic_tag tag);

/// Appends the 64 B requests covering one protection unit
/// [unit_addr, unit_addr + unit_bytes): blocks inside [demand_lo, demand_hi)
/// are demand data (writes stay writes), the rest amplification fetched only
/// to complete the unit.  One resize + tight fill per unit instead of
/// per-block push_back -- the trace-level analogue of the crypto layer's
/// bulk keystream, shared by every unit-granular scheme.
void append_unit_requests(std::vector<dram::Request>& out, Addr unit_addr,
                          Bytes unit_bytes, Addr demand_lo, Addr demand_hi,
                          bool is_write);

/// Bytes a range wastes when fetched at `unit_bytes` granularity: the
/// distance between the unit-aligned span and the block-aligned span.
[[nodiscard]] Bytes unit_amplification_bytes(const accel::Access_range& r, Bytes unit_bytes);

/// The unprotected baseline: data trace passes through untouched.
class Baseline_scheme final : public Protection_scheme {
public:
    [[nodiscard]] std::string name() const override { return "baseline"; }
    [[nodiscard]] Layer_protect_result transform_layer(const accel::Layer_sim& layer) override;
    [[nodiscard]] int crypto_engine_equivalents(const accel::Npu_config&) const override
    {
        return 0;
    }
};

}  // namespace seda::protect
