// Shared machinery of unit-granularity MAC schemes (SGX- and MGX-style).
//
// Data is encrypted at 16 B AES granularity with one counter per 64 B block,
// and integrity-verified at `unit_bytes` granularity (64 B or 512 B in the
// paper's comparison).  Any touch of a cold unit fetches the *whole* unit
// (verification hashes all of it), so coarse units amplify partially-used
// fetches at tile edges and on gather workloads; partial-unit writes
// read-modify-write the untouched blocks for the same reason.
//
// Metadata flows:
//   MAC:  8 B per unit, packed eight to a 64 B line, filtered by the 8 KB
//         MAC cache; read-path misses are dependent fetches (stall-counted).
//   VN:   (SGX only) 8 B slot per 64 B data block, packed eight to a line,
//         filtered by the 16 KB VN cache; misses walk the 8-ary integrity
//         tree until a cached ancestor (root on-chip).  VN/tree bytes are
//         prefetchable (see protect/calibration.h).
#pragma once

#include <optional>

#include "accel/memory_map.h"
#include "protect/integrity_tree.h"
#include "protect/metadata_cache.h"
#include "protect/scheme.h"

namespace seda::protect {

struct Unit_scheme_config {
    Bytes unit_bytes = 64;        ///< integrity-verification granularity
    bool has_vn_tree = false;     ///< SGX: off-chip VNs + integrity tree
    /// TNPU [9]: VNs stored off-chip but authenticated tree-lessly (their
    /// trusted counters make the tree unnecessary) -- VN traffic without
    /// tree-walk traffic.  Ignored when has_vn_tree is set.
    bool has_vn_no_tree = false;
    Bytes mac_cache_bytes = 8 * 1024;
    int mac_cache_ways = 8;
    Bytes vn_cache_bytes = 16 * 1024;
    int vn_cache_ways = 8;
};

class Unit_mac_scheme : public Protection_scheme {
public:
    Unit_mac_scheme(std::string name, const Unit_scheme_config& cfg);

    [[nodiscard]] std::string name() const override { return name_; }
    void begin_model(const accel::Model_sim& sim) override;
    [[nodiscard]] Layer_protect_result transform_layer(const accel::Layer_sim& layer) override;
    [[nodiscard]] Layer_protect_result end_model() override;

    [[nodiscard]] const Cache_stats& mac_cache_stats() const { return mac_cache_.stats(); }
    [[nodiscard]] const Cache_stats& vn_cache_stats() const { return vn_cache_.stats(); }
    [[nodiscard]] Bytes unit_bytes() const { return cfg_.unit_bytes; }

private:
    void protect_range(const accel::Access_range& r, Layer_protect_result& out);
    void touch_mac(Addr unit_addr, bool is_write, Layer_protect_result& out);
    void touch_vn(Addr block_addr, bool is_write, Layer_protect_result& out);

    std::string name_;
    Unit_scheme_config cfg_;
    Metadata_cache mac_cache_;
    Metadata_cache vn_cache_;
    std::optional<Integrity_tree> tree_;
    Addr last_vn_line_ = ~0ULL;  ///< per-range VN-line dedup cursor
};

/// SGX-style protection [5]: MAC + VN + integrity tree (Table III rows 1-2).
[[nodiscard]] inline Unit_mac_scheme make_sgx_scheme(Bytes unit_bytes)
{
    Unit_scheme_config cfg;
    cfg.unit_bytes = unit_bytes;
    cfg.has_vn_tree = true;
    return {"sgx-" + std::to_string(unit_bytes) + "b", cfg};
}

/// MGX-style protection [8]: on-chip application-specific VNs, off-chip MAC
/// traffic only (Table III rows 3-4).
[[nodiscard]] inline Unit_mac_scheme make_mgx_scheme(Bytes unit_bytes)
{
    Unit_scheme_config cfg;
    cfg.unit_bytes = unit_bytes;
    cfg.has_vn_tree = false;
    return {"mgx-" + std::to_string(unit_bytes) + "b", cfg};
}

/// TNPU-style protection [9]: tree-less integrity -- off-chip VNs and MACs,
/// but no integrity-tree walk.  Sits between SGX (tree) and MGX (no VN
/// traffic at all) in both traffic and time.
[[nodiscard]] inline Unit_mac_scheme make_tnpu_scheme(Bytes unit_bytes)
{
    Unit_scheme_config cfg;
    cfg.unit_bytes = unit_bytes;
    cfg.has_vn_tree = false;
    cfg.has_vn_no_tree = true;
    return {"tnpu-" + std::to_string(unit_bytes) + "b", cfg};
}

}  // namespace seda::protect
