// Set-associative LRU metadata cache (write-back, write-allocate), the
// on-chip filter in front of VN / MAC / tree traffic (Sec. IV-A: 16 KB VN
// cache and 8 KB MAC cache with LRU write-back write-allocate policies).
#pragma once

#include <list>
#include <unordered_map>
#include <vector>

#include "common/bitutil.h"
#include "common/error.h"
#include "common/types.h"

namespace seda::protect {

struct Cache_stats {
    u64 hits = 0;
    u64 misses = 0;
    u64 writebacks = 0;
    [[nodiscard]] double hit_rate() const
    {
        const u64 n = hits + misses;
        return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
    }
};

/// Result of one cache access: whether a fill is needed and whether a dirty
/// victim must be written back first.
struct Cache_access {
    bool hit = false;
    bool writeback = false;
    Addr writeback_addr = 0;
};

class Metadata_cache {
public:
    /// capacity/line must be a multiple of ways; line defaults to 64 B.
    Metadata_cache(Bytes capacity, int ways, Bytes line_bytes = k_block_bytes);

    /// Touches the line holding `addr`; `dirty` marks it modified.
    Cache_access access(Addr addr, bool dirty);

    /// Writes back every dirty line (end-of-model flush); fn(line_addr) is
    /// called per writeback.
    template <typename Fn>
    void flush_dirty(Fn&& fn)
    {
        for (auto& set : sets_) {
            for (auto& way : set.lines) {
                if (way.valid && way.dirty) {
                    fn(way.tag_addr);
                    ++stats_.writebacks;
                    way.dirty = false;
                }
            }
        }
    }

    void clear();
    [[nodiscard]] const Cache_stats& stats() const { return stats_; }
    [[nodiscard]] Bytes line_bytes() const { return line_; }

private:
    struct Line {
        bool valid = false;
        bool dirty = false;
        Addr tag_addr = 0;  ///< full line-aligned address
        u64 lru = 0;        ///< last-touched tick
    };
    struct Set {
        std::vector<Line> lines;
    };

    Bytes line_;
    std::size_t num_sets_;
    std::vector<Set> sets_;
    Cache_stats stats_;
    u64 tick_ = 0;
};

}  // namespace seda::protect
