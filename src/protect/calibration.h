// Performance-model calibration constants for the protection schemes.
//
// The trace-level simulators account three cost classes on top of raw DRAM
// bandwidth, mirroring how real memory-protection engines behave:
//
//  * vn_prefetch_discount (beta): version-number and integrity-tree lines
//    feed OTP generation, whose addresses are known ahead of the data
//    stream; AES-CTR lets the engine prefetch them and overlap pad
//    generation with communication (Sec. II-A).  Their bytes always count
//    as traffic, but only a beta fraction of their transfer time lands on
//    the critical path.
//  * stall_cycles_per_mac_miss: a MAC-line miss on the demand path is a
//    dependent fetch -- data cannot be released to the datapath until its
//    tag is checked.  The constant is the *unhidden* portion of that
//    round-trip (most of it pipelines behind subsequent transfers).
// (SeDA's deferred layer-level check additionally pays a per-layer pipeline
// drain, configured in core::Seda_config::layer_check_drain_cycles.)
//
// Values were calibrated once against the paper's Fig. 5/6 server-NPU
// averages (see EXPERIMENTS.md) and are deliberately centralized here: the
// ablation bench sweeps them to show the orderings are robust.
#pragma once

namespace seda::protect {

struct Perf_params {
    double vn_prefetch_discount = 0.5;
    double stall_cycles_per_mac_miss = 1.0;

    [[nodiscard]] static Perf_params defaults() { return {}; }
};

}  // namespace seda::protect
