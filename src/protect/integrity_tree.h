// Address geometry of the Bonsai-style integrity tree [12], [13].
//
// Level 0 is the VN line array (one 64 B line packs eight 64-bit slots, each
// holding a 56-bit version number).  Each higher-level node line covers
// `arity` lines of the level below; the root lives on-chip (never traffic).
// The tree spans the whole 16 GB protected region (Sec. IV-A).
#pragma once

#include <vector>

#include "common/bitutil.h"
#include "common/error.h"
#include "common/types.h"

namespace seda::protect {

class Integrity_tree {
public:
    /// `vn_lines` - number of level-0 VN lines; `arity` - children per node.
    Integrity_tree(Addr tree_base, u64 vn_lines, int arity = 8)
        : base_(tree_base), arity_(static_cast<u64>(arity))
    {
        require(arity >= 2, "Integrity_tree: arity must be >= 2");
        require(vn_lines > 0, "Integrity_tree: empty VN space");
        // Precompute per-level node counts and region offsets until a single
        // root remains (the root itself is on-chip and generates no traffic).
        u64 nodes = vn_lines;
        Addr offset = 0;
        while (nodes > 1) {
            nodes = ceil_div(nodes, arity_);
            level_offset_.push_back(offset);
            level_nodes_.push_back(nodes);
            offset += nodes * k_block_bytes;
        }
    }

    /// Tree levels that live off-chip (excludes the on-chip root when the
    /// top level collapses to one node).
    [[nodiscard]] int levels() const { return static_cast<int>(level_offset_.size()); }

    /// Off-chip address of the level-`level` node line covering VN line
    /// `vn_line_idx` (level 1 = parents of VN lines).
    [[nodiscard]] Addr node_addr(int level, u64 vn_line_idx) const
    {
        require(level >= 1 && level <= levels(), "Integrity_tree: bad level");
        u64 idx = vn_line_idx;
        for (int l = 0; l < level; ++l) idx /= arity_;
        const auto li = static_cast<std::size_t>(level - 1);
        return base_ + level_offset_[li] + std::min(idx, level_nodes_[li] - 1) * k_block_bytes;
    }

    /// True when the node at `level` is the single (on-chip) root.
    [[nodiscard]] bool is_root_level(int level) const { return level >= levels(); }

private:
    Addr base_;
    u64 arity_;
    std::vector<Addr> level_offset_;
    std::vector<u64> level_nodes_;
};

}  // namespace seda::protect
