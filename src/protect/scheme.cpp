#include "protect/scheme.h"

#include "crypto/engine_model.h"

namespace seda::protect {

int Protection_scheme::crypto_engine_equivalents(const accel::Npu_config& npu) const
{
    return crypto::required_engine_equivalents(npu.link_bytes_per_npu_cycle());
}

void emit_blocks(std::vector<dram::Request>& out, const accel::Access_range& r,
                 bool is_write, dram::Traffic_tag tag)
{
    accel::for_each_block(r, [&](Addr a) {
        dram::Request req;
        req.addr = a;
        req.is_write = is_write;
        req.tag = tag;
        out.push_back(req);
    });
}

void append_unit_requests(std::vector<dram::Request>& out, Addr unit_addr, Bytes unit_bytes,
                          Addr demand_lo, Addr demand_hi, bool is_write)
{
    const std::size_t n = static_cast<std::size_t>(ceil_div(unit_bytes, k_block_bytes));
    std::size_t i = out.size();
    out.resize(out.size() + n);
    for (Addr block = unit_addr; block < unit_addr + unit_bytes;
         block += k_block_bytes, ++i) {
        const bool inside = block >= demand_lo && block < demand_hi;
        dram::Request& req = out[i];
        req.addr = block;
        req.is_write = inside && is_write;
        req.tag = inside ? dram::Traffic_tag::data : dram::Traffic_tag::amplification;
    }
}

Bytes unit_amplification_bytes(const accel::Access_range& r, Bytes unit_bytes)
{
    if (unit_bytes <= k_block_bytes || r.length == 0) return 0;
    const Addr lo = align_down(r.first_block(), unit_bytes);
    const Addr hi = align_up(r.end_block(), unit_bytes);
    return (hi - lo) - (r.end_block() - r.first_block());
}

Layer_protect_result Baseline_scheme::transform_layer(const accel::Layer_sim& layer)
{
    Layer_protect_result out;
    out.timed_stream.reserve(
        static_cast<std::size_t>((layer.read_bytes + layer.write_bytes) / k_block_bytes));
    for (const auto& r : layer.trace)
        emit_blocks(out.timed_stream, r, r.is_write, dram::Traffic_tag::data);
    return out;
}

}  // namespace seda::protect
