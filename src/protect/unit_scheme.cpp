#include "protect/unit_scheme.h"

namespace seda::protect {

using accel::Memory_map;

namespace {

constexpr Bytes k_mac_slot = 8;  ///< one 64-bit MAC / VN per slot

Addr mac_slot_addr(Addr unit_addr, Bytes unit_bytes)
{
    return Memory_map::k_mac_base + (unit_addr / unit_bytes) * k_mac_slot;
}

Addr vn_slot_addr(Addr block_addr)
{
    return Memory_map::k_vn_base + (block_addr / k_block_bytes) * k_mac_slot;
}

}  // namespace

Unit_mac_scheme::Unit_mac_scheme(std::string name, const Unit_scheme_config& cfg)
    : name_(std::move(name)),
      cfg_(cfg),
      mac_cache_(cfg.mac_cache_bytes, cfg.mac_cache_ways),
      vn_cache_(cfg.vn_cache_bytes, cfg.vn_cache_ways)
{
    require(cfg_.unit_bytes >= k_block_bytes && is_pow2(cfg_.unit_bytes),
            "Unit_mac_scheme: unit size must be a power-of-two >= 64 B");
}

void Unit_mac_scheme::begin_model(const accel::Model_sim&)
{
    mac_cache_.clear();
    vn_cache_.clear();
    if (cfg_.has_vn_tree) {
        // VN lines covering the whole protected region: one 8 B slot per
        // 64 B block, eight slots per line.
        const u64 vn_lines = Memory_map::k_protected_bytes / (k_block_bytes * 8);
        tree_.emplace(Memory_map::k_tree_base, vn_lines, 8);
    }
}

void Unit_mac_scheme::touch_mac(Addr unit_addr, bool is_write, Layer_protect_result& out)
{
    const Addr slot = mac_slot_addr(unit_addr, cfg_.unit_bytes);
    const Cache_access acc = mac_cache_.access(slot, is_write);
    if (acc.hit) return;

    // Write-allocate: the line is fetched on both read and write misses so
    // neighbouring MACs in the line are merged correctly.
    dram::Request fill;
    fill.addr = align_down(slot, k_block_bytes);
    fill.is_write = false;
    fill.tag = dram::Traffic_tag::mac;
    out.timed_stream.push_back(fill);
    if (!is_write) ++out.mac_demand_misses;  // read path: dependent fetch

    if (acc.writeback) {
        dram::Request wb;
        wb.addr = acc.writeback_addr;
        wb.is_write = true;
        wb.tag = dram::Traffic_tag::mac;
        out.timed_stream.push_back(wb);
    }
}

void Unit_mac_scheme::touch_vn(Addr block_addr, bool is_write, Layer_protect_result& out)
{
    const Addr slot = vn_slot_addr(block_addr);
    const Addr line = align_down(slot, k_block_bytes);
    if (line == last_vn_line_ && !is_write) return;  // fast path within a line
    last_vn_line_ = line;

    const Cache_access acc = vn_cache_.access(slot, is_write);
    if (acc.writeback) out.prefetch_bytes += k_block_bytes;
    if (acc.hit) return;
    out.prefetch_bytes += k_block_bytes;  // VN line fill (prefetchable)
    if (!tree_) return;  // tree-less (TNPU): the fill authenticates itself

    // Walk the integrity tree until a cached ancestor authenticates the
    // fill (the root is on-chip and free).
    const u64 vn_line_idx = (line - Memory_map::k_vn_base) / k_block_bytes;
    for (int level = 1; level <= tree_->levels(); ++level) {
        const Addr node = tree_->node_addr(level, vn_line_idx);
        const Cache_access node_acc = vn_cache_.access(node, is_write);
        if (node_acc.writeback) out.prefetch_bytes += k_block_bytes;
        if (node_acc.hit) break;
        out.prefetch_bytes += k_block_bytes;
    }
}

void Unit_mac_scheme::protect_range(const accel::Access_range& r, Layer_protect_result& out)
{
    const Bytes g = cfg_.unit_bytes;
    const Addr lo = align_down(r.first_block(), g);
    const Addr hi = align_up(r.end_block(), g);
    last_vn_line_ = ~0ULL;

    for (Addr unit = lo; unit < hi; unit += g) {
        // All blocks of the unit in one bulk append; on the write path the
        // outside blocks are fetched to recompute the unit MAC
        // (read-modify-write), so they stay reads tagged amplification.
        append_unit_requests(out.timed_stream, unit, g, r.first_block(), r.end_block(),
                             r.is_write);
        if (cfg_.has_vn_tree || cfg_.has_vn_no_tree)
            for (Addr block = unit; block < unit + g; block += k_block_bytes)
                touch_vn(block, r.is_write, out);
        ++out.verify_events;
        touch_mac(unit, r.is_write, out);
    }
}

Layer_protect_result Unit_mac_scheme::transform_layer(const accel::Layer_sim& layer)
{
    Layer_protect_result out;
    out.timed_stream.reserve(
        static_cast<std::size_t>((layer.read_bytes + layer.write_bytes) / k_block_bytes));
    for (const auto& r : layer.trace) protect_range(r, out);
    return out;
}

Layer_protect_result Unit_mac_scheme::end_model()
{
    Layer_protect_result out;
    mac_cache_.flush_dirty([&](Addr line) {
        dram::Request wb;
        wb.addr = line;
        wb.is_write = true;
        wb.tag = dram::Traffic_tag::mac;
        out.timed_stream.push_back(wb);
    });
    vn_cache_.flush_dirty([&](Addr) { out.prefetch_bytes += k_block_bytes; });
    return out;
}

}  // namespace seda::protect
