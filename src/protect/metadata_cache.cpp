#include "protect/metadata_cache.h"

#include <algorithm>

namespace seda::protect {

Metadata_cache::Metadata_cache(Bytes capacity, int ways, Bytes line_bytes)
    : line_(line_bytes)
{
    require(ways > 0, "Metadata_cache: ways must be positive");
    require(line_bytes > 0 && is_pow2(line_bytes), "Metadata_cache: bad line size");
    const Bytes lines = capacity / line_bytes;
    require(lines >= static_cast<Bytes>(ways),
            "Metadata_cache: capacity below one set");
    num_sets_ = static_cast<std::size_t>(lines / static_cast<Bytes>(ways));
    require(is_pow2(num_sets_), "Metadata_cache: set count must be a power of two");
    sets_.resize(num_sets_);
    for (auto& s : sets_) s.lines.resize(static_cast<std::size_t>(ways));
}

Cache_access Metadata_cache::access(Addr addr, bool dirty)
{
    const Addr line_addr = align_down(addr, line_);
    const std::size_t set_idx =
        static_cast<std::size_t>((line_addr / line_) & (num_sets_ - 1));
    Set& set = sets_[set_idx];
    ++tick_;

    Cache_access result;
    for (auto& way : set.lines) {
        if (way.valid && way.tag_addr == line_addr) {
            way.lru = tick_;
            way.dirty = way.dirty || dirty;
            ++stats_.hits;
            result.hit = true;
            return result;
        }
    }

    ++stats_.misses;
    // Victim: invalid way if any, else LRU.
    Line* victim = &set.lines[0];
    for (auto& way : set.lines) {
        if (!way.valid) {
            victim = &way;
            break;
        }
        if (way.lru < victim->lru) victim = &way;
    }
    if (victim->valid && victim->dirty) {
        result.writeback = true;
        result.writeback_addr = victim->tag_addr;
        ++stats_.writebacks;
    }
    victim->valid = true;
    victim->dirty = dirty;
    victim->tag_addr = line_addr;
    victim->lru = tick_;
    return result;
}

void Metadata_cache::clear()
{
    for (auto& s : sets_)
        for (auto& l : s.lines) l = Line{};
    stats_ = Cache_stats{};
    tick_ = 0;
}

}  // namespace seda::protect
