#include "serve/server.h"

#include <chrono>
#include <utility>

#include <string>

#include "common/error.h"
#include "obs/flight.h"
#include "obs/health.h"
#include "obs/request_trace.h"
#include "obs/stage.h"

namespace seda::serve {

namespace {

/// Requests admitted but not yet completed (process-wide: every Server in
/// the process feeds the same gauge, like all registry metrics).
const obs::Gauge& inflight_gauge()
{
    static const obs::Gauge g =
        obs::Metrics_registry::instance().gauge("serve_inflight_requests");
    return g;
}

}  // namespace

Server::Server(std::span<const u8> master_enc, std::span<const u8> master_mac,
               Server_config cfg)
    : cfg_(cfg),
      pool_(cfg.workers),
      master_enc_(master_enc.begin(), master_enc.end()),
      master_mac_(master_mac.begin(), master_mac.end()),
      queue_(cfg.queue_capacity),
      scheduler_(tenants_)
{
    require(cfg_.tenants >= 1, "serve: need at least one tenant");
    for (std::size_t i = 0; i < cfg_.tenants; ++i) add_tenant();
}

Server::~Server() { stop(); }

void Server::start()
{
    std::lock_guard lock(mutex_);
    require(!started_, "serve: start() may only be called once");
    require(!stopped_, "serve: cannot start() a stopped server");
    started_ = true;
    // Health transitions are NOT gated on obs::enabled(): /healthz is a
    // liveness signal and must keep answering under SEDA_OBS=0.
    obs::health_server_started();
    scheduler_thread_ = std::thread([this] { scheduler_loop(); });
}

std::future<Response> Server::submit(Request req)
{
    if (!tenants_.accepting(req.tenant_id)) {
        // Evicted is a *counted* rejection (deterministic given the submit
        // stream); an id that never existed is a plain usage error.
        if (tenants_.find(req.tenant_id) != nullptr) {
            {
                std::lock_guard lock(mutex_);
                ++stats_.evicted_rejects;
            }
            if (obs::enabled()) {
                static const obs::Counter evicted =
                    obs::Metrics_registry::instance().counter("serve_evicted_rejects_total");
                evicted.add(1);
            }
            throw Seda_error("serve: tenant has been evicted");
        }
        throw Seda_error("serve: request names an unknown tenant");
    }
    const Bytes unit_bytes = cfg_.mem.unit_bytes;
    require(req.addr % unit_bytes == 0, "serve: request address must be unit-aligned");
    if (req.op == Op::write)
        require(req.payload.size() == unit_bytes,
                "serve: write payload must be exactly one unit");

    req.reply.emplace();
    std::future<Response> result = req.reply->get_future();
    req.enqueued_at = std::chrono::steady_clock::now();
    obs::trace_request_begin(req.trace);

    {
        std::lock_guard lock(mutex_);
        require(started_ && !stopped_, "serve: server is not accepting requests");
        ++submitted_;
    }
    if (!queue_.push(req)) {
        // stop() closed the queue between our check and the push; undo the
        // accounting so drain() never waits for a request that was never in.
        {
            std::lock_guard lock(mutex_);
            --submitted_;
        }
        all_done_.notify_all();
        throw Seda_error("serve: server stopped while submitting");
    }
    inflight_gauge().add(1);
    return result;
}

void Server::drain()
{
    obs::health_drain_begin();
    {
        std::unique_lock lock(mutex_);
        // Snapshot the goal up front: requests submitted AFTER drain() began
        // are someone else's to wait for, so concurrent submitters can't
        // starve this call.  completed_ == submitted_ ("nothing in flight at
        // all") also satisfies the contract, and covers a snapshot inflated by
        // a submit whose push lost the race with stop() and was rolled back.
        const u64 target = submitted_;
        all_done_.wait(lock,
                       [&] { return completed_ >= target || completed_ == submitted_; });
    }
    obs::health_drain_end();
}

void Server::stop()
{
    bool join = false;
    bool transitioned = false;
    {
        std::lock_guard lock(mutex_);
        if (stopped_) {
            join = false;
        } else {
            stopped_ = true;
            join = started_;
            transitioned = started_;
        }
    }
    queue_.close();
    if (join && scheduler_thread_.joinable()) scheduler_thread_.join();
    // Balanced against start(): only the call that actually ends a started
    // server's life flips the health plane.
    if (transitioned) obs::health_server_stopped();
}

u32 Server::add_tenant() { return tenants_.add(master_enc_, master_mac_, cfg_.mem, pool_); }

void Server::evict_tenant(u32 id) { tenants_.evict(id); }

Tenant& Server::tenant(u32 id)
{
    Tenant* t = tenants_.find(id);
    require(t != nullptr, "serve: unknown tenant id");
    return *t;
}

Serve_stats Server::stats() const
{
    std::lock_guard lock(mutex_);
    Serve_stats out = stats_;
    // A tenant added after the last dispatch has no counter row yet; size
    // the snapshot so callers can always index by tenant id.
    if (out.tenants.size() < tenants_.size()) out.tenants.resize(tenants_.size());
    return out;
}

void Server::scheduler_loop()
{
    std::vector<Request> run;
    const obs::Histogram admit_wait = obs::stage_histogram(obs::Stage::admit_wait);
    const obs::Histogram batch_requests = obs::stage_histogram(obs::Stage::batch_requests);
    const obs::Counter requests_total =
        obs::Metrics_registry::instance().counter("serve_requests_total");
    const obs::Counter windows_total =
        obs::Metrics_registry::instance().counter("serve_windows_total");
    for (;;) {
        run.clear();
        {
            // The window span covers the whole pop_batch call: linger window
            // plus any idle wait for the first request (docs/OBSERVABILITY.md).
            obs::Stage_span window(obs::Stage::window);
            if (queue_.pop_batch(run, cfg_.max_batch,
                                 std::chrono::microseconds(cfg_.max_wait_us)) == 0)
                return;  // closed + drained
        }
        if (obs::enabled()) {
            windows_total.add(1);
            requests_total.add(run.size());
            batch_requests.record(static_cast<double>(run.size()));
            obs::Flight_recorder::record(obs::Flight_kind::window, obs::k_flight_no_tenant,
                                         0, run.size(), 0);
            // One clock read amortized over the window; replayed requests
            // without a submit timestamp carry no admit-wait sample.
            const auto now = std::chrono::steady_clock::now();
            for (const Request& r : run)
                if (r.enqueued_at.time_since_epoch().count() != 0)
                    admit_wait.record(
                        std::chrono::duration<double, std::micro>(now - r.enqueued_at)
                            .count());
        }
        // Pickup stamps for traced requests: one tick read amortized over
        // the window.  Outside the enabled() block because trace recordings
        // sample requests even under SEDA_OBS=0.
        u64 t_pickup = 0;
        for (Request& r : run)
            if (r.trace.trace_id != 0) {
                if (t_pickup == 0) t_pickup = obs::now_ticks();
                obs::trace_request_pickup(r.trace, t_pickup);
            }
        // Dispatch into a local delta so client submit() calls never
        // contend with the crypto phase for the stats mutex.
        Serve_stats delta;
        scheduler_.dispatch(run, delta);
        inflight_gauge().add(-static_cast<i64>(run.size()));
        export_tenant_metrics(delta);
        {
            std::lock_guard lock(mutex_);
            stats_.merge(delta);
            completed_ += run.size();
        }
        all_done_.notify_all();
    }
}

void Server::export_tenant_metrics(const Serve_stats& delta)
{
    if (!obs::enabled()) return;
    auto& reg = obs::Metrics_registry::instance();
    while (tenant_series_.size() < delta.tenants.size()) {
        const std::string id = std::to_string(tenant_series_.size());
        tenant_series_.push_back({reg.counter("serve_tenant_writes_total", "tenant", id),
                                  reg.counter("serve_tenant_reads_total", "tenant", id),
                                  reg.counter("serve_tenant_ok_total", "tenant", id),
                                  reg.counter("serve_tenant_mac_mismatch_total", "tenant", id),
                                  reg.counter("serve_tenant_replay_total", "tenant", id),
                                  reg.counter("serve_tenant_rejected_total", "tenant", id),
                                  reg.counter("serve_tenant_bytes_total", "tenant", id)});
    }
    for (std::size_t t = 0; t < delta.tenants.size(); ++t) {
        const Tenant_counters& c = delta.tenants[t];
        if (c.writes == 0 && c.reads == 0 && c.rejected == 0) continue;
        const Tenant_series& s = tenant_series_[t];
        if (c.writes != 0) s.writes.add(c.writes);
        if (c.reads != 0) s.reads.add(c.reads);
        if (c.ok != 0) s.ok.add(c.ok);
        if (c.mac_mismatch != 0) s.mac_mismatch.add(c.mac_mismatch);
        if (c.replay_detected != 0) s.replay_detected.add(c.replay_detected);
        if (c.rejected != 0) s.rejected.add(c.rejected);
        if (c.bytes != 0) s.bytes.add(c.bytes);
    }
}

}  // namespace seda::serve
