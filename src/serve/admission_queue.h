// Bounded MPMC admission queue: the front door of the serving layer.
//
// Unlike runtime::Task_queue (unbounded thunks feeding a worker pool), this
// queue carries typed Requests and is *bounded*: when `capacity` requests
// are in flight, push() blocks the producer -- that is the backpressure
// that keeps a closed-loop client fleet from ballooning memory when the
// crypto pipeline is the bottleneck.  try_push() is the non-blocking probe
// for callers that would rather shed load.
//
// pop_batch() is the consumer side of batching: it blocks for the FIRST
// request, then drains up to `max` in one critical section, so a busy
// period hands the scheduler a full coalescing window while an idle server
// still dispatches single requests immediately (no artificial latency
// timer).  An optional `max_wait` bounds a latency-for-batching trade: the
// consumer lingers up to that long for the window to fill, but a lone
// request is never held hostage past the deadline -- and close() cuts the
// window short immediately.
//
// Thread-safety: all methods safe from any thread.  FIFO per queue; per
// producer that means program order, which Batch_scheduler preserves per
// tenant.  close() wakes everyone: producers fail fast, consumers drain
// what was accepted, then see 0.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "common/error.h"
#include "serve/request.h"

namespace seda::serve {

class Admission_queue {
public:
    explicit Admission_queue(std::size_t capacity) : capacity_(capacity)
    {
        require(capacity >= 1, "Admission_queue: capacity must be >= 1");
    }

    /// Blocks while the queue is full; returns false (leaving `r` intact)
    /// only when the queue has been closed.
    [[nodiscard]] bool push(Request& r)
    {
        std::unique_lock lock(mutex_);
        space_.wait(lock, [&] { return closed_ || q_.size() < capacity_; });
        if (closed_) return false;
        q_.push_back(std::move(r));
        lock.unlock();
        ready_.notify_one();
        return true;
    }

    /// Non-blocking push; returns false (leaving `r` intact) when the
    /// queue is full or closed.
    [[nodiscard]] bool try_push(Request& r)
    {
        {
            std::lock_guard lock(mutex_);
            if (closed_ || q_.size() >= capacity_) return false;
            q_.push_back(std::move(r));
        }
        ready_.notify_one();
        return true;
    }

    /// Blocks until at least one request is available (or the queue is
    /// closed and drained), then appends up to `max` requests to `out` in
    /// FIFO order.  With a nonzero `max_wait`, a partial window lingers up
    /// to that long for more arrivals (draining them as they come) before
    /// returning -- bounded extra latency bought for fuller coalescing
    /// windows; zero keeps today's drain-and-go behaviour.  close() ends
    /// the linger immediately.  Returns the number appended; 0 is the
    /// shutdown signal.
    std::size_t pop_batch(std::vector<Request>& out, std::size_t max,
                          std::chrono::microseconds max_wait = std::chrono::microseconds{0})
    {
        require(max >= 1, "Admission_queue::pop_batch: max must be >= 1");
        std::unique_lock lock(mutex_);
        ready_.wait(lock, [&] { return closed_ || !q_.empty(); });
        std::size_t take = 0;
        const auto drain = [&] {
            while (take < max && !q_.empty()) {
                out.push_back(std::move(q_.front()));
                q_.pop_front();
                ++take;
            }
        };
        drain();
        if (take > 0 && take < max && max_wait.count() > 0 && !closed_) {
            // Wake producers after EVERY drain: each one frees capacity,
            // and a producer blocked on a full queue is exactly who could
            // fill this window.
            space_.notify_all();
            const auto deadline = std::chrono::steady_clock::now() + max_wait;
            while (take < max && !closed_) {
                if (!ready_.wait_until(lock, deadline,
                                       [&] { return closed_ || !q_.empty(); }))
                    break;  // window expired
                const std::size_t before = take;
                drain();
                if (take > before) space_.notify_all();
            }
        }
        lock.unlock();
        if (take > 0) space_.notify_all();  // a burst may unblock several producers
        return take;
    }

    /// Rejects future pushes and wakes every waiter.  Idempotent; requests
    /// already accepted remain poppable.
    void close()
    {
        {
            std::lock_guard lock(mutex_);
            closed_ = true;
        }
        ready_.notify_all();
        space_.notify_all();
    }

    [[nodiscard]] std::size_t size() const
    {
        std::lock_guard lock(mutex_);
        return q_.size();
    }

    [[nodiscard]] std::size_t capacity() const { return capacity_; }

private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable ready_;  ///< wakes consumers (data available / closed)
    std::condition_variable space_;  ///< wakes producers (space available / closed)
    std::deque<Request> q_;
    bool closed_ = false;
};

}  // namespace seda::serve
