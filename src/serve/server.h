// serve::Server -- the multi-tenant request front end.
//
// Wiring (one arrow = one thread hop):
//
//   clients ──submit()──▶ Admission_queue ──pop_batch()──▶ scheduler thread
//                                                             │ Batch_scheduler
//                                                             ▼
//                                               per-tenant Secure_session
//                                               (bulk crypto fanned across
//                                                the shared Thread_pool)
//
// Lifecycle: construct → start() → traffic → drain() (everything submitted
// so far has completed) → stop() (close the queue, finish what was
// accepted, join).  stop() is terminal and idempotent; the destructor
// calls it.  Submissions racing stop() either complete normally or throw
// -- no request is silently dropped while holding a live future.
//
// Tenant churn: add_tenant() and evict_tenant() work on the live server.
// The tenant set is a Tenant_table (tenant.h): adds are visible to the
// scheduler immediately, and eviction tombstones the slot -- in-flight
// requests of an evicted tenant complete normally, while new submits are
// rejected with the counted stats().evicted_rejects status.
//
// Roles per thread: any number of client threads block in submit() (queue
// backpressure) and on their futures (closed-loop); ONE scheduler thread
// owns batching and stats; pool workers only ever run shard crypto.  The
// scheduler calls the sessions from outside the pool, which is what the
// no-parallel_for-from-a-pool-task rule requires.
//
// Stats discipline: the scheduler accumulates each dispatch into a local
// delta and merges under the mutex, so submitters never contend with the
// crypto phase; stats() snapshots under the same mutex.  Deterministic
// fields vs timing fields are documented in serve_stats.h.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <future>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "core/secure_memory.h"
#include "runtime/thread_pool.h"
#include "serve/admission_queue.h"
#include "serve/batch_scheduler.h"
#include "serve/request.h"
#include "serve/serve_stats.h"
#include "serve/tenant.h"

namespace seda::serve {

struct Server_config {
    std::size_t tenants = 1;
    std::size_t workers = 0;          ///< crypto pool size (0 = hardware)
    std::size_t queue_capacity = 1024;
    std::size_t max_batch = 256;      ///< coalescing cap per dispatch
    /// Latency-bounded coalescing: a partial window lingers up to this long
    /// for more arrivals before dispatching (0 = dispatch immediately).
    /// Counters stay deterministic either way; only batching changes.
    std::size_t max_wait_us = 0;
    core::Secure_mem_config mem = {}; ///< per-tenant memory configuration
};

class Server {
public:
    /// Builds the pool, the tenants (keys derived from the master pair),
    /// and the queue.  Does not start serving until start().
    Server(std::span<const u8> master_enc, std::span<const u8> master_mac,
           Server_config cfg = {});
    ~Server();  ///< stop()s if still running

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Spawns the scheduler thread.  Must be called exactly once.
    void start();

    /// Validates, timestamps and enqueues `req` (blocking when the queue
    /// is full -- the backpressure a closed-loop client rides), returning
    /// the future its completion fulfills.  Throws Seda_error on a
    /// malformed request or when the server is not accepting.
    [[nodiscard]] std::future<Response> submit(Request req);

    /// Blocks until every request submitted so far has completed.  Other
    /// threads may keep submitting; their requests need a later drain().
    void drain();

    /// Closes the queue (new submits fail), completes everything already
    /// accepted, and joins the scheduler.  Terminal and idempotent.
    void stop();

    /// Adds a tenant to the LIVE server (before or after start()) and
    /// returns its id: keys derive from the same master pair, and requests
    /// for it are admittable as soon as this returns.
    u32 add_tenant();

    /// Evicts a tenant from the live server: requests already admitted
    /// complete normally (the tenant's memory and keys stay alive), while
    /// new submits for it throw and count as stats().evicted_rejects.
    /// Throws Seda_error for an unknown id; idempotent on a known one.
    void evict_tenant(u32 id);

    [[nodiscard]] std::size_t tenant_count() const { return tenants_.size(); }
    [[nodiscard]] Tenant& tenant(u32 id);
    [[nodiscard]] const Server_config& config() const { return cfg_; }

    /// Snapshot of the accumulated stats (consistent: taken under the same
    /// lock the scheduler merges under).
    [[nodiscard]] Serve_stats stats() const;

private:
    void scheduler_loop();
    /// Adds one dispatch delta to the per-tenant labeled registry series
    /// (scheduler thread only; handles are created lazily per tenant).
    void export_tenant_metrics(const Serve_stats& delta);

    /// Cached labeled-series handles for one tenant (obs/metrics.h).
    struct Tenant_series {
        obs::Counter writes, reads, ok, mac_mismatch, replay_detected, rejected, bytes;
    };

    Server_config cfg_;
    runtime::Thread_pool pool_;     ///< shared by every tenant session
    std::vector<u8> master_enc_;    ///< retained for live add_tenant() derivation
    std::vector<u8> master_mac_;
    Tenant_table tenants_;
    Admission_queue queue_;
    Batch_scheduler scheduler_;
    std::thread scheduler_thread_;
    std::vector<Tenant_series> tenant_series_;  ///< scheduler thread only

    mutable std::mutex mutex_;
    std::condition_variable all_done_;
    Serve_stats stats_;        ///< merged per dispatch, under mutex_
    u64 submitted_ = 0;        ///< accepted requests, under mutex_
    u64 completed_ = 0;        ///< fulfilled requests, under mutex_
    bool started_ = false;
    bool stopped_ = false;
};

}  // namespace seda::serve
