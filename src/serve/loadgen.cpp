#include "serve/loadgen.h"

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "obs/stage.h"
#include "serve/server.h"

namespace seda::serve {

namespace {

/// What one client accumulates; summed after join (deterministic).
struct Client_tally {
    u64 status_failures = 0;
    u64 data_mismatches = 0;
};

/// One closed-loop client: write-or-read its own slots, verify every
/// response against a local mirror of its own writes.
void client_loop(Server& server, const Loadgen_config& cfg, u32 tenant, u32 client,
                 Client_tally& tally)
{
    // One span per client lifetime: the trace view shows every closed loop
    // as a lane-long bar, so stragglers stand out against the batch lanes.
    // (Built by append: GCC 12 -Wrestrict false-positives on chained
    // operator+ here, PR105651.)
    std::string span_name = "t";
    span_name += std::to_string(tenant);
    span_name += ".c";
    span_name += std::to_string(client);
    obs::Stage_span span(obs::Stage::client, span_name);
    // Live per-response counter: the --watch differ and the scrape endpoint
    // see progress DURING the run, not just the end-of-run summary.
    static const obs::Counter live_requests = obs::enabled()
        ? obs::Metrics_registry::instance().counter("loadgen_requests_total")
        : obs::Counter{};
    Rng rng(client_seed(cfg.seed, tenant, client));
    const Addr base = static_cast<Addr>(client) * cfg.units_per_client * cfg.unit_bytes;
    std::vector<std::vector<u8>> mirror(cfg.units_per_client);

    for (std::size_t r = 0; r < cfg.requests; ++r) {
        const auto slot = static_cast<std::size_t>(rng.next_below(cfg.units_per_client));
        // First touch of a slot must be a write (a read would be rejected);
        // afterwards a fair coin keeps the op mix near 50/50.
        const bool write = mirror[slot].empty() || rng.next_unit() < 0.5;

        Request req;
        req.tenant_id = tenant;
        req.client_id = client;
        req.seq = r;
        req.op = write ? Op::write : Op::read;
        req.addr = base + slot * cfg.unit_bytes;
        req.layer_id = tenant;
        req.fmap_idx = client;
        req.blk_idx = static_cast<u32>(slot);
        if (write) {
            req.payload.resize(cfg.unit_bytes);
            for (auto& b : req.payload) b = rng.next_byte();
            mirror[slot] = req.payload;
        }

        Response resp = server.submit(std::move(req)).get();
        live_requests.add(1);
        if (resp.status != core::Verify_status::ok) {
            ++tally.status_failures;
            continue;
        }
        if (!write && resp.payload != mirror[slot]) ++tally.data_mismatches;
    }
}

}  // namespace

u64 client_seed(u64 seed, u32 tenant, u32 client)
{
    // Injective pre-mix (tenant/client land in disjoint bit ranges), then
    // SplitMix64 to decorrelate neighbouring ids.
    u64 state = seed ^ (static_cast<u64>(tenant) << 32) ^ (static_cast<u64>(client) + 1);
    return splitmix64(state);
}

std::vector<u8> demo_master_key(u64 seed, u64 tag)
{
    u64 state = seed ^ tag;
    std::vector<u8> key(16);
    for (auto& b : key) b = static_cast<u8>(splitmix64(state));
    return key;
}

Loadgen_result run_loadgen(const Loadgen_config& cfg)
{
    require(cfg.tenants >= 1 && cfg.clients >= 1 && cfg.requests >= 1,
            "loadgen: tenants, clients and requests must all be >= 1");
    require(cfg.units_per_client >= 1, "loadgen: units_per_client must be >= 1");

    Server_config server_cfg;
    server_cfg.tenants = cfg.tenants;
    server_cfg.workers = cfg.jobs;
    server_cfg.queue_capacity = cfg.queue_capacity;
    server_cfg.max_batch = cfg.max_batch;
    server_cfg.max_wait_us = cfg.max_wait_us;
    server_cfg.mem.unit_bytes = cfg.unit_bytes;

    Server server(demo_master_key(cfg.seed, 0xE5C0DE),
                  demo_master_key(cfg.seed, 0x3A5C0DE), server_cfg);
    server.start();

    std::vector<Client_tally> tallies(cfg.tenants * cfg.clients);
    std::vector<std::thread> clients;
    clients.reserve(tallies.size());

    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t t = 0; t < cfg.tenants; ++t)
        for (std::size_t c = 0; c < cfg.clients; ++c)
            clients.emplace_back(client_loop, std::ref(server), std::cref(cfg),
                                 static_cast<u32>(t), static_cast<u32>(c),
                                 std::ref(tallies[t * cfg.clients + c]));
    for (auto& th : clients) th.join();
    server.drain();
    const auto t1 = std::chrono::steady_clock::now();
    server.stop();

    Loadgen_result result;
    result.stats = server.stats();
    result.total_requests = static_cast<u64>(cfg.tenants * cfg.clients * cfg.requests);
    for (const Client_tally& tally : tallies) {
        result.status_failures += tally.status_failures;
        result.data_mismatches += tally.data_mismatches;
    }
    result.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
    return result;
}

}  // namespace seda::serve
