// One tenant of the secure serving layer: isolated keys, isolated memory,
// isolated freshness state.
//
// Multi-tenant isolation is the deployment-critical scenario of the
// GuardNN/SEALs line the paper builds on: many mutually distrusting models
// share one accelerator, so per-tenant data must stay confidential and
// integrity-protected *against the other tenants*, not just the bus
// adversary.  A Tenant therefore owns the full vertical slice:
//
//   * keys     - (enc, mac) derived from the server master keys with
//                crypto::derive_key(label, tenant id); no two tenants --
//                and no tenant and the master -- share a key.
//   * memory   - its own core::Secure_memory (own unit map, own on-chip VN
//                table), fronted by a runtime::Secure_session that shares
//                the server-wide Thread_pool.  Address spaces of different
//                tenants overlap freely and never alias.
//   * engines  - the session's per-worker Baes/Hmac engines are keyed with
//                the tenant keys, so a unit spliced from another tenant's
//                memory fails MAC verification (tests/serve/ holds this,
//                tamper and replay included).
#pragma once

#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/types.h"
#include "core/secure_memory.h"
#include "runtime/secure_session.h"
#include "runtime/thread_pool.h"

namespace seda::serve {

class Tenant {
public:
    /// Derives this tenant's key pair from the master keys and builds its
    /// session over the shared `pool` (which must outlive the tenant).
    Tenant(u32 id, std::span<const u8> master_enc, std::span<const u8> master_mac,
           core::Secure_mem_config cfg, runtime::Thread_pool& pool);

    [[nodiscard]] u32 id() const { return id_; }

    /// The tenant's sharded session (and, through memory(), the attacker
    /// interface the isolation tests drive).
    [[nodiscard]] runtime::Secure_session& session() { return session_; }
    [[nodiscard]] const runtime::Secure_session& session() const { return session_; }

    // Derived keys, exposed for the isolation experiments: "tenant A's
    // engines reject tenant B's units" is only testable if A's keys can be
    // put in front of B's memory.
    [[nodiscard]] std::span<const u8> enc_key() const { return enc_key_; }
    [[nodiscard]] std::span<const u8> mac_key() const { return mac_key_; }

private:
    u32 id_;
    std::vector<u8> enc_key_;  ///< derive_key(master_enc, "seda-tenant-enc", id)
    std::vector<u8> mac_key_;  ///< derive_key(master_mac, "seda-tenant-mac", id)
    runtime::Secure_session session_;
};

/// Registry of a server's tenants, shared by the submit side (validation),
/// the scheduler thread (dispatch), and live-churn callers
/// (Server::add_tenant / evict_tenant).  Ids are dense indices and slots
/// are never reused: eviction tombstones a slot instead of destroying it,
/// because the Tenant object must outlive every request already admitted
/// for it, and a stable unique_ptr per slot keeps Tenant* valid across
/// concurrent add()s (the backing vector may reallocate; the tenants do
/// not move).
///
/// Thread-safety: all methods safe from any thread.  find() hands out raw
/// pointers that stay valid for the table's lifetime; the Tenant itself
/// follows its own threading rules (one batch call at a time per session).
class Tenant_table {
public:
    /// Builds the next tenant (keys derived from the master pair) and
    /// returns its id.
    u32 add(std::span<const u8> master_enc, std::span<const u8> master_mac,
            core::Secure_mem_config cfg, runtime::Thread_pool& pool);

    /// Tombstones `id`: find() keeps resolving it (requests already
    /// admitted complete normally), accepting() turns false (new submits
    /// are rejected at the door).  Throws Seda_error for an unknown id;
    /// idempotent on a known one.
    void evict(u32 id);

    /// Slots ever created, tombstones included (valid ids are < size()).
    [[nodiscard]] std::size_t size() const;

    /// Known and not evicted -- may new requests be admitted for `id`?
    [[nodiscard]] bool accepting(u32 id) const;

    /// The tenant behind `id`, tombstoned or not; nullptr when the id was
    /// never created.
    [[nodiscard]] Tenant* find(u32 id) const;

private:
    struct Slot {
        std::unique_ptr<Tenant> tenant;
        bool evicted = false;
    };

    mutable std::mutex mutex_;
    std::vector<Slot> slots_;
};

}  // namespace seda::serve
