// Closed-loop, deterministic load generator for the serving layer.
//
// Models the north-star traffic shape -- many tenants, many concurrent
// clients each -- as a closed loop: every client submits one request,
// blocks on its future, checks the result, then issues the next.  Offered
// load therefore tracks service capacity (classic closed-loop behaviour),
// and the admission queue's backpressure is exercised for real.
//
// Determinism contract (what CI byte-diffs): each client's request stream
// is a pure function of (seed, tenant, client) -- op choices, slot
// choices, and payload bytes all come from its own seeded Rng, and every
// client owns a disjoint slot range inside its tenant's memory.  So each
// read's expected plaintext depends only on that client's own (ordered)
// history, never on cross-client timing: counters, payload folds, and
// mismatch totals are identical at any --jobs value, any queue capacity,
// any coalescing.  Wall-clock numbers (throughput, latency percentiles)
// are measured, reported, and excluded from the deterministic set.
//
// Each client verifies end to end: response status must be ok and read
// payloads must equal the client's local mirror of its own writes --
// catching any cross-tenant or cross-client bleed the crypto layer missed.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "serve/serve_stats.h"

namespace seda::serve {

struct Loadgen_config {
    std::size_t tenants = 2;
    std::size_t clients = 4;           ///< concurrent closed-loop clients per tenant
    std::size_t requests = 64;         ///< requests per client
    std::size_t jobs = 1;              ///< server crypto workers (0 = hardware)
    std::size_t queue_capacity = 1024;
    std::size_t max_batch = 256;
    std::size_t max_wait_us = 0;       ///< coalescing linger (Server_config::max_wait_us)
    u64 seed = 0x5EDA;
    Bytes unit_bytes = 64;
    std::size_t units_per_client = 16; ///< disjoint slots each client owns
};

struct Loadgen_result {
    Serve_stats stats;          ///< the server's view (deterministic counters + latencies)
    u64 total_requests = 0;
    u64 status_failures = 0;    ///< responses with a non-ok status (expected 0)
    u64 data_mismatches = 0;    ///< ok reads whose payload != the client mirror (expected 0)
    double wall_seconds = 0.0;  ///< submit of first request to drain (timing-bound)

    [[nodiscard]] double requests_per_second() const
    {
        return wall_seconds > 0.0 ? static_cast<double>(total_requests) / wall_seconds
                                  : 0.0;
    }
};

/// Seed of one client's private Rng: an injective mix of (seed, tenant,
/// client) through SplitMix64, so streams never collide or correlate.
[[nodiscard]] u64 client_seed(u64 seed, u32 tenant, u32 client);

/// Expands 16 deterministic master-key bytes from (seed, role tag): the
/// seeded-run convention the loadgen and the inference driver
/// (infer::run_infer) share, so a fixed seed names a fixed server.
[[nodiscard]] std::vector<u8> demo_master_key(u64 seed, u64 tag);

/// Runs the full closed loop: build a Server per `cfg`, fan out
/// tenants x clients client threads, drain, and collect both stat classes.
[[nodiscard]] Loadgen_result run_loadgen(const Loadgen_config& cfg);

}  // namespace seda::serve
