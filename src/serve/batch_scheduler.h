// Batching scheduler: turns a drained run of per-request traffic into
// per-tenant bulk Secure_session calls.
//
// This is the piece that keeps the PR 1-3 crypto substrate fed: a single
// 64 B request through Secure_memory::write()/read() pays the whole
// per-call setup and a lone HMAC, while a coalesced batch streams every
// MAC through the multi-buffer pipeline and every pad through the bulk CTR
// gear.  The scheduler's contract:
//
//   * per-tenant CONFLICT ORDER IS PRESERVED -- within one tenant's
//     admission-ordered stream, operations on DIFFERENT addresses commute
//     (and so do reads of the same address), so the scheduler accumulates
//     one write batch and one read batch per tenant and only flushes when
//     a request touches an address the OPPOSITE pending batch already
//     holds (write-after-pending-read or read-after-pending-write).
//     Random op mixes therefore coalesce into two bulk calls per tenant
//     per window instead of one per op flip, and read-your-writes still
//     holds for any in-order producer.  In-batch write-after-write is
//     handled by stage_writes's supersede rule, in admission order.
//   * tenants are independent -- their memories are disjoint, so the
//     per-tenant batches of one run may dispatch in any order without
//     observable difference; we go in tenant-id order for determinism.
//   * results are scheduling-independent -- which requests share a batch
//     affects only speed, never payloads or statuses (Secure_session's
//     batch path is bit-identical to serial I/O).
//
// Failure containment: a request the bulk path rejects outright (e.g. a
// read of a never-written unit throws Seda_error before any crypto) must
// not take the batch -- or the server -- down.  The segment falls back to
// per-request dispatch; poisoned requests complete with the exception on
// their promise and count as `rejected`, everyone else proceeds normally.
//
// Thread-safety: one dispatch() at a time (the server's scheduler thread);
// the internal staging vectors are reused across calls.
#pragma once

#include <exception>
#include <span>
#include <vector>

#include "core/secure_memory.h"
#include "serve/request.h"
#include "serve/serve_stats.h"
#include "serve/tenant.h"

namespace seda::serve {

class Batch_scheduler {
public:
    /// `tenants` must outlive the scheduler; tenant_id resolves through it,
    /// so tenants added to a live server are dispatchable as soon as add()
    /// returns, and tombstoned tenants keep completing what was admitted.
    explicit Batch_scheduler(Tenant_table& tenants);

    /// Dispatches one drained run: groups by tenant (order preserved),
    /// coalesces maximal same-op segments into bulk session calls, fulfills
    /// every request's promise, and accumulates into `stats` (whose tenants
    /// vector is resized to the tenant count).
    void dispatch(std::span<Request> run, Serve_stats& stats);

private:
    /// Flush one side of the pending state.  The two sides are
    /// address-disjoint by construction, so they commute: a conflict only
    /// has to flush the OPPOSITE side, and the same-op batch keeps
    /// accumulating across it.
    void flush_pending_writes(Tenant& tenant, Serve_stats& stats);
    void flush_pending_reads(Tenant& tenant, Serve_stats& stats);
    void flush_writes(Tenant& tenant, std::span<Request* const> segment,
                      Serve_stats& stats);
    void flush_reads(Tenant& tenant, std::span<Request* const> segment,
                     Serve_stats& stats);
    /// Per-request fallback after a bulk rejection: isolates the poisoned
    /// request(s) without losing the rest of the segment.
    void dispatch_one(Tenant& tenant, Request& req, Serve_stats& stats);
    void complete(Request& req, Response&& resp, Tenant_counters& counters,
                  Serve_stats& stats);
    void reject(Request& req, std::exception_ptr error, Tenant_counters& counters,
                Serve_stats& stats);
    /// Serve_stats latency plus the per-tenant labeled registry histogram
    /// (which carries the request's trace id as an exemplar when sampled).
    void record_latency(const Request& req, Serve_stats& stats);

    Tenant_table& tenants_;
    /// Cached serve_tenant_latency_us{tenant=N} handles, scheduler thread
    /// only, grown lazily (unarmed until first use, like all obs handles).
    std::vector<obs::Histogram> tenant_latency_;

    // Staging scratch reused across dispatches (cleared, not freed).
    std::vector<std::vector<Request*>> per_tenant_;
    std::vector<Request*> pending_writes_;
    std::vector<Request*> pending_reads_;
    // Flat address lists (linear contains()): windows hold a few dozen
    // addresses, where a cache-line scan beats a node-allocating hash set.
    std::vector<Addr> pending_write_addrs_;
    std::vector<Addr> pending_read_addrs_;
    std::vector<core::Secure_memory::Unit_write> writes_;
    std::vector<core::Secure_memory::Unit_read> reads_;
    std::vector<std::vector<u8>> read_bufs_;
};

}  // namespace seda::serve
