// Request/response types of the secure serving layer.
//
// One Request is one protected-unit operation issued by one client of one
// tenant: a protected write (encrypt + MAC + VN bump in the tenant's own
// Secure_memory) or a protected read (verify + decrypt).  The serving
// pipeline moves Requests by value through the admission queue -- they are
// move-only, carrying an optional std::promise the dispatcher fulfills --
// so a request's payload is owned end to end and workers never chase
// caller lifetimes.
//
// Verification *failures* are results, not errors (common/error.h): a
// tampered or replayed unit completes its Request with the corresponding
// Verify_status.  Malformed requests (bad tenant, misaligned address,
// wrong payload size) are usage errors and throw -- at submit() where
// possible, else as an exception delivered through the promise.
#pragma once

#include <chrono>
#include <future>
#include <optional>
#include <vector>

#include "common/types.h"
#include "core/secure_memory.h"
#include "obs/request_trace.h"

namespace seda::serve {

enum class Op : u8 { write, read };

[[nodiscard]] constexpr const char* to_string(Op op)
{
    switch (op) {
        case Op::write: return "write";
        case Op::read: return "read";
    }
    return "?";
}

/// Completion of one Request.  Writes complete with status ok and an empty
/// payload; reads carry the decrypted unit on ok and an empty payload on
/// mac_mismatch / replay_detected.
struct Response {
    core::Verify_status status = core::Verify_status::ok;
    std::vector<u8> payload;
};

/// One queued operation.  (tenant_id, client_id, seq) identify the request
/// for tracing; addr/layer/fmap/blk are the positional-MAC context the
/// tenant's Secure_memory binds (Alg. 2).
struct Request {
    u32 tenant_id = 0;
    u32 client_id = 0;
    u64 seq = 0;  ///< per-client sequence number (client-assigned)
    Op op = Op::write;
    Addr addr = 0;
    std::vector<u8> payload;  ///< write plaintext (one unit); unused for reads
    u32 layer_id = 0;
    u32 fmap_idx = 0;
    u32 blk_idx = 0;

    /// Fulfilled (value or exception) when the request completes; nullopt =
    /// fire-and-forget (the bench path).  Server::submit installs one.
    std::optional<std::promise<Response>> reply;

    /// Set by Server::submit; a zero value means "no timestamp" and the
    /// dispatcher records no latency sample (deterministic bench replays).
    std::chrono::steady_clock::time_point enqueued_at{};

    /// Request-scoped trace stamps (obs/request_trace.h); trace_id == 0
    /// (the untraced/unsampled case) makes every stamp a no-op.
    obs::Trace_context trace;
};

}  // namespace seda::serve
