#include "serve/batch_scheduler.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <string>
#include <utility>

#include "common/bitutil.h"
#include "common/error.h"
#include "obs/flight.h"
#include "obs/request_trace.h"
#include "obs/stage.h"

namespace seda::serve {

using core::Verify_status;

Batch_scheduler::Batch_scheduler(Tenant_table& tenants) : tenants_(tenants) {}

void Batch_scheduler::record_latency(const Request& req, Serve_stats& stats)
{
    if (req.enqueued_at.time_since_epoch().count() == 0) return;  // untimestamped replay
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - req.enqueued_at)
                          .count();
    stats.latency_us.record(us);
    if (obs::enabled()) {
        if (tenant_latency_.size() <= req.tenant_id)
            tenant_latency_.resize(req.tenant_id + std::size_t{1});
        obs::Histogram& h = tenant_latency_[req.tenant_id];
        if (!h.armed())
            h = obs::Metrics_registry::instance().histogram(
                "serve_tenant_latency_us", "tenant", std::to_string(req.tenant_id));
        h.record(us, req.trace.trace_id);
    }
}

void Batch_scheduler::reject(Request& req, std::exception_ptr error,
                             Tenant_counters& counters, Serve_stats& stats)
{
    ++(req.op == Op::write ? counters.writes : counters.reads);
    ++counters.rejected;
    record_latency(req, stats);
    obs::trace_request_finish(req.trace);
    if (req.reply) req.reply->set_exception(std::move(error));
}

void Batch_scheduler::complete(Request& req, Response&& resp, Tenant_counters& counters,
                               Serve_stats& stats)
{
    ++(req.op == Op::write ? counters.writes : counters.reads);
    switch (resp.status) {
        case Verify_status::ok:
            ++counters.ok;
            counters.bytes += req.op == Op::write ? req.payload.size() : resp.payload.size();
            if (req.op == Op::read)
                counters.payload_fold ^= fnv1a64(resp.payload.data(), resp.payload.size());
            break;
        case Verify_status::mac_mismatch:
            ++counters.mac_mismatch;
            counters.failures.push_back(
                {req.addr, req.layer_id, req.fmap_idx, req.blk_idx, resp.status});
            break;
        case Verify_status::replay_detected:
            ++counters.replay_detected;
            counters.failures.push_back(
                {req.addr, req.layer_id, req.fmap_idx, req.blk_idx, resp.status});
            break;
    }
    if (resp.status != Verify_status::ok)
        obs::Flight_recorder::detect(obs::Flight_kind::detect, req.tenant_id, req.addr,
                                     req.layer_id, req.fmap_idx, req.blk_idx,
                                     static_cast<u8>(resp.status));
    record_latency(req, stats);
    obs::trace_request_finish(req.trace);
    if (req.reply) req.reply->set_value(std::move(resp));
}

void Batch_scheduler::dispatch_one(Tenant& tenant, Request& req, Serve_stats& stats)
{
    Tenant_counters& counters = stats.tenants[req.tenant_id];
    core::Secure_memory& mem = tenant.session().memory();
    obs::Flight_recorder::record(obs::Flight_kind::fallback, req.tenant_id, req.addr, 1,
                                 mem.config().unit_bytes);
    // Same adversary window as the bulk paths, so per-request fallback
    // dispatch offers the tap identical injection points.
    mem.pull_dram_tap();
    // The fallback memory op is this request's "crypto" phase, so a traced
    // request keeps its full decomposition off the bulk path too.
    const bool traced = req.trace.trace_id != 0;
    const u64 tf0 = traced ? obs::now_ticks() : 0;
    try {
        if (req.op == Op::write) {
            mem.write(req.addr, req.payload, req.layer_id, req.fmap_idx, req.blk_idx);
            if (traced) obs::trace_request_flush(req.trace, tf0, obs::now_ticks());
            complete(req, {Verify_status::ok, {}}, counters, stats);
        } else {
            std::vector<u8> out(mem.config().unit_bytes);
            const Verify_status status =
                mem.read(req.addr, out, req.layer_id, req.fmap_idx, req.blk_idx);
            if (traced) obs::trace_request_flush(req.trace, tf0, obs::now_ticks());
            Response resp{status,
                          status == Verify_status::ok ? std::move(out) : std::vector<u8>{}};
            complete(req, std::move(resp), counters, stats);
        }
    } catch (...) {
        if (traced) obs::trace_request_flush(req.trace, tf0, obs::now_ticks());
        reject(req, std::current_exception(), counters, stats);
    }
}

void Batch_scheduler::flush_writes(Tenant& tenant, std::span<Request* const> segment,
                                   Serve_stats& stats)
{
    writes_.clear();
    bool traced = false;
    for (Request* r : segment) {
        writes_.push_back({r->addr, r->payload, r->layer_id, r->fmap_idx, r->blk_idx});
        traced |= r->trace.trace_id != 0;
    }
    const u64 tf0 = traced ? obs::now_ticks() : 0;
    try {
        obs::Stage_span span(obs::Stage::flush_write);
        tenant.session().write_units(writes_);
    } catch (const Seda_error&) {
        // stage_writes validates before mutating, so a rejected batch wrote
        // nothing: re-dispatching per request is exact, and only the
        // poisoned entries fail.
        for (Request* r : segment) dispatch_one(tenant, *r, stats);
        return;
    }
    if (traced) {
        const u64 tf1 = obs::now_ticks();
        for (Request* r : segment) obs::trace_request_flush(r->trace, tf0, tf1);
    }
    ++stats.batches;
    Tenant_counters& counters = stats.tenants[tenant.id()];
    obs::Stage_span span(obs::Stage::complete);
    for (Request* r : segment) complete(*r, {Verify_status::ok, {}}, counters, stats);
}

void Batch_scheduler::flush_reads(Tenant& tenant, std::span<Request* const> segment,
                                  Serve_stats& stats)
{
    const Bytes unit_bytes = tenant.session().memory().config().unit_bytes;
    if (read_bufs_.size() < segment.size()) read_bufs_.resize(segment.size());
    reads_.clear();
    bool traced = false;
    for (std::size_t i = 0; i < segment.size(); ++i) {
        read_bufs_[i].resize(unit_bytes);
        reads_.push_back({segment[i]->addr, read_bufs_[i], segment[i]->layer_id,
                          segment[i]->fmap_idx, segment[i]->blk_idx});
        traced |= segment[i]->trace.trace_id != 0;
    }

    const u64 tf0 = traced ? obs::now_ticks() : 0;
    std::vector<Verify_status> statuses;
    try {
        obs::Stage_span span(obs::Stage::flush_read);
        statuses = tenant.session().read_units(reads_);
    } catch (const Seda_error&) {
        // The bulk read path locates every unit before touching any output,
        // so a rejected batch read nothing; fall back per request.
        for (Request* r : segment) dispatch_one(tenant, *r, stats);
        return;
    }
    if (traced) {
        const u64 tf1 = obs::now_ticks();
        for (Request* r : segment) obs::trace_request_flush(r->trace, tf0, tf1);
    }
    ++stats.batches;
    Tenant_counters& counters = stats.tenants[tenant.id()];
    obs::Stage_span span(obs::Stage::complete);
    for (std::size_t i = 0; i < segment.size(); ++i) {
        Request& req = *segment[i];
        const Verify_status status = statuses[i];
        ++counters.reads;
        switch (status) {
            case Verify_status::ok:
                ++counters.ok;
                counters.bytes += read_bufs_[i].size();
                counters.payload_fold ^= fnv1a64(read_bufs_[i].data(), read_bufs_[i].size());
                break;
            case Verify_status::mac_mismatch:
                ++counters.mac_mismatch;
                counters.failures.push_back(
                    {req.addr, req.layer_id, req.fmap_idx, req.blk_idx, status});
                break;
            case Verify_status::replay_detected:
                ++counters.replay_detected;
                counters.failures.push_back(
                    {req.addr, req.layer_id, req.fmap_idx, req.blk_idx, status});
                break;
        }
        if (status != Verify_status::ok)
            obs::Flight_recorder::detect(obs::Flight_kind::detect, req.tenant_id, req.addr,
                                         req.layer_id, req.fmap_idx, req.blk_idx,
                                         static_cast<u8>(status));
        record_latency(req, stats);
        obs::trace_request_finish(req.trace);
        // Only surrender the buffer when someone is waiting for it; the
        // fire-and-forget path keeps reusing it allocation-free.
        if (req.reply)
            req.reply->set_value({status, status == Verify_status::ok
                                              ? std::move(read_bufs_[i])
                                              : std::vector<u8>{}});
    }
}

void Batch_scheduler::flush_pending_writes(Tenant& tenant, Serve_stats& stats)
{
    if (!pending_writes_.empty()) flush_writes(tenant, pending_writes_, stats);
    pending_writes_.clear();
    pending_write_addrs_.clear();
}

void Batch_scheduler::flush_pending_reads(Tenant& tenant, Serve_stats& stats)
{
    if (!pending_reads_.empty()) flush_reads(tenant, pending_reads_, stats);
    pending_reads_.clear();
    pending_read_addrs_.clear();
}

void Batch_scheduler::dispatch(std::span<Request> run, Serve_stats& stats)
{
    // Snapshot the tenant count once: every request in `run` was admitted
    // against the table, so its tenant already existed when the run was
    // drained (tenants added mid-dispatch only matter for the next run).
    const std::size_t tenant_count = tenants_.size();
    {
        obs::Stage_span span(obs::Stage::assembly);
        if (stats.tenants.size() < tenant_count) stats.tenants.resize(tenant_count);
        if (per_tenant_.size() < tenant_count) per_tenant_.resize(tenant_count);
        for (auto& bucket : per_tenant_) bucket.clear();
        for (Request& r : run) {
            require(r.tenant_id < tenant_count,
                    "Batch_scheduler: request names an unknown tenant");
            per_tenant_[r.tenant_id].push_back(&r);
        }
    }
    stats.requests += run.size();

    for (std::size_t t = 0; t < tenant_count; ++t) {
        if (per_tenant_[t].empty()) continue;
        Tenant& tenant = *tenants_.find(static_cast<u32>(t));
        // Accumulate one write batch and one read batch; only an address
        // conflict against the OPPOSITE pending batch forces a flush, so a
        // random op mix still coalesces into ~two bulk calls per window.
        const auto contains = [](const std::vector<Addr>& addrs, Addr a) {
            return std::find(addrs.begin(), addrs.end(), a) != addrs.end();
        };
        for (Request* r : per_tenant_[t]) {
            if (r->op == Op::write) {
                if (contains(pending_read_addrs_, r->addr))
                    flush_pending_reads(tenant, stats);
                pending_writes_.push_back(r);
                pending_write_addrs_.push_back(r->addr);
            } else {
                if (contains(pending_write_addrs_, r->addr))
                    flush_pending_writes(tenant, stats);
                pending_reads_.push_back(r);
                pending_read_addrs_.push_back(r->addr);
            }
        }
        flush_pending_writes(tenant, stats);
        flush_pending_reads(tenant, stats);
    }
}

}  // namespace seda::serve
