// Serving-layer statistics: per-tenant counters plus the global sample set.
//
// The counters split into two determinism classes, and the split is
// load-bearing for CI:
//
//   * deterministic  - writes/reads/ok/mac_mismatch/replay/rejected/bytes
//                      and payload_fold depend only on the request streams
//                      (closed-loop clients with disjoint address ranges),
//                      NOT on scheduling, coalescing, or worker count.
//                      `seda_cli loadgen --json` prints exactly these, so
//                      the output is byte-diffable across --jobs values.
//   * timing-bound   - batches (how traffic happened to coalesce) and
//                      latency_us (wall clock).  Human-readable output
//                      only; never part of the JSON contract.
//
// payload_fold is an XOR of FNV-1a digests of successful read payloads:
// XOR is commutative, so the fold is independent of completion order --
// the same trick SeDA's layer MACs use (crypto/mac.h, Xor_mac_accumulator).
#pragma once

#include <vector>

#include "common/types.h"
#include "core/verify_status.h"
#include "obs/histogram.h"

namespace seda::serve {

/// One verification failure with full positional attribution: which unit,
/// under which bound MAC context (layer / fmap / blk), with which outcome.
/// The scheduler completes a tenant's requests in admission order, so a
/// tenant whose failing probes come from a single submitter observes its
/// failure records exactly in submission order at ANY worker count -- the
/// property the attack campaign's exact-attribution ledger relies on.
struct Failure_record {
    Addr addr = 0;
    u32 layer_id = 0;
    u32 fmap_idx = 0;
    u32 blk_idx = 0;
    core::Verify_status status = core::Verify_status::ok;

    [[nodiscard]] bool operator==(const Failure_record&) const = default;
};

/// Counters for one tenant's completed requests.
struct Tenant_counters {
    u64 writes = 0;
    u64 reads = 0;
    u64 ok = 0;
    u64 mac_mismatch = 0;
    u64 replay_detected = 0;
    u64 rejected = 0;      ///< completed with an exception (e.g. never-written read)
    u64 bytes = 0;         ///< payload bytes moved (written in + read out, ok only)
    u64 payload_fold = 0;  ///< XOR of fnv1a64(payload) over ok reads
    /// Every non-ok verification this tenant's requests produced, in
    /// completion order (== admission order per tenant).  Deterministic
    /// like the counters above: which requests fail is a property of the
    /// request streams and the adversary, not of batching or --jobs.
    std::vector<Failure_record> failures;

    /// Accumulates another row (counts add, folds XOR, failures append).
    Tenant_counters& operator+=(const Tenant_counters& o)
    {
        writes += o.writes;
        reads += o.reads;
        ok += o.ok;
        mac_mismatch += o.mac_mismatch;
        replay_detected += o.replay_detected;
        rejected += o.rejected;
        bytes += o.bytes;
        payload_fold ^= o.payload_fold;
        failures.insert(failures.end(), o.failures.begin(), o.failures.end());
        return *this;
    }

    [[nodiscard]] bool operator==(const Tenant_counters&) const = default;
};

/// Whole-server view: one Tenant_counters per tenant plus global samples.
struct Serve_stats {
    std::vector<Tenant_counters> tenants;
    u64 requests = 0;  ///< requests dispatched (deterministic)
    u64 batches = 0;   ///< bulk session calls issued (timing-dependent)
    /// Submits rejected at the door because the named tenant was evicted
    /// (deterministic given the submit stream; the request was never
    /// admitted, so it appears in no tenant row).
    u64 evicted_rejects = 0;
    /// Per-request wall latency (timestamped submits only).  Log-scale
    /// bucketed: memory stays bounded at ANY request count, deltas merge by
    /// bucket addition, and p50/p99/p999 read back exact to ~3% bucket
    /// resolution over ALL of time -- unlike the capped sample ring this
    /// replaces, whose percentiles described only a recent window.
    obs::Log_histogram latency_us;

    /// Sums every tenant row (folds XOR together, as the fold order-freedom
    /// allows).
    [[nodiscard]] Tenant_counters totals() const
    {
        Tenant_counters t;
        for (const Tenant_counters& c : tenants) t += c;
        return t;
    }

    /// Accumulates `delta` (produced by one dispatch) into this view.
    void merge(const Serve_stats& delta)
    {
        if (tenants.size() < delta.tenants.size()) tenants.resize(delta.tenants.size());
        for (std::size_t i = 0; i < delta.tenants.size(); ++i)
            tenants[i] += delta.tenants[i];
        requests += delta.requests;
        batches += delta.batches;
        evicted_rejects += delta.evicted_rejects;
        latency_us.merge(delta.latency_us);
    }
};

}  // namespace seda::serve
