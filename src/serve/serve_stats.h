// Serving-layer statistics: per-tenant counters plus the global sample set.
//
// The counters split into two determinism classes, and the split is
// load-bearing for CI:
//
//   * deterministic  - writes/reads/ok/mac_mismatch/replay/rejected/bytes
//                      and payload_fold depend only on the request streams
//                      (closed-loop clients with disjoint address ranges),
//                      NOT on scheduling, coalescing, or worker count.
//                      `seda_cli loadgen --json` prints exactly these, so
//                      the output is byte-diffable across --jobs values.
//   * timing-bound   - batches (how traffic happened to coalesce) and
//                      latencies_us (wall clock).  Human-readable output
//                      only; never part of the JSON contract.
//
// payload_fold is an XOR of FNV-1a digests of successful read payloads:
// XOR is commutative, so the fold is independent of completion order --
// the same trick SeDA's layer MACs use (crypto/mac.h, Xor_mac_accumulator).
#pragma once

#include <vector>

#include "common/types.h"

namespace seda::serve {

/// Counters for one tenant's completed requests.
struct Tenant_counters {
    u64 writes = 0;
    u64 reads = 0;
    u64 ok = 0;
    u64 mac_mismatch = 0;
    u64 replay_detected = 0;
    u64 rejected = 0;      ///< completed with an exception (e.g. never-written read)
    u64 bytes = 0;         ///< payload bytes moved (written in + read out, ok only)
    u64 payload_fold = 0;  ///< XOR of fnv1a64(payload) over ok reads

    /// Accumulates another row (counts add, folds XOR).
    Tenant_counters& operator+=(const Tenant_counters& o)
    {
        writes += o.writes;
        reads += o.reads;
        ok += o.ok;
        mac_mismatch += o.mac_mismatch;
        replay_detected += o.replay_detected;
        rejected += o.rejected;
        bytes += o.bytes;
        payload_fold ^= o.payload_fold;
        return *this;
    }
};

/// Whole-server view: one Tenant_counters per tenant plus global samples.
struct Serve_stats {
    /// Retained latency samples are capped (most recent k_max kept), so a
    /// long-running server's stats stay bounded; percentiles then describe
    /// a recent window rather than all time.
    static constexpr std::size_t k_max_latency_samples = 1 << 16;

    std::vector<Tenant_counters> tenants;
    u64 requests = 0;  ///< requests dispatched (deterministic)
    u64 batches = 0;   ///< bulk session calls issued (timing-dependent)
    /// Submits rejected at the door because the named tenant was evicted
    /// (deterministic given the submit stream; the request was never
    /// admitted, so it appears in no tenant row).
    u64 evicted_rejects = 0;
    std::vector<double> latencies_us;  ///< per-request wall latency, when timestamped

    /// Sums every tenant row (folds XOR together, as the fold order-freedom
    /// allows).
    [[nodiscard]] Tenant_counters totals() const
    {
        Tenant_counters t;
        for (const Tenant_counters& c : tenants) t += c;
        return t;
    }

    /// Accumulates `delta` (produced by one dispatch) into this view.
    void merge(const Serve_stats& delta)
    {
        if (tenants.size() < delta.tenants.size()) tenants.resize(delta.tenants.size());
        for (std::size_t i = 0; i < delta.tenants.size(); ++i)
            tenants[i] += delta.tenants[i];
        requests += delta.requests;
        batches += delta.batches;
        evicted_rejects += delta.evicted_rejects;
        // Ring-overwrite once saturated: percentiles don't care about
        // order, so the oldest sample is simply replaced in place (no
        // per-merge front-erase memmove).
        for (const double v : delta.latencies_us) {
            if (latencies_us.size() < k_max_latency_samples) {
                latencies_us.push_back(v);
            } else {
                latencies_us[latency_cursor_] = v;
                latency_cursor_ = (latency_cursor_ + 1) % k_max_latency_samples;
            }
        }
    }

private:
    std::size_t latency_cursor_ = 0;  ///< next ring slot once saturated
};

}  // namespace seda::serve
