#include "serve/tenant.h"

#include "common/error.h"
#include "crypto/kdf.h"

namespace seda::serve {

Tenant::Tenant(u32 id, std::span<const u8> master_enc, std::span<const u8> master_mac,
               core::Secure_mem_config cfg, runtime::Thread_pool& pool)
    : id_(id),
      enc_key_(crypto::derive_key(master_enc, "seda-tenant-enc", id)),
      mac_key_(crypto::derive_key(master_mac, "seda-tenant-mac", id)),
      session_(enc_key_, mac_key_, cfg, pool)
{
    // Per-tenant attribution for the forensic flight record: every flush
    // this session issues carries the tenant id.
    session_.set_flight_tenant(id);
}

u32 Tenant_table::add(std::span<const u8> master_enc, std::span<const u8> master_mac,
                      core::Secure_mem_config cfg, runtime::Thread_pool& pool)
{
    // Key derivation and session construction could run outside the lock,
    // but the id must be allocated first -- and churn is rare next to
    // dispatch, so the simple critical section wins.
    std::lock_guard lock(mutex_);
    const u32 id = static_cast<u32>(slots_.size());
    slots_.push_back({std::make_unique<Tenant>(id, master_enc, master_mac, cfg, pool),
                      false});
    return id;
}

void Tenant_table::evict(u32 id)
{
    std::lock_guard lock(mutex_);
    require(id < slots_.size(), "Tenant_table::evict: unknown tenant id");
    slots_[id].evicted = true;
}

std::size_t Tenant_table::size() const
{
    std::lock_guard lock(mutex_);
    return slots_.size();
}

bool Tenant_table::accepting(u32 id) const
{
    std::lock_guard lock(mutex_);
    return id < slots_.size() && !slots_[id].evicted;
}

Tenant* Tenant_table::find(u32 id) const
{
    std::lock_guard lock(mutex_);
    return id < slots_.size() ? slots_[id].tenant.get() : nullptr;
}

}  // namespace seda::serve
