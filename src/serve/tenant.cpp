#include "serve/tenant.h"

#include "crypto/kdf.h"

namespace seda::serve {

Tenant::Tenant(u32 id, std::span<const u8> master_enc, std::span<const u8> master_mac,
               core::Secure_mem_config cfg, runtime::Thread_pool& pool)
    : id_(id),
      enc_key_(crypto::derive_key(master_enc, "seda-tenant-enc", id)),
      mac_key_(crypto::derive_key(master_mac, "seda-tenant-mac", id)),
      session_(enc_key_, mac_key_, cfg, pool)
{
}

}  // namespace seda::serve
