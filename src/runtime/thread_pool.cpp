#include "runtime/thread_pool.h"

#include <algorithm>
#include <exception>

namespace seda::runtime {

std::vector<Index_range> shard_ranges(std::size_t n, std::size_t shards)
{
    std::vector<Index_range> ranges;
    if (n == 0 || shards == 0) return ranges;
    const std::size_t used = std::min(n, shards);
    const std::size_t base = n / used;
    const std::size_t extra = n % used;
    ranges.reserve(used);
    std::size_t begin = 0;
    for (std::size_t s = 0; s < used; ++s) {
        const std::size_t len = base + (s < extra ? 1 : 0);
        ranges.push_back({begin, begin + len});
        begin += len;
    }
    return ranges;
}

std::size_t Thread_pool::default_workers()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

Thread_pool::Thread_pool(std::size_t workers)
{
    const std::size_t count = workers == 0 ? default_workers() : workers;
    workers_.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

Thread_pool::~Thread_pool()
{
    queue_.close();
    for (auto& t : workers_) t.join();
}

void Thread_pool::worker_loop()
{
    // packaged_task catches the task's exception for the future; the loop
    // itself only ever sees clean returns.
    while (auto task = queue_.pop()) (*task)();
}

void Thread_pool::parallel_for(std::size_t n,
                               const std::function<void(std::size_t, Index_range)>& body)
{
    const auto ranges = shard_ranges(n, size());
    std::vector<std::future<void>> joins;
    joins.reserve(ranges.size());
    for (std::size_t s = 0; s < ranges.size(); ++s)
        joins.push_back(submit([&body, s, range = ranges[s]] { body(s, range); }));

    // Join everything before rethrowing: sibling shards may still be
    // touching caller stack frames.
    std::exception_ptr first_failure;
    for (auto& j : joins) {
        try {
            j.get();
        } catch (...) {
            if (!first_failure) first_failure = std::current_exception();
        }
    }
    if (first_failure) std::rethrow_exception(first_failure);
}

}  // namespace seda::runtime
