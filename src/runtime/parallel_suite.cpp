#include "runtime/parallel_suite.h"

#include <future>
#include <string>

#include "runtime/thread_pool.h"

namespace seda::runtime {

std::vector<core::Suite_result> run_suites_parallel(
    std::span<const accel::Npu_config> npus,
    std::span<const std::string_view> scheme_ids, std::size_t jobs,
    std::span<const std::string_view> models, const protect::Perf_params& params,
    const core::Seda_config& seda_cfg)
{
    if (jobs == 1) {
        std::vector<core::Suite_result> results;
        results.reserve(npus.size());
        for (const auto& npu : npus)
            results.push_back(core::run_suite(npu, scheme_ids, models, params, seda_cfg));
        return results;
    }

    Thread_pool pool(jobs);
    const auto model_names = core::suite_models(models);

    // Stage 1 tasks: the scheme-independent columns -- one accelerator
    // trace and baseline run per (npu, model).  shared_future so every cell
    // of a column can consume it without a barrier between the stages.
    std::vector<std::vector<std::shared_future<core::Suite_column>>> columns(npus.size());
    for (std::size_t n = 0; n < npus.size(); ++n) {
        columns[n].reserve(model_names.size());
        for (const auto& model : model_names)
            columns[n].push_back(pool.submit([&npu = npus[n], model, &params] {
                return core::make_suite_column(model, npu, params);
            }));
    }

    // Stage 2 tasks: every (npu, scheme, model) cell, each with its own
    // scheme instance, starting as soon as its column is ready.  A cell
    // blocking in column.get() can never wait on a *queued* column, because
    // Task_queue is FIFO and all column tasks were enqueued first -- its
    // column is either done or already running on another worker.  Futures
    // are collected in legend/zoo order, so the merge below reproduces the
    // serial result exactly regardless of which worker finishes first.
    std::vector<std::vector<std::vector<std::future<core::Workload_point>>>> cells(
        npus.size());
    for (std::size_t n = 0; n < npus.size(); ++n) {
        cells[n].resize(scheme_ids.size());
        for (std::size_t s = 0; s < scheme_ids.size(); ++s) {
            cells[n][s].reserve(model_names.size());
            for (std::size_t m = 0; m < model_names.size(); ++m)
                cells[n][s].push_back(pool.submit(
                    [column = columns[n][m], model = model_names[m],
                     scheme = std::string(scheme_ids[s]), &params, &seda_cfg] {
                        return core::run_suite_cell(column.get(), model, scheme, params,
                                                    seda_cfg);
                    }));
        }
    }

    std::vector<core::Suite_result> results(npus.size());
    for (std::size_t n = 0; n < npus.size(); ++n) {
        results[n].npu_name = npus[n].name;
        results[n].series.reserve(scheme_ids.size());
        for (std::size_t s = 0; s < scheme_ids.size(); ++s) {
            core::Scheme_series series;
            series.scheme = std::string(scheme_ids[s]);
            series.points.reserve(model_names.size());
            for (auto& f : cells[n][s]) series.points.push_back(f.get());
            results[n].series.push_back(std::move(series));
        }
    }
    return results;
}

core::Suite_result run_suite_parallel(const accel::Npu_config& npu,
                                      std::span<const std::string_view> scheme_ids,
                                      std::size_t jobs,
                                      std::span<const std::string_view> models,
                                      const protect::Perf_params& params,
                                      const core::Seda_config& seda_cfg)
{
    return run_suites_parallel({&npu, 1}, scheme_ids, jobs, models, params, seda_cfg)
        .front();
}

}  // namespace seda::runtime
