// Fixed-size worker pool with futures-based join and exception propagation.
//
// This is the execution substrate for everything parallel in the repo: the
// suite driver fans (scheme x model x NPU) cells across it, Secure_session
// shards tile crypto across it, and future scaling work (request serving,
// multi-tenant traffic) is expected to reuse it rather than spawn ad-hoc
// threads.  Design points:
//
//   * submit() returns a std::future; an exception thrown by the task is
//     captured there and rethrows at .get(), so worker threads never die.
//   * parallel_for() joins *every* shard before rethrowing the first
//     failure -- callers' stack frames referenced by sibling shards must
//     stay alive until all shards stop touching them.
//   * A pool of one worker still runs tasks on that worker (never inline),
//     so code behaves identically -- just serially -- at jobs=1.
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "runtime/task_queue.h"

namespace seda::runtime {

/// Balanced contiguous [begin, end) shards of `n` items over at most
/// `shards` workers: the first `n % shards` ranges get one extra item and
/// empty ranges are never produced.  Shared by Secure_session and
/// parallel_for so shard boundaries (and thus per-worker engine pairing)
/// are consistent everywhere.
struct Index_range {
    std::size_t begin = 0;
    std::size_t end = 0;

    [[nodiscard]] std::size_t size() const { return end - begin; }
    [[nodiscard]] bool operator==(const Index_range&) const = default;
};

[[nodiscard]] std::vector<Index_range> shard_ranges(std::size_t n, std::size_t shards);

class Thread_pool {
public:
    /// `workers == 0` means default_workers().
    explicit Thread_pool(std::size_t workers = 0);

    /// Closes the queue and joins.  Tasks already submitted still run.
    ~Thread_pool();

    Thread_pool(const Thread_pool&) = delete;
    Thread_pool& operator=(const Thread_pool&) = delete;

    [[nodiscard]] std::size_t size() const { return workers_.size(); }

    /// Hardware concurrency with a floor of 1 (hardware_concurrency() may
    /// legally report 0).
    [[nodiscard]] static std::size_t default_workers();

    /// Enqueues `fn` and returns the future holding its result (or its
    /// exception).  Safe from any thread, including pool workers -- but a
    /// task that *blocks* on another task's future can deadlock a saturated
    /// pool; prefer structuring work as independent cells.
    template <typename Fn>
    [[nodiscard]] std::future<std::invoke_result_t<std::decay_t<Fn>>> submit(Fn&& fn)
    {
        using Result = std::invoke_result_t<std::decay_t<Fn>>;
        // shared_ptr because Task_queue::Task (std::function) requires a
        // copyable callable while packaged_task is move-only.
        auto task = std::make_shared<std::packaged_task<Result()>>(std::forward<Fn>(fn));
        std::future<Result> future = task->get_future();
        if (!queue_.push([task] { (*task)(); })) {
            // Pool is shutting down: run inline so the future is never
            // abandoned in a never-ready state.
            (*task)();
        }
        return future;
    }

    /// Splits [0, n) into one contiguous shard per worker and runs
    /// `body(shard_index, range)` on the pool, blocking until every shard
    /// has finished.  The first shard exception (in shard order) is
    /// rethrown after the join.
    void parallel_for(std::size_t n,
                      const std::function<void(std::size_t, Index_range)>& body);

private:
    void worker_loop();

    Task_queue queue_;
    std::vector<std::thread> workers_;
};

}  // namespace seda::runtime
