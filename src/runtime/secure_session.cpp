#include "runtime/secure_session.h"

namespace seda::runtime {

Secure_session::Secure_session(std::span<const u8> enc_key, std::span<const u8> mac_key,
                               core::Secure_mem_config cfg, std::size_t workers)
    : mem_(enc_key, mac_key, cfg),
      pool_(workers)
{
    engines_.reserve(pool_.size());
    for (std::size_t w = 0; w < pool_.size(); ++w)
        engines_.push_back({crypto::Baes_engine(enc_key), crypto::Hmac_engine(mac_key)});
}

void Secure_session::write_units(std::span<const core::Secure_memory::Unit_write> batch)
{
    // Validation, VN bumps and slot insertion happen here, serially and in
    // batch order -- so a bad entry throws before any worker starts.
    const auto slots = mem_.stage_writes(batch);

    pool_.parallel_for(slots.size(), [&](std::size_t worker, Index_range range) {
        Worker_engines& eng = engines_[worker];
        std::vector<crypto::Block16> pads;  // per-shard pad scratch
        // Whole-shard bulk phase: B-AES per slot, then every MAC of the
        // shard through the multi-buffer HMAC pipeline in one call
        // (superseded entries are skipped inside).
        const std::span<const core::Secure_memory::Write_slot> shard(
            slots.data() + range.begin, range.size());
        core::Secure_memory::encrypt_slots(shard, eng.baes, eng.hmac, pads);
    });
}

std::vector<core::Verify_status> Secure_session::read_units(
    std::span<const core::Secure_memory::Unit_read> batch)
{
    std::vector<core::Verify_status> statuses(batch.size());

    pool_.parallel_for(batch.size(), [&](std::size_t worker, Index_range range) {
        const Worker_engines& eng = engines_[worker];
        std::vector<crypto::Block16> pads;
        // Shard-wide bulk verify-and-decrypt: expected MACs batch through
        // the multi-buffer pipeline, statuses land in this shard's slice.
        mem_.read_units_with(batch.subspan(range.begin, range.size()), eng.baes,
                             eng.hmac, pads,
                             std::span<core::Verify_status>(statuses)
                                 .subspan(range.begin, range.size()));
    });
    return statuses;
}

}  // namespace seda::runtime
