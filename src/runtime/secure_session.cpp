#include "runtime/secure_session.h"

#include "obs/flight.h"

namespace seda::runtime {

namespace {

// Batches below this many units run inline on the caller's thread: a pool
// hop (one submit + future join per shard) costs more than the crypto of a
// handful of 64 B units, and the serving layer's coalescing windows would
// otherwise pay that hop per dispatch.  Purely a scheduling choice -- the
// bit-identical-to-serial contract holds on both sides of the threshold.
constexpr std::size_t k_inline_batch_units = 64;

}  // namespace

Secure_session::Secure_session(std::span<const u8> enc_key, std::span<const u8> mac_key,
                               core::Secure_mem_config cfg, std::size_t workers)
    : mem_(enc_key, mac_key, cfg),
      owned_pool_(std::make_unique<Thread_pool>(workers)),
      pool_(owned_pool_.get())
{
    build_workers(enc_key, mac_key);
}

Secure_session::Secure_session(std::span<const u8> enc_key, std::span<const u8> mac_key,
                               core::Secure_mem_config cfg, Thread_pool& pool)
    : mem_(enc_key, mac_key, cfg), pool_(&pool)
{
    build_workers(enc_key, mac_key);
}

void Secure_session::build_workers(std::span<const u8> enc_key, std::span<const u8> mac_key)
{
    workers_.reserve(pool_->size());
    for (std::size_t w = 0; w < pool_->size(); ++w)
        workers_.push_back(
            {crypto::Baes_engine(enc_key), crypto::Hmac_engine(mac_key), {}});
}

void Secure_session::write_units(std::span<const core::Secure_memory::Unit_write> batch)
{
    obs::Flight_recorder::record(obs::Flight_kind::flush_write, flight_tenant_,
                                 batch.empty() ? 0 : batch.front().addr, batch.size(),
                                 batch.size() * mem_.config().unit_bytes);
    // The bus adversary's window: between flushes, before any unit of this
    // batch is staged, on the one thread that owns the memory right now.
    mem_.pull_dram_tap();

    // Validation, VN bumps and slot insertion happen here, serially and in
    // batch order -- so a bad entry throws before any worker starts.
    const auto slots = mem_.stage_writes(batch);

    if (slots.size() <= k_inline_batch_units) {
        Worker_state& ws = workers_.front();
        core::Secure_memory::encrypt_slots(slots, ws.baes, ws.hmac, ws.scratch);
        return;
    }

    pool_->parallel_for(slots.size(), [&](std::size_t worker, Index_range range) {
        Worker_state& ws = workers_[worker];
        // Whole-shard bulk phase: B-AES per slot, then every MAC of the
        // shard through the multi-buffer HMAC pipeline in one call
        // (superseded entries are skipped inside).
        const std::span<const core::Secure_memory::Write_slot> shard(
            slots.data() + range.begin, range.size());
        core::Secure_memory::encrypt_slots(shard, ws.baes, ws.hmac, ws.scratch);
    });
}

std::vector<core::Verify_status> Secure_session::read_units(
    std::span<const core::Secure_memory::Unit_read> batch)
{
    obs::Flight_recorder::record(obs::Flight_kind::flush_read, flight_tenant_,
                                 batch.empty() ? 0 : batch.front().addr, batch.size(),
                                 batch.size() * mem_.config().unit_bytes);
    // Same adversary window as the write path: before any verification of
    // this batch starts, never concurrent with it.
    mem_.pull_dram_tap();

    std::vector<core::Verify_status> statuses(batch.size());

    if (batch.size() <= k_inline_batch_units) {
        Worker_state& ws = workers_.front();
        mem_.read_units_with(batch, ws.baes, ws.hmac, ws.scratch, statuses);
        return statuses;
    }

    pool_->parallel_for(batch.size(), [&](std::size_t worker, Index_range range) {
        Worker_state& ws = workers_[worker];
        // Shard-wide bulk verify-and-decrypt: expected MACs batch through
        // the multi-buffer pipeline, statuses land in this shard's slice.
        mem_.read_units_with(batch.subspan(range.begin, range.size()), ws.baes,
                             ws.hmac, ws.scratch,
                             std::span<core::Verify_status>(statuses)
                                 .subspan(range.begin, range.size()));
    });
    return statuses;
}

}  // namespace seda::runtime
