// Bounded-by-lifetime MPMC task queue: the hand-off between Thread_pool's
// submitters and its workers.
//
// Semantics are deliberately minimal: push() enqueues a type-erased thunk,
// pop() blocks until a thunk or closure arrives, close() wakes every waiter
// and makes further pushes fail.  Tasks already queued at close() time are
// still drained -- a pool destructor must run what was promised, because
// submitters may already hold futures for it.
//
// Thread-safety: every method is safe from any thread concurrently (one
// mutex guards the deque; the condition variable carries wakeups).  FIFO
// order is guaranteed per queue, but with multiple workers popping, task
// *completion* order is unspecified -- determinism must come from the
// caller (see parallel_suite.h's ordered merge and secure_session.h's
// fixed shard geometry).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <utility>

namespace seda::runtime {

class Task_queue {
public:
    using Task = std::function<void()>;

    /// Enqueues a task.  Returns false (dropping the task) when the queue
    /// has been closed.
    bool push(Task task)
    {
        {
            std::lock_guard lock(mutex_);
            if (closed_) return false;
            tasks_.push_back(std::move(task));
        }
        ready_.notify_one();
        return true;
    }

    /// Blocks until a task is available or the queue is closed and drained;
    /// returns nullopt only in the latter case (worker shutdown signal).
    std::optional<Task> pop()
    {
        std::unique_lock lock(mutex_);
        ready_.wait(lock, [&] { return closed_ || !tasks_.empty(); });
        if (tasks_.empty()) return std::nullopt;
        Task task = std::move(tasks_.front());
        tasks_.pop_front();
        return task;
    }

    /// Rejects future pushes and wakes every blocked pop().  Idempotent.
    void close()
    {
        {
            std::lock_guard lock(mutex_);
            closed_ = true;
        }
        ready_.notify_all();
    }

private:
    mutable std::mutex mutex_;
    std::condition_variable ready_;
    std::deque<Task> tasks_;
    bool closed_ = false;
};

}  // namespace seda::runtime
