// Sharded, multi-worker front end over core::Secure_memory.
//
// A tile transfer is embarrassingly parallel on the crypto axis: every unit
// is encrypted/MAC'd (or verified/decrypted) independently.  What is *not*
// parallel is the bookkeeping -- VN bumps and unit-map insertion mutate the
// trusted on-chip state in write order.  Secure_session splits the two:
//
//   write_units:  serial stage (Secure_memory::stage_writes -- VN per entry,
//                 slot per address, duplicate entries superseded exactly as
//                 serial ordering would) then the expensive crypto phase
//                 fanned across contiguous per-worker shards, each shard
//                 running B-AES per unit and one bulk multi-buffer HMAC
//                 call for its whole slot range (encrypt_slots).
//   read_units:   no staging needed; each shard bulk-verifies and decrypts
//                 its contiguous range via the const read_units_with path.
//
// Small batches (the serving layer's coalescing windows) skip the pool and
// run inline on the caller's thread -- the pool hop costs more than the
// crypto of a few dozen units; output is identical either way.
//
// Determinism contract: shard boundaries come from shard_ranges(n, workers)
// -- pure arithmetic on (n, workers), independent of scheduling -- and
// every unit's ciphertext/MAC depends only on its own slot, so the
// resulting memory state and statuses are bit-for-bit identical to the
// serial batch path at ANY worker count -- including which units of a
// tampered tile report mac_mismatch / replay_detected
// (tests/runtime/secure_session_test.cpp holds this against the serial
// path on ragged sizes).
//
// Thread-safety: every shard owns its own Worker_state -- a Baes_engine /
// Hmac_engine pair (keyed with the session keys) plus the bulk pad/MAC
// scratch, reused across batches -- so no crypto state is shared at all and
// the steady-state batch path allocates nothing.  The session itself is
// thread-compatible like its substrate: one batch call at a time per
// session; the attacker interface stays available through memory().
//
// Pool sharing: a session either owns its Thread_pool (the standalone
// constructors) or borrows one (the serving layer runs one pool under many
// tenant sessions).  Distinct sessions sharing a pool may dispatch
// concurrently -- each session's Worker_state array is private, and the
// pool's queue is MPMC -- as long as no batch call is issued *from* a pool
// task (a blocked parallel_for inside a saturated pool can deadlock).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/secure_memory.h"
#include "crypto/baes.h"
#include "crypto/mac.h"
#include "runtime/thread_pool.h"

namespace seda::runtime {

class Secure_session {
public:
    /// `workers == 0` means Thread_pool::default_workers().  Keys are the
    /// same pair Secure_memory takes; each worker gets engines keyed with
    /// them.
    Secure_session(std::span<const u8> enc_key, std::span<const u8> mac_key,
                   core::Secure_mem_config cfg = {}, std::size_t workers = 0);

    /// Shares `pool` instead of owning one; `pool` must outlive the
    /// session.  One Worker_state per pool worker, exactly as the owning
    /// constructors build.
    Secure_session(std::span<const u8> enc_key, std::span<const u8> mac_key,
                   core::Secure_mem_config cfg, Thread_pool& pool);

    /// The underlying memory: serial I/O, fold_all_macs, and the attacker
    /// interface (tamper/swap/snapshot/rollback) all remain usable.
    [[nodiscard]] core::Secure_memory& memory() { return mem_; }
    [[nodiscard]] const core::Secure_memory& memory() const { return mem_; }

    [[nodiscard]] std::size_t workers() const { return pool_->size(); }

    /// Tags this session's flight-recorder flush events with a tenant id
    /// (obs/flight.h; default: untagged).  The serving layer sets it so the
    /// forensic record attributes bus activity per tenant.
    void set_flight_tenant(u32 tenant) { flight_tenant_ = tenant; }

    /// Sharded batch write; state afterwards is bit-identical to
    /// memory().write_units(batch).
    void write_units(std::span<const core::Secure_memory::Unit_write> batch);

    /// Sharded batch read; statuses and plaintext are identical to
    /// memory().read_units(batch), with per-unit tamper/replay detection.
    [[nodiscard]] std::vector<core::Verify_status> read_units(
        std::span<const core::Secure_memory::Unit_read> batch);

private:
    /// Shared-nothing per-worker state: engines keyed with the session keys
    /// plus the bulk crypto scratch, which persists across batches so the
    /// steady-state path is allocation-free.
    struct Worker_state {
        crypto::Baes_engine baes;
        crypto::Hmac_engine hmac;
        core::Secure_memory::Bulk_scratch scratch;
    };

    void build_workers(std::span<const u8> enc_key, std::span<const u8> mac_key);

    core::Secure_memory mem_;
    u32 flight_tenant_ = 0xFFFFFFFFu;      ///< obs::k_flight_no_tenant until tagged
    std::vector<Worker_state> workers_;    ///< one per pool worker
    std::unique_ptr<Thread_pool> owned_pool_;  ///< null when the pool is shared
    Thread_pool* pool_;                    ///< owned_pool_.get() or the shared pool
};

}  // namespace seda::runtime
