// Concurrent driver for the Fig. 5/6 comparison suite.
//
// The (scheme x model x NPU) matrix of core::run_suite is embarrassingly
// parallel: every cell simulates against an immutable trace with its own
// scheme instance (core::run_suite_cell constructs one via make_scheme), so
// workers share no mutable state.  The driver fans the scheme-independent
// model columns out first, then every cell, and merges results in the exact
// legend/zoo order the serial loop produces -- output is byte-identical to
// core::run_suite at any worker count, which the determinism tests and the
// CI `--jobs 8` vs `--jobs 1` diff both hold.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/experiment.h"

namespace seda::runtime {

/// Parallel core::run_suite: same inputs plus a worker count.
/// `jobs == 0` means Thread_pool::default_workers(); `jobs == 1` runs the
/// serial path inline (no pool).
[[nodiscard]] core::Suite_result run_suite_parallel(
    const accel::Npu_config& npu, std::span<const std::string_view> scheme_ids,
    std::size_t jobs, std::span<const std::string_view> models = {},
    const protect::Perf_params& params = {}, const core::Seda_config& seda_cfg = {});

/// The full multi-NPU sweep (e.g. Fig. 5 server + Fig. 6 edge) through one
/// shared pool: all cells of all NPUs compete for the same workers, so a
/// wide matrix saturates the machine even when one NPU's tail is short.
/// Results are ordered like the `npus` argument.
[[nodiscard]] std::vector<core::Suite_result> run_suites_parallel(
    std::span<const accel::Npu_config> npus,
    std::span<const std::string_view> scheme_ids, std::size_t jobs,
    std::span<const std::string_view> models = {},
    const protect::Perf_params& params = {}, const core::Seda_config& seda_cfg = {});

}  // namespace seda::runtime
