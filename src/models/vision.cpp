// Computer-vision workloads: LeNet, AlexNet, MobileNet-v1, ResNet-18,
// GoogLeNet (Inception-v1) and Tiny-YOLO v2.
#include <string>

#include "models/zoo.h"

namespace seda::models {

using accel::Layer_desc;
using accel::Model_desc;

namespace {

/// Convolution specified by its *output* spatial size; the padded ifmap size
/// is derived as (out-1)*stride + filter, which keeps every conv "valid".
Layer_desc conv_out(std::string name, int oh, int ow, int cin, int fh, int fw, int cout,
                    int stride)
{
    return Layer_desc::make_conv(std::move(name), (oh - 1) * stride + fh,
                                 (ow - 1) * stride + fw, cin, fh, fw, cout, stride);
}

Layer_desc dw_out(std::string name, int oh, int ow, int c, int fh, int stride)
{
    return Layer_desc::make_dwconv(std::move(name), (oh - 1) * stride + fh,
                                   (ow - 1) * stride + fh, c, fh, fh, stride);
}

Layer_desc pool2(std::string name, int ih, int iw, int c)
{
    return Layer_desc::make_pool(std::move(name), ih, iw, c, 2, 2);
}

/// One GoogLeNet inception module: 1x1, 1x1->3x3, 1x1->5x5, pool-proj 1x1.
void inception(Model_desc& m, const std::string& tag, int hw, int cin, int b1, int b3r,
               int b3, int b5r, int b5, int bp)
{
    m.layers.push_back(conv_out(tag + "_1x1", hw, hw, cin, 1, 1, b1, 1));
    m.layers.push_back(conv_out(tag + "_3x3r", hw, hw, cin, 1, 1, b3r, 1));
    m.layers.push_back(conv_out(tag + "_3x3", hw, hw, b3r, 3, 3, b3, 1));
    m.layers.push_back(conv_out(tag + "_5x5r", hw, hw, cin, 1, 1, b5r, 1));
    m.layers.push_back(conv_out(tag + "_5x5", hw, hw, b5r, 5, 5, b5, 1));
    m.layers.push_back(conv_out(tag + "_poolproj", hw, hw, cin, 1, 1, bp, 1));
}

}  // namespace

Model_desc lenet()
{
    Model_desc m;
    m.name = "lenet";
    m.layers = {
        Layer_desc::make_conv("conv1", 32, 32, 1, 5, 5, 6, 1),
        pool2("pool1", 28, 28, 6),
        Layer_desc::make_conv("conv2", 14, 14, 6, 5, 5, 16, 1),
        pool2("pool2", 10, 10, 16),
        Layer_desc::make_fc("fc1", 400, 120),
        Layer_desc::make_fc("fc2", 120, 84),
        Layer_desc::make_fc("fc3", 84, 10),
    };
    return m;
}

Model_desc alexnet()
{
    Model_desc m;
    m.name = "alexnet";
    m.layers = {
        Layer_desc::make_conv("conv1", 227, 227, 3, 11, 11, 96, 4),
        pool2("pool1", 54, 54, 96),
        conv_out("conv2", 27, 27, 96, 5, 5, 256, 1),
        pool2("pool2", 26, 26, 256),
        conv_out("conv3", 13, 13, 256, 3, 3, 384, 1),
        conv_out("conv4", 13, 13, 384, 3, 3, 384, 1),
        conv_out("conv5", 13, 13, 384, 3, 3, 256, 1),
        pool2("pool5", 12, 12, 256),
        Layer_desc::make_fc("fc6", 9216, 4096),
        Layer_desc::make_fc("fc7", 4096, 4096),
        Layer_desc::make_fc("fc8", 4096, 1000),
    };
    return m;
}

Model_desc mobilenet()
{
    Model_desc m;
    m.name = "mobilenet";
    m.layers.push_back(conv_out("conv1", 112, 112, 3, 3, 3, 32, 2));

    struct Block {
        int out_hw;
        int cin;
        int cout;
        int stride;
    };
    // MobileNet-v1 body: 13 depthwise-separable blocks.
    const Block blocks[] = {
        {112, 32, 64, 1},  {56, 64, 128, 2},  {56, 128, 128, 1}, {28, 128, 256, 2},
        {28, 256, 256, 1}, {14, 256, 512, 2}, {14, 512, 512, 1}, {14, 512, 512, 1},
        {14, 512, 512, 1}, {14, 512, 512, 1}, {14, 512, 512, 1}, {7, 512, 1024, 2},
        {7, 1024, 1024, 1},
    };
    int idx = 1;
    for (const Block& b : blocks) {
        m.layers.push_back(
            dw_out("dw" + std::to_string(idx), b.out_hw, b.out_hw, b.cin, 3, b.stride));
        m.layers.push_back(
            conv_out("pw" + std::to_string(idx), b.out_hw, b.out_hw, b.cin, 1, 1, b.cout, 1));
        ++idx;
    }
    m.layers.push_back(Layer_desc::make_pool("avgpool", 7, 7, 1024, 7, 7));
    m.layers.push_back(Layer_desc::make_fc("fc", 1024, 1000));
    return m;
}

Model_desc resnet18()
{
    Model_desc m;
    m.name = "resnet18";
    m.layers.push_back(conv_out("conv1", 112, 112, 3, 7, 7, 64, 2));
    m.layers.push_back(pool2("maxpool", 112, 112, 64));

    struct Stage {
        int hw;
        int cin;
        int cout;
    };
    const Stage stages[] = {{56, 64, 64}, {28, 64, 128}, {14, 128, 256}, {7, 256, 512}};
    for (int s = 0; s < 4; ++s) {
        const Stage& st = stages[s];
        const std::string tag = "layer" + std::to_string(s + 1);
        const int first_stride = s == 0 ? 1 : 2;
        // Block 1 (possibly downsampling, with 1x1 projection shortcut).
        m.layers.push_back(
            conv_out(tag + "_b1c1", st.hw, st.hw, st.cin, 3, 3, st.cout, first_stride));
        m.layers.push_back(conv_out(tag + "_b1c2", st.hw, st.hw, st.cout, 3, 3, st.cout, 1));
        if (first_stride != 1)
            m.layers.push_back(
                conv_out(tag + "_proj", st.hw, st.hw, st.cin, 1, 1, st.cout, first_stride));
        // Block 2.
        m.layers.push_back(conv_out(tag + "_b2c1", st.hw, st.hw, st.cout, 3, 3, st.cout, 1));
        m.layers.push_back(conv_out(tag + "_b2c2", st.hw, st.hw, st.cout, 3, 3, st.cout, 1));
    }
    m.layers.push_back(Layer_desc::make_pool("avgpool", 7, 7, 512, 7, 7));
    m.layers.push_back(Layer_desc::make_fc("fc", 512, 1000));
    return m;
}

Model_desc googlenet()
{
    Model_desc m;
    m.name = "googlenet";
    m.layers.push_back(conv_out("conv1", 112, 112, 3, 7, 7, 64, 2));
    m.layers.push_back(pool2("pool1", 112, 112, 64));
    m.layers.push_back(conv_out("conv2r", 56, 56, 64, 1, 1, 64, 1));
    m.layers.push_back(conv_out("conv2", 56, 56, 64, 3, 3, 192, 1));
    m.layers.push_back(pool2("pool2", 56, 56, 192));

    inception(m, "3a", 28, 192, 64, 96, 128, 16, 32, 32);
    inception(m, "3b", 28, 256, 128, 128, 192, 32, 96, 64);
    m.layers.push_back(pool2("pool3", 28, 28, 480));
    inception(m, "4a", 14, 480, 192, 96, 208, 16, 48, 64);
    inception(m, "4b", 14, 512, 160, 112, 224, 24, 64, 64);
    inception(m, "4c", 14, 512, 128, 128, 256, 24, 64, 64);
    inception(m, "4d", 14, 512, 112, 144, 288, 32, 64, 64);
    inception(m, "4e", 14, 528, 256, 160, 320, 32, 128, 128);
    m.layers.push_back(pool2("pool4", 14, 14, 832));
    inception(m, "5a", 7, 832, 256, 160, 320, 32, 128, 128);
    inception(m, "5b", 7, 832, 384, 192, 384, 48, 128, 128);
    m.layers.push_back(Layer_desc::make_pool("avgpool", 7, 7, 1024, 7, 7));
    m.layers.push_back(Layer_desc::make_fc("fc", 1024, 1000));
    return m;
}

Model_desc yolo_tiny()
{
    Model_desc m;
    m.name = "yolo_tiny";
    m.layers = {
        conv_out("conv1", 416, 416, 3, 3, 3, 16, 1),
        pool2("pool1", 416, 416, 16),
        conv_out("conv2", 208, 208, 16, 3, 3, 32, 1),
        pool2("pool2", 208, 208, 32),
        conv_out("conv3", 104, 104, 32, 3, 3, 64, 1),
        pool2("pool3", 104, 104, 64),
        conv_out("conv4", 52, 52, 64, 3, 3, 128, 1),
        pool2("pool4", 52, 52, 128),
        conv_out("conv5", 26, 26, 128, 3, 3, 256, 1),
        pool2("pool5", 26, 26, 256),
        conv_out("conv6", 13, 13, 256, 3, 3, 512, 1),
        conv_out("conv7", 13, 13, 512, 3, 3, 1024, 1),
        conv_out("conv8", 13, 13, 1024, 3, 3, 1024, 1),
        conv_out("conv9", 13, 13, 1024, 1, 1, 125, 1),
    };
    return m;
}

}  // namespace seda::models
