// Sequence workloads: DeepSpeech2, Sentimental_seqCNN, Transformer (forward
// pass), and the AlphaGoZero policy/value network.
#include <string>

#include "models/zoo.h"

namespace seda::models {

using accel::Layer_desc;
using accel::Model_desc;

namespace {

Layer_desc conv_out(std::string name, int oh, int ow, int cin, int fh, int fw, int cout,
                    int stride)
{
    return Layer_desc::make_conv(std::move(name), (oh - 1) * stride + fh,
                                 (ow - 1) * stride + fw, cin, fh, fw, cout, stride);
}

}  // namespace

Model_desc deepspeech2()
{
    Model_desc m;
    m.name = "deepspeech2";
    // 161-bin spectrogram, ~200 frames; two 2-D convolution front-end layers.
    m.layers.push_back(conv_out("conv1", 81, 100, 1, 41, 11, 32, 2));
    m.layers.push_back(conv_out("conv2", 41, 50, 32, 21, 11, 32, 2));
    // Five bidirectional GRU layers, hidden 800: input/recurrent GEMMs per
    // timestep batch, lowered as (frames x features x 3*hidden*2dirs).
    m.layers.push_back(Layer_desc::make_matmul("gru1", 50, 41 * 32, 4800));
    for (int i = 2; i <= 5; ++i)
        m.layers.push_back(
            Layer_desc::make_matmul("gru" + std::to_string(i), 50, 1600, 4800));
    m.layers.push_back(Layer_desc::make_fc("fc", 1600, 29));
    return m;
}

Model_desc sentimental_seqcnn()
{
    Model_desc m;
    m.name = "sentimental_seqcnn";
    // Token embedding (30k vocab, d=128) over a 256-token review, then 1-D
    // convolutions over the sequence and a 2-way classifier.
    m.layers.push_back(Layer_desc::make_embedding("embed", 30000, 128, 256));
    m.layers.push_back(conv_out("conv1d_1", 256, 1, 128, 3, 1, 128, 1));
    m.layers.push_back(conv_out("conv1d_2", 256, 1, 128, 3, 1, 128, 1));
    m.layers.push_back(conv_out("conv1d_3", 128, 1, 128, 3, 1, 128, 2));
    m.layers.push_back(Layer_desc::make_fc("fc1", 128 * 128, 128));
    m.layers.push_back(Layer_desc::make_fc("fc2", 128, 2));
    return m;
}

Model_desc transformer_fwd()
{
    Model_desc m;
    m.name = "transformer_fwd";
    // Transformer-base encoder forward pass: d_model=512, seq=256, 6 layers.
    constexpr int seq = 256;
    constexpr int d = 512;
    constexpr int ffn = 2048;
    m.layers.push_back(Layer_desc::make_embedding("embed", 32000, d, seq));
    for (int l = 1; l <= 6; ++l) {
        const std::string tag = "enc" + std::to_string(l);
        m.layers.push_back(Layer_desc::make_matmul(tag + "_qkv", seq, d, 3 * d));
        // Attention scores and context; the 8 heads are folded into one GEMM
        // with the same MAC count (M=seq, K=d, N=seq).
        m.layers.push_back(Layer_desc::make_matmul(tag + "_scores", seq, d, seq));
        m.layers.push_back(Layer_desc::make_matmul(tag + "_context", seq, seq, d));
        m.layers.push_back(Layer_desc::make_matmul(tag + "_proj", seq, d, d));
        m.layers.push_back(Layer_desc::make_matmul(tag + "_ffn1", seq, d, ffn));
        m.layers.push_back(Layer_desc::make_matmul(tag + "_ffn2", seq, ffn, d));
    }
    m.layers.push_back(Layer_desc::make_matmul("lm_head", seq, d, 32000));
    return m;
}

Model_desc alphagozero()
{
    Model_desc m;
    m.name = "alphagozero";
    // 19x19 board, 17 input planes, 256-filter residual tower (9 blocks).
    m.layers.push_back(conv_out("stem", 19, 19, 17, 3, 3, 256, 1));
    for (int b = 1; b <= 9; ++b) {
        const std::string tag = "res" + std::to_string(b);
        m.layers.push_back(conv_out(tag + "_c1", 19, 19, 256, 3, 3, 256, 1));
        m.layers.push_back(conv_out(tag + "_c2", 19, 19, 256, 3, 3, 256, 1));
    }
    // Policy head.
    m.layers.push_back(conv_out("policy_conv", 19, 19, 256, 1, 1, 2, 1));
    m.layers.push_back(Layer_desc::make_fc("policy_fc", 722, 362));
    // Value head.
    m.layers.push_back(conv_out("value_conv", 19, 19, 256, 1, 1, 1, 1));
    m.layers.push_back(Layer_desc::make_fc("value_fc1", 361, 256));
    m.layers.push_back(Layer_desc::make_fc("value_fc2", 256, 1));
    return m;
}

}  // namespace seda::models
