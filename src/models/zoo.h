// The 13 DNN workloads of the paper's evaluation (Sec. IV-A), spanning
// computer vision, speech, NLP, gaming and recommendation:
//   lenet (let), alexnet (alex), mobilenet (mob), resnet18 (rest),
//   googlenet (goo), dlrm, alphagozero (algo), deepspeech2 (ds2),
//   fasterrcnn (fast), ncf, sentimental_seqcnn (sent), transformer_fwd (trf),
//   yolo_tiny (yolo).
//
// Topologies follow the published architectures at batch 1 (SCALE-Sim
// convention); padded ifmap dims are encoded directly so all convolutions
// are "valid", exactly as SCALE-Sim topology files do.
#pragma once

#include <span>
#include <string>
#include <string_view>

#include "accel/layer.h"

namespace seda::models {

[[nodiscard]] accel::Model_desc lenet();
[[nodiscard]] accel::Model_desc alexnet();
[[nodiscard]] accel::Model_desc mobilenet();
[[nodiscard]] accel::Model_desc resnet18();
[[nodiscard]] accel::Model_desc googlenet();
[[nodiscard]] accel::Model_desc dlrm();
[[nodiscard]] accel::Model_desc alphagozero();
[[nodiscard]] accel::Model_desc deepspeech2();
[[nodiscard]] accel::Model_desc fasterrcnn();
[[nodiscard]] accel::Model_desc ncf();
[[nodiscard]] accel::Model_desc sentimental_seqcnn();
[[nodiscard]] accel::Model_desc transformer_fwd();
[[nodiscard]] accel::Model_desc yolo_tiny();

struct Zoo_entry {
    std::string_view short_name;  ///< the x-axis label used in Figs. 1/5/6
    std::string_view full_name;
    accel::Model_desc (*factory)();
};

/// All 13 workloads in the paper's plotting order.
[[nodiscard]] std::span<const Zoo_entry> all_models();

/// Lookup by short or full name; throws Seda_error if unknown.
[[nodiscard]] accel::Model_desc model_by_name(std::string_view name);

}  // namespace seda::models
