#include "models/zoo.h"

#include <array>

#include "common/error.h"

namespace seda::models {

namespace {

constexpr std::array<Zoo_entry, 13> k_zoo = {{
    {"let", "lenet", &lenet},
    {"alex", "alexnet", &alexnet},
    {"mob", "mobilenet", &mobilenet},
    {"rest", "resnet18", &resnet18},
    {"goo", "googlenet", &googlenet},
    {"dlrm", "dlrm", &dlrm},
    {"algo", "alphagozero", &alphagozero},
    {"ds2", "deepspeech2", &deepspeech2},
    {"fast", "fasterrcnn", &fasterrcnn},
    {"ncf", "ncf", &ncf},
    {"sent", "sentimental_seqcnn", &sentimental_seqcnn},
    {"trf", "transformer_fwd", &transformer_fwd},
    {"yolo", "yolo_tiny", &yolo_tiny},
}};

}  // namespace

std::span<const Zoo_entry> all_models() { return k_zoo; }

accel::Model_desc model_by_name(std::string_view name)
{
    for (const auto& e : k_zoo)
        if (e.short_name == name || e.full_name == name) return e.factory();
    throw Seda_error("model_by_name: unknown model '" + std::string(name) + "'");
}

}  // namespace seda::models
