// Recommendation / detection workloads: DLRM, NCF and Faster R-CNN.
#include <string>

#include "models/zoo.h"

namespace seda::models {

using accel::Layer_desc;
using accel::Model_desc;

namespace {

Layer_desc conv_out(std::string name, int oh, int ow, int cin, int fh, int fw, int cout,
                    int stride)
{
    return Layer_desc::make_conv(std::move(name), (oh - 1) * stride + fh,
                                 (ow - 1) * stride + fw, cin, fh, fw, cout, stride);
}

Layer_desc pool2(std::string name, int ih, int iw, int c)
{
    return Layer_desc::make_pool(std::move(name), ih, iw, c, 2, 2);
}

}  // namespace

Model_desc dlrm()
{
    Model_desc m;
    m.name = "dlrm";
    constexpr int batch = 128;
    // Bottom MLP over 13 dense features (MLPerf DLRM dimensions).
    m.layers.push_back(Layer_desc::make_matmul("bot1", batch, 13, 512));
    m.layers.push_back(Layer_desc::make_matmul("bot2", batch, 512, 256));
    m.layers.push_back(Layer_desc::make_matmul("bot3", batch, 256, 128));
    // 26 sparse-feature embedding tables, d=128, one lookup per sample.
    for (int t = 1; t <= 26; ++t)
        m.layers.push_back(Layer_desc::make_embedding("emb" + std::to_string(t), 100000,
                                                      128, batch));
    // Top MLP over the pairwise-interaction features.
    m.layers.push_back(Layer_desc::make_matmul("top1", batch, 27 * 128, 1024));
    m.layers.push_back(Layer_desc::make_matmul("top2", batch, 1024, 1024));
    m.layers.push_back(Layer_desc::make_matmul("top3", batch, 1024, 512));
    m.layers.push_back(Layer_desc::make_matmul("top4", batch, 512, 256));
    m.layers.push_back(Layer_desc::make_matmul("top5", batch, 256, 1));
    return m;
}

Model_desc ncf()
{
    Model_desc m;
    m.name = "ncf";
    constexpr int batch = 256;
    m.layers.push_back(Layer_desc::make_embedding("user_emb", 138000, 64, batch));
    m.layers.push_back(Layer_desc::make_embedding("item_emb", 27000, 64, batch));
    m.layers.push_back(Layer_desc::make_matmul("mlp1", batch, 128, 256));
    m.layers.push_back(Layer_desc::make_matmul("mlp2", batch, 256, 256));
    m.layers.push_back(Layer_desc::make_matmul("mlp3", batch, 256, 128));
    m.layers.push_back(Layer_desc::make_matmul("mlp4", batch, 128, 64));
    m.layers.push_back(Layer_desc::make_matmul("predict", batch, 64, 1));
    return m;
}

Model_desc fasterrcnn()
{
    Model_desc m;
    m.name = "fasterrcnn";
    // VGG-16 backbone at 224x224.
    const struct {
        int hw;
        int cin;
        int cout;
    } vgg[] = {
        {224, 3, 64},   {224, 64, 64},                    // conv1_x + pool
        {112, 64, 128}, {112, 128, 128},                  // conv2_x + pool
        {56, 128, 256}, {56, 256, 256},  {56, 256, 256},  // conv3_x + pool
        {28, 256, 512}, {28, 512, 512},  {28, 512, 512},  // conv4_x + pool
        {14, 512, 512}, {14, 512, 512},  {14, 512, 512},  // conv5_x
    };
    int idx = 1;
    int prev_hw = 224;
    for (const auto& v : vgg) {
        if (v.hw != prev_hw) {
            m.layers.push_back(pool2("pool" + std::to_string(idx), prev_hw, prev_hw, v.cin));
            prev_hw = v.hw;
        }
        m.layers.push_back(conv_out("conv" + std::to_string(idx), v.hw, v.hw, v.cin, 3, 3,
                                    v.cout, 1));
        ++idx;
    }
    // Region-proposal network on the conv5 feature map.
    m.layers.push_back(conv_out("rpn_conv", 14, 14, 512, 3, 3, 512, 1));
    m.layers.push_back(conv_out("rpn_cls", 14, 14, 512, 1, 1, 18, 1));
    m.layers.push_back(conv_out("rpn_bbox", 14, 14, 512, 1, 1, 36, 1));
    // Detection head over pooled ROIs (7x7x512).
    m.layers.push_back(Layer_desc::make_fc("fc6", 25088, 4096));
    m.layers.push_back(Layer_desc::make_fc("fc7", 4096, 4096));
    m.layers.push_back(Layer_desc::make_fc("cls_score", 4096, 21));
    m.layers.push_back(Layer_desc::make_fc("bbox_pred", 4096, 84));
    return m;
}

}  // namespace seda::models
