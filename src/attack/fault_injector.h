// Fault_injector: the campaign's dram::Dram_tap implementation.
//
// Prober threads ARM adversary moves (closures over Secure_memory's
// attacker interface) at any time; the serving data path EXECUTES them at
// its next tap pull -- which happens on the scheduler thread, at the head
// of a flush, when no legitimate crypto is in flight on ANY tenant's
// memory (the server has exactly one scheduler thread and the session's
// shard fan-out joins before the flush returns).  One injector may
// therefore be shared across every tenant of a server: wherever the pull
// fires, running the queued moves is serialized against all traffic, and a
// move may safely touch a different tenant's memory than the one flushing
// (the cross-tenant splice does exactly that).
//
// Ordering guarantee the campaign relies on: a probe request submitted
// AFTER arm() returns can only be dispatched after a pull that ran the
// armed move -- every flush pulls first -- so "arm, then probe, then
// assert the detection" is race-free by construction.
#pragma once

#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "common/types.h"
#include "dram/dram_tap.h"

namespace seda::attack {

class Fault_injector final : public dram::Dram_tap {
public:
    /// Queues one adversary move; it runs inside the next pull().
    void arm(std::function<void()> fault)
    {
        std::lock_guard lock(mutex_);
        armed_.push_back(std::move(fault));
    }

    /// Executes every queued move, in arm order, then clears the queue.
    /// Called by the data path (dram/dram_tap.h contract); moves run under
    /// the injector lock, which arm() never holds while a move runs a
    /// submit -- moves must not call back into the serving interface.
    void pull() override
    {
        std::lock_guard lock(mutex_);
        for (auto& fault : armed_) fault();
        executed_ += armed_.size();
        armed_.clear();
    }

    /// Moves executed so far (stable once the server has drained).
    [[nodiscard]] u64 executed() const
    {
        std::lock_guard lock(mutex_);
        return executed_;
    }

private:
    mutable std::mutex mutex_;
    std::vector<std::function<void()>> armed_;
    u64 executed_ = 0;
};

}  // namespace seda::attack
