#include "attack/fault_plan.h"

#include "common/error.h"
#include "common/rng.h"

namespace seda::attack {

std::size_t Fault_plan::detections_per_fault(Fault_kind kind)
{
    switch (kind) {
        case Fault_kind::shuffle: return 2;
        case Fault_kind::seca_probe: return 0;
        case Fault_kind::tamper:
        case Fault_kind::mac_corrupt:
        case Fault_kind::splice:
        case Fault_kind::rollback: return 1;
        case Fault_kind::count_: break;
    }
    return 0;
}

core::Verify_status Fault_plan::expected_status(Fault_kind kind)
{
    switch (kind) {
        case Fault_kind::rollback: return core::Verify_status::replay_detected;
        case Fault_kind::seca_probe: return core::Verify_status::ok;
        default: return core::Verify_status::mac_mismatch;
    }
}

std::vector<Detection> Fault_plan::expected_detections() const
{
    std::vector<Detection> out;
    for (u32 t = 1; t <= victim_tenants; ++t)
        for (const Fault& f : faults) {
            if (f.tenant != t) continue;
            const std::size_t n = detections_per_fault(f.kind);
            for (std::size_t i = 0; i < n; ++i)
                out.push_back({f.tenant, f.layer_id, f.tensor_kind, expected_status(f.kind)});
        }
    return out;
}

std::size_t Fault_plan::count(Fault_kind kind) const
{
    std::size_t n = 0;
    for (const Fault& f : faults)
        if (f.kind == kind) ++n;
    return n;
}

Fault_plan make_fault_plan(u64 seed, u32 tenants, std::size_t faults,
                           std::vector<Fault_kind> kinds)
{
    require(tenants >= 2, "make_fault_plan: need tenant 0 (control) plus >= 1 victim");
    require(faults >= 1, "make_fault_plan: empty campaigns make no assertions");
    if (kinds.empty())
        for (std::size_t k = 0; k < k_fault_kind_count; ++k)
            kinds.push_back(static_cast<Fault_kind>(k));

    Fault_plan plan;
    plan.seed = seed;
    plan.victim_tenants = tenants - 1;
    u64 sm = seed ^ 0xA77AC4ULL;
    Rng rng(splitmix64(sm));
    plan.faults.reserve(faults);
    for (std::size_t i = 0; i < faults; ++i) {
        Fault f;
        // Deal every allowed kind once before drawing uniformly, so short
        // plans still mix kinds; victims round-robin so every victim
        // tenant gets probed.
        f.kind = i < kinds.size() ? kinds[i] : kinds[rng.next_below(kinds.size())];
        f.tenant = 1 + static_cast<u32>(i % plan.victim_tenants);
        f.index = static_cast<u32>(i);
        f.layer_id = static_cast<u32>(1 + rng.next_below(12));
        f.tensor_kind = static_cast<u32>(rng.next_below(3));
        f.byte_offset = static_cast<u8>(rng.next_below(64));
        f.xor_mask = static_cast<u8>(1 + rng.next_below(255));
        plan.faults.push_back(f);
    }
    return plan;
}

}  // namespace seda::attack
