// Adversary-under-load campaign driver.
//
// One campaign runs a seeded Fault_plan against a LIVE serve::Server while
// legitimate traffic flows on every tenant: closed-loop background clients
// (loadgen-shaped) on all request tenants, optional inference engines
// replaying a DNN model on their own tenants, and an optional model
// hot-swap (evict_tenant + re-provision) under that continuing traffic.
// Faults reach the memory through the dram::Dram_tap seam (Fault_injector)
// -- never by pausing the server -- and per-victim prober threads bracket
// each fault with probe requests whose MAC context carries the plan's
// (layer, tensor kind) attribution.
//
// The Campaign_ledger then holds the driver to the paper's detection
// claims as EXACT bookkeeping, not statistics:
//
//   * every victim tenant's serve::Failure_record list equals the
//     plan-derived expectation element for element -- right unit, right
//     (layer, fmap, blk) context, right failure class, right order;
//   * every non-victim tenant's list is empty (zero false positives), and
//     with control_run on, every untouched tenant's FULL counter row is
//     byte-identical to a no-campaign run of the same seed;
//   * SECA probes on sparse plaintexts recover nothing under B-AES;
//   * every deterministic field of Campaign_result is independent of
//     --jobs, so `seda_cli attack --json` byte-diffs across worker counts.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "attack/fault_plan.h"
#include "common/types.h"
#include "infer/infer_stats.h"
#include "serve/serve_stats.h"

namespace seda::attack {

inline constexpr u32 k_no_tenant = 0xFFFF'FFFF;

struct Campaign_config {
    u64 seed = 0x5EDA;
    u32 tenants = 3;           ///< request tenants (0 = control/donor, rest victims)
    std::size_t faults = 6;
    std::vector<Fault_kind> kinds = {};  ///< restrict the plan (empty = all kinds)
    std::size_t clients = 2;   ///< background closed-loop clients per request tenant
    std::size_t requests = 16; ///< requests per background client
    std::size_t jobs = 1;      ///< server crypto workers (0 = hardware)
    bool hot_swap = true;      ///< evict + re-provision a tenant mid-campaign
    bool infer_traffic = false;///< run victim + control inference engines
    std::string model = "lenet";
    std::size_t inferences = 1;
    bool control_run = true;   ///< rerun without injection, diff untouched rows
    std::size_t queue_capacity = 1024;
    std::size_t max_batch = 256;
    std::size_t max_wait_us = 0;
};

/// Plan-derived expectations vs. the server's observed failure records.
struct Campaign_ledger {
    /// Expected failure records per tenant id (empty = must stay clean).
    std::vector<std::vector<serve::Failure_record>> expected;

    void expect(u32 tenant, const serve::Failure_record& rec);

    /// Exact attribution: every tenant's observed list equals its expected
    /// list element for element (so non-victims must be empty).
    [[nodiscard]] bool exact(const serve::Serve_stats& stats) const;

    /// Observed failures beyond each tenant's expected count, summed --
    /// the campaign's false-positive measure.
    [[nodiscard]] u64 surplus(const serve::Serve_stats& stats) const;

    /// Expected detections of `status` across all tenants.
    [[nodiscard]] u64 expected_count(core::Verify_status status) const;
};

struct Campaign_result {
    Fault_plan plan;
    serve::Serve_stats stats;  ///< the campaign run's server view
    Campaign_ledger ledger;

    bool attribution_exact = false;  ///< ledger.exact over every tenant
    u64 false_positives = 0;         ///< ledger.surplus (0 when exact)
    u64 probe_surprises = 0;         ///< probe/hot-swap responses off-script
    u64 background_failures = 0;     ///< background client non-ok or mirror miss
    std::size_t seca_probes = 0;
    std::size_t seca_recoveries = 0; ///< Alg. 1 successes (must stay 0)
    u64 faults_injected = 0;         ///< adversary moves the tap executed

    u64 expected_mac_mismatch = 0;
    u64 expected_replay_detected = 0;
    u64 detected_mac_mismatch = 0;   ///< server totals over all tenants
    u64 detected_replay_detected = 0;

    u64 evicted_rejects = 0;          ///< hot swap: submits bounced post-evict
    u64 expected_evicted_rejects = 0;
    u32 swap_tenant = k_no_tenant;
    u32 replacement_tenant = k_no_tenant;

    u32 infer_victim_tenant = k_no_tenant;
    u32 infer_control_tenant = k_no_tenant;
    infer::Infer_stats infer_victim;
    infer::Infer_stats infer_control;
    u64 infer_expected_failures = 0;
    u64 infer_detected_failures = 0;

    bool control_checked = false;    ///< control_run executed
    bool control_identical = true;   ///< untouched rows byte-equal to control

    double wall_seconds = 0.0;       ///< campaign run only (timing-bound)

    /// The acceptance gate: exact attribution, no extras, no off-script
    /// responses, SECA recovered nothing, untouched traffic unperturbed.
    [[nodiscard]] bool clean() const
    {
        return attribution_exact && false_positives == 0 && probe_surprises == 0 &&
               background_failures == 0 && seca_recoveries == 0 &&
               evicted_rejects == expected_evicted_rejects && control_identical &&
               infer_detected_failures == infer_expected_failures;
    }
};

/// Runs the full campaign (and, with cfg.control_run, the no-injection
/// control of the same seed) and evaluates the ledger.
[[nodiscard]] Campaign_result run_campaign(const Campaign_config& cfg);

}  // namespace seda::attack
