// Fault_plan: the seeded recipe of an adversary-under-load campaign.
//
// A plan is a PURE FUNCTION of (seed, tenant count, fault count): which
// victim tenant each fault hits, which fault kind, which MAC-context
// fields the probe traffic binds, and which bits flip.  Campaign runs,
// unit tests and the `seda_cli attack` subcommand all derive the same plan
// from the same seed, which is what makes "detected == injected, exactly"
// an executable assertion instead of a statistical one
// (docs/THREAT_MODEL.md catalogs the kinds and their contracts).
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "core/verify_status.h"

namespace seda::attack {

/// The adversary moves a campaign composes.  Every ACTIVE kind has an
/// exact detection contract (expected_status / expected_detections below);
/// seca_probe is passive -- it must produce zero detections AND recover
/// zero plaintext under B-AES.
enum class Fault_kind : u8 {
    tamper,       ///< flip ciphertext bits of one stored unit
    mac_corrupt,  ///< flip bits of one stored unit's MAC word
    splice,       ///< copy another tenant's stored unit over the victim's
    shuffle,      ///< swap two stored units wholesale (RePA at memory level)
    rollback,     ///< replay a stale snapshot over newer data (VN rollback)
    seca_probe,   ///< passive: snapshot a sparse unit, run Alg. 1 offline
    count_
};

inline constexpr std::size_t k_fault_kind_count =
    static_cast<std::size_t>(Fault_kind::count_);

[[nodiscard]] constexpr const char* to_string(Fault_kind k)
{
    switch (k) {
        case Fault_kind::tamper: return "tamper";
        case Fault_kind::mac_corrupt: return "mac_corrupt";
        case Fault_kind::splice: return "splice";
        case Fault_kind::shuffle: return "shuffle";
        case Fault_kind::rollback: return "rollback";
        case Fault_kind::seca_probe: return "seca_probe";
        case Fault_kind::count_: break;
    }
    return "?";
}

/// One planned fault: everything the campaign's prober needs.  `index` is
/// the fault's position in the whole plan and names its dedicated probe
/// units, so no two faults -- on any tenant -- ever touch the same slot.
struct Fault {
    Fault_kind kind = Fault_kind::tamper;
    u32 tenant = 0;       ///< victim tenant id (never 0: tenant 0 is control/donor)
    u32 index = 0;        ///< position in the plan (also the probe blk_idx)
    u32 layer_id = 0;     ///< MAC-context layer the probe traffic binds
    u32 tensor_kind = 0;  ///< 0 weight / 1 ifmap / 2 ofmap (probe fmap_idx)
    u8 byte_offset = 0;   ///< tamper position inside the unit
    u8 xor_mask = 1;      ///< ciphertext/MAC bit flips (never 0)

    [[nodiscard]] bool operator==(const Fault&) const = default;
};

/// One expected or observed detection, at the attribution granularity the
/// acceptance gate names: right tenant, right layer, right tensor kind,
/// right failure class.
struct Detection {
    u32 tenant = 0;
    u32 layer_id = 0;
    u32 tensor_kind = 0;
    core::Verify_status status = core::Verify_status::ok;

    [[nodiscard]] bool operator==(const Detection&) const = default;
};

struct Fault_plan {
    u64 seed = 0;
    u32 victim_tenants = 0;     ///< victims are tenant ids [1, victim_tenants]
    std::vector<Fault> faults;  ///< plan order (per-tenant order = probe order)

    /// How many detections one fault of `kind` must produce (shuffle swaps
    /// two units, so both probe reads fail; seca_probe produces none).
    [[nodiscard]] static std::size_t detections_per_fault(Fault_kind kind);

    /// The failure class one fault of `kind` must surface as.
    [[nodiscard]] static core::Verify_status expected_status(Fault_kind kind);

    /// Every detection this plan must produce, grouped per victim tenant in
    /// ascending id, each tenant's entries in its probe order.
    [[nodiscard]] std::vector<Detection> expected_detections() const;

    /// Faults of `kind` in the plan.
    [[nodiscard]] std::size_t count(Fault_kind kind) const;
};

/// Builds the campaign recipe as a pure function of its arguments.
/// Victims are tenants [1, tenants); tenant 0 is never attacked (it is the
/// untouched-control row and the splice-donor space).  A non-empty `kinds`
/// restricts the draw (targeted campaigns); the first faults deal every
/// allowed kind once so even short plans are mixed.
[[nodiscard]] Fault_plan make_fault_plan(u64 seed, u32 tenants, std::size_t faults,
                                         std::vector<Fault_kind> kinds = {});

}  // namespace seda::attack
