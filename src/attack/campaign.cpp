#include "attack/campaign.h"

#include <chrono>
#include <memory>
#include <optional>
#include <thread>
#include <utility>

#include "attack/fault_injector.h"
#include "common/error.h"
#include "common/rng.h"
#include "crypto/attacks.h"
#include "infer/inference_engine.h"
#include "infer/model_binding.h"
#include "infer/run_infer.h"
#include "infer/unit_sink.h"
#include "models/zoo.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/stage.h"
#include "serve/loadgen.h"
#include "serve/server.h"

namespace seda::attack {

namespace {

using core::Verify_status;

constexpr Bytes k_unit = 64;
constexpr std::size_t k_bg_units_per_client = 8;  ///< slots each background client owns
constexpr std::size_t k_evict_attempts = 3;       ///< post-evict submits the swap probes
constexpr u32 k_swap_layer = 0x7A;                ///< hot-swap probe MAC-context layer

/// Address of probe unit `which` (0 or 1) of fault `fault_index`.  The
/// probe region starts above every background client's slot range, and
/// every fault owns two dedicated units, so no fault ever aliases
/// legitimate traffic or another fault -- on any tenant.
Addr fault_addr(const Campaign_config& cfg, u32 fault_index, u32 which)
{
    const Addr base =
        static_cast<Addr>(cfg.clients + 8) * k_bg_units_per_client * k_unit;
    return base + (static_cast<Addr>(fault_index) * 2 + which) * k_unit;
}

std::vector<u8> random_payload(Rng& rng)
{
    std::vector<u8> p(k_unit);
    for (u8& b : p) b = rng.next_byte();
    return p;
}

serve::Request make_request(u32 tenant, serve::Op op, Addr addr, u32 layer_id,
                            u32 fmap_idx, u32 blk_idx, std::vector<u8> payload = {})
{
    serve::Request r;
    r.tenant_id = tenant;
    r.op = op;
    r.addr = addr;
    r.payload = std::move(payload);
    r.layer_id = layer_id;
    r.fmap_idx = fmap_idx;
    r.blk_idx = blk_idx;
    return r;
}

/// One closed-loop background client, loadgen-shaped: first touch writes,
/// then a 50/50 op mix over its private slots with full mirror checking.
/// Its whole stream is a pure function of (seed, tenant, client), so every
/// run -- campaign or control, any --jobs -- sees identical traffic.
void background_client(serve::Server& server, const Campaign_config& cfg, u32 tenant,
                       u32 client, u64& failures)
{
    Rng rng(serve::client_seed(cfg.seed ^ 0xB6C0DEULL, tenant, client));
    const Addr base = static_cast<Addr>(client) * k_bg_units_per_client * k_unit;
    std::vector<std::vector<u8>> mirror(k_bg_units_per_client);
    u64 local = 0;
    for (std::size_t i = 0; i < cfg.requests; ++i) {
        const u64 slot = rng.next_below(k_bg_units_per_client);
        const Addr addr = base + slot * k_unit;
        const bool do_write = mirror[slot].empty() || rng.next_below(2) == 0;
        if (do_write) {
            auto payload = random_payload(rng);
            mirror[slot] = payload;
            auto req = make_request(tenant, serve::Op::write, addr, tenant, client,
                                    static_cast<u32>(slot), std::move(payload));
            if (server.submit(std::move(req)).get().status != Verify_status::ok) ++local;
        } else {
            auto req = make_request(tenant, serve::Op::read, addr, tenant, client,
                                    static_cast<u32>(slot));
            const serve::Response resp = server.submit(std::move(req)).get();
            if (resp.status != Verify_status::ok || resp.payload != mirror[slot]) ++local;
        }
    }
    failures = local;
}

/// Forensic `inject` flight event, called from INSIDE an armed fault
/// closure: the timestamp lands at the flush-head pull where the fault
/// actually executes on the bus, not at arming time -- so a flight dump
/// shows the injection ordered between the flushes it really fell between.
/// The fault kind rides in the event's `n` field.
void log_inject(u32 tenant, Addr addr, Fault_kind kind)
{
    obs::Flight_recorder::record(obs::Flight_kind::inject, tenant, addr,
                                 static_cast<u64>(kind), 0);
    // Live injection counter, bumped at the moment the fault executes on
    // the bus: a --watch or /metrics scrape mid-campaign sees the count
    // climb instead of jumping at exit.
    static const obs::Counter injected = obs::enabled()
        ? obs::Metrics_registry::instance().counter("attack_faults_injected_total")
        : obs::Counter{};
    injected.add(1);
}

struct Prober_outcome {
    u64 surprises = 0;  ///< responses whose status broke the fault's contract
    std::size_t seca_probes = 0;
    std::size_t seca_recoveries = 0;
};

/// Executes one victim tenant's share of the plan, in plan order: write
/// the probe units, arm the fault through the tap, then read them back and
/// check each response against the fault's exact detection contract.  With
/// inject=false the same request stream runs unarmed (the control run),
/// and every probe must verify ok.
void run_prober(serve::Server& server, Fault_injector& tap, const Campaign_config& cfg,
                const Fault_plan& plan, u32 tenant, bool inject, Prober_outcome& out)
{
    obs::Stage_span span(obs::Stage::attack_probe);
    u64 sm = cfg.seed ^ (0xFA417ULL + tenant);
    Rng rng(splitmix64(sm));
    core::Secure_memory& mem = server.tenant(tenant).session().memory();
    core::Secure_memory& donor = server.tenant(0).session().memory();

    const auto submit_write = [&](u32 t, Addr addr, const Fault& f,
                                  std::vector<u8> payload) {
        auto req = make_request(t, serve::Op::write, addr, f.layer_id, f.tensor_kind,
                                f.index, std::move(payload));
        if (server.submit(std::move(req)).get().status != Verify_status::ok)
            ++out.surprises;
    };
    const auto probe_read = [&](Addr addr, const Fault& f, Verify_status expect) {
        auto req =
            make_request(tenant, serve::Op::read, addr, f.layer_id, f.tensor_kind, f.index);
        if (server.submit(std::move(req)).get().status != expect) ++out.surprises;
    };

    for (const Fault& f : plan.faults) {
        if (f.tenant != tenant) continue;
        const Addr a = fault_addr(cfg, f.index, 0);
        const Addr b = fault_addr(cfg, f.index, 1);
        switch (f.kind) {
            case Fault_kind::tamper:
                submit_write(tenant, a, f, random_payload(rng));
                if (inject)
                    tap.arm([&mem, a, f, tenant] {
                        log_inject(tenant, a, f.kind);
                        mem.tamper(a, f.byte_offset, f.xor_mask);
                    });
                probe_read(a, f, inject ? Verify_status::mac_mismatch : Verify_status::ok);
                break;
            case Fault_kind::mac_corrupt:
                submit_write(tenant, a, f, random_payload(rng));
                if (inject)
                    tap.arm([&mem, a, f, tenant] {
                        log_inject(tenant, a, f.kind);
                        mem.corrupt_mac(a, 1ULL << (f.byte_offset % 64));
                    });
                probe_read(a, f, inject ? Verify_status::mac_mismatch : Verify_status::ok);
                break;
            case Fault_kind::splice:
                // The donor unit lives in tenant 0 at the same address with
                // the same context -- only the keys differ, which is
                // exactly what the spliced MAC must trip over.
                submit_write(0, a, f, random_payload(rng));
                submit_write(tenant, a, f, random_payload(rng));
                if (inject)
                    tap.arm([&mem, &donor, a, tenant] {
                        log_inject(tenant, a, Fault_kind::splice);
                        crypto::splice_unit(mem, a, donor, a);
                    });
                probe_read(a, f, inject ? Verify_status::mac_mismatch : Verify_status::ok);
                break;
            case Fault_kind::shuffle:
                submit_write(tenant, a, f, random_payload(rng));
                submit_write(tenant, b, f, random_payload(rng));
                if (inject)
                    tap.arm([&mem, a, b, tenant] {
                        log_inject(tenant, a, Fault_kind::shuffle);
                        mem.swap_units(a, b);
                    });
                probe_read(a, f, inject ? Verify_status::mac_mismatch : Verify_status::ok);
                probe_read(b, f, inject ? Verify_status::mac_mismatch : Verify_status::ok);
                break;
            case Fault_kind::rollback: {
                auto capsule = std::make_shared<crypto::Rollback_capsule>();
                submit_write(tenant, a, f, random_payload(rng));
                if (inject) tap.arm([&mem, a, capsule] { capsule->capture(mem, a); });
                // Sync read: completes only after a pull ran the capture, so
                // the snapshot provably predates the next write.  Verifies
                // ok in BOTH runs (a snapshot mutates nothing).
                probe_read(a, f, Verify_status::ok);
                submit_write(tenant, a, f, random_payload(rng));
                if (inject)
                    tap.arm([&mem, a, capsule, tenant] {
                        log_inject(tenant, a, Fault_kind::rollback);
                        capsule->replay(mem);
                    });
                probe_read(a, f,
                           inject ? Verify_status::replay_detected : Verify_status::ok);
                break;
            }
            case Fault_kind::seca_probe: {
                // Passive probe: store a ReLU-sparse unit, snapshot its
                // ciphertext through the tap, run Algorithm 1 offline.
                // Zero detections expected -- the sync read must verify ok
                // -- and under B-AES zero recovery too.
                auto sparse = crypto::make_sparse_plaintext(k_unit, 0.75, rng);
                const std::vector<u8> oracle = sparse;
                submit_write(tenant, a, f, std::move(sparse));
                auto snap = std::make_shared<core::Secure_memory::Stored_unit>();
                if (inject)
                    tap.arm([&mem, a, snap, tenant] {
                        log_inject(tenant, a, Fault_kind::seca_probe);
                        *snap = mem.snapshot(a);
                    });
                probe_read(a, f, Verify_status::ok);
                ++out.seca_probes;
                if (inject) {
                    const auto seca =
                        crypto::seca_attack(snap->ciphertext, crypto::Block16{}, oracle);
                    if (seca.success()) ++out.seca_recoveries;
                }
                break;
            }
            case Fault_kind::count_: break;
        }
    }
}

/// The model hot-swap scenario, run on the driver thread while every other
/// tenant's traffic continues: clean ops on the outgoing tenant, evict,
/// prove the tombstone (counted rejects), re-provision via add_tenant, and
/// probe the replacement -- including one tamper, so detection attribution
/// follows the tenant id across the swap.
u32 run_hot_swap(serve::Server& server, Fault_injector& tap, const Campaign_config& cfg,
                 u32 swap_id, bool inject, u64& surprises)
{
    u64 sm = cfg.seed ^ 0x5A4DULL;
    Rng rng(splitmix64(sm));
    const Addr a0 = fault_addr(cfg, 0, 0);
    const Addr a1 = fault_addr(cfg, 0, 1);

    const auto write_ok = [&](u32 t, Addr addr, u32 blk) {
        auto req = make_request(t, serve::Op::write, addr, k_swap_layer, 0, blk,
                                random_payload(rng));
        if (server.submit(std::move(req)).get().status != Verify_status::ok) ++surprises;
    };
    const auto read_expect = [&](u32 t, Addr addr, u32 blk, Verify_status expect) {
        auto req = make_request(t, serve::Op::read, addr, k_swap_layer, 0, blk);
        if (server.submit(std::move(req)).get().status != expect) ++surprises;
    };

    write_ok(swap_id, a0, 0);
    read_expect(swap_id, a0, 0, Verify_status::ok);

    server.evict_tenant(swap_id);
    for (std::size_t k = 0; k < k_evict_attempts; ++k) {
        try {
            (void)server.submit(make_request(swap_id, serve::Op::write, a0, k_swap_layer,
                                             0, 0, std::vector<u8>(k_unit, 0)));
            ++surprises;  // the tombstone must throw
        } catch (const Seda_error&) {
            // counted by the server as stats().evicted_rejects
        }
    }

    const u32 fresh = server.add_tenant();
    core::Secure_memory& mem = server.tenant(fresh).session().memory();
    mem.set_dram_tap(&tap);

    write_ok(fresh, a0, 0);
    write_ok(fresh, a1, 1);
    if (inject)
        tap.arm([&mem, a1, fresh] {
            log_inject(fresh, a1, Fault_kind::tamper);
            mem.tamper(a1, 5, 0x40);
        });
    read_expect(fresh, a1, 1, inject ? Verify_status::mac_mismatch : Verify_status::ok);
    read_expect(fresh, a0, 0, Verify_status::ok);
    return fresh;
}

/// Picks the tampered weight unit for the inference victim: a unit the
/// traces READ but never write (so the fault survives the whole run),
/// chosen deterministically from the seed.
Addr pick_infer_target(const infer::Model_binding& binding, u64 seed)
{
    std::vector<Addr> candidates;
    for (const Addr addr : binding.weight_load_units()) {
        bool written = false;
        for (const auto& layer : binding.sim().layers)
            for (const auto& r : layer.trace) {
                if (!r.is_write) continue;
                if (addr >= r.first_block() && addr < r.end_block()) written = true;
            }
        if (!written) candidates.push_back(addr);
    }
    require(!candidates.empty(), "attack: model has no read-only weight unit to target");
    u64 sm = seed ^ 0x1FE27A6ULL;
    Rng rng(splitmix64(sm));
    return candidates[rng.next_below(candidates.size())];
}

/// How many times each layer's trace reads `target` as a weight unit: the
/// per-layer mac_mismatch count one tampered weight must produce per
/// inference pass.
std::vector<u64> weight_reads_per_layer(const infer::Model_binding& binding, Addr target)
{
    std::vector<u64> counts(binding.sim().layers.size(), 0);
    for (std::size_t i = 0; i < binding.sim().layers.size(); ++i)
        for (const auto& r : binding.sim().layers[i].trace) {
            if (r.is_write || r.tensor != accel::Tensor_kind::weight) continue;
            accel::for_each_block(r, [&](Addr a) {
                if (a == target) ++counts[i];
            });
        }
    return counts;
}

/// One inference engine over the server transport.  The victim arms a
/// weight tamper between load and the inference passes; the control engine
/// runs the identical workload untouched.
void run_infer_engine(serve::Server& server, Fault_injector& tap,
                      const Campaign_config& cfg, const infer::Model_binding& binding,
                      u32 tenant, bool arm_tamper, Addr target, infer::Infer_stats& out)
{
    infer::Inference_engine engine(binding, {infer::tenant_seed(cfg.seed, tenant), 4096});
    infer::Server_sink sink(server, tenant);
    engine.load(sink);
    if (arm_tamper) {
        core::Secure_memory& mem = server.tenant(tenant).session().memory();
        tap.arm([&mem, target, tenant] {
            log_inject(tenant, target, Fault_kind::tamper);
            mem.tamper(target, 7, 0x20);
        });
    }
    for (std::size_t i = 0; i < cfg.inferences; ++i) engine.infer(sink);
    out = engine.stats();
}

struct Run_out {
    serve::Serve_stats stats;
    u64 surprises = 0;
    u64 background_failures = 0;
    std::size_t seca_probes = 0;
    std::size_t seca_recoveries = 0;
    u64 executed = 0;
    u32 replacement = k_no_tenant;
    infer::Infer_stats infer_victim;
    infer::Infer_stats infer_control;
};

}  // namespace

void Campaign_ledger::expect(u32 tenant, const serve::Failure_record& rec)
{
    if (expected.size() <= tenant) expected.resize(tenant + 1);
    expected[tenant].push_back(rec);
}

bool Campaign_ledger::exact(const serve::Serve_stats& stats) const
{
    static const std::vector<serve::Failure_record> k_none;
    for (std::size_t t = 0; t < stats.tenants.size(); ++t) {
        const auto& want = t < expected.size() ? expected[t] : k_none;
        if (stats.tenants[t].failures != want) return false;
    }
    // A tenant we expect failures from must exist in the stats at all.
    for (std::size_t t = stats.tenants.size(); t < expected.size(); ++t)
        if (!expected[t].empty()) return false;
    return true;
}

u64 Campaign_ledger::surplus(const serve::Serve_stats& stats) const
{
    u64 extra = 0;
    for (std::size_t t = 0; t < stats.tenants.size(); ++t) {
        const std::size_t want = t < expected.size() ? expected[t].size() : 0;
        const std::size_t got = stats.tenants[t].failures.size();
        if (got > want) extra += got - want;
    }
    return extra;
}

u64 Campaign_ledger::expected_count(core::Verify_status status) const
{
    u64 n = 0;
    for (const auto& tenant : expected)
        for (const auto& rec : tenant)
            if (rec.status == status) ++n;
    return n;
}

Campaign_result run_campaign(const Campaign_config& cfg)
{
    require(cfg.tenants >= 2, "run_campaign: need tenant 0 (control) plus >= 1 victim");
    require(cfg.clients >= 1 && cfg.requests >= 1,
            "run_campaign: background traffic is the point -- configure some");

    const Fault_plan plan = make_fault_plan(cfg.seed, cfg.tenants, cfg.faults, cfg.kinds);

    // Tenant layout: request tenants first (0 = control/donor, 1.. =
    // victims), then the hot-swap tenant, then the inference pair.  The
    // hot-swap replacement id is whatever add_tenant() returns -- dense
    // ids make that the table size, identically in campaign and control.
    u32 next = cfg.tenants;
    const u32 swap_id = cfg.hot_swap ? next++ : k_no_tenant;
    const u32 infer_victim_id = cfg.infer_traffic ? next++ : k_no_tenant;
    const u32 infer_control_id = cfg.infer_traffic ? next++ : k_no_tenant;
    const u32 initial_tenants = next;

    std::optional<infer::Model_binding> binding;
    Addr infer_target = 0;
    std::vector<u64> target_reads;
    if (cfg.infer_traffic) {
        binding.emplace(models::model_by_name(cfg.model), accel::Npu_config::server());
        infer_target = pick_infer_target(*binding, cfg.seed);
        target_reads = weight_reads_per_layer(*binding, infer_target);
    }

    const auto one_run = [&](bool inject) {
        Run_out out;
        Fault_injector injector;  // outlives the server => outlives every pull
        serve::Server_config scfg;
        scfg.tenants = initial_tenants;
        scfg.workers = cfg.jobs;
        scfg.queue_capacity = cfg.queue_capacity;
        scfg.max_batch = cfg.max_batch;
        scfg.max_wait_us = cfg.max_wait_us;
        scfg.mem.unit_bytes = k_unit;
        serve::Server server(serve::demo_master_key(cfg.seed, 0xA77AC2ULL),
                             serve::demo_master_key(cfg.seed, 0x3A77AC2ULL), scfg);
        for (u32 t = 0; t < initial_tenants; ++t)
            server.tenant(t).session().memory().set_dram_tap(&injector);
        server.start();

        std::vector<u64> bg_failures(cfg.tenants * cfg.clients, 0);
        std::vector<Prober_outcome> prober_out(cfg.tenants);
        std::vector<std::thread> threads;
        for (u32 t = 0; t < cfg.tenants; ++t)
            for (u32 c = 0; c < cfg.clients; ++c)
                threads.emplace_back([&, t, c] {
                    background_client(server, cfg, t, c,
                                      bg_failures[t * cfg.clients + c]);
                });
        for (u32 t = 1; t < cfg.tenants; ++t)
            threads.emplace_back([&, t] {
                run_prober(server, injector, cfg, plan, t, inject, prober_out[t]);
            });
        if (cfg.infer_traffic) {
            threads.emplace_back([&] {
                run_infer_engine(server, injector, cfg, *binding, infer_victim_id,
                                 inject, infer_target, out.infer_victim);
            });
            threads.emplace_back([&] {
                run_infer_engine(server, injector, cfg, *binding, infer_control_id,
                                 false, 0, out.infer_control);
            });
        }
        if (cfg.hot_swap)
            out.replacement =
                run_hot_swap(server, injector, cfg, swap_id, inject, out.surprises);
        for (std::thread& th : threads) th.join();
        server.drain();
        server.stop();

        out.stats = server.stats();
        for (const u64 f : bg_failures) out.background_failures += f;
        for (const Prober_outcome& p : prober_out) {
            out.surprises += p.surprises;
            out.seca_probes += p.seca_probes;
            out.seca_recoveries += p.seca_recoveries;
        }
        out.executed = injector.executed();
        return out;
    };

    const auto t0 = std::chrono::steady_clock::now();
    const Run_out campaign = one_run(true);
    const auto t1 = std::chrono::steady_clock::now();

    Campaign_result res;
    res.plan = plan;
    res.stats = campaign.stats;
    res.probe_surprises = campaign.surprises;
    res.background_failures = campaign.background_failures;
    res.seca_probes = campaign.seca_probes;
    res.seca_recoveries = campaign.seca_recoveries;
    res.faults_injected = campaign.executed;
    res.evicted_rejects = campaign.stats.evicted_rejects;
    res.expected_evicted_rejects = cfg.hot_swap ? k_evict_attempts : 0;
    res.swap_tenant = swap_id;
    res.replacement_tenant = campaign.replacement;
    res.infer_victim_tenant = infer_victim_id;
    res.infer_control_tenant = infer_control_id;
    res.infer_victim = campaign.infer_victim;
    res.infer_control = campaign.infer_control;
    res.wall_seconds = std::chrono::duration<double>(t1 - t0).count();

    // ---- build the ledger: every failure the campaign run MUST show ----
    Campaign_ledger& ledger = res.ledger;
    for (const Fault& f : plan.faults) {
        const Addr a = fault_addr(cfg, f.index, 0);
        const Addr b = fault_addr(cfg, f.index, 1);
        const Verify_status status = Fault_plan::expected_status(f.kind);
        switch (f.kind) {
            case Fault_kind::shuffle:
                ledger.expect(f.tenant, {a, f.layer_id, f.tensor_kind, f.index, status});
                ledger.expect(f.tenant, {b, f.layer_id, f.tensor_kind, f.index, status});
                break;
            case Fault_kind::seca_probe: break;  // passive: nothing to detect
            default:
                ledger.expect(f.tenant, {a, f.layer_id, f.tensor_kind, f.index, status});
                break;
        }
    }
    if (cfg.hot_swap && campaign.replacement != k_no_tenant)
        ledger.expect(campaign.replacement, {fault_addr(cfg, 0, 1), k_swap_layer, 0, 1,
                                             Verify_status::mac_mismatch});
    if (cfg.infer_traffic) {
        const auto ctx = binding->context(infer_target);
        for (std::size_t pass = 0; pass < cfg.inferences; ++pass)
            for (const u64 reads : target_reads)
                for (u64 i = 0; i < reads; ++i)
                    ledger.expect(infer_victim_id,
                                  {infer_target, ctx.layer_id, ctx.fmap_idx, ctx.blk_idx,
                                   Verify_status::mac_mismatch});
    }

    res.attribution_exact = ledger.exact(campaign.stats);
    res.false_positives = ledger.surplus(campaign.stats);
    res.expected_mac_mismatch = ledger.expected_count(Verify_status::mac_mismatch);
    res.expected_replay_detected = ledger.expected_count(Verify_status::replay_detected);
    const serve::Tenant_counters totals = campaign.stats.totals();
    res.detected_mac_mismatch = totals.mac_mismatch;
    res.detected_replay_detected = totals.replay_detected;

    // Engine-side attribution for the inference victim: the tampered
    // weight must surface in exactly the layers (and only the tensor kind)
    // that stream it, `reads x inferences` times each.
    if (cfg.infer_traffic) {
        for (const u64 reads : target_reads)
            res.infer_expected_failures += reads * cfg.inferences;
        res.infer_detected_failures = campaign.infer_victim.totals().mac_mismatch +
                                      campaign.infer_victim.totals().replay_detected;
        for (std::size_t i = 0; i < target_reads.size(); ++i) {
            const infer::Unit_counters& w = campaign.infer_victim.layers[i].weight;
            if (w.mac_mismatch != target_reads[i] * cfg.inferences ||
                w.replay_detected != 0)
                res.attribution_exact = false;
            for (const infer::Unit_failure& fail : w.failure_log)
                if (fail.addr != infer_target ||
                    fail.status != Verify_status::mac_mismatch)
                    res.attribution_exact = false;
        }
        if (campaign.infer_control.totals().mac_mismatch +
                campaign.infer_control.totals().replay_detected !=
            0)
            res.attribution_exact = false;
    }

    // ---- control run: same seed, tap never armed ----------------------
    if (cfg.control_run) {
        const Run_out control = one_run(false);
        res.control_checked = true;
        res.control_identical = true;
        // The control run itself must be spotless everywhere...
        if (control.stats.totals().mac_mismatch + control.stats.totals().replay_detected +
                control.surprises + control.background_failures !=
            0)
            res.control_identical = false;
        // ...and every untouched tenant's campaign row must equal its
        // control row, field for field (zero perturbation of bystanders).
        std::vector<u32> untouched = {0};
        if (cfg.hot_swap) untouched.push_back(swap_id);
        if (cfg.infer_traffic) untouched.push_back(infer_control_id);
        for (const u32 t : untouched) {
            if (t >= campaign.stats.tenants.size() || t >= control.stats.tenants.size()) {
                res.control_identical = false;
                continue;
            }
            if (!(campaign.stats.tenants[t] == control.stats.tenants[t]))
                res.control_identical = false;
        }
        if (cfg.infer_traffic && !(campaign.infer_control == control.infer_control))
            res.control_identical = false;
    }

    // attack_faults_injected_total is counted live at the injection sites
    // (log_inject); only the detection tally is an end-of-run export.
    obs::Metrics_registry::instance().counter("attack_faults_detected_total")
        .add(res.detected_mac_mismatch + res.detected_replay_detected);

    return res;
}

}  // namespace seda::attack
