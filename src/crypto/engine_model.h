// 28 nm area / power / throughput model for the crypto hardware (Fig. 4).
//
// Two scaling strategies are compared as the accelerator's bandwidth demand
// grows to B times the throughput of a single AES engine:
//   * T-AES (traditional): instantiate ceil(B) parallel AES engines.
//   * B-AES (SeDA):        one AES engine plus (ceil(B) - 1) XOR lanes that
//                          fan the base OTP out with round keys.
//
// Per-engine constants are calibrated to the energy-efficient 28 nm AES
// implementations surveyed in Banerjee's thesis [22] and to the axes of the
// paper's Fig. 4 (8x T-AES = ~45k um^2 / ~24k uW).  The claim reproduced is
// the *scaling shape*: T-AES grows linearly, B-AES stays nearly flat.
#pragma once

#include "common/types.h"

namespace seda::crypto {

struct Crypto_hw_cost {
    double area_um2 = 0.0;
    double power_uw = 0.0;
    int aes_engines = 0;
    int xor_lanes = 0;
};

struct Engine_model_params {
    // One pipelined AES-128 engine at 28 nm.
    double aes_area_um2 = 5600.0;
    double aes_power_uw = 2900.0;
    // One 128-bit XOR lane (128 XOR2 cells + pipeline flops + mux control).
    double xor_lane_area_um2 = 240.0;
    double xor_lane_power_uw = 22.0;
    // Sustained throughput of one pipelined engine: 16 B per clock.
    double engine_bytes_per_cycle = 16.0;
};

/// Hardware cost of the traditional multi-engine design at a given
/// bandwidth multiple (>= 1 engine even for fractional demand).
[[nodiscard]] Crypto_hw_cost t_aes_cost(double bandwidth_multiple,
                                        const Engine_model_params& p = {});

/// Hardware cost of SeDA's bandwidth-aware design at the same multiple.
[[nodiscard]] Crypto_hw_cost b_aes_cost(double bandwidth_multiple,
                                        const Engine_model_params& p = {});

/// Crypto throughput (bytes/cycle) delivered by `engine_equivalents` lanes;
/// used by the performance model to throttle memory streams whose pads
/// cannot be produced fast enough.
[[nodiscard]] double crypto_bytes_per_cycle(int engine_equivalents,
                                            const Engine_model_params& p = {});

/// Engine-equivalents needed so the crypto path sustains `link_bytes_per_cycle`.
[[nodiscard]] int required_engine_equivalents(double link_bytes_per_cycle,
                                              const Engine_model_params& p = {});

}  // namespace seda::crypto
