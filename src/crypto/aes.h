// FIPS-197 AES block cipher (128/192/256-bit keys), implemented from scratch.
//
// This is the functional model of the paper's "AES Engine" (Fig. 2(b)):
// keyExpansion, AddRoundKey, SubBytes, ShiftRows, MixColumns.  The round keys
// produced by keyExpansion are exposed because SeDA's bandwidth-aware
// encryption (B-AES, Fig. 3(a) / Algorithm 1 defense) derives per-segment
// one-time pads by XORing the base OTP with them.
//
// The cipher rounds themselves run through a pluggable backend
// (crypto/aes_backend.h): a byte-wise scalar reference that mirrors the FIPS
// pseudocode, and a table-driven fast path (four 256-entry u32 tables,
// word-wise rounds) that the secure-memory hot loop uses by default.  Every
// backend consumes the same key schedule and must produce identical
// ciphertext; tests/crypto/aes_backend_test.cpp cross-validates them.
//
// The S-boxes are generated at compile time from the GF(2^8) field inverse
// and the FIPS affine transform, which removes any transcription risk; the
// FIPS-197 appendix vectors are checked in tests/crypto/aes_test.cpp.
#pragma once

#include <array>
#include <span>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace seda::crypto {

/// One 128-bit AES state / data block.
using Block16 = std::array<u8, 16>;

/// XOR of two 16-byte blocks; the workhorse of CTR mode and B-AES.
[[nodiscard]] constexpr Block16 xor_blocks(const Block16& a, const Block16& b)
{
    Block16 out{};
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = static_cast<u8>(a[i] ^ b[i]);
    return out;
}

/// Which round implementation an Aes instance runs (see crypto/aes_backend.h).
enum class Aes_backend_kind {
    auto_select,  ///< aesni when the CPU has it, else ttable; SEDA_AES_BACKEND overrides
    scalar,       ///< byte-wise FIPS-197 reference
    ttable,       ///< four 256xu32 tables, word-wise rounds (software fast tier)
    aesni,        ///< AES-NI rounds (VAES 2x128-lane CTR when available), CPUID-gated
};

[[nodiscard]] constexpr const char* to_string(Aes_backend_kind k)
{
    switch (k) {
        case Aes_backend_kind::auto_select: return "auto";
        case Aes_backend_kind::scalar: return "scalar";
        case Aes_backend_kind::ttable: return "ttable";
        case Aes_backend_kind::aesni: return "aesni";
    }
    return "?";
}

/// Expanded key material shared by every backend.  The byte-form round keys
/// are the B-AES pad source; the word forms feed the table-driven rounds.
struct Aes_key_schedule {
    int rounds = 0;                   ///< 10 / 12 / 14 for AES-128/192/256
    std::vector<Block16> round_keys;  ///< rounds+1 byte-form round keys
    std::vector<u32> enc_words;       ///< 4*(rounds+1) big-endian column words
    /// Equivalent-inverse-cipher schedule: dec_words[r] = InvMixColumns of
    /// enc round key rounds-r (identity for the first and last entries).
    std::vector<u32> dec_words;
};

class Aes_backend;

/// AES cipher with a fixed key schedule.  Thread-compatible: const methods
/// may be called concurrently from multiple threads.
class Aes {
public:
    /// Builds the key schedule for a 16, 24 or 32-byte key (AES-128/192/256).
    /// Throws Seda_error for any other key length.  `kind` selects the round
    /// implementation; auto_select resolves to the process-wide default.
    explicit Aes(std::span<const u8> key,
                 Aes_backend_kind kind = Aes_backend_kind::auto_select);

    [[nodiscard]] Block16 encrypt_block(const Block16& in) const;
    [[nodiscard]] Block16 decrypt_block(const Block16& in) const;

    /// Bulk interface: encrypts/decrypts every block in place.  One virtual
    /// dispatch for the whole span; the CTR bulk keystream path lives here.
    void encrypt_blocks(std::span<Block16> blocks) const;
    void decrypt_blocks(std::span<Block16> blocks) const;

    /// Fills `out` with CTR keystream for counters (pa, vn)..(pa, vn+n-1),
    /// never materializing the counter blocks (fast backends keep the
    /// counter in registers through the rounds).
    void ctr_keystream(Addr pa, u64 vn, std::span<Block16> out) const;

    /// Number of cipher rounds: 10 / 12 / 14 for AES-128/192/256.
    [[nodiscard]] int rounds() const { return schedule_.rounds; }

    /// Round keys from keyExpansion as rounds()+1 16-byte blocks.
    /// B-AES XORs these onto the base OTP to fan out per-segment pads.
    [[nodiscard]] std::span<const Block16> round_keys() const
    {
        return schedule_.round_keys;
    }

    [[nodiscard]] const Aes_key_schedule& schedule() const { return schedule_; }
    [[nodiscard]] std::string_view backend_name() const;

private:
    Aes_key_schedule schedule_;
    const Aes_backend* backend_ = nullptr;
};

/// GF(2^8) multiply modulo the AES polynomial x^8+x^4+x^3+x+1.  Exposed for
/// tests and for the S-box generation.
[[nodiscard]] constexpr u8 gf_mul(u8 a, u8 b)
{
    u8 p = 0;
    for (int i = 0; i < 8; ++i) {
        if (b & 1) p = static_cast<u8>(p ^ a);
        const bool hi = (a & 0x80) != 0;
        a = static_cast<u8>(a << 1);
        if (hi) a = static_cast<u8>(a ^ 0x1B);
        b = static_cast<u8>(b >> 1);
    }
    return p;
}

/// The AES forward S-box value for `x` (field inverse + affine transform).
[[nodiscard]] constexpr u8 aes_sbox_value(u8 x)
{
    // Multiplicative inverse via exponentiation: x^254 = x^-1 in GF(2^8).
    u8 inv = 0;
    if (x != 0) {
        u8 acc = 1;
        u8 base = x;
        int e = 254;
        while (e > 0) {
            if (e & 1) acc = gf_mul(acc, base);
            base = gf_mul(base, base);
            e >>= 1;
        }
        inv = acc;
    }
    const auto rotl8 = [](u8 v, int s) {
        return static_cast<u8>(static_cast<u8>(v << s) | static_cast<u8>(v >> (8 - s)));
    };
    return static_cast<u8>(inv ^ rotl8(inv, 1) ^ rotl8(inv, 2) ^ rotl8(inv, 3) ^
                           rotl8(inv, 4) ^ 0x63);
}

/// The full forward S-box, generated at compile time.
[[nodiscard]] constexpr std::array<u8, 256> make_aes_sbox()
{
    std::array<u8, 256> t{};
    for (int i = 0; i < 256; ++i)
        t[static_cast<std::size_t>(i)] = aes_sbox_value(static_cast<u8>(i));
    return t;
}

/// The full inverse S-box, generated at compile time.
[[nodiscard]] constexpr std::array<u8, 256> make_aes_inv_sbox()
{
    const auto sbox = make_aes_sbox();
    std::array<u8, 256> t{};
    for (int i = 0; i < 256; ++i) t[sbox[static_cast<std::size_t>(i)]] = static_cast<u8>(i);
    return t;
}

/// keyExpansion alone: the rounds+1 byte-form round keys for a 16/24/32-byte
/// key (throws Seda_error otherwise), without the word-form schedules an Aes
/// instance carries.  B-AES derived pad banks only need these.  AES-128
/// expansion runs through aeskeygenassist when the AES-NI backend is
/// available; the result is bit-identical to the portable path.
[[nodiscard]] std::vector<Block16> expand_round_keys(std::span<const u8> key);

/// The portable RotWord/SubWord/Rcon expansion, unconditionally.  Exposed so
/// tests can cross-validate the aeskeygenassist path against it.
[[nodiscard]] std::vector<Block16> expand_round_keys_portable(std::span<const u8> key);

}  // namespace seda::crypto
