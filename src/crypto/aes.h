// FIPS-197 AES block cipher (128/192/256-bit keys), implemented from scratch.
//
// This is the functional model of the paper's "AES Engine" (Fig. 2(b)):
// keyExpansion, AddRoundKey, SubBytes, ShiftRows, MixColumns.  The round keys
// produced by keyExpansion are exposed because SeDA's bandwidth-aware
// encryption (B-AES, Fig. 3(a) / Algorithm 1 defense) derives per-segment
// one-time pads by XORing the base OTP with them.
//
// The S-boxes are generated at compile time from the GF(2^8) field inverse
// and the FIPS affine transform, which removes any transcription risk; the
// FIPS-197 appendix vectors are checked in tests/crypto/aes_test.cpp.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "common/types.h"

namespace seda::crypto {

/// One 128-bit AES state / data block.
using Block16 = std::array<u8, 16>;

/// XOR of two 16-byte blocks; the workhorse of CTR mode and B-AES.
[[nodiscard]] constexpr Block16 xor_blocks(const Block16& a, const Block16& b)
{
    Block16 out{};
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = static_cast<u8>(a[i] ^ b[i]);
    return out;
}

/// AES cipher with a fixed key schedule.  Thread-compatible: const methods
/// may be called concurrently from multiple threads.
class Aes {
public:
    /// Builds the key schedule for a 16, 24 or 32-byte key (AES-128/192/256).
    /// Throws Seda_error for any other key length.
    explicit Aes(std::span<const u8> key);

    [[nodiscard]] Block16 encrypt_block(const Block16& in) const;
    [[nodiscard]] Block16 decrypt_block(const Block16& in) const;

    /// Number of cipher rounds: 10 / 12 / 14 for AES-128/192/256.
    [[nodiscard]] int rounds() const { return rounds_; }

    /// Round keys from keyExpansion as rounds()+1 16-byte blocks.
    /// B-AES XORs these onto the base OTP to fan out per-segment pads.
    [[nodiscard]] std::span<const Block16> round_keys() const { return round_keys_; }

private:
    int rounds_ = 0;
    std::vector<Block16> round_keys_;
};

/// GF(2^8) multiply modulo the AES polynomial x^8+x^4+x^3+x+1.  Exposed for
/// tests and for the S-box generation.
[[nodiscard]] constexpr u8 gf_mul(u8 a, u8 b)
{
    u8 p = 0;
    for (int i = 0; i < 8; ++i) {
        if (b & 1) p = static_cast<u8>(p ^ a);
        const bool hi = (a & 0x80) != 0;
        a = static_cast<u8>(a << 1);
        if (hi) a = static_cast<u8>(a ^ 0x1B);
        b = static_cast<u8>(b >> 1);
    }
    return p;
}

/// The AES forward S-box value for `x` (field inverse + affine transform).
[[nodiscard]] constexpr u8 aes_sbox_value(u8 x)
{
    // Multiplicative inverse via exponentiation: x^254 = x^-1 in GF(2^8).
    u8 inv = 0;
    if (x != 0) {
        u8 acc = 1;
        u8 base = x;
        int e = 254;
        while (e > 0) {
            if (e & 1) acc = gf_mul(acc, base);
            base = gf_mul(base, base);
            e >>= 1;
        }
        inv = acc;
    }
    const auto rotl8 = [](u8 v, int s) {
        return static_cast<u8>(static_cast<u8>(v << s) | static_cast<u8>(v >> (8 - s)));
    };
    return static_cast<u8>(inv ^ rotl8(inv, 1) ^ rotl8(inv, 2) ^ rotl8(inv, 3) ^
                           rotl8(inv, 4) ^ 0x63);
}

}  // namespace seda::crypto
