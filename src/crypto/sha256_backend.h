// Pluggable SHA-256 compression implementations, mirroring crypto/aes_backend.h.
//
// The integrity side of the secure-memory stack pushes every protected unit
// through HMAC-SHA256, so after PR 1 made AES-CTR table-driven the MAC's
// compression function became the hottest loop in the repo.  Two backends
// exist deliberately:
//
//   * scalar - the loop-form compression that mirrors the FIPS 180-4
//              pseudocode (64-entry message schedule in memory, one round
//              per loop iteration).  Slow, but the obviously-correct
//              reference every other backend is cross-validated against.
//   * fast   - fully unrolled rounds with the 16-word rolling message
//              schedule kept in registers, plus a multi-buffer
//              compress_many that interleaves independent messages to hide
//              the serial a..h dependency chain (GCC generic vectors; the
//              lane widens to 32 B on AVX2-targeted builds).  The fallback
//              tier on CPUs without the SHA extensions.
//   * shani  - hardware compression via sha256rnds2/sha256msg1/sha256msg2,
//              with a compress_many that round-robins two independent
//              messages through the pipeline per pass.  CPUID-gated at
//              runtime; the default wherever available
//              (src/crypto/sha256_backend_shani.cpp).
//
// Backends are stateless singletons (immutable round constants only), so
// const use is thread-safe and one backend object serves any number of
// hashers concurrently.  Selection happens at Sha256 / Hmac_engine
// construction (Sha256_backend_kind); auto_select resolves once per process
// to the best available tier (shani -> fast) unless the SEDA_SHA_BACKEND
// environment variable names a backend, which is the cross-validation
// escape hatch for whole binaries.
#pragma once

#include <span>
#include <string_view>

#include "crypto/sha256.h"

namespace seda::crypto {

/// SHA-256 block size in bytes (FIPS 180-4 sec. 5.2.1).
inline constexpr std::size_t k_sha256_block_bytes = 64;

/// Initial hash value H(0): the first 32 bits of the fractional parts of
/// the square roots of the first eight primes (FIPS 180-4 sec. 5.3.3).
[[nodiscard]] constexpr Sha256_state sha256_initial_state()
{
    return {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
            0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
}

/// One unit of multi-buffer work: advance `state` by compressing the
/// 64-byte block at `block`.  States of concurrent jobs must be distinct
/// objects; blocks may alias freely (they are only read).
struct Sha256_job {
    Sha256_state* state = nullptr;
    const u8* block = nullptr;
};

/// One compression implementation.  Implementations must be stateless
/// (aside from immutable tables) so const use is thread-safe.
class Sha256_backend {
public:
    virtual ~Sha256_backend() = default;

    [[nodiscard]] virtual std::string_view name() const = 0;

    /// Compresses `nblocks` consecutive 64-byte blocks at `data` into
    /// `state` (one serial message stream).
    virtual void compress(Sha256_state& state, const u8* data,
                          std::size_t nblocks) const = 0;

    /// Multi-buffer interface: performs one compression per job, each over
    /// an independent state.  The base implementation loops compress();
    /// fast backends interleave several jobs per pass so the per-round
    /// dependency chains of independent messages overlap.  Bit-identical
    /// to the serial loop by contract.
    virtual void compress_many(std::span<const Sha256_job> jobs) const;
};

/// The loop-form FIPS 180-4 reference backend.
[[nodiscard]] const Sha256_backend& scalar_sha256_backend();

/// The unrolled + multi-buffer fast backend.
[[nodiscard]] const Sha256_backend& fast_sha256_backend();

/// The SHA-NI hardware backend, or nullptr when it can't run here (CPU
/// without the sha feature, non-x86 build, or SEDA_DISABLE_HW_CRYPTO).
[[nodiscard]] const Sha256_backend* shani_sha256_backend();

/// Whether `kind` can run on this CPU/build.  scalar and fast are always
/// available; shani mirrors shani_sha256_backend() != nullptr.
[[nodiscard]] bool sha256_backend_available(Sha256_backend_kind kind);

/// Resolves a kind to a backend; auto_select honours SEDA_SHA_BACKEND
/// ("scalar", "fast" or "shani", read once per process) and otherwise picks
/// the best available tier (shani -> fast).  A kind forced on a CPU that
/// lacks it degrades to fast (with a once-only warning when the forcing
/// came from the environment).
[[nodiscard]] const Sha256_backend& sha256_backend_for(Sha256_backend_kind kind);

/// What auto_select currently resolves to.
[[nodiscard]] Sha256_backend_kind default_sha256_backend_kind();

/// The concrete backends, for cross-validation sweeps.  Includes hardware
/// kinds unconditionally; pair with sha256_backend_available() to skip what
/// the host can't run.
[[nodiscard]] std::span<const Sha256_backend_kind> all_sha256_backend_kinds();

}  // namespace seda::crypto
