// AES-CTR mode with the counter layout the paper uses: PA || VN (Eq. 1/2).
//
// Three encryption disciplines are provided because the paper's security
// argument (Algorithm 1) contrasts them:
//   * crypt_standard   - textbook CTR: the counter increments for every
//                        16-byte segment of the protected unit.  Secure but
//                        needs one AES invocation per segment (what T-AES
//                        parallelizes with N engines).
//   * crypt_shared_otp - a single OTP reused for every segment of the unit.
//                        Bandwidth-cheap but vulnerable to the SECA attack.
//   * B-AES            - see crypto/baes.h: one AES invocation per unit,
//                        per-segment pads derived from round keys.
//
// crypt_standard comes in two gears that produce identical ciphertext:
// the blockwise loop above (the reference discipline) and crypt_bulk, which
// keeps the counter in registers, batches keystream generation through
// Aes::encrypt_blocks, and XORs in u64 lanes.  bench_crypto_micro measures
// the gap; tests assert the equivalence.
#pragma once

#include <span>

#include "common/types.h"
#include "crypto/aes.h"

namespace seda::crypto {

/// Builds the 128-bit counter block PA || VN (both big-endian 64-bit).
[[nodiscard]] Block16 make_counter(Addr pa, u64 vn);

/// Adds `inc` to the low 64 bits (the VN half) of a counter block.
[[nodiscard]] Block16 counter_add(const Block16& ctr, u64 inc);

/// CTR-mode front end over one Aes instance.  Thread-safe for concurrent
/// const use (the key schedule is immutable after construction and the
/// backends are stateless); all crypt_* methods are const and keep their
/// keystream scratch on the stack.
class Aes_ctr {
public:
    explicit Aes_ctr(std::span<const u8> key,
                     Aes_backend_kind kind = Aes_backend_kind::auto_select)
        : aes_(key, kind)
    {
    }

    /// The one-time pad for the data block at (pa, vn): AES-CTR_Ke(PA || VN).
    [[nodiscard]] Block16 otp(Addr pa, u64 vn) const
    {
        return aes_.encrypt_block(make_counter(pa, vn));
    }

    /// Textbook CTR over `data` (any length); segment i uses counter+i.
    /// Encryption and decryption are the same operation (Eq. 1 / Eq. 2).
    /// One AES invocation per 16 B segment: the reference gear.
    void crypt_standard(std::span<u8> data, Addr pa, u64 vn) const;

    /// Same keystream as crypt_standard, generated k_keystream_batch blocks
    /// at a time and XORed in 64-bit lanes.  The fast gear for tile-sized
    /// transfers; bit-identical to crypt_standard on any length.
    void crypt_bulk(std::span<u8> data, Addr pa, u64 vn) const;

    /// Insecure variant: every 16-byte segment XORed with the *same* OTP.
    /// Kept as the SECA attack target; never used by the SeDA scheme.
    void crypt_shared_otp(std::span<u8> data, Addr pa, u64 vn) const;

    [[nodiscard]] const Aes& engine() const { return aes_; }

    /// Keystream blocks generated per ctr_keystream call in crypt_bulk
    /// (1 KB of pad per batch: deep enough to amortize the dispatch and the
    /// hardware backends' per-call round-key loads -- AES-NI retires 8
    /// blocks per wave, so 64 blocks is 8 full waves -- while the scratch
    /// stays comfortably in L1).
    static constexpr std::size_t k_keystream_batch = 64;

private:
    Aes aes_;
};

}  // namespace seda::crypto
