#include "crypto/mac.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "common/bitutil.h"
#include "common/error.h"
#include "crypto/sha256_backend.h"

namespace seda::crypto {
namespace {

constexpr std::size_t k_hmac_block = 64;  // SHA-256 block size in bytes

u64 truncate64(const Digest256& d) { return load_be64(d.data()); }

/// One logical HMAC message for the bulk path: `data` followed by a short
/// `suffix` (the positional fields, or empty), hashed as if concatenated.
struct Bulk_msg {
    std::span<const u8> data;
    std::span<const u8> suffix;
};

/// Per-message block plan for the inner hash.  The message splits into
/// `direct_blocks` full 64-byte blocks read straight out of `data` and a
/// copied tail (data remainder + suffix + Merkle-Damgard padding) staged in
/// a shared scratch buffer.
struct Bulk_plan {
    std::size_t direct_blocks = 0;
    std::size_t total_blocks = 0;  ///< inner blocks after the ipad block
    std::size_t tail_off = 0;      ///< offset into the shared tail scratch
};

/// Per-thread scratch reused across bulk calls.  The bulk pipeline runs
/// once per tile on the hot path, and with a hardware compressor the cost
/// of allocating fresh staging vectors per call rivals a compression wave;
/// thread_local reuse keeps Hmac_engine's concurrent-const-use contract.
struct Bulk_scratch {
    std::vector<Sha256_state> states;
    std::vector<Bulk_plan> plan;
    std::vector<u8> tail;
    std::vector<Sha256_job> jobs;
    std::vector<Sha256_state> outer_states;
    std::vector<u8> outer_blocks;
    // Staging for the public entry points (disjoint from hmac_many's use).
    std::vector<std::array<u8, 28>> fields;
    std::vector<Bulk_msg> msgs;
    std::vector<Digest256> digests;
};

Bulk_scratch& bulk_scratch()
{
    thread_local Bulk_scratch scratch;
    return scratch;
}

/// Bulk HMAC-SHA256 core: out[i] = HMAC(messages[i]) with the ipad/opad
/// compressions already folded into `inner0`/`outer0`.  All inner hashes
/// advance in lock-step waves (one block per message per wave) through the
/// backend's multi-buffer compressor, then every outer hash -- exactly one
/// block each -- runs as a single wave.  Equal-length messages keep every
/// wave full; ragged batches simply drop finished messages out of later
/// waves.  Bit-identical to the serial per-message path.
void hmac_many(const Sha256_backend& be, const Sha256_state& inner0,
               const Sha256_state& outer0, std::span<const Bulk_msg> msgs,
               std::span<Digest256> out)
{
    const std::size_t n = msgs.size();
    Bulk_scratch& sc = bulk_scratch();
    std::vector<Sha256_state>& states = sc.states;
    states.assign(n, inner0);
    std::vector<Bulk_plan>& plan = sc.plan;
    plan.assign(n, Bulk_plan{});

    std::size_t tail_total = 0;
    std::size_t max_blocks = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t len = msgs[i].data.size() + msgs[i].suffix.size();
        // Padding needs >= 9 bytes (0x80 + 64-bit length) after the message.
        plan[i].total_blocks = (len + 9 + k_hmac_block - 1) / k_hmac_block;
        plan[i].direct_blocks = msgs[i].data.size() / k_hmac_block;
        plan[i].tail_off = tail_total;
        tail_total += (plan[i].total_blocks - plan[i].direct_blocks) * k_hmac_block;
        max_blocks = std::max(max_blocks, plan[i].total_blocks);
    }

    // Stage every tail: data remainder, suffix, 0x80, zeros, bit length of
    // the whole inner stream (the 64-byte ipad block counts toward it).
    std::vector<u8>& tail = sc.tail;
    tail.assign(tail_total, 0);
    for (std::size_t i = 0; i < n; ++i) {
        const Bulk_msg& m = msgs[i];
        const std::size_t rem = m.data.size() - plan[i].direct_blocks * k_hmac_block;
        u8* t = tail.data() + plan[i].tail_off;
        if (rem != 0) std::memcpy(t, m.data.data() + plan[i].direct_blocks * k_hmac_block, rem);
        if (!m.suffix.empty()) std::memcpy(t + rem, m.suffix.data(), m.suffix.size());
        t[rem + m.suffix.size()] = 0x80;
        const std::size_t tail_bytes =
            (plan[i].total_blocks - plan[i].direct_blocks) * k_hmac_block;
        const u64 bit_len = (k_hmac_block + m.data.size() + m.suffix.size()) * 8;
        store_be64(t + tail_bytes - 8, bit_len);
    }

    // Inner waves: block b of every still-unfinished message, interleaved.
    std::vector<Sha256_job>& jobs = sc.jobs;
    jobs.reserve(n);
    for (std::size_t b = 0; b < max_blocks; ++b) {
        jobs.clear();
        for (std::size_t i = 0; i < n; ++i) {
            if (b >= plan[i].total_blocks) continue;
            const u8* block =
                b < plan[i].direct_blocks
                    ? msgs[i].data.data() + b * k_hmac_block
                    : tail.data() + plan[i].tail_off +
                          (b - plan[i].direct_blocks) * k_hmac_block;
            jobs.push_back({&states[i], block});
        }
        be.compress_many(jobs);
    }

    // Outer pass: each message's outer hash is exactly one padded block
    // (32-byte inner digest + padding), so the whole batch is one wave.
    std::vector<Sha256_state>& outer_states = sc.outer_states;
    outer_states.assign(n, outer0);
    std::vector<u8>& outer_blocks = sc.outer_blocks;
    outer_blocks.assign(n * k_hmac_block, 0);
    jobs.clear();
    for (std::size_t i = 0; i < n; ++i) {
        u8* ob = outer_blocks.data() + i * k_hmac_block;
        for (int w = 0; w < 8; ++w)
            store_be32(ob + 4 * w, states[i][static_cast<std::size_t>(w)]);
        ob[32] = 0x80;
        store_be64(ob + 56, (k_hmac_block + 32) * 8);
        jobs.push_back({&outer_states[i], ob});
    }
    be.compress_many(jobs);

    for (std::size_t i = 0; i < n; ++i)
        for (int w = 0; w < 8; ++w)
            store_be32(out[i].data() + 4 * w, outer_states[i][static_cast<std::size_t>(w)]);
}

/// Serializes the positional fields exactly as positional_mac streams them.
std::array<u8, 28> mac_fields(const Mac_context& ctx)
{
    std::array<u8, 28> fields{};
    store_be64(fields.data(), ctx.pa);
    store_be64(fields.data() + 8, ctx.vn);
    store_be32(fields.data() + 16, ctx.layer_id);
    store_be32(fields.data() + 20, ctx.fmap_idx);
    store_be32(fields.data() + 24, ctx.blk_idx);
    return fields;
}

}  // namespace

Hmac_engine::Hmac_engine(std::span<const u8> key, Sha256_backend_kind kind)
    : backend_(&sha256_backend_for(kind)),
      kind_(kind == Sha256_backend_kind::auto_select ? default_sha256_backend_kind()
                                                     : kind)
{
    std::array<u8, k_hmac_block> k0{};
    if (key.size() > k_hmac_block) {
        Sha256 kh(kind);
        kh.update(key);
        const Digest256 kd = kh.finish();
        std::copy(kd.begin(), kd.end(), k0.begin());
    } else {
        std::copy(key.begin(), key.end(), k0.begin());
    }

    std::array<u8, k_hmac_block> ipad{};
    std::array<u8, k_hmac_block> opad{};
    for (std::size_t i = 0; i < k_hmac_block; ++i) {
        ipad[i] = static_cast<u8>(k0[i] ^ 0x36);
        opad[i] = static_cast<u8>(k0[i] ^ 0x5c);
    }
    // Absorb each pad block exactly once into the raw mid-states -- the
    // single stored form.  Streaming single-MAC hashers fork() off these,
    // and the bulk path copies them per message, so neither re-hashes the
    // key material.
    inner_state_ = sha256_initial_state();
    backend_->compress(inner_state_, ipad.data(), 1);
    outer_state_ = sha256_initial_state();
    backend_->compress(outer_state_, opad.data(), 1);
}

Sha256 Hmac_engine::fork(const Sha256_state& state) const
{
    Sha256 h(kind_);
    h.resume(state, k_hmac_block);
    return h;
}

Digest256 Hmac_engine::mac(std::span<const u8> message) const
{
    Sha256 inner = fork(inner_state_);
    inner.update(message);
    const Digest256 inner_digest = inner.finish();

    Sha256 outer = fork(outer_state_);
    outer.update(inner_digest);
    return outer.finish();
}

u64 Hmac_engine::naive_mac(std::span<const u8> ciphertext) const
{
    return truncate64(mac(ciphertext));
}

u64 Hmac_engine::positional_mac(std::span<const u8> ciphertext, const Mac_context& ctx) const
{
    // HASH_Kh(blk || PA || VN || layer_id || fmap_idx || blk_idx), Alg. 2 l.8.
    // The fields stream into the hash after the ciphertext -- identical
    // digest to concatenating them into one buffer, without the buffer.
    const std::array<u8, 28> fields = mac_fields(ctx);

    Sha256 inner = fork(inner_state_);
    inner.update(ciphertext);
    inner.update(fields);
    const Digest256 inner_digest = inner.finish();

    Sha256 outer = fork(outer_state_);
    outer.update(inner_digest);
    return truncate64(outer.finish());
}

void Hmac_engine::digest_many(std::span<const std::span<const u8>> messages,
                              std::span<Digest256> out) const
{
    require(messages.size() == out.size(), "Hmac_engine::digest_many: size mismatch");
    std::vector<Bulk_msg>& msgs = bulk_scratch().msgs;
    msgs.assign(messages.size(), Bulk_msg{});
    for (std::size_t i = 0; i < messages.size(); ++i) msgs[i].data = messages[i];
    hmac_many(*backend_, inner_state_, outer_state_, msgs, out);
}

void Hmac_engine::positional_macs(std::span<const Mac_request> reqs,
                                  std::span<u64> out) const
{
    require(reqs.size() == out.size(), "Hmac_engine::positional_macs: size mismatch");
    Bulk_scratch& sc = bulk_scratch();
    std::vector<std::array<u8, 28>>& fields = sc.fields;
    fields.resize(reqs.size());
    std::vector<Bulk_msg>& msgs = sc.msgs;
    msgs.resize(reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        fields[i] = mac_fields(reqs[i].ctx);
        msgs[i] = {reqs[i].ciphertext, fields[i]};
    }
    std::vector<Digest256>& digests = sc.digests;
    digests.resize(reqs.size());
    hmac_many(*backend_, inner_state_, outer_state_, msgs, digests);
    for (std::size_t i = 0; i < reqs.size(); ++i) out[i] = truncate64(digests[i]);
}

Digest256 hmac_sha256(std::span<const u8> key, std::span<const u8> message)
{
    return Hmac_engine(key).mac(message);
}

u64 naive_block_mac(std::span<const u8> key, std::span<const u8> ciphertext)
{
    return Hmac_engine(key).naive_mac(ciphertext);
}

u64 positional_block_mac(std::span<const u8> key, std::span<const u8> ciphertext,
                         const Mac_context& ctx)
{
    return Hmac_engine(key).positional_mac(ciphertext, ctx);
}

u64 xor_fold(std::span<const u64> macs)
{
    u64 acc = 0;
    for (u64 m : macs) acc ^= m;
    return acc;
}

}  // namespace seda::crypto
