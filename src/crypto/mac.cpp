#include "crypto/mac.h"

#include <algorithm>
#include <array>

namespace seda::crypto {
namespace {

constexpr std::size_t k_hmac_block = 64;  // SHA-256 block size in bytes

u64 truncate64(const Digest256& d)
{
    u64 v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | d[static_cast<std::size_t>(i)];
    return v;
}

void append_u64(std::vector<u8>& out, u64 v)
{
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<u8>(v >> (56 - 8 * i)));
}

void append_u32(std::vector<u8>& out, u32 v)
{
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<u8>(v >> (24 - 8 * i)));
}

}  // namespace

Digest256 hmac_sha256(std::span<const u8> key, std::span<const u8> message)
{
    std::array<u8, k_hmac_block> k0{};
    if (key.size() > k_hmac_block) {
        const Digest256 kd = sha256(key);
        std::copy(kd.begin(), kd.end(), k0.begin());
    } else {
        std::copy(key.begin(), key.end(), k0.begin());
    }

    std::array<u8, k_hmac_block> ipad{};
    std::array<u8, k_hmac_block> opad{};
    for (std::size_t i = 0; i < k_hmac_block; ++i) {
        ipad[i] = static_cast<u8>(k0[i] ^ 0x36);
        opad[i] = static_cast<u8>(k0[i] ^ 0x5c);
    }

    Sha256 inner;
    inner.update(ipad);
    inner.update(message);
    const Digest256 inner_digest = inner.finish();

    Sha256 outer;
    outer.update(opad);
    outer.update(inner_digest);
    return outer.finish();
}

u64 naive_block_mac(std::span<const u8> key, std::span<const u8> ciphertext)
{
    return truncate64(hmac_sha256(key, ciphertext));
}

u64 positional_block_mac(std::span<const u8> key, std::span<const u8> ciphertext,
                         const Mac_context& ctx)
{
    // HASH_Kh(blk || PA || VN || layer_id || fmap_idx || blk_idx), Alg. 2 l.8.
    std::vector<u8> msg(ciphertext.begin(), ciphertext.end());
    msg.reserve(ciphertext.size() + 8 + 8 + 4 + 4 + 4);
    append_u64(msg, ctx.pa);
    append_u64(msg, ctx.vn);
    append_u32(msg, ctx.layer_id);
    append_u32(msg, ctx.fmap_idx);
    append_u32(msg, ctx.blk_idx);
    return truncate64(hmac_sha256(key, msg));
}

u64 xor_fold(std::span<const u64> macs)
{
    u64 acc = 0;
    for (u64 m : macs) acc ^= m;
    return acc;
}

}  // namespace seda::crypto
