#include "crypto/mac.h"

#include <algorithm>
#include <array>

#include "common/bitutil.h"

namespace seda::crypto {
namespace {

constexpr std::size_t k_hmac_block = 64;  // SHA-256 block size in bytes

u64 truncate64(const Digest256& d) { return load_be64(d.data()); }

}  // namespace

Hmac_engine::Hmac_engine(std::span<const u8> key)
{
    std::array<u8, k_hmac_block> k0{};
    if (key.size() > k_hmac_block) {
        const Digest256 kd = sha256(key);
        std::copy(kd.begin(), kd.end(), k0.begin());
    } else {
        std::copy(key.begin(), key.end(), k0.begin());
    }

    std::array<u8, k_hmac_block> ipad{};
    std::array<u8, k_hmac_block> opad{};
    for (std::size_t i = 0; i < k_hmac_block; ++i) {
        ipad[i] = static_cast<u8>(k0[i] ^ 0x36);
        opad[i] = static_cast<u8>(k0[i] ^ 0x5c);
    }
    // Absorb the pad blocks once; per-message MACs resume from copies of
    // these mid-states instead of re-hashing the key material.
    inner_base_.update(ipad);
    outer_base_.update(opad);
}

Digest256 Hmac_engine::mac(std::span<const u8> message) const
{
    Sha256 inner = inner_base_;
    inner.update(message);
    const Digest256 inner_digest = inner.finish();

    Sha256 outer = outer_base_;
    outer.update(inner_digest);
    return outer.finish();
}

u64 Hmac_engine::naive_mac(std::span<const u8> ciphertext) const
{
    return truncate64(mac(ciphertext));
}

u64 Hmac_engine::positional_mac(std::span<const u8> ciphertext, const Mac_context& ctx) const
{
    // HASH_Kh(blk || PA || VN || layer_id || fmap_idx || blk_idx), Alg. 2 l.8.
    // The fields stream into the hash after the ciphertext -- identical
    // digest to concatenating them into one buffer, without the buffer.
    std::array<u8, 28> fields{};
    store_be64(fields.data(), ctx.pa);
    store_be64(fields.data() + 8, ctx.vn);
    store_be32(fields.data() + 16, ctx.layer_id);
    store_be32(fields.data() + 20, ctx.fmap_idx);
    store_be32(fields.data() + 24, ctx.blk_idx);

    Sha256 inner = inner_base_;
    inner.update(ciphertext);
    inner.update(fields);
    const Digest256 inner_digest = inner.finish();

    Sha256 outer = outer_base_;
    outer.update(inner_digest);
    return truncate64(outer.finish());
}

Digest256 hmac_sha256(std::span<const u8> key, std::span<const u8> message)
{
    return Hmac_engine(key).mac(message);
}

u64 naive_block_mac(std::span<const u8> key, std::span<const u8> ciphertext)
{
    return Hmac_engine(key).naive_mac(ciphertext);
}

u64 positional_block_mac(std::span<const u8> key, std::span<const u8> ciphertext,
                         const Mac_context& ctx)
{
    return Hmac_engine(key).positional_mac(ciphertext, ctx);
}

u64 xor_fold(std::span<const u64> macs)
{
    u64 acc = 0;
    for (u64 m : macs) acc ^= m;
    return acc;
}

}  // namespace seda::crypto
