#include "crypto/sha256.h"

#include <algorithm>

#include "common/bitutil.h"

namespace seda::crypto {
namespace {

// First 32 bits of the fractional parts of the cube roots of the first 64
// primes (FIPS 180-4 sec. 4.2.2).
constexpr std::array<u32, 64> k_k = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::array<u32, 8> k_init = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                                       0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

constexpr u32 big_sigma0(u32 x) { return rotr32(x, 2) ^ rotr32(x, 13) ^ rotr32(x, 22); }
constexpr u32 big_sigma1(u32 x) { return rotr32(x, 6) ^ rotr32(x, 11) ^ rotr32(x, 25); }
constexpr u32 small_sigma0(u32 x) { return rotr32(x, 7) ^ rotr32(x, 18) ^ (x >> 3); }
constexpr u32 small_sigma1(u32 x) { return rotr32(x, 17) ^ rotr32(x, 19) ^ (x >> 10); }
constexpr u32 ch(u32 x, u32 y, u32 z) { return (x & y) ^ (~x & z); }
constexpr u32 maj(u32 x, u32 y, u32 z) { return (x & y) ^ (x & z) ^ (y & z); }

}  // namespace

void Sha256::reset()
{
    h_ = k_init;
    buf_len_ = 0;
    total_len_ = 0;
}

void Sha256::process_block(const u8* p)
{
    std::array<u32, 64> w{};
    for (int t = 0; t < 16; ++t) w[static_cast<std::size_t>(t)] = load_be32(p + 4 * t);
    for (int t = 16; t < 64; ++t)
        w[static_cast<std::size_t>(t)] =
            small_sigma1(w[static_cast<std::size_t>(t - 2)]) + w[static_cast<std::size_t>(t - 7)] +
            small_sigma0(w[static_cast<std::size_t>(t - 15)]) + w[static_cast<std::size_t>(t - 16)];

    u32 a = h_[0], b = h_[1], c = h_[2], d = h_[3];
    u32 e = h_[4], f = h_[5], g = h_[6], h = h_[7];
    for (int t = 0; t < 64; ++t) {
        const u32 t1 = h + big_sigma1(e) + ch(e, f, g) + k_k[static_cast<std::size_t>(t)] +
                       w[static_cast<std::size_t>(t)];
        const u32 t2 = big_sigma0(a) + maj(a, b, c);
        h = g;
        g = f;
        f = e;
        e = d + t1;
        d = c;
        c = b;
        b = a;
        a = t1 + t2;
    }
    h_[0] += a;
    h_[1] += b;
    h_[2] += c;
    h_[3] += d;
    h_[4] += e;
    h_[5] += f;
    h_[6] += g;
    h_[7] += h;
}

void Sha256::update(std::span<const u8> data)
{
    total_len_ += data.size();
    while (!data.empty()) {
        const std::size_t take = std::min<std::size_t>(data.size(), buf_.size() - buf_len_);
        std::copy_n(data.begin(), take, buf_.begin() + static_cast<std::ptrdiff_t>(buf_len_));
        buf_len_ += take;
        data = data.subspan(take);
        if (buf_len_ == buf_.size()) {
            process_block(buf_.data());
            buf_len_ = 0;
        }
    }
}

Digest256 Sha256::finish()
{
    const u64 bit_len = total_len_ * 8;
    const u8 pad_one = 0x80;
    update(std::span<const u8>(&pad_one, 1));
    const u8 zero = 0x00;
    while (buf_len_ != 56) update(std::span<const u8>(&zero, 1));

    // Bypass update()'s length accounting for the final length field.
    store_be64(buf_.data() + 56, bit_len);
    process_block(buf_.data());

    Digest256 out{};
    for (int i = 0; i < 8; ++i)
        store_be32(out.data() + 4 * i, h_[static_cast<std::size_t>(i)]);
    reset();
    return out;
}

Digest256 sha256(std::span<const u8> data)
{
    Sha256 h;
    h.update(data);
    return h.finish();
}

std::string to_hex(std::span<const u8> bytes)
{
    static constexpr char digits[] = "0123456789abcdef";
    std::string s;
    s.reserve(bytes.size() * 2);
    for (u8 b : bytes) {
        s.push_back(digits[b >> 4]);
        s.push_back(digits[b & 0xF]);
    }
    return s;
}

}  // namespace seda::crypto
