#include "crypto/sha256.h"

#include <algorithm>

#include "common/bitutil.h"
#include "common/error.h"
#include "crypto/sha256_backend.h"

namespace seda::crypto {

Sha256::Sha256(Sha256_backend_kind kind) : backend_(&sha256_backend_for(kind)) { reset(); }

void Sha256::reset()
{
    h_ = sha256_initial_state();
    buf_len_ = 0;
    total_len_ = 0;
}

void Sha256::resume(const Sha256_state& state, u64 bytes)
{
    require(bytes % k_sha256_block_bytes == 0,
            "Sha256::resume: byte count must be block-aligned");
    h_ = state;
    buf_len_ = 0;
    total_len_ = bytes;
}

void Sha256::update(std::span<const u8> data)
{
    total_len_ += data.size();

    // Top up a partially filled buffer first.
    if (buf_len_ != 0) {
        const std::size_t take = std::min<std::size_t>(data.size(), buf_.size() - buf_len_);
        std::copy_n(data.begin(), take, buf_.begin() + static_cast<std::ptrdiff_t>(buf_len_));
        buf_len_ += take;
        data = data.subspan(take);
        if (buf_len_ == buf_.size()) {
            backend_->compress(h_, buf_.data(), 1);
            buf_len_ = 0;
        }
        // Everything fit in the (possibly still partial) buffer.
        if (data.empty()) return;
    }

    // Full blocks compress straight from the caller's buffer -- one backend
    // call for the whole run, no staging copy.
    const std::size_t full = data.size() / k_sha256_block_bytes;
    if (full != 0) {
        backend_->compress(h_, data.data(), full);
        data = data.subspan(full * k_sha256_block_bytes);
    }

    std::copy_n(data.begin(), data.size(), buf_.begin());
    buf_len_ = data.size();
}

Digest256 Sha256::finish()
{
    const u64 bit_len = total_len_ * 8;

    // Merkle-Damgard padding: 0x80, zeros to 56 mod 64, 64-bit bit length.
    buf_[buf_len_++] = 0x80;
    if (buf_len_ > 56) {
        std::fill(buf_.begin() + static_cast<std::ptrdiff_t>(buf_len_), buf_.end(), u8{0});
        backend_->compress(h_, buf_.data(), 1);
        buf_len_ = 0;
    }
    std::fill(buf_.begin() + static_cast<std::ptrdiff_t>(buf_len_), buf_.begin() + 56, u8{0});
    store_be64(buf_.data() + 56, bit_len);
    backend_->compress(h_, buf_.data(), 1);

    Digest256 out{};
    for (int i = 0; i < 8; ++i)
        store_be32(out.data() + 4 * i, h_[static_cast<std::size_t>(i)]);
    reset();
    return out;
}

Digest256 sha256(std::span<const u8> data)
{
    Sha256 h;
    h.update(data);
    return h.finish();
}

std::string to_hex(std::span<const u8> bytes)
{
    static constexpr char digits[] = "0123456789abcdef";
    std::string s;
    s.reserve(bytes.size() * 2);
    for (u8 b : bytes) {
        s.push_back(digits[b >> 4]);
        s.push_back(digits[b & 0xF]);
    }
    return s;
}

}  // namespace seda::crypto
