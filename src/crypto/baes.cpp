#include "crypto/baes.h"

#include "common/error.h"

namespace seda::crypto {

Baes_engine::Baes_engine(std::span<const u8> key)
    : key_(key.begin(), key.end()), ctr_(key)
{
}

std::vector<Block16> Baes_engine::otps(Addr pa, u64 vn, std::size_t lanes) const
{
    std::vector<Block16> pads;
    pads.reserve(lanes);
    const Block16 base = ctr_.otp(pa, vn);
    const auto primary = ctr_.engine().round_keys();
    for (std::size_t i = 0; i < lanes && i < primary.size(); ++i)
        pads.push_back(xor_blocks(base, primary[i]));

    // Extension for very wide units: re-key the expansion with
    // key ^ (PA || VN) ^ bank to mint additional independent key banks.
    u64 bank = 1;
    while (pads.size() < lanes) {
        const Block16 ctr_block = counter_add(make_counter(pa, vn), bank);
        std::vector<u8> derived = key_;
        for (std::size_t i = 0; i < derived.size(); ++i)
            derived[i] = static_cast<u8>(derived[i] ^ ctr_block[i % ctr_block.size()]);
        const Aes expanded(derived);
        for (const auto& rk : expanded.round_keys()) {
            if (pads.size() == lanes) break;
            pads.push_back(xor_blocks(base, rk));
        }
        ++bank;
    }
    return pads;
}

void Baes_engine::crypt(std::span<u8> data, Addr pa, u64 vn) const
{
    const std::size_t lanes = (data.size() + k_aes_block_bytes - 1) / k_aes_block_bytes;
    const auto pads = otps(pa, vn, lanes);
    for (std::size_t seg = 0; seg < lanes; ++seg) {
        const std::size_t off = seg * k_aes_block_bytes;
        const std::size_t n = std::min<std::size_t>(k_aes_block_bytes, data.size() - off);
        for (std::size_t i = 0; i < n; ++i)
            data[off + i] = static_cast<u8>(data[off + i] ^ pads[seg][i]);
    }
}

}  // namespace seda::crypto
