#include "crypto/baes.h"
#include "common/bitutil.h"
#include "common/error.h"

namespace seda::crypto {

Baes_engine::Baes_engine(std::span<const u8> key, Aes_backend_kind kind)
    : key_(key.begin(), key.end()), ctr_(key, kind)
{
}

std::vector<Block16> Baes_engine::otps(Addr pa, u64 vn, std::size_t lanes) const
{
    std::vector<Block16> pads;
    otps_into(pa, vn, lanes, pads);
    return pads;
}

void Baes_engine::otps_many(std::span<const Otp_request> reqs,
                            std::span<Block16> bases) const
{
    require(reqs.size() == bases.size(),
            "Baes_engine::otps_many: bases span must match requests");
    for (std::size_t i = 0; i < reqs.size(); ++i)
        bases[i] = make_counter(reqs[i].pa, reqs[i].vn);
    ctr_.engine().encrypt_blocks(bases);
}

void Baes_engine::otps_into(Addr pa, u64 vn, std::size_t lanes,
                            std::vector<Block16>& pads) const
{
    fan_out(ctr_.otp(pa, vn), pa, vn, lanes, pads);
}

void Baes_engine::fan_out(const Block16& base, Addr pa, u64 vn, std::size_t lanes,
                          std::vector<Block16>& pads) const
{
    pads.clear();
    pads.reserve(lanes);
    const auto primary = ctr_.engine().round_keys();
    for (std::size_t i = 0; i < lanes && i < primary.size(); ++i)
        pads.push_back(xor_blocks(base, primary[i]));

    // Extension for very wide units: re-key the expansion with
    // key ^ (PA || VN) ^ bank to mint additional independent key banks.
    // Only keyExpansion runs here -- no cipher schedule is built.
    u64 bank = 1;
    while (pads.size() < lanes) {
        const Block16 ctr_block = counter_add(make_counter(pa, vn), bank);
        std::vector<u8> derived = key_;
        for (std::size_t i = 0; i < derived.size(); ++i)
            derived[i] = static_cast<u8>(derived[i] ^ ctr_block[i % ctr_block.size()]);
        for (const auto& rk : expand_round_keys(derived)) {
            if (pads.size() == lanes) break;
            pads.push_back(xor_blocks(base, rk));
        }
        ++bank;
    }
}

void Baes_engine::crypt(std::span<u8> data, Addr pa, u64 vn) const
{
    std::vector<Block16> pads;
    crypt_with(data, pa, vn, pads);
}

void Baes_engine::crypt_with(std::span<u8> data, Addr pa, u64 vn,
                             std::vector<Block16>& pad_scratch) const
{
    const std::size_t lanes = (data.size() + k_aes_block_bytes - 1) / k_aes_block_bytes;
    otps_into(pa, vn, lanes, pad_scratch);
    xor_lanes(data, pad_scratch);
}

void Baes_engine::crypt_with_base(std::span<u8> data, Addr pa, u64 vn, const Block16& base,
                                  std::vector<Block16>& pad_scratch) const
{
    const std::size_t lanes = (data.size() + k_aes_block_bytes - 1) / k_aes_block_bytes;
    fan_out(base, pa, vn, lanes, pad_scratch);
    xor_lanes(data, pad_scratch);
}

void Baes_engine::xor_lanes(std::span<u8> data, std::span<const Block16> pads)
{
    const std::size_t lanes = (data.size() + k_aes_block_bytes - 1) / k_aes_block_bytes;
    for (std::size_t seg = 0; seg < lanes; ++seg) {
        const std::size_t off = seg * k_aes_block_bytes;
        const std::size_t n = std::min<std::size_t>(k_aes_block_bytes, data.size() - off);
        u8* p = data.data() + off;
        const u8* pad = pads[seg].data();
        if (n == k_aes_block_bytes) {
            xor_16_bytes(p, pad);
        } else {
            for (std::size_t i = 0; i < n; ++i) p[i] = static_cast<u8>(p[i] ^ pad[i]);
        }
    }
}

}  // namespace seda::crypto
