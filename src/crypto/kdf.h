// Deterministic subkey derivation for the multi-tenant serving layer.
//
// Each tenant of a serve::Server owns an isolated (encryption, MAC) key
// pair derived from the operator's master keys, so a compromise of one
// tenant's keys -- or a cross-tenant splice of stored units -- never
// verifies under another tenant's engines (tests/serve/ holds this).  The
// construction is a single-block HKDF-expand:
//
//     subkey = HMAC-SHA256(master, label || BE64(id) || 0x01)[:out_bytes]
//
// HMAC's PRF property gives computational independence between subkeys of
// distinct (label, id) pairs; the label separates key *roles* (encryption
// vs MAC) so the two subkeys of one tenant never coincide even when the
// master keys do.
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace seda::crypto {

/// Derives `out_bytes` (<= 32) of subkey from `master` for (label, id).
/// Deterministic: same inputs, same subkey, on every platform.
[[nodiscard]] std::vector<u8> derive_key(std::span<const u8> master, std::string_view label,
                                         u64 id, std::size_t out_bytes = 16);

}  // namespace seda::crypto
