// Message-authentication layer: HMAC-SHA256, the 64-bit truncated block MACs
// the protection schemes store per protected unit, and the XOR-MAC
// aggregation that SeDA folds into layer MACs.
//
// Two block-MAC flavours exist deliberately:
//   * naive_block_mac     - MAC over the ciphertext alone.  XOR-folding these
//                           is the Securator-style layer MAC that Algorithm 2
//                           shows is vulnerable to the Re-Permutation Attack
//                           (RePA): XOR is commutative, so shuffled blocks
//                           still verify.
//   * positional_block_mac- SeDA's defense: the MAC binds blk || PA || VN ||
//                           layer_id || fmap_idx || blk_idx, so any
//                           re-permutation changes the layer MAC.
//
// Tile transfers go through the bulk entry points (digest_many /
// positional_macs): many independent unit MACs stream through the SHA-256
// backend's multi-buffer compressor in lock-step waves, reusing the
// engine's precomputed ipad/opad mid-states.  Bit-identical to calling
// mac()/positional_mac() per unit -- tests/crypto/sha256_backend_test.cpp
// holds that equivalence on equal-length and ragged batches.
#pragma once

#include <span>
#include <vector>

#include "common/types.h"
#include "crypto/sha256.h"

namespace seda::crypto {

/// HMAC-SHA256 per RFC 2104 / FIPS 198-1.
[[nodiscard]] Digest256 hmac_sha256(std::span<const u8> key, std::span<const u8> message);

struct Mac_context;
struct Mac_request;
class Sha256_backend;

/// Precomputed-key HMAC-SHA256 engine: the ipad/opad blocks are absorbed
/// once at construction, saving two of the three-ish compression calls a
/// short-message HMAC costs.  This is the verifier-side analogue of the
/// batch crypto pipeline: Secure_memory keeps one engine per key and reuses
/// it for every unit of a tile transfer.
///
/// Thread-safety: const methods may run concurrently from any number of
/// threads (the engine holds only immutable mid-states and a stateless
/// backend; bulk calls keep their scratch on the caller's stack/heap).
class Hmac_engine {
public:
    /// `kind` selects the SHA-256 compression backend for every MAC this
    /// engine computes, single and bulk alike; auto_select resolves to the
    /// process-wide default (SEDA_SHA_BACKEND or fast).
    explicit Hmac_engine(std::span<const u8> key,
                         Sha256_backend_kind kind = Sha256_backend_kind::auto_select);

    /// Full HMAC-SHA256 digest of `message`.
    [[nodiscard]] Digest256 mac(std::span<const u8> message) const;

    /// 64-bit truncated MAC over the ciphertext alone (RePA-vulnerable).
    [[nodiscard]] u64 naive_mac(std::span<const u8> ciphertext) const;

    /// 64-bit truncated positional MAC (Alg. 2 l.8): the position fields are
    /// streamed into the hash after the ciphertext, so no message buffer is
    /// assembled at all.
    [[nodiscard]] u64 positional_mac(std::span<const u8> ciphertext,
                                     const Mac_context& ctx) const;

    /// Bulk full digests: out[i] = mac(messages[i]), with the independent
    /// messages advanced in lock-step waves through the backend's
    /// multi-buffer compressor.  Messages of equal length (the fixed-size
    /// protection-unit case) batch perfectly; ragged lengths still batch
    /// for their common prefix of blocks.  `out.size()` must equal
    /// `messages.size()`.
    void digest_many(std::span<const std::span<const u8>> messages,
                     std::span<Digest256> out) const;

    /// Bulk truncated positional MACs: out[i] = positional_mac(
    /// reqs[i].ciphertext, reqs[i].ctx), batched like digest_many.  This is
    /// the MAC half of Secure_memory's tile write/read path.
    void positional_macs(std::span<const Mac_request> reqs, std::span<u64> out) const;

private:
    /// Forks a streaming hasher off one of the pad mid-states.
    [[nodiscard]] Sha256 fork(const Sha256_state& state) const;

    const Sha256_backend* backend_;  ///< compression impl for every path
    Sha256_backend_kind kind_;       ///< as resolved for this engine
    Sha256_state inner_state_{};     ///< mid-state after K0 ^ ipad
    Sha256_state outer_state_{};     ///< mid-state after K0 ^ opad
};

/// Position/identity fields bound into a SeDA block MAC (Algorithm 2, def.).
struct Mac_context {
    Addr pa = 0;        ///< physical address of the unit
    u64 vn = 0;         ///< version number at write time
    u32 layer_id = 0;   ///< DNN layer producing/owning the data
    u32 fmap_idx = 0;   ///< feature-map index within the layer
    u32 blk_idx = 0;    ///< authentication-block index within the feature map
};

/// One entry of a bulk positional-MAC batch (Hmac_engine::positional_macs).
struct Mac_request {
    std::span<const u8> ciphertext;
    Mac_context ctx;
};

/// 64-bit MAC over the ciphertext only (RePA-vulnerable baseline).
[[nodiscard]] u64 naive_block_mac(std::span<const u8> key, std::span<const u8> ciphertext);

/// 64-bit MAC binding the ciphertext to its position (SeDA / Alg. 2 defense).
[[nodiscard]] u64 positional_block_mac(std::span<const u8> key,
                                       std::span<const u8> ciphertext,
                                       const Mac_context& ctx);

/// XOR-MAC aggregator (Bellare, Guerin, Rogaway): parallelizable and
/// incremental.  SeDA XORs all optBlk MACs of a layer into one layer MAC.
class Xor_mac_accumulator {
public:
    void fold(u64 mac) { acc_ ^= mac; ++count_; }

    /// XOR is its own inverse, so a block can be *removed* from the
    /// aggregate; this is what makes the scheme incremental under updates.
    void unfold(u64 mac)
    {
        acc_ ^= mac;
        --count_;
    }

    [[nodiscard]] u64 value() const { return acc_; }
    [[nodiscard]] u64 count() const { return count_; }
    void reset()
    {
        acc_ = 0;
        count_ = 0;
    }

private:
    u64 acc_ = 0;
    u64 count_ = 0;
};

/// Convenience: XOR-fold a whole sequence of MACs.
[[nodiscard]] u64 xor_fold(std::span<const u64> macs);

}  // namespace seda::crypto
