#include "crypto/attacks.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "common/error.h"

namespace seda::crypto {

Seca_result seca_attack(std::span<const u8> ciphertext, const Block16& most_value_p,
                        std::span<const u8> true_plaintext)
{
    require(ciphertext.size() == true_plaintext.size(),
            "seca_attack: oracle plaintext must match ciphertext length");
    require(ciphertext.size() % k_aes_block_bytes == 0,
            "seca_attack: ciphertext must be a multiple of 16 bytes");

    const std::size_t segments = ciphertext.size() / k_aes_block_bytes;
    Seca_result result;
    result.segments = segments;
    if (segments == 0) return result;

    // CALC_FREQ_VALUE (Alg. 1 l.1): histogram of 16-byte ciphertext values.
    std::map<Block16, std::size_t> freq;
    for (std::size_t s = 0; s < segments; ++s) {
        Block16 seg{};
        std::copy_n(ciphertext.begin() + static_cast<std::ptrdiff_t>(s * k_aes_block_bytes),
                    k_aes_block_bytes, seg.begin());
        ++freq[seg];
    }
    const auto most = std::max_element(
        freq.begin(), freq.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    const Block16 most_value_c = most->first;

    // OTP <- most_value_p XOR most_value_c (Alg. 1 l.2).
    result.recovered_otp = xor_blocks(most_value_c, most_value_p);

    // value_p <- value_c XOR OTP for every segment (Alg. 1 l.3-4); count the
    // segments where the guess matches the oracle plaintext.
    for (std::size_t s = 0; s < segments; ++s) {
        bool ok = true;
        for (std::size_t i = 0; i < k_aes_block_bytes; ++i) {
            const std::size_t off = s * k_aes_block_bytes + i;
            const u8 guess = static_cast<u8>(ciphertext[off] ^ result.recovered_otp[i]);
            if (guess != true_plaintext[off]) {
                ok = false;
                break;
            }
        }
        if (ok) ++result.recovered;
    }
    return result;
}

std::vector<u8> make_sparse_plaintext(std::size_t bytes, double zero_fraction, Rng& rng)
{
    require(bytes % k_aes_block_bytes == 0,
            "make_sparse_plaintext: size must be a multiple of 16 bytes");
    std::vector<u8> data(bytes, 0);
    const std::size_t segments = bytes / k_aes_block_bytes;
    for (std::size_t s = 0; s < segments; ++s) {
        if (rng.next_unit() < zero_fraction) continue;  // all-zero segment
        for (std::size_t i = 0; i < k_aes_block_bytes; ++i)
            data[s * k_aes_block_bytes + i] = rng.next_byte();
    }
    return data;
}

Repa_result repa_attack(std::span<const std::vector<u8>> layer_blocks,
                        std::span<const Addr> block_addrs, std::span<const u64> block_vns,
                        u32 layer_id, std::span<const u8> mac_key, Layer_mac_kind kind,
                        Rng& rng)
{
    require(layer_blocks.size() == block_addrs.size() &&
                layer_blocks.size() == block_vns.size(),
            "repa_attack: blocks/addresses/VNs must have equal length");
    require(layer_blocks.size() >= 2, "repa_attack: need at least two blocks to shuffle");

    const auto block_mac = [&](const std::vector<u8>& blk, std::size_t position) {
        if (kind == Layer_mac_kind::naive_xor) return naive_block_mac(mac_key, blk);
        Mac_context ctx;
        ctx.pa = block_addrs[position];
        ctx.vn = block_vns[position];
        ctx.layer_id = layer_id;
        ctx.fmap_idx = 0;
        ctx.blk_idx = static_cast<u32>(position);
        return positional_block_mac(mac_key, blk, ctx);
    };

    // SUM_MAC over the honest layout (Alg. 2 l.1).
    Xor_mac_accumulator honest;
    for (std::size_t i = 0; i < layer_blocks.size(); ++i) honest.fold(block_mac(layer_blocks[i], i));

    // SHUFFLE_ORDER (Alg. 2 l.2): a non-identity permutation of the blocks.
    std::vector<std::size_t> perm(layer_blocks.size());
    std::iota(perm.begin(), perm.end(), 0);
    do {
        for (std::size_t i = perm.size(); i > 1; --i)
            std::swap(perm[i - 1], perm[rng.next_below(i)]);
    } while (std::is_sorted(perm.begin(), perm.end()));

    // SUM_MAC_shuffle (Alg. 2 l.3): block j now sits at position i, so the
    // verifier MACs block perm[i] with position-i metadata.
    Xor_mac_accumulator shuffled;
    for (std::size_t i = 0; i < perm.size(); ++i) shuffled.fold(block_mac(layer_blocks[perm[i]], i));

    Repa_result result;
    result.verification_passed = shuffled.value() == honest.value();
    result.data_intact = std::is_sorted(perm.begin(), perm.end());
    return result;
}

void splice_unit(core::Secure_memory& dst, Addr dst_addr, const core::Secure_memory& src,
                 Addr src_addr)
{
    dst.rollback(dst_addr, src.snapshot(src_addr));
}

void Rollback_capsule::capture(const core::Secure_memory& mem, Addr addr)
{
    unit_ = mem.snapshot(addr);
    addr_ = addr;
    armed_ = true;
}

void Rollback_capsule::replay(core::Secure_memory& mem) const
{
    require(armed_, "Rollback_capsule::replay: nothing captured");
    mem.rollback(addr_, unit_);
}

}  // namespace seda::crypto
