#include "crypto/kdf.h"

#include "common/bitutil.h"
#include "common/error.h"
#include "crypto/mac.h"

namespace seda::crypto {

std::vector<u8> derive_key(std::span<const u8> master, std::string_view label, u64 id,
                           std::size_t out_bytes)
{
    require(!master.empty(), "derive_key: master key must not be empty");
    require(out_bytes >= 1 && out_bytes <= 32,
            "derive_key: out_bytes must be in [1, 32] (one HMAC-SHA256 block)");

    std::vector<u8> message;
    message.reserve(label.size() + 9);
    message.insert(message.end(), label.begin(), label.end());
    u8 be_id[8];
    store_be64(be_id, id);
    message.insert(message.end(), be_id, be_id + 8);
    message.push_back(0x01);  // HKDF-expand block counter (single block)

    const Digest256 prk = Hmac_engine(master).mac(message);
    return std::vector<u8>(prk.begin(), prk.begin() + out_bytes);
}

}  // namespace seda::crypto
