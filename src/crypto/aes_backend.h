// Pluggable AES round implementations behind one key schedule.
//
// The functional secure-memory stack pushes every protected byte through
// AES-CTR, so the round implementation is the hottest loop in the repo.  Two
// backends exist deliberately:
//
//   * scalar  - byte-wise SubBytes/ShiftRows/MixColumns that mirrors the
//               FIPS-197 pseudocode (gf_mul per MixColumns term).  Slow, but
//               the obviously-correct reference every other backend is
//               cross-validated against.
//   * ttable  - the classic four 256xu32 T-tables (SubBytes + ShiftRows +
//               MixColumns fused per byte), word-wise rounds over u32 round
//               keys.  The software analogue of a pipelined hardware engine
//               and the default for bulk keystream generation.
//
// Backends are stateless singletons: the key schedule travels with the Aes
// instance, so one backend object serves any number of keys concurrently.
// Selection happens at Aes construction (Aes_backend_kind); auto_select
// resolves to ttable unless the SEDA_AES_BACKEND environment variable names
// a backend, which is the cross-validation escape hatch for whole binaries.
#pragma once

#include <span>
#include <string_view>

#include "crypto/aes.h"

namespace seda::crypto {

/// One round implementation.  Implementations must be stateless (aside from
/// immutable tables) so const use is thread-safe.
class Aes_backend {
public:
    virtual ~Aes_backend() = default;

    [[nodiscard]] virtual std::string_view name() const = 0;

    /// Encrypts every block in place under `ks`.
    virtual void encrypt_blocks(const Aes_key_schedule& ks,
                                std::span<Block16> blocks) const = 0;

    /// Decrypts every block in place under `ks`.
    virtual void decrypt_blocks(const Aes_key_schedule& ks,
                                std::span<Block16> blocks) const = 0;

    /// Fills `out` with CTR keystream for the counters (PA || vn) ..
    /// (PA || vn+out.size()-1), Eq. 1's counter layout.  The base
    /// implementation assembles the counter blocks in `out` and delegates to
    /// encrypt_blocks; fast backends override it with a fused path that
    /// keeps the counter in registers end to end.
    virtual void ctr_keystream(const Aes_key_schedule& ks, Addr pa, u64 vn,
                               std::span<Block16> out) const;
};

/// The byte-wise FIPS-197 reference backend.
[[nodiscard]] const Aes_backend& scalar_backend();

/// The table-driven fast backend.
[[nodiscard]] const Aes_backend& ttable_backend();

/// Resolves a kind to a backend; auto_select honours SEDA_AES_BACKEND
/// ("scalar" or "ttable", read once per process) and otherwise picks ttable.
[[nodiscard]] const Aes_backend& backend_for(Aes_backend_kind kind);

/// What auto_select currently resolves to.
[[nodiscard]] Aes_backend_kind default_backend_kind();

/// The concrete backends, for cross-validation sweeps.
[[nodiscard]] std::span<const Aes_backend_kind> all_backend_kinds();

}  // namespace seda::crypto
