// Pluggable AES round implementations behind one key schedule.
//
// The functional secure-memory stack pushes every protected byte through
// AES-CTR, so the round implementation is the hottest loop in the repo.
// Three backends exist deliberately:
//
//   * scalar  - byte-wise SubBytes/ShiftRows/MixColumns that mirrors the
//               FIPS-197 pseudocode (gf_mul per MixColumns term).  Slow, but
//               the obviously-correct reference every other backend is
//               cross-validated against.
//   * ttable  - the classic four 256xu32 T-tables (SubBytes + ShiftRows +
//               MixColumns fused per byte), word-wise rounds over u32 round
//               keys.  The software analogue of a pipelined hardware engine
//               and the fallback tier on CPUs without AES-NI.
//   * aesni   - hardware rounds via aesenc/aesdec with 8 blocks in flight,
//               a fused CTR keystream, and a VAES 2x128-bit-lane gear when
//               the CPU has it.  CPUID-gated at runtime; the default
//               wherever available (src/crypto/aes_backend_aesni.cpp).
//
// Backends are stateless singletons: the key schedule travels with the Aes
// instance, so one backend object serves any number of keys concurrently.
// Selection happens at Aes construction (Aes_backend_kind); auto_select
// resolves once per process to the best available tier (aesni -> ttable)
// unless the SEDA_AES_BACKEND environment variable names a backend, which
// is the cross-validation escape hatch for whole binaries.
#pragma once

#include <span>
#include <string_view>

#include "crypto/aes.h"

namespace seda::crypto {

/// One round implementation.  Implementations must be stateless (aside from
/// immutable tables) so const use is thread-safe.
class Aes_backend {
public:
    virtual ~Aes_backend() = default;

    [[nodiscard]] virtual std::string_view name() const = 0;

    /// Encrypts every block in place under `ks`.
    virtual void encrypt_blocks(const Aes_key_schedule& ks,
                                std::span<Block16> blocks) const = 0;

    /// Decrypts every block in place under `ks`.
    virtual void decrypt_blocks(const Aes_key_schedule& ks,
                                std::span<Block16> blocks) const = 0;

    /// Fills `out` with CTR keystream for the counters (PA || vn) ..
    /// (PA || vn+out.size()-1), Eq. 1's counter layout.  The base
    /// implementation assembles the counter blocks in `out` and delegates to
    /// encrypt_blocks; fast backends override it with a fused path that
    /// keeps the counter in registers end to end.
    virtual void ctr_keystream(const Aes_key_schedule& ks, Addr pa, u64 vn,
                               std::span<Block16> out) const;
};

/// The byte-wise FIPS-197 reference backend.
[[nodiscard]] const Aes_backend& scalar_backend();

/// The table-driven software fast backend.
[[nodiscard]] const Aes_backend& ttable_backend();

/// The AES-NI hardware backend, or nullptr when it can't run here (CPU
/// without the aes feature, non-x86 build, or SEDA_DISABLE_HW_CRYPTO).
[[nodiscard]] const Aes_backend* aesni_backend();

/// Whether `kind` can run on this CPU/build.  scalar and ttable are always
/// available; aesni mirrors aesni_backend() != nullptr.  Tests and the CLI
/// use this to enumerate/force only what the host supports.
[[nodiscard]] bool backend_available(Aes_backend_kind kind);

/// Resolves a kind to a backend; auto_select honours SEDA_AES_BACKEND
/// ("scalar", "ttable" or "aesni", read once per process) and otherwise
/// picks the best available tier (aesni -> ttable).  A kind forced on a
/// CPU that lacks it degrades to ttable (with a once-only warning when the
/// forcing came from the environment).
[[nodiscard]] const Aes_backend& backend_for(Aes_backend_kind kind);

/// What auto_select currently resolves to.
[[nodiscard]] Aes_backend_kind default_backend_kind();

/// The concrete backends, for cross-validation sweeps.  Includes hardware
/// kinds unconditionally; pair with backend_available() to skip what the
/// host can't run.
[[nodiscard]] std::span<const Aes_backend_kind> all_backend_kinds();

/// CPU crypto features relevant to backend selection, as CPUID reports them
/// (independent of SEDA_DISABLE_HW_CRYPTO; all false on non-x86).
struct Cpu_crypto_features {
    bool aes = false;     ///< AES-NI round instructions
    bool vaes = false;    ///< 256-bit vector AES (with avx2: the wide CTR gear)
    bool sha_ni = false;  ///< SHA extensions (sha256rnds2/msg1/msg2)
    bool avx2 = false;    ///< 32-byte integer vectors
};
[[nodiscard]] Cpu_crypto_features cpu_crypto_features();

/// AES-128 key expansion via aeskeygenassist, used by expand_round_keys as
/// a drop-in for the portable path.  Returns false (leaving `out` untouched)
/// unless the key is 16 bytes and the AES-NI backend is available.
[[nodiscard]] bool aesni_expand_round_keys128(std::span<const u8> key,
                                              std::vector<Block16>& out);

}  // namespace seda::crypto
