// Executable models of the paper's two attacks and their SeDA defenses.
//
// SECA - Single-Element Collision Attack (Algorithm 1).  When every 16-byte
// segment of a protected unit shares one OTP, an attacker who can guess the
// most frequent plaintext value (for DNN tensors: zero, thanks to ReLU
// sparsity and zero padding) recovers the OTP from the most frequent
// ciphertext value and with it every segment of the unit.  B-AES gives each
// segment a distinct pad, so the recovered "OTP" decrypts (essentially)
// nothing beyond the guessed value itself.
//
// RePA - Re-Permutation Attack (Algorithm 2).  A layer MAC built by XORing
// per-block MACs of the raw ciphertext is order-invariant; an attacker can
// shuffle the layer's blocks in memory and still pass verification while the
// accelerator consumes permuted (hence corrupted) data.  SeDA's positional
// MAC (blk || PA || VN || layer_id || fmap_idx || blk_idx) breaks the
// symmetry and detects any shuffle.
#pragma once

#include <span>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "core/secure_memory.h"
#include "crypto/ctr.h"
#include "crypto/mac.h"

namespace seda::crypto {

// ---------------------------------------------------------------- SECA ----

struct Seca_result {
    Block16 recovered_otp{};       ///< most_value_c XOR most_value_p (Alg. 1 l.2)
    std::size_t segments = 0;      ///< 16-byte segments in the attacked unit
    std::size_t recovered = 0;     ///< segments whose plaintext the attack recovered
    [[nodiscard]] double recovery_rate() const
    {
        return segments == 0 ? 0.0 : static_cast<double>(recovered) / static_cast<double>(segments);
    }
    /// The attack is deemed successful when it decrypts a majority of the unit.
    [[nodiscard]] bool success() const { return recovery_rate() > 0.5; }
};

/// Runs Algorithm 1 (attack half) against `ciphertext`.  `most_value_p` is
/// the attacker's plaintext-frequency prior; `true_plaintext` is the
/// evaluation oracle used to count how many segments were truly recovered.
[[nodiscard]] Seca_result seca_attack(std::span<const u8> ciphertext,
                                      const Block16& most_value_p,
                                      std::span<const u8> true_plaintext);

/// Synthesizes a DNN-like plaintext unit: `zero_fraction` of the 16-byte
/// segments are all-zero (ReLU sparsity), the rest pseudo-random.
[[nodiscard]] std::vector<u8> make_sparse_plaintext(std::size_t bytes, double zero_fraction,
                                                    Rng& rng);

// ---------------------------------------------------------------- RePA ----

/// How the layer MAC under attack was built.
enum class Layer_mac_kind {
    naive_xor,      ///< XOR of ciphertext-only MACs (Securator-style, vulnerable)
    positional_xor  ///< XOR of SeDA positional MACs (Alg. 2 defense)
};

struct Repa_result {
    bool verification_passed = false;  ///< attacker's shuffled layer verified OK
    bool data_intact = false;          ///< plaintext order actually unchanged
    /// A successful attack passes verification while the data is corrupt.
    [[nodiscard]] bool attack_succeeded() const { return verification_passed && !data_intact; }
};

/// Runs Algorithm 2 (attack half): shuffles the ciphertext blocks of one
/// layer and re-verifies the layer MAC under the given scheme.
[[nodiscard]] Repa_result repa_attack(std::span<const std::vector<u8>> layer_blocks,
                                      std::span<const Addr> block_addrs,
                                      std::span<const u64> block_vns, u32 layer_id,
                                      std::span<const u8> mac_key, Layer_mac_kind kind,
                                      Rng& rng);

// ------------------------------------------- memory-level adversary moves ----
//
// The primitives below act on core::Secure_memory through its attacker
// interface.  They are shared by the unit tests and the campaign driver
// (attack/campaign.h) so both exercise the exact same adversary.

/// Cross-tenant splice: a bus adversary copies tenant `src`'s stored unit
/// (ciphertext + MAC + stored VN) at `src_addr` wholesale over tenant
/// `dst`'s unit at `dst_addr`.  Both units must already exist.  Detection
/// contract: the spliced MAC was minted under src's key and position, so
/// dst's next verified read reports mac_mismatch.
void splice_unit(core::Secure_memory& dst, Addr dst_addr, const core::Secure_memory& src,
                 Addr src_addr);

/// VN-rollback helper: captures a unit's full stored state at one point in
/// time and replays it later, after the legitimate owner wrote newer data
/// -- the freshness attack on-chip VNs exist to catch.  Detection
/// contract: with on-chip VNs the replayed unit carries a stale stored_vn,
/// so the next read reports replay_detected; with VNs stored off-chip the
/// rollback verifies clean (the strawman the tests demonstrate).
class Rollback_capsule {
public:
    /// Snapshots `addr`'s stored unit.  Re-capturing overwrites.
    void capture(const core::Secure_memory& mem, Addr addr);

    /// Restores the captured state.  Throws when nothing was captured.
    void replay(core::Secure_memory& mem) const;

    [[nodiscard]] bool armed() const { return armed_; }
    [[nodiscard]] Addr addr() const { return addr_; }

private:
    Addr addr_ = 0;
    bool armed_ = false;
    core::Secure_memory::Stored_unit unit_;
};

}  // namespace seda::crypto
