// Executable models of the paper's two attacks and their SeDA defenses.
//
// SECA - Single-Element Collision Attack (Algorithm 1).  When every 16-byte
// segment of a protected unit shares one OTP, an attacker who can guess the
// most frequent plaintext value (for DNN tensors: zero, thanks to ReLU
// sparsity and zero padding) recovers the OTP from the most frequent
// ciphertext value and with it every segment of the unit.  B-AES gives each
// segment a distinct pad, so the recovered "OTP" decrypts (essentially)
// nothing beyond the guessed value itself.
//
// RePA - Re-Permutation Attack (Algorithm 2).  A layer MAC built by XORing
// per-block MACs of the raw ciphertext is order-invariant; an attacker can
// shuffle the layer's blocks in memory and still pass verification while the
// accelerator consumes permuted (hence corrupted) data.  SeDA's positional
// MAC (blk || PA || VN || layer_id || fmap_idx || blk_idx) breaks the
// symmetry and detects any shuffle.
#pragma once

#include <span>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "crypto/ctr.h"
#include "crypto/mac.h"

namespace seda::crypto {

// ---------------------------------------------------------------- SECA ----

struct Seca_result {
    Block16 recovered_otp{};       ///< most_value_c XOR most_value_p (Alg. 1 l.2)
    std::size_t segments = 0;      ///< 16-byte segments in the attacked unit
    std::size_t recovered = 0;     ///< segments whose plaintext the attack recovered
    [[nodiscard]] double recovery_rate() const
    {
        return segments == 0 ? 0.0 : static_cast<double>(recovered) / static_cast<double>(segments);
    }
    /// The attack is deemed successful when it decrypts a majority of the unit.
    [[nodiscard]] bool success() const { return recovery_rate() > 0.5; }
};

/// Runs Algorithm 1 (attack half) against `ciphertext`.  `most_value_p` is
/// the attacker's plaintext-frequency prior; `true_plaintext` is the
/// evaluation oracle used to count how many segments were truly recovered.
[[nodiscard]] Seca_result seca_attack(std::span<const u8> ciphertext,
                                      const Block16& most_value_p,
                                      std::span<const u8> true_plaintext);

/// Synthesizes a DNN-like plaintext unit: `zero_fraction` of the 16-byte
/// segments are all-zero (ReLU sparsity), the rest pseudo-random.
[[nodiscard]] std::vector<u8> make_sparse_plaintext(std::size_t bytes, double zero_fraction,
                                                    Rng& rng);

// ---------------------------------------------------------------- RePA ----

/// How the layer MAC under attack was built.
enum class Layer_mac_kind {
    naive_xor,      ///< XOR of ciphertext-only MACs (Securator-style, vulnerable)
    positional_xor  ///< XOR of SeDA positional MACs (Alg. 2 defense)
};

struct Repa_result {
    bool verification_passed = false;  ///< attacker's shuffled layer verified OK
    bool data_intact = false;          ///< plaintext order actually unchanged
    /// A successful attack passes verification while the data is corrupt.
    [[nodiscard]] bool attack_succeeded() const { return verification_passed && !data_intact; }
};

/// Runs Algorithm 2 (attack half): shuffles the ciphertext blocks of one
/// layer and re-verifies the layer MAC under the given scheme.
[[nodiscard]] Repa_result repa_attack(std::span<const std::vector<u8>> layer_blocks,
                                      std::span<const Addr> block_addrs,
                                      std::span<const u64> block_vns, u32 layer_id,
                                      std::span<const u8> mac_key, Layer_mac_kind kind,
                                      Rng& rng);

}  // namespace seda::crypto
