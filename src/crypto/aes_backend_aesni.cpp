// The AES-NI hardware backend: FIPS-197 rounds as single instructions.
//
// One aesenc executes SubBytes + ShiftRows + MixColumns + AddRoundKey, so a
// block costs `rounds` instructions instead of the t-table's 40 dependent
// table lookups.  The instruction is pipelined (latency ~4 cycles,
// throughput 1/cycle on this repo's reference Xeon), so every bulk entry
// point keeps eight independent blocks in flight -- enough to cover the
// latency without spilling the 16-register XMM file.  Two gears share the
// code shape:
//
//   * sse   - target("aes,sse4.1"): 8 x __m128i per iteration.
//   * vaes  - target("vaes,avx2,aes"): 4 x __m256i per iteration, two
//             blocks per register via the VAES lane-parallel aesenc.  Same
//             eight blocks in flight, half the instructions.  Selected per
//             backend instance when CPUID reports vaes+avx2.
//
// The byte layout needs no translation: FIPS-197 round keys and AES-NI both
// treat the 16 bytes as the column-major state, so round keys load straight
// from Aes_key_schedule::round_keys.  Decryption runs the equivalent
// inverse cipher over aesdec; the schedule is recovered from dec_words
// (already reversed + InvMixColumns'd, as big-endian words) once per call.
//
// Everything here is compiled with per-function target attributes (plus
// per-file -maes flags in CMake, belt and braces), so the TU builds and
// links under the baseline -march; runtime selection happens once in
// aesni_backend() via __builtin_cpu_supports.  SEDA_DISABLE_HW_CRYPTO
// compiles the whole backend out, leaving the nullptr stubs at the bottom.
#include "crypto/aes_backend.h"

#if defined(__x86_64__) && !defined(SEDA_DISABLE_HW_CRYPTO)

#include <immintrin.h>

#include "common/bitutil.h"

namespace seda::crypto {
namespace {

/// rounds+1 round keys, AES-256's 15 at most.
constexpr int k_max_round_keys = 15;

[[gnu::target("aes,sse4.1")]] inline __m128i load_block(const u8* p)
{
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}

[[gnu::target("aes,sse4.1")]] inline void store_block(u8* p, __m128i x)
{
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), x);
}

[[gnu::target("aes,sse4.1")]] void load_enc_keys(const Aes_key_schedule& ks, __m128i* rk)
{
    for (int r = 0; r <= ks.rounds; ++r)
        rk[r] = load_block(ks.round_keys[static_cast<std::size_t>(r)].data());
}

/// The equivalent-inverse-cipher keys, recovered byte-form from the
/// big-endian dec_words the t-table decrypt path consumes.
[[gnu::target("aes,sse4.1")]] void load_dec_keys(const Aes_key_schedule& ks, __m128i* rk)
{
    alignas(16) u8 tmp[16];
    for (int r = 0; r <= ks.rounds; ++r) {
        for (int c = 0; c < 4; ++c)
            store_be32(tmp + 4 * c, ks.dec_words[static_cast<std::size_t>(4 * r + c)]);
        rk[r] = _mm_load_si128(reinterpret_cast<const __m128i*>(tmp));
    }
}

[[gnu::target("aes,sse4.1")]] inline __m128i encrypt_one(const __m128i* rk, int rounds,
                                                         __m128i x)
{
    x = _mm_xor_si128(x, rk[0]);
    for (int r = 1; r < rounds; ++r) x = _mm_aesenc_si128(x, rk[r]);
    return _mm_aesenclast_si128(x, rk[rounds]);
}

[[gnu::target("aes,sse4.1")]] inline __m128i decrypt_one(const __m128i* rk, int rounds,
                                                         __m128i x)
{
    x = _mm_xor_si128(x, rk[0]);
    for (int r = 1; r < rounds; ++r) x = _mm_aesdec_si128(x, rk[r]);
    return _mm_aesdeclast_si128(x, rk[rounds]);
}

[[gnu::target("aes,sse4.1")]] void encrypt_blocks_sse(const Aes_key_schedule& ks,
                                                      std::span<Block16> blocks)
{
    __m128i rk[k_max_round_keys];
    load_enc_keys(ks, rk);
    const int rounds = ks.rounds;
    std::size_t i = 0;
    for (; i + 8 <= blocks.size(); i += 8) {
        __m128i x[8];
        for (int j = 0; j < 8; ++j)
            x[j] = _mm_xor_si128(load_block(blocks[i + static_cast<std::size_t>(j)].data()),
                                 rk[0]);
        for (int r = 1; r < rounds; ++r)
            for (int j = 0; j < 8; ++j) x[j] = _mm_aesenc_si128(x[j], rk[r]);
        for (int j = 0; j < 8; ++j)
            store_block(blocks[i + static_cast<std::size_t>(j)].data(),
                        _mm_aesenclast_si128(x[j], rk[rounds]));
    }
    for (; i < blocks.size(); ++i)
        store_block(blocks[i].data(), encrypt_one(rk, rounds, load_block(blocks[i].data())));
}

[[gnu::target("aes,sse4.1")]] void decrypt_blocks_sse(const Aes_key_schedule& ks,
                                                      std::span<Block16> blocks)
{
    __m128i rk[k_max_round_keys];
    load_dec_keys(ks, rk);
    const int rounds = ks.rounds;
    std::size_t i = 0;
    for (; i + 8 <= blocks.size(); i += 8) {
        __m128i x[8];
        for (int j = 0; j < 8; ++j)
            x[j] = _mm_xor_si128(load_block(blocks[i + static_cast<std::size_t>(j)].data()),
                                 rk[0]);
        for (int r = 1; r < rounds; ++r)
            for (int j = 0; j < 8; ++j) x[j] = _mm_aesdec_si128(x[j], rk[r]);
        for (int j = 0; j < 8; ++j)
            store_block(blocks[i + static_cast<std::size_t>(j)].data(),
                        _mm_aesdeclast_si128(x[j], rk[rounds]));
    }
    for (; i < blocks.size(); ++i)
        store_block(blocks[i].data(), decrypt_one(rk, rounds, load_block(blocks[i].data())));
}

/// Counter block (PA || vn+j), both halves big-endian (Eq. 1), composed in
/// a register: byte-swapped u64s land as bytes 0..7 = PA, 8..15 = VN.  The
/// VN half wraps mod 2^64, matching counter_add.
[[gnu::target("aes,sse4.1")]] inline __m128i counter_128(i64 pa_be, u64 vn)
{
    return _mm_set_epi64x(static_cast<i64>(__builtin_bswap64(vn)), pa_be);
}

[[gnu::target("aes,sse4.1")]] void ctr_keystream_sse(const Aes_key_schedule& ks, Addr pa,
                                                     u64 vn, std::span<Block16> out)
{
    __m128i rk[k_max_round_keys];
    load_enc_keys(ks, rk);
    const int rounds = ks.rounds;
    const i64 pa_be = static_cast<i64>(__builtin_bswap64(pa));
    std::size_t i = 0;
    for (; i + 8 <= out.size(); i += 8) {
        __m128i x[8];
        for (int j = 0; j < 8; ++j)
            x[j] = _mm_xor_si128(counter_128(pa_be, vn + i + static_cast<u64>(j)), rk[0]);
        for (int r = 1; r < rounds; ++r)
            for (int j = 0; j < 8; ++j) x[j] = _mm_aesenc_si128(x[j], rk[r]);
        for (int j = 0; j < 8; ++j)
            store_block(out[i + static_cast<std::size_t>(j)].data(),
                        _mm_aesenclast_si128(x[j], rk[rounds]));
    }
    for (; i < out.size(); ++i)
        store_block(out[i].data(),
                    encrypt_one(rk, rounds, counter_128(pa_be, vn + i)));
}

// ------------------------------------------------------------ VAES gear ----

[[gnu::target("vaes,avx2,aes")]] void load_enc_keys_wide(const Aes_key_schedule& ks,
                                                         __m256i* rk)
{
    for (int r = 0; r <= ks.rounds; ++r)
        rk[r] = _mm256_broadcastsi128_si256(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(ks.round_keys[static_cast<std::size_t>(r)].data())));
}

[[gnu::target("vaes,avx2,aes")]] void encrypt_blocks_vaes(const Aes_key_schedule& ks,
                                                          std::span<Block16> blocks)
{
    __m256i rk[k_max_round_keys];
    load_enc_keys_wide(ks, rk);
    const int rounds = ks.rounds;
    std::size_t i = 0;
    for (; i + 8 <= blocks.size(); i += 8) {
        // Adjacent Block16s in the span are contiguous: each __m256i load
        // covers two blocks, four registers carry the 8-block wave.
        __m256i x[4];
        for (int j = 0; j < 4; ++j)
            x[j] = _mm256_xor_si256(
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                    blocks[i + static_cast<std::size_t>(2 * j)].data())),
                rk[0]);
        for (int r = 1; r < rounds; ++r)
            for (int j = 0; j < 4; ++j) x[j] = _mm256_aesenc_epi128(x[j], rk[r]);
        for (int j = 0; j < 4; ++j)
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(
                                    blocks[i + static_cast<std::size_t>(2 * j)].data()),
                                _mm256_aesenclast_epi128(x[j], rk[rounds]));
    }
    if (i < blocks.size()) encrypt_blocks_sse(ks, blocks.subspan(i));
}

[[gnu::target("vaes,avx2,aes")]] void ctr_keystream_vaes(const Aes_key_schedule& ks, Addr pa,
                                                         u64 vn, std::span<Block16> out)
{
    __m256i rk[k_max_round_keys];
    load_enc_keys_wide(ks, rk);
    const int rounds = ks.rounds;
    const i64 pa_be = static_cast<i64>(__builtin_bswap64(pa));
    std::size_t i = 0;
    for (; i + 8 <= out.size(); i += 8) {
        __m256i x[4];
        for (int j = 0; j < 4; ++j) {
            const u64 v = vn + i + static_cast<u64>(2 * j);
            x[j] = _mm256_xor_si256(
                _mm256_set_epi64x(static_cast<i64>(__builtin_bswap64(v + 1)), pa_be,
                                  static_cast<i64>(__builtin_bswap64(v)), pa_be),
                rk[0]);
        }
        for (int r = 1; r < rounds; ++r)
            for (int j = 0; j < 4; ++j) x[j] = _mm256_aesenc_epi128(x[j], rk[r]);
        for (int j = 0; j < 4; ++j)
            _mm256_storeu_si256(
                reinterpret_cast<__m256i*>(out[i + static_cast<std::size_t>(2 * j)].data()),
                _mm256_aesenclast_epi128(x[j], rk[rounds]));
    }
    if (i < out.size()) ctr_keystream_sse(ks, pa, vn + i, out.subspan(i));
}

// ------------------------------------------------- aeskeygenassist gear ----

/// One AES-128 expansion step: aeskeygenassist supplies RotWord+SubWord+Rcon
/// in its top word; the three shifted XORs fold the previous key's running
/// prefix sums (w[i] ^= w[i-1] per column).
[[gnu::target("aes,sse4.1")]] inline __m128i expand_step128(__m128i key, __m128i keygened)
{
    keygened = _mm_shuffle_epi32(keygened, 0xFF);
    key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
    key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
    key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
    return _mm_xor_si128(key, keygened);
}

[[gnu::target("aes,sse4.1")]] void expand_key128_aesni(const u8* key, Block16* rk)
{
    __m128i k = _mm_loadu_si128(reinterpret_cast<const __m128i*>(key));
    store_block(rk[0].data(), k);
    // aeskeygenassist takes Rcon as an immediate, so the ten steps unroll.
#define SEDA_AES_EXPAND(i, rcon)                                   \
    k = expand_step128(k, _mm_aeskeygenassist_si128(k, (rcon)));   \
    store_block(rk[i].data(), k)
    SEDA_AES_EXPAND(1, 0x01);
    SEDA_AES_EXPAND(2, 0x02);
    SEDA_AES_EXPAND(3, 0x04);
    SEDA_AES_EXPAND(4, 0x08);
    SEDA_AES_EXPAND(5, 0x10);
    SEDA_AES_EXPAND(6, 0x20);
    SEDA_AES_EXPAND(7, 0x40);
    SEDA_AES_EXPAND(8, 0x80);
    SEDA_AES_EXPAND(9, 0x1B);
    SEDA_AES_EXPAND(10, 0x36);
#undef SEDA_AES_EXPAND
}

class Aesni_backend final : public Aes_backend {
public:
    explicit Aesni_backend(bool vaes) : vaes_(vaes) {}

    [[nodiscard]] std::string_view name() const override { return "aesni"; }

    void encrypt_blocks(const Aes_key_schedule& ks, std::span<Block16> blocks) const override
    {
        if (vaes_)
            encrypt_blocks_vaes(ks, blocks);
        else
            encrypt_blocks_sse(ks, blocks);
    }

    void decrypt_blocks(const Aes_key_schedule& ks, std::span<Block16> blocks) const override
    {
        // Decryption is off the CTR hot path (CTR decrypt == encrypt), so
        // the SSE gear is plenty.
        decrypt_blocks_sse(ks, blocks);
    }

    void ctr_keystream(const Aes_key_schedule& ks, Addr pa, u64 vn,
                       std::span<Block16> out) const override
    {
        if (vaes_)
            ctr_keystream_vaes(ks, pa, vn, out);
        else
            ctr_keystream_sse(ks, pa, vn, out);
    }

private:
    bool vaes_;
};

}  // namespace

const Aes_backend* aesni_backend()
{
    // CPUID once per process; the singleton's VAES gear choice rides along.
    static const bool available =
        __builtin_cpu_supports("aes") && __builtin_cpu_supports("sse4.1");
    static const Aesni_backend backend(__builtin_cpu_supports("vaes") &&
                                       __builtin_cpu_supports("avx2"));
    return available ? &backend : nullptr;
}

bool aesni_expand_round_keys128(std::span<const u8> key, std::vector<Block16>& out)
{
    if (key.size() != 16 || aesni_backend() == nullptr) return false;
    out.resize(11);
    expand_key128_aesni(key.data(), out.data());
    return true;
}

}  // namespace seda::crypto

#else  // non-x86 build or SEDA_DISABLE_HW_CRYPTO: the backend compiles out.

namespace seda::crypto {

const Aes_backend* aesni_backend() { return nullptr; }

bool aesni_expand_round_keys128(std::span<const u8> /*key*/, std::vector<Block16>& /*out*/)
{
    return false;
}

}  // namespace seda::crypto

#endif
