#include "crypto/aes_backend.h"

#include <string_view>
#include <utility>

#include "common/bitutil.h"
#include "common/envutil.h"

namespace seda::crypto {
namespace {

constexpr auto k_sbox = make_aes_sbox();
constexpr auto k_inv_sbox = make_aes_inv_sbox();

// Compile-time sanity anchors from FIPS-197 (full vectors are in the tests).
static_assert(make_aes_sbox()[0x00] == 0x63);
static_assert(make_aes_sbox()[0x53] == 0xED);
static_assert(make_aes_inv_sbox()[0x63] == 0x00);

// ------------------------------------------------------- scalar backend ----

void sub_bytes(Block16& s)
{
    for (auto& b : s) b = k_sbox[b];
}

void inv_sub_bytes(Block16& s)
{
    for (auto& b : s) b = k_inv_sbox[b];
}

// State is column-major per FIPS-197: byte index = row + 4*column.
void shift_rows(Block16& s)
{
    Block16 t = s;
    for (int r = 1; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
            s[static_cast<std::size_t>(r + 4 * c)] =
                t[static_cast<std::size_t>(r + 4 * ((c + r) % 4))];
}

void inv_shift_rows(Block16& s)
{
    Block16 t = s;
    for (int r = 1; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
            s[static_cast<std::size_t>(r + 4 * ((c + r) % 4))] =
                t[static_cast<std::size_t>(r + 4 * c)];
}

void mix_columns(Block16& s)
{
    for (int c = 0; c < 4; ++c) {
        const std::size_t o = static_cast<std::size_t>(4 * c);
        const u8 a0 = s[o], a1 = s[o + 1], a2 = s[o + 2], a3 = s[o + 3];
        s[o] = static_cast<u8>(gf_mul(a0, 2) ^ gf_mul(a1, 3) ^ a2 ^ a3);
        s[o + 1] = static_cast<u8>(a0 ^ gf_mul(a1, 2) ^ gf_mul(a2, 3) ^ a3);
        s[o + 2] = static_cast<u8>(a0 ^ a1 ^ gf_mul(a2, 2) ^ gf_mul(a3, 3));
        s[o + 3] = static_cast<u8>(gf_mul(a0, 3) ^ a1 ^ a2 ^ gf_mul(a3, 2));
    }
}

void inv_mix_columns(Block16& s)
{
    for (int c = 0; c < 4; ++c) {
        const std::size_t o = static_cast<std::size_t>(4 * c);
        const u8 a0 = s[o], a1 = s[o + 1], a2 = s[o + 2], a3 = s[o + 3];
        s[o] = static_cast<u8>(gf_mul(a0, 0x0E) ^ gf_mul(a1, 0x0B) ^ gf_mul(a2, 0x0D) ^
                               gf_mul(a3, 0x09));
        s[o + 1] = static_cast<u8>(gf_mul(a0, 0x09) ^ gf_mul(a1, 0x0E) ^ gf_mul(a2, 0x0B) ^
                                   gf_mul(a3, 0x0D));
        s[o + 2] = static_cast<u8>(gf_mul(a0, 0x0D) ^ gf_mul(a1, 0x09) ^ gf_mul(a2, 0x0E) ^
                                   gf_mul(a3, 0x0B));
        s[o + 3] = static_cast<u8>(gf_mul(a0, 0x0B) ^ gf_mul(a1, 0x0D) ^ gf_mul(a2, 0x09) ^
                                   gf_mul(a3, 0x0E));
    }
}

void add_round_key(Block16& s, const Block16& rk)
{
    for (std::size_t i = 0; i < s.size(); ++i) s[i] = static_cast<u8>(s[i] ^ rk[i]);
}

class Scalar_backend final : public Aes_backend {
public:
    [[nodiscard]] std::string_view name() const override { return "scalar"; }

    void encrypt_blocks(const Aes_key_schedule& ks, std::span<Block16> blocks) const override
    {
        for (Block16& s : blocks) {
            add_round_key(s, ks.round_keys[0]);
            for (int r = 1; r < ks.rounds; ++r) {
                sub_bytes(s);
                shift_rows(s);
                mix_columns(s);
                add_round_key(s, ks.round_keys[static_cast<std::size_t>(r)]);
            }
            sub_bytes(s);
            shift_rows(s);
            add_round_key(s, ks.round_keys[static_cast<std::size_t>(ks.rounds)]);
        }
    }

    void decrypt_blocks(const Aes_key_schedule& ks, std::span<Block16> blocks) const override
    {
        for (Block16& s : blocks) {
            add_round_key(s, ks.round_keys[static_cast<std::size_t>(ks.rounds)]);
            for (int r = ks.rounds - 1; r >= 1; --r) {
                inv_shift_rows(s);
                inv_sub_bytes(s);
                add_round_key(s, ks.round_keys[static_cast<std::size_t>(r)]);
                inv_mix_columns(s);
            }
            inv_shift_rows(s);
            inv_sub_bytes(s);
            add_round_key(s, ks.round_keys[0]);
        }
    }
};

// ------------------------------------------------------- t-table backend ---
//
// Te0[x] packs the MixColumns column of S[x] big-endian: (2S, S, S, 3S); the
// other tables are byte rotations so each state byte indexes the table for
// its row.  Td tables do the same for InvSubBytes + InvMixColumns and drive
// the equivalent inverse cipher over the dec_words schedule.

struct Aes_tables {
    std::array<u32, 256> te0{}, te1{}, te2{}, te3{};
    std::array<u32, 256> td0{}, td1{}, td2{}, td3{};
};

constexpr Aes_tables make_tables()
{
    Aes_tables t;
    for (int i = 0; i < 256; ++i) {
        const auto x = static_cast<std::size_t>(i);
        const u8 s = k_sbox[x];
        const u32 te = (static_cast<u32>(gf_mul(s, 2)) << 24) | (static_cast<u32>(s) << 16) |
                       (static_cast<u32>(s) << 8) | gf_mul(s, 3);
        t.te0[x] = te;
        t.te1[x] = rotr32(te, 8);
        t.te2[x] = rotr32(te, 16);
        t.te3[x] = rotr32(te, 24);

        const u8 is = k_inv_sbox[x];
        const u32 td = (static_cast<u32>(gf_mul(is, 0x0E)) << 24) |
                       (static_cast<u32>(gf_mul(is, 0x09)) << 16) |
                       (static_cast<u32>(gf_mul(is, 0x0D)) << 8) | gf_mul(is, 0x0B);
        t.td0[x] = td;
        t.td1[x] = rotr32(td, 8);
        t.td2[x] = rotr32(td, 16);
        t.td3[x] = rotr32(td, 24);
    }
    return t;
}

constexpr Aes_tables k_t = make_tables();

class Ttable_backend final : public Aes_backend {
public:
    [[nodiscard]] std::string_view name() const override { return "ttable"; }

    void encrypt_blocks(const Aes_key_schedule& ks, std::span<Block16> blocks) const override
    {
        // Round count fixed at the top so every lane body fully unrolls.
        switch (ks.rounds) {
            case 10: encrypt_blocks_r<10>(ks, blocks); break;
            case 12: encrypt_blocks_r<12>(ks, blocks); break;
            default: encrypt_blocks_r<14>(ks, blocks); break;
        }
    }

    void decrypt_blocks(const Aes_key_schedule& ks, std::span<Block16> blocks) const override
    {
        const u32* rk = ks.dec_words.data();
        const int rounds = ks.rounds;
        for (Block16& blk : blocks) {
            u32 s0 = load_be32(blk.data()) ^ rk[0];
            u32 s1 = load_be32(blk.data() + 4) ^ rk[1];
            u32 s2 = load_be32(blk.data() + 8) ^ rk[2];
            u32 s3 = load_be32(blk.data() + 12) ^ rk[3];

            const u32* k = rk + 4;
            for (int r = 1; r < rounds; ++r, k += 4) {
                const u32 t0 = k_t.td0[s0 >> 24] ^ k_t.td1[(s3 >> 16) & 0xFF] ^
                               k_t.td2[(s2 >> 8) & 0xFF] ^ k_t.td3[s1 & 0xFF] ^ k[0];
                const u32 t1 = k_t.td0[s1 >> 24] ^ k_t.td1[(s0 >> 16) & 0xFF] ^
                               k_t.td2[(s3 >> 8) & 0xFF] ^ k_t.td3[s2 & 0xFF] ^ k[1];
                const u32 t2 = k_t.td0[s2 >> 24] ^ k_t.td1[(s1 >> 16) & 0xFF] ^
                               k_t.td2[(s0 >> 8) & 0xFF] ^ k_t.td3[s3 & 0xFF] ^ k[2];
                const u32 t3 = k_t.td0[s3 >> 24] ^ k_t.td1[(s2 >> 16) & 0xFF] ^
                               k_t.td2[(s1 >> 8) & 0xFF] ^ k_t.td3[s0 & 0xFF] ^ k[3];
                s0 = t0;
                s1 = t1;
                s2 = t2;
                s3 = t3;
            }

            // Final round: InvSubBytes + InvShiftRows only.
            const u32 t0 = inv_sub_word(s0 >> 24, (s3 >> 16) & 0xFF, (s2 >> 8) & 0xFF,
                                        s1 & 0xFF) ^ k[0];
            const u32 t1 = inv_sub_word(s1 >> 24, (s0 >> 16) & 0xFF, (s3 >> 8) & 0xFF,
                                        s2 & 0xFF) ^ k[1];
            const u32 t2 = inv_sub_word(s2 >> 24, (s1 >> 16) & 0xFF, (s0 >> 8) & 0xFF,
                                        s3 & 0xFF) ^ k[2];
            const u32 t3 = inv_sub_word(s3 >> 24, (s2 >> 16) & 0xFF, (s1 >> 8) & 0xFF,
                                        s0 & 0xFF) ^ k[3];
            store_be32(blk.data(), t0);
            store_be32(blk.data() + 4, t1);
            store_be32(blk.data() + 8, t2);
            store_be32(blk.data() + 12, t3);
        }
    }

    void ctr_keystream(const Aes_key_schedule& ks, Addr pa, u64 vn,
                       std::span<Block16> out) const override
    {
        // Fused counter + rounds: the PA half of every counter is constant,
        // so its two state words XOR with the first round key once, and the
        // VN half never leaves registers.
        switch (ks.rounds) {
            case 10: ctr_keystream_r<10>(ks, pa, vn, out); break;
            case 12: ctr_keystream_r<12>(ks, pa, vn, out); break;
            default: ctr_keystream_r<14>(ks, pa, vn, out); break;
        }
    }

private:
    /// Blocks interleaved per inner iteration.  Each block's rounds form one
    /// serial table-lookup chain, so a single stream is latency-bound; two
    /// lanes (8 state words + temps) hide most of the L1 latency while
    /// staying inside the x86-64 GP register budget -- 4 lanes measurably
    /// spills on the 1-core Xeon this repo benches on.
    static constexpr std::size_t k_lanes = 2;

    template <int R>
    static void encrypt_blocks_r(const Aes_key_schedule& ks, std::span<Block16> blocks)
    {
        std::size_t i = 0;
        for (; i + k_lanes <= blocks.size(); i += k_lanes)
            encrypt_lane<k_lanes, R>(ks, &blocks[i]);
        for (; i < blocks.size(); ++i) encrypt_lane<1, R>(ks, &blocks[i]);
    }

    template <int R>
    static void ctr_keystream_r(const Aes_key_schedule& ks, Addr pa, u64 vn,
                                std::span<Block16> out)
    {
        std::size_t i = 0;
        for (; i + k_lanes <= out.size(); i += k_lanes)
            keystream_lane<k_lanes, R>(ks, pa, vn + i, &out[i]);
        for (; i < out.size(); ++i) keystream_lane<1, R>(ks, pa, vn + i, &out[i]);
    }

    template <std::size_t N, int R>
    static void encrypt_lane(const Aes_key_schedule& ks, Block16* blks)
    {
        const u32* rk = ks.enc_words.data();
        u32 s0[N], s1[N], s2[N], s3[N];
        for (std::size_t j = 0; j < N; ++j) {
            s0[j] = load_be32(blks[j].data()) ^ rk[0];
            s1[j] = load_be32(blks[j].data() + 4) ^ rk[1];
            s2[j] = load_be32(blks[j].data() + 8) ^ rk[2];
            s3[j] = load_be32(blks[j].data() + 12) ^ rk[3];
        }
        rounds_and_store<N, R>(rk, s0, s1, s2, s3, blks);
    }

    template <std::size_t N, int R>
    static void keystream_lane(const Aes_key_schedule& ks, Addr pa, u64 vn, Block16* out)
    {
        const u32* rk = ks.enc_words.data();
        const u32 c0 = static_cast<u32>(pa >> 32) ^ rk[0];
        const u32 c1 = static_cast<u32>(pa) ^ rk[1];
        u32 s0[N], s1[N], s2[N], s3[N];
        for (std::size_t j = 0; j < N; ++j) {
            const u64 v = vn + j;  // VN half wraps mod 2^64 (counter_add)
            s0[j] = c0;
            s1[j] = c1;
            s2[j] = static_cast<u32>(v >> 32) ^ rk[2];
            s3[j] = static_cast<u32>(v) ^ rk[3];
        }
        rounds_and_store<N, R>(rk, s0, s1, s2, s3, out);
    }

    /// Middle + final rounds over N interleaved states, results stored
    /// big-endian into `out`.  With R a compile-time constant the loop fully
    /// unrolls; always_inline keeps the state arrays in registers instead of
    /// bouncing them through the caller's stack frame.
    template <std::size_t N, int R>
    [[gnu::always_inline]] static inline void rounds_and_store(const u32* rk, u32 (&s0)[N],
                                                               u32 (&s1)[N], u32 (&s2)[N],
                                                               u32 (&s3)[N], Block16* out)
    {
        const u32* k = rk + 4;
        for (int r = 1; r < R; ++r, k += 4) {
            for (std::size_t j = 0; j < N; ++j) {
                const u32 t0 = k_t.te0[s0[j] >> 24] ^ k_t.te1[(s1[j] >> 16) & 0xFF] ^
                               k_t.te2[(s2[j] >> 8) & 0xFF] ^ k_t.te3[s3[j] & 0xFF] ^ k[0];
                const u32 t1 = k_t.te0[s1[j] >> 24] ^ k_t.te1[(s2[j] >> 16) & 0xFF] ^
                               k_t.te2[(s3[j] >> 8) & 0xFF] ^ k_t.te3[s0[j] & 0xFF] ^ k[1];
                const u32 t2 = k_t.te0[s2[j] >> 24] ^ k_t.te1[(s3[j] >> 16) & 0xFF] ^
                               k_t.te2[(s0[j] >> 8) & 0xFF] ^ k_t.te3[s1[j] & 0xFF] ^ k[2];
                const u32 t3 = k_t.te0[s3[j] >> 24] ^ k_t.te1[(s0[j] >> 16) & 0xFF] ^
                               k_t.te2[(s1[j] >> 8) & 0xFF] ^ k_t.te3[s2[j] & 0xFF] ^ k[3];
                s0[j] = t0;
                s1[j] = t1;
                s2[j] = t2;
                s3[j] = t3;
            }
        }

        // Final round: SubBytes + ShiftRows only.
        for (std::size_t j = 0; j < N; ++j) {
            const u32 t0 = sub_word(s0[j] >> 24, (s1[j] >> 16) & 0xFF,
                                    (s2[j] >> 8) & 0xFF, s3[j] & 0xFF) ^ k[0];
            const u32 t1 = sub_word(s1[j] >> 24, (s2[j] >> 16) & 0xFF,
                                    (s3[j] >> 8) & 0xFF, s0[j] & 0xFF) ^ k[1];
            const u32 t2 = sub_word(s2[j] >> 24, (s3[j] >> 16) & 0xFF,
                                    (s0[j] >> 8) & 0xFF, s1[j] & 0xFF) ^ k[2];
            const u32 t3 = sub_word(s3[j] >> 24, (s0[j] >> 16) & 0xFF,
                                    (s1[j] >> 8) & 0xFF, s2[j] & 0xFF) ^ k[3];
            store_be32(out[j].data(), t0);
            store_be32(out[j].data() + 4, t1);
            store_be32(out[j].data() + 8, t2);
            store_be32(out[j].data() + 12, t3);
        }
    }

    static u32 sub_word(u32 b0, u32 b1, u32 b2, u32 b3)
    {
        return (static_cast<u32>(k_sbox[b0]) << 24) | (static_cast<u32>(k_sbox[b1]) << 16) |
               (static_cast<u32>(k_sbox[b2]) << 8) | k_sbox[b3];
    }

    static u32 inv_sub_word(u32 b0, u32 b1, u32 b2, u32 b3)
    {
        return (static_cast<u32>(k_inv_sbox[b0]) << 24) |
               (static_cast<u32>(k_inv_sbox[b1]) << 16) |
               (static_cast<u32>(k_inv_sbox[b2]) << 8) | k_inv_sbox[b3];
    }
};

const Scalar_backend k_scalar_backend;
const Ttable_backend k_ttable_backend;

}  // namespace

void Aes_backend::ctr_keystream(const Aes_key_schedule& ks, Addr pa, u64 vn,
                                std::span<Block16> out) const
{
    for (std::size_t i = 0; i < out.size(); ++i) {
        store_be64(out[i].data(), pa);
        store_be64(out[i].data() + 8, vn + i);
    }
    encrypt_blocks(ks, out);
}

const Aes_backend& scalar_backend() { return k_scalar_backend; }
const Aes_backend& ttable_backend() { return k_ttable_backend; }

Cpu_crypto_features cpu_crypto_features()
{
    Cpu_crypto_features f;
#if defined(__x86_64__)
    f.aes = __builtin_cpu_supports("aes") != 0;
    f.vaes = __builtin_cpu_supports("vaes") != 0;
    f.sha_ni = __builtin_cpu_supports("sha") != 0;
    f.avx2 = __builtin_cpu_supports("avx2") != 0;
#endif
    return f;
}

bool backend_available(Aes_backend_kind kind)
{
    return kind != Aes_backend_kind::aesni || aesni_backend() != nullptr;
}

Aes_backend_kind default_backend_kind()
{
    // Best available tier unless the env var forces one; the once-per-process
    // discipline (and the degrade-to-ttable path for a hardware kind forced
    // on a CPU without it) lives in resolve_backend_env_once.
    static constexpr std::pair<std::string_view, Aes_backend_kind> names[] = {
        {"scalar", Aes_backend_kind::scalar},
        {"ttable", Aes_backend_kind::ttable},
        {"aesni", Aes_backend_kind::aesni}};
    const Aes_backend_kind preferred =
        aesni_backend() != nullptr ? Aes_backend_kind::aesni : Aes_backend_kind::ttable;
    return resolve_backend_env_once<Aes_backend_kind>(
        "SEDA_AES_BACKEND", names, preferred, backend_available, Aes_backend_kind::ttable);
}

const Aes_backend& backend_for(Aes_backend_kind kind)
{
    if (kind == Aes_backend_kind::auto_select) kind = default_backend_kind();
    switch (kind) {
        case Aes_backend_kind::scalar: return scalar_backend();
        case Aes_backend_kind::aesni:
            // Degrades to the software fast tier when the CPU can't run it,
            // so a kind persisted in config stays safe across machines.
            if (const Aes_backend* hw = aesni_backend()) return *hw;
            [[fallthrough]];
        default: return ttable_backend();
    }
}

std::span<const Aes_backend_kind> all_backend_kinds()
{
    static constexpr std::array<Aes_backend_kind, 3> kinds = {
        Aes_backend_kind::scalar, Aes_backend_kind::ttable, Aes_backend_kind::aesni};
    return kinds;
}

}  // namespace seda::crypto
