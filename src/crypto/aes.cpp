#include "crypto/aes.h"

#include <algorithm>

#include "common/bitutil.h"
#include "common/error.h"
#include "crypto/aes_backend.h"

namespace seda::crypto {
namespace {

constexpr auto k_sbox = make_aes_sbox();

/// InvMixColumns over one 16-byte round key, for the equivalent inverse
/// cipher schedule the table-driven decrypt path consumes.
Block16 inv_mix_columns_block(const Block16& in)
{
    Block16 out{};
    for (int c = 0; c < 4; ++c) {
        const std::size_t o = static_cast<std::size_t>(4 * c);
        const u8 a0 = in[o], a1 = in[o + 1], a2 = in[o + 2], a3 = in[o + 3];
        out[o] = static_cast<u8>(gf_mul(a0, 0x0E) ^ gf_mul(a1, 0x0B) ^ gf_mul(a2, 0x0D) ^
                                 gf_mul(a3, 0x09));
        out[o + 1] = static_cast<u8>(gf_mul(a0, 0x09) ^ gf_mul(a1, 0x0E) ^
                                     gf_mul(a2, 0x0B) ^ gf_mul(a3, 0x0D));
        out[o + 2] = static_cast<u8>(gf_mul(a0, 0x0D) ^ gf_mul(a1, 0x09) ^
                                     gf_mul(a2, 0x0E) ^ gf_mul(a3, 0x0B));
        out[o + 3] = static_cast<u8>(gf_mul(a0, 0x0B) ^ gf_mul(a1, 0x0D) ^
                                     gf_mul(a2, 0x09) ^ gf_mul(a3, 0x0E));
    }
    return out;
}

void append_block_words(std::vector<u32>& words, const Block16& blk)
{
    for (int c = 0; c < 4; ++c) words.push_back(load_be32(blk.data() + 4 * c));
}

}  // namespace

std::vector<Block16> expand_round_keys(std::span<const u8> key)
{
    // AES-128 (the only key size on the stack's hot paths) expands through
    // aeskeygenassist when available; 192/256-bit keys and hardware-less
    // hosts take the portable path.  Bit-identical either way, which
    // tests/crypto/aes_backend_test.cpp asserts.
    if (std::vector<Block16> hw; aesni_expand_round_keys128(key, hw)) return hw;
    return expand_round_keys_portable(key);
}

std::vector<Block16> expand_round_keys_portable(std::span<const u8> key)
{
    int nk = 0;  // key length in 32-bit words
    int rounds = 0;
    switch (key.size()) {
        case 16: nk = 4; rounds = 10; break;
        case 24: nk = 6; rounds = 12; break;
        case 32: nk = 8; rounds = 14; break;
        default:
            throw Seda_error("Aes: key must be 16, 24 or 32 bytes");
    }

    const int total_words = 4 * (rounds + 1);
    std::vector<std::array<u8, 4>> w(static_cast<std::size_t>(total_words));
    for (int i = 0; i < nk; ++i)
        for (int b = 0; b < 4; ++b)
            w[static_cast<std::size_t>(i)][static_cast<std::size_t>(b)] =
                key[static_cast<std::size_t>(4 * i + b)];

    u8 rcon = 0x01;
    for (int i = nk; i < total_words; ++i) {
        std::array<u8, 4> temp = w[static_cast<std::size_t>(i - 1)];
        if (i % nk == 0) {
            // RotWord then SubWord then Rcon.
            std::rotate(temp.begin(), temp.begin() + 1, temp.end());
            for (auto& b : temp) b = k_sbox[b];
            temp[0] = static_cast<u8>(temp[0] ^ rcon);
            rcon = gf_mul(rcon, 2);
        } else if (nk > 6 && i % nk == 4) {
            for (auto& b : temp) b = k_sbox[b];
        }
        for (int b = 0; b < 4; ++b)
            w[static_cast<std::size_t>(i)][static_cast<std::size_t>(b)] = static_cast<u8>(
                w[static_cast<std::size_t>(i - nk)][static_cast<std::size_t>(b)] ^
                temp[static_cast<std::size_t>(b)]);
    }

    std::vector<Block16> round_keys(static_cast<std::size_t>(rounds + 1));
    for (int r = 0; r <= rounds; ++r)
        for (int c = 0; c < 4; ++c)
            for (int b = 0; b < 4; ++b)
                round_keys[static_cast<std::size_t>(r)][static_cast<std::size_t>(4 * c + b)] =
                    w[static_cast<std::size_t>(4 * r + c)][static_cast<std::size_t>(b)];
    return round_keys;
}

Aes::Aes(std::span<const u8> key, Aes_backend_kind kind)
    : backend_(&backend_for(kind))
{
    schedule_.round_keys = expand_round_keys(key);
    schedule_.rounds = static_cast<int>(schedule_.round_keys.size()) - 1;
    const int rounds = schedule_.rounds;
    const int total_words = 4 * (rounds + 1);

    // Word forms for the table-driven backend: the forward schedule verbatim,
    // and the equivalent-inverse schedule (reversed, InvMixColumns applied to
    // every round key except the outermost two).
    schedule_.enc_words.reserve(static_cast<std::size_t>(total_words));
    schedule_.dec_words.reserve(static_cast<std::size_t>(total_words));
    for (int r = 0; r <= rounds; ++r)
        append_block_words(schedule_.enc_words, schedule_.round_keys[static_cast<std::size_t>(r)]);
    for (int r = rounds; r >= 0; --r) {
        const Block16& rk = schedule_.round_keys[static_cast<std::size_t>(r)];
        append_block_words(schedule_.dec_words,
                           (r == 0 || r == rounds) ? rk : inv_mix_columns_block(rk));
    }
}

Block16 Aes::encrypt_block(const Block16& in) const
{
    Block16 s = in;
    backend_->encrypt_blocks(schedule_, std::span<Block16>(&s, 1));
    return s;
}

Block16 Aes::decrypt_block(const Block16& in) const
{
    Block16 s = in;
    backend_->decrypt_blocks(schedule_, std::span<Block16>(&s, 1));
    return s;
}

void Aes::encrypt_blocks(std::span<Block16> blocks) const
{
    backend_->encrypt_blocks(schedule_, blocks);
}

void Aes::decrypt_blocks(std::span<Block16> blocks) const
{
    backend_->decrypt_blocks(schedule_, blocks);
}

void Aes::ctr_keystream(Addr pa, u64 vn, std::span<Block16> out) const
{
    backend_->ctr_keystream(schedule_, pa, vn, out);
}

std::string_view Aes::backend_name() const { return backend_->name(); }

}  // namespace seda::crypto
