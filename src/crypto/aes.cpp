#include "crypto/aes.h"

#include <algorithm>

#include "common/error.h"

namespace seda::crypto {
namespace {

constexpr std::array<u8, 256> make_sbox()
{
    std::array<u8, 256> t{};
    for (int i = 0; i < 256; ++i) t[static_cast<std::size_t>(i)] = aes_sbox_value(static_cast<u8>(i));
    return t;
}

constexpr std::array<u8, 256> make_inv_sbox()
{
    const auto sbox = make_sbox();
    std::array<u8, 256> t{};
    for (int i = 0; i < 256; ++i) t[sbox[static_cast<std::size_t>(i)]] = static_cast<u8>(i);
    return t;
}

constexpr auto k_sbox = make_sbox();
constexpr auto k_inv_sbox = make_inv_sbox();

// Compile-time sanity anchors from FIPS-197 (full vectors are in the tests).
static_assert(make_sbox()[0x00] == 0x63);
static_assert(make_sbox()[0x53] == 0xED);
static_assert(make_inv_sbox()[0x63] == 0x00);

void sub_bytes(Block16& s)
{
    for (auto& b : s) b = k_sbox[b];
}

void inv_sub_bytes(Block16& s)
{
    for (auto& b : s) b = k_inv_sbox[b];
}

// State is column-major per FIPS-197: byte index = row + 4*column.
void shift_rows(Block16& s)
{
    Block16 t = s;
    for (int r = 1; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
            s[static_cast<std::size_t>(r + 4 * c)] =
                t[static_cast<std::size_t>(r + 4 * ((c + r) % 4))];
}

void inv_shift_rows(Block16& s)
{
    Block16 t = s;
    for (int r = 1; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
            s[static_cast<std::size_t>(r + 4 * ((c + r) % 4))] =
                t[static_cast<std::size_t>(r + 4 * c)];
}

void mix_columns(Block16& s)
{
    for (int c = 0; c < 4; ++c) {
        const std::size_t o = static_cast<std::size_t>(4 * c);
        const u8 a0 = s[o], a1 = s[o + 1], a2 = s[o + 2], a3 = s[o + 3];
        s[o] = static_cast<u8>(gf_mul(a0, 2) ^ gf_mul(a1, 3) ^ a2 ^ a3);
        s[o + 1] = static_cast<u8>(a0 ^ gf_mul(a1, 2) ^ gf_mul(a2, 3) ^ a3);
        s[o + 2] = static_cast<u8>(a0 ^ a1 ^ gf_mul(a2, 2) ^ gf_mul(a3, 3));
        s[o + 3] = static_cast<u8>(gf_mul(a0, 3) ^ a1 ^ a2 ^ gf_mul(a3, 2));
    }
}

void inv_mix_columns(Block16& s)
{
    for (int c = 0; c < 4; ++c) {
        const std::size_t o = static_cast<std::size_t>(4 * c);
        const u8 a0 = s[o], a1 = s[o + 1], a2 = s[o + 2], a3 = s[o + 3];
        s[o] = static_cast<u8>(gf_mul(a0, 0x0E) ^ gf_mul(a1, 0x0B) ^ gf_mul(a2, 0x0D) ^
                               gf_mul(a3, 0x09));
        s[o + 1] = static_cast<u8>(gf_mul(a0, 0x09) ^ gf_mul(a1, 0x0E) ^ gf_mul(a2, 0x0B) ^
                                   gf_mul(a3, 0x0D));
        s[o + 2] = static_cast<u8>(gf_mul(a0, 0x0D) ^ gf_mul(a1, 0x09) ^ gf_mul(a2, 0x0E) ^
                                   gf_mul(a3, 0x0B));
        s[o + 3] = static_cast<u8>(gf_mul(a0, 0x0B) ^ gf_mul(a1, 0x0D) ^ gf_mul(a2, 0x09) ^
                                   gf_mul(a3, 0x0E));
    }
}

void add_round_key(Block16& s, const Block16& rk)
{
    for (std::size_t i = 0; i < s.size(); ++i) s[i] = static_cast<u8>(s[i] ^ rk[i]);
}

}  // namespace

Aes::Aes(std::span<const u8> key)
{
    int nk = 0;  // key length in 32-bit words
    switch (key.size()) {
        case 16: nk = 4; rounds_ = 10; break;
        case 24: nk = 6; rounds_ = 12; break;
        case 32: nk = 8; rounds_ = 14; break;
        default:
            throw Seda_error("Aes: key must be 16, 24 or 32 bytes");
    }

    const int total_words = 4 * (rounds_ + 1);
    std::vector<std::array<u8, 4>> w(static_cast<std::size_t>(total_words));
    for (int i = 0; i < nk; ++i)
        for (int b = 0; b < 4; ++b)
            w[static_cast<std::size_t>(i)][static_cast<std::size_t>(b)] =
                key[static_cast<std::size_t>(4 * i + b)];

    u8 rcon = 0x01;
    for (int i = nk; i < total_words; ++i) {
        std::array<u8, 4> temp = w[static_cast<std::size_t>(i - 1)];
        if (i % nk == 0) {
            // RotWord then SubWord then Rcon.
            std::rotate(temp.begin(), temp.begin() + 1, temp.end());
            for (auto& b : temp) b = k_sbox[b];
            temp[0] = static_cast<u8>(temp[0] ^ rcon);
            rcon = gf_mul(rcon, 2);
        } else if (nk > 6 && i % nk == 4) {
            for (auto& b : temp) b = k_sbox[b];
        }
        for (int b = 0; b < 4; ++b)
            w[static_cast<std::size_t>(i)][static_cast<std::size_t>(b)] = static_cast<u8>(
                w[static_cast<std::size_t>(i - nk)][static_cast<std::size_t>(b)] ^
                temp[static_cast<std::size_t>(b)]);
    }

    round_keys_.resize(static_cast<std::size_t>(rounds_ + 1));
    for (int r = 0; r <= rounds_; ++r)
        for (int c = 0; c < 4; ++c)
            for (int b = 0; b < 4; ++b)
                round_keys_[static_cast<std::size_t>(r)][static_cast<std::size_t>(4 * c + b)] =
                    w[static_cast<std::size_t>(4 * r + c)][static_cast<std::size_t>(b)];
}

Block16 Aes::encrypt_block(const Block16& in) const
{
    Block16 s = in;
    add_round_key(s, round_keys_[0]);
    for (int r = 1; r < rounds_; ++r) {
        sub_bytes(s);
        shift_rows(s);
        mix_columns(s);
        add_round_key(s, round_keys_[static_cast<std::size_t>(r)]);
    }
    sub_bytes(s);
    shift_rows(s);
    add_round_key(s, round_keys_[static_cast<std::size_t>(rounds_)]);
    return s;
}

Block16 Aes::decrypt_block(const Block16& in) const
{
    Block16 s = in;
    add_round_key(s, round_keys_[static_cast<std::size_t>(rounds_)]);
    for (int r = rounds_ - 1; r >= 1; --r) {
        inv_shift_rows(s);
        inv_sub_bytes(s);
        add_round_key(s, round_keys_[static_cast<std::size_t>(r)]);
        inv_mix_columns(s);
    }
    inv_shift_rows(s);
    inv_sub_bytes(s);
    add_round_key(s, round_keys_[0]);
    return s;
}

}  // namespace seda::crypto
