#include "crypto/ctr.h"

#include <array>
#include <cstring>

#include "common/bitutil.h"

namespace seda::crypto {
namespace {

void xor_into(std::span<u8> dst, const Block16& pad)
{
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = static_cast<u8>(dst[i] ^ pad[i]);
}

}  // namespace

Block16 make_counter(Addr pa, u64 vn)
{
    Block16 ctr{};
    store_be64(ctr.data(), pa);
    store_be64(ctr.data() + 8, vn);
    return ctr;
}

Block16 counter_add(const Block16& ctr, u64 inc)
{
    Block16 out = ctr;
    store_be64(out.data() + 8, load_be64(ctr.data() + 8) + inc);
    return out;
}

void Aes_ctr::crypt_standard(std::span<u8> data, Addr pa, u64 vn) const
{
    const Block16 base = make_counter(pa, vn);
    u64 seg = 0;
    while (!data.empty()) {
        const Block16 pad = aes_.encrypt_block(counter_add(base, seg));
        const std::size_t n = std::min<std::size_t>(data.size(), pad.size());
        xor_into(data.first(n), pad);
        data = data.subspan(n);
        ++seg;
    }
}

void Aes_ctr::crypt_bulk(std::span<u8> data, Addr pa, u64 vn) const
{
    std::array<Block16, k_keystream_batch> ks;
    u64 seg = 0;  // counter stays in registers; VN half wraps mod 2^64
    while (!data.empty()) {
        const std::size_t want =
            (data.size() + k_aes_block_bytes - 1) / k_aes_block_bytes;
        const std::size_t nblk = std::min(want, k_keystream_batch);
        aes_.ctr_keystream(pa, vn + seg, std::span<Block16>(ks.data(), nblk));

        const std::size_t whole = std::min(data.size() / k_aes_block_bytes, nblk);
        u8* p = data.data();
        for (std::size_t i = 0; i < whole; ++i)
            xor_16_bytes(p + i * k_aes_block_bytes, ks[i].data());
        std::size_t consumed = whole * k_aes_block_bytes;
        if (whole < nblk && consumed < data.size()) {
            // Trailing partial segment: byte loop over the ragged tail.
            xor_into(data.subspan(consumed), ks[whole]);
            consumed = data.size();
        }
        data = data.subspan(consumed);
        seg += nblk;
    }
}

void Aes_ctr::crypt_shared_otp(std::span<u8> data, Addr pa, u64 vn) const
{
    const Block16 pad = otp(pa, vn);
    while (!data.empty()) {
        const std::size_t n = std::min<std::size_t>(data.size(), pad.size());
        xor_into(data.first(n), pad);
        data = data.subspan(n);
    }
}

}  // namespace seda::crypto
