#include "crypto/ctr.h"

namespace seda::crypto {
namespace {

void store_be64(u8* out, u64 v)
{
    for (int i = 0; i < 8; ++i) out[i] = static_cast<u8>(v >> (56 - 8 * i));
}

u64 load_be64(const u8* in)
{
    u64 v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | in[i];
    return v;
}

void xor_into(std::span<u8> dst, const Block16& pad)
{
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = static_cast<u8>(dst[i] ^ pad[i]);
}

}  // namespace

Block16 make_counter(Addr pa, u64 vn)
{
    Block16 ctr{};
    store_be64(ctr.data(), pa);
    store_be64(ctr.data() + 8, vn);
    return ctr;
}

Block16 counter_add(const Block16& ctr, u64 inc)
{
    Block16 out = ctr;
    store_be64(out.data() + 8, load_be64(ctr.data() + 8) + inc);
    return out;
}

void Aes_ctr::crypt_standard(std::span<u8> data, Addr pa, u64 vn) const
{
    const Block16 base = make_counter(pa, vn);
    u64 seg = 0;
    while (!data.empty()) {
        const Block16 pad = aes_.encrypt_block(counter_add(base, seg));
        const std::size_t n = std::min<std::size_t>(data.size(), pad.size());
        xor_into(data.first(n), pad);
        data = data.subspan(n);
        ++seg;
    }
}

void Aes_ctr::crypt_shared_otp(std::span<u8> data, Addr pa, u64 vn) const
{
    const Block16 pad = otp(pa, vn);
    while (!data.empty()) {
        const std::size_t n = std::min<std::size_t>(data.size(), pad.size());
        xor_into(data.first(n), pad);
        data = data.subspan(n);
    }
}

}  // namespace seda::crypto
