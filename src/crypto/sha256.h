// FIPS 180-4 SHA-256, implemented from scratch.
//
// Backs the integrity-verification engine: per-unit MACs are truncated
// HMAC-SHA256 tags (crypto/mac.h).  The compression function itself runs
// through a pluggable backend (crypto/sha256_backend.h): a loop-form scalar
// reference and an unrolled fast path with a multi-buffer entry point for
// independent messages.  Validated against the FIPS vectors in
// tests/crypto/sha256_test.cpp; backends are cross-validated bit-identical
// in tests/crypto/sha256_backend_test.cpp.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <string>

#include "common/types.h"

namespace seda::crypto {

using Digest256 = std::array<u8, 32>;

/// The eight 32-bit chaining words of an in-flight SHA-256 computation.
using Sha256_state = std::array<u32, 8>;

/// Which compression implementation a Sha256 instance runs (see
/// crypto/sha256_backend.h).
enum class Sha256_backend_kind {
    auto_select,  ///< shani when the CPU has it, else fast; SEDA_SHA_BACKEND overrides
    scalar,       ///< loop-form FIPS 180-4 reference
    fast,         ///< unrolled rounds, rolling schedule, multi-buffer lanes
    shani,        ///< SHA-NI sha256rnds2/msg1/msg2 compression, CPUID-gated
};

[[nodiscard]] constexpr const char* to_string(Sha256_backend_kind k)
{
    switch (k) {
        case Sha256_backend_kind::auto_select: return "auto";
        case Sha256_backend_kind::scalar: return "scalar";
        case Sha256_backend_kind::fast: return "fast";
        case Sha256_backend_kind::shani: return "shani";
    }
    return "?";
}

class Sha256_backend;

/// Incremental SHA-256 hasher.
///
/// Contract: update() may be called any number of times; finish() pads,
/// returns the digest and resets the hasher, so the same object may be
/// reused for a fresh message immediately (reuse-after-finalize is safe by
/// construction).  Instances are freely copyable -- copying captures the
/// mid-state, which is how Hmac_engine forks its precomputed pad blocks.
/// Thread-compatible: distinct instances may be used concurrently; one
/// instance must not be shared across threads while being updated.
class Sha256 {
public:
    explicit Sha256(Sha256_backend_kind kind = Sha256_backend_kind::auto_select);

    void reset();
    void update(std::span<const u8> data);
    /// Finalizes and returns the digest; the hasher resets itself for reuse.
    [[nodiscard]] Digest256 finish();

    /// Restarts the hasher mid-stream: chaining state `state` with `bytes`
    /// already absorbed (must be a multiple of the 64-byte block size).
    /// This is how Hmac_engine forks per-message hashers off one
    /// precomputed pad-block state without re-hashing or duplicating it.
    void resume(const Sha256_state& state, u64 bytes);

    /// The backend this hasher compresses through.
    [[nodiscard]] const Sha256_backend& backend() const { return *backend_; }

private:
    const Sha256_backend* backend_;
    Sha256_state h_{};
    std::array<u8, 64> buf_{};
    std::size_t buf_len_ = 0;
    u64 total_len_ = 0;
};

/// One-shot convenience wrapper (process-default backend).
[[nodiscard]] Digest256 sha256(std::span<const u8> data);

/// Hex string of a digest, for diagnostics and tests.
[[nodiscard]] std::string to_hex(std::span<const u8> bytes);

}  // namespace seda::crypto
