// FIPS 180-4 SHA-256, implemented from scratch.
//
// Backs the integrity-verification engine: per-unit MACs are truncated
// HMAC-SHA256 tags (crypto/mac.h).  Validated against the FIPS vectors in
// tests/crypto/sha256_test.cpp.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <string>

#include "common/types.h"

namespace seda::crypto {

using Digest256 = std::array<u8, 32>;

/// Incremental SHA-256 hasher.
class Sha256 {
public:
    Sha256() { reset(); }

    void reset();
    void update(std::span<const u8> data);
    /// Finalizes and returns the digest; the hasher must be reset() before reuse.
    [[nodiscard]] Digest256 finish();

private:
    void process_block(const u8* p);

    std::array<u32, 8> h_{};
    std::array<u8, 64> buf_{};
    std::size_t buf_len_ = 0;
    u64 total_len_ = 0;
};

/// One-shot convenience wrapper.
[[nodiscard]] Digest256 sha256(std::span<const u8> data);

/// Hex string of a digest, for diagnostics and tests.
[[nodiscard]] std::string to_hex(std::span<const u8> bytes);

}  // namespace seda::crypto
