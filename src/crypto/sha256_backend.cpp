#include "crypto/sha256_backend.h"

#include <string_view>
#include <utility>

#include "common/bitutil.h"
#include "common/envutil.h"

// The generic-vector round helpers pass u32xv by value between file-local
// inline functions; GCC warns that the ABI would change if AVX were enabled
// at compile time, which is moot for internal-linkage code in one TU.
#pragma GCC diagnostic ignored "-Wpsabi"

namespace seda::crypto {
namespace {

// First 32 bits of the fractional parts of the cube roots of the first 64
// primes (FIPS 180-4 sec. 4.2.2).
constexpr std::array<u32, 64> k_k = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

// The FIPS logical functions, written type-generically so the same round
// code runs on a plain u32 (one message) or on a GCC vector of u32 lanes
// (one message per lane, the multi-buffer path).
template <typename W> constexpr W rotr_w(W x, int s) { return (x >> s) | (x << (32 - s)); }
template <typename W> constexpr W big_sigma0(W x) { return rotr_w(x, 2) ^ rotr_w(x, 13) ^ rotr_w(x, 22); }
template <typename W> constexpr W big_sigma1(W x) { return rotr_w(x, 6) ^ rotr_w(x, 11) ^ rotr_w(x, 25); }
template <typename W> constexpr W small_sigma0(W x) { return rotr_w(x, 7) ^ rotr_w(x, 18) ^ (x >> 3); }
template <typename W> constexpr W small_sigma1(W x) { return rotr_w(x, 17) ^ rotr_w(x, 19) ^ (x >> 10); }
template <typename W> constexpr W ch(W x, W y, W z) { return (x & y) ^ (~x & z); }
template <typename W> constexpr W maj(W x, W y, W z) { return (x & y) ^ (x & z) ^ (y & z); }

// ------------------------------------------------------- scalar backend ----

/// Loop-form compression mirroring the FIPS 180-4 pseudocode: the full
/// 64-entry message schedule is materialized, one round per iteration.
void compress_scalar(Sha256_state& h_, const u8* p)
{
    std::array<u32, 64> w{};
    for (int t = 0; t < 16; ++t) w[static_cast<std::size_t>(t)] = load_be32(p + 4 * t);
    for (int t = 16; t < 64; ++t)
        w[static_cast<std::size_t>(t)] =
            small_sigma1(w[static_cast<std::size_t>(t - 2)]) + w[static_cast<std::size_t>(t - 7)] +
            small_sigma0(w[static_cast<std::size_t>(t - 15)]) + w[static_cast<std::size_t>(t - 16)];

    u32 a = h_[0], b = h_[1], c = h_[2], d = h_[3];
    u32 e = h_[4], f = h_[5], g = h_[6], h = h_[7];
    for (int t = 0; t < 64; ++t) {
        const u32 t1 = h + big_sigma1(e) + ch(e, f, g) + k_k[static_cast<std::size_t>(t)] +
                       w[static_cast<std::size_t>(t)];
        const u32 t2 = big_sigma0(a) + maj(a, b, c);
        h = g;
        g = f;
        f = e;
        e = d + t1;
        d = c;
        c = b;
        b = a;
        a = t1 + t2;
    }
    h_[0] += a;
    h_[1] += b;
    h_[2] += c;
    h_[3] += d;
    h_[4] += e;
    h_[5] += f;
    h_[6] += g;
    h_[7] += h;
}

class Scalar_sha256_backend final : public Sha256_backend {
public:
    [[nodiscard]] std::string_view name() const override { return "scalar"; }

    void compress(Sha256_state& state, const u8* data, std::size_t nblocks) const override
    {
        for (std::size_t b = 0; b < nblocks; ++b) compress_scalar(state, data + 64 * b);
    }
};

// --------------------------------------------------------- fast backend ----
//
// One type-generic round body serves two gears:
//
//   * W = u32      - a single message, fully unrolled: the 16-word message
//                    schedule rolls through w[t & 15] in registers and the
//                    a..h working variables are *renamed* per round (the
//                    macro arguments rotate) instead of shifted, so the
//                    eight values never move.
//   * W = u32xv    - one independent message per SIMD lane (GCC generic
//                    vectors, so the same source compiles to SSE, AVX2 or
//                    plain scalar code depending on the target).  Every
//                    round instruction advances all lanes at once -- the
//                    multi-buffer discipline hardware SHA extensions and
//                    OpenSSL's sha256_mb use, without intrinsics.
//
// compress_many feeds full lane groups through the vector gear and the
// tail through the unrolled scalar gear.

/// The multi-buffer lane vector; element j belongs to message j of the
/// current group.  16 bytes = 4 lanes, the SSE register width every x86-64
/// baseline has: wider vectors measured *slower* here because without
/// -mavx2 GCC splits them in two and the working set spills (and on this
/// repo's reference Xeon, 8 scalar-interleaved lanes spill the GP file the
/// same way).  On an AVX2-targeted build (-march=native etc.) the lane
/// widens to 32 bytes = 8 messages per pass, keeping this tier competitive
/// as the fallback below shani.
#if defined(__AVX2__)
using u32xv = u32 __attribute__((vector_size(32)));
#else
using u32xv = u32 __attribute__((vector_size(16)));
#endif

/// Lanes a word type carries: 1 for u32, 4 for u32xv.
template <typename W>
inline constexpr std::size_t k_lanes_of = sizeof(W) / sizeof(u32);

// One round at index `i`: reads the rolling schedule, bumps D and H.
// A..H name W-typed locals holding the working variables in rotated roles.
#define SEDA_SHA_RND(A, B, C, D, E, F, G, H, i)                                  \
    {                                                                            \
        const W t1 = H + big_sigma1(E) + ch(E, F, G) + k_k[(i)] + w[(i) & 15];   \
        const W t2 = big_sigma0(A) + maj(A, B, C);                               \
        D += t1;                                                                 \
        H = t1 + t2;                                                             \
    }

// Rolling-schedule update for round i >= 16, then the round itself.
#define SEDA_SHA_RNDX(A, B, C, D, E, F, G, H, i)                                 \
    w[(i) & 15] += small_sigma1(w[((i) + 14) & 15]) + w[((i) + 9) & 15] +        \
                   small_sigma0(w[((i) + 1) & 15]);                              \
    SEDA_SHA_RND(A, B, C, D, E, F, G, H, i)

/// One compression over k_lanes_of<W> independent (state, block) pairs.
template <typename W>
void compress_batch(Sha256_state* const* states, const u8* const* blocks)
{
    constexpr std::size_t L = k_lanes_of<W>;
    W w[16];
    W a, b, c, d, e, f, g, h;
    if constexpr (L == 1) {
        for (int t = 0; t < 16; ++t) w[t] = load_be32(blocks[0] + 4 * t);
        const Sha256_state& s = *states[0];
        a = s[0]; b = s[1]; c = s[2]; d = s[3];
        e = s[4]; f = s[5]; g = s[6]; h = s[7];
    } else {
        // Transpose the lane blocks and states into vector form: word t of
        // every message lands in w[t], one message per lane.
        for (int t = 0; t < 16; ++t)
            for (std::size_t j = 0; j < L; ++j) w[t][j] = load_be32(blocks[j] + 4 * t);
        for (std::size_t j = 0; j < L; ++j) {
            const Sha256_state& s = *states[j];
            a[j] = s[0]; b[j] = s[1]; c[j] = s[2]; d[j] = s[3];
            e[j] = s[4]; f[j] = s[5]; g[j] = s[6]; h[j] = s[7];
        }
    }

    SEDA_SHA_RND(a, b, c, d, e, f, g, h, 0)
    SEDA_SHA_RND(h, a, b, c, d, e, f, g, 1)
    SEDA_SHA_RND(g, h, a, b, c, d, e, f, 2)
    SEDA_SHA_RND(f, g, h, a, b, c, d, e, 3)
    SEDA_SHA_RND(e, f, g, h, a, b, c, d, 4)
    SEDA_SHA_RND(d, e, f, g, h, a, b, c, 5)
    SEDA_SHA_RND(c, d, e, f, g, h, a, b, 6)
    SEDA_SHA_RND(b, c, d, e, f, g, h, a, 7)
    SEDA_SHA_RND(a, b, c, d, e, f, g, h, 8)
    SEDA_SHA_RND(h, a, b, c, d, e, f, g, 9)
    SEDA_SHA_RND(g, h, a, b, c, d, e, f, 10)
    SEDA_SHA_RND(f, g, h, a, b, c, d, e, 11)
    SEDA_SHA_RND(e, f, g, h, a, b, c, d, 12)
    SEDA_SHA_RND(d, e, f, g, h, a, b, c, 13)
    SEDA_SHA_RND(c, d, e, f, g, h, a, b, 14)
    SEDA_SHA_RND(b, c, d, e, f, g, h, a, 15)
    SEDA_SHA_RNDX(a, b, c, d, e, f, g, h, 16)
    SEDA_SHA_RNDX(h, a, b, c, d, e, f, g, 17)
    SEDA_SHA_RNDX(g, h, a, b, c, d, e, f, 18)
    SEDA_SHA_RNDX(f, g, h, a, b, c, d, e, 19)
    SEDA_SHA_RNDX(e, f, g, h, a, b, c, d, 20)
    SEDA_SHA_RNDX(d, e, f, g, h, a, b, c, 21)
    SEDA_SHA_RNDX(c, d, e, f, g, h, a, b, 22)
    SEDA_SHA_RNDX(b, c, d, e, f, g, h, a, 23)
    SEDA_SHA_RNDX(a, b, c, d, e, f, g, h, 24)
    SEDA_SHA_RNDX(h, a, b, c, d, e, f, g, 25)
    SEDA_SHA_RNDX(g, h, a, b, c, d, e, f, 26)
    SEDA_SHA_RNDX(f, g, h, a, b, c, d, e, 27)
    SEDA_SHA_RNDX(e, f, g, h, a, b, c, d, 28)
    SEDA_SHA_RNDX(d, e, f, g, h, a, b, c, 29)
    SEDA_SHA_RNDX(c, d, e, f, g, h, a, b, 30)
    SEDA_SHA_RNDX(b, c, d, e, f, g, h, a, 31)
    SEDA_SHA_RNDX(a, b, c, d, e, f, g, h, 32)
    SEDA_SHA_RNDX(h, a, b, c, d, e, f, g, 33)
    SEDA_SHA_RNDX(g, h, a, b, c, d, e, f, 34)
    SEDA_SHA_RNDX(f, g, h, a, b, c, d, e, 35)
    SEDA_SHA_RNDX(e, f, g, h, a, b, c, d, 36)
    SEDA_SHA_RNDX(d, e, f, g, h, a, b, c, 37)
    SEDA_SHA_RNDX(c, d, e, f, g, h, a, b, 38)
    SEDA_SHA_RNDX(b, c, d, e, f, g, h, a, 39)
    SEDA_SHA_RNDX(a, b, c, d, e, f, g, h, 40)
    SEDA_SHA_RNDX(h, a, b, c, d, e, f, g, 41)
    SEDA_SHA_RNDX(g, h, a, b, c, d, e, f, 42)
    SEDA_SHA_RNDX(f, g, h, a, b, c, d, e, 43)
    SEDA_SHA_RNDX(e, f, g, h, a, b, c, d, 44)
    SEDA_SHA_RNDX(d, e, f, g, h, a, b, c, 45)
    SEDA_SHA_RNDX(c, d, e, f, g, h, a, b, 46)
    SEDA_SHA_RNDX(b, c, d, e, f, g, h, a, 47)
    SEDA_SHA_RNDX(a, b, c, d, e, f, g, h, 48)
    SEDA_SHA_RNDX(h, a, b, c, d, e, f, g, 49)
    SEDA_SHA_RNDX(g, h, a, b, c, d, e, f, 50)
    SEDA_SHA_RNDX(f, g, h, a, b, c, d, e, 51)
    SEDA_SHA_RNDX(e, f, g, h, a, b, c, d, 52)
    SEDA_SHA_RNDX(d, e, f, g, h, a, b, c, 53)
    SEDA_SHA_RNDX(c, d, e, f, g, h, a, b, 54)
    SEDA_SHA_RNDX(b, c, d, e, f, g, h, a, 55)
    SEDA_SHA_RNDX(a, b, c, d, e, f, g, h, 56)
    SEDA_SHA_RNDX(h, a, b, c, d, e, f, g, 57)
    SEDA_SHA_RNDX(g, h, a, b, c, d, e, f, 58)
    SEDA_SHA_RNDX(f, g, h, a, b, c, d, e, 59)
    SEDA_SHA_RNDX(e, f, g, h, a, b, c, d, 60)
    SEDA_SHA_RNDX(d, e, f, g, h, a, b, c, 61)
    SEDA_SHA_RNDX(c, d, e, f, g, h, a, b, 62)
    SEDA_SHA_RNDX(b, c, d, e, f, g, h, a, 63)

    if constexpr (L == 1) {
        Sha256_state& s = *states[0];
        s[0] += a; s[1] += b; s[2] += c; s[3] += d;
        s[4] += e; s[5] += f; s[6] += g; s[7] += h;
    } else {
        for (std::size_t j = 0; j < L; ++j) {
            Sha256_state& s = *states[j];
            s[0] += a[j]; s[1] += b[j]; s[2] += c[j]; s[3] += d[j];
            s[4] += e[j]; s[5] += f[j]; s[6] += g[j]; s[7] += h[j];
        }
    }
}

#undef SEDA_SHA_RNDX
#undef SEDA_SHA_RND

class Fast_sha256_backend final : public Sha256_backend {
public:
    [[nodiscard]] std::string_view name() const override { return "fast"; }

    void compress(Sha256_state& state, const u8* data, std::size_t nblocks) const override
    {
        // A single message stream is one serial chain; nothing to batch, so
        // the unrolled scalar gear is the whole win here.
        Sha256_state* sp = &state;
        for (std::size_t b = 0; b < nblocks; ++b) {
            const u8* block = data + 64 * b;
            compress_batch<u32>(&sp, &block);
        }
    }

    void compress_many(std::span<const Sha256_job> jobs) const override
    {
        std::size_t i = 0;
        for (; i + k_group <= jobs.size(); i += k_group) run_group<u32xv>(&jobs[i]);
        for (; i < jobs.size(); ++i) run_group<u32>(&jobs[i]);
    }

private:
    static constexpr std::size_t k_group = k_lanes_of<u32xv>;

    template <typename W>
    static void run_group(const Sha256_job* jobs)
    {
        Sha256_state* states[k_lanes_of<W>];
        const u8* blocks[k_lanes_of<W>];
        for (std::size_t j = 0; j < k_lanes_of<W>; ++j) {
            states[j] = jobs[j].state;
            blocks[j] = jobs[j].block;
        }
        compress_batch<W>(states, blocks);
    }
};

const Scalar_sha256_backend k_scalar_sha256_backend;
const Fast_sha256_backend k_fast_sha256_backend;

}  // namespace

void Sha256_backend::compress_many(std::span<const Sha256_job> jobs) const
{
    for (const Sha256_job& job : jobs) compress(*job.state, job.block, 1);
}

const Sha256_backend& scalar_sha256_backend() { return k_scalar_sha256_backend; }
const Sha256_backend& fast_sha256_backend() { return k_fast_sha256_backend; }

bool sha256_backend_available(Sha256_backend_kind kind)
{
    return kind != Sha256_backend_kind::shani || shani_sha256_backend() != nullptr;
}

Sha256_backend_kind default_sha256_backend_kind()
{
    // Best available tier unless the env var forces one; the once-per-process
    // discipline (and the degrade-to-fast path for a hardware kind forced on
    // a CPU without it) lives in resolve_backend_env_once.
    static constexpr std::pair<std::string_view, Sha256_backend_kind> names[] = {
        {"scalar", Sha256_backend_kind::scalar},
        {"fast", Sha256_backend_kind::fast},
        {"shani", Sha256_backend_kind::shani}};
    const Sha256_backend_kind preferred = shani_sha256_backend() != nullptr
                                              ? Sha256_backend_kind::shani
                                              : Sha256_backend_kind::fast;
    return resolve_backend_env_once<Sha256_backend_kind>(
        "SEDA_SHA_BACKEND", names, preferred, sha256_backend_available,
        Sha256_backend_kind::fast);
}

const Sha256_backend& sha256_backend_for(Sha256_backend_kind kind)
{
    if (kind == Sha256_backend_kind::auto_select) kind = default_sha256_backend_kind();
    switch (kind) {
        case Sha256_backend_kind::scalar: return scalar_sha256_backend();
        case Sha256_backend_kind::shani:
            // Degrades to the software fast tier when the CPU can't run it,
            // so a kind persisted in config stays safe across machines.
            if (const Sha256_backend* hw = shani_sha256_backend()) return *hw;
            [[fallthrough]];
        default: return fast_sha256_backend();
    }
}

std::span<const Sha256_backend_kind> all_sha256_backend_kinds()
{
    static constexpr std::array<Sha256_backend_kind, 3> kinds = {
        Sha256_backend_kind::scalar, Sha256_backend_kind::fast,
        Sha256_backend_kind::shani};
    return kinds;
}

}  // namespace seda::crypto
