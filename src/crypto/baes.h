// B-AES: SeDA's bandwidth-aware encryption mechanism (Fig. 3(a), Alg. 1).
//
// One AES engine produces the base OTP = AES-CTR_Ke(PA || VN) for a protected
// unit; per-16-byte-segment pads are then fanned out with XOR gates:
//
//     OTP_i = OTP ^ key_i        (key_i from the engine's keyExpansion)
//
// which defeats the Single-Element Collision Attack (SECA) that a shared OTP
// permits, at the hardware cost of XOR lanes instead of extra AES engines.
// When a unit has more segments than the schedule has round keys, the paper's
// extension applies: keyExpansion is re-run with input key ^ (PA || VN),
// yielding a further bank of pads, and so on.
//
// The batch entry points (otps_into / crypt_with) take caller-owned scratch
// so Secure_memory's batch I/O amortizes the pad buffer across a whole tile
// of units instead of allocating per unit.
#pragma once

#include <span>
#include <vector>

#include "common/types.h"
#include "crypto/aes.h"
#include "crypto/ctr.h"

namespace seda::crypto {

/// B-AES encrypt/decrypt engine for one key.  Thread-safe for concurrent
/// const use: the schedules are immutable after construction, and the batch
/// entry points mutate only their caller-owned scratch -- which is also the
/// sharing rule: a pad_scratch vector belongs to exactly one thread.
/// Secure_session gives every worker its own engine anyway so backends and
/// derived-schedule caches never ping-pong cache lines.
class Baes_engine {
public:
    explicit Baes_engine(std::span<const u8> key,
                         Aes_backend_kind kind = Aes_backend_kind::auto_select);

    /// One unit of a batch base-OTP request (otps_many).
    struct Otp_request {
        Addr pa = 0;
        u64 vn = 0;
    };

    /// Distinct pads for segments 0..lanes-1 of the unit at (pa, vn).
    /// Lane 0..r use the primary schedule's round keys; further lanes come
    /// from derived schedules keyed with key ^ (PA || VN) (+ bank index).
    [[nodiscard]] std::vector<Block16> otps(Addr pa, u64 vn, std::size_t lanes) const;

    /// Batch base-OTP generation: bases[i] = AES-CTR_Ke(PA_i || VN_i) for
    /// every unit of a flush, streamed through the cipher's bulk interface
    /// (one backend dispatch, interleaved rounds) instead of one
    /// encrypt_block call per unit.  `bases.size()` must equal
    /// `reqs.size()`; bit-identical to ctr().otp() per request.
    void otps_many(std::span<const Otp_request> reqs, std::span<Block16> bases) const;

    /// crypt_with() for a unit whose base OTP was already produced by
    /// otps_many: only the per-segment pad fan-out and the XOR lanes run
    /// here.  `base` must be the OTP of (pa, vn); bit-identical to
    /// crypt_with() on the same unit.
    void crypt_with_base(std::span<u8> data, Addr pa, u64 vn, const Block16& base,
                         std::vector<Block16>& pad_scratch) const;

    /// Same fan-out written into `pads` (resized to `lanes`); reusing the
    /// vector across units keeps the batch path allocation-free.
    void otps_into(Addr pa, u64 vn, std::size_t lanes, std::vector<Block16>& pads) const;

    /// Encrypts/decrypts `data` in place, one B-AES lane per 16-byte segment.
    /// CTR-style XOR discipline, so the two operations coincide.
    void crypt(std::span<u8> data, Addr pa, u64 vn) const;

    /// crypt() with caller-owned pad scratch (the batch-I/O hot path).
    void crypt_with(std::span<u8> data, Addr pa, u64 vn,
                    std::vector<Block16>& pad_scratch) const;

    /// Number of pads available without re-running keyExpansion
    /// (= round keys of the primary schedule).
    [[nodiscard]] std::size_t native_lanes() const { return ctr_.engine().round_keys().size(); }

    [[nodiscard]] const Aes_ctr& ctr() const { return ctr_; }

private:
    /// Expands `base` (the OTP of (pa, vn)) into per-segment pads: primary
    /// round keys first, then derived banks for very wide units.
    void fan_out(const Block16& base, Addr pa, u64 vn, std::size_t lanes,
                 std::vector<Block16>& pads) const;
    /// XORs pads[seg] onto the seg-th 16-byte segment of `data`.
    static void xor_lanes(std::span<u8> data, std::span<const Block16> pads);

    std::vector<u8> key_;
    Aes_ctr ctr_;
};

}  // namespace seda::crypto
