// The SHA-NI hardware backend: FIPS 180-4 compression as instructions.
//
// sha256rnds2 executes two rounds on the (ABEF, CDGH) state halves; the
// message schedule advances through sha256msg1/sha256msg2 plus one alignr
// per 4-round group.  A 64-byte block costs 32 rnds2 plus schedule ops
// instead of the software tier's ~64 unrolled scalar rounds, and the state
// never leaves two XMM registers.
//
// The rnds2 chain of one message is serial (latency ~4-6 cycles, one start
// per chain step), so single-stream compression is latency-bound exactly
// like the software tiers.  compress_many therefore round-robins TWO
// independent messages through the pipeline per pass -- every instruction
// of message B issues in the shadow of message A's chain -- which is the
// same multi-buffer discipline Hmac_engine's wave scheduler was shaped for.
// Two is the sweet spot: the working set (2 states + 2x4 schedule + 2
// message temps + saves) already fills the 16-register XMM file.
//
// State packing follows the instruction's convention: state0 = ABEF,
// state1 = CDGH (high lane first), entered and left through the canonical
// shuffle/alignr/blend sequence.  Message words load big-endian via one
// pshufb per 16 bytes.
//
// The whole implementation sits in a target("sha,ssse3,sse4.1") pragma
// region (plus per-file -msha flags in CMake, belt and braces), so the TU
// builds under the baseline -march; runtime selection happens once in
// shani_sha256_backend() via __builtin_cpu_supports.  SEDA_DISABLE_HW_CRYPTO
// compiles the backend out, leaving the nullptr stub at the bottom.
#include "crypto/sha256_backend.h"

#if defined(__x86_64__) && !defined(SEDA_DISABLE_HW_CRYPTO)

#include <immintrin.h>

namespace seda::crypto {
namespace {

// The FIPS 180-4 round constants (sec. 4.2.2), duplicated from the software
// TU: k4() below wants them contiguous in this TU's .rodata, and the
// anonymous-namespace copy there is deliberately not exported.
constexpr std::array<u32, 64> k_k = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

#pragma GCC push_options
#pragma GCC target("sha,ssse3,sse4.1")

/// K constants for 4-round group `g`, one per lane.
inline __m128i k4(int g)
{
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(&k_k[static_cast<std::size_t>(4 * g)]));
}

/// Big-endian 16-byte load: pshufb mask swapping each u32's bytes.
inline __m128i load_be_words(const u8* p)
{
    const __m128i mask = _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);
    return _mm_shuffle_epi8(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p)), mask);
}

/// Four rounds over N interleaved messages with the schedule update for the
/// NEXT occurrence of this group's registers: cur holds W[4g..4g+3], nxt
/// accumulates W[4g+4..4g+7], prev is fed through msg1 for the group after.
/// The three-operand schedule recurrence maps onto alignr + add + msg2
/// (sigma1 + adds) and msg1 (sigma0 + add), per the instruction split.
#define SEDA_SHANI_GRP(g, cur, nxt, prev, do_msg1)                                       \
    for (int j = 0; j < N; ++j) msg[j] = _mm_add_epi32(cur[j], k4(g));                   \
    for (int j = 0; j < N; ++j) s1[j] = _mm_sha256rnds2_epu32(s1[j], s0[j], msg[j]);     \
    for (int j = 0; j < N; ++j)                                                          \
        nxt[j] = _mm_sha256msg2_epu32(                                                   \
            _mm_add_epi32(nxt[j], _mm_alignr_epi8(cur[j], prev[j], 4)), cur[j]);         \
    for (int j = 0; j < N; ++j) msg[j] = _mm_shuffle_epi32(msg[j], 0x0E);                \
    for (int j = 0; j < N; ++j) s0[j] = _mm_sha256rnds2_epu32(s0[j], s1[j], msg[j]);     \
    if constexpr (do_msg1)                                                               \
        for (int j = 0; j < N; ++j) prev[j] = _mm_sha256msg1_epu32(prev[j], cur[j]);

/// One 64-byte block over N interleaved messages; states stay packed as
/// (ABEF, CDGH) in s0/s1.
template <int N>
inline void compress_rounds(__m128i (&s0)[N], __m128i (&s1)[N], const u8* (&p)[N])
{
    __m128i save0[N], save1[N], t0[N], t1[N], t2[N], t3[N], msg[N];
    for (int j = 0; j < N; ++j) save0[j] = s0[j];
    for (int j = 0; j < N; ++j) save1[j] = s1[j];

    // Rounds 0-3: schedule registers fill as the first groups retire.
    for (int j = 0; j < N; ++j) t0[j] = load_be_words(p[j]);
    for (int j = 0; j < N; ++j) msg[j] = _mm_add_epi32(t0[j], k4(0));
    for (int j = 0; j < N; ++j) s1[j] = _mm_sha256rnds2_epu32(s1[j], s0[j], msg[j]);
    for (int j = 0; j < N; ++j) msg[j] = _mm_shuffle_epi32(msg[j], 0x0E);
    for (int j = 0; j < N; ++j) s0[j] = _mm_sha256rnds2_epu32(s0[j], s1[j], msg[j]);

    // Rounds 4-7.
    for (int j = 0; j < N; ++j) t1[j] = load_be_words(p[j] + 16);
    for (int j = 0; j < N; ++j) msg[j] = _mm_add_epi32(t1[j], k4(1));
    for (int j = 0; j < N; ++j) s1[j] = _mm_sha256rnds2_epu32(s1[j], s0[j], msg[j]);
    for (int j = 0; j < N; ++j) msg[j] = _mm_shuffle_epi32(msg[j], 0x0E);
    for (int j = 0; j < N; ++j) s0[j] = _mm_sha256rnds2_epu32(s0[j], s1[j], msg[j]);
    for (int j = 0; j < N; ++j) t0[j] = _mm_sha256msg1_epu32(t0[j], t1[j]);

    // Rounds 8-11.
    for (int j = 0; j < N; ++j) t2[j] = load_be_words(p[j] + 32);
    for (int j = 0; j < N; ++j) msg[j] = _mm_add_epi32(t2[j], k4(2));
    for (int j = 0; j < N; ++j) s1[j] = _mm_sha256rnds2_epu32(s1[j], s0[j], msg[j]);
    for (int j = 0; j < N; ++j) msg[j] = _mm_shuffle_epi32(msg[j], 0x0E);
    for (int j = 0; j < N; ++j) s0[j] = _mm_sha256rnds2_epu32(s0[j], s1[j], msg[j]);
    for (int j = 0; j < N; ++j) t1[j] = _mm_sha256msg1_epu32(t1[j], t2[j]);

    // Rounds 12-15: the last loads; the schedule recurrence starts rolling.
    for (int j = 0; j < N; ++j) t3[j] = load_be_words(p[j] + 48);
    SEDA_SHANI_GRP(3, t3, t0, t2, true)

    // Rounds 16-51: the rolling pattern, schedule registers rotating roles.
    SEDA_SHANI_GRP(4, t0, t1, t3, true)
    SEDA_SHANI_GRP(5, t1, t2, t0, true)
    SEDA_SHANI_GRP(6, t2, t3, t1, true)
    SEDA_SHANI_GRP(7, t3, t0, t2, true)
    SEDA_SHANI_GRP(8, t0, t1, t3, true)
    SEDA_SHANI_GRP(9, t1, t2, t0, true)
    SEDA_SHANI_GRP(10, t2, t3, t1, true)
    SEDA_SHANI_GRP(11, t3, t0, t2, true)
    SEDA_SHANI_GRP(12, t0, t1, t3, true)

    // Rounds 52-59: no further msg1 -- W[64..] is never needed.
    SEDA_SHANI_GRP(13, t1, t2, t0, false)
    SEDA_SHANI_GRP(14, t2, t3, t1, false)

    // Rounds 60-63.
    for (int j = 0; j < N; ++j) msg[j] = _mm_add_epi32(t3[j], k4(15));
    for (int j = 0; j < N; ++j) s1[j] = _mm_sha256rnds2_epu32(s1[j], s0[j], msg[j]);
    for (int j = 0; j < N; ++j) msg[j] = _mm_shuffle_epi32(msg[j], 0x0E);
    for (int j = 0; j < N; ++j) s0[j] = _mm_sha256rnds2_epu32(s0[j], s1[j], msg[j]);

    for (int j = 0; j < N; ++j) s0[j] = _mm_add_epi32(s0[j], save0[j]);
    for (int j = 0; j < N; ++j) s1[j] = _mm_add_epi32(s1[j], save1[j]);
}

#undef SEDA_SHANI_GRP

/// N message streams, `nblocks` consecutive blocks each; the packed states
/// enter and leave registers exactly once.
template <int N>
void compress_shani(Sha256_state* (&states)[N], const u8* (&p)[N], std::size_t nblocks)
{
    __m128i s0[N], s1[N];
    for (int j = 0; j < N; ++j) {
        // (a,b,c,d) and (e,f,g,h) -> the (ABEF, CDGH) packing rnds2 wants.
        __m128i abcd =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(states[j]->data()));
        __m128i efgh =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(states[j]->data() + 4));
        abcd = _mm_shuffle_epi32(abcd, 0xB1);             // (b,a,d,c)
        efgh = _mm_shuffle_epi32(efgh, 0x1B);             // (h,g,f,e)
        s0[j] = _mm_alignr_epi8(abcd, efgh, 8);           // ABEF
        s1[j] = _mm_blend_epi16(efgh, abcd, 0xF0);        // CDGH
    }

    for (std::size_t b = 0; b < nblocks; ++b) {
        compress_rounds<N>(s0, s1, p);
        for (int j = 0; j < N; ++j) p[j] += 64;
    }

    for (int j = 0; j < N; ++j) {
        const __m128i feba = _mm_shuffle_epi32(s0[j], 0x1B);   // (a,b,e,f)
        const __m128i dchg = _mm_shuffle_epi32(s1[j], 0xB1);   // (g,h,c,d)
        const __m128i abcd = _mm_blend_epi16(feba, dchg, 0xF0);
        const __m128i efgh = _mm_alignr_epi8(dchg, feba, 8);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(states[j]->data()), abcd);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(states[j]->data() + 4), efgh);
    }
}

class Shani_sha256_backend final : public Sha256_backend {
public:
    [[nodiscard]] std::string_view name() const override { return "shani"; }

    void compress(Sha256_state& state, const u8* data, std::size_t nblocks) const override
    {
        Sha256_state* states[1] = {&state};
        const u8* p[1] = {data};
        compress_shani<1>(states, p, nblocks);
    }

    void compress_many(std::span<const Sha256_job> jobs) const override
    {
        // Four-stream waves, then a pair, then a lone message.  Four lanes
        // oversubscribe the XMM file, but the t-register spills land on the
        // load/store ports while every sha256* (and shuffle) instruction
        // competes for ONE execution port; keeping four serial rnds2 chains
        // in flight is what fills it.  Wider waves lose to spill traffic:
        // measured on tile-sized batches (bm_hmac_units_bulk) 4 lanes beat
        // 2, 6 and 8 on a SHA-NI Xeon.
        std::size_t i = 0;
        for (; i + 4 <= jobs.size(); i += 4) {
            Sha256_state* states[4] = {jobs[i].state, jobs[i + 1].state,
                                       jobs[i + 2].state, jobs[i + 3].state};
            const u8* p[4] = {jobs[i].block, jobs[i + 1].block, jobs[i + 2].block,
                              jobs[i + 3].block};
            compress_shani<4>(states, p, 1);
        }
        if (i + 2 <= jobs.size()) {
            Sha256_state* states[2] = {jobs[i].state, jobs[i + 1].state};
            const u8* p[2] = {jobs[i].block, jobs[i + 1].block};
            compress_shani<2>(states, p, 1);
            i += 2;
        }
        if (i < jobs.size()) compress(*jobs[i].state, jobs[i].block, 1);
    }
};

#pragma GCC pop_options

const Shani_sha256_backend k_shani_backend;

}  // namespace

const Sha256_backend* shani_sha256_backend()
{
    static const bool available = __builtin_cpu_supports("sha") &&
                                  __builtin_cpu_supports("ssse3") &&
                                  __builtin_cpu_supports("sse4.1");
    return available ? &k_shani_backend : nullptr;
}

}  // namespace seda::crypto

#else  // non-x86 build or SEDA_DISABLE_HW_CRYPTO: the backend compiles out.

namespace seda::crypto {

const Sha256_backend* shani_sha256_backend() { return nullptr; }

}  // namespace seda::crypto

#endif
