#include "crypto/engine_model.h"

#include <cmath>

#include "common/error.h"

namespace seda::crypto {

Crypto_hw_cost t_aes_cost(double bandwidth_multiple, const Engine_model_params& p)
{
    require(bandwidth_multiple > 0.0, "t_aes_cost: bandwidth multiple must be positive");
    Crypto_hw_cost c;
    c.aes_engines = static_cast<int>(std::ceil(bandwidth_multiple));
    c.xor_lanes = 0;
    c.area_um2 = c.aes_engines * p.aes_area_um2;
    c.power_uw = c.aes_engines * p.aes_power_uw;
    return c;
}

Crypto_hw_cost b_aes_cost(double bandwidth_multiple, const Engine_model_params& p)
{
    require(bandwidth_multiple > 0.0, "b_aes_cost: bandwidth multiple must be positive");
    Crypto_hw_cost c;
    c.aes_engines = 1;
    c.xor_lanes = static_cast<int>(std::ceil(bandwidth_multiple)) - 1;
    c.area_um2 = p.aes_area_um2 + c.xor_lanes * p.xor_lane_area_um2;
    c.power_uw = p.aes_power_uw + c.xor_lanes * p.xor_lane_power_uw;
    return c;
}

double crypto_bytes_per_cycle(int engine_equivalents, const Engine_model_params& p)
{
    require(engine_equivalents >= 1, "crypto_bytes_per_cycle: need at least one lane");
    return engine_equivalents * p.engine_bytes_per_cycle;
}

int required_engine_equivalents(double link_bytes_per_cycle, const Engine_model_params& p)
{
    require(link_bytes_per_cycle > 0.0,
            "required_engine_equivalents: link rate must be positive");
    return static_cast<int>(std::ceil(link_bytes_per_cycle / p.engine_bytes_per_cycle));
}

}  // namespace seda::crypto
