#!/usr/bin/env python3
"""Captures a serve/infer benchmark trajectory snapshot as BENCH_<n>.json.

Runs the serving-layer and inference-replay benchmarks plus the
deterministic CLI workloads, and folds everything into one JSON artifact:

  * google-benchmark medians for bm_serve_batched / bm_serve_naive and the
    infer replay benches (repetitions, aggregates only);
  * the observability overhead pair -- bm_serve_batched with metrics live
    vs. SEDA_OBS=0 -- so the <=2% budget (docs/OBSERVABILITY.md) has a
    recorded number per capture.  Live and off rounds interleave and each
    side reports the median of round medians: the reference VM's
    run-to-run drift exceeds the effect, so back-to-back phases would
    measure the drift, not the overhead (docs/BENCHMARKS.md methodology);
  * the exporter overhead pair -- wall time of a loadgen run with --listen
    plus a 10 Hz external /metrics scraper vs. no exporter at all --
    the live telemetry plane's end-to-end price, same interleaved-round
    methodology;
  * `seda_cli loadgen/infer --json` deterministic counters (requests,
    verification outcomes, bytes), which must be identical between
    captures at the same seed -- drift is a correctness bug, not noise.

Usage:
  python3 tools/capture_bench.py [--build-dir build] [--out BENCH_10.json]
                                 [--repetitions 7] [--quick]
"""

import argparse
import json
import os
import platform
import subprocess
import sys
import threading
import time
import urllib.request


def run(cmd, env_extra=None, timeout=1800):
    env = dict(os.environ)
    if env_extra:
        env.update(env_extra)
    proc = subprocess.run(cmd, capture_output=True, text=True, env=env,
                          timeout=timeout)
    if proc.returncode != 0:
        sys.stderr.write(f"FAILED: {' '.join(cmd)}\n{proc.stderr}\n")
        raise SystemExit(1)
    return proc.stdout


def bench_medians(binary, bench_filter, repetitions, env_extra=None):
    """Median real_time (ns unless the bench says otherwise) per benchmark."""
    out = run([binary, f"--benchmark_filter={bench_filter}",
               f"--benchmark_repetitions={repetitions}",
               "--benchmark_report_aggregates_only=true",
               "--benchmark_format=json"], env_extra=env_extra)
    doc = json.loads(out)
    rows = {}
    for b in doc.get("benchmarks", []):
        if b.get("aggregate_name") != "median":
            continue
        rows[b["run_name"]] = {
            "real_time": b["real_time"],
            "time_unit": b["time_unit"],
            "items_per_second": b.get("items_per_second"),
        }
    return rows


def cli_json(cli, args):
    return json.loads(run([cli] + args + ["--json"]))


def median(xs):
    xs = sorted(xs)
    n = len(xs)
    return xs[n // 2] if n % 2 else 0.5 * (xs[n // 2 - 1] + xs[n // 2])


def obs_overhead(bench_serve, reps, rounds):
    """Interleaved live/SEDA_OBS=0 rounds; per-bench median of medians."""
    live_rounds = []
    off_rounds = []
    for r in range(rounds):
        # Alternate which side goes first: a fixed order would fold any
        # within-round drift (cache warmup, neighbor load) into the delta.
        sides = [(live_rounds, None), (off_rounds, {"SEDA_OBS": "0"})]
        for acc, env in (sides if r % 2 == 0 else reversed(sides)):
            acc.append(bench_medians(bench_serve, "bm_serve_batched", reps,
                                     env_extra=env))
    overhead = {}
    for name in live_rounds[0]:
        live = median([r[name]["real_time"] for r in live_rounds])
        off = median([r[name]["real_time"] for r in off_rounds])
        if off > 0:
            overhead[name] = {
                "live": live,
                "obs_off": off,
                "time_unit": live_rounds[0][name]["time_unit"],
                "rounds": rounds,
                "overhead_pct": 100.0 * (live / off - 1.0),
            }
    return overhead


def timed_loadgen(cli, requests, listen_port=None):
    """Wall seconds of one loadgen run.  With a port, a scraper thread GETs
    /metrics every 100 ms for the run's duration (an aggressive Prometheus
    scrape interval), so the enabled side pays the full serve-the-scrape
    price, not just the idle poll loop."""
    cmd = [cli, "loadgen", "--tenants", "2", "--clients", "4",
           "--requests", requests, "--jobs", "4", "--seed", "10", "--json"]
    if listen_port:
        cmd += ["--listen", str(listen_port)]
    stop = threading.Event()
    scrapes = [0]

    def scraper():
        url = f"http://127.0.0.1:{listen_port}/metrics"
        while not stop.is_set():
            try:
                urllib.request.urlopen(url, timeout=1).read()
                scrapes[0] += 1
            except Exception:
                pass  # not bound yet / shutting down
            stop.wait(0.1)

    thread = threading.Thread(target=scraper) if listen_port else None
    t0 = time.monotonic()
    proc = subprocess.Popen(cmd, stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    if thread:
        thread.start()
    rc = proc.wait()
    elapsed = time.monotonic() - t0
    stop.set()
    if thread:
        thread.join()
    if rc != 0:
        sys.stderr.write(f"FAILED: {' '.join(cmd)}\n")
        raise SystemExit(1)
    return elapsed, scrapes[0]


def exporter_overhead(cli, requests, rounds):
    """Interleaved exporter-on/off loadgen rounds; median wall seconds."""
    on_times = []
    off_times = []
    scrape_total = 0
    for r in range(rounds):
        sides = [(on_times, 9190), (off_times, None)]
        for acc, port in (sides if r % 2 == 0 else reversed(sides)):
            elapsed, scrapes = timed_loadgen(cli, requests, port)
            acc.append(elapsed)
            scrape_total += scrapes
    on = median(on_times)
    off = median(off_times)
    return {
        "enabled_s": on,
        "disabled_s": off,
        "rounds": rounds,
        "scrapes": scrape_total,
        "overhead_pct": 100.0 * (on / off - 1.0) if off > 0 else 0.0,
    }


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--out", default="BENCH_10.json")
    ap.add_argument("--repetitions", type=int, default=7)
    ap.add_argument("--quick", action="store_true",
                    help="3 repetitions, 2 overhead rounds, smaller "
                         "CLI workloads")
    args = ap.parse_args()
    if args.quick:
        args.repetitions = 3

    b = args.build_dir
    cli = os.path.join(b, "seda_cli")
    bench_serve = os.path.join(b, "bench_serve")
    bench_infer = os.path.join(b, "bench_infer")
    for path in (cli, bench_serve, bench_infer):
        if not os.path.exists(path):
            sys.stderr.write(f"missing {path}; configure with "
                             "-DSEDA_BUILD_BENCH=ON and build first\n")
            raise SystemExit(1)

    reps = args.repetitions
    requests = "16" if args.quick else "64"

    serve_live = bench_medians(bench_serve, "bm_serve_(batched|naive)", reps)
    infer_bench = bench_medians(bench_infer, ".", reps)
    overhead = obs_overhead(bench_serve, reps, rounds=2 if args.quick else 4)
    exporter = exporter_overhead(cli, "4096" if args.quick else "65536",
                                 rounds=2 if args.quick else 6)

    # Per-variant percentages still swing several points either way on the
    # 1-core reference VM (oversubscribed worker counts are worst); the
    # cross-variant median is the number to compare against the 2% budget.
    overhead_median = median([o["overhead_pct"] for o in overhead.values()]) \
        if overhead else 0.0

    result = {
        "bench": 10,
        "pr": 10,
        "host": {
            "machine": platform.machine(),
            "system": platform.system(),
            "cpus": os.cpu_count(),
        },
        "repetitions": reps,
        "serve": serve_live,
        "serve_obs_overhead": overhead,
        "serve_obs_overhead_pct_median": overhead_median,
        "loadgen_exporter_overhead": exporter,
        "infer_bench": infer_bench,
        "loadgen": cli_json(cli, ["loadgen", "--tenants", "2", "--clients",
                                  "4", "--requests", requests, "--jobs", "4",
                                  "--seed", "9"]),
        "infer": cli_json(cli, ["infer", "--model", "lenet", "--tenants",
                                "2", "--jobs", "4", "--seed", "9"]),
    }
    with open(args.out, "w") as f:
        json.dump(result, f, indent=1)
        f.write("\n")
    print(f"wrote {args.out}: {len(serve_live)} serve + {len(infer_bench)} "
          f"infer benches, median obs overhead {overhead_median:+.2f}%, "
          f"exporter overhead {exporter['overhead_pct']:+.2f}% "
          f"({exporter['scrapes']} scrapes)")


if __name__ == "__main__":
    main()
