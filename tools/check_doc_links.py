#!/usr/bin/env python3
"""Verify that relative markdown links in README.md and docs/ resolve.

Scans every inline link [text](target) in the repo's top-level *.md files
and docs/*.md, skips absolute URLs (scheme:// or mailto:) and pure
in-page anchors (#...), strips any #fragment, and checks the remaining
path exists relative to the file containing the link.

Exit status: 0 when every link resolves, 1 otherwise (each broken link is
reported on stderr as file:line: target).
"""
import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_RE = re.compile(r"^([a-z][a-z0-9+.-]*:|#)", re.IGNORECASE)


def check_file(md: Path) -> list[str]:
    errors = []
    for lineno, line in enumerate(md.read_text(encoding="utf-8").splitlines(), 1):
        for target in LINK_RE.findall(line):
            if SKIP_RE.match(target):
                continue  # URL or in-page anchor
            path = target.split("#", 1)[0]
            if not path:
                continue
            if not (md.parent / path).exists():
                errors.append(f"{md}:{lineno}: broken link -> {target}")
    return errors


def main() -> int:
    repo = Path(__file__).resolve().parent.parent
    files = sorted(repo.glob("*.md")) + sorted((repo / "docs").glob("*.md"))
    errors = []
    for md in files:
        errors.extend(check_file(md))
    for e in errors:
        print(e, file=sys.stderr)
    print(f"check_doc_links: {len(files)} files scanned, {len(errors)} broken links")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
