// seda_cli: command-line front end for the simulation pipeline and the
// secure serving layer.
//
// Subcommands are registered in one command table (name, handler, usage
// line) so adding one does not grow an if/else chain; `help`/unknown
// handling and exit codes stay uniform (0 for help, 2 for usage errors).
//
// --jobs N fans the work across a runtime::Thread_pool of N workers (0 =
// one per hardware thread); output is byte-identical at every worker count
// (for loadgen: the deterministic stats, which is all --json prints --
// timing goes to stderr).  --json emits machine-readable JSON so bench
// trajectories can be captured as BENCH_*.json files.  The
// SEDA_AES_BACKEND / SEDA_SHA_BACKEND environment variables pin the
// process-wide crypto backends (docs/BACKENDS.md); simulator output is
// identical under every backend, which is exactly what makes them a
// cross-validation knob.
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "crypto/aes_backend.h"
#include "crypto/sha256_backend.h"
#include "obs/http_exporter.h"
#include "obs/slo.h"
#include "obs/snapshot.h"
#include "seda.h"

using namespace seda;

namespace {

struct Options {
    std::string command;
    std::string model = "resnet18";
    std::string npu = "server";
    std::string scheme = "seda";
    std::size_t jobs = 1;
    bool csv = false;
    bool json = false;
    // loadgen / infer
    std::size_t tenants = 2;
    std::size_t clients = 4;
    std::size_t requests = 64;
    std::size_t max_wait_us = 0;
    u64 seed = 0x5EDA;
    std::string mode = "serve";  ///< infer replay path: serve | session
    // infer defaults to 1 tenant x 1 inference (a full model pass is many
    // thousand unit ops); explicit flags override.
    bool tenants_set = false;
    bool requests_set = false;
    // attack
    std::size_t faults = 8;  ///< faults in the campaign plan
    bool model_set = false;  ///< attack defaults to lenet unless --model given
    // observability exports (loadgen, infer) -- all timing-bound, so they
    // go to stderr or the named files, never the stdout JSON contract
    std::string stats_out;   ///< Prometheus text scrape file
    std::string stats_json;  ///< JSON scrape file
    std::string trace_out;   ///< chrome://tracing span file
    std::string flight_out;  ///< flight-recorder dump file (also armed for
                             ///< automatic dump on any detection event)
    bool stages = false;     ///< per-stage percentile table on stderr
    // live telemetry plane (loadgen, infer, attack) -- sockets and stderr
    // only, so the stdout --json contract is untouched
    std::size_t listen = 0;          ///< --listen port (0 = ephemeral)
    bool listen_set = false;         ///< --listen given (env can also arm it)
    std::size_t listen_linger_ms = 0;  ///< hold the exporter open after the run
    std::size_t watch_ms = 0;        ///< --watch refresh interval (0 = off)
    std::vector<std::string> slos;   ///< --slo specs (repeatable)
    std::string slo_out;             ///< SLO report file (stderr summary if empty)
};

// ---------------------------------------------------------------- helpers ---

/// from_chars with a full-consumption check: stoul would accept "-1"
/// (wrapping) and "4x" (silently truncating).
template <typename Int>
void parse_int(const std::string& flag, const std::string& v, Int& out)
{
    const auto [end, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
    require(ec == std::errc() && end == v.data() + v.size(),
            "seda_cli: " + flag + " expects a non-negative integer, got '" + v + "'");
}

accel::Npu_config npu_by_name(const std::string& name)
{
    if (name == "server") return accel::Npu_config::server();
    if (name == "edge") return accel::Npu_config::edge();
    throw Seda_error("seda_cli: unknown NPU '" + name + "' (server|edge)");
}

/// Shortest round-trippable representation, locale-independent ('.' radix
/// is guaranteed for %g with the C locale snprintf uses on our platforms).
std::string json_double(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

/// Minimal JSON string escaping: today's npu/scheme/model names are
/// identifier-like, but nothing in their contracts forbids a quote.
std::string json_string(std::string_view s)
{
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"' || c == '\\') out += '\\';
        if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
            continue;
        }
        out += c;
    }
    out += '"';
    return out;
}

std::string hex64(u64 v)
{
    char buf[20];
    std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
    return buf;
}

/// Arms the observability exports requested by the flags; call before the
/// instrumented run so a --trace-out recording covers it.
void obs_begin(const Options& o)
{
    const bool wants = !o.stats_out.empty() || !o.stats_json.empty() ||
                       !o.trace_out.empty() || !o.flight_out.empty() || o.stages;
    if (!wants) return;
    if (!obs::k_compiled_in) {
        std::cerr << "seda_cli: note: built with SEDA_DISABLE_OBS; "
                     "--stages/--stats-out/--stats-json/--trace-out/--flight-out "
                     "emit empty output\n";
        return;
    }
    if (!obs::enabled())
        std::cerr << "seda_cli: note: SEDA_OBS=0 disables stage metrics; "
                     "scrape output will be empty\n";
    if (!o.trace_out.empty()) obs::Trace_recorder::start();
    // Armed BEFORE the run: the first detection event snapshots the ring
    // to this path at the moment of detection, not at exit.
    if (!o.flight_out.empty()) obs::Flight_recorder::arm_auto_dump(o.flight_out);
}

/// Scrapes once and writes every requested export (stderr table, Prometheus
/// text, JSON snapshot, chrome trace).
void obs_finish(const Options& o)
{
    const bool wants_scrape = !o.stats_out.empty() || !o.stats_json.empty() || o.stages;
    if (wants_scrape) {
        const obs::Snapshot snap = obs::Metrics_registry::instance().scrape();
        if (o.stages) obs::write_stage_table(snap, std::cerr);
        if (!o.stats_out.empty()) {
            std::ofstream f(o.stats_out);
            obs::write_prometheus(snap, f);
            require(f.good(), "seda_cli: failed to write " + o.stats_out);
        }
        if (!o.stats_json.empty()) {
            std::ofstream f(o.stats_json);
            obs::write_json(snap, f);
            require(f.good(), "seda_cli: failed to write " + o.stats_json);
        }
    }
    if (!o.trace_out.empty()) {
        std::ofstream f(o.trace_out);
        obs::Trace_recorder::write_json(f);
        require(f.good(), "seda_cli: failed to write " + o.trace_out);
        if (const u64 dropped = obs::Trace_recorder::dropped(); dropped != 0)
            std::cerr << "seda_cli: note: trace buffers overflowed, " << dropped
                      << " spans dropped\n";
    }
    if (!o.flight_out.empty()) {
        // Final end-of-run dump: overwrites any mid-run detection snapshot
        // with the complete picture (the detection events themselves are in
        // the ring, so nothing forensic is lost by the overwrite).
        require(obs::Flight_recorder::dump_flight(o.flight_out),
                "seda_cli: failed to write " + o.flight_out);
        if (const u64 det = obs::Flight_recorder::detections(); det != 0)
            std::cerr << "seda_cli: note: flight recorder saw " << det
                      << " detection event(s); dump at " << o.flight_out << "\n";
    }
}

/// The live telemetry plane of one instrumented run: the loopback HTTP
/// exporter (--listen / SEDA_OBS_LISTEN), the periodic snapshot differ
/// feeding the --watch stderr table, and the SLO tracker (--slo).  All
/// output rides sockets or stderr -- the stdout --json contract stays
/// byte-identical with every piece enabled (CI proves it).
struct Live_plane {
    std::unique_ptr<obs::Http_exporter> exporter;
    std::unique_ptr<obs::Slo_tracker> slo;
    std::unique_ptr<obs::Snapshot_poller> poller;
    obs::Watch_config watch;
    bool want_watch = false;

    /// Starts the exporter and poller (before the workload, so the first
    /// scrape can observe it ramping).  `defaults` carries the per-command
    /// watch families (serve vs infer).
    void start(const Options& o, obs::Watch_config defaults)
    {
        u16 port = static_cast<u16>(o.listen);
        bool want_listen = o.listen_set;
        if (!want_listen) {
            if (const u16 env_port = obs::listen_port_from_env(); env_port != 0) {
                port = env_port;
                want_listen = true;
            }
        }
        if (want_listen) {
            obs::Http_exporter_config cfg;
            cfg.port = port;
            exporter = std::make_unique<obs::Http_exporter>(cfg);
            exporter->start();
            std::cerr << "telemetry: listening on 127.0.0.1:" << exporter->port()
                      << " (/metrics /metrics.json /healthz /flight)\n";
        }

        want_watch = o.watch_ms != 0;
        const bool want_slo = !o.slos.empty();
        if (!want_watch && !want_slo) return;
        if (!obs::k_compiled_in || !obs::enabled())
            std::cerr << "seda_cli: note: observability is off; --watch/--slo see "
                         "empty snapshots\n";
        if (want_slo) {
            std::vector<obs::Slo_spec> specs;
            specs.reserve(o.slos.size());
            for (const auto& s : o.slos) specs.push_back(obs::parse_slo(s));
            slo = std::make_unique<obs::Slo_tracker>(std::move(specs));
        }
        watch = std::move(defaults);
        watch.interval = std::chrono::milliseconds(o.watch_ms != 0 ? o.watch_ms : 1000);
        poller = std::make_unique<obs::Snapshot_poller>(
            watch.interval, [this](const obs::Interval& iv) {
                if (want_watch) std::cerr << obs::render_watch_line(iv, watch) << "\n";
                if (slo) slo->observe(iv);
            });
        poller->start();
    }

    /// Stops the poller (flushing the tail interval), writes the SLO
    /// report, lingers if asked (so an external scraper can take a final
    /// /metrics pass and watch /healthz flip to stopped), then closes the
    /// exporter.
    void finish(const Options& o)
    {
        if (poller) poller->stop();
        if (slo) {
            if (!o.slo_out.empty()) {
                std::ofstream f(o.slo_out);
                slo->write_json(f);
                require(f.good(), "seda_cli: failed to write " + o.slo_out);
            }
            slo->write_summary(std::cerr);
        }
        if (exporter) {
            if (o.listen_linger_ms != 0) {
                std::cerr << "telemetry: lingering " << o.listen_linger_ms
                          << " ms for final scrapes\n";
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(o.listen_linger_ms));
            }
            exporter->stop();
        }
    }
};

/// Watch families for the inference replay path (no serve request stream
/// when --mode session; the layer histogram is the latency view either way).
obs::Watch_config infer_watch_defaults()
{
    obs::Watch_config w;
    w.rate_counter = "infer_inferences_total";
    w.latency_family = "infer_layer_us";
    w.tenant_error_families = {"infer_tenant_failures_total"};
    w.tenant_total_families = {"infer_tenant_ok_total"};
    return w;
}

// --------------------------------------------------------------- commands ---

int cmd_list(const Options&)
{
    std::cout << "workloads:";
    for (const auto& e : models::all_models())
        std::cout << " " << e.short_name << "(" << e.full_name << ")";
    std::cout << "\nnpus: server (TPU-v1-class)  edge (Exynos-990-class)\n"
              << "schemes: baseline sgx-64 sgx-512 mgx-64 mgx-512 securator seda\n";
    return 0;
}

int cmd_run(const Options& o)
{
    const auto npu = npu_by_name(o.npu);
    const auto sim = accel::simulate_model(models::model_by_name(o.model), npu);
    auto scheme = core::make_scheme(o.scheme);

    if (o.csv) {
        // The CSV report is a single scheme pass (no baseline to overlap
        // with), so there is nothing for extra workers to do.
        if (o.jobs != 1)
            std::cerr << "seda_cli: note: --jobs has no effect on run --csv "
                         "(single pass)\n";
        const auto stats = core::run_protected(sim, *scheme);
        Ascii_table t({"layer", "compute_cycles", "mem_cycles", "layer_cycles",
                       "traffic_bytes", "verify_events"});
        for (const auto& l : stats.layers)
            t.add_row({l.layer_name, std::to_string(l.compute_cycles),
                       std::to_string(l.mem_cycles), std::to_string(l.layer_cycles),
                       std::to_string(l.traffic_bytes), std::to_string(l.verify_events)});
        t.print_csv(std::cout);
        return 0;
    }

    // The scheme and baseline runs are independent; with --jobs > 1 they
    // overlap on the pool.
    core::Run_stats stats;
    core::Run_stats base_stats;
    if (o.jobs == 1) {
        stats = core::run_protected(sim, *scheme);
        protect::Baseline_scheme base;
        base_stats = core::run_protected(sim, base);
    } else {
        runtime::Thread_pool pool(o.jobs);
        auto scheme_run = pool.submit([&] { return core::run_protected(sim, *scheme); });
        auto base_run = pool.submit([&] {
            protect::Baseline_scheme base;
            return core::run_protected(sim, base);
        });
        stats = scheme_run.get();
        base_stats = base_run.get();
    }

    std::cout << o.model << " on " << npu.name << " under " << stats.scheme_name << ":\n"
              << "  cycles:  " << stats.total_cycles << " ("
              << fmt_f(stats.seconds(npu.freq_ghz) * 1e3, 3) << " ms)\n"
              << "  traffic: " << fmt_bytes(stats.traffic_bytes) << "\n"
              << "  events:  " << stats.verify_events << " verifications, "
              << stats.mac_misses << " MAC-line stalls\n"
              << "  vs baseline: slowdown "
              << fmt_pct(static_cast<double>(stats.total_cycles) /
                             static_cast<double>(base_stats.total_cycles) -
                         1.0)
              << ", traffic overhead "
              << fmt_pct(static_cast<double>(stats.traffic_bytes) /
                             static_cast<double>(base_stats.traffic_bytes) -
                         1.0)
              << "\n";
    return 0;
}

int cmd_report(const Options& o)
{
    const auto sim =
        accel::simulate_model(models::model_by_name(o.model), npu_by_name(o.npu));
    std::cout << accel::reports_to_string(sim);
    return 0;
}

void print_suite_json(const core::Suite_result& suite, std::ostream& os)
{
    os << "{\n  \"npu\": " << json_string(suite.npu_name) << ",\n  \"schemes\": [\n";
    for (std::size_t s = 0; s < suite.series.size(); ++s) {
        const auto& series = suite.series[s];
        os << "    {\n      \"scheme\": " << json_string(series.scheme) << ",\n"
           << "      \"avg_norm_traffic\": " << json_double(series.avg_norm_traffic())
           << ",\n"
           << "      \"avg_norm_perf\": " << json_double(series.avg_norm_perf()) << ",\n"
           << "      \"points\": [\n";
        for (std::size_t p = 0; p < series.points.size(); ++p) {
            const auto& pt = series.points[p];
            os << "        {\"model\": " << json_string(pt.model) << ", \"norm_traffic\": "
               << json_double(pt.norm_traffic) << ", \"norm_perf\": "
               << json_double(pt.norm_perf) << ", \"cycles\": " << pt.stats.total_cycles
               << ", \"traffic_bytes\": " << pt.stats.traffic_bytes
               << ", \"baseline_cycles\": " << pt.baseline.total_cycles
               << ", \"baseline_traffic_bytes\": " << pt.baseline.traffic_bytes << "}"
               << (p + 1 < series.points.size() ? "," : "") << "\n";
        }
        os << "      ]\n    }" << (s + 1 < suite.series.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

int cmd_suite(const Options& o)
{
    require(!(o.csv && o.json), "seda_cli: --csv and --json are mutually exclusive");
    const auto suite =
        runtime::run_suite_parallel(npu_by_name(o.npu), core::paper_schemes(), o.jobs);

    if (o.json) {
        print_suite_json(suite, std::cout);
        return 0;
    }

    std::vector<std::string> header = {"scheme", "metric"};
    for (const auto& p : suite.series.front().points) header.push_back(std::string(p.model));
    header.push_back("avg");
    Ascii_table t(header);
    for (const auto& s : suite.series) {
        std::vector<std::string> traffic = {s.scheme, "norm_traffic"};
        std::vector<std::string> perf = {s.scheme, "norm_perf"};
        for (const auto& p : s.points) {
            traffic.push_back(fmt_f(p.norm_traffic, 4));
            perf.push_back(fmt_f(p.norm_perf, 4));
        }
        traffic.push_back(fmt_f(s.avg_norm_traffic(), 4));
        perf.push_back(fmt_f(s.avg_norm_perf(), 4));
        t.add_row(std::move(traffic));
        t.add_row(std::move(perf));
    }
    if (o.csv)
        t.print_csv(std::cout);
    else
        t.print(std::cout);
    return 0;
}

/// Deterministic loadgen summary: ONLY fields that are byte-identical for
/// a fixed seed at any --jobs (CI diffs this across worker counts).
void print_loadgen_json(const serve::Loadgen_config& cfg, const serve::Loadgen_result& r,
                        std::ostream& os)
{
    const auto totals = r.stats.totals();
    os << "{\n"
       << "  \"seed\": " << cfg.seed << ",\n"
       << "  \"tenants\": " << cfg.tenants << ",\n"
       << "  \"clients_per_tenant\": " << cfg.clients << ",\n"
       << "  \"requests_per_client\": " << cfg.requests << ",\n"
       << "  \"unit_bytes\": " << cfg.unit_bytes << ",\n"
       << "  \"total_requests\": " << r.total_requests << ",\n"
       << "  \"status_failures\": " << r.status_failures << ",\n"
       << "  \"data_mismatches\": " << r.data_mismatches << ",\n"
       << "  \"totals\": {\"writes\": " << totals.writes << ", \"reads\": " << totals.reads
       << ", \"ok\": " << totals.ok << ", \"mac_mismatch\": " << totals.mac_mismatch
       << ", \"replay_detected\": " << totals.replay_detected
       << ", \"rejected\": " << totals.rejected << ", \"bytes\": " << totals.bytes
       << ", \"payload_fold\": " << json_string(hex64(totals.payload_fold)) << "},\n"
       << "  \"per_tenant\": [\n";
    for (std::size_t t = 0; t < r.stats.tenants.size(); ++t) {
        const auto& c = r.stats.tenants[t];
        os << "    {\"tenant\": " << t << ", \"writes\": " << c.writes
           << ", \"reads\": " << c.reads << ", \"ok\": " << c.ok
           << ", \"mac_mismatch\": " << c.mac_mismatch
           << ", \"replay_detected\": " << c.replay_detected
           << ", \"rejected\": " << c.rejected << ", \"bytes\": " << c.bytes
           << ", \"payload_fold\": " << json_string(hex64(c.payload_fold)) << "}"
           << (t + 1 < r.stats.tenants.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

int cmd_loadgen(const Options& o)
{
    serve::Loadgen_config cfg;
    cfg.tenants = o.tenants;
    cfg.clients = o.clients;
    cfg.requests = o.requests;
    cfg.jobs = o.jobs;
    cfg.max_wait_us = o.max_wait_us;
    cfg.seed = o.seed;

    obs_begin(o);
    Live_plane plane;
    plane.start(o, obs::Watch_config{});
    const auto result = serve::run_loadgen(cfg);

    // Timing always goes to stderr: humans see it either way, and the
    // stdout JSON stays byte-diffable across --jobs values.  Percentiles
    // come interpolated from the latency histogram (stats.h discusses the
    // nearest-rank tail bias this avoids).
    const auto& lat = result.stats.latency_us;
    std::cerr << "loadgen: " << result.total_requests << " requests ("
              << cfg.tenants << " tenants x " << cfg.clients << " clients x "
              << cfg.requests << " each) in " << fmt_f(result.wall_seconds, 3) << " s = "
              << fmt_f(result.requests_per_second(), 1)
              << " req/s; latency us p50/p95/p99/p999 = "
              << fmt_f(lat.percentile(50), 1) << "/" << fmt_f(lat.percentile(95), 1) << "/"
              << fmt_f(lat.percentile(99), 1) << "/" << fmt_f(lat.percentile(99.9), 1)
              << "; " << result.stats.batches << " batches\n";
    obs_finish(o);
    plane.finish(o);

    if (o.json) {
        print_loadgen_json(cfg, result, std::cout);
        return 0;
    }

    Ascii_table t({"tenant", "writes", "reads", "ok", "mac_mismatch", "replay", "rejected",
                   "bytes", "payload_fold"});
    for (std::size_t i = 0; i < result.stats.tenants.size(); ++i) {
        const auto& c = result.stats.tenants[i];
        t.add_row({std::to_string(i), std::to_string(c.writes), std::to_string(c.reads),
                   std::to_string(c.ok), std::to_string(c.mac_mismatch),
                   std::to_string(c.replay_detected), std::to_string(c.rejected),
                   std::to_string(c.bytes), hex64(c.payload_fold)});
    }
    t.print(std::cout);
    std::cout << "status failures: " << result.status_failures
              << "  data mismatches: " << result.data_mismatches << "\n";
    return 0;
}

/// Deterministic infer summary: ONLY fields that are byte-identical for a
/// fixed seed at any --jobs and either --mode (CI diffs this).
void print_infer_json(const std::string& model, const std::string& npu,
                      const infer::Infer_config& cfg, const infer::Infer_result& r,
                      std::ostream& os)
{
    const auto counters = [](const infer::Unit_counters& c) {
        std::string out = "{\"writes\": " + std::to_string(c.writes) +
                          ", \"reads\": " + std::to_string(c.reads) +
                          ", \"ok\": " + std::to_string(c.ok) +
                          ", \"mac_mismatch\": " + std::to_string(c.mac_mismatch) +
                          ", \"replay_detected\": " + std::to_string(c.replay_detected) +
                          ", \"bytes\": " + std::to_string(c.bytes) +
                          ", \"payload_fold\": \"" + hex64(c.payload_fold) + "\"}";
        return out;
    };
    const auto totals = r.merged.totals();
    os << "{\n"
       << "  \"model\": " << json_string(model) << ",\n"
       << "  \"npu\": " << json_string(npu) << ",\n"
       << "  \"seed\": " << cfg.seed << ",\n"
       << "  \"tenants\": " << cfg.tenants << ",\n"
       << "  \"inferences_per_tenant\": " << cfg.inferences << ",\n"
       << "  \"unit_bytes\": " << infer::Model_binding::k_unit_bytes << ",\n"
       << "  \"verification_failures\": " << r.verification_failures << ",\n"
       << "  \"data_mismatches\": " << r.data_mismatches << ",\n"
       << "  \"protected_bytes\": " << r.protected_bytes() << ",\n"
       << "  \"load\": " << counters(r.merged.load) << ",\n"
       << "  \"totals\": " << counters(totals) << ",\n"
       << "  \"per_layer\": [\n";
    for (std::size_t i = 0; i < r.merged.layers.size(); ++i) {
        const auto& l = r.merged.layers[i];
        os << "    {\"layer\": " << i << ", \"name\": " << json_string(l.name)
           << ",\n     \"weight\": " << counters(l.weight)
           << ",\n     \"ifmap\": " << counters(l.ifmap)
           << ",\n     \"ofmap\": " << counters(l.ofmap) << "}"
           << (i + 1 < r.merged.layers.size() ? "," : "") << "\n";
    }
    os << "  ],\n  \"per_tenant\": [\n";
    for (std::size_t t = 0; t < r.per_tenant.size(); ++t) {
        os << "    {\"tenant\": " << t
           << ", \"totals\": " << counters(r.per_tenant[t].totals()) << "}"
           << (t + 1 < r.per_tenant.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

int cmd_infer(const Options& o)
{
    infer::Infer_config cfg;
    cfg.tenants = o.tenants_set ? o.tenants : 1;
    cfg.inferences = o.requests_set ? o.requests : 1;
    cfg.jobs = o.jobs;
    cfg.seed = o.seed;
    cfg.max_wait_us = o.max_wait_us;
    if (o.mode == "serve")
        cfg.path = infer::Replay_path::serve;
    else if (o.mode == "session")
        cfg.path = infer::Replay_path::session;
    else
        throw Seda_error("seda_cli: unknown --mode '" + o.mode + "' (serve|session)");

    obs_begin(o);
    Live_plane plane;
    plane.start(o, infer_watch_defaults());
    const auto result =
        infer::run_infer(models::model_by_name(o.model), npu_by_name(o.npu), cfg);

    // Timing to stderr: stdout stays byte-diffable across --jobs/--mode.
    std::cerr << "infer: " << o.model << " on " << o.npu << " via " << o.mode << ", "
              << cfg.tenants << " tenant(s) x " << cfg.inferences << " inference(s) in "
              << fmt_f(result.wall_seconds, 3) << " s = "
              << fmt_f(result.mb_per_second(), 1) << " MB/s protected ("
              << fmt_bytes(result.protected_bytes()) << " through the secure path)\n";
    if (obs::enabled()) {
        // Layer-replay percentiles from the registry: infer has no
        // per-request latency, so the layer span histogram is its tail view.
        const auto snap = obs::Metrics_registry::instance().scrape();
        if (const auto* h = obs::find_histogram(snap, "infer_layer_us"))
            std::cerr << "infer: layer replay us p50/p95/p99/p999 = "
                      << fmt_f(h->hist.percentile(50), 1) << "/"
                      << fmt_f(h->hist.percentile(95), 1) << "/"
                      << fmt_f(h->hist.percentile(99), 1) << "/"
                      << fmt_f(h->hist.percentile(99.9), 1) << " over "
                      << h->hist.count() << " layer replays\n";
    }
    obs_finish(o);
    plane.finish(o);

    if (o.json) {
        print_infer_json(o.model, o.npu, cfg, result, std::cout);
        return 0;
    }

    Ascii_table t({"layer", "name", "writes", "reads", "ok", "mac_mismatch", "replay",
                   "bytes"});
    for (std::size_t i = 0; i < result.merged.layers.size(); ++i) {
        const auto c = result.merged.layers[i].total();
        t.add_row({std::to_string(i), result.merged.layers[i].name,
                   std::to_string(c.writes), std::to_string(c.reads), std::to_string(c.ok),
                   std::to_string(c.mac_mismatch), std::to_string(c.replay_detected),
                   std::to_string(c.bytes)});
    }
    const auto totals = result.merged.totals();
    t.add_row({"-", "total", std::to_string(totals.writes), std::to_string(totals.reads),
               std::to_string(totals.ok), std::to_string(totals.mac_mismatch),
               std::to_string(totals.replay_detected), std::to_string(totals.bytes)});
    t.print(std::cout);
    std::cout << "verification failures: " << result.verification_failures
              << "  data mismatches: " << result.data_mismatches << "\n";
    return 0;
}

/// Deterministic campaign summary: ONLY fields that are byte-identical for
/// a fixed seed at any --jobs (CI diffs this across worker counts).  Wall
/// time and batch shapes go to stderr like every other subcommand.
void print_attack_json(const attack::Campaign_config& cfg, const attack::Campaign_result& r,
                       std::ostream& os)
{
    const auto record = [](const serve::Failure_record& f) {
        return "{\"addr\": " + std::to_string(f.addr) +
               ", \"layer_id\": " + std::to_string(f.layer_id) +
               ", \"fmap_idx\": " + std::to_string(f.fmap_idx) +
               ", \"blk_idx\": " + std::to_string(f.blk_idx) +
               ", \"status\": " + json_string(core::to_string(f.status)) + "}";
    };
    const auto role = [&](u32 t) -> const char* {
        if (t == 0) return "control";
        if (t == r.swap_tenant) return "evicted";
        if (t == r.replacement_tenant) return "replacement";
        if (t == r.infer_victim_tenant) return "infer_victim";
        if (t == r.infer_control_tenant) return "infer_control";
        return t < cfg.tenants ? "victim" : "idle";
    };
    os << "{\n"
       << "  \"seed\": " << cfg.seed << ",\n"
       << "  \"tenants\": " << cfg.tenants << ",\n"
       << "  \"faults\": " << r.plan.faults.size() << ",\n"
       << "  \"clients_per_tenant\": " << cfg.clients << ",\n"
       << "  \"requests_per_client\": " << cfg.requests << ",\n"
       << "  \"hot_swap\": " << (cfg.hot_swap ? "true" : "false") << ",\n"
       << "  \"infer_traffic\": " << (cfg.infer_traffic ? "true" : "false") << ",\n"
       << "  \"model\": " << json_string(cfg.infer_traffic ? cfg.model : "") << ",\n"
       << "  \"injected\": {";
    for (std::size_t k = 0; k < attack::k_fault_kind_count; ++k) {
        const auto kind = static_cast<attack::Fault_kind>(k);
        os << (k ? ", " : "") << json_string(attack::to_string(kind)) << ": "
           << r.plan.count(kind);
    }
    os << "},\n"
       << "  \"faults_injected\": " << r.faults_injected << ",\n"
       << "  \"expected\": {\"mac_mismatch\": " << r.expected_mac_mismatch
       << ", \"replay_detected\": " << r.expected_replay_detected << "},\n"
       << "  \"detected\": {\"mac_mismatch\": " << r.detected_mac_mismatch
       << ", \"replay_detected\": " << r.detected_replay_detected << "},\n"
       << "  \"attribution_exact\": " << (r.attribution_exact ? "true" : "false") << ",\n"
       << "  \"false_positives\": " << r.false_positives << ",\n"
       << "  \"probe_surprises\": " << r.probe_surprises << ",\n"
       << "  \"background_failures\": " << r.background_failures << ",\n"
       << "  \"seca\": {\"probes\": " << r.seca_probes
       << ", \"recoveries\": " << r.seca_recoveries << "},\n"
       << "  \"hot_swap_result\": {\"evicted_rejects\": " << r.evicted_rejects
       << ", \"expected_evicted_rejects\": " << r.expected_evicted_rejects << "},\n"
       << "  \"infer\": {\"expected_failures\": " << r.infer_expected_failures
       << ", \"detected_failures\": " << r.infer_detected_failures << "},\n"
       << "  \"control\": {\"checked\": " << (r.control_checked ? "true" : "false")
       << ", \"identical\": " << (r.control_identical ? "true" : "false") << "},\n"
       << "  \"clean\": " << (r.clean() ? "true" : "false") << ",\n"
       << "  \"per_tenant\": [\n";
    for (std::size_t t = 0; t < r.stats.tenants.size(); ++t) {
        const auto& c = r.stats.tenants[t];
        os << "    {\"tenant\": " << t << ", \"role\": "
           << json_string(role(static_cast<u32>(t))) << ", \"writes\": " << c.writes
           << ", \"reads\": " << c.reads << ", \"ok\": " << c.ok
           << ", \"mac_mismatch\": " << c.mac_mismatch
           << ", \"replay_detected\": " << c.replay_detected
           << ", \"rejected\": " << c.rejected << ",\n     \"detections\": [";
        for (std::size_t i = 0; i < c.failures.size(); ++i)
            os << (i ? ",\n       " : "") << record(c.failures[i]);
        os << "]}" << (t + 1 < r.stats.tenants.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

int cmd_attack(const Options& o)
{
    attack::Campaign_config cfg;
    cfg.seed = o.seed;
    cfg.tenants = static_cast<u32>(o.tenants_set ? o.tenants : 3);
    cfg.faults = o.faults;
    cfg.clients = o.clients;
    cfg.requests = o.requests_set ? o.requests : 16;
    cfg.jobs = o.jobs;
    cfg.max_wait_us = o.max_wait_us;
    cfg.hot_swap = true;
    cfg.infer_traffic = true;
    cfg.model = o.model_set ? o.model : "lenet";
    cfg.control_run = true;

    obs_begin(o);
    Live_plane plane;
    plane.start(o, obs::Watch_config{});
    const auto r = attack::run_campaign(cfg);

    // Timing to stderr: stdout stays byte-diffable across --jobs.
    std::cerr << "attack: seed " << cfg.seed << ", " << r.plan.faults.size()
              << " faults over " << (cfg.tenants - 1) << " victim tenant(s), "
              << cfg.clients << " background client(s)/tenant x " << cfg.requests
              << " requests, hot swap + " << cfg.model << " inference, in "
              << fmt_f(r.wall_seconds, 3) << " s; attribution "
              << (r.attribution_exact ? "exact" : "BROKEN") << ", "
              << r.false_positives << " false positive(s), SECA recovered "
              << r.seca_recoveries << "/" << r.seca_probes << "\n";
    obs_finish(o);
    plane.finish(o);

    if (o.json) {
        print_attack_json(cfg, r, std::cout);
        return r.clean() ? 0 : 1;
    }

    Ascii_table t({"tenant", "writes", "reads", "ok", "mac_mismatch", "replay",
                   "detections"});
    for (std::size_t i = 0; i < r.stats.tenants.size(); ++i) {
        const auto& c = r.stats.tenants[i];
        t.add_row({std::to_string(i), std::to_string(c.writes), std::to_string(c.reads),
                   std::to_string(c.ok), std::to_string(c.mac_mismatch),
                   std::to_string(c.replay_detected), std::to_string(c.failures.size())});
    }
    t.print(std::cout);
    std::cout << "injected " << r.plan.faults.size() << " fault(s), detected "
              << (r.detected_mac_mismatch + r.detected_replay_detected)
              << " (expected " << (r.expected_mac_mismatch + r.expected_replay_detected)
              << "); attribution " << (r.attribution_exact ? "exact" : "BROKEN")
              << ", false positives " << r.false_positives << ", control "
              << (r.control_identical ? "identical" : "PERTURBED") << ", clean "
              << (r.clean() ? "yes" : "NO") << "\n";
    return r.clean() ? 0 : 1;
}

/// One row of the `backends` report: a backend kind with its availability
/// and whether the process-wide default resolved to it.
struct Backend_row {
    std::string name;
    bool available;
    bool selected;
};

template <typename Kind>
std::vector<Backend_row> backend_rows(std::span<const Kind> kinds, bool (*available)(Kind),
                                      Kind selected)
{
    std::vector<Backend_row> rows;
    for (const Kind kind : kinds)
        rows.push_back({std::string(to_string(kind)), available(kind), kind == selected});
    return rows;
}

int cmd_backends(const Options& o)
{
    const auto features = crypto::cpu_crypto_features();
    const char* aes_env = std::getenv("SEDA_AES_BACKEND");
    const char* sha_env = std::getenv("SEDA_SHA_BACKEND");
    // Resolving the defaults here also emits the startup warning (once) if
    // an env override names an unknown or unavailable backend.
    const auto aes_rows = backend_rows<crypto::Aes_backend_kind>(
        crypto::all_backend_kinds(), crypto::backend_available,
        crypto::default_backend_kind());
    const auto sha_rows = backend_rows<crypto::Sha256_backend_kind>(
        crypto::all_sha256_backend_kinds(), crypto::sha256_backend_available,
        crypto::default_sha256_backend_kind());

    if (o.json) {
        const auto row_list = [](const std::vector<Backend_row>& rows) {
            std::string out;
            for (std::size_t i = 0; i < rows.size(); ++i)
                out += std::string(i ? ", " : "") + "{\"name\": " + json_string(rows[i].name) +
                       ", \"available\": " + (rows[i].available ? "true" : "false") +
                       ", \"selected\": " + (rows[i].selected ? "true" : "false") + "}";
            return out;
        };
        std::cout << "{\n  \"cpu\": {\"aes\": " << (features.aes ? "true" : "false")
                  << ", \"vaes\": " << (features.vaes ? "true" : "false")
                  << ", \"sha_ni\": " << (features.sha_ni ? "true" : "false")
                  << ", \"avx2\": " << (features.avx2 ? "true" : "false") << "},\n"
                  << "  \"env\": {\"SEDA_AES_BACKEND\": "
                  << (aes_env ? json_string(aes_env) : "null")
                  << ", \"SEDA_SHA_BACKEND\": " << (sha_env ? json_string(sha_env) : "null")
                  << "},\n"
                  << "  \"aes\": {\"selected\": "
                  << json_string(to_string(crypto::default_backend_kind()))
                  << ", \"backends\": [" << row_list(aes_rows) << "]},\n"
                  << "  \"sha256\": {\"selected\": "
                  << json_string(to_string(crypto::default_sha256_backend_kind()))
                  << ", \"backends\": [" << row_list(sha_rows) << "]}\n"
                  << "}\n";
        return 0;
    }

    const auto flag = [](bool b) { return b ? "yes" : "no"; };
    std::cout << "cpu features: aes=" << flag(features.aes) << " vaes=" << flag(features.vaes)
              << " sha_ni=" << flag(features.sha_ni) << " avx2=" << flag(features.avx2)
              << "\n"
              << "env overrides: SEDA_AES_BACKEND=" << (aes_env ? aes_env : "(unset)")
              << " SEDA_SHA_BACKEND=" << (sha_env ? sha_env : "(unset)") << "\n";
    Ascii_table t({"interface", "backend", "available", "selected"});
    for (const auto& r : aes_rows)
        t.add_row({"aes", r.name, flag(r.available), r.selected ? "*" : ""});
    for (const auto& r : sha_rows)
        t.add_row({"sha256", r.name, flag(r.available), r.selected ? "*" : ""});
    t.print(std::cout);
    return 0;
}

// ---------------------------------------------------------- command table ---

struct Command {
    std::string_view name;
    int (*handler)(const Options&);
    std::string_view help;  ///< one usage line
};

constexpr Command k_commands[] = {
    {"list", cmd_list, "workloads, NPUs and protection schemes"},
    {"run", cmd_run, "one (model, npu, scheme) combination"},
    {"report", cmd_report, "SCALE-Sim-style compute + memory reports"},
    {"suite", cmd_suite, "the full Fig. 5/6 sweep on one NPU"},
    {"loadgen", cmd_loadgen, "closed-loop multi-tenant serving load"},
    {"infer", cmd_infer, "replay DNN layer traces as protected traffic"},
    {"attack", cmd_attack, "seeded fault-injection campaign against the live server"},
    {"backends", cmd_backends, "detected CPU crypto features and backend selection"},
};

int usage(std::ostream& os)
{
    os << "usage: seda_cli <command> [options]\n"
          "\n"
          "commands:\n";
    for (const Command& c : k_commands)
        os << "  " << c.name
           << std::string(c.name.size() < 26 ? 26 - c.name.size() : 1, ' ') << c.help
           << "\n";
    os << "  help                      this message\n"
          "\n"
          "options:\n"
          "  --model M                 workload short or full name (run, report, infer;\n"
          "                            attack's inference traffic, default lenet)\n"
          "  --npu server|edge         NPU config (default server)\n"
          "  --scheme S                protection scheme (run; default seda)\n"
          "  --jobs N                  worker threads, 0 = hardware (run, suite,\n"
          "                            loadgen, infer, attack)\n"
          "  --csv                     CSV output (run, suite)\n"
          "  --json                    JSON output (suite, loadgen, infer, attack,\n"
          "                            backends)\n"
          "  --tenants N               tenants to serve (loadgen 2; infer 1; attack 3)\n"
          "  --clients N               closed-loop clients per tenant (loadgen 4;\n"
          "                            attack's background load, same default)\n"
          "  --requests N              requests per client (loadgen 64, attack 16) /\n"
          "                            inferences per tenant (infer 1)\n"
          "  --faults N                campaign plan size (attack; default 8)\n"
          "  --mode serve|session      infer replay path (default serve)\n"
          "  --max-wait-us N           batching linger window (loadgen, infer, attack;\n"
          "                            default 0)\n"
          "  --seed S                  determinism seed (loadgen, infer, attack;\n"
          "                            default 24282)\n"
          "  --stages                  per-stage latency table on stderr (loadgen,\n"
          "                            infer, attack)\n"
          "  --stats-out FILE          Prometheus text scrape (loadgen, infer, attack)\n"
          "  --stats-json FILE         JSON metrics snapshot (loadgen, infer, attack)\n"
          "  --trace-out FILE          chrome://tracing span dump (loadgen, infer,\n"
          "                            attack)\n"
          "  --flight-out FILE         flight-recorder dump (loadgen, infer, attack);\n"
          "                            also auto-dumps on the first detection event\n"
          "  --listen PORT             serve live telemetry on 127.0.0.1:PORT while the\n"
          "                            run is live: /metrics /metrics.json /healthz\n"
          "                            /flight (loadgen, infer, attack; 0 = ephemeral,\n"
          "                            port printed on stderr)\n"
          "  --listen-linger MS        keep the exporter up MS ms after the run so a\n"
          "                            scraper can take a final pass\n"
          "  --watch MS                live interval table on stderr every MS ms:\n"
          "                            req/s, p50/p99/p999, per-tenant error rates\n"
          "  --slo SPEC                latency objective, repeatable; SPEC is\n"
          "                            FAMILY:pPCT<THRESH[us|ms|s]:TARGET, e.g.\n"
          "                            serve_tenant_latency_us:p99<500us:0.999\n"
          "  --slo-out FILE            SLO burn-rate report as JSON (default: stderr\n"
          "                            summary; never stdout)\n"
          "\n"
          "environment:\n"
          "  SEDA_OBS=0                disable stage metrics/trace collection at runtime\n"
          "  SEDA_OBS_SAMPLE=N         time every Nth span per thread (default 32; 1 = all)\n"
          "  SEDA_OBS_LISTEN=PORT      arm the telemetry endpoint like --listen PORT\n"
          "  (observability output never reaches stdout --json; docs/OBSERVABILITY.md)\n"
          "  SEDA_AES_BACKEND=scalar|ttable|aesni   process-wide AES round impl\n"
          "  SEDA_SHA_BACKEND=scalar|fast|shani     process-wide SHA-256 compression\n"
          "  (read once at startup; hardware kinds need CPU support -- run\n"
          "  `seda_cli backends` to see what this host resolves; docs/BACKENDS.md)\n";
    return os.rdbuf() == std::cout.rdbuf() ? 0 : 2;
}

Options parse(int argc, char** argv)
{
    Options o;
    if (argc > 1) o.command = argv[1];
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            require(i + 1 < argc, "seda_cli: missing value for " + arg);
            return argv[++i];
        };
        if (arg == "--model") {
            o.model = next();
            o.model_set = true;
        } else if (arg == "--npu")
            o.npu = next();
        else if (arg == "--scheme")
            o.scheme = next();
        else if (arg == "--jobs")
            parse_int(arg, next(), o.jobs);
        else if (arg == "--tenants") {
            parse_int(arg, next(), o.tenants);
            o.tenants_set = true;
        } else if (arg == "--clients")
            parse_int(arg, next(), o.clients);
        else if (arg == "--requests") {
            parse_int(arg, next(), o.requests);
            o.requests_set = true;
        } else if (arg == "--faults")
            parse_int(arg, next(), o.faults);
        else if (arg == "--mode")
            o.mode = next();
        else if (arg == "--max-wait-us")
            parse_int(arg, next(), o.max_wait_us);
        else if (arg == "--seed")
            parse_int(arg, next(), o.seed);
        else if (arg == "--stages")
            o.stages = true;
        else if (arg == "--stats-out")
            o.stats_out = next();
        else if (arg == "--stats-json")
            o.stats_json = next();
        else if (arg == "--trace-out")
            o.trace_out = next();
        else if (arg == "--flight-out")
            o.flight_out = next();
        else if (arg == "--listen") {
            parse_int(arg, next(), o.listen);
            require(o.listen <= 65535, "seda_cli: --listen expects a port (0-65535)");
            o.listen_set = true;
        } else if (arg == "--listen-linger")
            parse_int(arg, next(), o.listen_linger_ms);
        else if (arg == "--watch") {
            parse_int(arg, next(), o.watch_ms);
            require(o.watch_ms >= 1, "seda_cli: --watch expects an interval in ms (>= 1)");
        } else if (arg == "--slo")
            o.slos.push_back(next());
        else if (arg == "--slo-out")
            o.slo_out = next();
        else if (arg == "--csv")
            o.csv = true;
        else if (arg == "--json")
            o.json = true;
        else
            throw Seda_error("seda_cli: unknown argument '" + arg + "'");
    }
    return o;
}

}  // namespace

int main(int argc, char** argv)
{
    try {
        const Options o = parse(argc, argv);
        for (const Command& c : k_commands)
            if (o.command == c.name) return c.handler(o);
        if (o.command == "help" || o.command == "--help" || o.command == "-h")
            return usage(std::cout);
        if (!o.command.empty())
            std::cerr << "seda_cli: unknown command '" << o.command << "'\n";
        return usage(std::cerr);
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
