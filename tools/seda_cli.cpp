// seda_cli: command-line front end for the simulation pipeline.
//
//   seda_cli list
//       List workloads, NPUs and protection schemes.
//   seda_cli run [--model M] [--npu server|edge] [--scheme S] [--jobs N] [--csv]
//       Run one combination; print run stats (or layer CSV with --csv).
//   seda_cli report [--model M] [--npu server|edge]
//       Emit the SCALE-Sim-style compute + memory reports.
//   seda_cli suite [--npu server|edge] [--jobs N] [--csv|--json]
//       The full Fig. 5/6 sweep: all workloads x all five schemes.
//
// --jobs N fans the work across a runtime::Thread_pool of N workers (0 =
// one per hardware thread); output is byte-identical at every worker count.
// --json emits the suite as machine-readable JSON so bench trajectories can
// be captured as BENCH_*.json files.  The SEDA_AES_BACKEND /
// SEDA_SHA_BACKEND environment variables pin the process-wide crypto
// backends (docs/BACKENDS.md); simulator output is identical under every
// backend, which is exactly what makes them a cross-validation knob.
#include <charconv>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "seda.h"

using namespace seda;

namespace {

struct Options {
    std::string command;
    std::string model = "resnet18";
    std::string npu = "server";
    std::string scheme = "seda";
    std::size_t jobs = 1;
    bool csv = false;
    bool json = false;
};

int usage(std::ostream& os)
{
    os << "usage: seda_cli <command> [options]\n"
          "\n"
          "commands:\n"
          "  list                      workloads, NPUs and protection schemes\n"
          "  run                       one (model, npu, scheme) combination\n"
          "  report                    SCALE-Sim-style compute + memory reports\n"
          "  suite                     the full Fig. 5/6 sweep on one NPU\n"
          "  help                      this message\n"
          "\n"
          "options:\n"
          "  --model M                 workload short or full name (run, report)\n"
          "  --npu server|edge         NPU config (default server)\n"
          "  --scheme S                protection scheme (run; default seda)\n"
          "  --jobs N                  worker threads, 0 = hardware (run, suite)\n"
          "  --csv                     CSV output (run, suite)\n"
          "  --json                    JSON output (suite)\n"
          "\n"
          "environment:\n"
          "  SEDA_AES_BACKEND=scalar|ttable   process-wide AES round impl\n"
          "  SEDA_SHA_BACKEND=scalar|fast     process-wide SHA-256 compression\n"
          "  (both read once at startup; see docs/BACKENDS.md)\n";
    return os.rdbuf() == std::cout.rdbuf() ? 0 : 2;
}

Options parse(int argc, char** argv)
{
    Options o;
    if (argc > 1) o.command = argv[1];
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            require(i + 1 < argc, "seda_cli: missing value for " + arg);
            return argv[++i];
        };
        if (arg == "--model")
            o.model = next();
        else if (arg == "--npu")
            o.npu = next();
        else if (arg == "--scheme")
            o.scheme = next();
        else if (arg == "--jobs") {
            const std::string v = next();
            // from_chars with a full-consumption check: stoul would accept
            // "-1" (wrapping) and "4x" (silently truncating).
            const auto [end, ec] = std::from_chars(v.data(), v.data() + v.size(), o.jobs);
            require(ec == std::errc() && end == v.data() + v.size(),
                    "seda_cli: --jobs expects a non-negative integer, got '" + v + "'");
        } else if (arg == "--csv")
            o.csv = true;
        else if (arg == "--json")
            o.json = true;
        else
            throw Seda_error("seda_cli: unknown argument '" + arg + "'");
    }
    return o;
}

accel::Npu_config npu_by_name(const std::string& name)
{
    if (name == "server") return accel::Npu_config::server();
    if (name == "edge") return accel::Npu_config::edge();
    throw Seda_error("seda_cli: unknown NPU '" + name + "' (server|edge)");
}

int cmd_list()
{
    std::cout << "workloads:";
    for (const auto& e : models::all_models())
        std::cout << " " << e.short_name << "(" << e.full_name << ")";
    std::cout << "\nnpus: server (TPU-v1-class)  edge (Exynos-990-class)\n"
              << "schemes: baseline sgx-64 sgx-512 mgx-64 mgx-512 securator seda\n";
    return 0;
}

int cmd_run(const Options& o)
{
    const auto npu = npu_by_name(o.npu);
    const auto sim = accel::simulate_model(models::model_by_name(o.model), npu);
    auto scheme = core::make_scheme(o.scheme);

    if (o.csv) {
        // The CSV report is a single scheme pass (no baseline to overlap
        // with), so there is nothing for extra workers to do.
        if (o.jobs != 1)
            std::cerr << "seda_cli: note: --jobs has no effect on run --csv "
                         "(single pass)\n";
        const auto stats = core::run_protected(sim, *scheme);
        Ascii_table t({"layer", "compute_cycles", "mem_cycles", "layer_cycles",
                       "traffic_bytes", "verify_events"});
        for (const auto& l : stats.layers)
            t.add_row({l.layer_name, std::to_string(l.compute_cycles),
                       std::to_string(l.mem_cycles), std::to_string(l.layer_cycles),
                       std::to_string(l.traffic_bytes), std::to_string(l.verify_events)});
        t.print_csv(std::cout);
        return 0;
    }

    // The scheme and baseline runs are independent; with --jobs > 1 they
    // overlap on the pool.
    core::Run_stats stats;
    core::Run_stats base_stats;
    if (o.jobs == 1) {
        stats = core::run_protected(sim, *scheme);
        protect::Baseline_scheme base;
        base_stats = core::run_protected(sim, base);
    } else {
        runtime::Thread_pool pool(o.jobs);
        auto scheme_run = pool.submit([&] { return core::run_protected(sim, *scheme); });
        auto base_run = pool.submit([&] {
            protect::Baseline_scheme base;
            return core::run_protected(sim, base);
        });
        stats = scheme_run.get();
        base_stats = base_run.get();
    }

    std::cout << o.model << " on " << npu.name << " under " << stats.scheme_name << ":\n"
              << "  cycles:  " << stats.total_cycles << " ("
              << fmt_f(stats.seconds(npu.freq_ghz) * 1e3, 3) << " ms)\n"
              << "  traffic: " << fmt_bytes(stats.traffic_bytes) << "\n"
              << "  events:  " << stats.verify_events << " verifications, "
              << stats.mac_misses << " MAC-line stalls\n"
              << "  vs baseline: slowdown "
              << fmt_pct(static_cast<double>(stats.total_cycles) /
                             static_cast<double>(base_stats.total_cycles) -
                         1.0)
              << ", traffic overhead "
              << fmt_pct(static_cast<double>(stats.traffic_bytes) /
                             static_cast<double>(base_stats.traffic_bytes) -
                         1.0)
              << "\n";
    return 0;
}

int cmd_report(const Options& o)
{
    const auto sim =
        accel::simulate_model(models::model_by_name(o.model), npu_by_name(o.npu));
    std::cout << accel::reports_to_string(sim);
    return 0;
}

/// Shortest round-trippable representation, locale-independent ('.' radix
/// is guaranteed for %g with the C locale snprintf uses on our platforms).
std::string json_double(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

/// Minimal JSON string escaping: today's npu/scheme/model names are
/// identifier-like, but nothing in their contracts forbids a quote.
std::string json_string(std::string_view s)
{
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"' || c == '\\') out += '\\';
        if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
            continue;
        }
        out += c;
    }
    out += '"';
    return out;
}

void print_suite_json(const core::Suite_result& suite, std::ostream& os)
{
    os << "{\n  \"npu\": " << json_string(suite.npu_name) << ",\n  \"schemes\": [\n";
    for (std::size_t s = 0; s < suite.series.size(); ++s) {
        const auto& series = suite.series[s];
        os << "    {\n      \"scheme\": " << json_string(series.scheme) << ",\n"
           << "      \"avg_norm_traffic\": " << json_double(series.avg_norm_traffic())
           << ",\n"
           << "      \"avg_norm_perf\": " << json_double(series.avg_norm_perf()) << ",\n"
           << "      \"points\": [\n";
        for (std::size_t p = 0; p < series.points.size(); ++p) {
            const auto& pt = series.points[p];
            os << "        {\"model\": " << json_string(pt.model) << ", \"norm_traffic\": "
               << json_double(pt.norm_traffic) << ", \"norm_perf\": "
               << json_double(pt.norm_perf) << ", \"cycles\": " << pt.stats.total_cycles
               << ", \"traffic_bytes\": " << pt.stats.traffic_bytes
               << ", \"baseline_cycles\": " << pt.baseline.total_cycles
               << ", \"baseline_traffic_bytes\": " << pt.baseline.traffic_bytes << "}"
               << (p + 1 < series.points.size() ? "," : "") << "\n";
        }
        os << "      ]\n    }" << (s + 1 < suite.series.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

int cmd_suite(const Options& o)
{
    require(!(o.csv && o.json), "seda_cli: --csv and --json are mutually exclusive");
    const auto suite =
        runtime::run_suite_parallel(npu_by_name(o.npu), core::paper_schemes(), o.jobs);

    if (o.json) {
        print_suite_json(suite, std::cout);
        return 0;
    }

    std::vector<std::string> header = {"scheme", "metric"};
    for (const auto& p : suite.series.front().points) header.push_back(std::string(p.model));
    header.push_back("avg");
    Ascii_table t(header);
    for (const auto& s : suite.series) {
        std::vector<std::string> traffic = {s.scheme, "norm_traffic"};
        std::vector<std::string> perf = {s.scheme, "norm_perf"};
        for (const auto& p : s.points) {
            traffic.push_back(fmt_f(p.norm_traffic, 4));
            perf.push_back(fmt_f(p.norm_perf, 4));
        }
        traffic.push_back(fmt_f(s.avg_norm_traffic(), 4));
        perf.push_back(fmt_f(s.avg_norm_perf(), 4));
        t.add_row(std::move(traffic));
        t.add_row(std::move(perf));
    }
    if (o.csv)
        t.print_csv(std::cout);
    else
        t.print(std::cout);
    return 0;
}

}  // namespace

int main(int argc, char** argv)
{
    try {
        const Options o = parse(argc, argv);
        if (o.command == "list") return cmd_list();
        if (o.command == "run") return cmd_run(o);
        if (o.command == "report") return cmd_report(o);
        if (o.command == "suite") return cmd_suite(o);
        if (o.command == "help" || o.command == "--help" || o.command == "-h")
            return usage(std::cout);
        if (!o.command.empty())
            std::cerr << "seda_cli: unknown command '" << o.command << "'\n";
        return usage(std::cerr);
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
