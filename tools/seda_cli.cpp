// seda_cli: command-line front end for the simulation pipeline.
//
//   seda_cli list
//       List workloads, NPUs and protection schemes.
//   seda_cli run [--model M] [--npu server|edge] [--scheme S] [--csv]
//       Run one combination; print run stats (or layer CSV with --csv).
//   seda_cli report [--model M] [--npu server|edge]
//       Emit the SCALE-Sim-style compute + memory reports.
//   seda_cli suite [--npu server|edge] [--csv]
//       The full Fig. 5/6 sweep: all workloads x all five schemes.
#include <cstring>
#include <iostream>
#include <string>

#include "seda.h"

using namespace seda;

namespace {

struct Options {
    std::string command = "list";
    std::string model = "resnet18";
    std::string npu = "server";
    std::string scheme = "seda";
    bool csv = false;
};

Options parse(int argc, char** argv)
{
    Options o;
    if (argc > 1) o.command = argv[1];
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            require(i + 1 < argc, "seda_cli: missing value for " + arg);
            return argv[++i];
        };
        if (arg == "--model")
            o.model = next();
        else if (arg == "--npu")
            o.npu = next();
        else if (arg == "--scheme")
            o.scheme = next();
        else if (arg == "--csv")
            o.csv = true;
        else
            throw Seda_error("seda_cli: unknown argument '" + arg + "'");
    }
    return o;
}

accel::Npu_config npu_by_name(const std::string& name)
{
    if (name == "server") return accel::Npu_config::server();
    if (name == "edge") return accel::Npu_config::edge();
    throw Seda_error("seda_cli: unknown NPU '" + name + "' (server|edge)");
}

int cmd_list()
{
    std::cout << "workloads:";
    for (const auto& e : models::all_models())
        std::cout << " " << e.short_name << "(" << e.full_name << ")";
    std::cout << "\nnpus: server (TPU-v1-class)  edge (Exynos-990-class)\n"
              << "schemes: baseline sgx-64 sgx-512 mgx-64 mgx-512 securator seda\n";
    return 0;
}

int cmd_run(const Options& o)
{
    const auto npu = npu_by_name(o.npu);
    const auto sim = accel::simulate_model(models::model_by_name(o.model), npu);
    auto scheme = core::make_scheme(o.scheme);
    const auto stats = core::run_protected(sim, *scheme);

    if (o.csv) {
        Ascii_table t({"layer", "compute_cycles", "mem_cycles", "layer_cycles",
                       "traffic_bytes", "verify_events"});
        for (const auto& l : stats.layers)
            t.add_row({l.layer_name, std::to_string(l.compute_cycles),
                       std::to_string(l.mem_cycles), std::to_string(l.layer_cycles),
                       std::to_string(l.traffic_bytes), std::to_string(l.verify_events)});
        t.print_csv(std::cout);
        return 0;
    }

    protect::Baseline_scheme base;
    const auto base_stats = core::run_protected(sim, base);
    std::cout << o.model << " on " << npu.name << " under " << stats.scheme_name << ":\n"
              << "  cycles:  " << stats.total_cycles << " ("
              << fmt_f(stats.seconds(npu.freq_ghz) * 1e3, 3) << " ms)\n"
              << "  traffic: " << fmt_bytes(stats.traffic_bytes) << "\n"
              << "  events:  " << stats.verify_events << " verifications, "
              << stats.mac_misses << " MAC-line stalls\n"
              << "  vs baseline: slowdown "
              << fmt_pct(static_cast<double>(stats.total_cycles) /
                             static_cast<double>(base_stats.total_cycles) -
                         1.0)
              << ", traffic overhead "
              << fmt_pct(static_cast<double>(stats.traffic_bytes) /
                             static_cast<double>(base_stats.traffic_bytes) -
                         1.0)
              << "\n";
    return 0;
}

int cmd_report(const Options& o)
{
    const auto sim =
        accel::simulate_model(models::model_by_name(o.model), npu_by_name(o.npu));
    std::cout << accel::reports_to_string(sim);
    return 0;
}

int cmd_suite(const Options& o)
{
    const auto suite = core::run_suite(npu_by_name(o.npu), core::paper_schemes());
    std::vector<std::string> header = {"scheme", "metric"};
    for (const auto& p : suite.series.front().points) header.push_back(std::string(p.model));
    header.push_back("avg");
    Ascii_table t(header);
    for (const auto& s : suite.series) {
        std::vector<std::string> traffic = {s.scheme, "norm_traffic"};
        std::vector<std::string> perf = {s.scheme, "norm_perf"};
        for (const auto& p : s.points) {
            traffic.push_back(fmt_f(p.norm_traffic, 4));
            perf.push_back(fmt_f(p.norm_perf, 4));
        }
        traffic.push_back(fmt_f(s.avg_norm_traffic(), 4));
        perf.push_back(fmt_f(s.avg_norm_perf(), 4));
        t.add_row(std::move(traffic));
        t.add_row(std::move(perf));
    }
    if (o.csv)
        t.print_csv(std::cout);
    else
        t.print(std::cout);
    return 0;
}

}  // namespace

int main(int argc, char** argv)
{
    try {
        const Options o = parse(argc, argv);
        if (o.command == "list") return cmd_list();
        if (o.command == "run") return cmd_run(o);
        if (o.command == "report") return cmd_report(o);
        if (o.command == "suite") return cmd_suite(o);
        std::cerr << "usage: seda_cli {list|run|report|suite} [--model M] "
                     "[--npu server|edge] [--scheme S] [--csv]\n";
        return 2;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
