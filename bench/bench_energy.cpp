// Energy-overhead comparison (extension beyond the paper's evaluation).
//
// Protection schemes differ mainly in the off-chip bytes they add; at
// ~20 pJ/B those bytes dominate the security energy bill.  This bench
// reports, per scheme, the energy overhead vs the unprotected baseline and
// its breakdown, alongside TNPU (tree-less) which the paper cites but does
// not plot -- it lands between SGX and MGX exactly as its design predicts.
#include <iostream>

#include "common/table.h"
#include "core/energy.h"
#include "core/experiment.h"
#include "models/zoo.h"

using namespace seda;

int main()
{
    const auto npu = accel::Npu_config::server();
    constexpr const char* k_models[] = {"rest", "mob", "trf"};
    constexpr const char* k_schemes[] = {"sgx-64", "tnpu-64", "mgx-64", "securator",
                                         "seda"};

    std::cout << "Energy overhead vs unprotected baseline (server NPU)\n\n";
    Ascii_table table({"model", "scheme", "dram_uJ", "crypto_uJ", "hash_uJ",
                       "energy_overhead"});
    for (const char* model : k_models) {
        const auto sim = accel::simulate_model(models::model_by_name(model), npu);
        protect::Baseline_scheme base;
        const auto base_stats = core::run_protected(sim, base);
        const auto base_energy = core::estimate_energy(base_stats, sim);

        for (const char* id : k_schemes) {
            auto scheme = core::make_scheme(id);
            const auto stats = core::run_protected(sim, *scheme);
            const auto energy = core::estimate_energy(stats, sim);
            table.add_row({model, id, fmt_f(energy.dram_uj, 1), fmt_f(energy.crypto_uj, 1),
                           fmt_f(energy.hash_uj, 1),
                           fmt_pct(energy.total_uj() / base_energy.total_uj() - 1.0)});
        }
    }
    table.print(std::cout);
    std::cout << "\nSeDA pays only the unavoidable crypto datapath energy; the unit-MAC\n"
                 "schemes add the off-chip metadata bytes on top (~20 pJ per byte).\n";
    return 0;
}
