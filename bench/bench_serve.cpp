// Serving-layer benches (google-benchmark): what batching buys over
// serving one request at a time, and what the full closed loop sustains.
//
//   bm_serve_naive             one-request-at-a-time through the SAME front
//                              end (Batch_scheduler windows of 1): every
//                              request pays its own staging, a lone HMAC,
//                              and the per-dispatch bookkeeping -- the
//                              baseline a batching-free server sustains
//   bm_serve_batched/J         the same stream in max_batch windows:
//                              per-tenant conflict-aware coalescing into
//                              Secure_session's bulk path (bulk CTR pads +
//                              multi-buffer HMAC waves), J workers
//   bm_serve_loadgen/J         the full closed loop end to end (server +
//                              admission queue + client threads), J workers
//
// The acceptance bar for the serving layer is bm_serve_batched/1 >=
// 1.5x bm_serve_naive on items_per_second: the win must come from feeding
// the PR 1-3 bulk machinery coalesced batches, not from extra cores.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "runtime/thread_pool.h"
#include "serve/batch_scheduler.h"
#include "serve/loadgen.h"
#include "serve/tenant.h"

using namespace seda;

namespace {

constexpr Bytes k_unit_bytes = 64;
constexpr std::size_t k_tenants = 4;
constexpr std::size_t k_requests = 4096;
constexpr std::size_t k_units_per_tenant = 256;
constexpr std::size_t k_max_batch = 256;

std::vector<u8> make_key(u64 seed)
{
    std::vector<u8> key(16);
    Rng rng(seed);
    for (auto& b : key) b = rng.next_byte();
    return key;
}

/// The benchmark stream: deterministic mixed write/read traffic across all
/// tenants, every read hitting a previously written slot.  Requests carry
/// no promise and no timestamp, so both paths replay them repeatedly.
std::vector<serve::Request> make_stream()
{
    Rng rng(0xBE7C);
    std::vector<serve::Request> stream;
    stream.reserve(k_requests);
    std::vector<std::vector<bool>> written(k_tenants,
                                           std::vector<bool>(k_units_per_tenant, false));
    for (std::size_t i = 0; i < k_requests; ++i) {
        serve::Request r;
        r.tenant_id = static_cast<u32>(rng.next_below(k_tenants));
        const auto slot = static_cast<std::size_t>(rng.next_below(k_units_per_tenant));
        r.addr = slot * k_unit_bytes;
        r.blk_idx = static_cast<u32>(slot);
        const bool write = !written[r.tenant_id][slot] || rng.next_unit() < 0.5;
        r.op = write ? serve::Op::write : serve::Op::read;
        if (write) {
            written[r.tenant_id][slot] = true;
            r.payload.resize(k_unit_bytes);
            for (auto& b : r.payload) b = rng.next_byte();
        }
        stream.push_back(std::move(r));
    }
    return stream;
}

/// Replays the stream through the front end in windows of `window`
/// requests; window 1 IS the naive one-request-at-a-time server.
void serve_stream(std::span<serve::Request> stream, serve::Batch_scheduler& scheduler,
                  std::size_t window)
{
    serve::Serve_stats stats;
    for (std::size_t begin = 0; begin < stream.size(); begin += window) {
        const std::size_t count = std::min(window, stream.size() - begin);
        scheduler.dispatch(stream.subspan(begin, count), stats);
    }
    benchmark::DoNotOptimize(stats);
}

void bm_serve_naive(benchmark::State& state)
{
    runtime::Thread_pool pool(1);
    serve::Tenant_table tenants;
    for (std::size_t t = 0; t < k_tenants; ++t)
        tenants.add(make_key(1), make_key(2),
                    core::Secure_mem_config{k_unit_bytes, true}, pool);
    serve::Batch_scheduler scheduler(tenants);
    auto stream = make_stream();

    for (auto _ : state) serve_stream(stream, scheduler, 1);
    state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                            static_cast<i64>(k_requests));
}
BENCHMARK(bm_serve_naive)->Unit(benchmark::kMillisecond)->UseRealTime();

void bm_serve_batched(benchmark::State& state)
{
    const auto workers = static_cast<std::size_t>(state.range(0));
    runtime::Thread_pool pool(workers);
    serve::Tenant_table tenants;
    for (std::size_t t = 0; t < k_tenants; ++t)
        tenants.add(make_key(1), make_key(2),
                    core::Secure_mem_config{k_unit_bytes, true}, pool);
    serve::Batch_scheduler scheduler(tenants);
    auto stream = make_stream();

    // The admission loop's shape: pop up to max_batch, dispatch, repeat.
    for (auto _ : state) serve_stream(stream, scheduler, k_max_batch);
    state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                            static_cast<i64>(k_requests));
}
BENCHMARK(bm_serve_batched)->DenseRange(1, 2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void bm_serve_loadgen(benchmark::State& state)
{
    serve::Loadgen_config cfg;
    cfg.tenants = 4;
    cfg.clients = 4;
    cfg.requests = 64;
    cfg.jobs = static_cast<std::size_t>(state.range(0));
    cfg.seed = 0x10AD;
    for (auto _ : state) {
        const auto result = serve::run_loadgen(cfg);
        benchmark::DoNotOptimize(result);
    }
    state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                            static_cast<i64>(cfg.tenants * cfg.clients * cfg.requests));
}
BENCHMARK(bm_serve_loadgen)->DenseRange(1, 2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
