// Fig. 6: normalized performance (baseline cycles / scheme cycles; higher is
// better, baseline = 1.0) of the five protection schemes across the 13
// workloads, on (a) the server NPU and (b) the edge NPU.
#include <iostream>

#include "common/table.h"
#include "core/experiment.h"

using namespace seda;

namespace {

void run_panel(const accel::Npu_config& npu, const char* panel)
{
    const auto suite = core::run_suite(npu, core::paper_schemes());
    std::cout << "Fig. 6" << panel << ": normalized performance, " << suite.npu_name
              << " (Table II config)\n\n";

    std::vector<std::string> header = {"scheme"};
    for (const auto& p : suite.series.front().points) header.push_back(std::string(p.model));
    header.push_back("avg");

    Ascii_table table(header);
    for (const auto& s : suite.series) {
        std::vector<std::string> row = {s.scheme};
        for (const auto& p : s.points) row.push_back(fmt_f(p.norm_perf, 3));
        row.push_back(fmt_f(s.avg_norm_perf(), 4));
        table.add_row(std::move(row));
    }
    table.print(std::cout);

    std::cout << "\nslowdown vs baseline:";
    for (const auto& s : suite.series)
        std::cout << "  " << s.scheme << " " << fmt_pct(1.0 - s.avg_norm_perf());
    std::cout << "\n\n";
}

}  // namespace

int main()
{
    run_panel(accel::Npu_config::server(), "(a)");
    run_panel(accel::Npu_config::edge(), "(b)");

    std::cout << "Paper reference (avg slowdown, server / edge):\n"
              << "  SGX-64B  22.04% / 21.10%     MGX-64B  10.93% / 10.95%\n"
              << "  SGX-512B  8.49% /  5.84%     MGX-512B  4.28% /  2.90%\n"
              << "  SeDA     <1%    / <1%\n";
    return 0;
}
