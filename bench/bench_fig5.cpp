// Fig. 5: normalized off-chip memory traffic of the five protection schemes
// (SGX-64B, MGX-64B, SGX-512B, MGX-512B, SeDA) across the 13 workloads, on
// (a) the server NPU and (b) the edge NPU, normalized to the unprotected
// baseline.  Also prints the paper's headline averages for comparison.
#include <iostream>

#include "common/table.h"
#include "core/experiment.h"

using namespace seda;

namespace {

void run_panel(const accel::Npu_config& npu, const char* panel)
{
    const auto suite = core::run_suite(npu, core::paper_schemes());
    std::cout << "Fig. 5" << panel << ": normalized memory traffic, " << suite.npu_name
              << " (Table II config)\n\n";

    std::vector<std::string> header = {"scheme"};
    for (const auto& p : suite.series.front().points) header.push_back(std::string(p.model));
    header.push_back("avg");

    Ascii_table table(header);
    for (const auto& s : suite.series) {
        std::vector<std::string> row = {s.scheme};
        for (const auto& p : s.points) row.push_back(fmt_f(p.norm_traffic, 3));
        row.push_back(fmt_f(s.avg_norm_traffic(), 4));
        table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::cout << '\n';
}

}  // namespace

int main()
{
    run_panel(accel::Npu_config::server(), "(a)");
    run_panel(accel::Npu_config::edge(), "(b)");

    std::cout << "Paper reference (avg traffic overhead, server / edge):\n"
              << "  SGX-64B  +30.00% / +28.29%     MGX-64B  +12.51% / +12.63%\n"
              << "  SGX-512B ~+22.2% / ~+23.2%     MGX-512B ~+8.9%  / ~+10.2%\n"
              << "  SeDA     +0.12%  / +0.03%\n";
    return 0;
}
