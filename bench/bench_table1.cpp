// Table I: comparison of the three integrity-verification granularities
// (optBlk MAC / layer MAC / model MAC), with measured quantities from a
// representative run (ResNet-18 on the server NPU):
//   flexibility      - how many independently verifiable units exist
//   off-chip access  - metadata bytes that cross the memory bus
//   storage          - where the MACs live and how much space they take
#include <iostream>

#include "accel/accel_sim.h"
#include "common/table.h"
#include "core/seda_scheme.h"
#include "core/secure_npu.h"
#include "models/zoo.h"

using namespace seda;

int main()
{
    const auto npu = accel::Npu_config::server();
    const auto sim = accel::simulate_model(models::resnet18(), npu);

    core::Seda_scheme seda;
    const auto stats = core::run_protected(sim, seda);

    // Units per level, measured.
    u64 optblk_units = 0;
    Bytes optblk_mac_bytes = 0;
    for (const auto& c : seda.choices()) {
        optblk_units += c.ifmap.unit_count + c.weight.unit_count;
        optblk_mac_bytes += (c.ifmap.unit_count + c.weight.unit_count) * 8;
    }
    const u64 layers = sim.layers.size();
    const Bytes layer_mac_traffic =
        stats.bytes_by_tag[static_cast<int>(dram::Traffic_tag::layer_mac)];

    std::cout << "Table I: multi-level integrity verification granularity "
                 "(measured on resnet18 / server NPU)\n\n";
    Ascii_table table(
        {"granularity", "flexibility_units", "offchip_access", "overhead", "storage"});
    table.add_row({"optBlk", std::to_string(optblk_units),
                   "0 B (folded on the fly)", fmt_bytes(optblk_mac_bytes) + " if stored",
                   "off-chip (or folded)"});
    table.add_row({"layer", std::to_string(layers), fmt_bytes(layer_mac_traffic),
                   fmt_bytes(layers * 8), "off/on-chip"});
    table.add_row({"model", "1", "0 B", "8 B", "on-chip"});
    table.print(std::cout);

    std::cout << "\nPer-layer optBlk choices (SecureLoop-style search):\n";
    Ascii_table choices({"layer", "ifmap_optblk", "weight_optblk", "ampl_bytes"});
    for (std::size_t i = 0; i < sim.layers.size(); ++i) {
        const auto& c = seda.choices()[i];
        choices.add_row({sim.layers[i].layer->name, fmt_bytes(c.ifmap.unit_bytes),
                         fmt_bytes(c.weight.unit_bytes),
                         std::to_string(c.ifmap.amplification_bytes +
                                        c.weight.amplification_bytes)});
    }
    choices.print(std::cout);

    std::cout << "\nTotal verify events: " << stats.verify_events
              << ", SeDA traffic overhead vs baseline: layer MACs only ("
              << fmt_bytes(layer_mac_traffic) << " of " << fmt_bytes(stats.traffic_bytes)
              << ").\n";
    return 0;
}
