// Fig. 4: area and power of the crypto hardware as the accelerator's
// bandwidth demand grows to N times one AES engine's throughput.
//
//   T-AES: N parallel AES engines (linear growth).
//   B-AES: one AES engine + (N-1) 128-bit XOR lanes (nearly flat).
//
// Reproduces both panels of the figure as one table; the paper's axes reach
// ~45k um^2 and ~24k uW at the 8x point for T-AES.
#include <iostream>

#include "common/table.h"
#include "crypto/engine_model.h"

using namespace seda;
using namespace seda::crypto;

int main()
{
    std::cout << "Fig. 4: crypto hardware scaling vs bandwidth requirement (28 nm)\n\n";

    Ascii_table table({"bw_multiple", "t_aes_area_um2", "b_aes_area_um2", "t_aes_power_uw",
                       "b_aes_power_uw", "t_aes_engines", "b_aes_xor_lanes"});
    for (int mult = 1; mult <= 8; ++mult) {
        const auto t = t_aes_cost(mult);
        const auto b = b_aes_cost(mult);
        table.add_row({std::to_string(mult), fmt_f(t.area_um2, 0), fmt_f(b.area_um2, 0),
                       fmt_f(t.power_uw, 0), fmt_f(b.power_uw, 0),
                       std::to_string(t.aes_engines), std::to_string(b.xor_lanes)});
    }
    table.print(std::cout);

    const auto t8 = t_aes_cost(8);
    const auto b8 = b_aes_cost(8);
    std::cout << "\nAt 8x: B-AES uses " << fmt_f(100.0 * b8.area_um2 / t8.area_um2, 1)
              << "% of T-AES area and " << fmt_f(100.0 * b8.power_uw / t8.power_uw, 1)
              << "% of T-AES power.\n"
              << "Paper reference: T-AES grows to ~45k um^2 / ~24k uW; B-AES stays "
                 "nearly flat.\n";
    return 0;
}
