// Observability micro-benchmarks (google-benchmark): the per-record cost of
// every hot-path primitive the instrumentation adds, so the ≤2% budget on
// bm_serve_batched can be decomposed.
//
// Run once normally and once with SEDA_OBS=0 to see the disabled-path cost
// (one predictable branch per site); a -DSEDA_DISABLE_OBS=ON build measures
// the compiled-out floor.  docs/BENCHMARKS.md records the numbers.
#include <benchmark/benchmark.h>

#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/stage.h"

using namespace seda;

namespace {

void bm_obs_now_ticks(benchmark::State& state)
{
    for (auto _ : state) benchmark::DoNotOptimize(obs::now_ticks());
}
BENCHMARK(bm_obs_now_ticks);

void bm_obs_counter_add(benchmark::State& state)
{
    const obs::Counter c = obs::Metrics_registry::instance().counter("bench_counter");
    for (auto _ : state) c.add();
}
BENCHMARK(bm_obs_counter_add);

void bm_obs_registry_histogram_record(benchmark::State& state)
{
    const obs::Histogram h = obs::Metrics_registry::instance().histogram("bench_hist");
    double v = 1.0;
    for (auto _ : state) {
        h.record(v);
        v += 0.37;  // walk the buckets so the branch pattern is realistic
        if (v > 1e6) v = 1.0;
    }
}
BENCHMARK(bm_obs_registry_histogram_record);

void bm_obs_plain_histogram_record(benchmark::State& state)
{
    // The unsharded Log_histogram (what Serve_stats::latency_us uses on the
    // scheduler thread) -- no thread-local lookup, no atomics.
    obs::Log_histogram h;
    double v = 1.0;
    for (auto _ : state) {
        h.record(v);
        v += 0.37;
        if (v > 1e6) v = 1.0;
    }
    benchmark::DoNotOptimize(h.count());
}
BENCHMARK(bm_obs_plain_histogram_record);

void bm_obs_stage_span(benchmark::State& state)
{
    for (auto _ : state) {
        obs::Stage_span span(obs::Stage::stage_writes);
        benchmark::ClobberMemory();
    }
}
BENCHMARK(bm_obs_stage_span);

void bm_obs_phase_timer_two_laps(benchmark::State& state)
{
    for (auto _ : state) {
        obs::Phase_timer t;
        t.lap(obs::Stage::baes);
        t.lap(obs::Stage::bulk_mac);
    }
}
BENCHMARK(bm_obs_phase_timer_two_laps);

void bm_obs_scrape(benchmark::State& state)
{
    // Scrape cost scales with registered metrics x touched cells; this is
    // the cold-path price of one --stats-out export.
    const obs::Histogram h = obs::Metrics_registry::instance().histogram("bench_scrape_h");
    for (int i = 0; i < 1000; ++i) h.record(static_cast<double>(i + 1));
    for (auto _ : state) {
        auto snap = obs::Metrics_registry::instance().scrape();
        benchmark::DoNotOptimize(snap.histograms.size());
    }
}
BENCHMARK(bm_obs_scrape);

void bm_obs_scrape_into(benchmark::State& state)
{
    // The exporter/differ path: same fold as bm_obs_scrape but into a
    // reused Snapshot, so warm iterations stay off the allocator.  The gap
    // between the two is the allocation churn a scrape-per-request HTTP
    // exporter avoids.
    const obs::Histogram h = obs::Metrics_registry::instance().histogram("bench_scrape_h");
    for (int i = 0; i < 1000; ++i) h.record(static_cast<double>(i + 1));
    obs::Snapshot snap;
    obs::Metrics_registry::instance().scrape_into(snap);  // warm the buffers
    for (auto _ : state) {
        obs::Metrics_registry::instance().scrape_into(snap);
        benchmark::DoNotOptimize(snap.histograms.size());
    }
}
BENCHMARK(bm_obs_scrape_into);

}  // namespace

BENCHMARK_MAIN();
