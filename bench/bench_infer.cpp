// Secure-inference benches (google-benchmark): protected inference
// throughput per zoo model, against the raw Secure_session tile ceiling.
//
//   bm_infer_replay/M/J      one full inference of zoo model M (see
//                            k_models; label = model short name) replayed
//                            through a Secure_session with J workers --
//                            weights resident from a one-time load, fresh
//                            input staged per pass, every unit encrypted +
//                            MAC'd / verified + decrypted for real.
//                            bytes/s = plaintext through the secure path.
//   bm_infer_serve/M         the same pass through the serve::Server front
//                            end (admission queue + conflict-aware
//                            batching): the full-stack cost over the
//                            direct session path.
//   bm_infer_ceiling/J       a flat 16384-unit tile through the same
//                            session (write + read back): the throughput
//                            ceiling replay overheads are measured against
//                            (halo duplicates, direction flips, staging).
//
// Comparing bm_infer_replay to bm_infer_ceiling isolates what the ACCESS
// PATTERN costs on top of the crypto: short direction-flipped batches and
// re-read halos vs. one long bulk stream.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "infer/inference_engine.h"
#include "infer/model_binding.h"
#include "infer/run_infer.h"
#include "infer/unit_sink.h"
#include "models/zoo.h"
#include "runtime/secure_session.h"

using namespace seda;

namespace {

constexpr Bytes k_unit_bytes = infer::Model_binding::k_unit_bytes;

/// The per-model bench set: small, mid, and the two largest trace movers.
constexpr const char* k_models[] = {"lenet", "resnet18", "mobilenet",
                                    "transformer_fwd", "yolo_tiny"};

std::vector<u8> make_key(u64 seed)
{
    std::vector<u8> key(16);
    Rng rng(seed);
    for (auto& b : key) b = rng.next_byte();
    return key;
}

/// Bindings are immutable and expensive to tile; build each once.
const infer::Model_binding& binding_for(const char* name)
{
    static std::vector<std::pair<std::string, std::unique_ptr<infer::Model_binding>>>
        cache;
    for (const auto& [key, value] : cache)
        if (key == name) return *value;
    cache.emplace_back(name,
                       std::make_unique<infer::Model_binding>(
                           models::model_by_name(name), accel::Npu_config::server()));
    return *cache.back().second;
}

void bm_infer_replay(benchmark::State& state)
{
    const char* name = k_models[state.range(0)];
    const auto workers = static_cast<std::size_t>(state.range(1));
    const auto& binding = binding_for(name);

    runtime::Secure_session session(make_key(1), make_key(2),
                                    {k_unit_bytes, true}, workers);
    infer::Session_sink sink(session);
    infer::Inference_engine engine(binding);
    engine.load(sink);

    for (auto _ : state) engine.infer(sink);

    const auto& stats = engine.stats();
    state.SetLabel(name);
    state.SetBytesProcessed(
        static_cast<i64>(stats.totals().bytes / stats.inferences * state.iterations()));
    state.counters["verify_failures"] =
        static_cast<double>(stats.totals().failures());
}
BENCHMARK(bm_infer_replay)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {1}})
    ->Args({1, 8})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void bm_infer_serve(benchmark::State& state)
{
    const char* name = k_models[state.range(0)];
    infer::Infer_config cfg;
    cfg.tenants = 1;
    cfg.inferences = 1;
    cfg.jobs = 1;
    cfg.path = infer::Replay_path::serve;

    const auto model = models::model_by_name(name);
    const auto npu = accel::Npu_config::server();
    Bytes bytes = 0;
    for (auto _ : state) {
        // Includes load: the server owns the tenant memory, so each pass
        // is a fresh tenant lifecycle (the full-stack number).
        const auto result = infer::run_infer(model, npu, cfg);
        bytes += result.protected_bytes();
        benchmark::DoNotOptimize(result);
    }
    state.SetLabel(name);
    state.SetBytesProcessed(static_cast<i64>(bytes));
}
BENCHMARK(bm_infer_serve)->DenseRange(0, 1)->Unit(benchmark::kMillisecond)->UseRealTime();

void bm_infer_ceiling(benchmark::State& state)
{
    const auto workers = static_cast<std::size_t>(state.range(0));
    constexpr std::size_t k_units = 16384;  // 1 MiB tile
    runtime::Secure_session session(make_key(1), make_key(2),
                                    {k_unit_bytes, true}, workers);

    std::vector<u8> data(k_units * k_unit_bytes, 0xA5);
    std::vector<core::Secure_memory::Unit_write> writes;
    std::vector<core::Secure_memory::Unit_read> reads;
    for (std::size_t i = 0; i < k_units; ++i) {
        const Addr addr = i * k_unit_bytes;
        const std::span<u8> unit(data.data() + i * k_unit_bytes, k_unit_bytes);
        writes.push_back({addr, unit, 0, 0, static_cast<u32>(i)});
        reads.push_back({addr, unit, 0, 0, static_cast<u32>(i)});
    }

    for (auto _ : state) {
        session.write_units(writes);
        const auto statuses = session.read_units(reads);
        benchmark::DoNotOptimize(statuses);
    }
    state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                            static_cast<i64>(2 * k_units * k_unit_bytes));
}
BENCHMARK(bm_infer_ceiling)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
