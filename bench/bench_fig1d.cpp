// Fig. 1(d): memory-access overhead of a *typical* secure DNN accelerator
// (SGX-64B-class: AES-CTR + per-block MAC + VN + integrity tree) across the
// 13 workloads -- the motivating observation that security metadata adds
// 20-30% traffic and execution time.
//
// Prints, per workload, the extra off-chip traffic and the extra execution
// time relative to the unprotected baseline, plus the average row the paper
// plots as "avg".
#include <iostream>

#include "common/table.h"
#include "core/experiment.h"

using namespace seda;

int main()
{
    const auto npu = accel::Npu_config::server();
    constexpr std::string_view k_scheme[] = {"sgx-64"};
    const auto suite = core::run_suite(npu, k_scheme);
    const auto& series = suite.series.front();

    std::cout << "Fig. 1(d): memory access overhead of a typical secure accelerator\n"
              << "NPU: " << suite.npu_name << ", scheme: " << series.scheme << "\n\n";

    Ascii_table table({"workload", "traffic_overhead", "exec_time_overhead"});
    double traffic_sum = 0.0;
    double time_sum = 0.0;
    for (const auto& p : series.points) {
        const double traffic = p.norm_traffic - 1.0;
        const double time = 1.0 / p.norm_perf - 1.0;
        traffic_sum += traffic;
        time_sum += time;
        table.add_row({p.model, fmt_pct(traffic), fmt_pct(time)});
    }
    const double n = static_cast<double>(series.points.size());
    table.add_row({"avg", fmt_pct(traffic_sum / n), fmt_pct(time_sum / n)});
    table.print(std::cout);

    std::cout << "\nPaper reference: both overheads fall in the ~20-30% band "
                 "(Fig. 1(d) y-axis).\n";
    return 0;
}
