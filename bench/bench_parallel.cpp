// Parallel-runtime scaling benches (google-benchmark): how the concurrent
// suite driver and the sharded Secure_session scale with worker count.
//
//   bm_suite_parallel/J        the Fig. 5/6 cell matrix (5 schemes x 3
//                              representative models, edge NPU) on J workers
//   bm_session_write/J         one 1 MiB tile (16384 x 64 B units) written
//                              through a J-worker Secure_session
//   bm_session_read/J          the same tile verified + decrypted back
//
// Compare J=1 against J=hardware for the runtime win; J=1 against the
// serial bm_secure_memory_* in bench_crypto_micro for the sharding overhead
// at a single worker (one extra staging pass; it should be small).
#include <benchmark/benchmark.h>

#include <string_view>
#include <vector>

#include "common/rng.h"
#include "core/experiment.h"
#include "runtime/parallel_suite.h"
#include "runtime/secure_session.h"

using namespace seda;

namespace {

constexpr std::string_view k_models[] = {"let", "mob", "ncf"};
constexpr Bytes k_unit_bytes = 64;
constexpr std::size_t k_tile_units = 16384;  // 1 MiB tile

std::vector<u8> make_key(u64 seed)
{
    std::vector<u8> key(16);
    Rng rng(seed);
    for (auto& b : key) b = rng.next_byte();
    return key;
}

std::vector<std::vector<u8>> make_tile()
{
    Rng rng(77);
    std::vector<std::vector<u8>> tile(k_tile_units);
    for (auto& unit : tile) {
        unit.resize(k_unit_bytes);
        for (auto& b : unit) b = rng.next_byte();
    }
    return tile;
}

void bm_suite_parallel(benchmark::State& state)
{
    const auto npu = accel::Npu_config::edge();
    const auto jobs = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        auto result =
            runtime::run_suite_parallel(npu, core::paper_schemes(), jobs, k_models);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(bm_suite_parallel)
    ->DenseRange(1, 2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void bm_session_write(benchmark::State& state)
{
    const auto workers = static_cast<std::size_t>(state.range(0));
    runtime::Secure_session session(make_key(1), make_key(2), {}, workers);
    const auto tile = make_tile();
    std::vector<core::Secure_memory::Unit_write> batch;
    for (std::size_t i = 0; i < tile.size(); ++i)
        batch.push_back({i * k_unit_bytes, tile[i], 1, 0, static_cast<u32>(i)});

    for (auto _ : state) session.write_units(batch);
    state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                            static_cast<i64>(k_tile_units * k_unit_bytes));
}
BENCHMARK(bm_session_write)->DenseRange(1, 2)->Arg(4)->Arg(8)->UseRealTime();

void bm_session_read(benchmark::State& state)
{
    const auto workers = static_cast<std::size_t>(state.range(0));
    runtime::Secure_session session(make_key(1), make_key(2), {}, workers);
    const auto tile = make_tile();
    std::vector<core::Secure_memory::Unit_write> writes;
    for (std::size_t i = 0; i < tile.size(); ++i)
        writes.push_back({i * k_unit_bytes, tile[i], 1, 0, static_cast<u32>(i)});
    session.write_units(writes);

    auto out = make_tile();
    std::vector<core::Secure_memory::Unit_read> reads;
    for (std::size_t i = 0; i < out.size(); ++i)
        reads.push_back({i * k_unit_bytes, out[i], 1, 0, static_cast<u32>(i)});

    for (auto _ : state) {
        auto statuses = session.read_units(reads);
        benchmark::DoNotOptimize(statuses);
    }
    state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                            static_cast<i64>(k_tile_units * k_unit_bytes));
}
BENCHMARK(bm_session_read)->DenseRange(1, 2)->Arg(4)->Arg(8)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
