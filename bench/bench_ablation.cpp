// Ablation studies for the design choices DESIGN.md calls out:
//
//  A. optBlk granularity: force SeDA's authentication block to fixed sizes
//     vs the SecureLoop-style search -> amplification and traffic.
//  B. Re-read policy: retain_window vs dedup_only -> verify-event cost of
//     full halo re-verification.
//  C. Gather-MAC placement: SEAL-style colocation vs separate MAC region.
//  D. Calibration robustness: the Fig. 5/6 orderings must hold across a
//     sweep of the two calibrated constants.
//  E. Crypto under-provisioning: a single serial AES engine throttles the
//     memory stream (the Fig. 1(e) motivation); B-AES restores line rate.
#include <iostream>

#include "common/table.h"
#include "core/experiment.h"
#include "crypto/engine_model.h"
#include "models/zoo.h"
#include "protect/layer_mac_scheme.h"
#include "protect/unit_scheme.h"

using namespace seda;

namespace {

void ablation_optblk()
{
    std::cout << "A. optBlk granularity (resnet18 + yolo, server NPU, SeDA)\n\n";
    Ascii_table table({"unit", "resnet18_traffic", "yolo_traffic"});
    constexpr std::string_view k_models[] = {"rest", "yolo"};
    constexpr std::string_view k_seda[] = {"seda"};

    for (const Bytes forced : {Bytes{0}, Bytes{64}, Bytes{512}, Bytes{4096}}) {
        core::Seda_config cfg;
        if (forced != 0) cfg.forced_unit = forced;
        const auto suite =
            core::run_suite(accel::Npu_config::server(), k_seda, k_models, {}, cfg);
        const auto& pts = suite.series.front().points;
        table.add_row({forced == 0 ? "searched" : fmt_bytes(forced),
                       fmt_f(pts[0].norm_traffic, 4), fmt_f(pts[1].norm_traffic, 4)});
    }
    table.print(std::cout);
    std::cout << "(searched == coarsest aligned unit: no amplification, fewest MACs)\n\n";
}

void ablation_reread()
{
    std::cout << "B. halo re-read policy (mobilenet, edge NPU, SeDA)\n\n";
    Ascii_table table({"policy", "verify_events", "norm_perf"});
    constexpr std::string_view k_models[] = {"mob"};
    constexpr std::string_view k_seda[] = {"seda"};
    for (const auto policy : {core::Reread_policy::retain_window,
                              core::Reread_policy::dedup_only}) {
        core::Seda_config cfg;
        cfg.reread = policy;
        const auto suite =
            core::run_suite(accel::Npu_config::edge(), k_seda, k_models, {}, cfg);
        const auto& pt = suite.series.front().points.front();
        table.add_row(
            {policy == core::Reread_policy::retain_window ? "retain_window" : "dedup_only",
             std::to_string(pt.stats.verify_events), fmt_f(pt.norm_perf, 4)});
    }
    table.print(std::cout);
    std::cout << "(retain_window re-verifies every halo block against on-chip MACs; "
                 "dedup_only trusts the first fold)\n\n";
}

void ablation_gather_macs()
{
    std::cout << "C. gather-region MAC placement (dlrm + ncf, server NPU, SeDA)\n\n";
    Ascii_table table({"placement", "dlrm_traffic", "ncf_traffic", "dlrm_perf", "ncf_perf"});
    constexpr std::string_view k_models[] = {"dlrm", "ncf"};
    constexpr std::string_view k_seda[] = {"seda"};
    for (const bool colocate : {true, false}) {
        core::Seda_config cfg;
        cfg.colocate_gather_macs = colocate;
        const auto suite =
            core::run_suite(accel::Npu_config::server(), k_seda, k_models, {}, cfg);
        const auto& pts = suite.series.front().points;
        table.add_row({colocate ? "colocated (SEAL-style)" : "separate region",
                       fmt_f(pts[0].norm_traffic, 4), fmt_f(pts[1].norm_traffic, 4),
                       fmt_f(pts[0].norm_perf, 4), fmt_f(pts[1].norm_perf, 4)});
    }
    table.print(std::cout);
    std::cout << '\n';
}

void ablation_calibration()
{
    std::cout << "D. calibration robustness: Fig. 5/6 orderings across the knob grid\n\n";
    constexpr std::string_view k_models[] = {"rest", "mob", "dlrm", "trf"};
    Ascii_table table({"beta", "stall", "traffic_order_ok", "perf_order_ok"});
    for (const double beta : {0.5, 0.75, 1.0}) {
        for (const double stall : {0.0, 5.0, 12.0}) {
            protect::Perf_params pp;
            pp.vn_prefetch_discount = beta;
            pp.stall_cycles_per_mac_miss = stall;
            const auto suite = core::run_suite(accel::Npu_config::server(),
                                               core::paper_schemes(), k_models, pp);
            // Required: traffic sgx64 > sgx512 > mgx64 > mgx512 > seda;
            //           perf    sgx64 < mgx64 <= sgx512 < mgx512 < seda.
            const auto avg_t = [&](int i) { return suite.series[static_cast<std::size_t>(i)].avg_norm_traffic(); };
            const auto avg_p = [&](int i) { return suite.series[static_cast<std::size_t>(i)].avg_norm_perf(); };
            // series order: sgx-64, mgx-64, sgx-512, mgx-512, seda
            const bool t_ok = avg_t(0) > avg_t(2) && avg_t(2) > avg_t(1) &&
                              avg_t(1) > avg_t(3) && avg_t(3) > avg_t(4);
            const bool p_ok = avg_p(0) < avg_p(1) && avg_p(1) <= avg_p(2) &&
                              avg_p(2) < avg_p(3) && avg_p(3) < avg_p(4);
            table.add_row({fmt_f(beta, 2), fmt_f(stall, 1), t_ok ? "yes" : "NO",
                           p_ok ? "yes" : "NO"});
        }
    }
    table.print(std::cout);
    std::cout << '\n';
}

void ablation_cache_sweep()
{
    std::cout << "F. metadata cache sizing (resnet18, server NPU, SGX-64B-class)\n\n";
    const auto npu = accel::Npu_config::server();
    const auto sim = accel::simulate_model(models::model_by_name("rest"), npu);
    protect::Baseline_scheme base;
    const auto base_stats = core::run_protected(sim, base);

    Ascii_table table({"vn_cache", "mac_cache", "traffic_overhead", "slowdown"});
    for (const Bytes kib : {4ULL, 16ULL, 64ULL, 256ULL}) {
        protect::Unit_scheme_config cfg;
        cfg.unit_bytes = 64;
        cfg.has_vn_tree = true;
        cfg.vn_cache_bytes = kib * 1024;
        cfg.mac_cache_bytes = kib * 1024 / 2;
        protect::Unit_mac_scheme scheme("sgx-sweep", cfg);
        const auto stats = core::run_protected(sim, scheme);
        table.add_row({fmt_bytes(cfg.vn_cache_bytes), fmt_bytes(cfg.mac_cache_bytes),
                       fmt_pct(static_cast<double>(stats.traffic_bytes) /
                                   static_cast<double>(base_stats.traffic_bytes) -
                               1.0),
                       fmt_pct(static_cast<double>(stats.total_cycles) /
                                   static_cast<double>(base_stats.total_cycles) -
                               1.0)});
    }
    table.print(std::cout);
    std::cout << "(streaming DNN traffic barely reuses metadata lines: growing the\n"
                 " caches recovers little -- the paper's motivation for removing the\n"
                 " metadata instead of caching it)\n\n";
}

void ablation_dataflow()
{
    std::cout << "G. dataflow sensitivity (resnet18, SeDA vs SGX-64B)\n\n";
    Ascii_table table({"dataflow", "scheme", "traffic_overhead", "slowdown"});
    for (const auto df :
         {accel::Dataflow::weight_stationary, accel::Dataflow::output_stationary}) {
        auto npu = accel::Npu_config::server();
        npu.dataflow = df;
        const auto sim = accel::simulate_model(models::model_by_name("rest"), npu);
        protect::Baseline_scheme base;
        const auto base_stats = core::run_protected(sim, base);
        for (const std::string id : {"sgx-64", "seda"}) {
            auto scheme = core::make_scheme(id);
            const auto stats = core::run_protected(sim, *scheme);
            table.add_row(
                {df == accel::Dataflow::weight_stationary ? "weight-stationary"
                                                          : "output-stationary",
                 id,
                 fmt_pct(static_cast<double>(stats.traffic_bytes) /
                             static_cast<double>(base_stats.traffic_bytes) -
                         1.0),
                 fmt_pct(static_cast<double>(stats.total_cycles) /
                             static_cast<double>(base_stats.total_cycles) -
                         1.0)});
        }
    }
    table.print(std::cout);
    std::cout << "(SeDA's near-zero overhead is dataflow-independent)\n\n";
}

void ablation_securator()
{
    std::cout << "H. tiling awareness: SeDA vs Securator-style layer MACs\n\n";
    Ascii_table table({"scheme", "model", "traffic_overhead", "slowdown",
                       "verify_events", "redundant/unverifiable"});
    const auto npu = accel::Npu_config::edge();
    for (const char* model : {"mob", "yolo", "dlrm"}) {
        const auto sim = accel::simulate_model(models::model_by_name(model), npu);
        protect::Baseline_scheme base;
        const auto base_stats = core::run_protected(sim, base);
        for (const std::string id : {"securator", "seda"}) {
            auto scheme = core::make_scheme(id);
            const auto stats = core::run_protected(sim, *scheme);
            std::string extra = "-";
            if (auto* sec = dynamic_cast<protect::Layer_mac_scheme*>(scheme.get()))
                extra = std::to_string(sec->redundant_folds()) + " / " +
                        std::to_string(sec->unverifiable_units());
            table.add_row(
                {id, model,
                 fmt_pct(static_cast<double>(stats.traffic_bytes) /
                             static_cast<double>(base_stats.traffic_bytes) -
                         1.0),
                 fmt_pct(static_cast<double>(stats.total_cycles) /
                             static_cast<double>(base_stats.total_cycles) -
                         1.0),
                 std::to_string(stats.verify_events), extra});
        }
    }
    table.print(std::cout);
    std::cout << "(Both fold layer MACs; only SeDA's optBlk awareness removes the\n"
                 " redundant halo re-verification and covers gather regions)\n\n";
}

void ablation_crypto_throttle()
{
    std::cout << "E. crypto provisioning (Fig. 1(e) motivation)\n\n";
    const auto server = accel::Npu_config::server();
    const auto edge = accel::Npu_config::edge();
    Ascii_table table({"npu", "link_B_per_cycle", "engines_needed", "serial_engine_B_per_cycle",
                       "serial_throttle"});
    for (const auto& npu : {server, edge}) {
        const double link = npu.link_bytes_per_npu_cycle();
        const int need = crypto::required_engine_equivalents(link);
        const double one = crypto::crypto_bytes_per_cycle(1);
        table.add_row({npu.name, fmt_f(link, 2), std::to_string(need), fmt_f(one, 1),
                       link > one ? fmt_f(link / one, 2) + "x slower" : "none"});
    }
    table.print(std::cout);
    std::cout << "(B-AES reaches `engines_needed` pad lanes with one AES engine; "
                 "Fig. 4 prices the alternatives)\n";
}

}  // namespace

int main()
{
    ablation_optblk();
    ablation_reread();
    ablation_gather_macs();
    ablation_calibration();
    ablation_crypto_throttle();
    ablation_cache_sweep();
    ablation_dataflow();
    ablation_securator();
    return 0;
}
