// Crypto micro-benchmarks (google-benchmark): throughput of the functional
// crypto substrate and a head-to-head of the three encryption disciplines
// the paper contrasts (standard CTR, shared-OTP, B-AES), plus the SECA
// attack itself.
#include <benchmark/benchmark.h>

#include <array>
#include <vector>

#include "common/rng.h"
#include "crypto/aes.h"
#include "crypto/attacks.h"
#include "crypto/baes.h"
#include "crypto/ctr.h"
#include "crypto/mac.h"
#include "crypto/sha256.h"

using namespace seda;
using namespace seda::crypto;

namespace {

std::vector<u8> make_key()
{
    std::vector<u8> key(16);
    Rng rng(42);
    for (auto& b : key) b = rng.next_byte();
    return key;
}

std::vector<u8> make_data(std::size_t n)
{
    std::vector<u8> data(n);
    Rng rng(7);
    for (auto& b : data) b = rng.next_byte();
    return data;
}

void bm_aes128_block(benchmark::State& state)
{
    const Aes aes(make_key());
    Block16 blk{};
    for (auto _ : state) {
        blk = aes.encrypt_block(blk);
        benchmark::DoNotOptimize(blk);
    }
    state.SetBytesProcessed(static_cast<i64>(state.iterations()) * 16);
}
BENCHMARK(bm_aes128_block);

void bm_sha256_64b(benchmark::State& state)
{
    const auto data = make_data(64);
    for (auto _ : state) {
        auto d = sha256(data);
        benchmark::DoNotOptimize(d);
    }
    state.SetBytesProcessed(static_cast<i64>(state.iterations()) * 64);
}
BENCHMARK(bm_sha256_64b);

void bm_hmac_mac64(benchmark::State& state)
{
    const auto key = make_key();
    const auto data = make_data(static_cast<std::size_t>(state.range(0)));
    Mac_context ctx{0x1000, 1, 3, 0, 7};
    for (auto _ : state) {
        auto m = positional_block_mac(key, data, ctx);
        benchmark::DoNotOptimize(m);
    }
    state.SetBytesProcessed(static_cast<i64>(state.iterations()) * state.range(0));
}
BENCHMARK(bm_hmac_mac64)->Arg(64)->Arg(512)->Arg(4096);

// One protected unit, three encryption disciplines.  The work per unit is
// what differs: standard CTR runs one AES invocation per 16 B segment,
// B-AES runs one AES invocation total plus XORs -- the software analogue of
// the paper's N-engines-vs-XOR-lanes hardware trade (Fig. 4).
void bm_ctr_standard(benchmark::State& state)
{
    const Aes_ctr ctr(make_key());
    auto data = make_data(static_cast<std::size_t>(state.range(0)));
    u64 vn = 0;
    for (auto _ : state) {
        ctr.crypt_standard(data, 0x4000, ++vn);
        benchmark::DoNotOptimize(data.data());
    }
    state.SetBytesProcessed(static_cast<i64>(state.iterations()) * state.range(0));
}
BENCHMARK(bm_ctr_standard)->Arg(64)->Arg(512);

void bm_baes_crypt(benchmark::State& state)
{
    const Baes_engine baes(make_key());
    auto data = make_data(static_cast<std::size_t>(state.range(0)));
    u64 vn = 0;
    for (auto _ : state) {
        baes.crypt(data, 0x4000, ++vn);
        benchmark::DoNotOptimize(data.data());
    }
    state.SetBytesProcessed(static_cast<i64>(state.iterations()) * state.range(0));
}
BENCHMARK(bm_baes_crypt)->Arg(64)->Arg(512);

void bm_baes_otp_fanout(benchmark::State& state)
{
    const Baes_engine baes(make_key());
    u64 vn = 0;
    for (auto _ : state) {
        auto pads = baes.otps(0x8000, ++vn, static_cast<std::size_t>(state.range(0)));
        benchmark::DoNotOptimize(pads.data());
    }
}
BENCHMARK(bm_baes_otp_fanout)->Arg(4)->Arg(8)->Arg(32);

void bm_seca_attack(benchmark::State& state)
{
    Rng rng(11);
    const auto plain = make_sparse_plaintext(4096, 0.6, rng);
    const Aes_ctr ctr(make_key());
    auto cipher = plain;
    ctr.crypt_shared_otp(cipher, 0xA000, 5);
    const Block16 zero{};
    for (auto _ : state) {
        auto r = seca_attack(cipher, zero, plain);
        benchmark::DoNotOptimize(r.recovered);
    }
}
BENCHMARK(bm_seca_attack);

void bm_xor_mac_fold(benchmark::State& state)
{
    Rng rng(3);
    std::vector<u64> macs(static_cast<std::size_t>(state.range(0)));
    for (auto& m : macs) m = rng.next_u64();
    for (auto _ : state) {
        auto v = xor_fold(macs);
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(bm_xor_mac_fold)->Arg(1024)->Arg(65536);

}  // namespace

BENCHMARK_MAIN();
