// Crypto micro-benchmarks (google-benchmark): throughput of the functional
// crypto substrate and a head-to-head of the three encryption disciplines
// the paper contrasts (standard CTR, shared-OTP, B-AES), plus the SECA
// attack itself.
//
// Backend/bulk coverage: every CTR bench runs once per AES backend and once
// per gear (blockwise crypt_standard vs crypt_bulk), so the speedup of the
// batched pipeline is measured, not asserted.  Compare e.g.
//     bm_ctr_bulk<Aes_backend_kind::ttable>/4096
//     bm_ctr_standard<Aes_backend_kind::scalar>/4096
// for the full refactor win, and the same bench across backends for the
// round-implementation share alone.  The hardware kinds (aesni, shani) are
// registered at runtime only when this host's CPUID has the features -- a
// static BENCHMARK() would silently measure the software fallback under a
// hardware label on older CPUs -- which is why this file has its own main()
// instead of BENCHMARK_MAIN().
#include <benchmark/benchmark.h>

#include <array>
#include <vector>

#include "common/rng.h"
#include "core/secure_memory.h"
#include "crypto/aes.h"
#include "crypto/aes_backend.h"
#include "crypto/attacks.h"
#include "crypto/baes.h"
#include "crypto/ctr.h"
#include "crypto/mac.h"
#include "crypto/sha256.h"
#include "crypto/sha256_backend.h"

using namespace seda;
using namespace seda::crypto;

namespace {

std::vector<u8> make_key()
{
    std::vector<u8> key(16);
    Rng rng(42);
    for (auto& b : key) b = rng.next_byte();
    return key;
}

std::vector<u8> make_data(std::size_t n)
{
    std::vector<u8> data(n);
    Rng rng(7);
    for (auto& b : data) b = rng.next_byte();
    return data;
}

// --- AES backends head-to-head ----------------------------------------------

template <Aes_backend_kind K>
void bm_aes128_block(benchmark::State& state)
{
    const Aes aes(make_key(), K);
    Block16 blk{};
    for (auto _ : state) {
        blk = aes.encrypt_block(blk);
        benchmark::DoNotOptimize(blk);
    }
    state.SetBytesProcessed(static_cast<i64>(state.iterations()) * 16);
}
BENCHMARK(bm_aes128_block<Aes_backend_kind::scalar>);
BENCHMARK(bm_aes128_block<Aes_backend_kind::ttable>);

template <Aes_backend_kind K>
void bm_aes128_encrypt_blocks(benchmark::State& state)
{
    const Aes aes(make_key(), K);
    std::vector<Block16> blocks(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        aes.encrypt_blocks(blocks);
        benchmark::DoNotOptimize(blocks.data());
    }
    state.SetBytesProcessed(static_cast<i64>(state.iterations()) * state.range(0) * 16);
}
BENCHMARK(bm_aes128_encrypt_blocks<Aes_backend_kind::scalar>)->Arg(32);
BENCHMARK(bm_aes128_encrypt_blocks<Aes_backend_kind::ttable>)->Arg(32);

template <Sha256_backend_kind K>
void bm_sha256_64b(benchmark::State& state)
{
    const auto data = make_data(64);
    for (auto _ : state) {
        Sha256 h(K);
        h.update(data);
        auto d = h.finish();
        benchmark::DoNotOptimize(d);
    }
    state.SetBytesProcessed(static_cast<i64>(state.iterations()) * 64);
}
BENCHMARK(bm_sha256_64b<Sha256_backend_kind::scalar>);
BENCHMARK(bm_sha256_64b<Sha256_backend_kind::fast>);

template <Sha256_backend_kind K>
void bm_sha256_bulk(benchmark::State& state)
{
    // Long single stream: measures the unrolled compression alone (no
    // multi-buffer interleave possible on one serial message).
    const auto data = make_data(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        Sha256 h(K);
        h.update(data);
        auto d = h.finish();
        benchmark::DoNotOptimize(d);
    }
    state.SetBytesProcessed(static_cast<i64>(state.iterations()) * state.range(0));
}
BENCHMARK(bm_sha256_bulk<Sha256_backend_kind::scalar>)->Arg(4096);
BENCHMARK(bm_sha256_bulk<Sha256_backend_kind::fast>)->Arg(4096);

void bm_hmac_mac64(benchmark::State& state)
{
    const auto key = make_key();
    const auto data = make_data(static_cast<std::size_t>(state.range(0)));
    Mac_context ctx{0x1000, 1, 3, 0, 7};
    for (auto _ : state) {
        auto m = positional_block_mac(key, data, ctx);
        benchmark::DoNotOptimize(m);
    }
    state.SetBytesProcessed(static_cast<i64>(state.iterations()) * state.range(0));
}
BENCHMARK(bm_hmac_mac64)->Arg(64)->Arg(512)->Arg(4096);

void bm_hmac_engine_mac64(benchmark::State& state)
{
    // Precomputed-key engine: the amortized per-unit MAC of the batch path.
    const auto key = make_key();
    const Hmac_engine engine(key);
    const auto data = make_data(static_cast<std::size_t>(state.range(0)));
    Mac_context ctx{0x1000, 1, 3, 0, 7};
    for (auto _ : state) {
        auto m = engine.positional_mac(data, ctx);
        benchmark::DoNotOptimize(m);
    }
    state.SetBytesProcessed(static_cast<i64>(state.iterations()) * state.range(0));
}
BENCHMARK(bm_hmac_engine_mac64)->Arg(64)->Arg(512)->Arg(4096);

// --- bulk HMAC: one tile of unit MACs, loop vs digest_many -------------------
//
// The MAC half of a secure-memory tile transfer: 64 independent 64 B unit
// MACs under one engine.  The loop gear is what write_units/read_units did
// before the bulk pipeline; the bulk gear streams every MAC through the
// backend's multi-buffer compressor.  Compare
//     bm_hmac_units_bulk<Sha256_backend_kind::fast>
//     bm_hmac_units_loop<Sha256_backend_kind::scalar>
// for the full SHA-side refactor win, and the same gear across backends for
// the compression share alone.

constexpr std::size_t k_mac_units = 64;

template <Sha256_backend_kind K>
void bm_hmac_units_loop(benchmark::State& state)
{
    const auto key = make_key();
    const Hmac_engine engine(key, K);
    const auto data = make_data(64 * k_mac_units);
    std::array<u64, k_mac_units> macs{};
    for (auto _ : state) {
        for (std::size_t i = 0; i < k_mac_units; ++i) {
            const Mac_context ctx{0x1000 + 64 * i, 1, 3, 0, static_cast<u32>(i)};
            macs[i] = engine.positional_mac(
                std::span<const u8>(data).subspan(64 * i, 64), ctx);
        }
        benchmark::DoNotOptimize(macs.data());
    }
    state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                            static_cast<i64>(64 * k_mac_units));
}
BENCHMARK(bm_hmac_units_loop<Sha256_backend_kind::scalar>);
BENCHMARK(bm_hmac_units_loop<Sha256_backend_kind::fast>);

template <Sha256_backend_kind K>
void bm_hmac_units_bulk(benchmark::State& state)
{
    const auto key = make_key();
    const Hmac_engine engine(key, K);
    const auto data = make_data(64 * k_mac_units);
    std::vector<Mac_request> reqs;
    for (std::size_t i = 0; i < k_mac_units; ++i)
        reqs.push_back({std::span<const u8>(data).subspan(64 * i, 64),
                        {0x1000 + 64 * i, 1, 3, 0, static_cast<u32>(i)}});
    std::array<u64, k_mac_units> macs{};
    for (auto _ : state) {
        engine.positional_macs(reqs, macs);
        benchmark::DoNotOptimize(macs.data());
    }
    state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                            static_cast<i64>(64 * k_mac_units));
}
BENCHMARK(bm_hmac_units_bulk<Sha256_backend_kind::scalar>);
BENCHMARK(bm_hmac_units_bulk<Sha256_backend_kind::fast>);

// --- CTR disciplines: blockwise vs bulk, per backend -------------------------
//
// One protected unit, three encryption disciplines.  The work per unit is
// what differs: standard CTR runs one AES invocation per 16 B segment,
// B-AES runs one AES invocation total plus XORs -- the software analogue of
// the paper's N-engines-vs-XOR-lanes hardware trade (Fig. 4).

template <Aes_backend_kind K>
void bm_ctr_keystream(benchmark::State& state)
{
    // Pure keystream generation (no XOR, no data movement): the fused
    // counter path each backend provides.  64 blocks is crypt_bulk's batch;
    // 256 shows the asymptote once per-call round-key loads amortize away.
    const Aes aes(make_key(), K);
    std::vector<Block16> pad(static_cast<std::size_t>(state.range(0)));
    u64 vn = 0;
    for (auto _ : state) {
        aes.ctr_keystream(0x4000, vn, pad);
        vn += pad.size();
        benchmark::DoNotOptimize(pad.data());
    }
    state.SetBytesProcessed(static_cast<i64>(state.iterations()) * state.range(0) * 16);
}
BENCHMARK(bm_ctr_keystream<Aes_backend_kind::scalar>)->Arg(4)->Arg(64)->Arg(256);
BENCHMARK(bm_ctr_keystream<Aes_backend_kind::ttable>)->Arg(4)->Arg(64)->Arg(256);

template <Aes_backend_kind K>
void bm_ctr_standard(benchmark::State& state)
{
    const Aes_ctr ctr(make_key(), K);
    auto data = make_data(static_cast<std::size_t>(state.range(0)));
    u64 vn = 0;
    for (auto _ : state) {
        ctr.crypt_standard(data, 0x4000, ++vn);
        benchmark::DoNotOptimize(data.data());
    }
    state.SetBytesProcessed(static_cast<i64>(state.iterations()) * state.range(0));
}
BENCHMARK(bm_ctr_standard<Aes_backend_kind::scalar>)->Arg(64)->Arg(512)->Arg(4096);
BENCHMARK(bm_ctr_standard<Aes_backend_kind::ttable>)->Arg(64)->Arg(512)->Arg(4096);

template <Aes_backend_kind K>
void bm_ctr_bulk(benchmark::State& state)
{
    const Aes_ctr ctr(make_key(), K);
    auto data = make_data(static_cast<std::size_t>(state.range(0)));
    u64 vn = 0;
    for (auto _ : state) {
        ctr.crypt_bulk(data, 0x4000, ++vn);
        benchmark::DoNotOptimize(data.data());
    }
    state.SetBytesProcessed(static_cast<i64>(state.iterations()) * state.range(0));
}
BENCHMARK(bm_ctr_bulk<Aes_backend_kind::scalar>)->Arg(64)->Arg(512)->Arg(4096);
BENCHMARK(bm_ctr_bulk<Aes_backend_kind::ttable>)->Arg(64)->Arg(512)->Arg(4096);

template <Aes_backend_kind K>
void bm_baes_crypt(benchmark::State& state)
{
    const Baes_engine baes(make_key(), K);
    auto data = make_data(static_cast<std::size_t>(state.range(0)));
    u64 vn = 0;
    for (auto _ : state) {
        baes.crypt(data, 0x4000, ++vn);
        benchmark::DoNotOptimize(data.data());
    }
    state.SetBytesProcessed(static_cast<i64>(state.iterations()) * state.range(0));
}
BENCHMARK(bm_baes_crypt<Aes_backend_kind::scalar>)->Arg(64)->Arg(512);
BENCHMARK(bm_baes_crypt<Aes_backend_kind::ttable>)->Arg(64)->Arg(512);

void bm_baes_otp_fanout(benchmark::State& state)
{
    const Baes_engine baes(make_key());
    std::vector<Block16> pads;  // reused scratch, as in the batch path
    u64 vn = 0;
    for (auto _ : state) {
        baes.otps_into(0x8000, ++vn, static_cast<std::size_t>(state.range(0)), pads);
        benchmark::DoNotOptimize(pads.data());
    }
}
BENCHMARK(bm_baes_otp_fanout)->Arg(4)->Arg(8)->Arg(32);

// --- secure memory: single-unit calls vs one batch per tile ------------------

void bm_secure_memory_tile(benchmark::State& state)
{
    const bool batched = state.range(0) != 0;
    constexpr std::size_t k_units = 64;  // one 4 KB tile of 64 B units
    const auto key = make_key();
    seda::core::Secure_memory mem(key, key);

    const auto data = make_data(64);
    std::vector<std::vector<u8>> out(k_units, std::vector<u8>(64));
    std::vector<seda::core::Secure_memory::Unit_write> writes;
    std::vector<seda::core::Secure_memory::Unit_read> reads;
    for (std::size_t i = 0; i < k_units; ++i) {
        writes.push_back({i * 64, data, 0, 0, static_cast<u32>(i)});
        reads.push_back({i * 64, out[i], 0, 0, static_cast<u32>(i)});
    }

    for (auto _ : state) {
        if (batched) {
            mem.write_units(writes);
            auto statuses = mem.read_units(reads);
            benchmark::DoNotOptimize(statuses.data());
        } else {
            for (const auto& w : writes)
                mem.write(w.addr, w.plaintext, w.layer_id, w.fmap_idx, w.blk_idx);
            for (const auto& r : reads) {
                auto s = mem.read(r.addr, r.out, r.layer_id, r.fmap_idx, r.blk_idx);
                benchmark::DoNotOptimize(s);
            }
        }
    }
    // Bytes moved per iteration: one tile written + one tile read back.
    state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                            static_cast<i64>(2 * k_units * 64));
}
BENCHMARK(bm_secure_memory_tile)->Arg(0)->Arg(1)->ArgNames({"batched"});

void bm_seca_attack(benchmark::State& state)
{
    Rng rng(11);
    const auto plain = make_sparse_plaintext(4096, 0.6, rng);
    const Aes_ctr ctr(make_key());
    auto cipher = plain;
    ctr.crypt_shared_otp(cipher, 0xA000, 5);
    const Block16 zero{};
    for (auto _ : state) {
        auto r = seca_attack(cipher, zero, plain);
        benchmark::DoNotOptimize(r.recovered);
    }
}
BENCHMARK(bm_seca_attack);

void bm_xor_mac_fold(benchmark::State& state)
{
    Rng rng(3);
    std::vector<u64> macs(static_cast<std::size_t>(state.range(0)));
    for (auto& m : macs) m = rng.next_u64();
    for (auto _ : state) {
        auto v = xor_fold(macs);
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(bm_xor_mac_fold)->Arg(1024)->Arg(65536);

}  // namespace

int main(int argc, char** argv)
{
    // Hardware-backend series, present only when this host can run them.
    if (backend_available(Aes_backend_kind::aesni)) {
        constexpr auto k = Aes_backend_kind::aesni;
        benchmark::RegisterBenchmark("bm_aes128_block<Aes_backend_kind::aesni>",
                                     bm_aes128_block<k>);
        benchmark::RegisterBenchmark("bm_aes128_encrypt_blocks<Aes_backend_kind::aesni>",
                                     bm_aes128_encrypt_blocks<k>)
            ->Arg(32);
        benchmark::RegisterBenchmark("bm_ctr_keystream<Aes_backend_kind::aesni>",
                                     bm_ctr_keystream<k>)
            ->Arg(4)
            ->Arg(64)
            ->Arg(256);
        benchmark::RegisterBenchmark("bm_ctr_standard<Aes_backend_kind::aesni>",
                                     bm_ctr_standard<k>)
            ->Arg(64)
            ->Arg(512)
            ->Arg(4096);
        benchmark::RegisterBenchmark("bm_ctr_bulk<Aes_backend_kind::aesni>", bm_ctr_bulk<k>)
            ->Arg(64)
            ->Arg(512)
            ->Arg(4096);
        benchmark::RegisterBenchmark("bm_baes_crypt<Aes_backend_kind::aesni>",
                                     bm_baes_crypt<k>)
            ->Arg(64)
            ->Arg(512);
    }
    if (sha256_backend_available(Sha256_backend_kind::shani)) {
        constexpr auto k = Sha256_backend_kind::shani;
        benchmark::RegisterBenchmark("bm_sha256_64b<Sha256_backend_kind::shani>",
                                     bm_sha256_64b<k>);
        benchmark::RegisterBenchmark("bm_sha256_bulk<Sha256_backend_kind::shani>",
                                     bm_sha256_bulk<k>)
            ->Arg(4096);
        benchmark::RegisterBenchmark("bm_hmac_units_loop<Sha256_backend_kind::shani>",
                                     bm_hmac_units_loop<k>);
        benchmark::RegisterBenchmark("bm_hmac_units_bulk<Sha256_backend_kind::shani>",
                                     bm_hmac_units_bulk<k>);
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
