// Table III: feature + measured comparison of the memory-protection schemes.
// Qualitative columns restate the paper's table; the two measured columns
// come from running all 13 workloads on the server NPU.
#include <iostream>

#include "common/table.h"
#include "core/experiment.h"

using namespace seda;

int main()
{
    const auto npu = accel::Npu_config::server();
    const auto suite = core::run_suite(npu, core::paper_schemes());

    struct Row {
        const char* scheme;
        const char* enc_gran;
        const char* integ_gran;
        const char* offchip;
        const char* tiling_aware;
        const char* enc_scalable;
    };
    constexpr Row k_rows[] = {
        {"sgx-64", "16B", "64B", "MAC,VN,IT", "no", "no"},
        {"mgx-64", "16B", "64B", "MAC", "no", "no"},
        {"sgx-512", "16B", "512B", "MAC,VN,IT", "no", "no"},
        {"mgx-512", "16B", "512B", "MAC", "no", "no"},
        {"seda", "bandwidth-aware", "multi-level", "minimal to none", "yes", "yes"},
    };

    std::cout << "Table III: comparison of memory protection schemes "
                 "(measured: server NPU, 13-workload average)\n\n";
    Ascii_table table({"scheme", "enc_granularity", "integrity_granularity",
                       "offchip_access", "tiling_aware", "enc_scalable",
                       "traffic_overhead", "perf_slowdown"});
    for (const Row& r : k_rows) {
        const core::Scheme_series* series = nullptr;
        for (const auto& s : suite.series)
            if (s.scheme == r.scheme) series = &s;
        table.add_row({r.scheme, r.enc_gran, r.integ_gran, r.offchip, r.tiling_aware,
                       r.enc_scalable,
                       series ? fmt_pct(series->avg_norm_traffic() - 1.0) : "-",
                       series ? fmt_pct(1.0 - series->avg_norm_perf()) : "-"});
    }
    table.print(std::cout);
    std::cout << "\n(IT = integrity tree; encryption granularity 16B = one AES block.)\n";
    return 0;
}
