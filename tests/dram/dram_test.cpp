// Timing invariants and statistics of the DDR model.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "dram/dram_sim.h"

namespace seda::dram {
namespace {

std::vector<Request> sequential_reads(Addr base, int n)
{
    std::vector<Request> v;
    for (int i = 0; i < n; ++i)
        v.push_back({base + static_cast<Addr>(i) * k_block_bytes, false,
                     Traffic_tag::data});
    return v;
}

std::vector<Request> random_reads(Addr base, Bytes span, int n, u64 seed)
{
    Rng rng(seed);
    std::vector<Request> v;
    for (int i = 0; i < n; ++i) {
        const Addr a = base + align_down(rng.next_below(span), k_block_bytes);
        v.push_back({a, false, Traffic_tag::data});
    }
    return v;
}

TEST(AddressMap, DecodesChannelInterleave)
{
    Dram_config cfg;
    const Address_map map(cfg);
    // Consecutive 64 B blocks round-robin across the 4 channels.
    for (int i = 0; i < 16; ++i) {
        const auto d = map.decode(static_cast<Addr>(i) * k_block_bytes);
        EXPECT_EQ(d.channel, i % cfg.channels);
    }
}

TEST(AddressMap, RowChangesAfterRowBytesPerChannel)
{
    Dram_config cfg;
    const Address_map map(cfg);
    const auto a = map.decode(0);
    // Same channel, same bank until the row is exhausted.
    const u64 blocks_per_row = cfg.row_bytes / cfg.burst_bytes;
    const Addr same_row_addr = (blocks_per_row - 1) * static_cast<Addr>(cfg.channels) *
                               k_block_bytes;
    const auto b = map.decode(same_row_addr);
    EXPECT_EQ(a.channel, b.channel);
    EXPECT_EQ(a.bank, b.bank);
    EXPECT_EQ(a.row, b.row);
}

TEST(DramSim, SequentialStreamIsMostlyRowHits)
{
    Dram_sim sim{Dram_config{}};
    sim.process_stream(sequential_reads(0, 4096));
    EXPECT_GT(sim.stats().row_hit_rate(), 0.95);
}

TEST(DramSim, RandomStreamIsMostlyRowMisses)
{
    Dram_sim sim{Dram_config{}};
    sim.process_stream(random_reads(0, 1ULL << 30, 4096, 5));
    EXPECT_LT(sim.stats().row_hit_rate(), 0.2);
}

TEST(DramSim, RandomStreamIsSlowerThanSequential)
{
    Dram_sim seq{Dram_config{}};
    Dram_sim rnd{Dram_config{}};
    const Cycles t_seq = seq.process_stream(sequential_reads(0, 8192));
    const Cycles t_rnd = rnd.process_stream(random_reads(0, 1ULL << 30, 8192, 6));
    EXPECT_GT(t_rnd, t_seq);
}

TEST(DramSim, SequentialStreamApproachesPeakBandwidth)
{
    Dram_config cfg;
    Dram_sim sim{cfg};
    const int n = 65536;
    const Cycles t = sim.process_stream(sequential_reads(0, n));
    const double peak_bytes_per_cycle =
        cfg.channels * cfg.peak_bytes_per_cycle_per_channel();
    const double achieved =
        static_cast<double>(n) * static_cast<double>(k_block_bytes) / static_cast<double>(t);
    EXPECT_GT(achieved, 0.9 * peak_bytes_per_cycle);
    EXPECT_LE(achieved, peak_bytes_per_cycle * 1.001);
}

TEST(DramSim, MakespanMonotonicInRequestCount)
{
    Dram_sim a{Dram_config{}};
    Dram_sim b{Dram_config{}};
    const Cycles t1 = a.process_stream(sequential_reads(0, 1000));
    const Cycles t2 = b.process_stream(sequential_reads(0, 2000));
    EXPECT_GT(t2, t1);
}

TEST(DramSim, StatsAccounting)
{
    Dram_sim sim{Dram_config{}};
    std::vector<Request> reqs = sequential_reads(0, 100);
    reqs.push_back({0x100000, true, Traffic_tag::mac});
    reqs.push_back({0x100040, true, Traffic_tag::mac});
    sim.process_stream(reqs);
    EXPECT_EQ(sim.stats().reads, 100u);
    EXPECT_EQ(sim.stats().writes, 2u);
    EXPECT_EQ(sim.stats().bytes_by_tag[static_cast<int>(Traffic_tag::data)], 6400u);
    EXPECT_EQ(sim.stats().bytes_by_tag[static_cast<int>(Traffic_tag::mac)], 128u);
    EXPECT_EQ(sim.stats().total_bytes(), 6528u);
}

TEST(DramSim, StatePersistsAcrossStreams)
{
    Dram_sim sim{Dram_config{}};
    sim.process_stream(sequential_reads(0, 64));
    const Cycles before = sim.now();
    sim.process_stream(sequential_reads(64 * k_block_bytes, 64));
    EXPECT_GT(sim.now(), before);
}

TEST(DramSim, ResetClearsEverything)
{
    Dram_sim sim{Dram_config{}};
    sim.process_stream(sequential_reads(0, 64));
    sim.reset();
    EXPECT_EQ(sim.now(), 0u);
    EXPECT_EQ(sim.stats().reads, 0u);
    EXPECT_EQ(sim.stats().total_bytes(), 0u);
}

TEST(DramSim, EmptyStreamIsFree)
{
    Dram_sim sim{Dram_config{}};
    EXPECT_EQ(sim.process_stream({}), 0u);
}

TEST(DramSim, MoreChannelsGoFaster)
{
    Dram_config one;
    one.channels = 1;
    Dram_config four;
    four.channels = 4;
    Dram_sim s1{one};
    Dram_sim s4{four};
    const auto reqs = sequential_reads(0, 8192);
    EXPECT_GT(s1.process_stream(reqs), s4.process_stream(reqs));
}

TEST(DramSim, WriteRecoveryDelaysBankTurnaround)
{
    // Alternating write/read to the same bank pays t_wr; to different rows
    // it also pays activation.  Just assert writes cost at least as much.
    Dram_config cfg;
    std::vector<Request> rw;
    std::vector<Request> ro;
    for (int i = 0; i < 512; ++i) {
        const Addr a = static_cast<Addr>(i) * k_block_bytes;
        rw.push_back({a, i % 2 == 0, Traffic_tag::data});
        ro.push_back({a, false, Traffic_tag::data});
    }
    Dram_sim sim_rw{cfg};
    Dram_sim sim_ro{cfg};
    EXPECT_GE(sim_rw.process_stream(rw), sim_ro.process_stream(ro));
}

TEST(DramSim, RefreshCostsTimeButBoundedFraction)
{
    Dram_config with;
    Dram_config without;
    without.refresh_enabled = false;
    Dram_sim sim_with{with};
    Dram_sim sim_without{without};
    const auto reqs = sequential_reads(0, 65536);
    const Cycles t_with = sim_with.process_stream(reqs);
    const Cycles t_without = sim_without.process_stream(reqs);
    EXPECT_GT(t_with, t_without);
    // Refresh duty cycle ~ t_rfc / t_refi (~4.6%): the slowdown must stay
    // in that neighbourhood.
    const double ratio = static_cast<double>(t_with) / static_cast<double>(t_without);
    EXPECT_LT(ratio, 1.10);
}

TEST(DramSim, RefreshClosesRows)
{
    // A refresh forces the next access to the previously open row to pay an
    // activation: the hit rate must drop (slightly) vs refresh-off.
    Dram_config with;
    Dram_config without;
    without.refresh_enabled = false;
    Dram_sim sim_with{with};
    Dram_sim sim_without{without};
    const auto reqs = sequential_reads(0, 65536);
    sim_with.process_stream(reqs);
    sim_without.process_stream(reqs);
    EXPECT_LE(sim_with.stats().row_hit_rate(), sim_without.stats().row_hit_rate());
}

TEST(DramConfig, RefreshTimingValidated)
{
    Dram_config bad;
    bad.t_refi = 50;
    bad.t_rfc = 100;  // refresh longer than its period
    EXPECT_THROW(Dram_sim{bad}, Seda_error);
    bad.refresh_enabled = false;  // ... unless refresh is off entirely
    EXPECT_NO_THROW(Dram_sim{bad});
}

TEST(DramConfig, ValidatesParameters)
{
    Dram_config bad;
    bad.channels = 0;
    EXPECT_THROW(Dram_sim{bad}, Seda_error);
    bad = Dram_config{};
    bad.banks_per_channel = 3;  // not a power of two
    EXPECT_THROW(Dram_sim{bad}, Seda_error);
    bad = Dram_config{};
    bad.row_bytes = 100;  // not a power of two
    EXPECT_THROW(Dram_sim{bad}, Seda_error);
}

}  // namespace
}  // namespace seda::dram
