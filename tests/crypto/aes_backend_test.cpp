// Cross-validation of the pluggable AES backends: every backend must produce
// identical ciphertext from the same key schedule, on the FIPS-197 vectors
// and on randomized keys/blocks across all three key sizes.  Backend kinds
// are enumerated at runtime -- hardware kinds skip with a message on hosts
// whose CPUID lacks the feature, so the same test binary is exhaustive on
// an AES-NI Xeon and green on a feature-less VM.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "crypto/aes.h"
#include "crypto/aes_backend.h"
#include "crypto/ctr.h"

namespace seda::crypto {
namespace {

/// The subset of all_backend_kinds() this host can actually run.
std::vector<Aes_backend_kind> available_backend_kinds()
{
    std::vector<Aes_backend_kind> kinds;
    for (const auto kind : all_backend_kinds())
        if (backend_available(kind)) kinds.push_back(kind);
    return kinds;
}

std::vector<u8> from_hex(const std::string& hex)
{
    std::vector<u8> out;
    for (std::size_t i = 0; i + 1 < hex.size(); i += 2)
        out.push_back(static_cast<u8>(std::stoi(hex.substr(i, 2), nullptr, 16)));
    return out;
}

Block16 block_from_hex(const std::string& hex)
{
    const auto v = from_hex(hex);
    Block16 b{};
    std::copy(v.begin(), v.end(), b.begin());
    return b;
}

struct Fips_vector {
    const char* key;
    const char* plaintext;
    const char* ciphertext;
};

constexpr Fips_vector k_fips_vectors[] = {
    {"000102030405060708090a0b0c0d0e0f", "00112233445566778899aabbccddeeff",
     "69c4e0d86a7b0430d8cdb78070b4c55a"},
    {"000102030405060708090a0b0c0d0e0f1011121314151617",
     "00112233445566778899aabbccddeeff", "dda97ca4864cdfe06eaf70a0ec0d7191"},
    {"000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
     "00112233445566778899aabbccddeeff", "8ea2b7ca516745bfeafc49904b496089"},
};

class AesBackendTest : public ::testing::TestWithParam<Aes_backend_kind> {
protected:
    void SetUp() override
    {
        if (!backend_available(GetParam()))
            GTEST_SKIP() << to_string(GetParam())
                         << " backend not available on this CPU/build";
    }
};

TEST_P(AesBackendTest, Fips197Vectors)
{
    for (const auto& v : k_fips_vectors) {
        const Aes aes(from_hex(v.key), GetParam());
        const Block16 p = block_from_hex(v.plaintext);
        const Block16 c = block_from_hex(v.ciphertext);
        EXPECT_EQ(aes.encrypt_block(p), c);
        EXPECT_EQ(aes.decrypt_block(c), p);
    }
}

TEST_P(AesBackendTest, EncryptDecryptRoundtripAllKeySizes)
{
    Rng rng(0xBAC0);
    for (const std::size_t key_len : {16u, 24u, 32u}) {
        std::vector<u8> key(key_len);
        for (auto& b : key) b = rng.next_byte();
        const Aes aes(key, GetParam());
        for (int i = 0; i < 64; ++i) {
            Block16 p{};
            for (auto& b : p) b = rng.next_byte();
            EXPECT_EQ(aes.decrypt_block(aes.encrypt_block(p)), p);
        }
    }
}

TEST_P(AesBackendTest, BulkMatchesBlockwise)
{
    Rng rng(0xB17E);
    std::vector<u8> key(16);
    for (auto& b : key) b = rng.next_byte();
    const Aes aes(key, GetParam());

    std::vector<Block16> blocks(67);  // odd count: exercises partial batches
    for (auto& blk : blocks)
        for (auto& b : blk) b = rng.next_byte();
    std::vector<Block16> bulk = blocks;
    aes.encrypt_blocks(bulk);
    for (std::size_t i = 0; i < blocks.size(); ++i)
        EXPECT_EQ(bulk[i], aes.encrypt_block(blocks[i])) << "block " << i;

    aes.decrypt_blocks(bulk);
    EXPECT_EQ(bulk, blocks);
}

TEST_P(AesBackendTest, CtrKeystreamMatchesCounterAssembly)
{
    // The fused keystream must equal encrypt(make_counter) blockwise, at
    // every length that exercises a partial hardware wave (8 blocks in
    // flight) and a partial ttable lane pair.
    Rng rng(0x5EED);
    std::vector<u8> key(16);
    for (auto& b : key) b = rng.next_byte();
    const Aes aes(key, GetParam());
    for (const std::size_t n : {0u, 1u, 2u, 7u, 8u, 9u, 15u, 16u, 65u}) {
        std::vector<Block16> fused(n);
        aes.ctr_keystream(0xABCD'0000, 77, fused);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(fused[i], aes.encrypt_block(make_counter(0xABCD'0000, 77 + i)))
                << "block " << i << " of " << n;
    }
}

TEST_P(AesBackendTest, CtrKeystreamWrapsVnHalf)
{
    // The VN half wraps mod 2^64 (counter_add's contract); start counters
    // close enough to the edge that every batch shape crosses it.
    Rng rng(0x3A9);
    std::vector<u8> key(16);
    for (auto& b : key) b = rng.next_byte();
    const Aes aes(key, GetParam());
    for (const u64 before : {1u, 3u, 7u, 11u}) {
        const u64 vn = ~u64{0} - before + 1;  // wraps after `before` blocks
        std::vector<Block16> fused(24);
        aes.ctr_keystream(0x4000, vn, fused);
        for (std::size_t i = 0; i < fused.size(); ++i) {
            const u64 v = vn + i;  // u64 arithmetic wraps exactly like the spec
            EXPECT_EQ(fused[i], aes.encrypt_block(make_counter(0x4000, v)))
                << "block " << i << " from 2^64-" << before;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Kinds, AesBackendTest,
                         ::testing::ValuesIn(all_backend_kinds().begin(),
                                             all_backend_kinds().end()),
                         [](const auto& info) { return to_string(info.param); });

TEST(AesBackendCrossValidation, RandomKeysAndBlocksAgree)
{
    // >= 200 randomized (key, block) trials diffing every available backend
    // against the FIPS-197 scalar reference, across all three key sizes.
    Rng rng(0xC0DE);
    const auto kinds = available_backend_kinds();
    for (const std::size_t key_len : {16u, 24u, 32u}) {
        for (int trial = 0; trial < 16; ++trial) {
            std::vector<u8> key(key_len);
            for (auto& b : key) b = rng.next_byte();
            const Aes scalar(key, Aes_backend_kind::scalar);
            std::vector<Aes> others;
            for (const auto kind : kinds)
                if (kind != Aes_backend_kind::scalar) others.emplace_back(key, kind);
            for (int i = 0; i < 16; ++i) {
                Block16 p{};
                for (auto& b : p) b = rng.next_byte();
                const Block16 c = scalar.encrypt_block(p);
                EXPECT_EQ(scalar.decrypt_block(c), p);
                for (const Aes& aes : others) {
                    EXPECT_EQ(aes.encrypt_block(p), c) << aes.backend_name();
                    EXPECT_EQ(aes.decrypt_block(c), p) << aes.backend_name();
                }
            }
        }
    }
}

TEST(AesBackendCrossValidation, HardwareKeyExpansionMatchesPortable)
{
    // expand_round_keys dispatches AES-128 through aeskeygenassist when the
    // hardware is present; the schedule must be bit-identical to the
    // portable RotWord/SubWord/Rcon path for any key.  (On hosts without
    // AES-NI both calls take the portable path and this degenerates to a
    // determinism check.)
    Rng rng(0x4E5);
    for (int trial = 0; trial < 64; ++trial) {
        std::vector<u8> key(16);
        for (auto& b : key) b = rng.next_byte();
        EXPECT_EQ(expand_round_keys(key), expand_round_keys_portable(key));
    }
    for (const std::size_t key_len : {24u, 32u}) {
        std::vector<u8> key(key_len);
        for (auto& b : key) b = rng.next_byte();
        EXPECT_EQ(expand_round_keys(key), expand_round_keys_portable(key));
    }
}

TEST(AesBackendCrossValidation, SchedulesAgreeAcrossBackends)
{
    // The schedule is backend-independent; only the round implementation
    // differs.  B-AES depends on this: its pads come from round_keys().
    std::vector<u8> key(32);
    Rng rng(0x5EDA);
    for (auto& b : key) b = rng.next_byte();
    const Aes scalar(key, Aes_backend_kind::scalar);
    const Aes ttable(key, Aes_backend_kind::ttable);
    ASSERT_EQ(scalar.round_keys().size(), ttable.round_keys().size());
    for (std::size_t i = 0; i < scalar.round_keys().size(); ++i)
        EXPECT_EQ(scalar.round_keys()[i], ttable.round_keys()[i]);
    EXPECT_EQ(scalar.schedule().enc_words, ttable.schedule().enc_words);
    EXPECT_EQ(scalar.schedule().dec_words, ttable.schedule().dec_words);
}

TEST(AesBackendRegistry, NamesAndResolution)
{
    EXPECT_EQ(scalar_backend().name(), "scalar");
    EXPECT_EQ(ttable_backend().name(), "ttable");
    EXPECT_EQ(&backend_for(Aes_backend_kind::scalar), &scalar_backend());
    EXPECT_EQ(&backend_for(Aes_backend_kind::ttable), &ttable_backend());
    // auto_select resolves to the process-wide default.
    EXPECT_EQ(&backend_for(Aes_backend_kind::auto_select),
              &backend_for(default_backend_kind()));
    EXPECT_EQ(all_backend_kinds().size(), 3u);
    // scalar and ttable run anywhere; aesni mirrors the CPUID gate.
    EXPECT_TRUE(backend_available(Aes_backend_kind::scalar));
    EXPECT_TRUE(backend_available(Aes_backend_kind::ttable));
    EXPECT_EQ(backend_available(Aes_backend_kind::aesni), aesni_backend() != nullptr);
    if (aesni_backend() != nullptr) {
        EXPECT_EQ(aesni_backend()->name(), "aesni");
        EXPECT_EQ(&backend_for(Aes_backend_kind::aesni), aesni_backend());
    } else {
        // A hardware kind forced on a CPU without it degrades to ttable.
        EXPECT_EQ(&backend_for(Aes_backend_kind::aesni), &ttable_backend());
    }
}

TEST(AesBackendRegistry, AesReportsItsBackend)
{
    std::vector<u8> key(16, 0x42);
    EXPECT_EQ(Aes(key, Aes_backend_kind::scalar).backend_name(), "scalar");
    EXPECT_EQ(Aes(key, Aes_backend_kind::ttable).backend_name(), "ttable");
    if (backend_available(Aes_backend_kind::aesni)) {
        EXPECT_EQ(Aes(key, Aes_backend_kind::aesni).backend_name(), "aesni");
    }
}

}  // namespace
}  // namespace seda::crypto
