// Cross-validation of the pluggable AES backends: every backend must produce
// identical ciphertext from the same key schedule, on the FIPS-197 vectors
// and on randomized keys/blocks across all three key sizes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "crypto/aes.h"
#include "crypto/aes_backend.h"

namespace seda::crypto {
namespace {

std::vector<u8> from_hex(const std::string& hex)
{
    std::vector<u8> out;
    for (std::size_t i = 0; i + 1 < hex.size(); i += 2)
        out.push_back(static_cast<u8>(std::stoi(hex.substr(i, 2), nullptr, 16)));
    return out;
}

Block16 block_from_hex(const std::string& hex)
{
    const auto v = from_hex(hex);
    Block16 b{};
    std::copy(v.begin(), v.end(), b.begin());
    return b;
}

struct Fips_vector {
    const char* key;
    const char* plaintext;
    const char* ciphertext;
};

constexpr Fips_vector k_fips_vectors[] = {
    {"000102030405060708090a0b0c0d0e0f", "00112233445566778899aabbccddeeff",
     "69c4e0d86a7b0430d8cdb78070b4c55a"},
    {"000102030405060708090a0b0c0d0e0f1011121314151617",
     "00112233445566778899aabbccddeeff", "dda97ca4864cdfe06eaf70a0ec0d7191"},
    {"000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
     "00112233445566778899aabbccddeeff", "8ea2b7ca516745bfeafc49904b496089"},
};

class AesBackendTest : public ::testing::TestWithParam<Aes_backend_kind> {};

TEST_P(AesBackendTest, Fips197Vectors)
{
    for (const auto& v : k_fips_vectors) {
        const Aes aes(from_hex(v.key), GetParam());
        const Block16 p = block_from_hex(v.plaintext);
        const Block16 c = block_from_hex(v.ciphertext);
        EXPECT_EQ(aes.encrypt_block(p), c);
        EXPECT_EQ(aes.decrypt_block(c), p);
    }
}

TEST_P(AesBackendTest, EncryptDecryptRoundtripAllKeySizes)
{
    Rng rng(0xBAC0);
    for (const std::size_t key_len : {16u, 24u, 32u}) {
        std::vector<u8> key(key_len);
        for (auto& b : key) b = rng.next_byte();
        const Aes aes(key, GetParam());
        for (int i = 0; i < 64; ++i) {
            Block16 p{};
            for (auto& b : p) b = rng.next_byte();
            EXPECT_EQ(aes.decrypt_block(aes.encrypt_block(p)), p);
        }
    }
}

TEST_P(AesBackendTest, BulkMatchesBlockwise)
{
    Rng rng(0xB17E);
    std::vector<u8> key(16);
    for (auto& b : key) b = rng.next_byte();
    const Aes aes(key, GetParam());

    std::vector<Block16> blocks(67);  // odd count: exercises partial batches
    for (auto& blk : blocks)
        for (auto& b : blk) b = rng.next_byte();
    std::vector<Block16> bulk = blocks;
    aes.encrypt_blocks(bulk);
    for (std::size_t i = 0; i < blocks.size(); ++i)
        EXPECT_EQ(bulk[i], aes.encrypt_block(blocks[i])) << "block " << i;

    aes.decrypt_blocks(bulk);
    EXPECT_EQ(bulk, blocks);
}

INSTANTIATE_TEST_SUITE_P(Kinds, AesBackendTest,
                         ::testing::Values(Aes_backend_kind::scalar,
                                           Aes_backend_kind::ttable),
                         [](const auto& info) { return to_string(info.param); });

TEST(AesBackendCrossValidation, RandomKeysAndBlocksAgree)
{
    Rng rng(0xC0DE);
    for (const std::size_t key_len : {16u, 24u, 32u}) {
        for (int trial = 0; trial < 16; ++trial) {
            std::vector<u8> key(key_len);
            for (auto& b : key) b = rng.next_byte();
            const Aes scalar(key, Aes_backend_kind::scalar);
            const Aes ttable(key, Aes_backend_kind::ttable);
            for (int i = 0; i < 16; ++i) {
                Block16 p{};
                for (auto& b : p) b = rng.next_byte();
                const Block16 c = scalar.encrypt_block(p);
                EXPECT_EQ(ttable.encrypt_block(p), c);
                EXPECT_EQ(scalar.decrypt_block(c), p);
                EXPECT_EQ(ttable.decrypt_block(c), p);
            }
        }
    }
}

TEST(AesBackendCrossValidation, SchedulesAgreeAcrossBackends)
{
    // The schedule is backend-independent; only the round implementation
    // differs.  B-AES depends on this: its pads come from round_keys().
    std::vector<u8> key(32);
    Rng rng(0x5EDA);
    for (auto& b : key) b = rng.next_byte();
    const Aes scalar(key, Aes_backend_kind::scalar);
    const Aes ttable(key, Aes_backend_kind::ttable);
    ASSERT_EQ(scalar.round_keys().size(), ttable.round_keys().size());
    for (std::size_t i = 0; i < scalar.round_keys().size(); ++i)
        EXPECT_EQ(scalar.round_keys()[i], ttable.round_keys()[i]);
    EXPECT_EQ(scalar.schedule().enc_words, ttable.schedule().enc_words);
    EXPECT_EQ(scalar.schedule().dec_words, ttable.schedule().dec_words);
}

TEST(AesBackendRegistry, NamesAndResolution)
{
    EXPECT_EQ(scalar_backend().name(), "scalar");
    EXPECT_EQ(ttable_backend().name(), "ttable");
    EXPECT_EQ(&backend_for(Aes_backend_kind::scalar), &scalar_backend());
    EXPECT_EQ(&backend_for(Aes_backend_kind::ttable), &ttable_backend());
    // auto_select resolves to the process-wide default.
    EXPECT_EQ(&backend_for(Aes_backend_kind::auto_select),
              &backend_for(default_backend_kind()));
    EXPECT_EQ(all_backend_kinds().size(), 2u);
}

TEST(AesBackendRegistry, AesReportsItsBackend)
{
    std::vector<u8> key(16, 0x42);
    EXPECT_EQ(Aes(key, Aes_backend_kind::scalar).backend_name(), "scalar");
    EXPECT_EQ(Aes(key, Aes_backend_kind::ttable).backend_name(), "ttable");
}

}  // namespace
}  // namespace seda::crypto
