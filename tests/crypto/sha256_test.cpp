// FIPS 180-4 conformance of the from-scratch SHA-256.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "crypto/sha256.h"

namespace seda::crypto {
namespace {

std::vector<u8> bytes_of(const std::string& s)
{
    return {s.begin(), s.end()};
}

struct Sha_vector {
    const char* message;
    const char* digest_hex;
};

class Sha256VectorTest : public ::testing::TestWithParam<Sha_vector> {};

TEST_P(Sha256VectorTest, MatchesFips)
{
    const auto& v = GetParam();
    EXPECT_EQ(to_hex(sha256(bytes_of(v.message))), v.digest_hex);
}

INSTANTIATE_TEST_SUITE_P(
    Fips180, Sha256VectorTest,
    ::testing::Values(
        Sha_vector{"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
        Sha_vector{"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
        Sha_vector{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                   "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
        Sha_vector{"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
                   "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
                   "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"}));

TEST(Sha256, MillionAs)
{
    // FIPS 180-4 long vector: 1,000,000 repetitions of 'a'.
    Sha256 h;
    const std::vector<u8> chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i) h.update(chunk);
    EXPECT_EQ(to_hex(h.finish()),
              "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

class Sha256ChunkTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Sha256ChunkTest, IncrementalMatchesOneShot)
{
    Rng rng(0x5AA);
    std::vector<u8> data(1543);  // awkward non-aligned size
    for (auto& b : data) b = rng.next_byte();

    const auto oneshot = sha256(data);
    Sha256 h;
    std::span<const u8> rest = data;
    while (!rest.empty()) {
        const std::size_t take = std::min(rest.size(), GetParam());
        h.update(rest.first(take));
        rest = rest.subspan(take);
    }
    EXPECT_EQ(h.finish(), oneshot);
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, Sha256ChunkTest,
                         ::testing::Values(1u, 7u, 55u, 56u, 63u, 64u, 65u, 512u));

TEST(Sha256, ResetAllowsReuse)
{
    Sha256 h;
    h.update(bytes_of("abc"));
    const auto first = h.finish();  // finish() resets internally
    h.update(bytes_of("abc"));
    EXPECT_EQ(h.finish(), first);
}

TEST(Sha256, SensitiveToEveryBitFlip)
{
    Rng rng(77);
    std::vector<u8> data(64);
    for (auto& b : data) b = rng.next_byte();
    const auto base = sha256(data);
    for (const std::size_t byte : {0u, 31u, 63u}) {
        auto tampered = data;
        tampered[byte] ^= 0x80;
        EXPECT_NE(sha256(tampered), base) << "byte " << byte;
    }
}

TEST(ToHex, FormatsBytes)
{
    const std::vector<u8> v = {0x00, 0x0F, 0xAB, 0xFF};
    EXPECT_EQ(to_hex(v), "000fabff");
}

}  // namespace
}  // namespace seda::crypto
