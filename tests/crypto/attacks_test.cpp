// SECA and RePA: the attacks succeed against the vulnerable designs and
// fail against the SeDA defenses (Algorithms 1 and 2, both halves).
#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "core/secure_memory.h"
#include "crypto/attacks.h"
#include "crypto/baes.h"

namespace seda::crypto {
namespace {

std::vector<u8> test_key(u64 seed = 0xA77)
{
    std::vector<u8> key(16);
    Rng rng(seed);
    for (auto& b : key) b = rng.next_byte();
    return key;
}

TEST(SparsePlaintext, HasRequestedZeroFraction)
{
    Rng rng(1);
    const auto data = make_sparse_plaintext(16 * 1000, 0.7, rng);
    std::size_t zero_segments = 0;
    for (std::size_t s = 0; s < 1000; ++s) {
        bool all_zero = true;
        for (std::size_t i = 0; i < 16; ++i)
            if (data[16 * s + i] != 0) all_zero = false;
        if (all_zero) ++zero_segments;
    }
    EXPECT_GT(zero_segments, 650u);
    EXPECT_LT(zero_segments, 750u);
}

class SecaSparsityTest : public ::testing::TestWithParam<double> {};

TEST_P(SecaSparsityTest, SucceedsAgainstSharedOtp)
{
    Rng rng(33);
    const auto plain = make_sparse_plaintext(4096, GetParam(), rng);
    const Aes_ctr ctr(test_key());
    auto cipher = plain;
    ctr.crypt_shared_otp(cipher, 0x9000, 11);

    const auto r = seca_attack(cipher, Block16{}, plain);
    // With zeros the plurality value, the OTP recovers and with it every
    // segment of the unit.
    EXPECT_TRUE(r.success()) << "sparsity " << GetParam();
    EXPECT_EQ(r.recovered, r.segments);
    // The recovered OTP must equal the true pad.
    EXPECT_EQ(r.recovered_otp, ctr.otp(0x9000, 11));
}

INSTANTIATE_TEST_SUITE_P(Sparsities, SecaSparsityTest, ::testing::Values(0.4, 0.6, 0.8));

TEST(Seca, FailsAgainstBaes)
{
    Rng rng(34);
    const auto plain = make_sparse_plaintext(4096, 0.7, rng);
    const Baes_engine baes(test_key());
    auto cipher = plain;
    baes.crypt(cipher, 0x9000, 11);

    const auto r = seca_attack(cipher, Block16{}, plain);
    EXPECT_FALSE(r.success());
    // At most a handful of lucky segments (the one whose pad was inferred).
    EXPECT_LT(r.recovery_rate(), 0.05);
}

TEST(Seca, FailsAgainstStandardCtr)
{
    Rng rng(35);
    const auto plain = make_sparse_plaintext(4096, 0.7, rng);
    const Aes_ctr ctr(test_key());
    auto cipher = plain;
    ctr.crypt_standard(cipher, 0x9000, 11);

    const auto r = seca_attack(cipher, Block16{}, plain);
    EXPECT_FALSE(r.success());
}

TEST(Seca, WrongPriorDefeatsTheAttackEvenOnSharedOtp)
{
    Rng rng(36);
    const auto plain = make_sparse_plaintext(2048, 0.7, rng);
    const Aes_ctr ctr(test_key());
    auto cipher = plain;
    ctr.crypt_shared_otp(cipher, 0x9000, 11);

    Block16 wrong_guess{};
    wrong_guess[0] = 0xFF;  // attacker guesses the wrong frequent value
    const auto r = seca_attack(cipher, wrong_guess, plain);
    EXPECT_FALSE(r.success());
}

TEST(Seca, RejectsMismatchedLengths)
{
    const std::vector<u8> cipher(32);
    const std::vector<u8> plain(16);
    EXPECT_THROW((void)seca_attack(cipher, Block16{}, plain), Seda_error);
}

// ---------------------------------------------------------------- RePA ----

struct Repa_fixture {
    std::vector<std::vector<u8>> blocks;
    std::vector<Addr> addrs;
    std::vector<u64> vns;

    explicit Repa_fixture(std::size_t n, u64 seed = 0xEE)
    {
        Rng rng(seed);
        for (std::size_t i = 0; i < n; ++i) {
            std::vector<u8> blk(64);
            for (auto& b : blk) b = rng.next_byte();
            blocks.push_back(std::move(blk));
            addrs.push_back(0x8000'0000 + i * 64);
            vns.push_back(2);
        }
    }
};

class RepaSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RepaSizeTest, SucceedsAgainstNaiveXorMac)
{
    Repa_fixture fx(GetParam());
    Rng rng(501);
    const auto r = repa_attack(fx.blocks, fx.addrs, fx.vns, 3, test_key(),
                               Layer_mac_kind::naive_xor, rng);
    EXPECT_TRUE(r.verification_passed);
    EXPECT_FALSE(r.data_intact);
    EXPECT_TRUE(r.attack_succeeded());
}

TEST_P(RepaSizeTest, FailsAgainstPositionalMac)
{
    Repa_fixture fx(GetParam());
    Rng rng(502);
    const auto r = repa_attack(fx.blocks, fx.addrs, fx.vns, 3, test_key(),
                               Layer_mac_kind::positional_xor, rng);
    EXPECT_FALSE(r.verification_passed);
    EXPECT_FALSE(r.attack_succeeded());
}

INSTANTIATE_TEST_SUITE_P(LayerSizes, RepaSizeTest, ::testing::Values(2u, 8u, 64u, 256u));

TEST(Repa, RequiresAtLeastTwoBlocks)
{
    Repa_fixture fx(1);
    Rng rng(503);
    EXPECT_THROW((void)repa_attack(fx.blocks, fx.addrs, fx.vns, 3, test_key(),
                                   Layer_mac_kind::naive_xor, rng),
                 Seda_error);
}

// ------------------------------------------- splice / rollback primitives ----

std::vector<u8> unit_payload(u64 seed)
{
    Rng rng(seed);
    std::vector<u8> data(64);
    for (auto& b : data) b = rng.next_byte();
    return data;
}

TEST(SpliceUnit, AcrossKeysIsCaughtByTheMac)
{
    // Two tenants' memories, same address, same MAC context: the spliced
    // unit was minted under the donor's keys, so the victim's verifier
    // must reject it (and the victim's own copy verified before).
    core::Secure_memory victim(test_key(1), test_key(2));
    core::Secure_memory donor(test_key(3), test_key(4));
    constexpr Addr addr = 0x4000;
    victim.write(addr, unit_payload(10), 5, 1, 2);
    donor.write(addr, unit_payload(11), 5, 1, 2);

    std::vector<u8> out(64);
    ASSERT_EQ(victim.read(addr, out, 5, 1, 2), core::Verify_status::ok);

    splice_unit(victim, addr, donor, addr);
    EXPECT_EQ(victim.read(addr, out, 5, 1, 2), core::Verify_status::mac_mismatch);
}

TEST(SpliceUnit, AcrossAddressesIsCaughtByThePositionalMac)
{
    // Same memory, same keys, same context fields -- only the physical
    // address differs.  The positional MAC binds PA, so relocation fails.
    core::Secure_memory mem(test_key(5), test_key(6));
    mem.write(0x1000, unit_payload(20), 3, 0, 0);
    mem.write(0x2000, unit_payload(21), 3, 0, 0);

    splice_unit(mem, 0x1000, mem, 0x2000);
    std::vector<u8> out(64);
    EXPECT_EQ(mem.read(0x1000, out, 3, 0, 0), core::Verify_status::mac_mismatch);
    // The donor slot itself was only read, never altered.
    EXPECT_EQ(mem.read(0x2000, out, 3, 0, 0), core::Verify_status::ok);
}

TEST(SpliceUnit, RequiresAWrittenSource)
{
    core::Secure_memory mem(test_key(7), test_key(8));
    mem.write(0x1000, unit_payload(30), 1, 0, 0);
    EXPECT_THROW(splice_unit(mem, 0x1000, mem, 0x9999'0000), Seda_error);
}

TEST(RollbackCapsule, ReplayIsCaughtWithOnchipVns)
{
    core::Secure_memory mem(test_key(9), test_key(10));
    constexpr Addr addr = 0x3000;
    const auto v1 = unit_payload(40);
    mem.write(addr, v1, 2, 1, 0);

    Rollback_capsule capsule;
    EXPECT_FALSE(capsule.armed());
    capsule.capture(mem, addr);
    EXPECT_TRUE(capsule.armed());
    EXPECT_EQ(capsule.addr(), addr);

    mem.write(addr, unit_payload(41), 2, 1, 0);  // v2 bumps the on-chip VN
    capsule.replay(mem);

    std::vector<u8> out(64, 0xAA);
    EXPECT_EQ(mem.read(addr, out, 2, 1, 0), core::Verify_status::replay_detected);
    EXPECT_EQ(out, std::vector<u8>(64, 0xAA));  // stale plaintext never escapes
}

TEST(RollbackCapsule, ReplayWinsAgainstOffchipVns)
{
    // The strawman SeDA's on-chip VNs exist to kill: with the VN stored in
    // untrusted memory NEXT TO the unit, the capsule restores data, MAC
    // and VN together, and verification passes on stale data.
    core::Secure_memory::Config cfg;
    cfg.onchip_vns = false;
    core::Secure_memory mem(test_key(11), test_key(12), cfg);
    constexpr Addr addr = 0x3000;
    const auto v1 = unit_payload(50);
    mem.write(addr, v1, 2, 1, 0);

    Rollback_capsule capsule;
    capsule.capture(mem, addr);
    mem.write(addr, unit_payload(51), 2, 1, 0);
    capsule.replay(mem);

    std::vector<u8> out(64);
    EXPECT_EQ(mem.read(addr, out, 2, 1, 0), core::Verify_status::ok);
    EXPECT_EQ(out, v1);  // the rollback silently won
}

TEST(RollbackCapsule, ReplayBeforeCaptureThrows)
{
    core::Secure_memory mem(test_key(13), test_key(14));
    Rollback_capsule capsule;
    EXPECT_THROW(capsule.replay(mem), Seda_error);
}

}  // namespace
}  // namespace seda::crypto
