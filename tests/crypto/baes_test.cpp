// B-AES: SeDA's bandwidth-aware OTP fan-out (Fig. 3(a), Algorithm 1 defense).
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "crypto/baes.h"

namespace seda::crypto {
namespace {

std::vector<u8> test_key()
{
    std::vector<u8> key(16);
    Rng rng(0xBAE5);
    for (auto& b : key) b = rng.next_byte();
    return key;
}

TEST(Baes, NativeLaneCountIsRoundKeyCount)
{
    const Baes_engine baes(test_key());
    EXPECT_EQ(baes.native_lanes(), 11u);  // AES-128: 10 rounds + initial key
}

class BaesLaneTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BaesLaneTest, AllPadsDistinct)
{
    const Baes_engine baes(test_key());
    const auto pads = baes.otps(0x4000, 9, GetParam());
    ASSERT_EQ(pads.size(), GetParam());
    std::set<Block16> unique(pads.begin(), pads.end());
    EXPECT_EQ(unique.size(), pads.size());
}

TEST_P(BaesLaneTest, PadsAreDeterministic)
{
    const Baes_engine baes(test_key());
    EXPECT_EQ(baes.otps(0x4000, 9, GetParam()), baes.otps(0x4000, 9, GetParam()));
}

TEST_P(BaesLaneTest, PadsChangeWithVn)
{
    const Baes_engine baes(test_key());
    const auto a = baes.otps(0x4000, 9, GetParam());
    const auto b = baes.otps(0x4000, 10, GetParam());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NE(a[i], b[i]) << "lane " << i;
}

// 4 lanes = one 64 B unit; 32 lanes = 512 B unit; 40 exceeds the native
// round-key bank and exercises the extended keyExpansion path.
INSTANTIATE_TEST_SUITE_P(LaneCounts, BaesLaneTest, ::testing::Values(1u, 4u, 11u, 32u, 40u));

TEST(Baes, PadIsBaseOtpXorRoundKey)
{
    const auto key = test_key();
    const Baes_engine baes(key);
    const Aes_ctr ctr(key);
    const Block16 base = ctr.otp(0x8000, 3);
    const auto pads = baes.otps(0x8000, 3, 4);
    const auto rks = ctr.engine().round_keys();
    for (std::size_t i = 0; i < pads.size(); ++i)
        EXPECT_EQ(pads[i], xor_blocks(base, rks[i])) << "lane " << i;
}

TEST(Baes, CryptRoundtrip)
{
    const Baes_engine baes(test_key());
    Rng rng(5);
    for (const std::size_t n : {16u, 64u, 100u, 512u, 1024u}) {
        std::vector<u8> data(n);
        for (auto& b : data) b = rng.next_byte();
        const auto original = data;
        baes.crypt(data, 0xC000, 2);
        EXPECT_NE(data, original) << n;
        baes.crypt(data, 0xC000, 2);
        EXPECT_EQ(data, original) << n;
    }
}

TEST(Baes, SegmentsOfEqualPlaintextEncryptDifferently)
{
    // The whole point of the defense: equal plaintext segments within one
    // protected unit must not collide in ciphertext.
    const Baes_engine baes(test_key());
    std::vector<u8> zeros(512, 0);
    baes.crypt(zeros, 0xD000, 1);
    std::set<Block16> segments;
    for (std::size_t s = 0; s < zeros.size() / 16; ++s) {
        Block16 seg{};
        std::copy_n(zeros.begin() + static_cast<std::ptrdiff_t>(16 * s), 16, seg.begin());
        segments.insert(seg);
    }
    EXPECT_EQ(segments.size(), zeros.size() / 16);
}

TEST(Baes, OtpsManyMatchesScalarOtpLoop)
{
    const auto key = test_key();
    const Baes_engine baes(key);
    Rng rng(0x07B5);
    std::vector<Baes_engine::Otp_request> reqs;
    for (std::size_t i = 0; i < 97; ++i)  // odd count: no clean batch boundary
        reqs.push_back({rng.next_u64() & 0xFFFF'FFC0ULL, rng.next_below(1000)});
    std::vector<Block16> bases(reqs.size());
    baes.otps_many(reqs, bases);
    for (std::size_t i = 0; i < reqs.size(); ++i)
        EXPECT_EQ(bases[i], baes.ctr().otp(reqs[i].pa, reqs[i].vn)) << "unit " << i;
}

TEST(Baes, CryptWithBaseMatchesCryptWith)
{
    const Baes_engine baes(test_key());
    Rng rng(0xC0DE);
    // 64 B = the protected-unit case; 512 B exercises the derived banks.
    for (const std::size_t n : {64u, 100u, 512u}) {
        std::vector<u8> via_crypt(n), via_base(n);
        for (std::size_t i = 0; i < n; ++i) via_crypt[i] = via_base[i] = rng.next_byte();
        const Addr pa = 0xE000;
        const u64 vn = 7;
        std::vector<Block16> pads;
        baes.crypt_with(via_crypt, pa, vn, pads);
        const Block16 base = baes.ctr().otp(pa, vn);
        baes.crypt_with_base(via_base, pa, vn, base, pads);
        EXPECT_EQ(via_base, via_crypt) << n;
    }
}

TEST(Baes, OtpsManySizeMismatchThrows)
{
    const Baes_engine baes(test_key());
    const std::vector<Baes_engine::Otp_request> reqs(3);
    std::vector<Block16> bases(2);
    EXPECT_THROW(baes.otps_many(reqs, bases), Seda_error);
}

TEST(Baes, ExtendedBankDiffersFromPrimary)
{
    const Baes_engine baes(test_key());
    // Lane 11+ comes from the re-keyed expansion (key xor (PA||VN) xor bank).
    const auto pads = baes.otps(0x1000, 1, 22);
    std::set<Block16> unique(pads.begin(), pads.end());
    EXPECT_EQ(unique.size(), 22u);
}

}  // namespace
}  // namespace seda::crypto
