// FIPS-197 conformance and structural properties of the AES implementation.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <numeric>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "crypto/aes.h"

namespace seda::crypto {
namespace {

std::vector<u8> from_hex(const std::string& hex)
{
    std::vector<u8> out;
    for (std::size_t i = 0; i + 1 < hex.size(); i += 2)
        out.push_back(static_cast<u8>(std::stoi(hex.substr(i, 2), nullptr, 16)));
    return out;
}

Block16 block_from_hex(const std::string& hex)
{
    const auto v = from_hex(hex);
    Block16 b{};
    std::copy(v.begin(), v.end(), b.begin());
    return b;
}

// --- S-box -----------------------------------------------------------------

TEST(AesSbox, KnownValues)
{
    // Anchor values from the FIPS-197 S-box table.
    EXPECT_EQ(aes_sbox_value(0x00), 0x63);
    EXPECT_EQ(aes_sbox_value(0x01), 0x7C);
    EXPECT_EQ(aes_sbox_value(0x53), 0xED);
    EXPECT_EQ(aes_sbox_value(0xFF), 0x16);
    EXPECT_EQ(aes_sbox_value(0x10), 0xCA);
}

TEST(AesSbox, IsBijective)
{
    std::array<bool, 256> seen{};
    for (int i = 0; i < 256; ++i) seen[aes_sbox_value(static_cast<u8>(i))] = true;
    EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(GfMul, FieldProperties)
{
    // 1 is the multiplicative identity; multiplication is commutative.
    Rng rng(1);
    for (int i = 0; i < 200; ++i) {
        const u8 a = rng.next_byte();
        const u8 b = rng.next_byte();
        EXPECT_EQ(gf_mul(a, 1), a);
        EXPECT_EQ(gf_mul(a, b), gf_mul(b, a));
    }
    // Known product from FIPS-197 sec. 4.2: {57} x {83} = {c1}.
    EXPECT_EQ(gf_mul(0x57, 0x83), 0xC1);
    // xtime chain: {57} x {13} = {fe}.
    EXPECT_EQ(gf_mul(0x57, 0x13), 0xFE);
}

// --- FIPS-197 appendix C vectors --------------------------------------------

struct Fips_vector {
    const char* key;
    const char* plaintext;
    const char* ciphertext;
};

class AesFipsTest : public ::testing::TestWithParam<Fips_vector> {};

TEST_P(AesFipsTest, EncryptMatchesVector)
{
    const auto& v = GetParam();
    const Aes aes(from_hex(v.key));
    EXPECT_EQ(aes.encrypt_block(block_from_hex(v.plaintext)), block_from_hex(v.ciphertext));
}

TEST_P(AesFipsTest, DecryptMatchesVector)
{
    const auto& v = GetParam();
    const Aes aes(from_hex(v.key));
    EXPECT_EQ(aes.decrypt_block(block_from_hex(v.ciphertext)), block_from_hex(v.plaintext));
}

INSTANTIATE_TEST_SUITE_P(
    Fips197, AesFipsTest,
    ::testing::Values(
        Fips_vector{"000102030405060708090a0b0c0d0e0f", "00112233445566778899aabbccddeeff",
                    "69c4e0d86a7b0430d8cdb78070b4c55a"},
        Fips_vector{"000102030405060708090a0b0c0d0e0f1011121314151617",
                    "00112233445566778899aabbccddeeff",
                    "dda97ca4864cdfe06eaf70a0ec0d7191"},
        Fips_vector{"000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
                    "00112233445566778899aabbccddeeff",
                    "8ea2b7ca516745bfeafc49904b496089"}));

// --- structural properties ---------------------------------------------------

class AesKeySizeTest : public ::testing::TestWithParam<int> {};

TEST_P(AesKeySizeTest, EncryptDecryptRoundtrip)
{
    Rng rng(0xAE5);
    std::vector<u8> key(static_cast<std::size_t>(GetParam()));
    for (auto& b : key) b = rng.next_byte();
    const Aes aes(key);
    for (int i = 0; i < 64; ++i) {
        Block16 p{};
        for (auto& b : p) b = rng.next_byte();
        EXPECT_EQ(aes.decrypt_block(aes.encrypt_block(p)), p);
    }
}

TEST_P(AesKeySizeTest, RoundKeyCountMatchesRounds)
{
    std::vector<u8> key(static_cast<std::size_t>(GetParam()), 0x42);
    const Aes aes(key);
    EXPECT_EQ(aes.round_keys().size(), static_cast<std::size_t>(aes.rounds()) + 1);
    const int expected_rounds = GetParam() == 16 ? 10 : GetParam() == 24 ? 12 : 14;
    EXPECT_EQ(aes.rounds(), expected_rounds);
}

TEST_P(AesKeySizeTest, RoundKeysAreDistinct)
{
    // A random key: a repeated-byte AES-256 key would make rk0 == rk1 by
    // construction (they are the two key halves).
    Rng rng(0xD15);
    std::vector<u8> key(static_cast<std::size_t>(GetParam()));
    for (auto& b : key) b = rng.next_byte();
    const Aes aes(key);
    const auto rks = aes.round_keys();
    for (std::size_t i = 0; i < rks.size(); ++i)
        for (std::size_t j = i + 1; j < rks.size(); ++j) EXPECT_NE(rks[i], rks[j]);
}

INSTANTIATE_TEST_SUITE_P(KeySizes, AesKeySizeTest, ::testing::Values(16, 24, 32));

TEST(Aes, FirstRoundKeyIsTheKey)
{
    std::vector<u8> key(16);
    std::iota(key.begin(), key.end(), u8{0});
    const Aes aes(key);
    const auto rk0 = aes.round_keys()[0];
    EXPECT_TRUE(std::equal(key.begin(), key.end(), rk0.begin()));
}

TEST(Aes, RejectsBadKeySizes)
{
    for (const std::size_t n : {0u, 1u, 15u, 17u, 31u, 33u, 64u}) {
        std::vector<u8> key(n, 0);
        EXPECT_THROW(Aes{key}, Seda_error) << "key size " << n;
    }
}

TEST(Aes, AvalancheOnPlaintextBit)
{
    std::vector<u8> key(16, 0x5A);
    const Aes aes(key);
    Block16 p{};
    const Block16 c0 = aes.encrypt_block(p);
    p[0] ^= 0x01;
    const Block16 c1 = aes.encrypt_block(p);
    int diff_bits = 0;
    for (std::size_t i = 0; i < c0.size(); ++i)
        diff_bits += std::popcount(static_cast<unsigned>(c0[i] ^ c1[i]));
    // A single flipped input bit should flip roughly half the output bits.
    EXPECT_GT(diff_bits, 40);
    EXPECT_LT(diff_bits, 90);
}

TEST(XorBlocks, IsSelfInverse)
{
    Rng rng(9);
    Block16 a{};
    Block16 b{};
    for (auto& x : a) x = rng.next_byte();
    for (auto& x : b) x = rng.next_byte();
    EXPECT_EQ(xor_blocks(xor_blocks(a, b), b), a);
    EXPECT_EQ(xor_blocks(a, a), Block16{});
}

}  // namespace
}  // namespace seda::crypto
