// The 28 nm crypto hardware model behind Fig. 4.
#include <gtest/gtest.h>

#include "common/error.h"
#include "crypto/engine_model.h"

namespace seda::crypto {
namespace {

TEST(EngineModel, SingleEngineCostsAreEqual)
{
    const auto t = t_aes_cost(1.0);
    const auto b = b_aes_cost(1.0);
    EXPECT_DOUBLE_EQ(t.area_um2, b.area_um2);
    EXPECT_DOUBLE_EQ(t.power_uw, b.power_uw);
    EXPECT_EQ(b.xor_lanes, 0);
}

TEST(EngineModel, TAesGrowsLinearly)
{
    const auto c1 = t_aes_cost(1.0);
    for (int n = 2; n <= 8; ++n) {
        const auto cn = t_aes_cost(n);
        EXPECT_DOUBLE_EQ(cn.area_um2, n * c1.area_um2);
        EXPECT_DOUBLE_EQ(cn.power_uw, n * c1.power_uw);
        EXPECT_EQ(cn.aes_engines, n);
    }
}

TEST(EngineModel, BAesStaysNearlyFlat)
{
    const auto b1 = b_aes_cost(1.0);
    const auto b8 = b_aes_cost(8.0);
    // Paper claim: minimal increase with bandwidth.  Assert < 35% growth at
    // 8x where T-AES grows 700%.
    EXPECT_LT(b8.area_um2, 1.35 * b1.area_um2);
    EXPECT_LT(b8.power_uw, 1.10 * b1.power_uw);
    EXPECT_EQ(b8.aes_engines, 1);
    EXPECT_EQ(b8.xor_lanes, 7);
}

TEST(EngineModel, BAesBeatsTAesBeyondOneEngine)
{
    for (double m = 1.5; m <= 8.0; m += 0.5) {
        EXPECT_LT(b_aes_cost(m).area_um2, t_aes_cost(m).area_um2) << m;
        EXPECT_LT(b_aes_cost(m).power_uw, t_aes_cost(m).power_uw) << m;
    }
}

TEST(EngineModel, FractionalDemandRoundsUp)
{
    EXPECT_EQ(t_aes_cost(2.2).aes_engines, 3);
    EXPECT_EQ(b_aes_cost(2.2).xor_lanes, 2);
}

TEST(EngineModel, Fig4AxisAnchors)
{
    // The paper's Fig. 4 axes peak near 45k um^2 / 24k uW at the 8x point.
    const auto t8 = t_aes_cost(8.0);
    EXPECT_NEAR(t8.area_um2, 45000.0, 2000.0);
    EXPECT_NEAR(t8.power_uw, 24000.0, 2000.0);
}

TEST(EngineModel, ThroughputScalesWithLanes)
{
    EXPECT_DOUBLE_EQ(crypto_bytes_per_cycle(1), 16.0);
    EXPECT_DOUBLE_EQ(crypto_bytes_per_cycle(4), 64.0);
}

TEST(EngineModel, RequiredEquivalents)
{
    EXPECT_EQ(required_engine_equivalents(16.0), 1);
    EXPECT_EQ(required_engine_equivalents(16.1), 2);
    EXPECT_EQ(required_engine_equivalents(20.0), 2);
    EXPECT_EQ(required_engine_equivalents(128.0), 8);
}

TEST(EngineModel, RejectsBadInputs)
{
    EXPECT_THROW((void)t_aes_cost(0.0), Seda_error);
    EXPECT_THROW((void)b_aes_cost(-1.0), Seda_error);
    EXPECT_THROW((void)crypto_bytes_per_cycle(0), Seda_error);
    EXPECT_THROW((void)required_engine_equivalents(0.0), Seda_error);
}

}  // namespace
}  // namespace seda::crypto
