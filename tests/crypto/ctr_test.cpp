// AES-CTR mode: NIST SP 800-38A conformance and the counter layout / OTP
// disciplines the paper builds on (Eq. 1 / Eq. 2).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "crypto/ctr.h"

namespace seda::crypto {
namespace {

std::vector<u8> from_hex(const std::string& hex)
{
    std::vector<u8> out;
    for (std::size_t i = 0; i + 1 < hex.size(); i += 2)
        out.push_back(static_cast<u8>(std::stoi(hex.substr(i, 2), nullptr, 16)));
    return out;
}

TEST(Counter, LayoutIsPaConcatVn)
{
    const Block16 c = make_counter(0x0102030405060708ULL, 0x1112131415161718ULL);
    // Big-endian PA in bytes 0..7, VN in bytes 8..15 (PA || VN).
    EXPECT_EQ(c[0], 0x01);
    EXPECT_EQ(c[7], 0x08);
    EXPECT_EQ(c[8], 0x11);
    EXPECT_EQ(c[15], 0x18);
}

TEST(Counter, AddAffectsVnHalfOnly)
{
    const Block16 base = make_counter(0xAAAA, 5);
    const Block16 plus = counter_add(base, 3);
    EXPECT_EQ(plus, make_counter(0xAAAA, 8));
    // PA half untouched.
    for (int i = 0; i < 8; ++i) EXPECT_EQ(base[static_cast<std::size_t>(i)], plus[static_cast<std::size_t>(i)]);
}

TEST(Counter, AddWrapsVn)
{
    const Block16 base = make_counter(1, ~0ULL);
    const Block16 plus = counter_add(base, 1);
    EXPECT_EQ(plus, make_counter(1, 0));
}

// NIST SP 800-38A F.5.1 (AES-128-CTR).  The standard's 128-bit counter is
// our PA||VN split at the 64-bit boundary.
TEST(AesCtr, Sp80038aVector)
{
    const Aes aes(from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
    // Counter block f0f1f2f3f4f5f6f7 f8f9fafbfcfdfeff.
    const Addr pa = 0xf0f1f2f3f4f5f6f7ULL;
    const u64 vn = 0xf8f9fafbfcfdfeffULL;

    const auto plaintext = from_hex(
        "6bc1bee22e409f96e93d7e117393172a"
        "ae2d8a571e03ac9c9eb76fac45af8e51"
        "30c81c46a35ce411e5fbc1191a0a52ef"
        "f69f2445df4f9b17ad2b417be66c3710");
    const auto expected = from_hex(
        "874d6191b620e3261bef6864990db6ce"
        "9806f66b7970fdff8617187bb9fffdff"
        "5ae4df3edbd5d35e5b4f09020db03eab"
        "1e031dda2fbe03d1792170a0f3009cee");

    Aes_ctr ctr(from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
    auto data = plaintext;
    ctr.crypt_standard(data, pa, vn);
    EXPECT_EQ(data, expected);
    (void)aes;
}

TEST(AesCtr, Sp80038aVectorAes192)
{
    // SP 800-38A F.5.3, first block.
    Aes_ctr ctr(from_hex("8e73b0f7da0e6452c810f32b809079e562f8ead2522c6b7b"));
    auto data = from_hex("6bc1bee22e409f96e93d7e117393172a");
    ctr.crypt_standard(data, 0xf0f1f2f3f4f5f6f7ULL, 0xf8f9fafbfcfdfeffULL);
    EXPECT_EQ(data, from_hex("1abc932417521ca24f2b0459fe7e6e0b"));
}

TEST(AesCtr, Sp80038aVectorAes256)
{
    // SP 800-38A F.5.5, first block.
    Aes_ctr ctr(from_hex(
        "603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4"));
    auto data = from_hex("6bc1bee22e409f96e93d7e117393172a");
    ctr.crypt_standard(data, 0xf0f1f2f3f4f5f6f7ULL, 0xf8f9fafbfcfdfeffULL);
    EXPECT_EQ(data, from_hex("601ec313775789a5b7a7f504bbf3d228"));
}

TEST(AesCtr, StandardCryptRoundtrip)
{
    Rng rng(21);
    std::vector<u8> key(16);
    for (auto& b : key) b = rng.next_byte();
    const Aes_ctr ctr(key);

    for (const std::size_t n : {1u, 15u, 16u, 17u, 64u, 100u, 512u}) {
        std::vector<u8> data(n);
        for (auto& b : data) b = rng.next_byte();
        const auto original = data;
        ctr.crypt_standard(data, 0x1000, 7);
        if (n > 4) {
            EXPECT_NE(data, original) << n;
        }
        ctr.crypt_standard(data, 0x1000, 7);
        EXPECT_EQ(data, original) << n;
    }
}

TEST(AesCtr, SharedOtpRepeatsPadAcrossSegments)
{
    std::vector<u8> key(16, 0x11);
    const Aes_ctr ctr(key);
    std::vector<u8> zeros(64, 0);
    ctr.crypt_shared_otp(zeros, 0x2000, 3);
    // Encrypting zeros exposes the pad; all four segments must be equal --
    // exactly the weakness SECA exploits.
    for (int seg = 1; seg < 4; ++seg)
        for (int i = 0; i < 16; ++i)
            EXPECT_EQ(zeros[static_cast<std::size_t>(16 * seg + i)],
                      zeros[static_cast<std::size_t>(i)]);
}

TEST(AesCtr, StandardModeUsesDistinctPads)
{
    std::vector<u8> key(16, 0x11);
    const Aes_ctr ctr(key);
    std::vector<u8> zeros(64, 0);
    ctr.crypt_standard(zeros, 0x2000, 3);
    Block16 seg0{};
    Block16 seg1{};
    std::copy_n(zeros.begin(), 16, seg0.begin());
    std::copy_n(zeros.begin() + 16, 16, seg1.begin());
    EXPECT_NE(seg0, seg1);
}

TEST(AesCtr, OtpMatchesManualEncryption)
{
    std::vector<u8> key(16, 0x3C);
    const Aes_ctr ctr(key);
    const Aes aes(key);
    EXPECT_EQ(ctr.otp(0xBEEF, 9), aes.encrypt_block(make_counter(0xBEEF, 9)));
}

TEST(AesCtr, DifferentVnGivesDifferentCiphertext)
{
    std::vector<u8> key(16, 0x77);
    const Aes_ctr ctr(key);
    std::vector<u8> a(32, 0xAB);
    std::vector<u8> b(32, 0xAB);
    ctr.crypt_standard(a, 0x100, 1);
    ctr.crypt_standard(b, 0x100, 2);
    EXPECT_NE(a, b);  // VN bump re-keys the pad: temporal uniqueness
}

TEST(AesCtr, DifferentPaGivesDifferentCiphertext)
{
    std::vector<u8> key(16, 0x77);
    const Aes_ctr ctr(key);
    std::vector<u8> a(32, 0xAB);
    std::vector<u8> b(32, 0xAB);
    ctr.crypt_standard(a, 0x100, 1);
    ctr.crypt_standard(b, 0x140, 1);
    EXPECT_NE(a, b);  // spatial uniqueness
}

// --- bulk keystream ----------------------------------------------------------

class AesCtrBulkTest : public ::testing::TestWithParam<Aes_backend_kind> {};

TEST_P(AesCtrBulkTest, BulkMatchesStandardOnOddLengths)
{
    Rng rng(0xB01C);
    std::vector<u8> key(16);
    for (auto& b : key) b = rng.next_byte();
    const Aes_ctr ctr(key, GetParam());

    // Ragged lengths around the 16 B segment size, one batch boundary
    // (32 blocks = 512 B) and a multi-batch tile.
    for (const std::size_t n : {1u, 15u, 16u, 17u, 31u, 100u, 511u, 512u, 513u, 4096u}) {
        std::vector<u8> plain(n);
        for (auto& b : plain) b = rng.next_byte();
        std::vector<u8> blockwise = plain;
        std::vector<u8> bulk = plain;
        ctr.crypt_standard(blockwise, 0x7000, 42);
        ctr.crypt_bulk(bulk, 0x7000, 42);
        EXPECT_EQ(bulk, blockwise) << "length " << n;

        // CTR is an involution: bulk decrypt recovers the plaintext.
        ctr.crypt_bulk(bulk, 0x7000, 42);
        EXPECT_EQ(bulk, plain) << "length " << n;
    }
}

TEST_P(AesCtrBulkTest, BulkHandlesVnWraparound)
{
    std::vector<u8> key(16, 0x2B);
    const Aes_ctr ctr(key, GetParam());
    std::vector<u8> blockwise(64, 0x5A);
    std::vector<u8> bulk = blockwise;
    // VN at the top of the 64-bit space: segment counters wrap mod 2^64.
    ctr.crypt_standard(blockwise, 0x100, ~0ULL - 1);
    ctr.crypt_bulk(bulk, 0x100, ~0ULL - 1);
    EXPECT_EQ(bulk, blockwise);
}

INSTANTIATE_TEST_SUITE_P(Kinds, AesCtrBulkTest,
                         ::testing::Values(Aes_backend_kind::scalar,
                                           Aes_backend_kind::ttable),
                         [](const auto& info) { return to_string(info.param); });

TEST(AesCtrBulk, BackendsProduceIdenticalCiphertext)
{
    Rng rng(0xFEED);
    std::vector<u8> key(32);
    for (auto& b : key) b = rng.next_byte();
    const Aes_ctr scalar(key, Aes_backend_kind::scalar);
    const Aes_ctr ttable(key, Aes_backend_kind::ttable);
    std::vector<u8> a(4096);
    for (auto& b : a) b = rng.next_byte();
    std::vector<u8> b = a;
    scalar.crypt_bulk(a, 0x9000, 7);
    ttable.crypt_bulk(b, 0x9000, 7);
    EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace seda::crypto
