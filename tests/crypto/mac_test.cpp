// HMAC-SHA256 (RFC 4231 vectors), the 64-bit block MACs and XOR-MAC folding.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "crypto/mac.h"

namespace seda::crypto {
namespace {

std::vector<u8> from_hex(const std::string& hex)
{
    std::vector<u8> out;
    for (std::size_t i = 0; i + 1 < hex.size(); i += 2)
        out.push_back(static_cast<u8>(std::stoi(hex.substr(i, 2), nullptr, 16)));
    return out;
}

struct Hmac_vector {
    const char* key_hex;
    const char* data_hex;
    const char* mac_hex;
};

class HmacVectorTest : public ::testing::TestWithParam<Hmac_vector> {};

TEST_P(HmacVectorTest, MatchesRfc4231)
{
    const auto& v = GetParam();
    const auto mac = hmac_sha256(from_hex(v.key_hex), from_hex(v.data_hex));
    EXPECT_EQ(to_hex(mac), v.mac_hex);
}

INSTANTIATE_TEST_SUITE_P(
    Rfc4231, HmacVectorTest,
    ::testing::Values(
        // Case 1: key = 20 x 0x0b, data = "Hi There".
        Hmac_vector{"0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b", "4869205468657265",
                    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"},
        // Case 2: key = "Jefe", data = "what do ya want for nothing?".
        Hmac_vector{"4a656665",
                    "7768617420646f2079612077616e7420666f72206e6f7468696e673f",
                    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"},
        // Case 3: key = 20 x 0xaa, data = 50 x 0xdd.
        Hmac_vector{"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
                    "dddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddd"
                    "dddddddddddddddddddddddddddddddddddd",
                    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"},
        // Case 6: 131-byte key (hashed first), data = "Test Using Larger..."
        Hmac_vector{"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
                    "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
                    "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
                    "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
                    "aaaaaa",
                    "54657374205573696e67204c6172676572205468616e20426c6f636b2d53697a"
                    "65204b6579202d2048617368204b6579204669727374",
                    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"}));

TEST(Mac64, NaiveAndPositionalDiffer)
{
    const std::vector<u8> key(16, 0x10);
    const std::vector<u8> block(64, 0x42);
    const Mac_context ctx{0x1000, 1, 2, 3, 4};
    EXPECT_NE(naive_block_mac(key, block), positional_block_mac(key, block, ctx));
}

TEST(Mac64, PositionalBindsEveryContextField)
{
    const std::vector<u8> key(16, 0x10);
    const std::vector<u8> block(64, 0x42);
    const Mac_context base{0x1000, 7, 2, 3, 4};
    const u64 m0 = positional_block_mac(key, block, base);

    Mac_context c = base;
    c.pa += 64;
    EXPECT_NE(positional_block_mac(key, block, c), m0) << "pa";
    c = base;
    c.vn += 1;
    EXPECT_NE(positional_block_mac(key, block, c), m0) << "vn";
    c = base;
    c.layer_id += 1;
    EXPECT_NE(positional_block_mac(key, block, c), m0) << "layer";
    c = base;
    c.fmap_idx += 1;
    EXPECT_NE(positional_block_mac(key, block, c), m0) << "fmap";
    c = base;
    c.blk_idx += 1;
    EXPECT_NE(positional_block_mac(key, block, c), m0) << "blk";
}

TEST(Mac64, SensitiveToCiphertext)
{
    const std::vector<u8> key(16, 0x10);
    std::vector<u8> block(64, 0x42);
    const Mac_context ctx{0x1000, 1, 2, 3, 4};
    const u64 m0 = positional_block_mac(key, block, ctx);
    block[63] ^= 0x01;
    EXPECT_NE(positional_block_mac(key, block, ctx), m0);
}

TEST(Mac64, KeyedMacsDiffer)
{
    const std::vector<u8> k1(16, 0x10);
    const std::vector<u8> k2(16, 0x11);
    const std::vector<u8> block(64, 0x42);
    EXPECT_NE(naive_block_mac(k1, block), naive_block_mac(k2, block));
}

TEST(XorMac, FoldIsOrderInvariant)
{
    // This very property is what RePA exploits -- asserted here explicitly,
    // and defended against by the positional MAC (see attacks_test.cpp).
    Rng rng(4);
    std::vector<u64> macs(16);
    for (auto& m : macs) m = rng.next_u64();

    Xor_mac_accumulator forward;
    for (u64 m : macs) forward.fold(m);
    Xor_mac_accumulator backward;
    for (auto it = macs.rbegin(); it != macs.rend(); ++it) backward.fold(*it);
    EXPECT_EQ(forward.value(), backward.value());
    EXPECT_EQ(forward.count(), backward.count());
}

TEST(XorMac, UnfoldRemovesABlock)
{
    Rng rng(8);
    std::vector<u64> macs(8);
    for (auto& m : macs) m = rng.next_u64();

    Xor_mac_accumulator acc;
    for (u64 m : macs) acc.fold(m);
    // Incremental update: replace block 3.
    const u64 new_mac = rng.next_u64();
    acc.unfold(macs[3]);
    acc.fold(new_mac);

    Xor_mac_accumulator expect;
    for (std::size_t i = 0; i < macs.size(); ++i) expect.fold(i == 3 ? new_mac : macs[i]);
    EXPECT_EQ(acc.value(), expect.value());
}

TEST(XorMac, FoldHelperMatchesAccumulator)
{
    Rng rng(15);
    std::vector<u64> macs(32);
    for (auto& m : macs) m = rng.next_u64();
    Xor_mac_accumulator acc;
    for (u64 m : macs) acc.fold(m);
    EXPECT_EQ(xor_fold(macs), acc.value());
}

TEST(XorMac, EmptyFoldIsZero)
{
    EXPECT_EQ(xor_fold({}), 0u);
    Xor_mac_accumulator acc;
    EXPECT_EQ(acc.value(), 0u);
    EXPECT_EQ(acc.count(), 0u);
}

TEST(XorMac, ResetClears)
{
    Xor_mac_accumulator acc;
    acc.fold(0x1234);
    acc.reset();
    EXPECT_EQ(acc.value(), 0u);
    EXPECT_EQ(acc.count(), 0u);
}

}  // namespace
}  // namespace seda::crypto
