// CTR-mode malleability: why confidentiality alone is not enough.
//
// AES-CTR ciphertext is XOR-malleable: flipping a ciphertext bit flips the
// same plaintext bit, deterministically, without knowing the key.  An
// attacker who knows a weight tensor's layout can therefore make *targeted*
// model edits through the encryption -- the "malicious tampering" arrow in
// Fig. 1(b).  Only the MAC layer catches it, which is why every scheme in
// Table III pairs AES-CTR with integrity verification.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "core/secure_memory.h"
#include "crypto/baes.h"

namespace seda::crypto {
namespace {

TEST(Malleability, BitFlipInCiphertextFlipsSamePlaintextBit)
{
    Rng rng(0xFA11);
    std::vector<u8> key(16);
    for (auto& b : key) b = rng.next_byte();
    const Baes_engine baes(key);

    std::vector<u8> plain(64);
    for (auto& b : plain) b = rng.next_byte();
    auto cipher = plain;
    baes.crypt(cipher, 0x1000, 1);

    // Attacker flips bit 3 of byte 10 in the ciphertext, key-free.
    cipher[10] ^= 0x08;
    baes.crypt(cipher, 0x1000, 1);  // victim decrypts

    for (std::size_t i = 0; i < plain.size(); ++i) {
        if (i == 10)
            EXPECT_EQ(cipher[i], plain[i] ^ 0x08);  // targeted edit landed
        else
            EXPECT_EQ(cipher[i], plain[i]);  // everything else untouched
    }
}

TEST(Malleability, KnownPlaintextRewrite)
{
    // Stronger: with known plaintext the attacker rewrites a weight to an
    // arbitrary chosen value: c' = c ^ old ^ new.
    Rng rng(0xFA12);
    std::vector<u8> key(16);
    for (auto& b : key) b = rng.next_byte();
    const Baes_engine baes(key);

    std::vector<u8> plain(64, 0x11);  // attacker knows these weights
    auto cipher = plain;
    baes.crypt(cipher, 0x2000, 5);

    const u8 chosen = 0x99;
    cipher[0] = static_cast<u8>(cipher[0] ^ 0x11 ^ chosen);
    baes.crypt(cipher, 0x2000, 5);
    EXPECT_EQ(cipher[0], chosen);  // model weight replaced at will
}

TEST(Malleability, MacLayerCatchesTheEdit)
{
    // The same targeted edit against the full Secure_memory stack fails
    // verification before the datapath ever sees the flipped weight.
    Rng rng(0xFA13);
    std::vector<u8> key(16);
    for (auto& b : key) b = rng.next_byte();

    core::Secure_memory mem(key, key);
    std::vector<u8> tile(64, 0x11);
    mem.write(0x2000, tile, 0, 0, 0);
    mem.tamper(0x2000, 0, 0x11 ^ 0x99);  // the known-plaintext rewrite

    std::vector<u8> out(64);
    EXPECT_EQ(mem.read(0x2000, out, 0, 0, 0), core::Verify_status::mac_mismatch);
}

}  // namespace
}  // namespace seda::crypto
