// Cross-validation of the pluggable SHA-256 backends and the bulk HMAC
// pipeline: every backend must produce bit-identical digests (NIST vectors
// + randomized lengths), compress_many must equal the serial loop, and
// digest_many / positional_macs must equal a loop of single-message calls
// on equal-length and ragged batches alike.  Backend kinds are enumerated
// at runtime -- hardware kinds skip with a message when CPUID lacks the
// feature, so the binary is exhaustive on SHA-NI hosts and green elsewhere.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "crypto/mac.h"
#include "crypto/sha256.h"
#include "crypto/sha256_backend.h"

namespace seda::crypto {
namespace {

std::vector<u8> random_bytes(std::size_t n, u64 seed)
{
    Rng rng(seed);
    std::vector<u8> out(n);
    for (auto& b : out) b = rng.next_byte();
    return out;
}

Digest256 digest_with(Sha256_backend_kind kind, std::span<const u8> data)
{
    Sha256 h(kind);
    h.update(data);
    return h.finish();
}

/// The subset of all_sha256_backend_kinds() this host can actually run.
std::vector<Sha256_backend_kind> available_sha256_backend_kinds()
{
    std::vector<Sha256_backend_kind> kinds;
    for (const auto kind : all_sha256_backend_kinds())
        if (sha256_backend_available(kind)) kinds.push_back(kind);
    return kinds;
}

class Sha256BackendTest : public ::testing::TestWithParam<Sha256_backend_kind> {
protected:
    void SetUp() override
    {
        if (!sha256_backend_available(GetParam()))
            GTEST_SKIP() << to_string(GetParam())
                         << " backend not available on this CPU/build";
    }
};

TEST_P(Sha256BackendTest, NistVectors)
{
    const auto kind = GetParam();
    const struct {
        const char* message;
        const char* digest_hex;
    } vectors[] = {
        {"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
        {"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
        {"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
         "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
        {"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
         "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
         "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"},
    };
    for (const auto& v : vectors) {
        const std::string s = v.message;
        const std::vector<u8> bytes(s.begin(), s.end());
        EXPECT_EQ(to_hex(digest_with(kind, bytes)), v.digest_hex) << "message: " << s;
    }
}

TEST_P(Sha256BackendTest, NamedBackendIsResolvable)
{
    const auto& backend = sha256_backend_for(GetParam());
    EXPECT_EQ(backend.name(), to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(AllBackends, Sha256BackendTest,
                         ::testing::ValuesIn(all_sha256_backend_kinds().begin(),
                                             all_sha256_backend_kinds().end()),
                         [](const auto& info) { return to_string(info.param); });

TEST(Sha256Backend, AllBackendsAgreeOnRandomizedLengths)
{
    // Lengths sweep every padding shape: sub-block, block-aligned, the
    // 55/56/63/64 pad boundaries, and multi-block messages.  Every backend
    // this host can run is diffed against the scalar reference.
    Rng rng(0xC0FFEE);
    const auto kinds = available_sha256_backend_kinds();
    for (int trial = 0; trial < 200; ++trial) {
        const std::size_t len = static_cast<std::size_t>(rng.next_u64() % 300);
        const auto data = random_bytes(len, 0x5EED + static_cast<u64>(trial));
        const auto reference = digest_with(Sha256_backend_kind::scalar, data);
        for (const auto kind : kinds) {
            if (kind == Sha256_backend_kind::scalar) continue;
            EXPECT_EQ(digest_with(kind, data), reference)
                << to_string(kind) << " length " << len;
        }
    }
}

TEST(Sha256Backend, AutoSelectMatchesNamedBackends)
{
    const auto data = random_bytes(129, 42);
    const auto via_auto = digest_with(Sha256_backend_kind::auto_select, data);
    EXPECT_EQ(via_auto, digest_with(default_sha256_backend_kind(), data));
}

TEST(Sha256Backend, CompressManyMatchesSerialLoop)
{
    // Random independent (state, block) jobs: the multi-buffer entry point
    // must leave every state exactly where the serial loop would.
    for (const auto kind : available_sha256_backend_kinds()) {
        const auto& backend = sha256_backend_for(kind);
        for (const std::size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 13u}) {
            const auto blocks = random_bytes(n * 64, 0xB10C + n);
            std::vector<Sha256_state> many(n);
            std::vector<Sha256_state> serial(n);
            for (std::size_t i = 0; i < n; ++i) {
                Rng rng(0x57A7E + i);
                for (auto& w : many[i]) w = static_cast<u32>(rng.next_u64());
                serial[i] = many[i];
            }

            std::vector<Sha256_job> jobs;
            for (std::size_t i = 0; i < n; ++i)
                jobs.push_back({&many[i], blocks.data() + 64 * i});
            backend.compress_many(jobs);

            for (std::size_t i = 0; i < n; ++i)
                backend.compress(serial[i], blocks.data() + 64 * i, 1);
            EXPECT_EQ(many, serial) << to_string(kind) << " batch of " << n;
        }
    }
}

TEST(Sha256Backend, MultiBlockCompressMatchesBlockwise)
{
    const auto data = random_bytes(64 * 9, 0xABCD);
    for (const auto kind : available_sha256_backend_kinds()) {
        const auto& backend = sha256_backend_for(kind);
        Sha256_state oneshot = sha256_initial_state();
        backend.compress(oneshot, data.data(), 9);
        Sha256_state blockwise = sha256_initial_state();
        for (int b = 0; b < 9; ++b) backend.compress(blockwise, data.data() + 64 * b, 1);
        EXPECT_EQ(oneshot, blockwise) << to_string(kind);
    }
}

// ---- bulk HMAC ≡ loop-of-digest --------------------------------------------

class HmacBulkTest : public ::testing::TestWithParam<Sha256_backend_kind> {
protected:
    void SetUp() override
    {
        if (!sha256_backend_available(GetParam()))
            GTEST_SKIP() << to_string(GetParam())
                         << " backend not available on this CPU/build";
    }
};

TEST_P(HmacBulkTest, DigestManyEqualsLoopOnFixedSizeUnits)
{
    const Hmac_engine engine(random_bytes(16, 1), GetParam());
    constexpr std::size_t k_units = 37;  // not a lane multiple on purpose
    std::vector<std::vector<u8>> units;
    std::vector<std::span<const u8>> messages;
    for (std::size_t i = 0; i < k_units; ++i)
        units.push_back(random_bytes(64, 100 + i));
    for (const auto& u : units) messages.emplace_back(u);

    std::vector<Digest256> bulk(k_units);
    engine.digest_many(messages, bulk);
    for (std::size_t i = 0; i < k_units; ++i)
        EXPECT_EQ(bulk[i], engine.mac(units[i])) << "unit " << i;
}

TEST_P(HmacBulkTest, DigestManyEqualsLoopOnRaggedLengths)
{
    const Hmac_engine engine(random_bytes(16, 2), GetParam());
    Rng rng(0x7A66ED);
    std::vector<std::vector<u8>> units;
    std::vector<std::span<const u8>> messages;
    for (std::size_t i = 0; i < 24; ++i)
        units.push_back(random_bytes(rng.next_u64() % 300, 200 + i));
    for (const auto& u : units) messages.emplace_back(u);

    std::vector<Digest256> bulk(units.size());
    engine.digest_many(messages, bulk);
    for (std::size_t i = 0; i < units.size(); ++i)
        EXPECT_EQ(bulk[i], engine.mac(units[i])) << "unit " << i << " len "
                                                 << units[i].size();
}

TEST_P(HmacBulkTest, PositionalMacsEqualLoop)
{
    const Hmac_engine engine(random_bytes(16, 3), GetParam());
    std::vector<std::vector<u8>> units;
    std::vector<Mac_request> reqs;
    for (std::size_t i = 0; i < 21; ++i) units.push_back(random_bytes(64, 300 + i));
    for (std::size_t i = 0; i < units.size(); ++i) {
        const Mac_context ctx{0x1000 + 64 * i, i + 1, static_cast<u32>(i % 5),
                              static_cast<u32>(i % 3), static_cast<u32>(i)};
        reqs.push_back({units[i], ctx});
    }

    std::vector<u64> bulk(reqs.size());
    engine.positional_macs(reqs, bulk);
    for (std::size_t i = 0; i < reqs.size(); ++i)
        EXPECT_EQ(bulk[i], engine.positional_mac(reqs[i].ciphertext, reqs[i].ctx))
            << "unit " << i;
}

TEST_P(HmacBulkTest, EmptyBatchIsANoop)
{
    const Hmac_engine engine(random_bytes(16, 4), GetParam());
    engine.digest_many({}, {});
    engine.positional_macs({}, {});
}

TEST_P(HmacBulkTest, BackendsProduceIdenticalMacs)
{
    // The MAC must not depend on which backend computed it -- Secure_memory
    // state written under one backend must verify under any other.
    const auto key = random_bytes(16, 5);
    const Hmac_engine reference(key, Sha256_backend_kind::scalar);
    const auto unit = random_bytes(64, 6);
    const Mac_context ctx{0x2000, 9, 1, 2, 3};
    for (const auto kind : available_sha256_backend_kinds()) {
        if (kind == Sha256_backend_kind::scalar) continue;
        const Hmac_engine other(key, kind);
        EXPECT_EQ(reference.positional_mac(unit, ctx), other.positional_mac(unit, ctx))
            << to_string(kind);
        EXPECT_EQ(reference.mac(unit), other.mac(unit)) << to_string(kind);
    }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, HmacBulkTest,
                         ::testing::ValuesIn(all_sha256_backend_kinds().begin(),
                                             all_sha256_backend_kinds().end()),
                         [](const auto& info) { return to_string(info.param); });

}  // namespace
}  // namespace seda::crypto
