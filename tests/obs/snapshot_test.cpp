// Snapshot differ rate math on synthetic counter/histogram sequences, the
// histogram delta/count_le primitives behind it, scrape_into buffer reuse,
// and the live poller.
//
// Metric names are unique to this file: the registry is process-wide.
#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"

namespace seda::obs {
namespace {

#define SKIP_UNLESS_OBS_LIVE() \
    if (!enabled()) GTEST_SKIP() << "observability disabled in this build/env"

Snapshot::Counter_row counter_row(std::string name, u64 value, std::string label = {})
{
    Snapshot::Counter_row row;
    row.name = std::move(name);
    if (!label.empty()) {
        row.label_key = "tenant";
        row.label_value = std::move(label);
    }
    row.value = value;
    return row;
}

Snapshot::Histogram_row hist_row(std::string name, const Log_histogram& h,
                                 std::string label = {})
{
    Snapshot::Histogram_row row;
    row.name = std::move(name);
    if (!label.empty()) {
        row.label_key = "tenant";
        row.label_value = std::move(label);
    }
    row.hist = h;
    return row;
}

TEST(ObsSnapshotDiff, CounterDeltasAndRates)
{
    Snapshot prev;
    prev.counters.push_back(counter_row("a_total", 100));
    Snapshot cur;
    cur.counters.push_back(counter_row("a_total", 250));

    Interval iv;
    diff_snapshots(prev, cur, 2.0, iv);
    ASSERT_EQ(iv.counters.size(), 1u);
    EXPECT_EQ(iv.counters[0].delta, 150u);
    EXPECT_DOUBLE_EQ(iv.counters[0].per_second, 75.0);
    EXPECT_DOUBLE_EQ(iv.seconds, 2.0);
}

TEST(ObsSnapshotDiff, SeriesOnlyInCurDiffAgainstZero)
{
    Snapshot prev;
    prev.counters.push_back(counter_row("b_total", 10, "0"));
    Snapshot cur;  // rows sorted by (name, label_value), like a real scrape
    cur.counters.push_back(counter_row("b_total", 14, "0"));
    cur.counters.push_back(counter_row("b_total", 7, "1"));  // appeared mid-run

    Interval iv;
    diff_snapshots(prev, cur, 1.0, iv);
    ASSERT_EQ(iv.counters.size(), 2u);
    EXPECT_EQ(iv.counters[0].delta, 4u);
    EXPECT_EQ(iv.counters[1].delta, 7u);
    EXPECT_EQ(iv.counters[1].label_value, "1");
    EXPECT_EQ(iv.family_delta("b_total"), 11u);
}

TEST(ObsSnapshotDiff, HistogramIntervalDeltaPercentiles)
{
    Log_histogram before;
    for (int i = 0; i < 5; ++i) before.record(10.0);

    Log_histogram after = before;  // cumulative: the interval adds new samples
    for (int i = 0; i < 5; ++i) after.record(10.0);
    for (int i = 0; i < 5; ++i) after.record(1000.0);

    Snapshot prev;
    prev.histograms.push_back(hist_row("lat_us", before));
    Snapshot cur;
    cur.histograms.push_back(hist_row("lat_us", after));

    Interval iv;
    diff_snapshots(prev, cur, 1.0, iv);
    ASSERT_EQ(iv.histograms.size(), 1u);
    const Log_histogram& d = iv.histograms[0].hist;
    EXPECT_EQ(d.count(), 10u);
    // The interval's own distribution: half at 10, half at 1000 -- the
    // cumulative histogram would report p50 == 10 (10 of 15 samples).
    EXPECT_NEAR(d.percentile(50), 10.0, 10.0 * 0.04);
    EXPECT_NEAR(d.percentile(99), 1000.0, 1000.0 * 0.04);
    // min/max reconstructed from the delta's outermost buckets.
    EXPECT_NEAR(d.min(), 10.0, 10.0 * 0.04);
    EXPECT_NEAR(d.max(), 1000.0, 1000.0 * 0.04);
    EXPECT_NEAR(d.sum(), 5 * 10.0 + 5 * 1000.0, 5050.0 * 0.01);
}

TEST(ObsSnapshotDiff, FamilyHistMergesLabeledRows)
{
    Log_histogram a;
    a.record(10.0);
    Log_histogram b;
    b.record(30.0);
    Snapshot prev;
    Snapshot cur;
    cur.histograms.push_back(hist_row("fam_us", a, "0"));
    cur.histograms.push_back(hist_row("fam_us", b, "1"));

    Interval iv;
    diff_snapshots(prev, cur, 1.0, iv);
    const Log_histogram merged = iv.family_hist("fam_us");
    EXPECT_EQ(merged.count(), 2u);
    EXPECT_EQ(iv.family_hist("absent_us").count(), 0u);
}

TEST(ObsSnapshotDiff, DifferReusesBuffersAcrossTicks)
{
    Snapshot prev;
    prev.counters.push_back(counter_row("c_total", 1));
    prev.counters.push_back(counter_row("d_total", 2));
    Snapshot cur = prev;
    cur.counters[0].value = 5;

    Interval iv;
    diff_snapshots(prev, cur, 1.0, iv);
    ASSERT_EQ(iv.counters.size(), 2u);
    EXPECT_EQ(iv.counters[0].delta, 4u);
    // Second tick with the same buffers: rows overwritten, not appended.
    diff_snapshots(cur, cur, 1.0, iv);
    ASSERT_EQ(iv.counters.size(), 2u);
    EXPECT_EQ(iv.counters[0].delta, 0u);
}

TEST(ObsSnapshotDiff, WatchLineShowsRatesLatencyAndTenantErrors)
{
    Interval iv;
    iv.seconds = 2.0;
    Counter_rate reqs;
    reqs.name = "serve_requests_total";
    reqs.delta = 100;
    reqs.per_second = 50.0;
    iv.counters.push_back(reqs);
    Counter_rate writes;
    writes.name = "serve_tenant_writes_total";
    writes.label_key = "tenant";
    writes.label_value = "1";
    writes.delta = 95;
    iv.counters.push_back(writes);
    Counter_rate macs;
    macs.name = "serve_tenant_mac_mismatch_total";
    macs.label_key = "tenant";
    macs.label_value = "1";
    macs.delta = 5;
    iv.counters.push_back(macs);

    Log_histogram lat;
    for (int i = 0; i < 100; ++i) lat.record(50.0);
    Hist_delta hd;
    hd.name = "serve_tenant_latency_us";
    hd.label_key = "tenant";
    hd.label_value = "1";
    hd.hist = lat;
    iv.histograms.push_back(hd);

    const std::string line = render_watch_line(iv, Watch_config{});
    EXPECT_NE(line.find("50.0 req/s"), std::string::npos) << line;
    EXPECT_NE(line.find("p50/p99/p999"), std::string::npos) << line;
    EXPECT_NE(line.find("(n=100)"), std::string::npos) << line;
    EXPECT_NE(line.find("t1:5.3%"), std::string::npos) << line;  // 5 / 95
}

TEST(ObsSnapshotDiff, WatchLineWithoutTrafficIsQuiet)
{
    Interval iv;
    iv.seconds = 1.0;
    const std::string line = render_watch_line(iv, Watch_config{});
    EXPECT_NE(line.find("0.0 req/s"), std::string::npos) << line;
    EXPECT_NE(line.find("lat -"), std::string::npos) << line;
    EXPECT_EQ(line.find("errs"), std::string::npos) << line;
}

TEST(ObsHistogramDelta, CountLeIsBucketExactOnSeparatedModes)
{
    Log_histogram h;
    for (int i = 0; i < 90; ++i) h.record(10.0);
    for (int i = 0; i < 10; ++i) h.record(10000.0);
    EXPECT_DOUBLE_EQ(h.count_le(100.0), 90.0);
    EXPECT_DOUBLE_EQ(h.count_le(20000.0), 100.0);
    EXPECT_DOUBLE_EQ(h.count_le(1.0), 0.0);
    Log_histogram empty;
    EXPECT_DOUBLE_EQ(empty.count_le(100.0), 0.0);
}

TEST(ObsHistogramDelta, ClearKeepsNothingButStaysUsable)
{
    Log_histogram h;
    h.record(5.0);
    h.record(500.0);
    h.clear();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
    h.record(7.0);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_NEAR(h.percentile(50), 7.0, 7.0 * 0.04);
}

TEST(ObsScrapeInto, MatchesScrapeAndReusesRows)
{
    SKIP_UNLESS_OBS_LIVE();
    auto& reg = Metrics_registry::instance();
    reg.counter("test_snapri_total").add(3);
    reg.histogram("test_snapri_us").record(42.0);

    Snapshot reused;
    reg.scrape_into(reused);
    reg.counter("test_snapri_total").add(1);
    reg.scrape_into(reused);  // second fill into the same buffers

    std::ostringstream a;
    write_prometheus(reused, a);
    std::ostringstream b;
    write_prometheus(reg.scrape(), b);
    EXPECT_EQ(a.str(), b.str());
    EXPECT_NE(a.str().find("seda_test_snapri_total 4"), std::string::npos) << a.str();
}

TEST(ObsSnapshotPoller, DeliversIntervalsAndFinalFlush)
{
    SKIP_UNLESS_OBS_LIVE();
    auto& reg = Metrics_registry::instance();
    const Counter c = reg.counter("test_snapoll_total");

    u64 seen = 0;
    u64 intervals = 0;
    Snapshot_poller poller(std::chrono::milliseconds(20), [&](const Interval& iv) {
        seen += iv.family_delta("test_snapoll_total");
        ++intervals;
    });
    poller.start();
    c.add(5);
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    c.add(2);
    poller.stop();  // flushes the tail interval, so the final 2 arrive too

    EXPECT_EQ(seen, 7u);
    EXPECT_GE(intervals, 2u);
}

}  // namespace
}  // namespace seda::obs
