// Labeled series (per-tenant scoping) and histogram exemplars: interning,
// scrape row ordering, Prometheus/JSON/stage-table rendering, and the
// family-kind consistency rules.
//
// Metric names are unique to this file: the registry is process-wide.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/error.h"
#include "obs/export.h"
#include "obs/metrics.h"

namespace seda::obs {
namespace {

#define SKIP_UNLESS_OBS_LIVE() \
    if (!enabled()) GTEST_SKIP() << "observability disabled in this build/env"

std::size_t count_occurrences(const std::string& haystack, const std::string& needle)
{
    std::size_t n = 0;
    for (auto pos = haystack.find(needle); pos != std::string::npos;
         pos = haystack.find(needle, pos + needle.size()))
        ++n;
    return n;
}

TEST(ObsLabeledMetrics, LabeledSeriesAreDistinctAndSortAdjacent)
{
    SKIP_UNLESS_OBS_LIVE();
    auto& reg = Metrics_registry::instance();
    reg.counter("test_lblc_total", "tenant", "1").add(5);
    reg.counter("test_lblc_total", "tenant", "0").add(3);
    // Re-opening a (name, value) pair feeds the same series.
    reg.counter("test_lblc_total", "tenant", "1").add(2);

    const Snapshot snap = reg.scrape();
    std::vector<const Snapshot::Counter_row*> rows;
    for (const auto& c : snap.counters)
        if (c.name == "test_lblc_total") rows.push_back(&c);
    ASSERT_EQ(rows.size(), 2u);
    // Family rows are adjacent and sorted by label value.
    EXPECT_EQ(rows[1] - rows[0], 1);
    EXPECT_EQ(rows[0]->label_key, "tenant");
    EXPECT_EQ(rows[0]->label_value, "0");
    EXPECT_EQ(rows[0]->value, 3u);
    EXPECT_EQ(rows[1]->label_value, "1");
    EXPECT_EQ(rows[1]->value, 7u);
}

TEST(ObsLabeledMetrics, PrometheusRendersLabelsAndOneTypeHeaderPerFamily)
{
    SKIP_UNLESS_OBS_LIVE();
    auto& reg = Metrics_registry::instance();
    reg.counter("test_lblp_total", "tenant", "0").add(1);
    reg.counter("test_lblp_total", "tenant", "1").add(2);
    reg.histogram("test_lblp_us", "tenant", "0").record(10.0);
    reg.histogram("test_lblp_us", "tenant", "1").record(20.0, 77);

    std::ostringstream os;
    write_prometheus(reg.scrape(), os);
    const std::string prom = os.str();

    EXPECT_EQ(count_occurrences(prom, "# TYPE seda_test_lblp_total counter"), 1u);
    EXPECT_EQ(count_occurrences(prom, "# TYPE seda_test_lblp_us histogram"), 1u);
    EXPECT_NE(prom.find("seda_test_lblp_total{tenant=\"0\"} 1"), std::string::npos);
    EXPECT_NE(prom.find("seda_test_lblp_total{tenant=\"1\"} 2"), std::string::npos);
    // Histogram samples merge the label into the le block; sum/count keep it.
    EXPECT_NE(prom.find("seda_test_lblp_us_bucket{tenant=\"0\",le=\"+Inf\"} 1"),
              std::string::npos);
    EXPECT_NE(prom.find("seda_test_lblp_us_count{tenant=\"1\"} 1"), std::string::npos);
    // The exemplar rides the +Inf bucket of the series that recorded it.
    EXPECT_NE(prom.find("seda_test_lblp_us_bucket{tenant=\"1\",le=\"+Inf\"} 1 "
                        "# {trace_id=\"77\"} 20"),
              std::string::npos)
        << prom;
    EXPECT_EQ(prom.find("seda_test_lblp_us_bucket{tenant=\"0\",le=\"+Inf\"} 1 #"),
              std::string::npos)
        << "exemplar leaked onto the unexemplared series";
}

TEST(ObsLabeledMetrics, JsonCarriesLabelsAndExemplar)
{
    SKIP_UNLESS_OBS_LIVE();
    auto& reg = Metrics_registry::instance();
    reg.gauge("test_lblj_gauge", "tenant", "4").add(-2);
    reg.histogram("test_lblj_us", "tenant", "4").record(3.5, 91);

    std::ostringstream os;
    write_json(reg.scrape(), os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"name\": \"test_lblj_gauge\", \"labels\": "
                        "{\"tenant\": \"4\"}, \"value\": -2"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"exemplar\": {\"trace_id\": 91, \"value\": 3.5}"),
              std::string::npos)
        << json;
}

TEST(ObsLabeledMetrics, ExemplarKeepsLargestValueAndIgnoresZeroId)
{
    SKIP_UNLESS_OBS_LIVE();
    auto& reg = Metrics_registry::instance();
    const Histogram h = reg.histogram("test_lble_us", "tenant", "0");
    h.record(5.0, 11);
    h.record(50.0, 22);  // larger value wins
    h.record(9.0, 33);
    h.record(500.0, 0);  // id 0 = untraced: recorded, but never an exemplar
    const Snapshot snap = reg.scrape();
    const auto* row = find_histogram(snap, "test_lble_us{tenant=\"0\"}");
    ASSERT_NE(row, nullptr);
    EXPECT_EQ(row->hist.count(), 4u);
    EXPECT_EQ(row->exemplar_trace_id, 22u);
    EXPECT_GE(row->exemplar_value, 50.0 * 0.97);  // bucketing tolerance
    EXPECT_LE(row->exemplar_value, 50.0 * 1.03);
}

TEST(ObsLabeledMetrics, StageTableShowsLabeledRows)
{
    SKIP_UNLESS_OBS_LIVE();
    auto& reg = Metrics_registry::instance();
    reg.histogram("test_lblt_us", "tenant", "2").record(7.0);
    std::ostringstream os;
    write_stage_table(reg.scrape(), os);
    EXPECT_NE(os.str().find("test_lblt_us{tenant=\"2\"}"), std::string::npos);
}

TEST(ObsLabeledMetrics, FamilyKindAndLabelShapeAreEnforced)
{
    SKIP_UNLESS_OBS_LIVE();
    auto& reg = Metrics_registry::instance();
    (void)reg.counter("test_lblk_total", "tenant", "0");
    // A family keeps one kind, labeled or not.
    EXPECT_THROW((void)reg.histogram("test_lblk_total", "tenant", "1"), Seda_error);
    EXPECT_THROW((void)reg.gauge("test_lblk_total"), Seda_error);
    // Half a label pair is malformed.
    EXPECT_THROW((void)reg.counter("test_lblk2_total", "tenant", ""), Seda_error);
    EXPECT_THROW((void)reg.counter("test_lblk2_total", "", "3"), Seda_error);
}

}  // namespace
}  // namespace seda::obs
