// Loopback integration tests for the embedded HTTP scrape endpoint: raw
// socket client, status lines, content types, the /metrics ≡ scrape
// byte-for-byte contract (the same write_prometheus render --stats-out
// files), and the /healthz lifecycle flip driven by serve::Server.
//
// Metric names are unique to this file: the registry is process-wide.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "common/error.h"
#include "obs/export.h"
#include "obs/flight.h"
#include "obs/health.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "serve/loadgen.h"
#include "serve/server.h"

namespace seda::obs {
namespace {

#define SKIP_UNLESS_OBS_LIVE() \
    if (!enabled()) GTEST_SKIP() << "observability disabled in this build/env"

/// Raw HTTP exchange: connect, send `request` verbatim, read to EOF.
std::string http_exchange(u16 port, const std::string& request)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return {};
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
        ::close(fd);
        return {};
    }
    ::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
    std::string out;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n <= 0) break;
        out.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return out;
}

std::string http_get(u16 port, const std::string& target, const char* method = "GET")
{
    return http_exchange(port, std::string(method) + " " + target +
                                   " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n");
}

std::string body_of(const std::string& response)
{
    const auto pos = response.find("\r\n\r\n");
    return pos == std::string::npos ? std::string{} : response.substr(pos + 4);
}

TEST(ObsHttpExporter, StatusLinesAndContentTypes)
{
    Http_exporter exporter;  // port 0 = ephemeral
    exporter.start();
    ASSERT_NE(exporter.port(), 0);

    const std::string index = http_get(exporter.port(), "/");
    EXPECT_EQ(index.rfind("HTTP/1.1 200 OK\r\n", 0), 0u) << index;
    EXPECT_NE(index.find("/metrics"), std::string::npos);

    const std::string metrics = http_get(exporter.port(), "/metrics");
    EXPECT_EQ(metrics.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
    EXPECT_NE(metrics.find("Content-Type: text/plain; version=0.0.4; charset=utf-8"),
              std::string::npos)
        << metrics;
    EXPECT_NE(metrics.find("Connection: close"), std::string::npos);

    const std::string json = http_get(exporter.port(), "/metrics.json");
    EXPECT_EQ(json.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
    EXPECT_NE(json.find("Content-Type: application/json"), std::string::npos);

    EXPECT_EQ(http_get(exporter.port(), "/nope").rfind("HTTP/1.1 404 Not Found\r\n", 0),
              0u);
    EXPECT_EQ(http_get(exporter.port(), "/metrics", "POST")
                  .rfind("HTTP/1.1 405 Method Not Allowed\r\n", 0),
              0u);

    // Query strings are stripped; HEAD answers with headers only.
    EXPECT_EQ(http_get(exporter.port(), "/metrics?x=1").rfind("HTTP/1.1 200 OK\r\n", 0),
              0u);
    const std::string head = http_get(exporter.port(), "/metrics", "HEAD");
    EXPECT_EQ(head.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
    EXPECT_TRUE(body_of(head).empty()) << head;

    exporter.stop();
    EXPECT_GE(exporter.requests_served(), 7u);
}

TEST(ObsHttpExporter, MetricsBodyMatchesScrapeByteForByte)
{
    SKIP_UNLESS_OBS_LIVE();
    Metrics_registry::instance().counter("test_httpx_total").add(42);
    Metrics_registry::instance().histogram("test_httpx_us", "tenant", "0").record(12.5);

    Http_exporter exporter;
    exporter.start();
    const std::string via_http = body_of(http_get(exporter.port(), "/metrics"));
    const std::string via_json = body_of(http_get(exporter.port(), "/metrics.json"));
    exporter.stop();

    // The registry is quiesced, so a local render of the same scrape must be
    // byte-identical -- and this render is exactly what --stats-out writes.
    std::ostringstream prom;
    write_prometheus(Metrics_registry::instance().scrape(), prom);
    EXPECT_EQ(via_http, prom.str());
    EXPECT_NE(via_http.find("seda_test_httpx_total 42"), std::string::npos);

    std::ostringstream json;
    write_json(Metrics_registry::instance().scrape(), json);
    EXPECT_EQ(via_json, json.str());
}

TEST(ObsHttpExporter, HealthzFlipsWithServerLifecycle)
{
    health_reset_for_test();
    Http_exporter exporter;
    exporter.start();

    std::string r = http_get(exporter.port(), "/healthz");
    EXPECT_EQ(r.rfind("HTTP/1.1 503 Service Unavailable\r\n", 0), 0u) << r;
    EXPECT_NE(body_of(r).find("\"state\": \"idle\""), std::string::npos) << r;

    {
        serve::Server server(serve::demo_master_key(7, 1), serve::demo_master_key(7, 2));
        server.start();
        r = http_get(exporter.port(), "/healthz");
        EXPECT_EQ(r.rfind("HTTP/1.1 200 OK\r\n", 0), 0u) << r;
        EXPECT_NE(body_of(r).find("\"state\": \"serving\""), std::string::npos) << r;
        EXPECT_NE(body_of(r).find("\"live_servers\": 1"), std::string::npos) << r;
        server.stop();
        r = http_get(exporter.port(), "/healthz");
        EXPECT_EQ(r.rfind("HTTP/1.1 503 Service Unavailable\r\n", 0), 0u) << r;
        EXPECT_NE(body_of(r).find("\"state\": \"stopped\""), std::string::npos) << r;
    }
    exporter.stop();
}

TEST(ObsHttpExporter, FlightEndpointIsNonConsuming)
{
    Http_exporter exporter;
    exporter.start();
    const std::string first = body_of(http_get(exporter.port(), "/flight"));
    const std::string second = body_of(http_get(exporter.port(), "/flight"));
    exporter.stop();
    EXPECT_EQ(first, second);  // dumps never consume the ring
    std::ostringstream os;
    Flight_recorder::dump(os);
    EXPECT_EQ(first, os.str());
}

TEST(ObsHttpExporter, MalformedRequestsGet400)
{
    Http_exporter exporter;
    exporter.start();
    const std::string r = http_exchange(exporter.port(), "garbage\r\n\r\n");
    EXPECT_EQ(r.rfind("HTTP/1.1 400 Bad Request\r\n", 0), 0u) << r;
    exporter.stop();
}

TEST(ObsHttpExporter, EphemeralAndExplicitPortsBothBind)
{
    Http_exporter a;
    a.start();
    // Second exporter on the already-bound port must throw, not hang.
    Http_exporter_config cfg;
    cfg.port = a.port();
    Http_exporter b(cfg);
    EXPECT_THROW(b.start(), Seda_error);
    a.stop();
}

TEST(ObsHttpExporter, ListenPortFromEnv)
{
    ::unsetenv("SEDA_OBS_LISTEN");
    EXPECT_EQ(listen_port_from_env(), 0);
    ::setenv("SEDA_OBS_LISTEN", "9187", 1);
    EXPECT_EQ(listen_port_from_env(), 9187);
    ::setenv("SEDA_OBS_LISTEN", "notaport", 1);
    EXPECT_THROW((void)listen_port_from_env(), Seda_error);
    ::setenv("SEDA_OBS_LISTEN", "70000", 1);
    EXPECT_THROW((void)listen_port_from_env(), Seda_error);
    ::unsetenv("SEDA_OBS_LISTEN");
}

}  // namespace
}  // namespace seda::obs
