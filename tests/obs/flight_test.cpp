// Flight_recorder: ring-wrap accounting, deterministic non-consuming
// dumps, detection counting, and the armed auto-dump-on-detection path.
//
// The recorder is process-wide (like the registry), so every test calls
// reset() first and the assertions only touch what the test itself
// recorded.  Dump parsing is plain substring work on the JSON text -- the
// format is part of the contract (docs/OBSERVABILITY.md).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "core/verify_status.h"
#include "obs/flight.h"
#include "obs/metrics.h"

namespace seda::obs {
namespace {

#define SKIP_UNLESS_OBS_LIVE() \
    if (!enabled()) GTEST_SKIP() << "observability disabled in this build/env"

/// The value of an integer field like `"events": 123` in a dump.
u64 json_field(const std::string& dump, const std::string& field)
{
    const std::string key = "\"" + field + "\": ";
    const auto pos = dump.find(key);
    EXPECT_NE(pos, std::string::npos) << field << " missing from dump";
    if (pos == std::string::npos) return 0;
    return std::strtoull(dump.c_str() + pos + key.size(), nullptr, 10);
}

std::size_t count_occurrences(const std::string& haystack, const std::string& needle)
{
    std::size_t n = 0;
    for (auto pos = haystack.find(needle); pos != std::string::npos;
         pos = haystack.find(needle, pos + needle.size()))
        ++n;
    return n;
}

std::string dump_to_string()
{
    std::ostringstream os;
    Flight_recorder::dump(os);
    return os.str();
}

TEST(ObsFlightRecorder, RecordsAndDumpsWithTenantAttribution)
{
    SKIP_UNLESS_OBS_LIVE();
    Flight_recorder::reset();
    Flight_recorder::record(Flight_kind::flush_write, 3, 0x1000, 16, 1024);
    Flight_recorder::record(Flight_kind::window, k_flight_no_tenant, 0, 5, 0);

    const std::string dump = dump_to_string();
    EXPECT_EQ(json_field(dump, "events"), 2u);
    EXPECT_EQ(json_field(dump, "overwritten"), 0u);
    EXPECT_NE(dump.find("\"kind\": \"flush_write\", \"tenant\": 3, \"addr\": 4096, "
                        "\"n\": 16, \"bytes\": 1024"),
              std::string::npos)
        << dump;
    // The no-tenant sentinel renders as NO tenant field at all.
    const auto window_pos = dump.find("\"kind\": \"window\"");
    ASSERT_NE(window_pos, std::string::npos);
    EXPECT_EQ(dump.find("\"tenant\"", window_pos), std::string::npos);
}

TEST(ObsFlightRecorder, RingWrapKeepsNewestAndCountsOverwritten)
{
    SKIP_UNLESS_OBS_LIVE();
    Flight_recorder::reset();
    constexpr u64 k_extra = 57;
    const u64 total = Flight_recorder::k_ring_capacity + k_extra;
    for (u64 i = 0; i < total; ++i)
        Flight_recorder::record(Flight_kind::flush_read, 0, i, 1, 64);

    const std::string dump = dump_to_string();
    EXPECT_EQ(json_field(dump, "events"), Flight_recorder::k_ring_capacity);
    EXPECT_EQ(json_field(dump, "overwritten"), k_extra);
    // The oldest k_extra events were evicted; the newest survive.
    EXPECT_EQ(dump.find("\"addr\": " + std::to_string(k_extra - 1) + ","),
              std::string::npos);
    EXPECT_NE(dump.find("\"addr\": " + std::to_string(k_extra) + ","), std::string::npos);
    EXPECT_NE(dump.find("\"addr\": " + std::to_string(total - 1) + ","),
              std::string::npos);
}

TEST(ObsFlightRecorder, DumpIsNonConsumingAndByteDeterministic)
{
    SKIP_UNLESS_OBS_LIVE();
    Flight_recorder::reset();
    std::thread other([] {
        for (u64 i = 0; i < 10; ++i)
            Flight_recorder::record(Flight_kind::flush_write, 1, 0x2000 + i * 64, 2, 128);
    });
    for (u64 i = 0; i < 10; ++i)
        Flight_recorder::record(Flight_kind::window, k_flight_no_tenant, 0, i, 0);
    other.join();

    const std::string first = dump_to_string();
    const std::string second = dump_to_string();
    EXPECT_EQ(first, second);
    EXPECT_EQ(json_field(first, "events"), 20u);

    // Merge order is by timestamp: the t_us sequence never decreases.
    double last = -1.0;
    const std::string key = "\"t_us\": ";
    for (auto pos = first.find(key); pos != std::string::npos;
         pos = first.find(key, pos + key.size())) {
        const double t = std::strtod(first.c_str() + pos + key.size(), nullptr);
        EXPECT_GE(t, last);
        last = t;
    }
}

TEST(ObsFlightRecorder, DetectCountsAndFiresArmedAutoDump)
{
    SKIP_UNLESS_OBS_LIVE();
    Flight_recorder::reset();
    const std::string path = testing::TempDir() + "seda_flight_autodump_test.json";
    std::remove(path.c_str());

    // A detection with no armed path only appends + counts.
    Flight_recorder::record(Flight_kind::flush_read, 2, 0x40, 4, 256);
    Flight_recorder::detect(Flight_kind::detect, 2, 0x40, 7, 1, 3,
                            static_cast<u8>(core::Verify_status::mac_mismatch));
    EXPECT_EQ(Flight_recorder::detections(), 1u);
    { std::ifstream f(path); EXPECT_FALSE(f.good()); }

    // Armed: the next detection snapshots the whole ring to the path.
    Flight_recorder::arm_auto_dump(path);
    Flight_recorder::detect(Flight_kind::infer_detect, k_flight_no_tenant, 0x80, 9, 0, 1,
                            static_cast<u8>(core::Verify_status::replay_detected));
    Flight_recorder::arm_auto_dump("");  // disarm before any assertion can throw
    EXPECT_EQ(Flight_recorder::detections(), 2u);

    std::ifstream f(path);
    ASSERT_TRUE(f.good()) << "auto-dump did not write " << path;
    std::stringstream buf;
    buf << f.rdbuf();
    const std::string dump = buf.str();
    EXPECT_EQ(json_field(dump, "events"), 3u);
    EXPECT_EQ(json_field(dump, "detections"), 2u);
    // Detections carry the full attribution coordinates and status string.
    EXPECT_NE(dump.find("\"kind\": \"detect\", \"tenant\": 2, \"addr\": 64, "
                        "\"layer\": 7, \"fmap\": 1, \"blk\": 3, "
                        "\"status\": \"mac_mismatch\""),
              std::string::npos)
        << dump;
    EXPECT_NE(dump.find("\"status\": \"replay_detected\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(ObsFlightRecorder, DumpFlightReportsUnopenablePath)
{
    SKIP_UNLESS_OBS_LIVE();
    EXPECT_FALSE(Flight_recorder::dump_flight("/nonexistent-dir/flight.json"));
    const std::string path = testing::TempDir() + "seda_flight_dump_test.json";
    EXPECT_TRUE(Flight_recorder::dump_flight(path));
    std::remove(path.c_str());
}

TEST(ObsFlightRecorder, EmptyDumpIsWellFormed)
{
    SKIP_UNLESS_OBS_LIVE();
    Flight_recorder::reset();
    const std::string dump = dump_to_string();
    EXPECT_EQ(json_field(dump, "events"), 0u);
    EXPECT_EQ(count_occurrences(dump, "\"kind\""), 0u);
    EXPECT_NE(dump.find("\"flight\": []"), std::string::npos);
}

}  // namespace
}  // namespace seda::obs
