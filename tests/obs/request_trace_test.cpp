// Request-scoped tracing: sampling/arming, stamp plumbing, monotonic
// repair, histogram exemplars, and the end-to-end propagation through
// serve::Server -- bulk path, per-request fallback path, and the
// s/t/f flow-event chain in the chrome trace.
//
// A live trace recording arms every request (no 1-in-N sampling), which is
// what makes these deterministic; each test drains the recorder before
// finishing so it never leaks an active recording into the next test.
#include <gtest/gtest.h>

#include <future>
#include <sstream>
#include <string>

#include "common/error.h"
#include "common/rng.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "obs/trace.h"
#include "serve/server.h"

namespace seda::obs {
namespace {

#define SKIP_UNLESS_OBS_COMPILED() \
    if (!k_compiled_in) GTEST_SKIP() << "observability compiled out"

std::size_t count_occurrences(const std::string& haystack, const std::string& needle)
{
    std::size_t n = 0;
    for (auto pos = haystack.find(needle); pos != std::string::npos;
         pos = haystack.find(needle, pos + needle.size()))
        ++n;
    return n;
}

/// Drains (and thereby stops) the active recording into a string.
std::string drain_trace()
{
    std::ostringstream os;
    Trace_recorder::write_json(os);
    return os.str();
}

TEST(ObsRequestTrace, UntracedContextIsInertAndFinishIsIdempotent)
{
    SKIP_UNLESS_OBS_COMPILED();
    // With no recording active and a fresh thread tick, begin either skips
    // (1-in-N) or samples; a default context with id 0 must be inert either
    // way.
    Trace_context ctx;
    trace_request_pickup(ctx, 123);
    trace_request_flush(ctx, 456, 789);
    EXPECT_EQ(ctx.t_pickup, 0u);
    EXPECT_EQ(ctx.t_flush0, 0u);
    trace_request_finish(ctx);  // no-op, must not crash or record
    EXPECT_EQ(ctx.trace_id, 0u);
}

TEST(ObsRequestTrace, ActiveRecordingTracesEveryRequestAndRepairsStamps)
{
    SKIP_UNLESS_OBS_COMPILED();
    Trace_recorder::start();

    // Every begin samples while a recording is active -- ids are distinct.
    Trace_context a;
    Trace_context b;
    trace_request_begin(a);
    trace_request_begin(b);
    ASSERT_NE(a.trace_id, 0u);
    ASSERT_NE(b.trace_id, 0u);
    EXPECT_NE(a.trace_id, b.trace_id);
    EXPECT_NE(a.t_submit, 0u);

    // Normal path: stamps propagate.
    trace_request_pickup(a, a.t_submit + 10);
    trace_request_flush(a, a.t_submit + 20, a.t_submit + 30);
    EXPECT_EQ(a.t_pickup, a.t_submit + 10);
    const u64 a_id = a.trace_id;
    trace_request_finish(a);
    EXPECT_EQ(a.trace_id, 0u);  // finish consumes the context
    trace_request_finish(a);    // double-finish is a no-op

    // Repair path: b was "rejected before pickup" -- no stamps at all.
    // finish must still emit a full (collapsed) decomposition.
    trace_request_finish(b);

    const std::string trace = drain_trace();
    // Two finished requests -> two flow chains, each s/t/f once.
    EXPECT_EQ(count_occurrences(trace, "\"ph\": \"s\""), 2u);
    EXPECT_EQ(count_occurrences(trace, "\"ph\": \"t\""), 2u);
    EXPECT_EQ(count_occurrences(trace, "\"ph\": \"f\""), 2u);
    EXPECT_NE(trace.find("\"id\": " + std::to_string(a_id) + ","), std::string::npos);
    // Four phase spans per finished request.
    EXPECT_EQ(count_occurrences(trace, "\"name\": \"req.queue\""), 2u);
    EXPECT_EQ(count_occurrences(trace, "\"name\": \"req.window\""), 2u);
    EXPECT_EQ(count_occurrences(trace, "\"name\": \"req.crypto\""), 2u);
    EXPECT_EQ(count_occurrences(trace, "\"name\": \"req.complete\""), 2u);
    // Flow finishes carry the binding-point hint chrome expects.
    EXPECT_EQ(count_occurrences(trace, "\"bp\": \"e\""), 2u);
}

TEST(ObsRequestTrace, FinishFeedsStageHistogramsWithExemplar)
{
    if (!enabled()) GTEST_SKIP() << "observability disabled in this build/env";
    Trace_recorder::start();

    const Snapshot before = Metrics_registry::instance().scrape();
    const auto* row0 = find_histogram(before, "serve_req_queue_us");
    const u64 count0 = row0 != nullptr ? row0->hist.count() : 0;

    Trace_context ctx;
    trace_request_begin(ctx);
    ASSERT_NE(ctx.trace_id, 0u);
    const u64 id = ctx.trace_id;
    trace_request_pickup(ctx, now_ticks());
    const u64 t0 = now_ticks();
    trace_request_flush(ctx, t0, now_ticks());
    trace_request_finish(ctx);
    (void)drain_trace();

    const Snapshot after = Metrics_registry::instance().scrape();
    for (const char* name : {"serve_req_queue_us", "serve_req_window_us",
                             "serve_req_crypto_us", "serve_req_complete_us"}) {
        const auto* row = find_histogram(after, name);
        ASSERT_NE(row, nullptr) << name;
        EXPECT_GE(row->hist.count(), 1u) << name;
        EXPECT_NE(row->exemplar_trace_id, 0u) << name;
    }
    const auto* row1 = find_histogram(after, "serve_req_queue_us");
    EXPECT_EQ(row1->hist.count(), count0 + 1);
    // This finish is the newest observation; with a quiesced registry its
    // id is at least as new as the surfaced (max-value) exemplar's.
    EXPECT_LE(row1->exemplar_trace_id, id);
}

TEST(ObsRequestTrace, PropagatesThroughServerBulkAndFallbackPaths)
{
    SKIP_UNLESS_OBS_COMPILED();
    const auto key = [](u64 seed) {
        Rng rng(seed);
        std::vector<u8> k(16);
        for (auto& b : k) b = rng.next_byte();
        return k;
    };
    const auto request = [](serve::Op op, Addr addr, std::vector<u8> payload = {}) {
        serve::Request r;
        r.tenant_id = 0;
        r.op = op;
        r.addr = addr;
        r.payload = std::move(payload);
        return r;
    };

    Trace_recorder::start();
    serve::Server server(key(1), key(2), {.tenants = 1, .workers = 2});
    server.start();

    std::vector<u8> data(64, 0x5A);
    ASSERT_EQ(server.submit(request(serve::Op::write, 0, data)).get().status,
              core::Verify_status::ok);

    // A poisoned read (never-written unit) coalesced with good ones forces
    // the bulk reject -> per-request fallback path; the traced contexts must
    // finish on BOTH paths (the poison via reject, the good ones via
    // fallback completion).
    auto good1 = server.submit(request(serve::Op::read, 0));
    auto poison = server.submit(request(serve::Op::read, 64 * 99));
    auto good2 = server.submit(request(serve::Op::read, 0));
    EXPECT_EQ(good1.get().status, core::Verify_status::ok);
    EXPECT_THROW((void)poison.get(), Seda_error);
    EXPECT_EQ(good2.get().payload, data);

    server.drain();
    server.stop();

    const std::string trace = drain_trace();
    // Every submitted request (1 write + 3 reads) finished exactly once:
    // four complete flow chains, linked admit -> flush -> complete.
    EXPECT_EQ(count_occurrences(trace, "\"ph\": \"s\""), 4u);
    EXPECT_EQ(count_occurrences(trace, "\"ph\": \"t\""), 4u);
    EXPECT_EQ(count_occurrences(trace, "\"ph\": \"f\""), 4u);
    EXPECT_EQ(count_occurrences(trace, "\"name\": \"req.crypto\""), 4u);
    EXPECT_EQ(count_occurrences(trace, "\"name\": \"req\", \"cat\": \"req\""), 12u);
}

}  // namespace
}  // namespace seda::obs
