// Log_histogram: bucketing geometry, percentile accuracy vs the exact
// sample percentile, and merge semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "obs/histogram.h"

namespace seda::obs {
namespace {

TEST(ObsHistogram, EmptyReadsZero)
{
    Log_histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

TEST(ObsHistogram, SingleValueIsExactEverywhere)
{
    // The min/max clamp pins every percentile of a one-sample histogram to
    // the recorded value itself, not a bucket boundary.
    Log_histogram h;
    h.record(123.456);
    EXPECT_EQ(h.count(), 1u);
    for (const double pct : {0.0, 50.0, 99.0, 99.9, 100.0})
        EXPECT_NEAR(h.percentile(pct), 123.456, 123.456 / 1024.0) << pct;
    EXPECT_NEAR(h.min(), 123.456, 123.456 / 1024.0);
    EXPECT_NEAR(h.max(), 123.456, 123.456 / 1024.0);
}

TEST(ObsHistogram, CountSumMinMaxTrackRecords)
{
    Log_histogram h;
    h.record(10.0);
    h.record(1000.0);
    h.record(0.5);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_NEAR(h.sum(), 1010.5, 1010.5 / 1024.0 * 3);
    EXPECT_NEAR(h.mean(), 1010.5 / 3.0, 1.0);
    EXPECT_NEAR(h.min(), 0.5, 0.01);
    EXPECT_NEAR(h.max(), 1000.0, 1.0);
}

TEST(ObsHistogram, PercentilesMatchExactSampleWithinResolution)
{
    // Log-uniform samples across six decades: every percentile the
    // histogram reports must sit within one bucket width (plus the
    // fixed-point quantum) of the exact sample percentile.
    Rng rng(0x0B5A1570u);
    Log_histogram h;
    std::vector<double> xs;
    for (int i = 0; i < 20000; ++i) {
        const double v = std::exp(rng.next_unit() * 13.8);  // ~[1, 1e6)
        xs.push_back(v);
        h.record(v);
    }
    for (const double pct : {1.0, 10.0, 50.0, 90.0, 99.0, 99.9}) {
        const double exact = percentile_of(xs, pct);
        const double approx = h.percentile(pct);
        const double tol = Log_histogram::resolution_at(exact) + exact / 1024.0;
        EXPECT_NEAR(approx, exact, tol) << "pct=" << pct;
    }
}

TEST(ObsHistogram, MergeEqualsCombinedStream)
{
    Rng rng(0xC0FFEEu);
    Log_histogram a;
    Log_histogram b;
    Log_histogram combined;
    for (int i = 0; i < 5000; ++i) {
        const double v = 1.0 + rng.next_unit() * 9999.0;
        (i % 3 == 0 ? a : b).record(v);
        combined.record(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_DOUBLE_EQ(a.sum(), combined.sum());
    EXPECT_DOUBLE_EQ(a.min(), combined.min());
    EXPECT_DOUBLE_EQ(a.max(), combined.max());
    for (const double pct : {50.0, 99.0, 99.9})
        EXPECT_DOUBLE_EQ(a.percentile(pct), combined.percentile(pct)) << pct;
}

TEST(ObsHistogram, MergeWithEmptyIsIdentity)
{
    Log_histogram h;
    h.record(42.0);
    Log_histogram empty;
    h.merge(empty);
    EXPECT_EQ(h.count(), 1u);
    empty.merge(h);
    EXPECT_EQ(empty.count(), 1u);
    EXPECT_NEAR(empty.percentile(50), 42.0, 42.0 / 1024.0);
}

TEST(ObsHistogram, ResolutionBoundIsThreePercent)
{
    // The advertised contract: relative bucket width stays ~3.1% (1/32)
    // everywhere past the exact-integer range.
    for (const double v : {100.0, 5e3, 7e5, 1e9, 3e12})
        EXPECT_LT(Log_histogram::resolution_at(v) / v, 0.033) << v;
    // Sub-unit values fall into the exact fixed-point buckets.
    EXPECT_LE(Log_histogram::resolution_at(0.01), 1.0 / 1024.0);
}

TEST(ObsHistogram, ExtremesClampInsteadOfCrashing)
{
    Log_histogram h;
    h.record(-5.0);   // clamps to zero
    h.record(0.0);
    h.record(1e18);   // far past the representable range: clamps to the cap
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    // The tick cap is 2^48 fixed-point ticks = 2^38 value units (~76 hours
    // when the unit is µs) -- anything beyond saturates there.
    EXPECT_GT(h.max(), 2.7e11);
}

}  // namespace
}  // namespace seda::obs
