// Metrics_registry: handle semantics, sharded concurrency, scrape
// stability, and the stage-span / trace-recorder plumbing on top of it.
//
// Every test registers metric names unique to itself: the registry is
// process-wide, and under the TSan job several Obs* tests share one process.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/error.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/stage.h"
#include "obs/trace.h"
#include "runtime/thread_pool.h"

namespace seda::obs {
namespace {

/// The registry hot paths are inert when compiled out or switched off via
/// SEDA_OBS=0; these tests exercise the live paths only.
#define SKIP_UNLESS_OBS_LIVE() \
    if (!enabled()) GTEST_SKIP() << "observability disabled in this build/env"

u64 counter_value(const Snapshot& snap, std::string_view name)
{
    for (const auto& c : snap.counters)
        if (c.name == name) return c.value;
    return 0;
}

TEST(ObsRegistry, CounterAccumulatesAcrossHandles)
{
    SKIP_UNLESS_OBS_LIVE();
    auto& reg = Metrics_registry::instance();
    const Counter a = reg.counter("test_counter_accum");
    a.add();
    a.add(41);
    // A second handle onto the same name feeds the same metric.
    const Counter b = reg.counter("test_counter_accum");
    b.add(8);
    EXPECT_EQ(counter_value(reg.scrape(), "test_counter_accum"), 50u);
}

TEST(ObsRegistry, GaugeGoesUpAndDown)
{
    SKIP_UNLESS_OBS_LIVE();
    auto& reg = Metrics_registry::instance();
    const Gauge g = reg.gauge("test_gauge_updown");
    g.add(10);
    g.add(-3);
    const Snapshot snap = reg.scrape();
    for (const auto& row : snap.gauges)
        if (row.name == "test_gauge_updown") {
            EXPECT_EQ(row.value, 7);
            return;
        }
    FAIL() << "gauge row missing";
}

TEST(ObsRegistry, CrossTypeNameCollisionThrows)
{
    SKIP_UNLESS_OBS_LIVE();
    auto& reg = Metrics_registry::instance();
    (void)reg.counter("test_collision_name");
    EXPECT_THROW((void)reg.gauge("test_collision_name"), Seda_error);
    EXPECT_THROW((void)reg.histogram("test_collision_name"), Seda_error);
    // Same-type re-registration is the documented re-open path.
    EXPECT_NO_THROW((void)reg.counter("test_collision_name"));
}

TEST(ObsRegistry, ScrapeOfQuiescedProcessIsStableAndSorted)
{
    SKIP_UNLESS_OBS_LIVE();
    auto& reg = Metrics_registry::instance();
    reg.counter("test_stable_b").add(2);
    reg.counter("test_stable_a").add(1);
    reg.histogram("test_stable_h").record(5.0);

    const Snapshot s1 = reg.scrape();
    const Snapshot s2 = reg.scrape();
    ASSERT_EQ(s1.counters.size(), s2.counters.size());
    for (std::size_t i = 0; i < s1.counters.size(); ++i) {
        EXPECT_EQ(s1.counters[i].name, s2.counters[i].name);
        EXPECT_EQ(s1.counters[i].value, s2.counters[i].value);
        if (i > 0) {
            // Strictly increasing by (name, label value): labeled rows of
            // one family share the name and sort by value.
            const auto key = [](const Snapshot::Counter_row& r) {
                return std::pair(r.name, r.label_value);
            };
            EXPECT_LT(key(s1.counters[i - 1]), key(s1.counters[i]));
        }
    }
    // Rendered exports are therefore byte-stable too.
    std::ostringstream prom1;
    std::ostringstream prom2;
    write_prometheus(s1, prom1);
    write_prometheus(s2, prom2);
    EXPECT_EQ(prom1.str(), prom2.str());
}

TEST(ObsRegistry, ConcurrentShardsMergeExactly)
{
    SKIP_UNLESS_OBS_LIVE();
    auto& reg = Metrics_registry::instance();
    const Counter c = reg.counter("test_concurrent_counter");
    const Histogram h = reg.histogram("test_concurrent_hist");

    constexpr std::size_t k_items = 40000;
    runtime::Thread_pool pool(8);
    pool.parallel_for(k_items, [&](std::size_t, runtime::Index_range range) {
        for (std::size_t i = range.begin; i < range.end; ++i) {
            c.add();
            h.record(static_cast<double>(i % 97) + 1.0);
        }
    });

    const Snapshot snap = reg.scrape();
    EXPECT_EQ(counter_value(snap, "test_concurrent_counter"), k_items);
    const auto* row = find_histogram(snap, "test_concurrent_hist");
    ASSERT_NE(row, nullptr);
    EXPECT_EQ(row->hist.count(), k_items);
    EXPECT_GE(row->hist.min(), 1.0 - 0.01);
    EXPECT_LE(row->hist.max(), 97.0 * 1.01);
}

TEST(ObsRegistry, ValuesSurviveRecordingThreadExit)
{
    SKIP_UNLESS_OBS_LIVE();
    auto& reg = Metrics_registry::instance();
    const Counter c = reg.counter("test_thread_exit_counter");
    {
        // A short-lived pool: its workers record, then exit and donate
        // their cells back; the values must still scrape.
        runtime::Thread_pool pool(4);
        pool.parallel_for(1000, [&](std::size_t, runtime::Index_range range) {
            for (std::size_t i = range.begin; i < range.end; ++i) c.add();
        });
    }
    EXPECT_EQ(counter_value(reg.scrape(), "test_thread_exit_counter"), 1000u);
}

TEST(ObsStageSpan, SpanRecordsIntoStageHistogram)
{
    SKIP_UNLESS_OBS_LIVE();
    auto& reg = Metrics_registry::instance();
    const auto count_of = [&] {
        const Snapshot snap = reg.scrape();
        const auto* row = find_histogram(snap, stage_metric_name(Stage::stage_writes));
        return row ? row->hist.count() : 0;
    };
    // Spans sample every Nth construction per thread; N*16 constructions
    // therefore record exactly 16 times, whatever the counter's phase.
    const unsigned stride = stage_sample_stride();
    const u64 before = count_of();
    for (unsigned i = 0; i < 16 * stride; ++i) {
        Stage_span span(Stage::stage_writes);
    }
    EXPECT_EQ(count_of(), before + 16);
}

TEST(ObsStageSpan, CoarseStagesAreExemptFromSampling)
{
    SKIP_UNLESS_OBS_LIVE();
    auto& reg = Metrics_registry::instance();
    const auto count_of = [&] {
        const Snapshot snap = reg.scrape();
        const auto* row = find_histogram(snap, stage_metric_name(Stage::infer_layer));
        return row ? row->hist.count() : 0;
    };
    // Per-layer spans are few per run (fewer than one stride for a small
    // model), so every construction must record.
    const u64 before = count_of();
    for (int i = 0; i < 3; ++i) {
        Stage_span span(Stage::infer_layer, "l");
    }
    EXPECT_EQ(count_of(), before + 3);
}

TEST(ObsStageSpan, PhaseTimerRecordsEachLap)
{
    SKIP_UNLESS_OBS_LIVE();
    auto& reg = Metrics_registry::instance();
    const auto count_of = [&](Stage s) {
        const Snapshot snap = reg.scrape();
        const auto* row = find_histogram(snap, stage_metric_name(s));
        return row ? row->hist.count() : 0;
    };
    const unsigned stride = stage_sample_stride();
    const u64 baes_before = count_of(Stage::baes);
    const u64 mac_before = count_of(Stage::bulk_mac);
    for (unsigned i = 0; i < 16 * stride; ++i) {
        Phase_timer t;
        t.lap(Stage::baes);
        t.lap(Stage::bulk_mac);
    }
    EXPECT_EQ(count_of(Stage::baes), baes_before + 16);
    EXPECT_EQ(count_of(Stage::bulk_mac), mac_before + 16);
}

TEST(ObsTrace, RecorderCapturesSpansAndRendersChromeJson)
{
    SKIP_UNLESS_OBS_LIVE();
    Trace_recorder::start();
    ASSERT_TRUE(Trace_recorder::active());
    { Stage_span span(Stage::infer_layer, "conv\"1\\x"); }
    { Stage_span span(Stage::verify); }
    std::ostringstream os;
    Trace_recorder::write_json(os);
    EXPECT_FALSE(Trace_recorder::active());  // write_json disarms

    const std::string json = os.str();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("infer.layer:conv\\\"1\\\\x"), std::string::npos);
    EXPECT_NE(json.find("crypto.verify"), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
}

TEST(ObsTrace, InactiveRecorderCostsNothingAndRendersEmpty)
{
    SKIP_UNLESS_OBS_LIVE();
    // Not started (or already drained by a prior test): spans must not
    // accumulate events.
    ASSERT_FALSE(Trace_recorder::active());
    { Stage_span span(Stage::verify); }
    std::ostringstream os;
    Trace_recorder::write_json(os);
    EXPECT_NE(os.str().find("\"traceEvents\""), std::string::npos);
    EXPECT_EQ(os.str().find("crypto.verify"), std::string::npos);
}

TEST(ObsExport, JsonAndPrometheusCarryHistogramSummaries)
{
    SKIP_UNLESS_OBS_LIVE();
    auto& reg = Metrics_registry::instance();
    const Histogram h = reg.histogram("test_export_hist_us");
    for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));
    const Snapshot snap = reg.scrape();

    std::ostringstream prom;
    write_prometheus(snap, prom);
    EXPECT_NE(prom.str().find("# TYPE seda_test_export_hist_us histogram"),
              std::string::npos);
    EXPECT_NE(prom.str().find("seda_test_export_hist_us_bucket{le=\"+Inf\"} 100"),
              std::string::npos);
    EXPECT_NE(prom.str().find("seda_test_export_hist_us_count 100"), std::string::npos);

    std::ostringstream js;
    write_json(snap, js);
    EXPECT_NE(js.str().find("\"name\": \"test_export_hist_us\""), std::string::npos);
    EXPECT_NE(js.str().find("\"p999\""), std::string::npos);
}

}  // namespace
}  // namespace seda::obs
