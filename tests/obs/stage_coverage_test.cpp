// Coverage gate for the stage catalog: every obs::Stage value must carry a
// metric name, a trace name, unique on both axes, and a row in the
// docs/OBSERVABILITY.md stage table -- so adding a stage without
// documenting it fails CI instead of silently shipping an unnamed series.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "obs/stage.h"

namespace seda::obs {
namespace {

std::string docs_path()
{
    // tests/obs/<this file> -> repo root -> docs/OBSERVABILITY.md.
    std::string path = __FILE__;
    const auto pos = path.rfind("tests/obs/");
    EXPECT_NE(pos, std::string::npos) << "unexpected __FILE__ layout: " << path;
    return path.substr(0, pos) + "docs/OBSERVABILITY.md";
}

TEST(ObsStageCoverage, EveryStageHasUniqueMetricAndTraceNames)
{
    std::set<std::string> metrics;
    std::set<std::string> traces;
    for (std::size_t i = 0; i < k_stage_count; ++i) {
        const auto s = static_cast<Stage>(i);
        const char* metric = stage_metric_name(s);
        const char* trace = stage_trace_name(s);
        ASSERT_NE(metric, nullptr) << "stage " << i;
        ASSERT_NE(trace, nullptr) << "stage " << i;
        EXPECT_FALSE(std::string(metric).empty()) << "stage " << i;
        EXPECT_FALSE(std::string(trace).empty()) << "stage " << i;
        EXPECT_TRUE(metrics.insert(metric).second)
            << "duplicate metric name " << metric;
        EXPECT_TRUE(traces.insert(trace).second) << "duplicate trace name " << trace;
    }
}

TEST(ObsStageCoverage, EveryStageHasADocsTableRow)
{
    std::ifstream f(docs_path());
    ASSERT_TRUE(f.good()) << "cannot open " << docs_path();
    std::stringstream buf;
    buf << f.rdbuf();
    const std::string docs = buf.str();

    for (std::size_t i = 0; i < k_stage_count; ++i) {
        const auto s = static_cast<Stage>(i);
        // The stage table renders both names in backticks; requiring the
        // exact `| `name` |` cell shape keeps prose mentions from
        // satisfying the gate.
        const std::string metric_cell =
            "| `" + std::string(stage_metric_name(s)) + "` |";
        const std::string trace_cell =
            " `" + std::string(stage_trace_name(s)) + "` |";
        EXPECT_NE(docs.find(metric_cell), std::string::npos)
            << stage_metric_name(s) << " has no docs/OBSERVABILITY.md table row";
        EXPECT_NE(docs.find(trace_cell), std::string::npos)
            << stage_trace_name(s) << " has no docs/OBSERVABILITY.md table row";
    }
}

}  // namespace
}  // namespace seda::obs
