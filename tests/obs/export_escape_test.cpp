// Exposition hardening: Prometheus label-value escaping, JSON string
// escaping, and registration-time rejection of malformed metric names and
// label keys (hostile label VALUES are legal and must round-trip escaped;
// names and keys are identifiers and must not).
//
// Metric names are unique to this file: the registry is process-wide.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/error.h"
#include "obs/export.h"
#include "obs/metrics.h"

namespace seda::obs {
namespace {

#define SKIP_UNLESS_OBS_LIVE() \
    if (!enabled()) GTEST_SKIP() << "observability disabled in this build/env"

Snapshot hostile_snapshot()
{
    Snapshot snap;
    Snapshot::Counter_row c;
    c.name = "esc_total";
    c.label_key = "tenant";
    c.label_value = "a\\b\"c\nd";  // backslash, quote, newline
    c.value = 1;
    snap.counters.push_back(c);
    return snap;
}

TEST(ObsExportEscape, PrometheusLabelValuesEscapeBackslashQuoteNewline)
{
    std::ostringstream os;
    write_prometheus(hostile_snapshot(), os);
    const std::string out = os.str();
    // Exposition-format rules: \ -> \\, " -> \", newline -> literal \n.
    EXPECT_NE(out.find("seda_esc_total{tenant=\"a\\\\b\\\"c\\nd\"} 1"),
              std::string::npos)
        << out;
    // The raw newline byte must not survive inside the sample line.
    EXPECT_EQ(out.find("c\nd"), std::string::npos) << out;
}

TEST(ObsExportEscape, JsonLabelValuesEscapeQuotesAndControlChars)
{
    std::ostringstream os;
    write_json(hostile_snapshot(), os);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"tenant\": \"a\\\\b\\\"c\\u000ad\""), std::string::npos)
        << out;
}

TEST(ObsExportEscape, RegistrationRejectsMalformedNamesAndKeys)
{
    SKIP_UNLESS_OBS_LIVE();
    auto& reg = Metrics_registry::instance();
    EXPECT_THROW((void)reg.counter("9leading_digit"), Seda_error);
    EXPECT_THROW((void)reg.counter("has space"), Seda_error);
    EXPECT_THROW((void)reg.counter("has-dash"), Seda_error);
    EXPECT_THROW((void)reg.counter("has\"quote"), Seda_error);
    EXPECT_THROW((void)reg.counter(""), Seda_error);
    EXPECT_THROW((void)reg.counter("esc_ok_total", "bad key", "0"), Seda_error);
    EXPECT_THROW((void)reg.counter("esc_ok_total", "le\"", "0"), Seda_error);
    // Identifier names and keys pass; hostile label VALUES are accepted
    // (they are data, escaped at exposition time).
    EXPECT_NO_THROW((void)reg.counter("esc_ok_total", "tenant", "any\"thing"));
    EXPECT_NO_THROW((void)reg.counter("_leading_underscore_esc_total"));
}

TEST(ObsExportEscape, HostileLabelValueSurvivesRealScrape)
{
    SKIP_UNLESS_OBS_LIVE();
    auto& reg = Metrics_registry::instance();
    reg.counter("esc_live_total", "tenant", "x\"y").add(3);

    std::ostringstream os;
    write_prometheus(reg.scrape(), os);
    EXPECT_NE(os.str().find("seda_esc_live_total{tenant=\"x\\\"y\"} 3"),
              std::string::npos)
        << os.str();
}

}  // namespace
}  // namespace seda::obs
