// SLO spec parsing and error-budget burn arithmetic on hand-computed
// windows.  Everything here runs on synthetic Intervals -- no registry, no
// poller -- so the math is exact up to histogram bucket width (samples are
// placed far from the thresholds to keep count_le bucket-exact).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "obs/slo.h"
#include "obs/snapshot.h"

namespace seda::obs {
namespace {

/// One synthetic differ window: `at10` samples at 10us, `at10k` at 10000us.
Interval window(const std::string& family, int at10, int at10k)
{
    Interval iv;
    iv.seconds = 1.0;
    Hist_delta hd;
    hd.name = family;
    for (int i = 0; i < at10; ++i) hd.hist.record(10.0);
    for (int i = 0; i < at10k; ++i) hd.hist.record(10000.0);
    iv.histograms.push_back(std::move(hd));
    return iv;
}

TEST(ObsSloParse, AcceptsFullGrammar)
{
    const Slo_spec a = parse_slo("serve_tenant_latency_us:p99<500us:0.999");
    EXPECT_EQ(a.family, "serve_tenant_latency_us");
    EXPECT_DOUBLE_EQ(a.percentile, 99.0);
    EXPECT_DOUBLE_EQ(a.threshold, 500.0);
    EXPECT_DOUBLE_EQ(a.target, 0.999);
    EXPECT_EQ(a.text, "serve_tenant_latency_us:p99<500us:0.999");

    EXPECT_DOUBLE_EQ(parse_slo("f_us:p99.9<2ms:0.99").threshold, 2000.0);
    EXPECT_DOUBLE_EQ(parse_slo("f_us:p99.9<2ms:0.99").percentile, 99.9);
    EXPECT_DOUBLE_EQ(parse_slo("f_us:p50<1s:0.5").threshold, 1e6);
    // No unit suffix: the family's native unit.
    EXPECT_DOUBLE_EQ(parse_slo("f_us:p90<250:0.9").threshold, 250.0);
}

TEST(ObsSloParse, RejectsMalformedSpecs)
{
    EXPECT_THROW((void)parse_slo(""), Seda_error);
    EXPECT_THROW((void)parse_slo("no_colons"), Seda_error);
    EXPECT_THROW((void)parse_slo(":p99<500us:0.999"), Seda_error);       // empty family
    EXPECT_THROW((void)parse_slo("f:p99<500us"), Seda_error);            // no target
    EXPECT_THROW((void)parse_slo("f:99<500us:0.9"), Seda_error);         // no 'p'
    EXPECT_THROW((void)parse_slo("f:p99=500us:0.9"), Seda_error);        // no '<'
    EXPECT_THROW((void)parse_slo("f:p0<500us:0.9"), Seda_error);         // pct 0
    EXPECT_THROW((void)parse_slo("f:p101<500us:0.9"), Seda_error);       // pct > 100
    EXPECT_THROW((void)parse_slo("f:p99<0us:0.9"), Seda_error);          // zero thresh
    EXPECT_THROW((void)parse_slo("f:p99<500xx:0.9"), Seda_error);        // bad unit
    EXPECT_THROW((void)parse_slo("f:p99<500us:1.0"), Seda_error);        // target = 1
    EXPECT_THROW((void)parse_slo("f:p99<500us:0"), Seda_error);          // target = 0
    EXPECT_THROW((void)parse_slo("f:p99<500us:lots"), Seda_error);       // non-numeric
}

TEST(ObsSloBurn, HandComputedWindows)
{
    // target 0.9 => budget 0.1.  Window 1: 95 good / 5 bad => burn 0.5
    // (underspending).  Window 2: 80 good / 20 bad => burn 2.0.
    Slo_tracker tracker({parse_slo("slo_burn_us:p99<100us:0.9")});
    tracker.observe(window("slo_burn_us", 95, 5));
    tracker.observe(window("slo_burn_us", 80, 20));

    ASSERT_EQ(tracker.results().size(), 1u);
    const Slo_result& r = tracker.results()[0];
    EXPECT_EQ(r.windows, 2u);
    EXPECT_EQ(r.total, 200u);
    EXPECT_DOUBLE_EQ(r.good, 175.0);
    EXPECT_DOUBLE_EQ(r.availability(), 0.875);
    EXPECT_DOUBLE_EQ(r.budget_consumed(), 1.25);  // (1 - 0.875) / 0.1
    EXPECT_FALSE(r.met());
    EXPECT_FALSE(tracker.all_met());

    EXPECT_DOUBLE_EQ(r.last_burn, 2.0);
    EXPECT_DOUBLE_EQ(r.peak_burn_1w, 2.0);
    // Both windows fit the default 12-window ring: (5+20)/200 / 0.1.
    EXPECT_DOUBLE_EQ(r.peak_burn_slow, 1.25);

    // p99 of both windows lands in the 10000us mode, over the threshold.
    EXPECT_EQ(r.violations, 2u);
    EXPECT_GT(r.worst_window_pct, 100.0);
}

TEST(ObsSloBurn, SlowWindowRingEvictsOldWindows)
{
    // slow_windows = 2: window 3's slow burn covers windows {2, 3} only.
    // Burns per window: 0, 1.0 ((20/200)/0.1), 2.0 ((40/200)/0.1).  Without
    // eviction window 3 would read (40/300)/0.1 = 1.33.
    Slo_tracker tracker({parse_slo("slo_ring_us:p99<100us:0.9")}, 2);
    tracker.observe(window("slo_ring_us", 100, 0));
    tracker.observe(window("slo_ring_us", 80, 20));
    tracker.observe(window("slo_ring_us", 80, 20));
    EXPECT_DOUBLE_EQ(tracker.results()[0].peak_burn_slow, 2.0);
}

TEST(ObsSloBurn, IdleWindowsNeitherBurnNorEarn)
{
    Slo_tracker tracker({parse_slo("slo_idle_us:p99<100us:0.9")});
    tracker.observe(window("slo_idle_us", 90, 10));       // burn exactly 1.0
    tracker.observe(window("some_other_family_us", 5, 5));  // not ours: skipped
    Interval empty;
    empty.seconds = 1.0;
    tracker.observe(empty);

    const Slo_result& r = tracker.results()[0];
    EXPECT_EQ(r.windows, 1u);
    EXPECT_EQ(r.total, 100u);
    EXPECT_DOUBLE_EQ(r.budget_consumed(), 1.0);
    EXPECT_TRUE(r.met());  // burning exactly on schedule still meets
}

TEST(ObsSloBurn, CleanRunMeetsWithZeroBurn)
{
    Slo_tracker tracker({parse_slo("slo_clean_us:p99<100us:0.999")});
    tracker.observe(window("slo_clean_us", 100, 0));
    tracker.observe(window("slo_clean_us", 100, 0));

    const Slo_result& r = tracker.results()[0];
    EXPECT_DOUBLE_EQ(r.availability(), 1.0);
    EXPECT_DOUBLE_EQ(r.budget_consumed(), 0.0);
    EXPECT_DOUBLE_EQ(r.peak_burn_1w, 0.0);
    EXPECT_EQ(r.violations, 0u);
    EXPECT_TRUE(r.met());
    EXPECT_TRUE(tracker.all_met());
}

TEST(ObsSloBurn, NoWindowsMeansVacuouslyMet)
{
    const Slo_tracker tracker({parse_slo("slo_never_us:p99<100us:0.9")});
    EXPECT_DOUBLE_EQ(tracker.results()[0].availability(), 1.0);
    EXPECT_TRUE(tracker.all_met());
}

TEST(ObsSloReport, JsonAndSummaryCarryTheVerdict)
{
    Slo_tracker tracker({parse_slo("slo_rep_us:p99<100us:0.9"),
                         parse_slo("slo_rep_us:p50<20000us:0.5")});
    tracker.observe(window("slo_rep_us", 80, 20));

    std::ostringstream json;
    tracker.write_json(json);
    const std::string j = json.str();
    EXPECT_NE(j.find("\"slo\": \"slo_rep_us:p99<100us:0.9\""), std::string::npos) << j;
    EXPECT_NE(j.find("\"budget_consumed\": 2"), std::string::npos) << j;
    EXPECT_NE(j.find("\"met\": false"), std::string::npos) << j;
    EXPECT_NE(j.find("\"met\": true"), std::string::npos) << j;  // the loose p50 one
    EXPECT_NE(j.find("\"all_met\": false"), std::string::npos) << j;

    std::ostringstream sum;
    tracker.write_summary(sum);
    EXPECT_NE(sum.str().find("MISSED"), std::string::npos) << sum.str();
    EXPECT_NE(sum.str().find(": met"), std::string::npos) << sum.str();
}

}  // namespace
}  // namespace seda::obs
