// The umbrella header must compile standalone and expose the entry points.
#include "seda.h"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, ExposesEntryPoints)
{
    const auto npu = seda::accel::Npu_config::edge();
    const auto sim = seda::accel::simulate_model(seda::models::lenet(), npu);
    auto scheme = seda::core::make_scheme("seda");
    const auto stats = seda::core::run_protected(sim, *scheme);
    EXPECT_GT(stats.total_cycles, 0u);
    EXPECT_EQ(seda::models::all_models().size(), 13u);
    EXPECT_GT(seda::crypto::t_aes_cost(4.0).area_um2, 0.0);
}

}  // namespace
