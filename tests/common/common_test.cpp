// Utility-layer tests: bit helpers, RNG determinism, stats, table formatting.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/bitutil.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/units.h"

namespace seda {
namespace {

TEST(Bitutil, CeilDiv)
{
    EXPECT_EQ(ceil_div(0, 4), 0);
    EXPECT_EQ(ceil_div(1, 4), 1);
    EXPECT_EQ(ceil_div(4, 4), 1);
    EXPECT_EQ(ceil_div(5, 4), 2);
    EXPECT_EQ(ceil_div<u64>(1ULL << 40, 3), ((1ULL << 40) + 2) / 3);
}

TEST(Bitutil, Alignment)
{
    EXPECT_EQ(align_up<u64>(0, 64), 0u);
    EXPECT_EQ(align_up<u64>(1, 64), 64u);
    EXPECT_EQ(align_up<u64>(64, 64), 64u);
    EXPECT_EQ(align_down<u64>(63, 64), 0u);
    EXPECT_EQ(align_down<u64>(64, 64), 64u);
    EXPECT_EQ(align_down<u64>(130, 64), 128u);
}

TEST(Bitutil, PowersOfTwo)
{
    EXPECT_TRUE(is_pow2(1));
    EXPECT_TRUE(is_pow2(64));
    EXPECT_FALSE(is_pow2(0));
    EXPECT_FALSE(is_pow2(65));
    EXPECT_EQ(log2_floor(1), 0u);
    EXPECT_EQ(log2_floor(64), 6u);
    EXPECT_EQ(log2_floor(65), 6u);
    EXPECT_EQ(next_pow2(1), 1u);
    EXPECT_EQ(next_pow2(65), 128u);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next_u64() == b.next_u64()) ++equal;
    EXPECT_EQ(equal, 0);
}

TEST(Rng, NextBelowStaysInRange)
{
    Rng rng(7);
    std::set<u64> seen;
    for (int i = 0; i < 1000; ++i) {
        const u64 v = rng.next_below(10);
        EXPECT_LT(v, 10u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 10u);  // all residues hit
}

TEST(Rng, UnitIntervalBounds)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.next_unit();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Stats, RunningStats)
{
    Running_stats s;
    s.add(1.0);
    s.add(3.0);
    s.add(2.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Stats, Means)
{
    const double xs[] = {1.0, 4.0, 16.0};
    EXPECT_DOUBLE_EQ(mean_of(xs), 7.0);
    EXPECT_NEAR(geomean_of(xs), 4.0, 1e-12);
    EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
}

TEST(Stats, OverheadPct)
{
    EXPECT_DOUBLE_EQ(overhead_pct(1.3, 1.0), 30.0);
    EXPECT_NEAR(overhead_pct(1.0, 1.0), 0.0, 1e-12);
}

TEST(Stats, PercentilesNearestRank)
{
    EXPECT_DOUBLE_EQ(percentile_sorted({}, 50.0), 0.0);

    const double one[] = {7.0};
    EXPECT_DOUBLE_EQ(percentile_sorted(one, 0.0), 7.0);
    EXPECT_DOUBLE_EQ(percentile_sorted(one, 50.0), 7.0);
    EXPECT_DOUBLE_EQ(percentile_sorted(one, 100.0), 7.0);

    const double two[] = {1.0, 2.0};
    EXPECT_DOUBLE_EQ(percentile_sorted(two, 50.0), 1.0);  // ceil(0.5*2)=1st
    EXPECT_DOUBLE_EQ(percentile_sorted(two, 51.0), 2.0);
    EXPECT_DOUBLE_EQ(percentile_sorted(two, 100.0), 2.0);

    // 1..100: the nearest-rank pct-th percentile is exactly pct.
    std::vector<double> hundred(100);
    for (int i = 0; i < 100; ++i) hundred[static_cast<std::size_t>(i)] = i + 1.0;
    EXPECT_DOUBLE_EQ(percentile_sorted(hundred, 50.0), 50.0);
    EXPECT_DOUBLE_EQ(percentile_sorted(hundred, 95.0), 95.0);
    EXPECT_DOUBLE_EQ(percentile_sorted(hundred, 99.0), 99.0);

    // The unsorted form sorts a copy and agrees.
    const double shuffled[] = {9.0, 1.0, 5.0, 3.0, 7.0};
    EXPECT_DOUBLE_EQ(percentile_of(shuffled, 50.0), 5.0);
    EXPECT_DOUBLE_EQ(percentile_of(shuffled, 100.0), 9.0);
}

TEST(Stats, PercentilesInterpolated)
{
    EXPECT_DOUBLE_EQ(percentile_interp_sorted({}, 50.0), 0.0);

    const double one[] = {7.0};
    EXPECT_DOUBLE_EQ(percentile_interp_sorted(one, 0.0), 7.0);
    EXPECT_DOUBLE_EQ(percentile_interp_sorted(one, 100.0), 7.0);

    // Even sample count: the median blends the straddling pair instead of
    // snapping to one member the way nearest-rank does.
    const double four[] = {10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(percentile_interp_sorted(four, 50.0), 25.0);
    EXPECT_DOUBLE_EQ(percentile_sorted(four, 50.0), 20.0);

    // 1..100: nearest-rank p99 lands on the literal maximum (tail
    // overstatement); interpolation reads 99% of the way there.
    std::vector<double> hundred(100);
    for (int i = 0; i < 100; ++i) hundred[static_cast<std::size_t>(i)] = i + 1.0;
    EXPECT_DOUBLE_EQ(percentile_sorted(hundred, 99.0), 99.0);
    EXPECT_DOUBLE_EQ(percentile_interp_sorted(hundred, 99.0), 99.01);
    EXPECT_DOUBLE_EQ(percentile_interp_sorted(hundred, 100.0), 100.0);

    const double shuffled[] = {9.0, 1.0, 5.0, 3.0, 7.0};
    EXPECT_DOUBLE_EQ(percentile_interp_of(shuffled, 50.0), 5.0);
    EXPECT_DOUBLE_EQ(percentile_interp_of(shuffled, 75.0), 7.0);
}

TEST(Bitutil, Fnv1a64KnownVectorsAndSensitivity)
{
    // FNV-1a reference values: empty input is the offset basis; "a" is a
    // published test vector.
    EXPECT_EQ(fnv1a64(nullptr, 0), 0xCBF29CE484222325ULL);
    const u8 a[] = {'a'};
    EXPECT_EQ(fnv1a64(a, 1), 0xAF63DC4C8601EC8CULL);

    const u8 x[] = {1, 2, 3, 4};
    const u8 y[] = {1, 2, 4, 3};  // same bytes, different order
    EXPECT_NE(fnv1a64(x, sizeof x), fnv1a64(y, sizeof y));
}

TEST(Table, AlignsAndCounts)
{
    Ascii_table t({"a", "long_header"});
    t.add_row({"x", "1"});
    t.add_row({"yy", "22"});
    EXPECT_EQ(t.row_count(), 2u);
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("long_header"), std::string::npos);
    EXPECT_NE(os.str().find("yy"), std::string::npos);
}

TEST(Table, RejectsRaggedRows)
{
    Ascii_table t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), Seda_error);
}

TEST(Table, CsvOutput)
{
    Ascii_table t({"a", "b"});
    t.add_row({"1", "2"});
    std::ostringstream os;
    t.print_csv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Format, Helpers)
{
    EXPECT_EQ(fmt_f(1.2345, 2), "1.23");
    EXPECT_EQ(fmt_pct(0.1226), "12.26%");
    EXPECT_EQ(fmt_bytes(512), "512 B");
    EXPECT_EQ(fmt_bytes(2048), "2.00 KiB");
    EXPECT_EQ(fmt_bytes(3ULL * 1024 * 1024), "3.00 MiB");
}

TEST(Units, Literals)
{
    EXPECT_EQ(4_KiB, 4096u);
    EXPECT_EQ(24_MiB, 24ULL * 1024 * 1024);
    EXPECT_EQ(16_GiB, 16ULL * 1024 * 1024 * 1024);
    EXPECT_DOUBLE_EQ(gb_per_s(20.0), 20e9);
}

TEST(Error, RequireThrowsWithMessage)
{
    EXPECT_NO_THROW(require(true, "ok"));
    try {
        require(false, "broken invariant");
        FAIL() << "should have thrown";
    } catch (const Seda_error& e) {
        EXPECT_NE(std::string(e.what()).find("broken invariant"), std::string::npos);
    }
}

}  // namespace
}  // namespace seda
