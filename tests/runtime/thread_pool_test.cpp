// Thread_pool / Task_queue: futures-based join, exception propagation, and
// the shard geometry every sharded runtime path relies on.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/error.h"
#include "runtime/thread_pool.h"

namespace seda::runtime {
namespace {

TEST(ShardRanges, CoversExactlyOnceOnRaggedCounts)
{
    for (const std::size_t n : {0u, 1u, 2u, 5u, 7u, 8u, 9u, 64u, 129u, 1000u}) {
        for (const std::size_t shards : {1u, 2u, 3u, 4u, 8u, 16u}) {
            const auto ranges = shard_ranges(n, shards);
            std::vector<int> hits(n, 0);
            std::size_t expected_begin = 0;
            for (const auto& r : ranges) {
                EXPECT_EQ(r.begin, expected_begin);  // contiguous, in order
                EXPECT_GT(r.size(), 0u);             // no empty shards
                for (std::size_t i = r.begin; i < r.end; ++i) ++hits[i];
                expected_begin = r.end;
            }
            EXPECT_EQ(expected_begin, n) << n << " items over " << shards;
            for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i], 1);
            // Balanced: sizes differ by at most one.
            if (!ranges.empty()) {
                std::size_t lo = ranges[0].size(), hi = ranges[0].size();
                for (const auto& r : ranges) {
                    lo = std::min(lo, r.size());
                    hi = std::max(hi, r.size());
                }
                EXPECT_LE(hi - lo, 1u);
            }
        }
    }
    EXPECT_TRUE(shard_ranges(10, 0).empty());
}

TEST(TaskQueue, DrainsQueuedTasksAfterClose)
{
    Task_queue q;
    int ran = 0;
    EXPECT_TRUE(q.push([&] { ++ran; }));
    EXPECT_TRUE(q.push([&] { ++ran; }));
    q.close();
    EXPECT_FALSE(q.push([&] { ++ran; }));  // rejected after close
    while (auto t = q.pop()) (*t)();
    EXPECT_EQ(ran, 2);  // queued work still drained
}

TEST(ThreadPool, SubmitReturnsValues)
{
    Thread_pool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 64; ++i)
        futures.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 64; ++i) EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency)
{
    Thread_pool pool(0);
    EXPECT_EQ(pool.size(), Thread_pool::default_workers());
    EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    Thread_pool pool(2);
    auto f = pool.submit([]() -> int { throw Seda_error("boom"); });
    EXPECT_THROW((void)f.get(), Seda_error);
    // The worker survives the throw and keeps serving tasks.
    EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ParallelForCoversAllIndices)
{
    Thread_pool pool(8);
    for (const std::size_t n : {0u, 1u, 7u, 8u, 9u, 1000u}) {
        std::vector<std::atomic<int>> hits(n);
        pool.parallel_for(n, [&](std::size_t, Index_range range) {
            for (std::size_t i = range.begin; i < range.end; ++i)
                hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << n;
    }
}

TEST(ThreadPool, ParallelForJoinsEveryShardBeforeRethrowing)
{
    Thread_pool pool(4);
    std::atomic<int> completed{0};
    try {
        pool.parallel_for(100, [&](std::size_t shard, Index_range) {
            if (shard == 1) throw Seda_error("shard down");
            completed.fetch_add(1, std::memory_order_relaxed);
        });
        FAIL() << "expected Seda_error";
    } catch (const Seda_error&) {
    }
    // Every non-throwing shard finished before the rethrow reached us.
    EXPECT_EQ(completed.load(), 3);
}

TEST(ThreadPool, SingleWorkerPoolRunsEverything)
{
    Thread_pool pool(1);
    std::atomic<long> sum{0};
    pool.parallel_for(100, [&](std::size_t shard, Index_range range) {
        EXPECT_EQ(shard, 0u);
        for (std::size_t i = range.begin; i < range.end; ++i)
            sum.fetch_add(static_cast<long>(i));
    });
    EXPECT_EQ(sum.load(), 99 * 100 / 2);
}

TEST(ThreadPool, ManyConcurrentSubmittersAreSafe)
{
    Thread_pool pool(4);
    Thread_pool submitters(4);
    std::atomic<int> total{0};
    submitters.parallel_for(256, [&](std::size_t, Index_range range) {
        std::vector<std::future<void>> fs;
        for (std::size_t i = range.begin; i < range.end; ++i)
            fs.push_back(pool.submit([&total] { total.fetch_add(1); }));
        for (auto& f : fs) f.get();
    });
    EXPECT_EQ(total.load(), 256);
}

}  // namespace
}  // namespace seda::runtime
