// Concurrency determinism: the parallel suite driver must reproduce the
// serial core::run_suite bit-for-bit at any worker count -- same legend
// order, same zoo order, same doubles, same raw cycle/traffic counts.
#include <gtest/gtest.h>

#include <string_view>

#include "core/experiment.h"
#include "runtime/parallel_suite.h"

namespace seda::runtime {
namespace {

// A small but heterogeneous cross-section keeps this test TSan-friendly
// while still exercising every scheme and both NPUs.
constexpr std::string_view k_models[] = {"let", "mob", "ncf"};

void expect_identical(const core::Suite_result& a, const core::Suite_result& b)
{
    EXPECT_EQ(a.npu_name, b.npu_name);
    ASSERT_EQ(a.series.size(), b.series.size());
    for (std::size_t s = 0; s < a.series.size(); ++s) {
        const auto& sa = a.series[s];
        const auto& sb = b.series[s];
        EXPECT_EQ(sa.scheme, sb.scheme) << "legend order diverged at " << s;
        ASSERT_EQ(sa.points.size(), sb.points.size());
        for (std::size_t p = 0; p < sa.points.size(); ++p) {
            const auto& pa = sa.points[p];
            const auto& pb = sb.points[p];
            EXPECT_EQ(pa.model, pb.model) << "zoo order diverged at " << p;
            // Bit-identical, not approximately-equal: the parallel driver
            // must run the exact serial computation per cell.
            EXPECT_EQ(pa.norm_traffic, pb.norm_traffic) << sa.scheme << "/" << pa.model;
            EXPECT_EQ(pa.norm_perf, pb.norm_perf) << sa.scheme << "/" << pa.model;
            EXPECT_EQ(pa.stats.total_cycles, pb.stats.total_cycles);
            EXPECT_EQ(pa.stats.traffic_bytes, pb.stats.traffic_bytes);
            EXPECT_EQ(pa.stats.verify_events, pb.stats.verify_events);
            EXPECT_EQ(pa.stats.mac_misses, pb.stats.mac_misses);
            EXPECT_EQ(pa.baseline.total_cycles, pb.baseline.total_cycles);
            EXPECT_EQ(pa.baseline.traffic_bytes, pb.baseline.traffic_bytes);
        }
    }
}

TEST(ParallelSuite, Jobs8MatchesJobs1BitForBit)
{
    const auto npu = accel::Npu_config::edge();
    const auto serial =
        run_suite_parallel(npu, core::paper_schemes(), 1, k_models);
    const auto parallel =
        run_suite_parallel(npu, core::paper_schemes(), 8, k_models);
    expect_identical(serial, parallel);
}

TEST(ParallelSuite, MatchesSerialRunSuite)
{
    const auto npu = accel::Npu_config::server();
    const auto serial = core::run_suite(npu, core::paper_schemes(), k_models);
    const auto parallel =
        run_suite_parallel(npu, core::paper_schemes(), 4, k_models);
    expect_identical(serial, parallel);
}

TEST(ParallelSuite, MultiNpuSweepSharesThePool)
{
    const accel::Npu_config npus[] = {accel::Npu_config::server(),
                                      accel::Npu_config::edge()};
    constexpr std::string_view two_models[] = {"let", "ncf"};
    const auto results =
        run_suites_parallel(npus, core::paper_schemes(), 8, two_models);
    ASSERT_EQ(results.size(), 2u);
    for (std::size_t n = 0; n < 2; ++n) {
        expect_identical(core::run_suite(npus[n], core::paper_schemes(), two_models),
                         results[n]);
    }
}

TEST(ParallelSuite, UnknownSchemePropagatesAsException)
{
    constexpr std::string_view bad[] = {"seda", "no-such-scheme"};
    constexpr std::string_view one[] = {"let"};
    EXPECT_THROW((void)run_suite_parallel(accel::Npu_config::edge(), bad, 4, one),
                 Seda_error);
}

}  // namespace
}  // namespace seda::runtime
