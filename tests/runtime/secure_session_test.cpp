// Sharded Secure_session I/O must be bit-for-bit identical to the serial
// Secure_memory batch path on ragged unit counts, and per-unit
// tamper/replay detection must keep firing when one shard's ciphertext is
// corrupted.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "runtime/secure_session.h"

namespace seda::runtime {
namespace {

using core::Secure_memory;
using core::Verify_status;

constexpr Bytes k_unit_bytes = 64;
constexpr Addr k_base = 0x4000;

struct Keys {
    std::vector<u8> enc = std::vector<u8>(16);
    std::vector<u8> mac = std::vector<u8>(16);
    Keys()
    {
        Rng rng(0x5E55);
        for (auto& b : enc) b = rng.next_byte();
        for (auto& b : mac) b = rng.next_byte();
    }
};

std::vector<std::vector<u8>> tile_data(std::size_t units, u64 seed)
{
    Rng rng(seed);
    std::vector<std::vector<u8>> tile(units);
    for (auto& unit : tile) {
        unit.resize(k_unit_bytes);
        for (auto& b : unit) b = rng.next_byte();
    }
    return tile;
}

std::vector<Secure_memory::Unit_write> make_writes(const std::vector<std::vector<u8>>& tile)
{
    std::vector<Secure_memory::Unit_write> batch;
    for (std::size_t i = 0; i < tile.size(); ++i)
        batch.push_back({k_base + i * k_unit_bytes, tile[i], 9, 2, static_cast<u32>(i)});
    return batch;
}

std::vector<Secure_memory::Unit_read> make_reads(std::vector<std::vector<u8>>& out)
{
    std::vector<Secure_memory::Unit_read> batch;
    for (std::size_t i = 0; i < out.size(); ++i)
        batch.push_back({k_base + i * k_unit_bytes, out[i], 9, 2, static_cast<u32>(i)});
    return batch;
}

/// Stored state of a sharded session must equal the serial batch path's.
void expect_state_identical(const Secure_memory& a, const Secure_memory& b,
                            std::size_t units)
{
    ASSERT_EQ(a.unit_count(), b.unit_count());
    for (std::size_t i = 0; i < units; ++i) {
        const Addr addr = k_base + i * k_unit_bytes;
        const auto ua = a.snapshot(addr);
        const auto ub = b.snapshot(addr);
        EXPECT_EQ(ua.ciphertext, ub.ciphertext) << "unit " << i;
        EXPECT_EQ(ua.mac, ub.mac) << "unit " << i;
        EXPECT_EQ(ua.stored_vn, ub.stored_vn) << "unit " << i;
    }
    EXPECT_EQ(a.fold_all_macs(), b.fold_all_macs());
}

TEST(SecureSession, ShardedWriteMatchesSerialOnRaggedCounts)
{
    const Keys k;
    // Ragged on purpose: counts that don't divide evenly across workers,
    // fewer units than workers, and a single unit.
    for (const std::size_t units : {1u, 3u, 8u, 13u, 64u, 129u}) {
        for (const std::size_t workers : {1u, 4u, 8u}) {
            Secure_session session(k.enc, k.mac, {}, workers);
            Secure_memory serial(k.enc, k.mac);
            const auto tile = tile_data(units, units * 31 + workers);

            session.write_units(make_writes(tile));
            serial.write_units(make_writes(tile));
            expect_state_identical(session.memory(), serial, units);
        }
    }
}

TEST(SecureSession, ShardedReadMatchesSerialOnRaggedCounts)
{
    const Keys k;
    for (const std::size_t units : {1u, 5u, 13u, 129u}) {
        Secure_session session(k.enc, k.mac, {}, 8);
        const auto tile = tile_data(units, units * 17);
        session.write_units(make_writes(tile));

        auto sharded_out = tile_data(units, 999);  // junk to overwrite
        const auto sharded = session.read_units(make_reads(sharded_out));

        auto serial_out = tile_data(units, 999);
        const auto serial = session.memory().read_units(make_reads(serial_out));

        ASSERT_EQ(sharded.size(), units);
        for (std::size_t i = 0; i < units; ++i) {
            EXPECT_EQ(sharded[i], Verify_status::ok) << "unit " << i;
            EXPECT_EQ(sharded[i], serial[i]) << "unit " << i;
            EXPECT_EQ(sharded_out[i], serial_out[i]) << "unit " << i;
            EXPECT_EQ(sharded_out[i], tile[i]) << "unit " << i;
        }
    }
}

TEST(SecureSession, TamperInOneShardIsCaughtPerUnit)
{
    const Keys k;
    constexpr std::size_t units = 61;  // ragged across 8 workers
    Secure_session session(k.enc, k.mac, {}, 8);
    const auto tile = tile_data(units, 7);
    session.write_units(make_writes(tile));

    // Corrupt one unit that lands mid-shard; every other unit -- including
    // its shard neighbours -- must still verify.
    constexpr std::size_t victim = 42;
    session.memory().tamper(k_base + victim * k_unit_bytes, 5, 0x01);

    auto out = tile_data(units, 999);
    const auto statuses = session.read_units(make_reads(out));
    for (std::size_t i = 0; i < units; ++i) {
        if (i == victim)
            EXPECT_EQ(statuses[i], Verify_status::mac_mismatch);
        else
            EXPECT_EQ(statuses[i], Verify_status::ok) << "unit " << i;
    }
}

TEST(SecureSession, ReplayInOneShardIsCaughtPerUnit)
{
    const Keys k;
    constexpr std::size_t units = 29;
    Secure_session session(k.enc, k.mac, {}, 4);
    const auto tile = tile_data(units, 11);
    session.write_units(make_writes(tile));

    constexpr std::size_t victim = 17;
    const Addr victim_addr = k_base + victim * k_unit_bytes;
    const auto old = session.memory().snapshot(victim_addr);
    session.write_units(make_writes(tile_data(units, 12)));
    session.memory().rollback(victim_addr, old);

    auto out = tile_data(units, 999);
    const auto statuses = session.read_units(make_reads(out));
    for (std::size_t i = 0; i < units; ++i) {
        if (i == victim)
            EXPECT_EQ(statuses[i], Verify_status::replay_detected);
        else
            EXPECT_EQ(statuses[i], Verify_status::ok) << "unit " << i;
    }
}

TEST(SecureSession, DuplicateAddressesInBatchKeepSerialSemantics)
{
    const Keys k;
    Secure_session session(k.enc, k.mac, {}, 8);
    Secure_memory serial(k.enc, k.mac);

    // Two writes to every address inside one batch: the later payload (and
    // VN) must win, exactly as the serial path leaves it.
    const auto first = tile_data(16, 21);
    const auto second = tile_data(16, 22);
    auto batch = make_writes(first);
    const auto later = make_writes(second);
    batch.insert(batch.end(), later.begin(), later.end());

    session.write_units(batch);
    serial.write_units(batch);
    expect_state_identical(session.memory(), serial, 16);
    for (std::size_t i = 0; i < 16; ++i)
        EXPECT_EQ(session.memory().snapshot(k_base + i * k_unit_bytes).stored_vn, 2u);
}

TEST(SecureSession, MixedSessionAndSerialCallsInterleave)
{
    const Keys k;
    Secure_session session(k.enc, k.mac, {}, 4);
    const auto tile = tile_data(8, 31);
    session.write_units(make_writes(tile));

    // Serial single-unit I/O through memory() sees the sharded writes and
    // vice versa -- one coherent memory underneath.
    std::vector<u8> one(k_unit_bytes);
    EXPECT_EQ(session.memory().read(k_base, one, 9, 2, 0), Verify_status::ok);
    EXPECT_EQ(one, tile[0]);

    const auto tile2 = tile_data(8, 32);
    session.memory().write(k_base, tile2[0], 9, 2, 0);
    auto out = tile_data(8, 999);
    const auto statuses = session.read_units(make_reads(out));
    for (const auto s : statuses) EXPECT_EQ(s, Verify_status::ok);
    EXPECT_EQ(out[0], tile2[0]);
    EXPECT_EQ(out[1], tile[1]);
}

TEST(SecureSession, SharedPoolSessionsMatchSerialUnderConcurrentDispatch)
{
    // Two sessions over ONE shared pool (the serving-layer shape),
    // dispatched from two threads at once: each session's state must still
    // be bit-identical to its own serial path -- per-session Worker_state
    // means nothing is shared but the queue.
    const Keys k;
    std::vector<u8> enc2(k.enc), mac2(k.mac);
    enc2[0] ^= 0x5A;  // distinct keys, like distinct tenants
    mac2[0] ^= 0xA5;

    Thread_pool pool(4);
    Secure_session s1(k.enc, k.mac, {}, pool);
    Secure_session s2(enc2, mac2, {}, pool);
    EXPECT_EQ(s1.workers(), 4u);

    const auto tile1 = tile_data(97, 51);
    const auto tile2 = tile_data(61, 52);
    std::thread t1([&] {
        for (int i = 0; i < 5; ++i) s1.write_units(make_writes(tile1));
    });
    std::thread t2([&] {
        for (int i = 0; i < 5; ++i) s2.write_units(make_writes(tile2));
    });
    t1.join();
    t2.join();

    Secure_memory serial1(k.enc, k.mac);
    Secure_memory serial2(enc2, mac2);
    for (int i = 0; i < 5; ++i) serial1.write_units(make_writes(tile1));
    for (int i = 0; i < 5; ++i) serial2.write_units(make_writes(tile2));
    expect_state_identical(s1.memory(), serial1, 97);
    expect_state_identical(s2.memory(), serial2, 61);

    // Concurrent reads over the shared pool verify clean, too.
    auto out1 = tile_data(97, 999);
    auto out2 = tile_data(61, 999);
    std::vector<Verify_status> st1, st2;
    std::thread r1([&] { st1 = s1.read_units(make_reads(out1)); });
    std::thread r2([&] { st2 = s2.read_units(make_reads(out2)); });
    r1.join();
    r2.join();
    for (const auto s : st1) EXPECT_EQ(s, Verify_status::ok);
    for (const auto s : st2) EXPECT_EQ(s, Verify_status::ok);
    for (std::size_t i = 0; i < out1.size(); ++i) EXPECT_EQ(out1[i], tile1[i]);
    for (std::size_t i = 0; i < out2.size(); ++i) EXPECT_EQ(out2[i], tile2[i]);
}

TEST(SecureSession, ScratchReuseAcrossBatchesStaysBitIdentical)
{
    // The per-worker Bulk_scratch persists across batch calls; a sequence
    // of ragged batches through one session must equal the same sequence
    // through fresh serial batch calls.
    const Keys k;
    Secure_session session(k.enc, k.mac, {}, 3);
    Secure_memory serial(k.enc, k.mac);
    for (const std::size_t units : {33u, 5u, 64u, 1u, 13u}) {
        const auto tile = tile_data(units, units * 7 + 1);
        session.write_units(make_writes(tile));
        serial.write_units(make_writes(tile));
    }
    expect_state_identical(session.memory(), serial, 64);
}

TEST(SecureSession, EmptyBatchIsANoop)
{
    const Keys k;
    Secure_session session(k.enc, k.mac, {}, 4);
    session.write_units({});
    EXPECT_EQ(session.memory().unit_count(), 0u);
    EXPECT_TRUE(session.read_units({}).empty());
}

TEST(SecureSession, MisalignedWriteThrowsBeforeAnyWorkerRuns)
{
    const Keys k;
    Secure_session session(k.enc, k.mac, {}, 4);
    const auto tile = tile_data(1, 41);
    std::vector<Secure_memory::Unit_write> batch = {{k_base + 1, tile[0], 0, 0, 0}};
    EXPECT_THROW(session.write_units(batch), Seda_error);
}

TEST(SecureSession, ReadOfUnwrittenUnitPropagatesFromWorker)
{
    const Keys k;
    Secure_session session(k.enc, k.mac, {}, 4);
    auto out = tile_data(4, 999);
    EXPECT_THROW((void)session.read_units(make_reads(out)), Seda_error);
}

}  // namespace
}  // namespace seda::runtime
